package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// Result is the serializable core of a finished vertex-cut partitioning:
// everything a lookup service needs to answer vertex->partition,
// edge-routing and replica-set queries without re-running the partitioner.
// It deliberately omits the O(|E|) per-edge assignment - the replica table
// plus the per-partition sizes determine every query answer - so a saved
// result is O(|V|*k/64 + k) bytes however large the edge stream was.
type Result struct {
	// Algorithm and Order record how the partitioning was produced
	// (bookkeeping for operators; queries do not depend on them).
	Algorithm string
	Order     string
	// K is the partition count; NumVertices the vertex-id space.
	K           int
	NumVertices int
	// NumEdges is the number of edges partitioned; Sizes[p] counts the
	// edges placed in partition p and sums to NumEdges (every edge lands in
	// exactly one partition under the vertex-cut model).
	NumEdges int64
	Sizes    []int64
	// Replicas is P(v) for every vertex: the word-addressable bitset the
	// serving hot path reads.
	Replicas *metrics.ReplicaSets
}

// Result-file limits. Vertex and edge counts share the graph-file bounds
// (checkCounts); the partition count gets its own cap - partition ids
// travel as int32 everywhere in this repository, and a million partitions
// is already far past any deployment, so a bigger k in a header is a forgery
// rather than a configuration.
const (
	maxResultK      = 1 << 20
	maxResultString = 255
)

// ErrBadResultMagic reports that the input is not a result file.
var ErrBadResultMagic = errors.New("store: bad magic (not a CPR1/CPR2 result file)")

// resultMagic tags pre-integrity result files ("CPR" for Compressed
// Partition Result); resultMagic2 tags checksummed ones, whose body is
// bit-for-bit the CPR1 body followed by the shared integrity trailer
// (see integrity.go). WriteResult emits CPR2; ReadResult accepts both.
var (
	resultMagic  = [4]byte{'C', 'P', 'R', '1'}
	resultMagic2 = [4]byte{'C', 'P', 'R', '2'}
)

// SniffResultHeader reports whether head (at least 4 bytes) carries either
// result-file magic.
func SniffResultHeader(head []byte) bool {
	return len(head) >= 4 && ([4]byte(head[:4]) == resultMagic || [4]byte(head[:4]) == resultMagic2)
}

// Verify re-checks the result's internal consistency - geometry, size sums,
// replica-table agreement - the same invariants ReadResult enforces while
// decoding. The on-disk checksums of a CPR2 file are proven during
// ReadResult itself (the trailer and every payload block, before any field
// is decoded), so a successfully decoded Result is already bit-certified;
// Verify guards results assembled or mutated in memory.
func (r *Result) Verify() error {
	return validateResult(r)
}

// WriteResult encodes a finished partitioning to w:
//
//	magic "CPR2" | uvarint nv | uvarint ne | uvarint k |
//	uvarint len(algorithm) | algorithm | uvarint len(order) | order |
//	k x uvarint size | nv*((k+63)/64) x uvarint replica word |
//	integrity trailer + footer (CRC32C per payload block; see integrity.go)
//
// All integers are unsigned varints; replica words compress well because
// only the low bits (small partition ids) are typically set. Encoding is
// canonical - WriteResult(ReadResult(f)) reproduces f bit for bit - which
// FuzzReadResult holds as the round-trip invariant (per format version:
// decoding a legacy CPR1 file and re-encoding upgrades it to CPR2).
func WriteResult(w io.Writer, r *Result) error {
	if err := validateResult(r); err != nil {
		return err
	}
	cw := newCRCWriter(w)
	if err := writeResultPayload(cw, r, resultMagic2); err != nil {
		return err
	}
	return cw.writeTrailer()
}

// writeResultPayload emits magic, header and body - the checksummed span of
// a CPR2 file. Tests write legacy fixtures by passing resultMagic directly.
func writeResultPayload(w io.Writer, r *Result, m [4]byte) error {
	vw := &varintWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	if _, err := vw.bw.Write(m[:]); err != nil {
		return err
	}
	for _, x := range []uint64{uint64(r.NumVertices), uint64(r.NumEdges), uint64(r.K)} {
		if err := vw.uvarint(x); err != nil {
			return err
		}
	}
	for _, s := range []string{r.Algorithm, r.Order} {
		if err := vw.uvarint(uint64(len(s))); err != nil {
			return err
		}
		if _, err := vw.bw.WriteString(s); err != nil {
			return err
		}
	}
	for _, sz := range r.Sizes {
		if err := vw.uvarint(uint64(sz)); err != nil {
			return err
		}
	}
	words := r.Replicas.Words()
	for v := 0; v < r.NumVertices; v++ {
		for wd := 0; wd < words; wd++ {
			if err := vw.uvarint(r.Replicas.Word(graph.VertexID(v), wd)); err != nil {
				return err
			}
		}
	}
	return vw.bw.Flush()
}

// validateResult rejects inconsistent in-memory results before they reach
// disk, mirroring what ReadResult enforces on the way back in.
func validateResult(r *Result) error {
	if r.K < 1 || r.K > maxResultK {
		return fmt.Errorf("store: result k %d out of range [1, %d]", r.K, maxResultK)
	}
	if len(r.Algorithm) > maxResultString || len(r.Order) > maxResultString {
		return fmt.Errorf("store: result algorithm/order names exceed %d bytes", maxResultString)
	}
	if r.NumVertices < 0 || r.NumEdges < 0 {
		return fmt.Errorf("store: negative result counts (%d vertices, %d edges)", r.NumVertices, r.NumEdges)
	}
	if len(r.Sizes) != r.K {
		return fmt.Errorf("store: result has %d sizes for k=%d", len(r.Sizes), r.K)
	}
	var sum int64
	for p, sz := range r.Sizes {
		if sz < 0 {
			return fmt.Errorf("store: partition %d has negative size %d", p, sz)
		}
		sum += sz
	}
	if sum != r.NumEdges {
		return fmt.Errorf("store: partition sizes sum to %d, result declares %d edges", sum, r.NumEdges)
	}
	if r.Replicas == nil {
		return errors.New("store: result has no replica table")
	}
	if r.Replicas.K() != r.K || r.Replicas.NumVertices() != r.NumVertices {
		return fmt.Errorf("store: replica table geometry %dv/%dk disagrees with result %dv/%dk",
			r.Replicas.NumVertices(), r.Replicas.K(), r.NumVertices, r.K)
	}
	return nil
}

// ReadResult decodes a result file written by WriteResult, validating every
// field before anything is sized from it: forged vertex/edge/partition
// counts, truncated bodies, stray replica bits above k and trailing bytes
// all reject. The allocation for the replica table grows incrementally under
// a cap, so an adversarial header cannot force a giant up-front allocation.
//
// Both format versions are accepted. A checksummed CPR2 file is buffered
// and its trailer and every payload block proven before any field is
// decoded, so a corrupt result can never be mistaken for a valid one;
// legacy CPR1 files decode with structural validation only.
func ReadResult(rd io.Reader) (*Result, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("store: reading result magic: %w", err)
	}
	switch m {
	case resultMagic:
		return readResultBody(br)
	case resultMagic2:
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("store: buffering checksummed result: %w", err)
		}
		data := make([]byte, 0, 4+len(rest))
		data = append(append(data, m[:]...), rest...)
		payload, err := verifyAllBytes(data, "result")
		if err != nil {
			return nil, err
		}
		return readResultBody(bufio.NewReader(bytes.NewReader(payload[4:])))
	}
	return nil, ErrBadResultMagic
}

// readResultBody decodes everything after the magic; the reader must end
// exactly where the body does (EOF for CPR1 files, the payload bound for
// CPR2).
func readResultBody(br *bufio.Reader) (*Result, error) {
	nv, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: result vertex count: %w", err)
	}
	ne, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: result edge count: %w", err)
	}
	if err := checkCounts(nv, ne); err != nil {
		return nil, err
	}
	k64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: result partition count: %w", err)
	}
	if k64 < 1 || k64 > maxResultK {
		return nil, fmt.Errorf("store: result k %d out of range [1, %d]", k64, maxResultK)
	}
	k := int(k64)
	r := &Result{K: k, NumVertices: int(nv), NumEdges: int64(ne)}
	if r.Algorithm, err = readResultString(br, "algorithm"); err != nil {
		return nil, err
	}
	if r.Order, err = readResultString(br, "order"); err != nil {
		return nil, err
	}
	r.Sizes = make([]int64, k)
	var sum int64
	for p := 0; p < k; p++ {
		sz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: partition %d size: %w", p, err)
		}
		if sz > ne {
			return nil, fmt.Errorf("store: partition %d size %d exceeds declared %d edges", p, sz, ne)
		}
		r.Sizes[p] = int64(sz)
		sum += int64(sz)
	}
	if sum != r.NumEdges {
		return nil, fmt.Errorf("store: partition sizes sum to %d, header declares %d edges", sum, r.NumEdges)
	}
	perVertex := (k + 63) / 64
	need := int(nv) * perVertex
	capHint := need
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	words := make([]uint64, 0, capHint)
	for i := 0; i < need; i++ {
		w, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: replica word %d of %d: %w", i, need, err)
		}
		words = append(words, w)
	}
	rs, err := metrics.NewReplicaSetsFromWords(int(nv), k, words)
	if err != nil {
		return nil, err
	}
	r.Replicas = rs
	// A result file is a complete artifact, not a stream prefix: trailing
	// bytes mean the file was corrupted or concatenated, and accepting them
	// would break the bit-identical round-trip contract.
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("store: after result body: %w", err)
		}
		return nil, errors.New("store: trailing data after result body")
	}
	return r, nil
}

// readResultString decodes one length-prefixed name field.
func readResultString(br *bufio.Reader, field string) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("store: result %s length: %w", field, err)
	}
	if n > maxResultString {
		return "", fmt.Errorf("store: result %s of %d bytes exceeds the %d limit", field, n, maxResultString)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("store: result %s: %w", field, err)
	}
	return string(buf), nil
}
