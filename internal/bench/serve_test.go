package bench

import (
	"bytes"
	"strconv"
	"testing"
)

// TestServeCells pins the placement-service grid's invariants: one cell per
// layout x client count, real measurements in every cell, and - the hard
// gate - zero allocations per query in the single-client cells (a cell
// violating that fails the run itself, so reaching here means it held).
func TestServeCells(t *testing.T) {
	cfg := streamSuite()
	cfg.ServeDatasets = []string{"UK"}
	rep, err := RunSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ServeCells) != 4 {
		t.Fatalf("got %d serve cells, want 4 (flat/sharded x 1/%d clients)", len(rep.ServeCells), serveMaxClients)
	}
	seen := map[string]ServeCell{}
	for _, c := range rep.ServeCells {
		seen[c.Layout+"/"+strconv.Itoa(c.Clients)] = c
		if c.Lookups <= 0 || c.LookupsPerSec <= 0 || c.P50NS < 0 || c.P99NS < c.P50NS {
			t.Errorf("%s: implausible measurements: %+v", c.ID(), c)
		}
		if c.Clients == 1 && c.AllocsPerOp != 0 {
			t.Errorf("%s: single-client allocs/op = %v, want 0", c.ID(), c.AllocsPerOp)
		}
	}
	for _, want := range []string{"flat/1", "sharded/1", "flat/8", "sharded/8"} {
		if _, ok := seen[want]; !ok {
			t.Errorf("missing serve cell %s", want)
		}
	}

	// The cells survive a JSON round trip.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.ServeCells) != len(rep.ServeCells) || back.ServeCells[0] != rep.ServeCells[0] {
		t.Fatal("serve cells mangled by JSON round trip")
	}

	// Diff gating: self-diff is clean, an allocation appearing on the query
	// path is a regression at exact tolerance, a missing grid skips.
	clean := Diff(rep, rep, DiffOptions{})
	if clean.HasRegressions() {
		t.Fatalf("self-diff regressed: %+v", clean.Regressions)
	}
	if clean.ServeSkipped != "" {
		t.Fatalf("self-diff skipped serve cells: %s", clean.ServeSkipped)
	}
	worse := *rep
	worse.ServeCells = append([]ServeCell(nil), rep.ServeCells...)
	worse.ServeCells[0].AllocsPerOp += 0.5
	d := Diff(rep, &worse, DiffOptions{})
	found := false
	for _, r := range d.Regressions {
		if r.Metric == "allocs_per_op" {
			found = true
		}
	}
	if !found {
		t.Fatalf("allocs/op growth not flagged: %+v", d.Regressions)
	}
	old := *rep
	old.ServeCells = nil
	d = Diff(&old, rep, DiffOptions{})
	if d.ServeSkipped == "" {
		t.Fatal("baseline without serve cells should skip the comparison")
	}
	if d.HasRegressions() {
		t.Fatalf("skip still produced regressions: %+v", d.Regressions)
	}
}
