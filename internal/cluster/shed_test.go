package cluster

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
)

func TestShouldShedWindow(t *testing.T) {
	const vmax = 400
	cases := []struct {
		deg  uint32
		want bool
	}{
		{1, false},    // leaf: shedding tears it from its neighbourhood
		{99, false},   // below the hub threshold vmax/4
		{100, true},   // exactly vmax/4
		{200, true},   // mid-window hub
		{300, true},   // exactly 3*vmax/4
		{301, false},  // star no longer fits a fresh cluster
		{5000, false}, // super-hub saturates any cluster
	}
	for _, c := range cases {
		if got := shouldShed(c.deg, vmax); got != c.want {
			t.Errorf("shouldShed(%d, %d) = %v, want %v", c.deg, vmax, got, c.want)
		}
	}
}

// TestShedScenario reconstructs Figure 2: a hub v inside a cluster that
// fills up; when fresh neighbours keep arriving, v must be shed exactly
// once, marked divided, and its subsequent star must join v's new cluster.
func TestShedScenario(t *testing.T) {
	// Build a stream: hub 0 first bonds with vertices 1..9 (filling the
	// cluster), then fresh vertices 10..14 each link to the hub.
	var edges []graph.Edge
	for i := 1; i <= 9; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 0})
	}
	for i := 10; i <= 14; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 0})
	}
	// Vmax chosen so the cluster saturates after the first phase and the
	// hub's degree (9..14) sits inside the shed window [Vmax/4, 3Vmax/4].
	res, err := Run(stream.Of(edges).Source(15), Config{Vmax: 18})
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits == 0 {
		t.Fatal("hub never shed")
	}
	if !res.Divided[0] {
		t.Fatal("hub not marked divided")
	}
	if res.SplitFrom[0] == None {
		t.Fatal("hub's mirror cluster not recorded")
	}
	// The hub's post-shed star (late vertices) must sit with the hub.
	hub := res.Assign[0]
	with := 0
	for i := 10; i <= 14; i++ {
		if res.Assign[i] == hub {
			with++
		}
	}
	if with < 3 {
		t.Fatalf("only %d of 5 post-shed star vertices joined the hub", with)
	}
}

// TestNoShedForEstablishedEdges: an edge between two established vertices
// must not shed anyone even when a cluster is full (Holl-style rejection).
func TestNoShedForEstablishedEdges(t *testing.T) {
	var edges []graph.Edge
	// Two dense groups that each saturate a small Vmax.
	for i := 1; i <= 6; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 0})
		edges = append(edges, graph.Edge{Src: graph.VertexID(10 + i), Dst: 10})
	}
	pre, err := Run(stream.Of(edges).Source(20), Config{Vmax: 10})
	if err != nil {
		t.Fatal(err)
	}
	preSplits := pre.Splits
	// Repeat the stream plus established<->established cross edges.
	cross := append(append([]graph.Edge{}, edges...),
		graph.Edge{Src: 0, Dst: 10}, graph.Edge{Src: 10, Dst: 0})
	post, err := Run(stream.Of(cross).Source(20), Config{Vmax: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The cross edges link two non-newcomers (degrees 6+), so they must not
	// trigger additional sheds beyond what the base stream causes.
	if post.Splits > preSplits {
		t.Fatalf("established-established edges shed vertices: %d -> %d splits", preSplits, post.Splits)
	}
}

func TestMigrationCapBlocksEstablishedMoves(t *testing.T) {
	// Vertex 1 commits to cluster of 0 via two edges, then meets the large
	// group around 10; with the default cap it must stay with 0.
	var edges []graph.Edge
	edges = append(edges, graph.Edge{Src: 1, Dst: 0}, graph.Edge{Src: 0, Dst: 1})
	for i := 11; i <= 16; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 10})
	}
	edges = append(edges, graph.Edge{Src: 1, Dst: 10})
	res, err := Run(stream.Of(edges).Source(20), Config{Vmax: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[1] != res.Assign[0] {
		t.Fatalf("committed vertex was stolen: assign[1]=%d assign[0]=%d", res.Assign[1], res.Assign[0])
	}
	// With the cap removed (literal Algorithm 2) the steal happens.
	res, err = Run(stream.Of(edges).Source(20), Config{Vmax: 1000, MigrateMaxDegree: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[1] != res.Assign[10] {
		t.Fatalf("uncapped migration should steal vertex 1 into the big cluster")
	}
}

func TestSelfLoopHandling(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}}
	res, err := Run(stream.Of(edges).Source(2), Config{Vmax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree[0] != 3 {
		t.Fatalf("self-loop degree %d, want 3", res.Degree[0])
	}
	var volSum int64
	for _, v := range res.Volume {
		volSum += v
	}
	if volSum != 4 {
		t.Fatalf("volume sum %d, want 4", volSum)
	}
}
