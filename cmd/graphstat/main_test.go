package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// writeFixture encodes a small deterministic graph in the given format.
func writeFixture(t *testing.T, format repro.CompressedFormat) string {
	t.Helper()
	g := repro.GenerateWeb(repro.WebConfig{N: 5000, OutDegree: 6, Seed: 9})
	path := filepath.Join(t.TempDir(), "g.cgr")
	w, err := repro.NewAtomicWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := repro.WriteCompressedFormat(w, g, format); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVerifyClean: -verify on a pristine CGR3 file proves its blocks and
// says so; a pre-integrity format reports that there is nothing to verify.
func TestVerifyClean(t *testing.T) {
	var out strings.Builder
	if err := runVerify(writeFixture(t, repro.FormatCGR3), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CGR3 ok") {
		t.Fatalf("clean CGR3 verify printed %q", out.String())
	}

	out.Reset()
	if err := runVerify(writeFixture(t, repro.FormatCGR2), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no checksums") {
		t.Fatalf("CGR2 verify printed %q", out.String())
	}
}

// TestVerifyBitFlipped: a deliberately bit-flipped fixture fails the scan
// with an error naming the first corrupt block.
func TestVerifyBitFlipped(t *testing.T) {
	path := writeFixture(t, repro.FormatCGR3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err = runVerify(path, &out)
	if err == nil {
		t.Fatalf("bit-flipped file verified clean: %q", out.String())
	}
	if !strings.Contains(err.Error(), "block ") {
		t.Fatalf("corruption report does not name the corrupt block: %v", err)
	}
}

// TestVerifyTruncated: a torn tail is an error, not a clean report.
func TestVerifyTruncated(t *testing.T) {
	path := writeFixture(t, repro.FormatCGR3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runVerify(path, new(strings.Builder)); err == nil {
		t.Fatal("truncated file verified clean")
	}
}
