package partition

import (
	"repro/internal/graph"
	"repro/internal/metrics"
)

// This file implements the gather -> score -> apply scoring pipeline
// (DESIGN.md "Parallel scoring"): the per-edge replica/degree state of the
// one-pass partitioners lives in vertex-range-sharded tables
// (metrics.ShardedReplicaSets / ShardedDegrees), and per-batch shard
// workers pre-gather each batch's words into a slot table the serial score
// loop reads and writes - so scoring stops random-walking the flat bitset
// while staying bit-identical to the serial algorithms for every worker
// count.

// ScoreTrace reports how a sharded-scoring run laid out its state: the
// resolved worker/shard count, the sharded tables' footprint, and per-shard
// occupancy (the skew view clugp -trace prints).
type ScoreTrace struct {
	// Workers is the resolved shard and worker count (the requested count
	// clamped by metrics.ShardGeometry).
	Workers int
	// ReplicaBytes and DegreeBytes are the sharded tables' footprints
	// (DegreeBytes is zero for algorithms without a degree table).
	ReplicaBytes int64
	DegreeBytes  int64
	// Shards is the per-shard replica-table occupancy after the run.
	Shards []metrics.ShardStat
}

// ScoreTracer is implemented by partitioners that can report their most
// recent sharded-scoring run (HDRF, Greedy). LastScoreTrace returns nil
// when the last run scored serially.
type ScoreTracer interface {
	LastScoreTrace() *ScoreTrace
}

// scoreParallel is the internal knob RunOutOfCoreOpts turns: partitioners
// whose scoring state can shard implement it (HDRF, Greedy, CLUGP and
// CLUGP-D forwarding to its per-node pipelines).
type scoreParallel interface {
	setScoreWorkers(n int)
}

// scoreShardFn is one pipeline phase's work for one shard: verts lists the
// current batch's distinct vertices that the shard owns, slots their
// positions in the batch's gather table.
type scoreShardFn func(sh int, verts []graph.VertexID, slots []int32)

// scorePipe runs the phases of the pipeline over one worker per shard.
// prepare (serial) deduplicates a batch's endpoints into gather-table slots
// in first-appearance order and splits them into per-shard lists; do runs
// one phase - every worker executes the phase function over its own list,
// and do returns only when all have finished (the phase barrier). Workers
// touch disjoint vertex ranges and disjoint slots, so phases need no locks;
// determinism needs no more than that slot numbering depends only on the
// batch's edges (it does: first appearance order), since batch boundaries
// are fixed stream offsets (stream.Rebatch).
//
// A scorePipe is scratch reused across runs like the tables it feeds;
// begin spawns the fleet, stop (deferred by every user) releases it.
type scorePipe struct {
	workers int
	span    int

	// Batch-local vertex -> slot map: open addressing with epoch stamps so
	// clearing between batches is one counter bump, not an O(table) wipe.
	// The probe sequence is a fixed function of the vertex id, never of
	// worker count or timing, which keeps slot order deterministic.
	keys  []graph.VertexID
	vals  []int32
	stamp []uint32
	epoch uint32
	mask  uint32

	nslots int
	su, sv []int32 // gather-table slot of each edge endpoint, batch-aligned

	verts [][]graph.VertexID // per-shard distinct vertices, gather order
	slots [][]int32          // their gather-table slots

	in   []chan scoreShardFn
	done chan struct{}
}

// begin resolves the shard layout for n vertices and spawns one worker per
// shard. The layout rule is metrics.ShardGeometry, so it matches sharded
// tables Reset with the same requested count.
func (sp *scorePipe) begin(n, shards int) {
	sp.workers, sp.span = metrics.ShardGeometry(n, shards)
	if cap(sp.verts) < sp.workers {
		verts := make([][]graph.VertexID, sp.workers)
		copy(verts, sp.verts)
		sp.verts = verts
		slots := make([][]int32, sp.workers)
		copy(slots, sp.slots)
		sp.slots = slots
	}
	sp.verts = sp.verts[:sp.workers]
	sp.slots = sp.slots[:sp.workers]
	sp.in = make([]chan scoreShardFn, sp.workers)
	sp.done = make(chan struct{}, sp.workers)
	for sh := range sp.in {
		sp.in[sh] = make(chan scoreShardFn)
		go func(sh int, in chan scoreShardFn) {
			for fn := range in {
				fn(sh, sp.verts[sh], sp.slots[sh])
				sp.done <- struct{}{}
			}
		}(sh, sp.in[sh])
	}
}

// stop releases the worker fleet. No phase is ever in flight outside do,
// so closing the inboxes is sufficient. Idempotent.
func (sp *scorePipe) stop() {
	for _, in := range sp.in {
		close(in)
	}
	sp.in = nil
}

// do runs one phase to completion across all shard workers.
func (sp *scorePipe) do(fn scoreShardFn) {
	for _, in := range sp.in {
		in <- fn
	}
	for i := 0; i < sp.workers; i++ {
		<-sp.done
	}
}

// prepare deduplicates blk's endpoints into slots 0..nslots-1 in first-
// appearance order, filling su/sv and the per-shard gather lists. Serial;
// runs between the previous batch's apply barrier and this batch's gather.
func (sp *scorePipe) prepare(blk []graph.Edge) {
	// Size the map for <= 2*len(blk) distinct keys at load factor <= 1/2.
	if need := nextPow2(4 * len(blk)); need > len(sp.keys) {
		sp.keys = make([]graph.VertexID, need)
		sp.vals = make([]int32, need)
		sp.stamp = make([]uint32, need)
		sp.mask = uint32(need - 1)
		sp.epoch = 0
	}
	sp.epoch++
	if sp.epoch == 0 { // wrapped: hard-clear so stale stamps cannot collide
		clear(sp.stamp)
		sp.epoch = 1
	}
	sp.nslots = 0
	for sh := 0; sh < sp.workers; sh++ {
		sp.verts[sh] = sp.verts[sh][:0]
		sp.slots[sh] = sp.slots[sh][:0]
	}
	sp.su = growInt32(sp.su, len(blk))
	sp.sv = growInt32(sp.sv, len(blk))
	for j, e := range blk {
		sp.su[j] = sp.slot(e.Src)
		sp.sv[j] = sp.slot(e.Dst)
	}
}

// slot returns v's gather-table slot, assigning the next free one (and
// appending v to its shard's gather list) on first appearance.
func (sp *scorePipe) slot(v graph.VertexID) int32 {
	h := (uint32(v) * 0x9E3779B1) // Fibonacci hashing, fixed multiplier
	h ^= h >> 15
	h &= sp.mask
	for {
		if sp.stamp[h] != sp.epoch {
			sp.stamp[h] = sp.epoch
			sp.keys[h] = v
			s := int32(sp.nslots)
			sp.nslots++
			sp.vals[h] = s
			sh := int(v) / sp.span
			sp.verts[sh] = append(sp.verts[sh], v)
			sp.slots[sh] = append(sp.slots[sh], s)
			return s
		}
		if sp.keys[h] == v {
			return sp.vals[h]
		}
		h = (h + 1) & sp.mask
	}
}

func nextPow2(n int) int {
	p := 64
	for p < n {
		p <<= 1
	}
	return p
}

// growInt32 returns a length-n int32 slice reusing buf's storage when
// possible; contents are undefined (callers overwrite every entry).
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// growUint32 is growInt32 for uint32 slices.
func growUint32(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}
