package edgecut

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Multilevel is a METIS-style offline k-way edge-cut partitioner: coarsen
// the graph by heavy-edge matching until it is small, partition the
// coarsest graph greedily, then uncoarsen while refining with
// gain-driven boundary moves (a lightweight Kernighan-Lin/FM variant).
//
// It stands in for the paper's METIS reference point: the offline,
// whole-graph-in-memory, high-quality-but-slow end of the design space
// that motivates streaming partitioners in the first place (METIS needs
// 8.5 hours for 1.5B edges, Section I).
type Multilevel struct {
	// Imbalance bounds partition vertex weight at Imbalance * total/k
	// (default 1.05).
	Imbalance float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices (default max(200, 8k)).
	CoarsenTo int
	// RefineIters is the number of refinement sweeps per level (default 4).
	RefineIters int
	// Seed drives matching and seeding order.
	Seed uint64
}

// Name implements Partitioner.
func (ml *Multilevel) Name() string { return "Multilevel" }

// wgraph is an undirected weighted graph in CSR form, the working
// representation across coarsening levels.
type wgraph struct {
	vwgt   []int64 // vertex weights (collapsed vertex counts)
	xadj   []int64
	adjncy []int32
	adjwgt []int64
}

func (w *wgraph) n() int { return len(w.vwgt) }

func (w *wgraph) totalVWgt() int64 {
	var t int64
	for _, x := range w.vwgt {
		t += x
	}
	return t
}

// Partition implements Partitioner.
func (ml *Multilevel) Partition(g *graph.Graph, k int) ([]int32, error) {
	if k < 1 {
		return nil, fmt.Errorf("edgecut: k must be >= 1, got %d", k)
	}
	if g.NumVertices == 0 {
		return nil, nil
	}
	imbalance := ml.Imbalance
	if imbalance == 0 {
		imbalance = 1.05
	}
	coarsenTo := ml.CoarsenTo
	if coarsenTo == 0 {
		coarsenTo = 8 * k
		if coarsenTo < 200 {
			coarsenTo = 200
		}
	}
	refine := ml.RefineIters
	if refine == 0 {
		refine = 4
	}
	rng := xrand.New(ml.Seed ^ 0xa5a5a5a5)

	// Level 0: collapse the directed multigraph into a simple undirected
	// weighted graph.
	w0 := buildWeighted(g)

	// Coarsening phase.
	levels := []*wgraph{w0}
	var maps [][]int32 // maps[i][v] = coarse id of fine vertex v at level i
	for levels[len(levels)-1].n() > coarsenTo {
		cur := levels[len(levels)-1]
		cmap, coarse := heavyEdgeMatch(cur, rng)
		if coarse.n() >= cur.n() { // matching stalled (e.g. no edges left)
			break
		}
		maps = append(maps, cmap)
		levels = append(levels, coarse)
	}

	// Initial partitioning of the coarsest graph.
	coarsest := levels[len(levels)-1]
	assign := initialPartition(coarsest, k, rng)

	// Uncoarsening with refinement.
	limit := int64(imbalance * float64(w0.totalVWgt()) / float64(k))
	if limit < 1 {
		limit = 1
	}
	refinePartition(coarsest, assign, k, limit, refine)
	for i := len(maps) - 1; i >= 0; i-- {
		fine := levels[i]
		fineAssign := make([]int32, fine.n())
		for v := range fineAssign {
			fineAssign[v] = assign[maps[i][v]]
		}
		assign = fineAssign
		refinePartition(fine, assign, k, limit, refine)
	}
	return assign, nil
}

// buildWeighted collapses a directed multigraph to a simple undirected
// weighted graph (parallel edges sum their weight; self-loops dropped -
// they never contribute to the cut).
func buildWeighted(g *graph.Graph) *wgraph {
	n := g.NumVertices
	type half struct {
		to graph.VertexID
		w  int64
	}
	adj := make([][]half, n)
	add := func(a, b graph.VertexID) {
		adj[a] = append(adj[a], half{to: b, w: 1})
	}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			continue
		}
		add(e.Src, e.Dst)
		add(e.Dst, e.Src)
	}
	w := &wgraph{vwgt: make([]int64, n), xadj: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		w.vwgt[v] = 1
		a := adj[v]
		sort.Slice(a, func(i, j int) bool { return a[i].to < a[j].to })
		// merge duplicates
		for i := 0; i < len(a); {
			j := i + 1
			wt := a[i].w
			for j < len(a) && a[j].to == a[i].to {
				wt += a[j].w
				j++
			}
			w.adjncy = append(w.adjncy, int32(a[i].to))
			w.adjwgt = append(w.adjwgt, wt)
			i = j
		}
		w.xadj[v+1] = int64(len(w.adjncy))
	}
	return w
}

// heavyEdgeMatch pairs each unmatched vertex with its unmatched neighbour
// of maximum edge weight and contracts the pairs into a coarser graph.
func heavyEdgeMatch(w *wgraph, rng *xrand.RNG) ([]int32, *wgraph) {
	n := w.n()
	match := make([]int32, n)
	for v := range match {
		match[v] = -1
	}
	order := rng.Perm(n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		var bestW int64 = -1
		for i := w.xadj[v]; i < w.xadj[v+1]; i++ {
			u := w.adjncy[i]
			if match[u] == -1 && int(u) != v && w.adjwgt[i] > bestW {
				best = u
				bestW = w.adjwgt[i]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = int32(v)
		} else {
			match[v] = int32(v) // matched with itself
		}
	}

	// Assign coarse ids.
	cmap := make([]int32, n)
	for v := range cmap {
		cmap[v] = -1
	}
	next := int32(0)
	for v := 0; v < n; v++ {
		if cmap[v] != -1 {
			continue
		}
		cmap[v] = next
		if m := match[v]; int(m) != v {
			cmap[m] = next
		}
		next++
	}

	// Build the coarse graph.
	coarse := &wgraph{vwgt: make([]int64, next), xadj: make([]int64, next+1)}
	// Aggregate adjacency per coarse vertex with a map re-used across rows.
	agg := make(map[int32]int64, 16)
	members := make([][]int32, next)
	for v := 0; v < n; v++ {
		members[cmap[v]] = append(members[cmap[v]], int32(v))
	}
	for c := int32(0); c < next; c++ {
		clear(agg)
		for _, v := range members[c] {
			coarse.vwgt[c] += w.vwgt[v]
			for i := w.xadj[v]; i < w.xadj[v+1]; i++ {
				cu := cmap[w.adjncy[i]]
				if cu == c {
					continue
				}
				agg[cu] += w.adjwgt[i]
			}
		}
		keys := make([]int32, 0, len(agg))
		for u := range agg {
			keys = append(keys, u)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, u := range keys {
			coarse.adjncy = append(coarse.adjncy, u)
			coarse.adjwgt = append(coarse.adjwgt, agg[u])
		}
		coarse.xadj[c+1] = int64(len(coarse.adjncy))
	}
	return cmap, coarse
}

// initialPartition grows k regions by weighted BFS from random seeds on the
// coarsest graph, then sweeps leftovers to the lightest partition.
func initialPartition(w *wgraph, k int, rng *xrand.RNG) []int32 {
	n := w.n()
	assign := make([]int32, n)
	for v := range assign {
		assign[v] = -1
	}
	target := w.totalVWgt()/int64(k) + 1
	loads := make([]int64, k)
	order := rng.Perm(n)
	cursor := 0
	queue := make([]int32, 0, 256)
	for p := 0; p < k; p++ {
		// Find an unassigned seed.
		for cursor < n && assign[order[cursor]] != -1 {
			cursor++
		}
		if cursor >= n {
			break
		}
		queue = append(queue[:0], int32(order[cursor]))
		assign[order[cursor]] = int32(p)
		loads[p] += w.vwgt[order[cursor]]
		for len(queue) > 0 && loads[p] < target {
			v := queue[0]
			queue = queue[1:]
			for i := w.xadj[v]; i < w.xadj[v+1]; i++ {
				u := w.adjncy[i]
				if assign[u] == -1 && loads[p] < target {
					assign[u] = int32(p)
					loads[p] += w.vwgt[u]
					queue = append(queue, u)
				}
			}
		}
	}
	// Leftovers: lightest partition.
	for v := 0; v < n; v++ {
		if assign[v] != -1 {
			continue
		}
		best := 0
		for p := 1; p < k; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		assign[v] = int32(best)
		loads[best] += w.vwgt[v]
	}
	return assign
}

// refinePartition performs gain-driven boundary sweeps: each pass moves
// vertices whose external connectivity to some partition exceeds their
// internal connectivity, respecting the weight limit, until a pass makes
// no move or the iteration budget runs out.
func refinePartition(w *wgraph, assign []int32, k int, limit int64, iters int) {
	n := w.n()
	loads := make([]int64, k)
	for v := 0; v < n; v++ {
		loads[assign[v]] += w.vwgt[v]
	}
	conn := make([]int64, k)
	touched := make([]int32, 0, k)
	for it := 0; it < iters; it++ {
		moved := false
		for v := 0; v < n; v++ {
			cur := assign[v]
			var internal int64
			for _, p := range touched {
				conn[p] = 0
			}
			touched = touched[:0]
			for i := w.xadj[v]; i < w.xadj[v+1]; i++ {
				p := assign[w.adjncy[i]]
				if conn[p] == 0 {
					touched = append(touched, p)
				}
				conn[p] += w.adjwgt[i]
			}
			internal = conn[cur]
			best := cur
			bestGain := int64(0)
			for _, p := range touched {
				if p == cur {
					continue
				}
				if loads[p]+w.vwgt[v] > limit {
					continue
				}
				if gain := conn[p] - internal; gain > bestGain {
					bestGain = gain
					best = p
				}
			}
			if best != cur {
				loads[cur] -= w.vwgt[v]
				loads[best] += w.vwgt[v]
				assign[v] = best
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}
