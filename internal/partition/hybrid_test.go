package partition

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stream"
)

func TestHybridValidAndBetterThanHashing(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 8000, OutDegree: 8, IntraSite: 0.85, Seed: 41})
	k := 16
	hy, err := Run(&HybridCut{Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := Run(&Hashing{Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hy.Quality.ReplicationFactor >= hash.Quality.ReplicationFactor {
		t.Fatalf("hybrid RF %.3f >= hashing RF %.3f", hy.Quality.ReplicationFactor, hash.Quality.ReplicationFactor)
	}
}

func TestHybridLowDegreeVerticesStayWhole(t *testing.T) {
	// A graph of only low-degree targets: every vertex's in-edges hash to
	// one partition, so replicas come only from out-edges.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 3, Dst: 1},
		{Src: 0, Dst: 4}, {Src: 2, Dst: 4},
	}
	h := &HybridCut{Threshold: 100, Seed: 1}
	assign, err := h.Partition(stream.Of(edges).Source(5), 8)
	if err != nil {
		t.Fatal(err)
	}
	// All in-edges of vertex 1 in one partition; same for 4.
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("in-edges of low-degree vertex 1 split: %v", assign[:3])
	}
	if assign[3] != assign[4] {
		t.Fatalf("in-edges of low-degree vertex 4 split: %v", assign[3:])
	}
}

func TestHybridThresholdSwitchesRegime(t *testing.T) {
	// A star into one hub: with a low threshold the hub's in-edges spread;
	// with a high threshold they concentrate.
	var edges []graph.Edge
	for i := 1; i <= 200; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 0})
	}
	k := 16
	spread := &HybridCut{Threshold: 10, Seed: 1}
	sa, err := spread.Partition(stream.Of(edges).Source(201), k)
	if err != nil {
		t.Fatal(err)
	}
	concentrated := &HybridCut{Threshold: 10000, Seed: 1}
	ca, err := concentrated.Partition(stream.Of(edges).Source(201), k)
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(a []int32) int {
		seen := map[int32]bool{}
		for _, p := range a {
			seen[p] = true
		}
		return len(seen)
	}
	if distinct(sa) < k/2 {
		t.Fatalf("low threshold left the hub on %d partitions", distinct(sa))
	}
	if distinct(ca) != 1 {
		t.Fatalf("high threshold spread the hub over %d partitions", distinct(ca))
	}
}

func TestGridReplicaBound(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 5000, OutDegree: 8, IntraSite: 0.8, Seed: 42})
	k := 16 // 4x4 grid
	res, err := Run(&Grid{Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Structural guarantee: |P(v)| <= 2*sqrt(k)-1 = 7.
	rs := metrics.NewReplicaSets(g.NumVertices, k)
	edges, err := stream.Collect(res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		rs.Add(e.Src, int(res.Assign[i]))
		rs.Add(e.Dst, int(res.Assign[i]))
	}
	for v := 0; v < g.NumVertices; v++ {
		if c := rs.Count(graph.VertexID(v)); c > 7 {
			t.Fatalf("vertex %d on %d partitions, grid bound is 7", v, c)
		}
	}
	// And the bound must bite: the max-degree vertex under plain hashing
	// would exceed it.
	hash, err := Run(&Hashing{Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hash.Quality.ReplicationFactor <= res.Quality.ReplicationFactor {
		t.Fatalf("grid RF %.3f not below hashing %.3f", res.Quality.ReplicationFactor, hash.Quality.ReplicationFactor)
	}
}

func TestGridNonSquareK(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 500, OutDegree: 4, Seed: 43})
	res, err := Run(&Grid{Seed: 1}, g, 10, 1) // uses a 3x3 grid
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 9 {
			t.Fatalf("grid used partition %d outside its 3x3 square", a)
		}
	}
}
