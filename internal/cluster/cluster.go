// Package cluster implements the paper's first pass: streaming vertex
// clustering with the allocation-splitting-migration framework (Section IV,
// Algorithm 2). It extends Hollocou et al.'s allocation-migration streaming
// clustering ("Holl") with a splitting operation that chops high-degree
// vertices out of full clusters, which Theorem 1 shows can only lower the
// eventual replication factor.
//
// The package also builds the cluster graph (intra-cluster edge counts and
// inter-cluster edge weights) consumed by the second pass's partitioning
// game.
package cluster

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/stream"
)

// ID identifies a cluster. None marks a vertex not yet allocated.
type ID = int32

// None is the cluster id of an unallocated vertex.
const None ID = -1

// Config controls the streaming clustering pass.
type Config struct {
	// Vmax is the maximum cluster volume (sum of member master-vertex
	// degrees). The paper sets Vmax = |E|/k following Hollocou's guidance.
	Vmax int64
	// DisableSplitting reverts to Holl's allocation-migration framework
	// (the CLUGP-S ablation of Figure 9): full clusters are never split;
	// instead overflowing vertices keep accumulating volume in place and
	// new neighbours spill into fresh singleton clusters via allocation.
	DisableSplitting bool
	// MigrateMaxDegree caps the observed degree up to which a vertex may
	// still migrate between clusters (Algorithm 2 lines 20-26). Hollocou's
	// volume heuristic assumes community-sized vmax; at the paper's
	// partition-sized Vmax = |E|/k, unrestricted migration lets large
	// clusters steal well-established vertices through any single
	// cross-link, scrambling the clustering (measured: intra-cluster edge
	// fraction drops from ~0.7 to ~0.2 on site-structured web streams).
	// Moving a vertex with committed neighbours sacrifices those intra
	// edges for one new edge, so only weakly-committed vertices should
	// move. 0 means 1 (only first-touch vertices migrate); -1 removes the
	// cap (the literal Algorithm 2 behaviour, kept for comparison runs).
	MigrateMaxDegree int
}

// Result is the output of the clustering pass: the vertex->cluster mapping
// table plus the degree and divided-vertex side tables needed by the
// partition-transformation pass.
type Result struct {
	// NumClusters counts allocated cluster ids (including emptied ones;
	// Compacted() relabels densely).
	NumClusters int
	// Assign maps each vertex to its final cluster, or None if the vertex
	// never appeared in the stream.
	Assign []ID
	// Degree is the total degree observed for each vertex during the pass
	// (the paper's deg[] array).
	Degree []uint32
	// Volume is each cluster's volume under the paper's bookkeeping. The
	// global sum always equals the degree sum; individual entries can drift
	// from the "sum of member degrees" ideal because historical increments
	// do not follow a migrating vertex (this matches the published
	// algorithm).
	Volume []int64
	// Divided marks vertices that triggered at least one splitting
	// operation and therefore own mirror vertices after pass 1 (Algorithm 2
	// lines 11 and 16). Always all-false when splitting is disabled.
	Divided []bool
	// SplitFrom[v] is the cluster v was most recently split out of, i.e.
	// where v's mirror vertex lives (None if v was never divided). The
	// transformation pass uses it to recognise assignments that are free of
	// new replicas ("e will be assigned to the partitions where u's mirror
	// vertex belongs", Section III-C).
	SplitFrom []ID
	// Splits counts splitting operations performed.
	Splits int64
	// Migrations counts migration operations performed.
	Migrations int64
}

// Run performs one pass of streaming clustering over the edge source (the
// source's vertex count must exceed every edge endpoint). The pass consumes
// the stream block by block and keeps only the O(|V|) mapping tables, so a
// file-backed source clusters a graph that was never materialized.
func Run(src stream.Source, cfg Config) (*Result, error) {
	if cfg.Vmax <= 0 {
		return nil, fmt.Errorf("cluster: Vmax must be positive, got %d", cfg.Vmax)
	}
	numVertices := src.NumVertices()
	migCap := uint32(1)
	switch {
	case cfg.MigrateMaxDegree < 0:
		migCap = ^uint32(0)
	case cfg.MigrateMaxDegree > 0:
		migCap = uint32(cfg.MigrateMaxDegree)
	}
	st := state{
		assign:    make([]ID, numVertices),
		degree:    make([]uint32, numVertices),
		divided:   make([]bool, numVertices),
		splitFrom: make([]ID, numVertices),
		volume:    make([]int64, 0, numVertices/4+16),
		vmax:      cfg.Vmax,
		split:     !cfg.DisableSplitting,
		migCap:    migCap,
	}
	for i := range st.assign {
		st.assign[i] = None
		st.splitFrom[i] = None
	}
	err := stream.ForEach(src, func(_ int, blk []graph.Edge) error {
		for _, e := range blk {
			if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
				return fmt.Errorf("cluster: edge %d->%d out of range (n=%d)", e.Src, e.Dst, numVertices)
			}
			st.ingest(e.Src, e.Dst)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		NumClusters: len(st.volume),
		Assign:      st.assign,
		Degree:      st.degree,
		Volume:      st.volume,
		Divided:     st.divided,
		SplitFrom:   st.splitFrom,
		Splits:      st.splits,
		Migrations:  st.migrations,
	}, nil
}

type state struct {
	assign     []ID
	degree     []uint32
	divided    []bool
	splitFrom  []ID
	volume     []int64
	vmax       int64
	migCap     uint32
	split      bool
	splits     int64
	migrations int64
}

func (s *state) newCluster() ID {
	s.volume = append(s.volume, 0)
	return ID(len(s.volume) - 1)
}

// shouldShed gates the splitting operation on the shed vertex's degree:
// it must account for a hub's share of the cluster volume (the paper's
// "chop high-degree vertices"), yet still fit inside a fresh cluster with
// room to collect its ongoing star - a vertex with degree beyond Vmax
// saturates any cluster it lands in, so shedding it helps nothing.
func shouldShed(deg uint32, vmax int64) bool {
	d := int64(deg)
	return 4*d >= vmax && 4*d <= 3*vmax
}

// ingest processes one streamed edge, following Algorithm 2 line by line:
// allocation (4-8), splitting (9-18), migration (19-26).
func (s *state) ingest(u, v graph.VertexID) {
	// Allocation: first-seen vertices start as singleton clusters.
	if s.assign[u] == None {
		s.assign[u] = s.newCluster()
	}
	if s.assign[v] == None {
		s.assign[v] = s.newCluster()
	}
	cu, cv := s.assign[u], s.assign[v]
	s.degree[u]++
	s.volume[cu]++
	// A self-loop contributes 2 to the vertex degree and its cluster volume.
	s.degree[v]++
	s.volume[cv]++

	if s.split {
		// Splitting handles the Figure 2 scenario: a high-degree vertex in
		// a full cluster keeps receiving fresh neighbours; without
		// splitting each would be stranded in its own singleton, one mirror
		// of the hub apiece. Shedding the hub into a fresh cluster lets its
		// ongoing star collect around it (the newcomer and its successors
		// follow by migration), leaving a single mirror behind (the divided
		// mark). Two gates keep the operation surgical, per the paper's
		// motivation that splitting "chops high-degree vertices":
		// the partner must be a newcomer (an established<->established edge
		// into a full cluster is an ordinary cut, and shedding would tear a
		// well-placed vertex from its neighbourhood), and the vertex must
		// carry a hub's share of its cluster's volume.
		if s.volume[cu] >= s.vmax && s.degree[v] <= s.migCap && shouldShed(s.degree[u], s.vmax) {
			nc := s.newCluster()
			s.assign[u] = nc
			s.divided[u] = true
			s.splitFrom[u] = cu
			s.volume[cu] -= int64(s.degree[u])
			s.volume[nc] += int64(s.degree[u])
			s.splits++
		}
		if u != v && s.volume[s.assign[v]] >= s.vmax && s.degree[u] <= s.migCap && shouldShed(s.degree[v], s.vmax) {
			cv = s.assign[v]
			nc := s.newCluster()
			s.assign[v] = nc
			s.divided[v] = true
			s.splitFrom[v] = cv
			s.volume[cv] -= int64(s.degree[v])
			s.volume[nc] += int64(s.degree[v])
			s.splits++
		}
	}

	// Migration: pull the endpoint in the smaller cluster into the bigger
	// cluster, provided neither side is full and the mover is not yet
	// committed to its cluster (degree within migCap).
	cu, cv = s.assign[u], s.assign[v]
	if cu == cv {
		return
	}
	if s.volume[cu] < s.vmax && s.volume[cv] < s.vmax {
		if s.volume[cu] <= s.volume[cv] && s.degree[u] <= s.migCap {
			s.assign[u] = cv
			s.volume[cu] -= int64(s.degree[u])
			s.volume[cv] += int64(s.degree[u])
			s.migrations++
		} else if s.volume[cv] < s.volume[cu] && s.degree[v] <= s.migCap {
			s.assign[v] = cu
			s.volume[cv] -= int64(s.degree[v])
			s.volume[cu] += int64(s.degree[v])
			s.migrations++
		}
	}
}

// Compact relabels clusters densely so that only clusters with at least one
// member vertex keep an id, returning the member counts per new id. Assign
// and Volume are rewritten in place; Volume of a new id is the sum of old
// volumes mapped onto it (emptied clusters keep their residual volume
// attributed nowhere, so compacted volumes are recomputed from degrees).
func (r *Result) Compact() (members []int32) {
	remap := make([]ID, r.NumClusters)
	for i := range remap {
		remap[i] = None
	}
	next := ID(0)
	for _, c := range r.Assign {
		if c == None {
			continue
		}
		if remap[c] == None {
			remap[c] = next
			next++
		}
	}
	members = make([]int32, next)
	volume := make([]int64, next)
	for v, c := range r.Assign {
		if c == None {
			continue
		}
		nc := remap[c]
		r.Assign[v] = nc
		members[nc]++
		volume[nc] += int64(r.Degree[v])
	}
	// SplitFrom entries pointing at emptied clusters become None: the
	// mirror's cluster dissolved, so there is no free partition to exploit.
	for v, c := range r.SplitFrom {
		if c != None {
			r.SplitFrom[v] = remap[c]
		}
	}
	r.NumClusters = int(next)
	r.Volume = volume
	return members
}
