// Package serve is the online half of the partitioner: a finished
// vertex-cut partitioning, frozen into an immutable Snapshot, answers
// vertex->partition, edge-routing and replica-set queries at high QPS while
// new partition results land behind an epoch pointer swap (Server).
//
// The paper's system (like every production graph engine) partitions
// offline and serves lookups online; everything else in this repository is
// the offline half. A Snapshot holds exactly the state a router needs - the
// per-vertex replica bitsets and the per-partition edge counts - in the
// word-addressable layout the partitioners already maintain, so the query
// hot path is a handful of word loads and allocates nothing.
package serve

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/store"
	"repro/internal/stream"
)

// ErrOutOfRange reports a vertex id at or beyond the snapshot's vertex
// count. It is a sentinel (not wrapped per call) so the query hot path
// stays allocation-free on the error branch too.
var ErrOutOfRange = fmt.Errorf("serve: vertex id out of range")

// replicaTable is the read seam between the snapshot and its backing
// replica bitsets: the flat metrics.ReplicaSets and the vertex-range
// sharded metrics.ShardedReplicaSets both satisfy it with word-addressable
// reads, so the two layouts answer queries through identical code.
type replicaTable interface {
	K() int
	Words() int
	Word(v graph.VertexID, w int) uint64
	Count(v graph.VertexID) int
	Partitions(v graph.VertexID, dst []int32) []int32
}

// Options configure how a Snapshot lays out its lookup table.
type Options struct {
	// Shards splits the replica table into vertex-range shards
	// (metrics.ShardedReplicaSets' span layout): shard s owns the
	// contiguous vertex range [s*span, (s+1)*span) with its own
	// independently allocated bitset, so a loader building the next
	// snapshot never writes into cache lines concurrent readers are
	// scanning. 0 or 1 keeps the flat single-slab layout; query answers
	// are bit-identical either way (the conformance matrix holds both).
	Shards int
}

// Snapshot is one epoch of serving state: a finished partitioning frozen
// for lookups. Snapshots are immutable after construction - every field is
// written before the snapshot is published and only read afterwards - so
// any number of goroutines may query one concurrently, and a query that
// captured a snapshot keeps answering from it unaffected by later installs.
type Snapshot struct {
	epoch     uint64
	algorithm string
	order     string
	layout    string

	k           int
	words       int
	numVertices int
	numEdges    int64
	sizes       []int64
	table       replicaTable
}

// NewSnapshot freezes a saved partitioning result into serving form.
// The result's replica table is shared (flat layout) or re-packed into
// vertex-range shards (Options.Shards > 1); sizes are copied so the
// snapshot is sealed against later mutation of r.
func NewSnapshot(r *store.Result, opts Options) (*Snapshot, error) {
	if r == nil || r.Replicas == nil {
		return nil, fmt.Errorf("serve: nil result")
	}
	if r.K < 1 || len(r.Sizes) != r.K {
		return nil, fmt.Errorf("serve: result has %d sizes for k=%d", len(r.Sizes), r.K)
	}
	if got := r.Replicas.NumVertices(); got != r.NumVertices || r.Replicas.K() != r.K {
		return nil, fmt.Errorf("serve: replica table geometry %dv/%dk disagrees with result %dv/%dk",
			got, r.Replicas.K(), r.NumVertices, r.K)
	}
	s := &Snapshot{
		algorithm:   r.Algorithm,
		order:       r.Order,
		layout:      "flat",
		k:           r.K,
		words:       r.Replicas.Words(),
		numVertices: r.NumVertices,
		numEdges:    r.NumEdges,
		sizes:       append([]int64(nil), r.Sizes...),
		table:       r.Replicas,
	}
	if opts.Shards > 1 {
		sh := metrics.NewShardedReplicaSets(r.NumVertices, r.K, opts.Shards)
		for v := 0; v < r.NumVertices; v++ {
			for w := 0; w < s.words; w++ {
				word := r.Replicas.Word(graph.VertexID(v), w)
				for word != 0 {
					b := bits.TrailingZeros64(word)
					sh.Add(graph.VertexID(v), w*64+b)
					word &= word - 1
				}
			}
		}
		s.table = sh
		s.layout = "sharded"
	}
	return s, nil
}

// Epoch returns the install generation (0 until a Server installs the
// snapshot; the Server's copy carries the real epoch).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Algorithm, Order and Layout describe how the snapshot was produced.
func (s *Snapshot) Algorithm() string { return s.algorithm }
func (s *Snapshot) Order() string     { return s.order }
func (s *Snapshot) Layout() string    { return s.layout }

// K returns the partition count.
func (s *Snapshot) K() int { return s.k }

// NumVertices returns the vertex-id space; ids in [0, NumVertices) are
// queryable.
func (s *Snapshot) NumVertices() int { return s.numVertices }

// NumEdges returns the number of edges the partitioning placed.
func (s *Snapshot) NumEdges() int64 { return s.numEdges }

// Size returns the number of edges in partition p.
func (s *Snapshot) Size(p int) int64 { return s.sizes[p] }

// AppendSizes appends every partition's edge count to dst and returns it.
func (s *Snapshot) AppendSizes(dst []int64) []int64 { return append(dst, s.sizes...) }

// Count returns |P(v)|, the number of partitions holding a replica of v.
func (s *Snapshot) Count(v graph.VertexID) (int, error) {
	if int(v) >= s.numVertices {
		return 0, ErrOutOfRange
	}
	return s.table.Count(v), nil
}

// Replicas appends the partitions holding v to dst and returns it. With
// cap(dst) >= K the call performs no allocation; callers on the hot path
// pass the same scratch slice every query.
func (s *Snapshot) Replicas(v graph.VertexID, dst []int32) ([]int32, error) {
	if int(v) >= s.numVertices {
		return dst, ErrOutOfRange
	}
	return s.table.Partitions(v, dst), nil
}

// Primary returns v's designated home partition: the lowest partition id
// holding a replica of v, or -1 for a vertex no edge ever touched. Lowest-id
// is the canonical deterministic master choice - it depends only on P(v),
// so every server over the same snapshot data routes identically.
func (s *Snapshot) Primary(v graph.VertexID) (int32, error) {
	if int(v) >= s.numVertices {
		return -1, ErrOutOfRange
	}
	base := v
	for w := 0; w < s.words; w++ {
		if word := s.table.Word(base, w); word != 0 {
			return int32(w*64 + bits.TrailingZeros64(word)), nil
		}
	}
	return -1, nil
}

// RouteEdge answers "which partition should the edge (src, dst) live in"
// under the vertex-cut placement rule the greedy heuristics stream by,
// evaluated against the frozen tables:
//
//  1. if P(src) and P(dst) intersect, the least-loaded common partition;
//  2. otherwise the least-loaded partition of P(src) union P(dst) (which is
//     whichever side is non-empty when only one is known);
//  3. for two unknown vertices, the globally least-loaded partition.
//
// Ties break to the lowest partition id, and "load" is the snapshot's
// frozen edge counts, so routing is a pure function of the snapshot - every
// replica of the service answers identically, and answers never tear
// across a reload (the whole decision reads one snapshot).
func (s *Snapshot) RouteEdge(src, dst graph.VertexID) (int32, error) {
	if int(src) >= s.numVertices || int(dst) >= s.numVertices {
		return -1, ErrOutOfRange
	}
	if p := s.bestCommon(src, dst, true); p >= 0 {
		return p, nil
	}
	if p := s.bestCommon(src, dst, false); p >= 0 {
		return p, nil
	}
	return s.leastLoaded(), nil
}

// bestCommon returns the least-loaded partition in the intersection
// (intersect=true) or union of P(u) and P(v), or -1 when the combination is
// empty. Word-at-a-time: no candidate list is ever materialized.
func (s *Snapshot) bestCommon(u, v graph.VertexID, intersect bool) int32 {
	best := int32(-1)
	for w := 0; w < s.words; w++ {
		wu, wv := s.table.Word(u, w), s.table.Word(v, w)
		word := wu | wv
		if intersect {
			word = wu & wv
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			p := int32(w*64 + b)
			if best < 0 || s.sizes[p] < s.sizes[best] {
				best = p
			}
			word &= word - 1
		}
	}
	return best
}

// leastLoaded returns the globally least-loaded partition (ties lowest id).
func (s *Snapshot) leastLoaded() int32 {
	best := int32(0)
	for p := int32(1); p < int32(s.k); p++ {
		if s.sizes[p] < s.sizes[best] {
			best = p
		}
	}
	return best
}

// Builder accumulates a partitioning into result form as assignments
// stream past - the serving-side twin of metrics.Evaluator, and the hook
// the out-of-core path uses to save a result without ever materializing
// the O(|E|) assignment: chain Observe onto the partitioner's Emit.
type Builder struct {
	rs    *metrics.ReplicaSets
	sizes []int64
	k     int
	n     int
	edges int64
}

// NewBuilder returns a builder for a stream over numVertices vertices and k
// partitions.
func NewBuilder(numVertices, k int) (*Builder, error) {
	if k < 1 {
		return nil, fmt.Errorf("serve: k must be >= 1, got %d", k)
	}
	if numVertices < 0 {
		return nil, fmt.Errorf("serve: negative vertex count %d", numVertices)
	}
	return &Builder{
		rs:    metrics.NewReplicaSets(numVertices, k),
		sizes: make([]int64, k),
		k:     k,
		n:     numVertices,
	}, nil
}

// Observe accumulates one run of streamed edges with their partition
// assignments (assign[i] is the partition of edges[i]).
func (b *Builder) Observe(edges []graph.Edge, assign []int32) error {
	if len(edges) != len(assign) {
		return fmt.Errorf("serve: observed %d edges with %d assignments", len(edges), len(assign))
	}
	for i, e := range edges {
		p := assign[i]
		if p < 0 || int(p) >= b.k {
			return fmt.Errorf("serve: edge %d assigned to invalid partition %d (k=%d)", b.edges+int64(i), p, b.k)
		}
		b.sizes[p]++
		b.rs.Add(e.Src, int(p))
		b.rs.Add(e.Dst, int(p))
	}
	b.edges += int64(len(edges))
	return nil
}

// Result seals everything observed into the saveable/serveable form. The
// builder's tables are handed over, not copied; the builder must not be
// observed into afterwards.
func (b *Builder) Result(algorithm, order string) *store.Result {
	return &store.Result{
		Algorithm:   algorithm,
		Order:       order,
		K:           b.k,
		NumVertices: b.n,
		NumEdges:    b.edges,
		Sizes:       b.sizes,
		Replicas:    b.rs,
	}
}

// FromRun converts a finished in-memory partitioning run into result form
// by replaying its stream against its assignment. Out-of-core runs have no
// materialized assignment; they save results by chaining a Builder onto
// their Emit callback instead.
func FromRun(res *partition.Result) (*store.Result, error) {
	if res.Assign == nil {
		return nil, fmt.Errorf("serve: run has no materialized assignment (out-of-core? chain a Builder onto Emit)")
	}
	b, err := NewBuilder(res.NumVertices, res.K)
	if err != nil {
		return nil, err
	}
	err = stream.ForEach(res.Stream, func(off int, blk []graph.Edge) error {
		return b.Observe(blk, res.Assign[off:off+len(blk)])
	})
	if err != nil {
		return nil, err
	}
	return b.Result(res.Algorithm, res.Order.String()), nil
}
