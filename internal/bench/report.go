package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Cell is one grid point of a suite run: one algorithm on one dataset at
// one partition count and seed, with the quality and cost numbers the
// paper's figures are built from.
type Cell struct {
	Algorithm string `json:"algorithm"`
	Dataset   string `json:"dataset"`
	K         int    `json:"k"`
	Seed      uint64 `json:"seed"`
	// Order is the stream order the algorithm ran under (its preference).
	Order string `json:"order"`
	// Vertices and Edges describe the built graph (after scaling).
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// ReplicationFactor and RelativeBalance are the Section II-B quality
	// metrics; both are deterministic given (algorithm, dataset, k, seed).
	ReplicationFactor float64 `json:"replication_factor"`
	RelativeBalance   float64 `json:"relative_balance"`
	// RuntimeNS is the partitioning wall time. Unlike the quality metrics
	// it varies run to run and across hardware.
	RuntimeNS int64 `json:"runtime_ns"`
	// StateBytes is the algorithm-state memory model (Figure 6).
	StateBytes int64 `json:"state_bytes"`
	// Allocs and AllocBytes are the heap allocations (count and bytes)
	// performed while running the cell, measured as runtime.MemStats deltas
	// around the run. With a serial suite (workers=1) they are deterministic
	// functions of the code - unlike wall time - so Diff gates on them
	// strictly: any growth is a regression. Zero means "not recorded"
	// (reports from before the field existed, or parallel runs, whose
	// deltas interleave other workers' allocations).
	Allocs     int64 `json:"allocs,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
}

// ID names the cell's grid coordinates (stable across runs; runtime and
// quality excluded), the join key for baseline diffs.
func (c Cell) ID() string {
	return fmt.Sprintf("%s/%s k=%d seed=%d", c.Algorithm, c.Dataset, c.K, c.Seed)
}

// Report is a machine-readable suite result, serialized as
// BENCH_<experiment>.json so every future change has a perf trajectory to
// diff against. Quality fields are deterministic; runtime fields carry the
// run metadata needed to interpret them (go version, GOMAXPROCS, workers).
type Report struct {
	// Experiment names the run; the canonical full grid is "suite".
	Experiment string `json:"experiment"`
	// GoVersion and GOMAXPROCS identify the toolchain and hardware budget
	// the runtime numbers were measured under.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Workers is the suite worker-pool size used (1 = serial).
	Workers int `json:"workers"`
	// Scale, Algorithms, Datasets, Ks and Seeds reproduce the grid.
	Scale      float64  `json:"scale"`
	Algorithms []string `json:"algorithms"`
	Datasets   []string `json:"datasets"`
	Ks         []int    `json:"ks"`
	Seeds      []uint64 `json:"seeds"`
	// WallTimeNS is end-to-end suite time (graph building included).
	WallTimeNS int64 `json:"wall_time_ns"`
	// StreamOrdersBuilt counts distinct stream orderings materialized by
	// the shared cache - at most one per (graph, order, seed) key (seed
	// only distinguishes Random), however many cells consumed them.
	StreamOrdersBuilt int64 `json:"stream_orders_built"`
	// Cells holds one entry per grid point, in deterministic
	// dataset-major, algorithm, k, seed order.
	Cells []Cell `json:"cells"`
	// StreamCells holds the out-of-core streaming grid (dataset x backend
	// x on-disk format), when the suite ran with Streaming enabled.
	StreamCells []StreamCell `json:"stream_cells,omitempty"`
	// ParallelCells holds the parallel-streaming scaling grid (dataset x
	// algorithm x decode workers), when the suite ran with Streaming
	// enabled. Quality is gated against the workers=1 cell at measurement
	// time, so the column is bit-identical by construction.
	ParallelCells []ParallelCell `json:"parallel_cells,omitempty"`
	// ServeCells holds the placement-service grid (dataset x snapshot
	// layout x client count), when the suite ran with Streaming enabled.
	// The single-client cells' allocs/op is gated to exactly zero at
	// measurement time.
	ServeCells []ServeCell `json:"serve_cells,omitempty"`
	// ScoreCells holds the parallel-scoring scaling grid (dataset x
	// algorithm x score workers), when the suite ran with Streaming
	// enabled. Quality is gated against the score-workers=1 cell at
	// measurement time, so the column is bit-identical by construction.
	ScoreCells []ScoreCell `json:"score_cells,omitempty"`
	// CheckpointCells holds the checkpoint-overhead grid (dataset x
	// algorithm, bare vs default-cadence checkpointing), when the suite ran
	// with Streaming enabled. Quality and kill+resume bit-identity are
	// gated at measurement time.
	CheckpointCells []CheckpointCell `json:"checkpoint_cells,omitempty"`
}

// Filename is the canonical on-disk name for the report.
func (r *Report) Filename() string {
	return fmt.Sprintf("BENCH_%s.json", r.Experiment)
}

// hasAllocs reports whether the report carries allocation data (any cell
// with a non-zero count; reports predating the field decode to all-zero).
func (r *Report) hasAllocs() bool {
	for i := range r.Cells {
		if r.Cells[i].Allocs != 0 {
			return true
		}
	}
	return len(r.Cells) == 0
}

// WriteJSON serializes the report (indented, trailing newline).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (conventionally r.Filename()).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("parsing report: %w", err)
	}
	return &r, nil
}

// LoadReport reads a report file written by WriteFile.
func LoadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return r, nil
}

// Table renders the report as one human-readable table per dataset.
func (r *Report) Table() []Table {
	byDataset := map[string][]Cell{}
	for _, c := range r.Cells {
		byDataset[c.Dataset] = append(byDataset[c.Dataset], c)
	}
	var tables []Table
	for _, ds := range r.Datasets {
		cells := byDataset[ds]
		if len(cells) == 0 {
			continue
		}
		t := Table{
			ID:     fmt.Sprintf("%s-%s", r.Experiment, ds),
			Title:  fmt.Sprintf("Suite results (%s, scale %.2f)", ds, r.Scale),
			Header: []string{"algorithm", "k", "seed", "RF", "balance", "runtime(ms)", "state(MB)", "allocs"},
			Note: fmt.Sprintf("%s, GOMAXPROCS=%d, %d workers, %d stream orders built",
				r.GoVersion, r.GOMAXPROCS, r.Workers, r.StreamOrdersBuilt),
		}
		for _, c := range cells {
			allocs := "-"
			if c.Allocs != 0 {
				allocs = fmt.Sprintf("%d", c.Allocs)
			}
			t.AddRow(c.Algorithm, fmt.Sprintf("%d", c.K), fmt.Sprintf("%d", c.Seed),
				f3(c.ReplicationFactor), f3(c.RelativeBalance),
				fmt.Sprintf("%.1f", float64(c.RuntimeNS)/1e6), mb(c.StateBytes), allocs)
		}
		tables = append(tables, t)
	}
	if len(r.StreamCells) > 0 {
		t := Table{
			ID:     fmt.Sprintf("%s-streaming", r.Experiment),
			Title:  fmt.Sprintf("Out-of-core streaming (scale %.2f, CLUGP k=%d)", r.Scale, streamK),
			Header: []string{"dataset", "backend", "format", "B/edge", "decode(ms)", "Medges/s", "clugp(ms)", "RF"},
			Note:   "decode = one warm full pass (stream.Drain); clugp = three restreaming passes, assignment discarded as emitted",
		}
		for _, c := range r.StreamCells {
			t.AddRow(c.Dataset, c.Backend, c.Format,
				fmt.Sprintf("%.2f", c.BytesPerEdge),
				fmt.Sprintf("%.1f", float64(c.DecodeNS)/1e6),
				fmt.Sprintf("%.1f", c.DecodeMEdgesPerSec),
				fmt.Sprintf("%.1f", float64(c.PartitionNS)/1e6),
				f3(c.ReplicationFactor))
		}
		tables = append(tables, t)
	}
	if len(r.ServeCells) > 0 {
		t := Table{
			ID:     fmt.Sprintf("%s-serve", r.Experiment),
			Title:  fmt.Sprintf("Placement service (scale %.2f, CLUGP k=%d)", r.Scale, serveK),
			Header: []string{"dataset", "layout", "clients", "Mlookups/s", "p50(ns)", "p99(ns)", "allocs/op"},
			Note:   "mixed primary/replica-set/edge-routing workload; single-client allocs/op gated to 0 at measurement",
		}
		for _, c := range r.ServeCells {
			t.AddRow(c.Dataset, c.Layout, fmt.Sprintf("%d", c.Clients),
				fmt.Sprintf("%.2f", c.LookupsPerSec/1e6),
				fmt.Sprintf("%d", c.P50NS),
				fmt.Sprintf("%d", c.P99NS),
				fmt.Sprintf("%.2f", c.AllocsPerOp))
		}
		tables = append(tables, t)
	}
	if len(r.ParallelCells) > 0 {
		t := Table{
			ID:     fmt.Sprintf("%s-parallel", r.Experiment),
			Title:  fmt.Sprintf("Parallel streaming scaling (scale %.2f, mmap/CGR2, k=%d)", r.Scale, streamK),
			Header: []string{"dataset", "algorithm", "workers", "runtime(ms)", "speedup", "efficiency", "RF"},
			Note:   "quality is gated bit-identical to workers=1 when measured; efficiency = speedup/workers",
		}
		for _, c := range r.ParallelCells {
			t.AddRow(c.Dataset, c.Algorithm, fmt.Sprintf("%d", c.Workers),
				fmt.Sprintf("%.1f", float64(c.PartitionNS)/1e6),
				fmt.Sprintf("%.2fx", c.Speedup),
				fmt.Sprintf("%.2f", c.Efficiency),
				f3(c.ReplicationFactor))
		}
		tables = append(tables, t)
	}
	if len(r.ScoreCells) > 0 {
		t := Table{
			ID:     fmt.Sprintf("%s-score", r.Experiment),
			Title:  fmt.Sprintf("Parallel scoring scaling (scale %.2f, mmap/CGR3, k=%d)", r.Scale, streamK),
			Header: []string{"dataset", "algorithm", "score-workers", "runtime(ms)", "speedup", "efficiency", "RF"},
			Note:   "decode serial; quality is gated bit-identical to score-workers=1 when measured; efficiency = speedup/score-workers",
		}
		for _, c := range r.ScoreCells {
			t.AddRow(c.Dataset, c.Algorithm, fmt.Sprintf("%d", c.ScoreWorkers),
				fmt.Sprintf("%.1f", float64(c.PartitionNS)/1e6),
				fmt.Sprintf("%.2fx", c.Speedup),
				fmt.Sprintf("%.2f", c.Efficiency),
				f3(c.ReplicationFactor))
		}
		tables = append(tables, t)
	}
	if len(r.CheckpointCells) > 0 {
		t := Table{
			ID:     fmt.Sprintf("%s-checkpoint", r.Experiment),
			Title:  fmt.Sprintf("Checkpoint overhead (scale %.2f, mmap/CGR3, k=%d, default cadence)", r.Scale, streamK),
			Header: []string{"dataset", "algorithm", "bare(ms)", "ckpt(ms)", "overhead", "written", "bytes", "RF"},
			Note:   "quality and kill+resume bit-identity are gated when measured; overhead = (ckpt-bare)/bare",
		}
		for _, c := range r.CheckpointCells {
			t.AddRow(c.Dataset, c.Algorithm,
				fmt.Sprintf("%.1f", float64(c.BaselineNS)/1e6),
				fmt.Sprintf("%.1f", float64(c.CheckpointNS)/1e6),
				fmt.Sprintf("%+.1f%%", c.OverheadPct),
				fmt.Sprintf("%d", c.Written),
				fmt.Sprintf("%d", c.CheckpointBytes),
				f3(c.ReplicationFactor))
		}
		tables = append(tables, t)
	}
	return tables
}

// DiffOptions set the regression thresholds for Diff.
type DiffOptions struct {
	// QualityTolerance is the relative worsening of replication factor or
	// balance tolerated before a cell is flagged. Quality is deterministic
	// for a fixed grid, so the default is essentially exact (1e-9, noise
	// floor only).
	QualityTolerance float64
	// RuntimeTolerance is the relative runtime growth tolerated before a
	// cell is flagged. Runtime is noisy and hardware-dependent; the
	// default 0.5 flags only >50% slowdowns.
	RuntimeTolerance float64
	// RuntimeFloorNS ignores runtime changes whose absolute difference is
	// smaller than this, whatever the relative change - sub-floor cells
	// are scheduler noise. Default 50ms; set negative to disable.
	RuntimeFloorNS int64
	// AllocTolerance is the relative growth of a cell's allocation count or
	// bytes tolerated before it is flagged. Allocations measured by a
	// serial suite are deterministic, so the default is essentially exact
	// (1e-9, float noise floor only): any growth is a regression.
	AllocTolerance float64
	// AllocFloor and AllocBytesFloor ignore allocation changes whose
	// absolute difference is below them. The measured code is deterministic
	// but the Go runtime occasionally contributes a stray allocation or two
	// (goroutine bookkeeping) to a cell's delta; a real per-edge or
	// per-batch regression shows up as hundreds. Defaults 8 allocations and
	// 4096 bytes; set negative to disable.
	AllocFloor      int64
	AllocBytesFloor int64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.QualityTolerance == 0 {
		o.QualityTolerance = 1e-9
	}
	if o.RuntimeTolerance == 0 {
		o.RuntimeTolerance = 0.5
	}
	if o.RuntimeFloorNS == 0 {
		o.RuntimeFloorNS = 50 * 1e6
	}
	if o.AllocTolerance == 0 {
		o.AllocTolerance = 1e-9
	}
	if o.AllocFloor == 0 {
		o.AllocFloor = 8
	}
	if o.AllocBytesFloor == 0 {
		o.AllocBytesFloor = 4096
	}
	return o
}

// Delta is one metric change on one cell between two reports.
type Delta struct {
	Cell     string  `json:"cell"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Relative is (current-baseline)/baseline; positive is worse for every
	// diffed metric (RF, balance and runtime all want to be small).
	Relative float64 `json:"relative"`
}

// DiffResult compares a current report against a baseline.
type DiffResult struct {
	// Matched counts cells present in both reports (joined by Cell.ID).
	Matched int `json:"matched"`
	// Incomparable lists matched cells whose underlying graphs differ
	// (vertex or edge counts disagree - a scale or generator change).
	// Their metrics describe different inputs and are not classified.
	Incomparable []string `json:"incomparable,omitempty"`
	// RuntimeSkipped is non-empty when runtime comparison was skipped
	// because the reports were measured under different conditions
	// (worker count or GOMAXPROCS); quality is still compared.
	RuntimeSkipped string `json:"runtime_skipped,omitempty"`
	// AllocSkipped is non-empty when allocation comparison was skipped:
	// either report ran with parallel workers (concurrent cells interleave
	// their MemStats deltas, so counts are not attributable) or the
	// baseline predates allocation recording.
	AllocSkipped string `json:"alloc_skipped,omitempty"`
	// StreamSkipped is non-empty when the streaming grid was not compared
	// (either report lacks stream cells).
	StreamSkipped string `json:"stream_skipped,omitempty"`
	// ParallelSkipped is non-empty when the parallel-streaming grid was not
	// compared (either report lacks parallel cells).
	ParallelSkipped string `json:"parallel_skipped,omitempty"`
	// ServeSkipped is non-empty when the placement-service grid was not
	// compared (either report lacks serve cells).
	ServeSkipped string `json:"serve_skipped,omitempty"`
	// ScoreSkipped is non-empty when the parallel-scoring grid was not
	// compared (either report lacks score cells).
	ScoreSkipped string `json:"score_skipped,omitempty"`
	// CheckpointSkipped is non-empty when the checkpoint-overhead grid was
	// not compared (either report lacks checkpoint cells).
	CheckpointSkipped string `json:"checkpoint_skipped,omitempty"`
	// OnlyBaseline and OnlyCurrent list cells without a counterpart.
	OnlyBaseline []string `json:"only_baseline,omitempty"`
	OnlyCurrent  []string `json:"only_current,omitempty"`
	// Regressions are metric worsenings beyond tolerance, worst first.
	Regressions []Delta `json:"regressions,omitempty"`
	// Improvements are metric gains beyond the same tolerance, best first.
	Improvements []Delta `json:"improvements,omitempty"`
}

// HasRegressions reports whether any metric worsened beyond tolerance.
func (d *DiffResult) HasRegressions() bool { return len(d.Regressions) > 0 }

// Diff joins current against baseline cell-by-cell and classifies every
// metric change. Quality metrics use QualityTolerance, runtime uses
// RuntimeTolerance.
func Diff(baseline, current *Report, opts DiffOptions) *DiffResult {
	opts = opts.withDefaults()
	base := make(map[string]Cell, len(baseline.Cells))
	for _, c := range baseline.Cells {
		base[c.ID()] = c
	}
	d := &DiffResult{}
	// Runtimes measured under different scheduling conditions are not
	// comparable: a 4-worker run oversubscribing the cores a serial
	// baseline had to itself inflates every cell's wall time without any
	// code being slower. Quality is scheduling-independent and is always
	// compared.
	switch {
	case baseline.Workers != current.Workers:
		d.RuntimeSkipped = fmt.Sprintf("workers differ (baseline %d, current %d)", baseline.Workers, current.Workers)
	case baseline.GOMAXPROCS != current.GOMAXPROCS:
		d.RuntimeSkipped = fmt.Sprintf("GOMAXPROCS differs (baseline %d, current %d)", baseline.GOMAXPROCS, current.GOMAXPROCS)
	}
	// Allocation counts are only attributable to a cell when cells ran one
	// at a time; a parallel run interleaves every worker's allocations into
	// each delta. They are also only deterministic at GOMAXPROCS=1: above
	// it, the partitioner-internal worker pools (the cluster game) allocate
	// per-worker scratch lazily on whichever workers the scheduler happens
	// to hand batches, so even two identical runs disagree.
	switch {
	case baseline.Workers != 1 || current.Workers != 1:
		d.AllocSkipped = fmt.Sprintf("allocation deltas need a serial suite (workers: baseline %d, current %d)", baseline.Workers, current.Workers)
	case baseline.GOMAXPROCS != 1 || current.GOMAXPROCS != 1:
		d.AllocSkipped = fmt.Sprintf("allocation deltas need GOMAXPROCS=1 (baseline %d, current %d): scheduler-dependent per-worker scratch otherwise", baseline.GOMAXPROCS, current.GOMAXPROCS)
	case !baseline.hasAllocs():
		d.AllocSkipped = "baseline has no allocation data"
	case !current.hasAllocs():
		d.AllocSkipped = "current report has no allocation data"
	}
	seen := make(map[string]bool, len(current.Cells))
	for _, cur := range current.Cells {
		id := cur.ID()
		seen[id] = true
		old, ok := base[id]
		if !ok {
			d.OnlyCurrent = append(d.OnlyCurrent, id)
			continue
		}
		d.Matched++
		// Same grid coordinates on a different graph (the reports were run
		// at different -scale, or a generator changed): the metrics
		// describe different inputs, so classifying them as regressions
		// would be noise. Surface the mismatch instead.
		if old.Vertices != cur.Vertices || old.Edges != cur.Edges {
			d.Incomparable = append(d.Incomparable, id)
			continue
		}
		d.classify(id, "replication_factor", old.ReplicationFactor, cur.ReplicationFactor, opts.QualityTolerance)
		d.classify(id, "relative_balance", old.RelativeBalance, cur.RelativeBalance, opts.QualityTolerance)
		if d.RuntimeSkipped == "" && math.Abs(float64(cur.RuntimeNS-old.RuntimeNS)) >= float64(opts.RuntimeFloorNS) {
			d.classify(id, "runtime", float64(old.RuntimeNS), float64(cur.RuntimeNS), opts.RuntimeTolerance)
		}
		if d.AllocSkipped == "" {
			if abs64(cur.Allocs-old.Allocs) >= opts.AllocFloor {
				d.classify(id, "allocs", float64(old.Allocs), float64(cur.Allocs), opts.AllocTolerance)
			}
			if abs64(cur.AllocBytes-old.AllocBytes) >= opts.AllocBytesFloor {
				d.classify(id, "alloc_bytes", float64(old.AllocBytes), float64(cur.AllocBytes), opts.AllocTolerance)
			}
		}
	}
	for _, c := range baseline.Cells {
		if !seen[c.ID()] {
			d.OnlyBaseline = append(d.OnlyBaseline, c.ID())
		}
	}
	d.diffStreamCells(baseline, current, opts)
	d.diffParallelCells(baseline, current, opts)
	d.diffServeCells(baseline, current, opts)
	d.diffScoreCells(baseline, current, opts)
	d.diffCheckpointCells(baseline, current, opts)
	sort.Slice(d.Regressions, func(i, j int) bool { return d.Regressions[i].Relative > d.Regressions[j].Relative })
	sort.Slice(d.Improvements, func(i, j int) bool { return d.Improvements[i].Relative < d.Improvements[j].Relative })
	return d
}

// diffStreamCells joins the streaming grids. Bytes/edge is a deterministic
// function of the encoder and is gated exactly like a quality metric - any
// growth is a compression regression; decode and partition wall clocks use
// the runtime tolerance (and are skipped under the same scheduling
// conditions as cell runtimes).
func (d *DiffResult) diffStreamCells(baseline, current *Report, opts DiffOptions) {
	switch {
	case len(baseline.StreamCells) == 0 && len(current.StreamCells) == 0:
		return
	case len(baseline.StreamCells) == 0:
		d.StreamSkipped = "baseline has no stream cells"
		return
	case len(current.StreamCells) == 0:
		d.StreamSkipped = "current report has no stream cells"
		return
	}
	base := make(map[string]StreamCell, len(baseline.StreamCells))
	for _, c := range baseline.StreamCells {
		base[c.ID()] = c
	}
	seen := make(map[string]bool, len(current.StreamCells))
	for _, cur := range current.StreamCells {
		id := cur.ID()
		seen[id] = true
		old, ok := base[id]
		if !ok {
			d.OnlyCurrent = append(d.OnlyCurrent, id)
			continue
		}
		d.Matched++
		if old.Vertices != cur.Vertices || old.Edges != cur.Edges {
			d.Incomparable = append(d.Incomparable, id)
			continue
		}
		d.classify(id, "bytes_per_edge", old.BytesPerEdge, cur.BytesPerEdge, opts.QualityTolerance)
		d.classify(id, "replication_factor", old.ReplicationFactor, cur.ReplicationFactor, opts.QualityTolerance)
		d.classify(id, "relative_balance", old.RelativeBalance, cur.RelativeBalance, opts.QualityTolerance)
		if d.RuntimeSkipped == "" {
			if abs64(cur.DecodeNS-old.DecodeNS) >= opts.RuntimeFloorNS {
				d.classify(id, "decode", float64(old.DecodeNS), float64(cur.DecodeNS), opts.RuntimeTolerance)
			}
			if abs64(cur.PartitionNS-old.PartitionNS) >= opts.RuntimeFloorNS {
				d.classify(id, "partition", float64(old.PartitionNS), float64(cur.PartitionNS), opts.RuntimeTolerance)
			}
		}
	}
	for _, c := range baseline.StreamCells {
		if !seen[c.ID()] {
			d.OnlyBaseline = append(d.OnlyBaseline, c.ID())
		}
	}
}

// diffParallelCells joins the parallel-streaming scaling grids. Quality is
// gated exactly (it is bit-identical to the serial pass by construction, so
// any drift is a determinism break, not noise); the per-cell wall clock
// uses the runtime tolerance. Speedup and efficiency are derived from the
// runtimes and hardware-dependent, so they are never diffed themselves.
func (d *DiffResult) diffParallelCells(baseline, current *Report, opts DiffOptions) {
	switch {
	case len(baseline.ParallelCells) == 0 && len(current.ParallelCells) == 0:
		return
	case len(baseline.ParallelCells) == 0:
		d.ParallelSkipped = "baseline has no parallel cells"
		return
	case len(current.ParallelCells) == 0:
		d.ParallelSkipped = "current report has no parallel cells"
		return
	}
	base := make(map[string]ParallelCell, len(baseline.ParallelCells))
	for _, c := range baseline.ParallelCells {
		base[c.ID()] = c
	}
	seen := make(map[string]bool, len(current.ParallelCells))
	for _, cur := range current.ParallelCells {
		id := cur.ID()
		seen[id] = true
		old, ok := base[id]
		if !ok {
			d.OnlyCurrent = append(d.OnlyCurrent, id)
			continue
		}
		d.Matched++
		if old.Vertices != cur.Vertices || old.Edges != cur.Edges {
			d.Incomparable = append(d.Incomparable, id)
			continue
		}
		d.classify(id, "replication_factor", old.ReplicationFactor, cur.ReplicationFactor, opts.QualityTolerance)
		d.classify(id, "relative_balance", old.RelativeBalance, cur.RelativeBalance, opts.QualityTolerance)
		if d.RuntimeSkipped == "" && abs64(cur.PartitionNS-old.PartitionNS) >= opts.RuntimeFloorNS {
			d.classify(id, "partition", float64(old.PartitionNS), float64(cur.PartitionNS), opts.RuntimeTolerance)
		}
	}
	for _, c := range baseline.ParallelCells {
		if !seen[c.ID()] {
			d.OnlyBaseline = append(d.OnlyBaseline, c.ID())
		}
	}
}

// diffServeCells joins the placement-service grids. Allocations per query
// are a deterministic function of the query path (the single-client cell is
// additionally hard-gated to zero when measured), so they are compared
// exactly; the latency percentiles use the runtime tolerance without the
// absolute floor - they are per-query nanoseconds, far below RuntimeFloorNS
// by construction. Throughput is the inverse of latency under this workload
// and is never diffed itself.
func (d *DiffResult) diffServeCells(baseline, current *Report, opts DiffOptions) {
	switch {
	case len(baseline.ServeCells) == 0 && len(current.ServeCells) == 0:
		return
	case len(baseline.ServeCells) == 0:
		d.ServeSkipped = "baseline has no serve cells"
		return
	case len(current.ServeCells) == 0:
		d.ServeSkipped = "current report has no serve cells"
		return
	}
	base := make(map[string]ServeCell, len(baseline.ServeCells))
	for _, c := range baseline.ServeCells {
		base[c.ID()] = c
	}
	seen := make(map[string]bool, len(current.ServeCells))
	for _, cur := range current.ServeCells {
		id := cur.ID()
		seen[id] = true
		old, ok := base[id]
		if !ok {
			d.OnlyCurrent = append(d.OnlyCurrent, id)
			continue
		}
		d.Matched++
		if old.Vertices != cur.Vertices || old.Edges != cur.Edges {
			d.Incomparable = append(d.Incomparable, id)
			continue
		}
		d.classify(id, "allocs_per_op", old.AllocsPerOp, cur.AllocsPerOp, opts.QualityTolerance)
		if d.RuntimeSkipped == "" {
			d.classify(id, "p50_latency", float64(old.P50NS), float64(cur.P50NS), opts.RuntimeTolerance)
			d.classify(id, "p99_latency", float64(old.P99NS), float64(cur.P99NS), opts.RuntimeTolerance)
		}
	}
	for _, c := range baseline.ServeCells {
		if !seen[c.ID()] {
			d.OnlyBaseline = append(d.OnlyBaseline, c.ID())
		}
	}
}

// diffScoreCells joins the parallel-scoring scaling grids, with the same
// policy as the parallel grid: quality is gated exactly (sharded scoring is
// bit-identical to serial by construction, so any drift is a determinism
// break), wall clock uses the runtime tolerance, and the derived speedup
// and efficiency columns are never diffed themselves.
func (d *DiffResult) diffScoreCells(baseline, current *Report, opts DiffOptions) {
	switch {
	case len(baseline.ScoreCells) == 0 && len(current.ScoreCells) == 0:
		return
	case len(baseline.ScoreCells) == 0:
		d.ScoreSkipped = "baseline has no score cells"
		return
	case len(current.ScoreCells) == 0:
		d.ScoreSkipped = "current report has no score cells"
		return
	}
	base := make(map[string]ScoreCell, len(baseline.ScoreCells))
	for _, c := range baseline.ScoreCells {
		base[c.ID()] = c
	}
	seen := make(map[string]bool, len(current.ScoreCells))
	for _, cur := range current.ScoreCells {
		id := cur.ID()
		seen[id] = true
		old, ok := base[id]
		if !ok {
			d.OnlyCurrent = append(d.OnlyCurrent, id)
			continue
		}
		d.Matched++
		if old.Vertices != cur.Vertices || old.Edges != cur.Edges {
			d.Incomparable = append(d.Incomparable, id)
			continue
		}
		d.classify(id, "replication_factor", old.ReplicationFactor, cur.ReplicationFactor, opts.QualityTolerance)
		d.classify(id, "relative_balance", old.RelativeBalance, cur.RelativeBalance, opts.QualityTolerance)
		if d.RuntimeSkipped == "" && abs64(cur.PartitionNS-old.PartitionNS) >= opts.RuntimeFloorNS {
			d.classify(id, "partition", float64(old.PartitionNS), float64(cur.PartitionNS), opts.RuntimeTolerance)
		}
	}
	for _, c := range baseline.ScoreCells {
		if !seen[c.ID()] {
			d.OnlyBaseline = append(d.OnlyBaseline, c.ID())
		}
	}
}

// diffCheckpointCells joins the checkpoint-overhead grids: quality is gated
// exactly (the checkpointed run is bit-identical to the bare one by
// construction), both wall clocks use the runtime tolerance - a regression
// in checkpoint_ns with a flat baseline_ns means the checkpoint write path
// itself got slower - and the derived overhead percentage, the written
// count and the checkpoint sizes are informational, never diffed (cadence
// and state-format changes move them legitimately).
func (d *DiffResult) diffCheckpointCells(baseline, current *Report, opts DiffOptions) {
	switch {
	case len(baseline.CheckpointCells) == 0 && len(current.CheckpointCells) == 0:
		return
	case len(baseline.CheckpointCells) == 0:
		d.CheckpointSkipped = "baseline has no checkpoint cells"
		return
	case len(current.CheckpointCells) == 0:
		d.CheckpointSkipped = "current report has no checkpoint cells"
		return
	}
	base := make(map[string]CheckpointCell, len(baseline.CheckpointCells))
	for _, c := range baseline.CheckpointCells {
		base[c.ID()] = c
	}
	seen := make(map[string]bool, len(current.CheckpointCells))
	for _, cur := range current.CheckpointCells {
		id := cur.ID()
		seen[id] = true
		old, ok := base[id]
		if !ok {
			d.OnlyCurrent = append(d.OnlyCurrent, id)
			continue
		}
		d.Matched++
		if old.Vertices != cur.Vertices || old.Edges != cur.Edges {
			d.Incomparable = append(d.Incomparable, id)
			continue
		}
		d.classify(id, "replication_factor", old.ReplicationFactor, cur.ReplicationFactor, opts.QualityTolerance)
		d.classify(id, "relative_balance", old.RelativeBalance, cur.RelativeBalance, opts.QualityTolerance)
		if d.RuntimeSkipped == "" {
			if abs64(cur.BaselineNS-old.BaselineNS) >= opts.RuntimeFloorNS {
				d.classify(id, "baseline", float64(old.BaselineNS), float64(cur.BaselineNS), opts.RuntimeTolerance)
			}
			if abs64(cur.CheckpointNS-old.CheckpointNS) >= opts.RuntimeFloorNS {
				d.classify(id, "checkpoint", float64(old.CheckpointNS), float64(cur.CheckpointNS), opts.RuntimeTolerance)
			}
		}
	}
	for _, c := range baseline.CheckpointCells {
		if !seen[c.ID()] {
			d.OnlyBaseline = append(d.OnlyBaseline, c.ID())
		}
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func (d *DiffResult) classify(id, metric string, old, cur, tol float64) {
	if old == cur {
		return
	}
	var rel float64
	switch {
	case old != 0:
		rel = (cur - old) / math.Abs(old)
	case cur > 0:
		rel = math.Inf(1)
	default:
		rel = math.Inf(-1)
	}
	delta := Delta{Cell: id, Metric: metric, Baseline: old, Current: cur, Relative: rel}
	switch {
	case rel > tol:
		d.Regressions = append(d.Regressions, delta)
	case rel < -tol:
		d.Improvements = append(d.Improvements, delta)
	}
}

// Table renders the diff as a table: regressions first, then improvements.
func (d *DiffResult) Table() Table {
	t := Table{
		ID:     "baseline-diff",
		Title:  fmt.Sprintf("Baseline comparison (%d cells matched)", d.Matched),
		Header: []string{"status", "cell", "metric", "baseline", "current", "change"},
	}
	row := func(status string, dl Delta) {
		fmtVal := func(v float64) string {
			switch dl.Metric {
			case "runtime", "decode", "partition":
				return fmt.Sprintf("%.1fms", v/1e6)
			case "p50_latency", "p99_latency":
				return fmt.Sprintf("%.0fns", v)
			case "allocs", "alloc_bytes":
				return fmt.Sprintf("%.0f", v)
			}
			return f3(v)
		}
		t.AddRow(status, dl.Cell, dl.Metric, fmtVal(dl.Baseline), fmtVal(dl.Current),
			fmt.Sprintf("%+.1f%%", 100*dl.Relative))
	}
	for _, dl := range d.Regressions {
		row("REGRESSION", dl)
	}
	for _, dl := range d.Improvements {
		row("improved", dl)
	}
	if len(d.Regressions)+len(d.Improvements) == 0 {
		t.AddRow("ok", fmt.Sprintf("all %d matched cells within tolerance", d.Matched), "-", "-", "-", "-")
	}
	var notes []string
	if len(d.Incomparable) > 0 {
		notes = append(notes, fmt.Sprintf("%d cells ran on different graphs (scale or generator changed) and were not compared", len(d.Incomparable)))
	}
	if d.RuntimeSkipped != "" {
		notes = append(notes, "runtime not compared: "+d.RuntimeSkipped)
	}
	if d.AllocSkipped != "" {
		notes = append(notes, "allocations not compared: "+d.AllocSkipped)
	}
	if d.StreamSkipped != "" {
		notes = append(notes, "stream cells not compared: "+d.StreamSkipped)
	}
	if d.ParallelSkipped != "" {
		notes = append(notes, "parallel cells not compared: "+d.ParallelSkipped)
	}
	if d.ServeSkipped != "" {
		notes = append(notes, "serve cells not compared: "+d.ServeSkipped)
	}
	if d.ScoreSkipped != "" {
		notes = append(notes, "score cells not compared: "+d.ScoreSkipped)
	}
	if d.CheckpointSkipped != "" {
		notes = append(notes, "checkpoint cells not compared: "+d.CheckpointSkipped)
	}
	if n := len(d.OnlyBaseline) + len(d.OnlyCurrent); n > 0 {
		notes = append(notes, fmt.Sprintf("%d cells without a counterpart (grid changed): baseline-only %d, current-only %d",
			n, len(d.OnlyBaseline), len(d.OnlyCurrent)))
	}
	t.Note = strings.Join(notes, "; ")
	return t
}
