package stream

import (
	"fmt"
	"io"

	"repro/internal/graph"
)

// Source is a sequential, replayable edge stream with a known vertex count -
// the paper's Definition 1 made into an interface. Edges are delivered in
// runs ("blocks") so consumers iterate a plain slice in their hot loop and
// pay one dynamic call per block instead of one per edge; a View-backed
// source in natural order hands out its base storage in a single zero-copy
// block, while a file-backed source (package store) decodes into a small
// reused buffer, which is what lets partitioners run over graphs that were
// never materialized.
//
// A Source carries one cursor. Consumers that make a pass over the stream
// call Reset first, so a freshly handed-over source always streams from its
// first edge and multi-pass algorithms (the CLUGP passes, restreaming)
// simply Reset between passes. A Source is not safe for concurrent use;
// concurrent consumers each take their own Segment.
type Source interface {
	// NumVertices returns the vertex count; every edge endpoint is smaller.
	NumVertices() int
	// Len returns the number of edges in one full pass of the stream.
	Len() int
	// Reset rewinds the stream to its first edge.
	Reset() error
	// NextBlock returns the next run of consecutive edges in stream order.
	// The returned slice is only valid until the next NextBlock or Reset
	// call - or until the source is closed, for sources that hold
	// resources (their decode buffers may be recycled on Close) - and must
	// not be mutated or retained. After the last edge it returns
	// (nil, io.EOF).
	NextBlock() ([]graph.Edge, error)
}

// Segmenter is a Source whose contiguous index ranges can be opened as
// independent sources - the capability DistributedCLUGP's sharded ingest
// needs. Segment(lo, hi) returns a new Source over edges [lo, hi) of this
// stream with its own cursor (and, for file-backed sources, its own file
// handle), so segments of one stream can be consumed concurrently.
// Segments that hold resources implement io.Closer.
type Segmenter interface {
	Source
	Segment(lo, hi int) (Source, error)
}

// BlockLen is the edge-block granularity sources aim for: large enough to
// amortize the per-block dynamic call and decode setup to nothing, small
// enough (64 KiB of edges) to stay cache- and memory-friendly.
const BlockLen = 8192

// ViewSource adapts a View to Source: a cursor plus the vertex count the
// View itself does not carry. Natural-order views stream their base slice
// as one zero-copy block; permuted views gather each block into an internal
// buffer (allocated once, first use), which costs the same random reads as
// indexed iteration did while letting consumers scan contiguous memory.
type ViewSource struct {
	v   View
	n   int
	pos int
	buf []graph.Edge
}

// Source adapts the view to the Source interface. numVertices must exceed
// every edge endpoint; it is carried verbatim into Source.NumVertices.
func (v View) Source(numVertices int) *ViewSource {
	return &ViewSource{v: v, n: numVertices}
}

// NumVertices implements Source.
func (s *ViewSource) NumVertices() int { return s.n }

// Len implements Source.
func (s *ViewSource) Len() int { return s.v.Len() }

// Reset implements Source. It never fails for in-memory views.
func (s *ViewSource) Reset() error {
	s.pos = 0
	return nil
}

// NextBlock implements Source.
func (s *ViewSource) NextBlock() ([]graph.Edge, error) {
	total := s.v.Len()
	if s.pos >= total {
		return nil, io.EOF
	}
	if s.v.perm == nil {
		blk := s.v.base[s.pos:total]
		s.pos = total
		return blk, nil
	}
	n := total - s.pos
	if n > BlockLen {
		n = BlockLen
	}
	if s.buf == nil {
		s.buf = make([]graph.Edge, BlockLen)
	}
	base, perm := s.v.base, s.v.perm[s.pos:s.pos+n]
	for j, p := range perm {
		s.buf[j] = base[p]
	}
	s.pos += n
	return s.buf[:n], nil
}

// Segment implements Segmenter via View.Slice: segments share the view's
// storage and cost two slice headers each.
func (s *ViewSource) Segment(lo, hi int) (Source, error) {
	if lo < 0 || hi < lo || hi > s.v.Len() {
		return nil, fmt.Errorf("stream: segment [%d,%d) out of range (len %d)", lo, hi, s.v.Len())
	}
	return s.v.Slice(lo, hi).Source(s.n), nil
}

// View returns the underlying view, for consumers that can exploit
// in-memory random access (the order-building cache, tests).
func (s *ViewSource) View() View { return s.v }

// ForEach is the canonical consumption loop: it resets the source and
// streams it block by block into fn, passing each block's global edge
// offset (off is the stream index of blk[0], so stream-aligned data like
// assignments index as data[off+i]). It returns the first error from the
// source or from fn. Every pass in the repository goes through it, so the
// Reset/NextBlock/io.EOF contract lives in one place.
func ForEach(src Source, fn func(off int, blk []graph.Edge) error) error {
	if err := src.Reset(); err != nil {
		return err
	}
	off := 0
	for {
		blk, err := src.NextBlock()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(off, blk); err != nil {
			return err
		}
		off += len(blk)
	}
}

// Drain replays the source start to finish, discarding every block, and
// returns the number of edges streamed. It is the pure-decode pass the
// bench suite times to measure a backend's streaming throughput: exactly
// the I/O and decode work of a partitioning pass with the algorithm cost
// subtracted.
func Drain(src Source) (int, error) {
	n := 0
	err := ForEach(src, func(off int, blk []graph.Edge) error {
		n += len(blk)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Collect materializes a source into a fresh edge slice, resetting it
// first. It exists for interop and tests; the hot paths iterate blocks.
func Collect(src Source) ([]graph.Edge, error) {
	out := make([]graph.Edge, 0, src.Len())
	err := ForEach(src, func(off int, blk []graph.Edge) error {
		out = append(out, blk...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
