package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/partition"
	"repro/internal/store"
)

// ParallelCell is one grid point of the parallel-streaming benchmark: one
// algorithm streaming one dataset out-of-core (mmap backend, CGR2 format)
// with one decode worker count. Its quality numbers are gated at run time
// against the workers=1 cell of the same (dataset, algorithm) - the
// worker-invariance contract of the parallel hot pass - so a report can
// only ever contain bit-identical quality across a scaling column; what
// varies is wall clock, summarized as speedup and per-worker efficiency.
type ParallelCell struct {
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	// Workers is the decode worker count (1 = the serial reference the
	// scaling column is measured against).
	Workers int    `json:"workers"`
	K       int    `json:"k"`
	Seed    uint64 `json:"seed"`
	// Vertices and Edges describe the built graph (after scaling).
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// PartitionNS is the full out-of-core run at this worker count.
	PartitionNS int64 `json:"partition_ns"`
	// Speedup is the workers=1 cell's runtime divided by this cell's;
	// Efficiency is Speedup/Workers (1.0 = perfect scaling). Both are
	// hardware- and load-dependent and are never diffed against baselines;
	// PartitionNS carries the runtime comparison.
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// ReplicationFactor and RelativeBalance must be bit-identical across
	// the whole workers column (enforced when the cells are measured).
	ReplicationFactor float64 `json:"replication_factor"`
	RelativeBalance   float64 `json:"relative_balance"`
}

// ID names the cell's grid coordinates, the join key for baseline diffs.
func (c ParallelCell) ID() string {
	return fmt.Sprintf("parallel/%s/%s w=%d k=%d seed=%d", c.Dataset, c.Algorithm, c.Workers, c.K, c.Seed)
}

// parallelWorkers is the scaling column; parallelAlgos pairs the cheapest
// decode-bound heuristic with the paper's restreaming partitioner.
var (
	parallelWorkers = []int{1, 2, 4}
	parallelAlgos   = []string{"DBH", "CLUGP"}
)

// runParallelCells measures the parallel-streaming grid serially (each cell
// times wall clock over its own worker fleet). Graphs are encoded once into
// a temp directory (mmap + CGR2, the fastest backend pairing, so the decode
// stage - what the workers parallelize - dominates measurable I/O cost).
func runParallelCells(cfg SuiteConfig) ([]ParallelCell, error) {
	datasets := cfg.StreamDatasets
	if len(datasets) == 0 {
		datasets = defaultStreamDatasets
	}
	seed := cfg.Seeds[0]
	dir, err := os.MkdirTemp("", "bench-parallel-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var cells []ParallelCell
	for _, name := range datasets {
		ds, err := DatasetByName(name)
		if err != nil {
			return nil, fmt.Errorf("bench: parallel cells: %w", err)
		}
		g := ds.Build(cfg.Scale)
		suiteLogf(cfg, "parallel: built %s (%d vertices, %d edges)", name, g.NumVertices, g.NumEdges())
		path := filepath.Join(dir, name+".cgr")
		if err := writeEncoded(path, g, store.FormatCGR2); err != nil {
			return nil, err
		}
		src, err := store.OpenMmap(path)
		if err != nil {
			return nil, err
		}
		for _, alg := range parallelAlgos {
			var ref ParallelCell
			for _, workers := range parallelWorkers {
				p, err := partition.New(alg, seed)
				if err != nil {
					src.Close()
					return nil, err
				}
				start := time.Now()
				res, err := partition.RunOutOfCoreOpts(p, src, streamK, nil, partition.OutOfCoreOptions{Workers: workers})
				if err != nil {
					src.Close()
					return nil, fmt.Errorf("bench: parallel cell %s/%s w=%d: %w", name, alg, workers, err)
				}
				elapsed := time.Since(start)
				cell := ParallelCell{
					Dataset: name, Algorithm: alg, Workers: workers,
					K: streamK, Seed: seed,
					Vertices: g.NumVertices, Edges: g.NumEdges(),
					PartitionNS:       elapsed.Nanoseconds(),
					ReplicationFactor: res.Quality.ReplicationFactor,
					RelativeBalance:   res.Quality.RelativeBalance,
				}
				if workers == 1 {
					ref = cell
					cell.Speedup, cell.Efficiency = 1, 1
				} else {
					// The worker-invariance gate: parallel quality must equal
					// the serial cell exactly, not within tolerance.
					if cell.ReplicationFactor != ref.ReplicationFactor || cell.RelativeBalance != ref.RelativeBalance {
						src.Close()
						return nil, fmt.Errorf("bench: parallel cell %s/%s w=%d: quality diverges from serial (RF %v vs %v, bal %v vs %v)",
							name, alg, workers, cell.ReplicationFactor, ref.ReplicationFactor, cell.RelativeBalance, ref.RelativeBalance)
					}
					if cell.PartitionNS > 0 {
						cell.Speedup = float64(ref.PartitionNS) / float64(cell.PartitionNS)
						cell.Efficiency = cell.Speedup / float64(workers)
					}
				}
				cells = append(cells, cell)
				suiteLogf(cfg, "  parallel %-4s %-5s w=%d  %v  speedup %.2fx (eff %.2f)",
					name, alg, workers, elapsed.Round(time.Millisecond), cell.Speedup, cell.Efficiency)
			}
		}
		src.Close()
	}
	return cells, nil
}
