package repro_test

import (
	"fmt"

	"repro"
)

// ExamplePartition is the README quickstart: generate a synthetic web
// graph and partition it with CLUGP. Generators and partitioners are
// seeded and deterministic, so the quality metrics are reproducible.
func ExamplePartition() {
	g := repro.GenerateWeb(repro.WebConfig{N: 5000, OutDegree: 6, Seed: 1})
	res, err := repro.Partition(g, "CLUGP", 16, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("k=%d order=%s\n", res.K, res.Order)
	fmt.Printf("RF=%.3f balance=%.3f\n", res.Quality.ReplicationFactor, res.Quality.RelativeBalance)
	// Output:
	// k=16 order=bfs
	// RF=2.971 balance=1.000
}

// ExampleRunPipeline runs CLUGP stage by stage, retaining the pass-1
// clustering and the pass-2 game equilibrium for inspection.
func ExampleRunPipeline() {
	g := repro.GenerateWeb(repro.WebConfig{N: 5000, OutDegree: 6, Seed: 1})
	pl, err := repro.RunPipeline(g, repro.PipelineOptions{K: 16, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("clusters=%d\n", pl.Clustering.NumClusters)
	fmt.Printf("game batches=%d\n", pl.Game.Batches)
	fmt.Printf("RF=%.3f\n", pl.Result.Quality.ReplicationFactor)
	// Output:
	// clusters=2583
	// game batches=1
	// RF=2.971
}

// ExampleRunExperiment regenerates one paper artefact - here Figure 6's
// partitioner memory model - at a small scale.
func ExampleRunExperiment() {
	cfg := repro.ExperimentConfig{Scale: 0.02, Ks: []int{4, 64}}
	tables, err := repro.RunExperiment("6", cfg)
	if err != nil {
		panic(err)
	}
	for _, t := range tables {
		fmt.Printf("%s: %s (%d rows)\n", t.ID, t.Title, len(t.Rows))
	}
	// Output:
	// fig6: Partitioner state memory vs #partitions (IT, MB) (2 rows)
}

// ExampleRunSuiteParallel runs a small benchmark grid on a worker pool.
// Quality metrics are bit-identical to a serial run; the shared cache
// computes each stream order at most once per graph.
func ExampleRunSuiteParallel() {
	report, err := repro.RunSuiteParallel(repro.SuiteConfig{
		Algorithms: []string{"Hashing", "CLUGP"},
		Datasets:   []string{"UK"},
		Ks:         []int{4, 16},
		Scale:      0.02,
		Workers:    4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cells=%d orders built=%d file=%s\n",
		len(report.Cells), report.StreamOrdersBuilt, report.Filename())
	// Output:
	// cells=4 orders built=2 file=BENCH_suite.json
}
