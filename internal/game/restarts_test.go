package game

import (
	"testing"

	"repro/internal/cluster"
)

// TestRestartsNeverWorsenPotential: best-of-R equilibria must have
// potential no higher than the single-run equilibrium from the same base
// seed (restart 0 reproduces it exactly).
func TestRestartsNeverWorsenPotential(t *testing.T) {
	cg := testClusterGraph(t, 2500, 24, 31)
	k := 8
	lambda := LambdaMax(cg, k)
	one, err := Solve(cg, Config{K: k, Lambda: lambda, Seed: 4, BatchSize: 0, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	best, err := Solve(cg, Config{K: k, Lambda: lambda, Seed: 4, BatchSize: 0, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	pOne := Potential(cg, one.Partition, k, lambda)
	pBest := Potential(cg, best.Partition, k, lambda)
	if pBest > pOne+1e-9 {
		t.Fatalf("restarts worsened potential: %v -> %v", pOne, pBest)
	}
}

// TestRestartsStillEquilibrium: the kept assignment must itself be a Nash
// equilibrium (it came out of best-response dynamics unmodified).
func TestRestartsStillEquilibrium(t *testing.T) {
	cg := testClusterGraph(t, 1200, 16, 32)
	k := 5
	lambda := LambdaMax(cg, k)
	asg, err := Solve(cg, Config{K: k, Lambda: lambda, Seed: 7, BatchSize: 0, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	assign := asg.Partition
	for c := 0; c < cg.NumClusters; c++ {
		cur := IndividualCost(cg, assign, cluster.ID(c), k, lambda)
		orig := assign[c]
		for p := int32(0); p < int32(k); p++ {
			if p == orig {
				continue
			}
			assign[c] = p
			if alt := IndividualCost(cg, assign, cluster.ID(c), k, lambda); alt < cur-1e-6 {
				t.Fatalf("cluster %d can improve after restarts: %v -> %v", c, cur, alt)
			}
		}
		assign[c] = orig
	}
}

func TestRestartsDeterministic(t *testing.T) {
	cg := testClusterGraph(t, 1500, 16, 33)
	a, err := Solve(cg, Config{K: 6, Seed: 2, Restarts: 3, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(cg, Config{K: 6, Seed: 2, Restarts: 3, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Partition {
		if a.Partition[c] != b.Partition[c] {
			t.Fatalf("restarted solve nondeterministic at cluster %d", c)
		}
	}
}
