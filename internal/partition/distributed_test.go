package partition

import (
	"testing"

	"repro/internal/gen"
)

func TestDistributedCLUGPValid(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 8000, OutDegree: 8, IntraSite: 0.88, Seed: 21})
	for _, nodes := range []int{1, 2, 4, 8} {
		p := &DistributedCLUGP{Nodes: nodes, Seed: 1}
		res, err := Run(p, g, 16, 1)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if len(res.Assign) != g.NumEdges() {
			t.Fatalf("nodes=%d: assignment truncated", nodes)
		}
		for _, a := range res.Assign {
			if a < 0 || a >= 16 {
				t.Fatalf("nodes=%d: invalid partition %d", nodes, a)
			}
		}
	}
}

func TestDistributedCLUGPBalance(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 8000, OutDegree: 8, IntraSite: 0.88, Seed: 22})
	k := 16
	nodes := 4
	p := &DistributedCLUGP{Nodes: nodes, Seed: 1}
	res, err := Run(p, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Union of per-shard tau=1.0 bounds: global Lmax + one ceiling unit per
	// shard.
	lmax := int64((float64(g.NumEdges()))/float64(k)) + int64(nodes) + 1
	for pid, s := range res.Quality.Sizes {
		if s > lmax {
			t.Fatalf("partition %d holds %d > combined Lmax %d", pid, s, lmax)
		}
	}
}

func TestDistributedCLUGPQualityDegradesGracefully(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 10000, OutDegree: 8, IntraSite: 0.88, Seed: 23})
	k := 32
	single, err := Run(&CLUGP{Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Run(&DistributedCLUGP{Nodes: 4, Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := Run(&Hashing{Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sharding costs quality but must stay well ahead of random placement.
	if sharded.Quality.ReplicationFactor > 1.6*single.Quality.ReplicationFactor {
		t.Fatalf("sharding cost too high: %.3f vs single %.3f",
			sharded.Quality.ReplicationFactor, single.Quality.ReplicationFactor)
	}
	if sharded.Quality.ReplicationFactor >= hash.Quality.ReplicationFactor {
		t.Fatalf("sharded CLUGP (%.3f) no better than hashing (%.3f)",
			sharded.Quality.ReplicationFactor, hash.Quality.ReplicationFactor)
	}
}

func TestDistributedCLUGPDeterministic(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 4000, OutDegree: 6, IntraSite: 0.85, Seed: 24})
	a, err := Run(&DistributedCLUGP{Nodes: 4, Seed: 5}, g, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(&DistributedCLUGP{Nodes: 4, Seed: 5}, g, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("nondeterministic at edge %d", i)
		}
	}
}

func TestDistributedCLUGPMoreNodesThanEdges(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 100, OutDegree: 2, Seed: 25})
	p := &DistributedCLUGP{Nodes: 1 << 20, Seed: 1}
	res, err := Run(p, g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != g.NumEdges() {
		t.Fatal("assignment truncated")
	}
}
