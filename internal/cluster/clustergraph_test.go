package cluster

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
)

// fixedResult builds a Result with a hand-chosen assignment for cluster
// graph tests: vertices 0,1 -> cluster 0; 2,3 -> cluster 1; 4 -> cluster 2.
func fixedResult() *Result {
	return &Result{
		NumClusters: 3,
		Assign:      []ID{0, 0, 1, 1, 2},
		Degree:      []uint32{2, 2, 2, 2, 2},
		Divided:     make([]bool, 5),
	}
}

func TestBuildGraphCounts(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, // intra cluster 0
		{Src: 2, Dst: 3}, // intra cluster 1
		{Src: 0, Dst: 2}, // 0 -> 1
		{Src: 3, Dst: 1}, // 1 -> 0
		{Src: 4, Dst: 0}, // 2 -> 0
	}
	cg, err := BuildGraph(stream.Of(edges).Source(5), fixedResult())
	if err != nil {
		t.Fatal(err)
	}
	if cg.TotalIntra != 2 || cg.TotalInter != 3 {
		t.Fatalf("intra/inter = %d/%d, want 2/3", cg.TotalIntra, cg.TotalInter)
	}
	if cg.Intra[0] != 1 || cg.Intra[1] != 1 || cg.Intra[2] != 0 {
		t.Fatalf("Intra = %v", cg.Intra)
	}
	// Weight between 0 and 1 combines both directions.
	if w := cg.ArcWeight(0, 1); w != 2 {
		t.Fatalf("Weight(0,1) = %d, want 2", w)
	}
	if w := cg.ArcWeight(1, 0); w != 2 {
		t.Fatalf("Weight(1,0) = %d, want 2 (symmetry)", w)
	}
	if w := cg.ArcWeight(0, 2); w != 1 {
		t.Fatalf("Weight(0,2) = %d, want 1", w)
	}
	if w := cg.ArcWeight(1, 2); w != 0 {
		t.Fatalf("Weight(1,2) = %d, want 0", w)
	}
}

func TestBuildGraphTotalAdjacency(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 2}, {Src: 2, Dst: 0}, {Src: 4, Dst: 2},
	}
	cg, err := BuildGraph(stream.Of(edges).Source(5), fixedResult())
	if err != nil {
		t.Fatal(err)
	}
	if got := cg.TotalAdjacency(1); got != 3 {
		t.Fatalf("TotalAdjacency(1) = %d, want 3", got)
	}
	// Sum of adjacencies counts each directed cut edge twice.
	var sum int64
	for c := 0; c < cg.NumClusters; c++ {
		sum += cg.TotalAdjacency(ID(c))
	}
	if sum != 2*cg.TotalInter {
		t.Fatalf("adjacency sum %d != 2*TotalInter %d", sum, 2*cg.TotalInter)
	}
}

func TestBuildGraphRejectsUnclustered(t *testing.T) {
	res := fixedResult()
	res.Assign[4] = None
	if _, err := BuildGraph(stream.Of([]graph.Edge{{Src: 4, Dst: 0}}).Source(5), res); err == nil {
		t.Fatal("unclustered endpoint accepted")
	}
}

func TestBuildGraphArcsSorted(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 4}, {Src: 0, Dst: 2}, {Src: 2, Dst: 4},
	}
	cg, err := BuildGraph(stream.Of(edges).Source(5), fixedResult())
	if err != nil {
		t.Fatal(err)
	}
	for c := range cg.Adj {
		for i := 1; i < len(cg.Adj[c]); i++ {
			if cg.Adj[c][i].To <= cg.Adj[c][i-1].To {
				t.Fatalf("cluster %d arcs unsorted: %v", c, cg.Adj[c])
			}
		}
	}
}

func TestBuildGraphConservesEdges(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 2, Dst: 3},
		{Src: 0, Dst: 4}, {Src: 4, Dst: 4},
	}
	res := fixedResult()
	cg, err := BuildGraph(stream.Of(edges).Source(5), res)
	if err != nil {
		t.Fatal(err)
	}
	if cg.TotalIntra+cg.TotalInter != int64(len(edges)) {
		t.Fatalf("intra %d + inter %d != %d edges", cg.TotalIntra, cg.TotalInter, len(edges))
	}
}
