package bench

import (
	"fmt"

	"repro/internal/edgecut"
)

// Sec2C quantifies Section II-C's premise - "traditional balanced edge-cut
// partitioning performs poorly on power-law graphs [while] power-law graphs
// have good vertex-cuts" - by putting both families on the same axis: the
// number of synchronization messages one PageRank superstep needs.
//
// Under edge-cut, every cut edge carries one message per direction per
// superstep: messages = 2 * cut edges. Under vertex-cut, every mirror
// exchanges one gather and one sync message with its master: messages =
// 2 * sum_v (|P(v)|-1). The experiment reports both, normalized per vertex,
// for the web graph (UK) and the social graph (Twitter) at 32 partitions.
func Sec2C(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	const k = 32
	t := Table{
		ID:     "sec2c",
		Title:  "Edge-cut vs vertex-cut: sync messages per superstep per vertex (k=32)",
		Header: []string{"dataset", "family", "algorithm", "msgs/vertex", "balance"},
		Note:   "edge-cut: 2*cut edges; vertex-cut: 2*sum(|P(v)|-1); balance is vertex balance (edge-cut) or relative edge balance (vertex-cut)",
	}
	for _, name := range []string{"UK", "Twitter"} {
		ds, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := ds.Build(cfg.Scale)
		nv := float64(g.NumVertices)
		cfg.logf("sec2c: %s (%d vertices, %d edges)", name, g.NumVertices, g.NumEdges())

		for _, p := range []edgecut.Partitioner{&edgecut.LDG{}, &edgecut.FENNEL{}, &edgecut.Multilevel{Seed: cfg.Seed}} {
			assign, err := p.Partition(g, k)
			if err != nil {
				return nil, fmt.Errorf("sec2c %s %s: %w", name, p.Name(), err)
			}
			q, err := edgecut.Evaluate(g, assign, k)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, "edge-cut", p.Name(),
				f3(2*float64(q.CutEdges)/nv), f3(q.VertexBalance))
		}
		for _, alg := range []string{"HDRF", "CLUGP"} {
			res, err := cfg.run(alg, g, k)
			if err != nil {
				return nil, err
			}
			msgs := 2 * float64(res.Quality.Replicas-int64(res.Quality.Vertices))
			t.AddRow(name, "vertex-cut", alg, f3(msgs/nv), f3(res.Quality.RelativeBalance))
		}
	}
	return []Table{t}, nil
}
