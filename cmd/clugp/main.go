// Command clugp partitions a graph with any of the reproduced algorithms
// and reports the quality metrics of Section II-B. Input is an edge-list
// file ("src dst" per line), a compressed .cgr file, or a generated preset.
//
// Usage:
//
//	clugp -in graph.txt -k 32                      # CLUGP, default knobs
//	clugp -in graph.txt -k 64 -algo HDRF
//	clugp -preset IT -k 128 -algo CLUGP -tau 1.05 -assign out.txt
//	clugp -in graph.cgr -stream -k 32              # out-of-core: O(|V|) heap
//	clugp -in graph.cgr -stream -backend file      # seek-based source instead of mmap
//	clugp -in graph.cgr -stream -workers 4         # parallel hot pass, identical results
//	clugp -in graph.cgr -stream -score-workers 4   # sharded scoring, identical results
//	clugp -in graph.cgr -stream -trace             # pipeline + per-shard score-state report
//	clugp -in graph.cgr -stream -cpuprofile cpu.pb # pprof profiles (-memprofile heap.pb)
//	clugp -in old.cgr -recompress new.cgr          # rewrite as CGR3 (-format cgr2/cgr1 for old)
//	clugp -in graph.cgr -stream -result run.cpr    # save a serveable result for cmd/partsrv
//	clugp -in graph.cgr -verify -stream -k 32      # checksum-scan the input up front
//	clugp -in g.cgr -stream -checkpoint run.cpk    # crash-tolerant: snapshot state as it runs
//	clugp -in g.cgr -stream -checkpoint run.cpk -resume   # continue an interrupted run
//	clugp -in g.cgr -stream -retry 5               # survive transient read faults by replaying
//
// With -checkpoint the run snapshots its algorithm state (CPK1 format,
// CRC-protected, atomically rotated with a .prev fallback) at batch
// boundaries; -resume restores the newest intact checkpoint, truncates the
// -assign file to the checkpointed watermark, fast-forwards the stream and
// continues - the resumed run's assignment and quality are bit-identical
// to an uninterrupted one. A corrupt checkpoint is detected by its CRC and
// skipped in favor of the previous one, never resumed from.
//
// Every file this command writes (-assign, -result, -recompress) goes
// through an atomic temp-file + rename protocol, so a crash or write error
// never leaves a truncated artifact at the final path. -verify
// checksum-scans the input before using it and fails fast on the first
// corrupt block (CGR3/CPR2 carry checksums; older formats report that
// there is nothing to verify).
//
// With -stream the input must be a .cgr file (see cmd/genweb -binary),
// CGR1, CGR2 or CGR3 - the header says which; -backend picks the source: mmap
// (default; the file is mapped once, repeat passes run at page-cache speed
// with a portable read-at fallback) or file (seek-based, one handle per
// segment);
// it is partitioned in its stored (crawl) order without ever loading the
// edge list: the partitioner re-streams the file for each pass and the
// assignment is written (or discarded) as it is produced, so peak heap is
// the algorithm's O(|V|) state, not O(|E|). BFS/DFS/Random orders need the
// graph in memory to reorder it; natural order is exactly the crawl order
// the paper grants CLUGP and Mint, so the streaming mode covers the paper's
// headline configuration.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge-list or .cgr file")
		preset  = flag.String("preset", "", "generate a dataset preset instead of reading a file")
		scale   = flag.Float64("scale", 1.0, "preset scale factor")
		algo    = flag.String("algo", "CLUGP", "algorithm: Hashing, DBH, Greedy, HDRF, Mint, CLUGP, CLUGP-S, CLUGP-G")
		k       = flag.Int("k", 32, "number of partitions")
		seed    = flag.Uint64("seed", 42, "seed for stochastic components")
		tau     = flag.Float64("tau", 0, "CLUGP imbalance factor (default 1.0)")
		weight  = flag.Float64("weight", 0, "CLUGP relative load-balance weight (default 0.5)")
		batch   = flag.Int("batch", 0, "CLUGP game batch size (default 6400)")
		thr     = flag.Int("threads", 0, "CLUGP game threads (default GOMAXPROCS)")
		out     = flag.String("assign", "", "write per-edge partition assignment to this file")
		resultF = flag.String("result", "", "write the serveable partition result (.cpr, for cmd/partsrv) to this file")
		trace   = flag.Bool("trace", false, "print CLUGP per-pass diagnostics and peak heap")
		streamF = flag.Bool("stream", false, "out-of-core mode: partition a .cgr file without loading it")
		backend = flag.String("backend", "mmap", "file source backend for -stream: mmap or file")
		workers = flag.Int("workers", 1, "decode workers for -stream (>1 enables the parallel hot pass; results are identical for any count)")
		scoreW  = flag.Int("score-workers", 1, "score workers for -stream (>1 shards HDRF/Greedy/CLUGP scoring state; results are identical for any count)")
		cpuprof = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		recomp  = flag.String("recompress", "", "write the loaded graph back out compressed to this file, then exit")
		formatF = flag.String("format", "cgr3", "compressed format for -recompress: cgr1, cgr2 or cgr3")
		verifyF = flag.Bool("verify", false, "checksum-scan the -in file before using it (CGR3/CPR2 carry checksums)")
		ckPath  = flag.String("checkpoint", "", "write crash-recovery checkpoints to this file during -stream (the previous one rotates to .prev)")
		ckEvery = flag.Int("checkpoint-every", 0, "checkpoint cadence in edges (default: ~1/16 of the stream)")
		resumeF = flag.Bool("resume", false, "resume an interrupted -stream run from -checkpoint (falls back to .prev if the newest is corrupt)")
		retryF  = flag.Int("retry", 0, "survive transient read faults: attempt each stream position up to N times (0 = no retry wrapper)")
	)
	flag.Parse()

	// An interrupt mid-write must not litter temp files next to the outputs:
	// sweep every pending atomic write on the way out. Checkpointed runs are
	// the exception that survives the kill - their state is already on disk.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		if n := repro.AbortPendingWrites(); n > 0 {
			fmt.Fprintf(os.Stderr, "clugp: %v: swept %d pending write(s)\n", s, n)
		} else {
			fmt.Fprintf(os.Stderr, "clugp: %v\n", s)
		}
		stopProfiles()
		os.Exit(1)
	}()

	if (*ckPath != "" || *resumeF) && !*streamF {
		fail(fmt.Errorf("-checkpoint/-resume need -stream (checkpoints snapshot the out-of-core pass)"))
	}
	if *resumeF && *ckPath == "" {
		fail(fmt.Errorf("-resume needs -checkpoint FILE to resume from"))
	}
	if *resumeF && *resultF != "" {
		fail(fmt.Errorf("-resume cannot rebuild -result: the serve tables need the full stream; rerun without -resume or without -result"))
	}

	stop, err := startProfiles(*cpuprof, *memprof)
	if err != nil {
		fail(err)
	}
	stopProfiles = stop
	defer stop()

	if *verifyF {
		if *in == "" {
			fail(fmt.Errorf("-verify needs -in FILE"))
		}
		info, err := repro.VerifyFile(*in)
		if err != nil {
			fail(err)
		}
		if info.Checksummed {
			fmt.Printf("verified: %s, %d blocks over %d payload bytes\n", info.Kind, info.Blocks, info.PayloadBytes)
		} else {
			fmt.Printf("verify: %s carries no checksums; recompress to cgr3 to protect it\n", info.Kind)
		}
	}

	if *recomp != "" {
		if err := recompress(*in, *preset, *scale, *recomp, *formatF); err != nil {
			fail(err)
		}
		return
	}

	// Heap watermarking exists for the -trace report only; sampling costs
	// periodic ReadMemStats pauses, so untraced runs skip it entirely (a
	// nil watermark's watch is a no-op).
	var heap *heapWatermark
	if *trace {
		heap = newHeapWatermark()
	}

	p, err := buildPartitioner(*algo, *seed, *tau, *weight, *batch, *thr)
	if err != nil {
		fail(err)
	}

	var res *repro.PartitionResult
	if *streamF {
		res, err = runStreaming(p, *in, streamOpts{
			k:            *k,
			out:          *out,
			resultPath:   *resultF,
			backend:      *backend,
			workers:      *workers,
			scoreWorkers: *scoreW,
			ckPath:       *ckPath,
			ckEvery:      *ckEvery,
			resume:       *resumeF,
			retry:        *retryF,
		}, heap)
	} else {
		res, err = runInMemory(p, *in, *preset, *scale, *k, *seed, *out, *resultF, heap)
	}
	if err != nil {
		fail(err)
	}

	q := res.Quality
	fmt.Printf("algorithm:          %s (stream order %s)\n", res.Algorithm, res.Order)
	fmt.Printf("partitions:         %d\n", q.K)
	fmt.Printf("replication factor: %.4f\n", q.ReplicationFactor)
	fmt.Printf("relative balance:   %.4f (max %d, min %d edges)\n", q.RelativeBalance, q.MaxSize, q.MinSize)
	fmt.Printf("runtime:            %v\n", res.Runtime.Round(time.Millisecond))
	if res.StateBytes > 0 {
		fmt.Printf("state memory:       %.2f MB\n", float64(res.StateBytes)/(1<<20))
	}
	if *trace {
		if c, ok := p.(*repro.CLUGP); ok && c.LastTrace != nil {
			t := c.LastTrace
			fmt.Printf("clusters:           %d (intra fraction %.3f)\n", t.NumClusters, t.IntraFraction)
			fmt.Printf("splits/migrations:  %d / %d\n", t.Splits, t.Migrations)
			fmt.Printf("game:               %d rounds, %d moves, %d batches (healed %.3f)\n",
				t.GameRounds, t.GameMoves, t.GameBatches, t.HealedFraction)
			fmt.Printf("overflow reroutes:  %d\n", t.Overflowed)
		}
		if *streamF {
			pl := res.Pipeline
			fmt.Printf("pipeline:           %d decode workers, %d score workers\n", pl.DecodeWorkers, pl.ScoreWorkers)
			if pl.SerialFallback != "" {
				fmt.Printf("serial fallback:    %s\n", pl.SerialFallback)
			}
			if cks := pl.Checkpoints; cks.Enabled || cks.Resumed {
				fmt.Printf("checkpoints:        %s\n", cks)
			}
			if *retryF > 0 || pl.RetryAttempts > 0 {
				fmt.Printf("stream retries:     %d attempt(s) fired\n", pl.RetryAttempts)
			}
			if st, ok := p.(repro.ScoreTracer); ok {
				if tr := st.LastScoreTrace(); tr != nil {
					fmt.Printf("score state:        %.2f MB replica tables, %.2f MB degree tables, %d shards\n",
						float64(tr.ReplicaBytes)/(1<<20), float64(tr.DegreeBytes)/(1<<20), tr.Workers)
					for i, s := range tr.Shards {
						occ := 0.0
						if s.Hi > s.Lo {
							occ = float64(s.Occupied) / float64(s.Hi-s.Lo)
						}
						fmt.Printf("  shard %d: vertices [%d,%d), occupied %d (%.1f%%), %d replicas, %.2f MB\n",
							i, s.Lo, s.Hi, s.Occupied, 100*occ, s.Replicas, float64(s.Bytes)/(1<<20))
					}
				}
			}
		}
		// The paper's Figure 6 claim is about partitioner memory; report what
		// the process actually held so the bounded-memory mode is observable.
		peak, live, total := heap.report()
		fmt.Printf("peak heap:          %.2f MB (live after GC %.2f MB, %.2f MB allocated in total)\n",
			float64(peak)/(1<<20), float64(live)/(1<<20), float64(total)/(1<<20))
	}

	if *out != "" {
		fmt.Printf("assignment written: %s\n", *out)
	}
	if *resultF != "" {
		fmt.Printf("result written:     %s (serve it: partsrv -result %s)\n", *resultF, *resultF)
	}
}

// buildPartitioner mirrors the historical flag behaviour: CLUGP knobs apply
// only when the algorithm is CLUGP, everything else goes through the
// registry.
func buildPartitioner(algo string, seed uint64, tau, weight float64, batch, thr int) (repro.Partitioner, error) {
	if algo == "CLUGP" && (tau != 0 || weight != 0 || batch != 0 || thr != 0) {
		return &repro.CLUGP{Tau: tau, RelWeight: weight, BatchSize: batch, Threads: thr, Seed: seed}, nil
	}
	return repro.NewPartitioner(algo, seed)
}

// runInMemory is the classic path: load (or generate) the whole graph, then
// partition it under the algorithm's preferred order.
func runInMemory(p repro.Partitioner, in, preset string, scale float64, k int, seed uint64, out, resultPath string, heap *heapWatermark) (*repro.PartitionResult, error) {
	g, err := load(in, preset, scale)
	if err != nil {
		return nil, err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())
	stop := heap.watch()
	res, err := repro.RunPartitioner(p, g, k, seed)
	stop()
	if err != nil {
		return nil, err
	}
	if out != "" {
		if err := writeAssign(out, res); err != nil {
			return nil, err
		}
	}
	if resultPath != "" {
		saved, err := repro.SavedResultFromRun(res)
		if err != nil {
			return nil, err
		}
		if err := writeResult(resultPath, saved); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// streamOpts bundles the -stream run configuration.
type streamOpts struct {
	k            int
	out          string
	resultPath   string
	backend      string
	workers      int
	scoreWorkers int
	ckPath       string
	ckEvery      int
	resume       bool
	retry        int
}

// runStreaming is the out-of-core path: the .cgr file is the stream; the
// assignment is emitted as it is produced and never materialized. With
// workers > 1 decode and quality accounting run on worker fleets; with
// scoreWorkers > 1 the partitioner's own scoring state is sharded too. The
// emitted assignment and quality are identical to the serial pass either way.
//
// With checkpointing the -assign file is written as a plain persistent file
// instead of an atomic temp+rename: a resume must be able to truncate the
// interrupted run's partial output back to the checkpointed watermark, which
// a temp file that died with the process cannot offer.
func runStreaming(p repro.Partitioner, in string, o streamOpts, heap *heapWatermark) (*repro.PartitionResult, error) {
	if in == "" {
		return nil, fmt.Errorf("-stream needs -in FILE.cgr")
	}
	k, out, resultPath, backend := o.k, o.out, o.resultPath, o.backend
	workers, scoreWorkers := o.workers, o.scoreWorkers
	var src repro.GraphFile
	var err error
	var mode string
	switch backend {
	case "mmap":
		m, merr := repro.OpenCompressedMmap(in)
		src, err = m, merr
		mode = "mmap"
		if merr == nil && !m.Mapped() {
			mode = "read-at fallback"
		}
	case "file":
		src, err = repro.OpenCompressedFile(in)
		mode = "file"
	default:
		return nil, fmt.Errorf("unknown -backend %q (want mmap or file)", backend)
	}
	if err != nil {
		return nil, fmt.Errorf("-stream needs a compressed .cgr input: %w", err)
	}
	defer src.Close()
	fmt.Printf("graph: %d vertices, %d edges (streaming %s from %s, %s backend, %.2f bytes/edge)\n",
		src.NumVertices(), src.Len(), src.Format(), in, mode, bytesPerEdge(src.SizeBytes(), src.Len()))

	var source repro.StreamSource = src
	if o.retry > 0 {
		source = repro.RetryStream(source, repro.StreamRetryConfig{MaxAttempts: o.retry})
	}

	var ck *repro.CheckpointOptions
	var resumeMark int64
	if o.ckPath != "" {
		ck = &repro.CheckpointOptions{Path: o.ckPath, EveryEdges: o.ckEvery}
		if o.resume {
			c, from, err := repro.LoadCheckpoint(o.ckPath)
			if err != nil {
				return nil, fmt.Errorf("resume: %w", err)
			}
			ck.Resume = c
			resumeMark = c.EmitMark
			fmt.Printf("resuming: %s from offset %d/%d edges (batch %d, %s)\n",
				c.Algorithm, c.Offset, c.NumEdges, c.Batch, from)
		}
	}

	var w *bufio.Writer
	var aw *repro.AtomicWriter
	var pf *os.File
	var cw *countingWriter
	if out != "" {
		if ck != nil {
			flags := os.O_RDWR | os.O_CREATE
			if !o.resume {
				flags |= os.O_TRUNC
			}
			pf, err = os.OpenFile(out, flags, 0o644)
			if err != nil {
				return nil, err
			}
			defer pf.Close()
			if o.resume {
				// Drop everything past the checkpointed watermark: the edges
				// after it were emitted by the interrupted run but are not
				// covered by the snapshot, and will be re-emitted.
				if err := pf.Truncate(resumeMark); err != nil {
					return nil, err
				}
				if _, err := pf.Seek(resumeMark, io.SeekStart); err != nil {
					return nil, err
				}
			}
			cw = &countingWriter{w: pf, n: resumeMark}
			w = bufio.NewWriterSize(cw, 1<<16)
			ck.EmitMark = func() (int64, error) {
				if err := w.Flush(); err != nil {
					return 0, err
				}
				if err := pf.Sync(); err != nil {
					return 0, err
				}
				return cw.n, nil
			}
		} else {
			aw, err = repro.NewAtomicWriter(out)
			if err != nil {
				return nil, err
			}
			defer aw.Abort()
			w = bufio.NewWriterSize(aw, 1<<16)
		}
	}
	// -result chains a serve builder onto the emit callback: the serving
	// tables (replica bitsets + sizes) accumulate as assignments stream
	// past, so saving a result costs O(|V|*k/64) extra state, never the
	// O(|E|) assignment the streaming mode exists to avoid.
	var builder *repro.ServeBuilder
	if resultPath != "" {
		builder, err = repro.NewServeBuilder(src.NumVertices(), k)
		if err != nil {
			return nil, err
		}
	}
	var buf []byte
	emit := func(edges []repro.Edge, assign []int32) error {
		if builder != nil {
			if err := builder.Observe(edges, assign); err != nil {
				return err
			}
		}
		if w == nil {
			return nil
		}
		for i, e := range edges {
			buf = appendAssignLine(buf[:0], e, assign[i])
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}
	stop := heap.watch()
	res, err := repro.RunOutOfCoreOpts(p, source, k, emit, repro.OutOfCoreOptions{
		Workers:      workers,
		ScoreWorkers: scoreWorkers,
		Checkpoint:   ck,
	})
	stop()
	if err != nil {
		return nil, err
	}
	if w != nil {
		if err := w.Flush(); err != nil {
			return nil, err
		}
		if aw != nil {
			if err := aw.Commit(); err != nil {
				return nil, err
			}
		} else {
			if err := pf.Sync(); err != nil {
				return nil, err
			}
			if err := pf.Close(); err != nil {
				return nil, err
			}
		}
	}
	if builder != nil {
		if err := writeResult(resultPath, builder.Result(res.Algorithm, res.Order.String())); err != nil {
			return nil, err
		}
	}
	if ck != nil {
		// The run completed, so its checkpoints are obsolete; a later
		// -resume against them would truncate the finished output.
		os.Remove(o.ckPath)
		os.Remove(o.ckPath + repro.CheckpointPrevSuffix)
	}
	return res, nil
}

// countingWriter tracks the byte offset of the persistent assign stream, so
// checkpoints can record the emit watermark a resume truncates to.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeResult saves a serveable partition result (.cpr) atomically.
func writeResult(path string, saved *repro.SavedResult) error {
	w, err := repro.NewAtomicWriter(path)
	if err != nil {
		return err
	}
	defer w.Abort()
	if err := repro.WriteSavedResult(w, saved); err != nil {
		return err
	}
	return w.Commit()
}

func load(in, preset string, scale float64) (*repro.Graph, error) {
	if preset != "" {
		for _, d := range repro.Datasets() {
			if d.Name == preset {
				return d.Build(scale), nil
			}
		}
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	if in == "" {
		return nil, fmt.Errorf("need -in FILE or -preset NAME")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Auto-detect the binary formats by their magic; fall back to text.
	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(4)
	if err == nil && repro.SniffCompressed(head) {
		return repro.ReadCompressed(br)
	}
	return repro.ReadEdgeList(br)
}

// recompress loads a graph (text or any binary format, or a preset) and
// writes it back compressed in the requested format - the migration path
// from existing files to CGR3's checksummed encoding. The output is
// written atomically, so an existing file at out is never torn.
func recompress(in, preset string, scale float64, out, format string) error {
	f, err := repro.ParseCompressedFormat(format)
	if err != nil {
		return err
	}
	g, err := load(in, preset, scale)
	if err != nil {
		return err
	}
	w, err := repro.NewAtomicWriter(out)
	if err != nil {
		return err
	}
	defer w.Abort()
	if err := repro.WriteCompressedFormat(w, g, f); err != nil {
		return err
	}
	if err := w.Commit(); err != nil {
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s, %d vertices, %d edges, %.2f bytes/edge\n",
		out, f, g.NumVertices, g.NumEdges(), bytesPerEdge(fi.Size(), g.NumEdges()))
	return nil
}

// bytesPerEdge guards the empty-graph division.
func bytesPerEdge(size int64, edges int) float64 {
	if edges == 0 {
		return 0
	}
	return float64(size) / float64(edges)
}

// writeAssign emits "src dst partition" lines aligned with the stream order
// actually partitioned, replaying the result's stream. The file appears at
// path only once complete.
func writeAssign(path string, res *repro.PartitionResult) error {
	aw, err := repro.NewAtomicWriter(path)
	if err != nil {
		return err
	}
	defer aw.Abort()
	w := bufio.NewWriterSize(aw, 1<<16)
	var buf []byte
	err = repro.ForEachStreamed(res.Stream, func(off int, edges []repro.Edge) error {
		for i, e := range edges {
			buf = appendAssignLine(buf[:0], e, res.Assign[off+i])
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return aw.Commit()
}

func appendAssignLine(buf []byte, e repro.Edge, p int32) []byte {
	buf = strconv.AppendUint(buf, uint64(e.Src), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, uint64(e.Dst), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(p), 10)
	return append(buf, '\n')
}

// heapWatermark tracks the largest heap the process has held. A background
// sampler (watch) reads HeapAlloc on a 10ms tick for the duration of a
// run, so transients that live between the run's own observation points -
// CLUGP's pass-2 crossing-pair array, game tables, Mint's batch tables -
// are seen at (close to) their peak rather than only before and after.
// The final report also forces a GC so "live" is actual reachable memory.
type heapWatermark struct {
	peak uint64
}

func newHeapWatermark() *heapWatermark {
	h := &heapWatermark{}
	h.sample()
	return h
}

func (h *heapWatermark) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc > h.peak {
		h.peak = m.HeapAlloc
	}
}

// watch samples the heap on a ticker until the returned stop function is
// called. Only the sampler goroutine touches peak while watching; stop
// joins it before the caller reads the result. A nil watermark (untraced
// run) watches nothing.
func (h *heapWatermark) watch() (stop func()) {
	if h == nil {
		return func() {}
	}
	done := make(chan struct{})
	joined := make(chan struct{})
	go func() {
		defer close(joined)
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				h.sample()
			}
		}
	}()
	return func() {
		close(done)
		<-joined
		// Final sample so runs shorter than one tick still observe the
		// heap they ended with (freed transients included, pre-GC).
		h.sample()
	}
}

func (h *heapWatermark) report() (peak, live, total uint64) {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc > h.peak {
		h.peak = m.HeapAlloc
	}
	return h.peak, m.HeapAlloc, m.TotalAlloc
}

// stopProfiles flushes any active -cpuprofile/-memprofile collection; fail
// routes through it so profiles survive error exits.
var stopProfiles = func() {}

// startProfiles begins CPU profiling and/or arranges a heap snapshot. The
// returned stop is idempotent: it ends the CPU profile and writes the heap
// profile after a GC, so the snapshot shows live memory.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			if mem != "" {
				f, err := os.Create(mem)
				if err != nil {
					fmt.Fprintln(os.Stderr, "clugp: -memprofile:", err)
					return
				}
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "clugp: -memprofile:", err)
				}
				f.Close()
			}
		})
	}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "clugp:", err)
	stopProfiles()
	os.Exit(1)
}
