// Command clugp partitions a graph with any of the reproduced algorithms
// and reports the quality metrics of Section II-B. Input is an edge-list
// file ("src dst" per line) or a generated preset.
//
// Usage:
//
//	clugp -in graph.txt -k 32                      # CLUGP, default knobs
//	clugp -in graph.txt -k 64 -algo HDRF
//	clugp -preset IT -k 128 -algo CLUGP -tau 1.05 -assign out.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro"
)

func main() {
	var (
		in     = flag.String("in", "", "input edge-list file")
		preset = flag.String("preset", "", "generate a dataset preset instead of reading a file")
		scale  = flag.Float64("scale", 1.0, "preset scale factor")
		algo   = flag.String("algo", "CLUGP", "algorithm: Hashing, DBH, Greedy, HDRF, Mint, CLUGP, CLUGP-S, CLUGP-G")
		k      = flag.Int("k", 32, "number of partitions")
		seed   = flag.Uint64("seed", 42, "seed for stochastic components")
		tau    = flag.Float64("tau", 0, "CLUGP imbalance factor (default 1.0)")
		weight = flag.Float64("weight", 0, "CLUGP relative load-balance weight (default 0.5)")
		batch  = flag.Int("batch", 0, "CLUGP game batch size (default 6400)")
		thr    = flag.Int("threads", 0, "CLUGP game threads (default GOMAXPROCS)")
		out    = flag.String("assign", "", "write per-edge partition assignment to this file")
		trace  = flag.Bool("trace", false, "print CLUGP per-pass diagnostics")
	)
	flag.Parse()

	g, err := load(*in, *preset, *scale)
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	var p repro.Partitioner
	if *algo == "CLUGP" && (*tau != 0 || *weight != 0 || *batch != 0 || *thr != 0) {
		p = &repro.CLUGP{Tau: *tau, RelWeight: *weight, BatchSize: *batch, Threads: *thr, Seed: *seed}
	} else {
		if p, err = repro.NewPartitioner(*algo, *seed); err != nil {
			fail(err)
		}
	}
	res, err := repro.RunPartitioner(p, g, *k, *seed)
	if err != nil {
		fail(err)
	}

	q := res.Quality
	fmt.Printf("algorithm:          %s (stream order %s)\n", res.Algorithm, res.Order)
	fmt.Printf("partitions:         %d\n", q.K)
	fmt.Printf("replication factor: %.4f\n", q.ReplicationFactor)
	fmt.Printf("relative balance:   %.4f (max %d, min %d edges)\n", q.RelativeBalance, q.MaxSize, q.MinSize)
	fmt.Printf("runtime:            %v\n", res.Runtime.Round(time.Millisecond))
	if res.StateBytes > 0 {
		fmt.Printf("state memory:       %.2f MB\n", float64(res.StateBytes)/(1<<20))
	}
	if c, ok := p.(*repro.CLUGP); ok && *trace && c.LastTrace != nil {
		t := c.LastTrace
		fmt.Printf("clusters:           %d (intra fraction %.3f)\n", t.NumClusters, t.IntraFraction)
		fmt.Printf("splits/migrations:  %d / %d\n", t.Splits, t.Migrations)
		fmt.Printf("game:               %d rounds, %d moves, %d batches (healed %.3f)\n",
			t.GameRounds, t.GameMoves, t.GameBatches, t.HealedFraction)
		fmt.Printf("overflow reroutes:  %d\n", t.Overflowed)
	}

	if *out != "" {
		if err := writeAssign(*out, res); err != nil {
			fail(err)
		}
		fmt.Printf("assignment written: %s\n", *out)
	}
}

func load(in, preset string, scale float64) (*repro.Graph, error) {
	if preset != "" {
		for _, d := range repro.Datasets() {
			if d.Name == preset {
				return d.Build(scale), nil
			}
		}
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	if in == "" {
		return nil, fmt.Errorf("need -in FILE or -preset NAME")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Auto-detect the binary format by its magic; fall back to text.
	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(4)
	if err == nil && string(head) == "CGR1" {
		return repro.ReadCompressed(br)
	}
	return repro.ReadEdgeList(br)
}

// writeAssign emits "src dst partition" lines aligned with the stream order
// actually partitioned.
func writeAssign(path string, res *repro.PartitionResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)
	var buf []byte
	for i, n := 0, res.Stream.Len(); i < n; i++ {
		e := res.Stream.At(i)
		buf = buf[:0]
		buf = strconv.AppendUint(buf, uint64(e.Src), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(e.Dst), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(res.Assign[i]), 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "clugp:", err)
	os.Exit(1)
}
