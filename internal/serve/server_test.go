package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
)

// handSnapshot builds a tiny snapshot whose answers are trivially
// enumerable: every edge self-loops on vertex v and lands in partition
// v % k, so Primary(v) = v % k.
func handSnapshot(t testing.TB, n, k int, algorithm string) *Snapshot {
	t.Helper()
	b, err := NewBuilder(n, k)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		err := b.Observe(
			[]graph.Edge{{Src: graph.VertexID(v), Dst: graph.VertexID(v)}},
			[]int32{int32(v % k)},
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	snap, err := NewSnapshot(b.Result(algorithm, "natural"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func getJSON(t *testing.T, ts *httptest.Server, path string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d (%s), want %d", path, resp.StatusCode, strings.TrimSpace(string(body)), wantStatus)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", path, body, err)
	}
	return m
}

func TestServerEndpoints(t *testing.T) {
	snap := handSnapshot(t, 10, 3, "hand")
	srv := NewServer(snap)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for v := 0; v < 10; v++ {
		m := getJSON(t, ts, fmt.Sprintf("/v1/vertex/%d", v), http.StatusOK)
		if got := int(m["partition"].(float64)); got != v%3 {
			t.Fatalf("vertex %d partition = %d, want %d", v, got, v%3)
		}
		if m["epoch"].(float64) != 1 {
			t.Fatalf("vertex %d epoch = %v, want 1", v, m["epoch"])
		}
		if m["replicas"].(float64) != 1 {
			t.Fatalf("vertex %d replicas = %v, want 1", v, m["replicas"])
		}
		m = getJSON(t, ts, fmt.Sprintf("/v1/replicas/%d", v), http.StatusOK)
		parts := m["partitions"].([]any)
		if len(parts) != 1 || int(parts[0].(float64)) != v%3 {
			t.Fatalf("vertex %d partitions = %v, want [%d]", v, parts, v%3)
		}
	}

	// Edge routing: vertices 0 and 3 share partition 0.
	m := getJSON(t, ts, "/v1/edge?src=0&dst=3", http.StatusOK)
	if got := int(m["partition"].(float64)); got != 0 {
		t.Fatalf("edge 0-3 routed to %d, want 0", got)
	}

	// Stats reflect the snapshot.
	m = getJSON(t, ts, "/v1/stats", http.StatusOK)
	if m["algorithm"] != "hand" || m["k"].(float64) != 3 || m["vertices"].(float64) != 10 {
		t.Fatalf("stats = %v", m)
	}
	if sizes := m["sizes"].([]any); len(sizes) != 3 || sizes[0].(float64) != 4 {
		t.Fatalf("stats sizes = %v, want [4 3 3]", m["sizes"])
	}

	// Error paths: malformed ids are 400, out-of-range 404, unknown 404s.
	getJSON(t, ts, "/v1/vertex/notanumber", http.StatusBadRequest)
	getJSON(t, ts, "/v1/vertex/-1", http.StatusBadRequest)
	getJSON(t, ts, "/v1/vertex/10", http.StatusNotFound)
	getJSON(t, ts, "/v1/replicas/4294967295", http.StatusNotFound)
	getJSON(t, ts, "/v1/edge?src=0", http.StatusBadRequest)
	getJSON(t, ts, "/v1/edge?src=0&dst=10", http.StatusNotFound)
	getJSON(t, ts, "/v1/nosuch", http.StatusNotFound)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	// Reload without a loader is 501 Not Implemented.
	resp, err = ts.Client().Post(ts.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without loader = %d, want 501", resp.StatusCode)
	}
}

func TestServerReload(t *testing.T) {
	a := handSnapshot(t, 10, 3, "A")
	bSnap := handSnapshot(t, 10, 3, "B") // same geometry, refreshed content
	srv := NewServer(a)
	if got := srv.Current().Epoch(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}
	srv.SetLoader(func() (*Snapshot, error) { return bSnap, nil })

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d (%s)", resp.StatusCode, body)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 || st.Algorithm != "B" || st.K != 3 {
		t.Fatalf("post-reload stats = %+v", st)
	}
	if !st.Ready || st.ReloadFailures != 0 || st.LastReloadError != "" {
		t.Fatalf("post-reload health = %+v, want ready and clean", st)
	}
	m := getJSON(t, ts, "/v1/vertex/7", http.StatusOK)
	if m["epoch"].(float64) != 2 || int(m["partition"].(float64)) != 7%3 {
		t.Fatalf("post-reload vertex 7 = %v", m)
	}
	// The prepared snapshot value is untouched by install (shallow copy).
	if bSnap.Epoch() != 0 {
		t.Fatalf("installed source snapshot mutated: epoch %d", bSnap.Epoch())
	}
	// A failing loader leaves the current snapshot serving.
	srv.SetLoader(func() (*Snapshot, error) { return nil, fmt.Errorf("boom") })
	if _, err := srv.Reload(); err == nil {
		t.Fatal("Reload swallowed loader error")
	}
	if srv.Current().Algorithm() != "B" {
		t.Fatal("failed reload replaced the serving snapshot")
	}
	// Geometry changes go through Install (the force path), never Reload.
	wide := handSnapshot(t, 20, 5, "C")
	if got := srv.Install(wide).Epoch(); got != 3 {
		t.Fatalf("install epoch = %d, want 3", got)
	}
	if srv.Current().K() != 5 {
		t.Fatal("Install did not replace the snapshot")
	}
}

// TestHotReloadRace is the hot-reload harness the CI race job runs: client
// goroutines hammer the HTTP query path while the main goroutine swaps
// snapshots. Two alternating variants are distinguishable by every answer
// (different k, so Primary differs for most vertices), and each response
// carries its epoch; a response must match the variant its epoch names -
// exactly one epoch, no tearing between the tables of one snapshot and the
// sizes or k of another.
func TestHotReloadRace(t *testing.T) {
	const (
		numVertices = 64
		clients     = 8
		queriesEach = 300
		reloads     = 40
	)
	variants := [2]*Snapshot{
		handSnapshot(t, numVertices, 3, "even"), // installed at even epochs? see below
		handSnapshot(t, numVertices, 7, "odd"),
	}
	// Epoch e serves variants[(e-1)%2]: epoch 1 is variants[0], each
	// install flips. Install copies, so reusing the two values is safe.
	srv := NewServer(variants[0])
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	expect := func(epoch uint64, v int) int {
		k := [2]int{3, 7}[(epoch-1)%2]
		return v % k
	}

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < queriesEach; q++ {
				v := (c*queriesEach + q) % numVertices
				resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/vertex/%d", ts.URL, v))
				if err != nil {
					errc <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("query %d: status %d, err %v", q, resp.StatusCode, err)
					return
				}
				var m struct {
					Epoch     uint64 `json:"epoch"`
					Vertex    int    `json:"vertex"`
					Partition int    `json:"partition"`
				}
				if err := json.Unmarshal(body, &m); err != nil {
					errc <- fmt.Errorf("query %d: bad JSON %q: %v", q, body, err)
					return
				}
				if m.Vertex != v || m.Partition != expect(m.Epoch, v) {
					errc <- fmt.Errorf("vertex %d at epoch %d answered partition %d, want %d",
						v, m.Epoch, m.Partition, expect(m.Epoch, v))
					return
				}
			}
		}(c)
	}
	for r := 0; r < reloads; r++ {
		installed := srv.Install(variants[r%2^1])
		if got := installed.Epoch(); got != uint64(r+2) {
			t.Fatalf("install %d produced epoch %d", r, got)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
