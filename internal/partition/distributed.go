package partition

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/stream"
)

// DistributedCLUGP implements Section III-C's distributed ingest mode:
// "each distributed node accesses partial streaming edges and performs the
// three steps, clustering, game processing, and transformation, locally.
// ... the final graph partitioning result is obtained by combining the
// partial partitioning results of distributed nodes."
//
// The stream is split into Nodes contiguous shards (contiguity preserves
// the crawl locality each local clustering depends on) via the source's
// Segment capability, so a file-backed stream is sharded by seeking - no
// ingest node ever holds more than its O(|V|) tables and a decode buffer;
// each shard runs a full, independent CLUGP pipeline concurrently,
// partitioning its edges over the same k target partitions; the shard
// results concatenate into the final assignment. Because every shard is
// individually balanced to tau * |shard|/k, the union respects
// tau * |E|/k up to per-shard ceiling slack. Quality gives up a little
// versus single-node CLUGP (shards cannot heal adjacency across their
// boundary), which is the trade the paper accepts for horizontal ingest
// scaling.
type DistributedCLUGP struct {
	// Nodes is the number of ingest nodes (default 4).
	Nodes int
	// Options configures each node's local pipeline (Seed is perturbed per
	// node; leave Options.Seed zero to derive everything from Seed).
	Options CLUGP
	// Seed drives per-node seeds.
	Seed uint64
}

// Name implements Partitioner.
func (d *DistributedCLUGP) Name() string { return "CLUGP-D" }

// PreferredOrder implements Partitioner.
func (d *DistributedCLUGP) PreferredOrder() stream.Order { return stream.BFS }

// nodeCount resolves the effective node count for a stream of numEdges.
func (d *DistributedCLUGP) nodeCount(numEdges int) int {
	nodes := d.Nodes
	if nodes <= 0 {
		nodes = 4
	}
	if nodes > numEdges {
		nodes = 1
	}
	return nodes
}

// setScoreWorkers implements scoreParallel: every node's local pipeline
// shards its pass-3 scoring.
func (d *DistributedCLUGP) setScoreWorkers(n int) { d.Options.ScoreWorkers = n }

// nodeLocal returns node nd's pipeline, seeded deterministically.
func (d *DistributedCLUGP) nodeLocal(nd int) CLUGP {
	local := d.Options // copy: each node owns its pipeline state
	local.Seed = d.Seed ^ (0x9e3779b97f4a7c15 * uint64(nd+1))
	// The copy must not alias Options' sharded-scoring scratch: concurrent
	// nodes (PartitionInto) each grow their own.
	local.pipe = scorePipe{}
	local.pslot, local.mslot, local.dslot = nil, nil, nil
	return local
}

// shards opens one independent sub-source per ingest node. The source must
// support segmentation (every source in this repository does: in-memory
// views slice, file sources reopen and seek).
func (d *DistributedCLUGP) shards(src stream.Source, nodes int) ([]stream.Source, error) {
	seg, ok := src.(stream.Segmenter)
	if !ok {
		return nil, fmt.Errorf("clugp-d: source %T cannot be segmented across ingest nodes", src)
	}
	numEdges := src.Len()
	per := (numEdges + nodes - 1) / nodes
	var out []stream.Source
	for nd := 0; nd < nodes; nd++ {
		lo := nd * per
		if lo >= numEdges {
			break
		}
		hi := lo + per
		if hi > numEdges {
			hi = numEdges
		}
		sub, err := seg.Segment(lo, hi)
		if err != nil {
			closeShards(out)
			return nil, fmt.Errorf("clugp-d node %d: %w", nd, err)
		}
		out = append(out, sub)
	}
	return out, nil
}

func closeShards(shards []stream.Source) {
	for _, s := range shards {
		if c, ok := s.(io.Closer); ok {
			c.Close()
		}
	}
}

// Partition implements Partitioner.
func (d *DistributedCLUGP) Partition(src stream.Source, k int) ([]int32, error) {
	return partitionVia(d, src, k)
}

// PartitionInto implements IntoPartitioner: the concurrent mode. Every node
// runs its local pipeline on its own goroutine against its own sub-source
// (own cursor, own file handle), writing into its slice of the assignment.
func (d *DistributedCLUGP) PartitionInto(src stream.Source, k int, assign []int32) error {
	if err := checkInto(src, k, assign); err != nil {
		return err
	}
	numEdges := src.Len()
	nodes := d.nodeCount(numEdges)
	shards, err := d.shards(src, nodes)
	if err != nil {
		return err
	}
	defer closeShards(shards)
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	per := (numEdges + nodes - 1) / nodes
	for nd, sub := range shards {
		wg.Add(1)
		go func(nd int, sub stream.Source) {
			defer wg.Done()
			local := d.nodeLocal(nd)
			lo := nd * per
			if err := local.PartitionInto(sub, k, assign[lo:lo+sub.Len()]); err != nil {
				errs[nd] = fmt.Errorf("clugp-d node %d: %w", nd, err)
			}
		}(nd, sub)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PartitionStream implements StreamingPartitioner: the bounded-memory mode.
// Emission must follow stream order, so nodes run one after another, each
// streaming its shard's assignments through the shared sink - the memory
// profile of a single node (O(|V|) tables, no O(|E|) assignment) at the
// cost of ingest concurrency. Assignments are identical to the concurrent
// mode: nodes are independent and deterministically seeded either way.
func (d *DistributedCLUGP) PartitionStream(src stream.Source, k int, emit Emit) error {
	if k < 1 {
		return fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	nodes := d.nodeCount(src.Len())
	shards, err := d.shards(src, nodes)
	if err != nil {
		return err
	}
	defer closeShards(shards)
	for nd, sub := range shards {
		local := d.nodeLocal(nd)
		if err := local.PartitionStream(sub, k, emit); err != nil {
			return fmt.Errorf("clugp-d node %d: %w", nd, err)
		}
	}
	return nil
}

// StateBytes implements StateSizer: each node carries a full per-vertex
// table set (vertices are not range-partitioned across ingest nodes, since
// any shard can touch any vertex).
func (d *DistributedCLUGP) StateBytes(numVertices, numEdges, k int) int64 {
	nodes := d.Nodes
	if nodes <= 0 {
		nodes = 4
	}
	one := d.Options.StateBytes(numVertices, numEdges, k)
	return int64(nodes) * one
}
