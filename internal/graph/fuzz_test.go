package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and that anything it
// accepts survives a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5\t7\n")
	f.Add("1,2\n")
	f.Add("")
	f.Add("a b\n")
	f.Add("4294967295 0\n")
	f.Add("-1 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count: %d vs %d", back.NumEdges(), g.NumEdges())
		}
	})
}
