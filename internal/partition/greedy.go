package partition

import (
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Greedy is PowerGraph's greedy heuristic (Gonzalez et al., OSDI 2012).
// For each edge (u,v) it consults the replica sets P(u), P(v) accumulated
// so far:
//
//  1. if P(u) and P(v) intersect, place the edge on the least-loaded common
//     partition (no new replica);
//  2. if both are non-empty but disjoint, place it on the least-loaded
//     partition holding either endpoint (one new replica);
//  3. if exactly one endpoint has been seen, use its least-loaded partition;
//  4. otherwise use the globally least-loaded partition.
//
// The P(v) table is the "global status table" whose locking the paper blames
// for the poor scaling of heuristic methods; here it also dominates their
// memory cost (Figure 6).
type Greedy struct{}

// Name implements Partitioner.
func (gr *Greedy) Name() string { return "Greedy" }

// PreferredOrder implements Partitioner.
func (gr *Greedy) PreferredOrder() stream.Order { return stream.Random }

// Partition implements Partitioner.
func (gr *Greedy) Partition(edges []graph.Edge, numVertices, k int) ([]int32, error) {
	assign := make([]int32, len(edges))
	rs := metrics.NewReplicaSets(numVertices, k)
	sizes := make([]int64, k)
	scratch := make([]int, 0, k)
	for i, e := range edges {
		u, v := e.Src, e.Dst
		var p int
		common := rs.Intersect(u, v, scratch[:0])
		if len(common) > 0 {
			p = leastLoaded(sizes, common)
		} else {
			cu := rs.Count(u)
			cv := rs.Count(v)
			switch {
			case cu > 0 && cv > 0:
				p = leastLoaded(sizes, rs.Union(u, v, scratch[:0]))
			case cu > 0:
				p = leastLoaded(sizes, rs.Partitions(u, scratch[:0]))
			case cv > 0:
				p = leastLoaded(sizes, rs.Partitions(v, scratch[:0]))
			default:
				p = leastLoadedAll(sizes)
			}
		}
		assign[i] = int32(p)
		sizes[p]++
		rs.Add(u, p)
		rs.Add(v, p)
	}
	return assign, nil
}

// StateBytes implements StateSizer: the replica bitset plus partition sizes.
func (gr *Greedy) StateBytes(numVertices, numEdges, k int) int64 {
	words := (k + 63) / 64
	return int64(numVertices)*int64(words)*8 + int64(k)*8
}
