// Package partition implements the vertex-cut streaming partitioners
// evaluated in the paper (Table I): Hashing, DBH, Greedy, HDRF, Mint and
// CLUGP, plus the CLUGP-S / CLUGP-G ablation variants of Figure 9, all
// behind one interface.
//
// A vertex-cut partitioner assigns every streamed edge to exactly one of k
// partitions; quality is measured by the replication factor and relative
// load balance of Section II-B (package metrics).
//
// Partitioners consume the stream as a stream.Source - a sequential,
// replayable edge stream - so the same algorithm code runs over an
// in-memory zero-copy view and over a file that is never materialized
// (package store). They may keep reusable scratch between runs (see
// PartitionInto); a single Partitioner value is therefore not safe for
// concurrent use. Construct one per goroutine - they are cheap, all state
// is scratch.
package partition

import (
	"fmt"
	"io"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/stream"
)

// Partitioner assigns streamed edges to k partitions.
type Partitioner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// PreferredOrder is the stream order the algorithm performs best under;
	// the paper grants each competitor its best order (random for the
	// one-pass heuristics and hashes, BFS for Mint and CLUGP).
	PreferredOrder() stream.Order
	// Partition consumes the edge source (possibly in multiple passes) and
	// returns one partition id per edge, aligned with the stream.
	Partition(src stream.Source, k int) ([]int32, error)
}

// IntoPartitioner is implemented by partitioners whose hot loop is
// allocation-free: PartitionInto writes the assignment into a caller-owned
// slice and reuses the partitioner's internal scratch (replica bitsets,
// degree tables, load counters) across calls. It is the repeated-run API
// the benchmarks and the suite lean on; Partition remains the convenient
// one-shot form.
type IntoPartitioner interface {
	// PartitionInto partitions the source into assign, which must have
	// length src.Len().
	PartitionInto(src stream.Source, k int, assign []int32) error
}

// Emit receives one finalized run of assignments in stream order:
// assign[i] is the partition of edges[i]. Both slices are only valid for
// the duration of the call.
type Emit func(edges []graph.Edge, assign []int32) error

// StreamingPartitioner is implemented by partitioners that can deliver
// their assignment incrementally - the out-of-core mode. PartitionStream
// partitions the source and hands each finalized run of assignments to
// emit in stream order without ever materializing the full O(|E|)
// assignment, so peak memory is the algorithm's own state (O(|V|) tables
// for CLUGP, the replica bitsets for the heuristics, O(batch) for Mint)
// plus one block buffer.
type StreamingPartitioner interface {
	PartitionStream(src stream.Source, k int, emit Emit) error
}

// StateSizer is implemented by partitioners that can report the peak size
// in bytes of their internal state for the memory-cost comparison
// (Figure 6). The estimate covers algorithm state only, not the input
// stream or the output assignment, mirroring how the paper attributes
// memory.
type StateSizer interface {
	StateBytes(numVertices, numEdges, k int) int64
}

// Result bundles a finished run: the ordered stream that was partitioned,
// its assignment, quality metrics and bookkeeping.
type Result struct {
	Algorithm   string
	Order       stream.Order
	K           int
	NumVertices int
	// Stream is the ordered edge source that was partitioned; Assign is
	// aligned with it (Assign[i] is the partition of the i-th streamed
	// edge). Assign is nil for out-of-core runs (RunOutOfCore), whose
	// assignments exist only transiently in the Emit callback.
	Stream     stream.Source
	Assign     []int32
	Quality    *metrics.Quality
	Runtime    time.Duration
	StateBytes int64
	// Pipeline describes how the out-of-core hot pass executed (decode and
	// score worker counts, serial fallbacks). Zero for in-memory runs.
	Pipeline PipelineInfo
}

// Run orders the graph's edges per the partitioner's preference, times the
// partitioning pass(es) and evaluates quality. seed feeds the random stream
// order only; partitioner-internal seeds are part of their construction.
func Run(p Partitioner, g *graph.Graph, k int, seed uint64) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if err := stream.CheckLen(len(g.Edges)); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	order := p.PreferredOrder()
	return RunStreamed(p, stream.NewView(g, order, seed).Source(g.NumVertices), order, k)
}

// RunCached is Run with the stream order served from c, so repeated runs
// over the same graph (the experiment-suite hot path) reuse one ordered
// permutation instead of re-materializing it per run. A nil cache falls
// back to Run.
func RunCached(p Partitioner, g *graph.Graph, k int, seed uint64, c *stream.Cache) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if c == nil {
		return Run(p, g, k, seed)
	}
	if err := stream.CheckLen(len(g.Edges)); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	order := p.PreferredOrder()
	return RunStreamed(p, c.View(g, order, seed).Source(g.NumVertices), order, k)
}

// RunStreamed partitions an already-ordered edge source, timing the
// partitioning pass(es) and evaluating quality. order records how the
// stream was produced; it is bookkeeping only and does not reorder
// anything.
func RunStreamed(p Partitioner, src stream.Source, order stream.Order, k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	start := time.Now()
	assign, err := p.Partition(src, k)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("partition: %s: %w", p.Name(), err)
	}
	if len(assign) != src.Len() {
		return nil, fmt.Errorf("partition: %s returned %d assignments for %d edges", p.Name(), len(assign), src.Len())
	}
	q, err := metrics.Evaluate(src, assign, k)
	if err != nil {
		return nil, fmt.Errorf("partition: %s: %w", p.Name(), err)
	}
	res := &Result{
		Algorithm:   p.Name(),
		Order:       order,
		K:           k,
		NumVertices: src.NumVertices(),
		Stream:      src,
		Assign:      assign,
		Quality:     q,
		Runtime:     elapsed,
	}
	if sz, ok := p.(StateSizer); ok {
		res.StateBytes = sz.StateBytes(src.NumVertices(), src.Len(), k)
	}
	return res, nil
}

// OutOfCoreOptions tune the out-of-core streaming pass. The zero value is
// the serial mode RunOutOfCore has always run.
type OutOfCoreOptions struct {
	// Workers enables the parallel hot pass when > 1 and the source can be
	// segmented (every source in this repository can): a fleet of Workers
	// decode goroutines pulls disjoint stream.Segmenter ranges and feeds the
	// assignment stage fixed-size batches committed in segment order, and
	// quality accounting runs on Workers vertex-range shard workers over a
	// metrics.ShardedReplicaSets. Assignments and quality are bit-identical
	// to the serial pass for any worker count - the decode/merge pipeline
	// preserves exact stream order and the sharded accounting is
	// commutative - which TestParallelWorkerInvariance holds across every
	// algorithm x backend x format combination. Sources that cannot segment
	// fall back to the serial pass.
	Workers int
	// BatchEdges is the parallel pipeline's batch granularity (0 = the
	// stream.ParallelConfig default). Affects scheduling only, never
	// results.
	BatchEdges int
	// ScoreWorkers routes the partitioner's per-edge scoring state through
	// vertex-range-sharded tables and runs the gather -> score -> apply
	// batch pipeline with one worker per shard when > 1 (HDRF, Greedy,
	// CLUGP and CLUGP-D implement it; other algorithms fall back to serial
	// scoring, recorded in Result.Pipeline). Orthogonal to Workers: decode
	// workers need a Segmenter, score workers run over any source (batches
	// are cut by stream.Rebatch at fixed offsets). Assignments are
	// bit-identical for every value - the pipeline preserves exact
	// sequential scoring semantics - held by TestScoreWorkerInvariance.
	// 0 leaves the partitioner's own setting; 1 forces serial scoring.
	ScoreWorkers int
	// Checkpoint, when non-nil, enables crash tolerance: the run snapshots
	// its state to Checkpoint.Path at batch boundaries, and Checkpoint.Resume
	// restores a previous snapshot and continues from its exact stream
	// offset, bit-identical to an uninterrupted run. The partitioner must
	// implement Checkpointer (HDRF, Greedy and the CLUGP family do); others
	// fall back to running without checkpoints, recorded in Result.Pipeline.
	Checkpoint *CheckpointOptions
}

// PipelineInfo records how the out-of-core hot pass actually executed,
// including downgrades that used to be silent: a non-Segmenter source
// demotes -workers to serial decode, and an algorithm without sharded
// scoring demotes -score-workers to serial scoring. clugp -trace prints it.
type PipelineInfo struct {
	// DecodeWorkers is the resolved decode-fleet size (1 = serial decode).
	DecodeWorkers int
	// ScoreWorkers is the resolved scoring-pipeline worker count
	// (1 = serial scoring).
	ScoreWorkers int
	// SerialFallback explains every requested parallel mode that ran
	// serially anyway; empty when nothing was demoted.
	SerialFallback string
	// Checkpoints reports checkpoint/resume activity (zero when disabled).
	Checkpoints CheckpointStats
	// RetryAttempts counts stream retry attempts fired during the run, when
	// the source is retry-wrapped (stream.Retry); 0 otherwise.
	RetryAttempts int64
}

// addFallback appends one demotion note to SerialFallback.
func (i *PipelineInfo) addFallback(note string) {
	if i.SerialFallback != "" {
		i.SerialFallback += "; " + note
	} else {
		i.SerialFallback = note
	}
}

// RunOutOfCore partitions a source in its stored (natural) order without
// materializing the assignment: each finalized run of assignments is scored
// incrementally and forwarded to emit (which may be nil to discard them,
// e.g. when only quality is wanted). Peak memory is the partitioner's own
// state plus one block, never O(|E|) - the bounded-memory mode behind
// cmd/clugp -stream. The partitioner must implement StreamingPartitioner
// (every algorithm in this package does).
//
// Because quality accounting happens inside the single pass, Runtime
// includes it, unlike the in-memory runners which evaluate after the
// timed pass.
func RunOutOfCore(p Partitioner, src stream.Source, k int, emit Emit) (*Result, error) {
	return RunOutOfCoreOpts(p, src, k, emit, OutOfCoreOptions{})
}

// qualityObserver is the incremental accounting seam between the serial
// metrics.Evaluator and the sharded metrics.ParallelEvaluator.
type qualityObserver interface {
	Observe(edges []graph.Edge, assign []int32) error
	Finish() *metrics.Quality
}

// RunOutOfCoreOpts is RunOutOfCore with the parallel hot pass available:
// with opts.Workers > 1 the decode stage and the quality accounting run on
// worker fleets (see OutOfCoreOptions.Workers) while the algorithm's own
// assignment loop stays sequential over the exactly-ordered batch stream,
// keeping results bit-identical to the serial pass.
func RunOutOfCoreOpts(p Partitioner, src stream.Source, k int, emit Emit, opts OutOfCoreOptions) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	sp, ok := p.(StreamingPartitioner)
	if !ok {
		return nil, fmt.Errorf("partition: %s cannot stream its assignment (no StreamingPartitioner)", p.Name())
	}
	orig := src
	nv := src.NumVertices()
	total := int64(src.Len())
	parallel := false
	info := PipelineInfo{DecodeWorkers: 1, ScoreWorkers: 1}

	// Resolve the checkpoint plan before any wrapping: resume validation and
	// the fast-forward segment are defined against the caller's source.
	var (
		ckOpts *CheckpointOptions
		cp     Checkpointer
		resume *store.Checkpoint
		every  int64
	)
	if c := opts.Checkpoint; c != nil && (c.Path != "" || c.Resume != nil) {
		var isCp bool
		if cp, isCp = p.(Checkpointer); isCp {
			ckOpts = c
		} else if c.Resume != nil {
			// Resuming without restore support would re-partition from
			// scratch against a truncated emit stream: hard error.
			return nil, fmt.Errorf("partition: %s cannot restore checkpoint state (no Checkpointer)", p.Name())
		} else {
			info.addFallback(p.Name() + " does not snapshot its state, checkpointing disabled")
		}
	}
	resumeOffset := int64(0)
	if ckOpts != nil && ckOpts.Resume != nil {
		resume = ckOpts.Resume
		if err := validateResume(p, src, k, resume); err != nil {
			return nil, err
		}
		if err := cp.RestoreState(resume); err != nil {
			return nil, fmt.Errorf("partition: %s: restore: %w", p.Name(), err)
		}
		resumeOffset = resume.Offset
		info.Checkpoints.Resumed = true
		info.Checkpoints.ResumeOffset = resumeOffset
		if resumeOffset > 0 {
			seg, isSeg := src.(stream.Segmenter)
			if !isSeg {
				return nil, fmt.Errorf("partition: source %T cannot segment into ranges, resume needs a fast-forward segment", src)
			}
			tail, err := seg.Segment(int(resumeOffset), int(total))
			if err != nil {
				return nil, fmt.Errorf("partition: %s: fast-forward to offset %d: %w", p.Name(), resumeOffset, err)
			}
			if tc, isCl := tail.(io.Closer); isCl {
				defer tc.Close()
			}
			src = tail
		}
	}
	if ckOpts != nil && ckOpts.Path != "" {
		every = resolveCadence(ckOpts.EveryEdges, total)
		info.Checkpoints.Enabled = true
		info.Checkpoints.EveryEdges = every
	}
	if opts.Workers > 1 {
		if seg, isSeg := src.(stream.Segmenter); isSeg {
			par, err := stream.Parallel(seg, stream.ParallelConfig{
				Workers:    opts.Workers,
				BatchEdges: opts.BatchEdges,
			})
			if err != nil {
				return nil, fmt.Errorf("partition: %s: %w", p.Name(), err)
			}
			defer par.Close()
			src = par
			parallel = true
			info.DecodeWorkers = opts.Workers
		} else {
			// Not an error - the serial pass produces identical results -
			// but no longer silent: the caller asked for parallel decode
			// and did not get it.
			info.addFallback(fmt.Sprintf("source %T cannot segment into ranges, decode runs serially", src))
		}
	}
	if ckOpts != nil {
		// Pin every sink commit to a BlockLen-multiple stream offset: serial
		// algorithms otherwise commit at whatever block granularity the
		// source delivers (an in-memory view delivers one giant block, which
		// would leave no mid-stream snapshot points), and a resumed run's
		// boundaries must land on the same offsets a clean run's do. The
		// rebatch affects scheduling only, never assignments.
		src = stream.Rebatch(src, stream.BlockLen)
	}
	if opts.ScoreWorkers > 0 {
		if sw, ok := p.(scoreParallel); ok {
			sw.setScoreWorkers(opts.ScoreWorkers)
			if opts.ScoreWorkers > 1 {
				info.ScoreWorkers = opts.ScoreWorkers
			}
		} else if opts.ScoreWorkers > 1 {
			info.addFallback(fmt.Sprintf("%s does not shard its scoring state, scoring runs serially", p.Name()))
		}
	}
	var ev qualityObserver
	if parallel {
		pev := &metrics.ParallelEvaluator{}
		pev.Begin(nv, k, opts.Workers)
		defer pev.Stop()
		ev = pev
	} else {
		sev := &metrics.Evaluator{}
		sev.Begin(nv, k)
		ev = sev
	}
	if resume != nil {
		// Restore the quality accounting to the checkpointed prefix. Safe
		// for the parallel evaluator between Begin and the first Observe:
		// the shard workers idle on their channels until a batch arrives.
		data, okSec := resume.Section(sectionEval)
		if !okSec {
			return nil, fmt.Errorf("partition: checkpoint has no %q section", sectionEval)
		}
		if err := ev.(evalStater).LoadState(data); err != nil {
			return nil, fmt.Errorf("partition: restore quality state: %w", err)
		}
	}
	watermark, lastCkpt := resumeOffset, resumeOffset
	start := time.Now()
	err := sp.PartitionStream(src, k, func(edges []graph.Edge, assign []int32) error {
		if err := ev.Observe(edges, assign); err != nil {
			return err
		}
		if emit != nil {
			if err := emit(edges, assign); err != nil {
				return err
			}
		}
		watermark += int64(len(edges))
		// A checkpoint fires at the first aligned commit boundary past each
		// cadence multiple. The alignment check matters for multi-pass
		// algorithms whose internal rebatching commits at other granularity,
		// and the watermark < total guard skips a pointless snapshot of the
		// finished run (the final artifact is the output itself).
		if every > 0 && watermark-lastCkpt >= every && watermark < total &&
			watermark%int64(stream.BlockLen) == 0 {
			if err := writeRunCheckpoint(p, cp, ckOpts, ev.(evalStater), k, nv, total, watermark, &info.Checkpoints); err != nil {
				return fmt.Errorf("checkpoint at offset %d: %w", watermark, err)
			}
			lastCkpt = watermark
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("partition: %s: %w", p.Name(), err)
	}
	if rc, isRetry := orig.(interface{ RetryAttempts() int64 }); isRetry {
		info.RetryAttempts = rc.RetryAttempts()
	}
	res := &Result{
		Algorithm:   p.Name(),
		Order:       stream.Natural,
		K:           k,
		NumVertices: nv,
		// The caller's source, not the parallel wrapper: the wrapper's
		// fleet is released when this function returns.
		Stream:   orig,
		Quality:  ev.Finish(),
		Runtime:  elapsed,
		Pipeline: info,
	}
	if sz, isSz := p.(StateSizer); isSz {
		res.StateBytes = sz.StateBytes(nv, int(total), k)
	}
	return res, nil
}

// assignSink hands a partitioner output space for finalized assignment
// runs and routes them to their destination. In materialized mode (assign
// set) grab returns windows of the caller's slice, so writing assignments
// costs nothing extra; in emit mode grab returns a reused scratch block and
// commit forwards it, so nothing O(|E|) ever exists. Algorithms may mutate
// a grabbed slice freely until they commit it (Mint's best-response rounds
// rewrite the batch in place).
type assignSink struct {
	assign  []int32
	scratch []int32
	emit    Emit
	pos     int
}

func (s *assignSink) grab(n int) []int32 {
	if s.assign != nil {
		return s.assign[s.pos : s.pos+n]
	}
	if cap(s.scratch) < n {
		s.scratch = make([]int32, n)
	}
	return s.scratch[:n]
}

func (s *assignSink) commit(edges []graph.Edge, out []int32) error {
	s.pos += len(out)
	if s.emit != nil {
		return s.emit(edges, out)
	}
	return nil
}

// sinkRunner is the internal shape every partitioner in this package
// implements: one run over the source delivering assignments through the
// sink. PartitionInto and PartitionStream are both thin wrappers over it.
type sinkRunner interface {
	run(src stream.Source, k int, sink *assignSink) error
}

// partitionVia implements the one-shot Partition in terms of an
// allocation-free PartitionInto.
func partitionVia(p IntoPartitioner, src stream.Source, k int) ([]int32, error) {
	assign := make([]int32, src.Len())
	if err := p.PartitionInto(src, k, assign); err != nil {
		return nil, err
	}
	return assign, nil
}

// streamVia implements PartitionStream in terms of the sink runner.
// (PartitionInto is written out concretely in each algorithm instead of
// through this interface: a concrete call chain lets the per-run sink stay
// on the stack, preserving the zero-allocation repeated-run contract.)
func streamVia(p sinkRunner, src stream.Source, k int, emit Emit) error {
	if k < 1 {
		return fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	return p.run(src, k, &assignSink{emit: emit})
}

// checkInto validates the common PartitionInto preconditions.
func checkInto(src stream.Source, k int, assign []int32) error {
	if k < 1 {
		return fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if len(assign) != src.Len() {
		return fmt.Errorf("partition: assign has length %d, stream has %d edges", len(assign), src.Len())
	}
	return nil
}

// forEachBlock adapts stream.ForEach for the partitioner loops, which
// track their own position through the sink and never need the offset.
func forEachBlock(src stream.Source, fn func(blk []graph.Edge) error) error {
	return stream.ForEach(src, func(_ int, blk []graph.Edge) error { return fn(blk) })
}

// leastLoaded returns the partition with the smallest size among candidates
// (ties to the earliest candidate). candidates must be non-empty.
func leastLoaded(sizes []int64, candidates []int32) int32 {
	best := candidates[0]
	for _, p := range candidates[1:] {
		if sizes[p] < sizes[best] {
			best = p
		}
	}
	return best
}

// leastLoadedAll returns the globally least-loaded partition.
func leastLoadedAll(sizes []int64) int32 {
	best := int32(0)
	for p := int32(1); p < int32(len(sizes)); p++ {
		if sizes[p] < sizes[best] {
			best = p
		}
	}
	return best
}
