// Package xrand provides a tiny, fast, deterministic PRNG (splitmix64 seeded
// xoshiro256**) shared by the graph generators and randomized partitioners.
//
// math/rand would work, but a local generator guarantees the byte-for-byte
// reproducibility of every experiment across Go releases (the stdlib's
// unseeded top-level functions changed behaviour in 1.20, and Source
// implementations are not stable across versions), and it is allocation-free
// and inlinable.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** generator. The zero value is not valid; use New.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator deterministically seeded from seed via splitmix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1 // xoshiro must not be seeded all-zero
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint64n returns a uniform value in [0,n). n must be > 0.
// Uses Lemire's multiply-shift rejection method.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n(0)")
	}
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// Intn returns a uniform int in [0,n). n must be > 0.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with rate 1, by
// inversion. Used by latency jitter in the engine's network model.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Hash64 mixes x through the splitmix64 finalizer: a stateless, high-quality
// 64-bit hash used by the hashing partitioners (Hashing, DBH).
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
