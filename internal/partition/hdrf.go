package partition

import (
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/stream"
)

// HDRF is High-Degree (are) Replicated First (Petroni et al., CIKM 2015),
// the paper's state-of-the-art one-pass baseline. For each edge it scores
// every partition with a replication term that prefers partitions already
// holding an endpoint - weighted so the LOWER-degree endpoint counts more,
// which steers cuts toward high-degree vertices - plus a balance term, and
// picks the argmax:
//
//	theta(u)   = delta(u) / (delta(u)+delta(v))          (partial degrees)
//	g(u,p)     = 1 + (1 - theta(u))  if p holds u, else 0
//	C_rep(p)   = g(u,p) + g(v,p)
//	C_bal(p)   = BalanceWeight * (maxsize - |p|) / (eps + maxsize - minsize)
//
// Like Greedy it keeps the full P(v) table and scans all k partitions per
// edge, which is exactly the O(k) cost the runtime experiments (Figure 7)
// show blowing up at large k.
//
// An HDRF value keeps its replica table, degree table and counters as
// scratch reused across runs; the per-edge scoring loop is allocation-free
// and loads each endpoint's replica bitset word once per 64 partitions
// instead of once per partition.
type HDRF struct {
	// BalanceWeight is the lambda of the HDRF paper (its default 1.1 keeps
	// near-perfect balance; larger trades quality for balance). Zero means
	// 1.1.
	BalanceWeight float64
	// ScoreWorkers > 1 routes the replica and degree state through
	// vertex-range-sharded tables and scores each fixed batch over the
	// gather -> score -> apply pipeline (score.go) with one worker per
	// shard. Assignments are bit-identical to the serial path for every
	// value. Usually set through OutOfCoreOptions.ScoreWorkers.
	ScoreWorkers int

	rs    metrics.ReplicaSets
	deg   []uint32
	sizes []int64

	// Sharded-scoring state (ScoreWorkers > 1 only).
	srs   metrics.ShardedReplicaSets
	sdeg  metrics.ShardedDegrees
	gt    metrics.GatherTable
	pipe  scorePipe
	trace *ScoreTrace

	// resume holds checkpoint state stashed by RestoreState until the next
	// run consumes it right after its tables reset.
	resume *hdrfResume
}

// hdrfResume is the stashed checkpoint state of an HDRF run. The replica
// and degree encodings are canonical (metrics/state.go), so they load into
// either the flat or the sharded tables, whatever configuration the
// checkpoint was written under.
type hdrfResume struct {
	replicas []byte
	degrees  []byte
	sizes    []int64
}

// SnapshotState implements Checkpointer: the replica table, partial-degree
// table and partition sizes - everything the per-edge loop reads - in the
// canonical vertex-major encoding. maxSize/minSize are not stored: they are
// always exactly the extrema of the sizes, so restore recomputes them.
func (h *HDRF) SnapshotState(c *store.Checkpoint) error {
	if h.ScoreWorkers > 1 {
		c.AddSection(sectionHDRFReplicas, h.srs.AppendState(nil))
		c.AddSection(sectionHDRFDegrees, h.sdeg.AppendState(nil))
	} else {
		c.AddSection(sectionHDRFReplicas, h.rs.AppendState(nil))
		c.AddSection(sectionHDRFDegrees, metrics.AppendDegreeState(nil, h.deg))
	}
	c.AddSection(sectionHDRFSizes, metrics.AppendSizesState(nil, h.sizes))
	return nil
}

// RestoreState implements Checkpointer, stashing the checkpoint's sections
// for the next run to load once its tables are at the run's geometry.
func (h *HDRF) RestoreState(c *store.Checkpoint) error {
	rep, err := loadSection(c, sectionHDRFReplicas)
	if err != nil {
		return err
	}
	deg, err := loadSection(c, sectionHDRFDegrees)
	if err != nil {
		return err
	}
	szs, err := loadSection(c, sectionHDRFSizes)
	if err != nil {
		return err
	}
	sizes := make([]int64, c.K)
	rem, err := metrics.LoadSizesState(sizes, szs)
	if err != nil {
		return err
	}
	if err := consumed(rem, "hdrf sizes"); err != nil {
		return err
	}
	h.resume = &hdrfResume{replicas: rep, degrees: deg, sizes: sizes}
	return nil
}

// consumeResume loads the stashed checkpoint state into the just-reset flat
// tables and returns the recomputed size extrema.
func (h *HDRF) consumeResume() (maxSize, minSize int64, err error) {
	r := h.resume
	h.resume = nil
	rem, err := h.rs.LoadState(r.replicas)
	if err != nil {
		return 0, 0, err
	}
	if err := consumed(rem, "hdrf replica"); err != nil {
		return 0, 0, err
	}
	rem, err = metrics.LoadDegreeState(h.deg, r.degrees)
	if err != nil {
		return 0, 0, err
	}
	if err := consumed(rem, "hdrf degree"); err != nil {
		return 0, 0, err
	}
	copy(h.sizes, r.sizes)
	maxSize, minSize = sizeExtrema(h.sizes)
	return maxSize, minSize, nil
}

// consumeResumeSharded is consumeResume against the sharded tables.
func (h *HDRF) consumeResumeSharded() (maxSize, minSize int64, err error) {
	r := h.resume
	h.resume = nil
	rem, err := h.srs.LoadState(r.replicas)
	if err != nil {
		return 0, 0, err
	}
	if err := consumed(rem, "hdrf replica"); err != nil {
		return 0, 0, err
	}
	rem, err = h.sdeg.LoadState(r.degrees)
	if err != nil {
		return 0, 0, err
	}
	if err := consumed(rem, "hdrf degree"); err != nil {
		return 0, 0, err
	}
	copy(h.sizes, r.sizes)
	maxSize, minSize = sizeExtrema(h.sizes)
	return maxSize, minSize, nil
}

// sizeExtrema returns max and min of sizes (which is never empty: k >= 1).
func sizeExtrema(sizes []int64) (maxSize, minSize int64) {
	maxSize, minSize = sizes[0], sizes[0]
	for _, s := range sizes[1:] {
		if s > maxSize {
			maxSize = s
		}
		if s < minSize {
			minSize = s
		}
	}
	return maxSize, minSize
}

// setScoreWorkers implements scoreParallel.
func (h *HDRF) setScoreWorkers(n int) { h.ScoreWorkers = n }

// LastScoreTrace implements ScoreTracer: the most recent run's shard
// layout and occupancy, or nil if it scored serially.
func (h *HDRF) LastScoreTrace() *ScoreTrace { return h.trace }

// Name implements Partitioner.
func (h *HDRF) Name() string { return "HDRF" }

// PreferredOrder implements Partitioner.
func (h *HDRF) PreferredOrder() stream.Order { return stream.Random }

// Partition implements Partitioner.
func (h *HDRF) Partition(src stream.Source, k int) ([]int32, error) {
	return partitionVia(h, src, k)
}

// PartitionInto implements IntoPartitioner. The sink is constructed here,
// in a concrete (devirtualized) call chain, so it stays on the stack and
// the repeated-run path keeps its zero-allocation contract.
func (h *HDRF) PartitionInto(src stream.Source, k int, assign []int32) error {
	if err := checkInto(src, k, assign); err != nil {
		return err
	}
	sink := assignSink{assign: assign}
	return h.run(src, k, &sink)
}

// PartitionStream implements StreamingPartitioner.
func (h *HDRF) PartitionStream(src stream.Source, k int, emit Emit) error {
	return streamVia(h, src, k, emit)
}

func (h *HDRF) run(src stream.Source, k int, sink *assignSink) error {
	h.trace = nil
	if h.ScoreWorkers > 1 {
		return h.runSharded(src, k, sink)
	}
	lam := h.BalanceWeight
	if lam == 0 {
		lam = 1.1
	}
	const eps = 1.0
	h.rs.Reset(src.NumVertices(), k)
	h.deg = resetUint32(h.deg, src.NumVertices())
	h.sizes = resetInt64(h.sizes, k)
	rs, deg, sizes := &h.rs, h.deg, h.sizes
	var maxSize, minSize int64
	if h.resume != nil {
		var err error
		if maxSize, minSize, err = h.consumeResume(); err != nil {
			return err
		}
	}

	return forEachBlock(src, func(blk []graph.Edge) error {
		out := sink.grab(len(blk))
		for j, e := range blk {
			u, v := e.Src, e.Dst
			deg[u]++
			deg[v]++
			du, dv := float64(deg[u]), float64(deg[v])
			thetaU := du / (du + dv)
			thetaV := 1 - thetaU
			gU := 1 + (1 - thetaU)
			gV := 1 + (1 - thetaV)

			spread := float64(maxSize - minSize)
			best := 0
			bestScore := -1.0
			// One replica-bitset word covers 64 partitions; load each word of
			// u's and v's sets once instead of testing bit-by-bit through Has.
			var wu, wv uint64
			for p := 0; p < k; p++ {
				if p&63 == 0 {
					wu = rs.Word(u, p>>6)
					wv = rs.Word(v, p>>6)
				}
				bit := uint64(1) << uint(p&63)
				var crep float64
				if wu&bit != 0 {
					crep += gU
				}
				if wv&bit != 0 {
					crep += gV
				}
				cbal := lam * float64(maxSize-sizes[p]) / (eps + spread)
				if score := crep + cbal; score > bestScore {
					bestScore = score
					best = p
				}
			}
			out[j] = int32(best)
			sizes[best]++
			rs.Add(u, best)
			rs.Add(v, best)
			if sizes[best] > maxSize {
				maxSize = sizes[best]
			}
			// minSize only changes when the previous minimum partition grew;
			// rescan lazily in that case.
			if sizes[best]-1 == minSize {
				minSize = sizes[0]
				for p := 1; p < k; p++ {
					if sizes[p] < minSize {
						minSize = sizes[p]
					}
				}
			}
		}
		return sink.commit(blk, out)
	})
}

// runSharded is run with the scoring state sharded by vertex range: the
// same per-edge math, but each fixed batch's replica words and partial
// degrees are pre-gathered into a slot table by one worker per shard, the
// score loop reads and writes slots (preserving intra-batch sequential
// semantics exactly), and the mutated slots are applied back at the batch
// boundary. stream.Rebatch pins batch boundaries to fixed stream offsets,
// so assignments are bit-identical for every ScoreWorkers value and every
// upstream block shape.
func (h *HDRF) runSharded(src stream.Source, k int, sink *assignSink) error {
	lam := h.BalanceWeight
	if lam == 0 {
		lam = 1.1
	}
	const eps = 1.0
	n := src.NumVertices()
	h.srs.Reset(n, k, h.ScoreWorkers)
	h.sdeg.Reset(n, h.srs.NumShards())
	h.sizes = resetInt64(h.sizes, k)
	srs, sdeg, gt, sizes := &h.srs, &h.sdeg, &h.gt, h.sizes
	sp := &h.pipe
	sp.begin(n, h.srs.NumShards())
	defer sp.stop()
	gather := func(sh int, verts []graph.VertexID, slots []int32) {
		srs.GatherSlots(sh, verts, slots, gt)
		sdeg.GatherSlots(sh, verts, slots, gt)
	}
	apply := func(sh int, verts []graph.VertexID, slots []int32) {
		srs.ApplySlots(sh, verts, slots, gt)
		sdeg.ApplySlots(sh, verts, slots, gt)
	}
	var maxSize, minSize int64
	if h.resume != nil {
		var err error
		if maxSize, minSize, err = h.consumeResumeSharded(); err != nil {
			return err
		}
	}

	err := forEachBlock(stream.Rebatch(src, 0), func(blk []graph.Edge) error {
		sp.prepare(blk)
		gt.Reset(sp.nslots, k, true)
		sp.do(gather)
		out := sink.grab(len(blk))
		for j := range blk {
			su, sv := sp.su[j], sp.sv[j]
			gt.Bump(su)
			gt.Bump(sv)
			du, dv := float64(gt.Degree(su)), float64(gt.Degree(sv))
			thetaU := du / (du + dv)
			thetaV := 1 - thetaU
			gU := 1 + (1 - thetaU)
			gV := 1 + (1 - thetaV)

			spread := float64(maxSize - minSize)
			best := 0
			bestScore := -1.0
			var wu, wv uint64
			for p := 0; p < k; p++ {
				if p&63 == 0 {
					wu = gt.Word(su, p>>6)
					wv = gt.Word(sv, p>>6)
				}
				bit := uint64(1) << uint(p&63)
				var crep float64
				if wu&bit != 0 {
					crep += gU
				}
				if wv&bit != 0 {
					crep += gV
				}
				cbal := lam * float64(maxSize-sizes[p]) / (eps + spread)
				if score := crep + cbal; score > bestScore {
					bestScore = score
					best = p
				}
			}
			out[j] = int32(best)
			sizes[best]++
			gt.Set(su, best)
			gt.Set(sv, best)
			if sizes[best] > maxSize {
				maxSize = sizes[best]
			}
			if sizes[best]-1 == minSize {
				minSize = sizes[0]
				for p := 1; p < k; p++ {
					if sizes[p] < minSize {
						minSize = sizes[p]
					}
				}
			}
		}
		sp.do(apply)
		return sink.commit(blk, out)
	})
	if err != nil {
		return err
	}
	h.trace = &ScoreTrace{
		Workers:      srs.NumShards(),
		ReplicaBytes: srs.Bytes(),
		DegreeBytes:  sdeg.Bytes(),
		Shards:       srs.ShardStats(),
	}
	return nil
}

// StateBytes implements StateSizer: replica bitsets + degree table + sizes.
func (h *HDRF) StateBytes(numVertices, numEdges, k int) int64 {
	words := (k + 63) / 64
	return int64(numVertices)*int64(words)*8 + int64(numVertices)*4 + int64(k)*8
}
