package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/serve"
)

// ServeCell is one grid point of the placement-service benchmark: one
// dataset's partitioning frozen into one snapshot layout, queried by one or
// many clients. It captures the numbers the serving hot path is built for -
// lookups/sec and tail latency - plus the allocation rate of the query
// path, which is gated to zero at measurement time for the single-client
// cell (the concurrent cell interleaves scheduler allocations and is
// reported but not gated).
type ServeCell struct {
	Dataset string `json:"dataset"`
	// Layout is the snapshot table layout: "flat" (one slab) or "sharded"
	// (vertex-range shards).
	Layout string `json:"layout"`
	// Clients is the number of goroutines querying concurrently (1 = the
	// serial latency reference).
	Clients int    `json:"clients"`
	K       int    `json:"k"`
	Seed    uint64 `json:"seed"`
	// Vertices and Edges describe the partitioned graph (after scaling).
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// Lookups is the number of queries timed; LookupsPerSec the aggregate
	// throughput over the measurement wall clock.
	Lookups       int     `json:"lookups"`
	LookupsPerSec float64 `json:"lookups_per_sec"`
	// P50NS and P99NS are per-query latency percentiles over every client's
	// individually timed queries.
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
	// AllocsPerOp is heap allocations per query (MemStats delta / lookups).
	// Deterministically 0 for the single-client cell - the query hot path
	// allocates nothing - and enforced there when measured.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// ID names the cell's grid coordinates, the join key for baseline diffs.
func (c ServeCell) ID() string {
	return fmt.Sprintf("serve/%s/%s clients=%d k=%d seed=%d", c.Dataset, c.Layout, c.Clients, c.K, c.Seed)
}

// The serving grid: one moderate clustered dataset, both table layouts,
// serial and concurrent clients. k matches the streaming grid; the client
// count is fixed (not GOMAXPROCS) so cell IDs join across machines.
const (
	serveK            = streamK
	serveShards       = 8
	serveLookups      = 1 << 17
	serveMaxClients   = 8
	serveWarmupQuerys = 1 << 12
)

var defaultServeDatasets = []string{"UK"}

// runServeCells measures the serving grid serially (the cells time wall
// clock and latency percentiles, so nothing else may run concurrently).
// One partitioning run per dataset feeds every layout x clients cell.
func runServeCells(cfg SuiteConfig) ([]ServeCell, error) {
	datasets := cfg.ServeDatasets
	if len(datasets) == 0 {
		datasets = defaultServeDatasets
	}
	seed := cfg.Seeds[0]
	var cells []ServeCell
	for _, name := range datasets {
		ds, err := DatasetByName(name)
		if err != nil {
			return nil, fmt.Errorf("bench: serve cells: %w", err)
		}
		g := ds.Build(cfg.Scale)
		p, err := partition.New("CLUGP", seed)
		if err != nil {
			return nil, err
		}
		run, err := partition.Run(p, g, serveK, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: serve cells: partitioning %s: %w", name, err)
		}
		saved, err := serve.FromRun(run)
		if err != nil {
			return nil, err
		}
		suiteLogf(cfg, "serve: partitioned %s (%d vertices, %d edges, k=%d)",
			name, g.NumVertices, g.NumEdges(), serveK)
		for _, layout := range []struct {
			name string
			opts serve.Options
		}{
			{"flat", serve.Options{}},
			{"sharded", serve.Options{Shards: serveShards}},
		} {
			snap, err := serve.NewSnapshot(saved, layout.opts)
			if err != nil {
				return nil, err
			}
			for _, clients := range []int{1, serveMaxClients} {
				cell, err := runServeCell(snap, clients)
				if err != nil {
					return nil, fmt.Errorf("bench: serve cell %s/%s/%d: %w", name, layout.name, clients, err)
				}
				cell.Dataset, cell.K, cell.Seed = name, serveK, seed
				cell.Vertices, cell.Edges = g.NumVertices, g.NumEdges()
				// The zero-allocation contract is checked where it is
				// measured: a single client on a settled heap sees exactly
				// the query path's own allocations, and there must be none.
				if clients == 1 && cell.AllocsPerOp != 0 {
					return nil, fmt.Errorf("bench: serve cell %s/%s: query path allocates %.4f/op, want 0",
						name, layout.name, cell.AllocsPerOp)
				}
				cells = append(cells, cell)
				suiteLogf(cfg, "  serve %-4s %-7s clients=%d  %.1f Mlookups/s  p50=%dns p99=%dns  %.2f allocs/op",
					name, layout.name, clients, cell.LookupsPerSec/1e6, cell.P50NS, cell.P99NS, cell.AllocsPerOp)
			}
		}
	}
	return cells, nil
}

// serveQuery issues the i-th query of the deterministic mixed workload
// (primary lookups, replica-set scans and edge routing in a fixed rotation)
// against snap, using scratch for the replica query.
func serveQuery(snap *serve.Snapshot, i int, scratch []int32) error {
	n := snap.NumVertices()
	v := graph.VertexID(i * 2654435761 % n) // Fibonacci hashing: spread probes over the table
	switch i % 4 {
	case 0, 1:
		_, err := snap.Primary(v)
		return err
	case 2:
		_, err := snap.Replicas(v, scratch[:0])
		return err
	default:
		_, err := snap.RouteEdge(v, graph.VertexID((int(v)+1)%n))
		return err
	}
}

// runServeCell times serveLookups queries against snap from the given
// number of client goroutines. Every query is individually timed; the
// percentiles pool all clients' samples, the throughput divides total
// queries by the measurement wall clock. The MemStats delta spans the
// measurement with GC disabled, so for a single client it counts exactly
// the query path's allocations.
func runServeCell(snap *serve.Snapshot, clients int) (ServeCell, error) {
	perClient := serveLookups / clients
	total := perClient * clients
	samples := make([][]int64, clients)
	scratches := make([][]int32, clients)
	for c := 0; c < clients; c++ {
		samples[c] = make([]int64, perClient)
		scratches[c] = make([]int32, 0, snap.K())
	}
	errs := make([]error, clients)

	client := func(c int) {
		scratch := scratches[c]
		lat := samples[c]
		base := c * perClient
		for i := 0; i < perClient; i++ {
			qs := time.Now()
			if err := serveQuery(snap, base+i, scratch); err != nil {
				errs[c] = err
				return
			}
			lat[i] = time.Since(qs).Nanoseconds()
		}
	}

	// Warm up (page in the tables, touch every scratch), then settle the
	// heap so the measured delta starts from a forced-GC baseline. The
	// client closure is built above this line: its capture allocation must
	// not land in the delta.
	for i := 0; i < serveWarmupQuerys; i++ {
		if err := serveQuery(snap, i, scratches[0]); err != nil {
			return ServeCell{}, err
		}
	}
	gcPercent := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPercent)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	if clients == 1 {
		// Inline, not spawned: the goroutine launch itself allocates, and the
		// single-client measurement is the one gated at zero allocations.
		client(0)
	} else {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				client(c)
			}(c)
		}
		wg.Wait()
	}
	wallNS := time.Since(start).Nanoseconds()

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	for _, err := range errs {
		if err != nil {
			return ServeCell{}, err
		}
	}

	all := make([]int64, 0, total)
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	cell := ServeCell{
		Layout:      snap.Layout(),
		Clients:     clients,
		Lookups:     total,
		P50NS:       all[total/2],
		P99NS:       all[total*99/100],
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(total),
	}
	if wallNS > 0 {
		cell.LookupsPerSec = float64(total) / (float64(wallNS) / 1e9)
	}
	return cell, nil
}
