package game

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// testClusterGraph builds a cluster graph from a generated web graph.
func testClusterGraph(t testing.TB, n int, vmaxDiv int, seed uint64) *cluster.Graph {
	t.Helper()
	g := gen.Web(gen.WebConfig{N: n, OutDegree: 6, CopyFactor: 0.6, Seed: seed})
	s := stream.NewView(g, stream.BFS, 0).Source(g.NumVertices)
	res, err := cluster.Run(s, cluster.Config{Vmax: int64(s.Len()/vmaxDiv + 1)})
	if err != nil {
		t.Fatal(err)
	}
	res.Compact()
	cg, err := cluster.BuildGraph(s, res)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestSolveValidAssignment(t *testing.T) {
	cg := testClusterGraph(t, 3000, 32, 1)
	for _, k := range []int{1, 2, 7, 16} {
		asg, err := Solve(cg, Config{K: k, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(asg.Partition) != cg.NumClusters {
			t.Fatalf("k=%d: %d assignments for %d clusters", k, len(asg.Partition), cg.NumClusters)
		}
		for c, p := range asg.Partition {
			if p < 0 || int(p) >= k {
				t.Fatalf("k=%d: cluster %d assigned to %d", k, c, p)
			}
		}
		if asg.Rounds < 1 {
			t.Fatalf("k=%d: no rounds played", k)
		}
	}
}

func TestSolveRejectsBadConfig(t *testing.T) {
	cg := testClusterGraph(t, 500, 8, 2)
	if _, err := Solve(cg, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Solve(cg, Config{K: 4, RelWeight: 1.5}); err == nil {
		t.Fatal("RelWeight=1.5 accepted")
	}
}

func TestSolveEmptyGraph(t *testing.T) {
	cg := &cluster.Graph{NumClusters: 0}
	asg, err := Solve(cg, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(asg.Partition) != 0 {
		t.Fatal("nonempty assignment for empty cluster graph")
	}
}

func TestSolveDeterministic(t *testing.T) {
	cg := testClusterGraph(t, 2000, 16, 3)
	a, err := Solve(cg, Config{K: 8, Seed: 5, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(cg, Config{K: 8, Seed: 5, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Partition {
		if a.Partition[c] != b.Partition[c] {
			t.Fatalf("same seed diverged at cluster %d", c)
		}
	}
}

// TestNashEquilibrium verifies the defining property: after Solve with a
// single batch, no cluster can lower its individual cost by unilaterally
// switching partitions.
func TestNashEquilibrium(t *testing.T) {
	cg := testClusterGraph(t, 1500, 16, 4)
	k := 6
	lambda := LambdaMax(cg, k)
	asg, err := Solve(cg, Config{K: k, Lambda: lambda, Seed: 2, BatchSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	assign := asg.Partition
	for c := 0; c < cg.NumClusters; c++ {
		cur := IndividualCost(cg, assign, cluster.ID(c), k, lambda)
		orig := assign[c]
		for p := int32(0); p < int32(k); p++ {
			if p == orig {
				continue
			}
			assign[c] = p
			if alt := IndividualCost(cg, assign, cluster.ID(c), k, lambda); alt < cur-1e-6 {
				t.Fatalf("cluster %d can improve %v -> %v by moving %d->%d", c, cur, alt, orig, p)
			}
		}
		assign[c] = orig
	}
}

// TestExactPotential checks Theorem 4: for any unilateral deviation, the
// change of the potential function equals the change of the deviating
// cluster's individual cost.
func TestExactPotential(t *testing.T) {
	cg := testClusterGraph(t, 1000, 8, 5)
	k := 5
	lambda := LambdaMax(cg, k)
	rng := xrand.New(11)
	assign := make([]int32, cg.NumClusters)
	for c := range assign {
		assign[c] = int32(rng.Intn(k))
	}
	for trial := 0; trial < 200; trial++ {
		c := cluster.ID(rng.Intn(cg.NumClusters))
		newP := int32(rng.Intn(k))
		oldP := assign[c]
		if newP == oldP {
			continue
		}
		phiBefore := IndividualCost(cg, assign, c, k, lambda)
		potBefore := Potential(cg, assign, k, lambda)
		assign[c] = newP
		phiAfter := IndividualCost(cg, assign, c, k, lambda)
		potAfter := Potential(cg, assign, k, lambda)
		dPhi := phiAfter - phiBefore
		dPot := potAfter - potBefore
		if math.Abs(dPhi-dPot) > 1e-6*(1+math.Abs(dPhi)) {
			t.Fatalf("trial %d: delta phi %v != delta Phi %v", trial, dPhi, dPot)
		}
	}
}

// TestGlobalCostIsSumOfIndividual checks Equation 12: the global deployment
// cost decomposes into the sum of individual costs.
func TestGlobalCostIsSumOfIndividual(t *testing.T) {
	cg := testClusterGraph(t, 800, 8, 6)
	k := 4
	lambda := 0.7
	rng := xrand.New(3)
	assign := make([]int32, cg.NumClusters)
	for c := range assign {
		assign[c] = int32(rng.Intn(k))
	}
	var sum float64
	for c := 0; c < cg.NumClusters; c++ {
		sum += IndividualCost(cg, assign, cluster.ID(c), k, lambda)
	}
	global := GlobalCost(cg, assign, k, lambda)
	if math.Abs(sum-global) > 1e-6*(1+math.Abs(global)) {
		t.Fatalf("sum of individual costs %v != global cost %v", sum, global)
	}
}

// TestSolveImprovesPotential: equilibrium potential must not exceed the
// potential of the random initial assignment (best-response dynamics only
// ever decrease Phi).
func TestSolveImprovesPotential(t *testing.T) {
	cg := testClusterGraph(t, 2000, 32, 7)
	k := 8
	lambda := LambdaMax(cg, k)
	// Reconstruct the same initial assignment Solve uses for a single batch.
	rng := xrand.New(uint64(9) ^ (0x9e3779b97f4a7c15 * uint64(0+1)))
	initial := make([]int32, cg.NumClusters)
	for c := range initial {
		initial[c] = int32(rng.Intn(k))
	}
	before := Potential(cg, initial, k, lambda)
	asg, err := Solve(cg, Config{K: k, Lambda: lambda, Seed: 9, BatchSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	after := Potential(cg, asg.Partition, k, lambda)
	if after > before+1e-9 {
		t.Fatalf("equilibrium potential %v exceeds initial %v", after, before)
	}
}

// TestRoundComplexityBound sanity-checks Theorem 6's spirit: convergence in
// far fewer rounds than the inter-cluster edge count.
func TestRoundComplexityBound(t *testing.T) {
	cg := testClusterGraph(t, 3000, 32, 8)
	asg, err := Solve(cg, Config{K: 8, Seed: 1, BatchSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	if int64(asg.Rounds) > cg.TotalInter {
		t.Fatalf("%d rounds exceeds Theorem 6 bound %d", asg.Rounds, cg.TotalInter)
	}
}

// TestPoSBound exercises Theorem 8's consequence on small instances where
// the optimum can be brute-forced: the best Nash equilibrium found is
// within factor 2 of the optimum (we check the weaker: the equilibrium we
// find is within factor 2 of optimum on cost, using Phi(opt) <= Phi(eq)).
func TestPoSBoundSmall(t *testing.T) {
	// 4 clusters, k=2, brute force 16 assignments.
	cg := &cluster.Graph{
		NumClusters: 4,
		Intra:       []int64{4, 3, 2, 1},
		Adj: [][]cluster.Arc{
			{{To: 1, W: 5}},
			{{To: 0, W: 5}, {To: 2, W: 1}},
			{{To: 1, W: 1}, {To: 3, W: 4}},
			{{To: 2, W: 4}},
		},
		TotalIntra: 10,
		TotalInter: 10,
	}
	k := 2
	lambda := LambdaMax(cg, k)
	best := math.Inf(1)
	assign := make([]int32, 4)
	for mask := 0; mask < 16; mask++ {
		for c := 0; c < 4; c++ {
			assign[c] = int32((mask >> uint(c)) & 1)
		}
		if cost := GlobalCost(cg, assign, k, lambda); cost < best {
			best = cost
		}
	}
	asg, err := Solve(cg, Config{K: k, Lambda: lambda, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := GlobalCost(cg, asg.Partition, k, lambda)
	if got > 2*best+1e-9 {
		t.Fatalf("equilibrium cost %v > 2x optimum %v", got, best)
	}
}

func TestGreedyAssignBalances(t *testing.T) {
	cg := testClusterGraph(t, 3000, 64, 9)
	k := 8
	asg := GreedyAssign(cg, k)
	load := make([]int64, k)
	for c, p := range asg.Partition {
		if p < 0 || int(p) >= k {
			t.Fatalf("invalid partition %d", p)
		}
		load[p] += cg.Intra[c]
	}
	var min, max int64 = math.MaxInt64, 0
	for _, l := range load {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// LPT guarantees max <= avg + largest item; on many small clusters the
	// spread should be tight.
	if min == 0 && cg.TotalIntra > int64(4*k) {
		t.Fatalf("greedy left a partition empty: %v", load)
	}
	if float64(max) > 1.5*float64(cg.TotalIntra)/float64(k)+float64(maxIntra(cg)) {
		t.Fatalf("greedy imbalance: loads %v", load)
	}
}

func maxIntra(cg *cluster.Graph) int64 {
	var m int64
	for _, v := range cg.Intra {
		if v > m {
			m = v
		}
	}
	return m
}

func TestLambdaMax(t *testing.T) {
	cg := testClusterGraph(t, 1000, 8, 10)
	sumW := cg.TotalWeight()
	for _, k := range []int{2, 8, 32} {
		lm := LambdaMax(cg, k)
		want := float64(k*k) * float64(cg.TotalInter) / (float64(sumW) * float64(sumW))
		if math.Abs(lm-want) > 1e-12 {
			t.Fatalf("LambdaMax(k=%d) = %v, want %v", k, lm, want)
		}
	}
	empty := &cluster.Graph{NumClusters: 2, Intra: []int64{0, 0}, Adj: make([][]cluster.Arc, 2)}
	if lm := LambdaMax(empty, 4); lm != 1 {
		t.Fatalf("LambdaMax of edge-free graph = %v, want 1", lm)
	}
}

func TestBatchingStillBalances(t *testing.T) {
	cg := testClusterGraph(t, 4000, 64, 11)
	k := 8
	asg, err := Solve(cg, Config{K: k, Seed: 1, BatchSize: 4 * k})
	if err != nil {
		t.Fatal(err)
	}
	load := make([]int64, k)
	for c, p := range asg.Partition {
		load[p] += cg.Intra[c]
	}
	var max int64
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	avg := float64(cg.TotalIntra) / float64(k)
	if float64(max) > 2.5*avg+float64(maxIntra(cg)) {
		t.Fatalf("batched game imbalance: max %d vs avg %.0f", max, avg)
	}
	if asg.Batches < 2 {
		t.Fatalf("expected multiple batches, got %d", asg.Batches)
	}
}

func TestSortBySizeDesc(t *testing.T) {
	check := func(sizes []int64) bool {
		if len(sizes) == 0 {
			return true
		}
		for i := range sizes {
			if sizes[i] < 0 {
				sizes[i] = -sizes[i]
			}
		}
		order := make([]int32, len(sizes))
		for i := range order {
			order[i] = int32(i)
		}
		sortBySizeDesc(order, sizes)
		seen := make([]bool, len(sizes))
		for i, c := range order {
			if seen[c] {
				return false
			}
			seen[c] = true
			if i > 0 && sizes[order[i-1]] < sizes[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerPoolInvariantToThreads pins the bounded-worker-pool rewrite:
// with BatchSize=1 the game degenerates to one batch per cluster (thousands
// of batches), and the assignment must be identical for any worker count -
// including Threads far above and far below the batch count - with no
// goroutine left behind after Solve returns.
func TestWorkerPoolInvariantToThreads(t *testing.T) {
	cg := testClusterGraph(t, 4000, 64, 3)
	if cg.NumClusters < 100 {
		t.Fatalf("want a many-batch scenario, got %d clusters", cg.NumClusters)
	}
	before := runtime.NumGoroutine()
	var first *Assignment
	for _, threads := range []int{1, 3, 64, 10000} {
		asg, err := Solve(cg, Config{K: 8, Seed: 5, BatchSize: 1, Threads: threads, Restarts: 2})
		if err != nil {
			t.Fatal(err)
		}
		if asg.Batches != cg.NumClusters {
			t.Fatalf("threads=%d: %d batches, want %d", threads, asg.Batches, cg.NumClusters)
		}
		if first == nil {
			first = asg
			continue
		}
		for c := range first.Partition {
			if asg.Partition[c] != first.Partition[c] {
				t.Fatalf("threads=%d: assignment differs at cluster %d", threads, c)
			}
		}
		if asg.Rounds != first.Rounds || asg.Moves != first.Moves {
			t.Fatalf("threads=%d: stats differ (%d/%d vs %d/%d)", threads, asg.Rounds, asg.Moves, first.Rounds, first.Moves)
		}
	}
	// Give exited workers a beat, then check the pool cleaned up.
	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("Solve leaked goroutines: %d before, %d after", before, after)
	}
}
