package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
)

func webEdges(n int, seed uint64) ([]graph.Edge, int) {
	g := gen.Web(gen.WebConfig{N: n, OutDegree: 6, CopyFactor: 0.6, Seed: seed})
	return stream.Edges(g, stream.BFS, 0), g.NumVertices
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(stream.View{}.Source(0), Config{Vmax: 0}); err == nil {
		t.Fatal("Vmax=0 accepted")
	}
	if _, err := Run(stream.Of([]graph.Edge{{Src: 0, Dst: 9}}).Source(2), Config{Vmax: 10}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestEveryEndpointClustered(t *testing.T) {
	edges, nv := webEdges(3000, 1)
	res, err := Run(stream.Of(edges).Source(nv), Config{Vmax: int64(len(edges) / 16)})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if res.Assign[e.Src] == None || res.Assign[e.Dst] == None {
			t.Fatalf("edge %v has unclustered endpoint", e)
		}
	}
}

// TestVolumeConservation checks the paper's bookkeeping invariant: every
// degree increment adds one unit of volume, and splits/migrations move
// volume without creating or destroying it, so sum(Volume) == sum(Degree)
// at all times.
func TestVolumeConservation(t *testing.T) {
	for _, split := range []bool{false, true} {
		edges, nv := webEdges(3000, 2)
		res, err := Run(stream.Of(edges).Source(nv), Config{Vmax: int64(len(edges) / 32), DisableSplitting: !split})
		if err != nil {
			t.Fatal(err)
		}
		var volSum, degSum int64
		for _, v := range res.Volume {
			volSum += v
		}
		for _, d := range res.Degree {
			degSum += int64(d)
		}
		if volSum != degSum {
			t.Fatalf("split=%v: volume sum %d != degree sum %d", split, volSum, degSum)
		}
	}
}

func TestDegreesMatchStream(t *testing.T) {
	edges, nv := webEdges(2000, 3)
	res, err := Run(stream.Of(edges).Source(nv), Config{Vmax: int64(len(edges) / 8)})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, nv)
	for _, e := range edges {
		want[e.Src]++
		want[e.Dst]++
	}
	for v := range want {
		if res.Degree[v] != want[v] {
			t.Fatalf("deg[%d] = %d, want %d", v, res.Degree[v], want[v])
		}
	}
}

func TestSplittingOccursOnPowerLawGraphs(t *testing.T) {
	edges, nv := webEdges(5000, 4)
	res, err := Run(stream.Of(edges).Source(nv), Config{Vmax: int64(len(edges) / 64)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits == 0 {
		t.Fatal("no splits on a skewed graph with small Vmax")
	}
	divided := 0
	for _, d := range res.Divided {
		if d {
			divided++
		}
	}
	if divided == 0 {
		t.Fatal("splits recorded but no divided vertices marked")
	}
}

func TestNoSplitsWhenDisabled(t *testing.T) {
	edges, nv := webEdges(5000, 4)
	res, err := Run(stream.Of(edges).Source(nv), Config{Vmax: int64(len(edges) / 64), DisableSplitting: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits != 0 {
		t.Fatalf("splitting disabled but %d splits recorded", res.Splits)
	}
	for v, d := range res.Divided {
		if d {
			t.Fatalf("vertex %d marked divided with splitting disabled", v)
		}
	}
}

func TestMigrationHappens(t *testing.T) {
	edges, nv := webEdges(2000, 5)
	res, err := Run(stream.Of(edges).Source(nv), Config{Vmax: int64(len(edges) / 8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("no migrations on a clustered web graph")
	}
}

func TestClusteringGroupsNeighbours(t *testing.T) {
	// Two disjoint triangles with generous Vmax must land in exactly two
	// clusters after compaction.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3},
	}
	res, err := Run(stream.Of(edges).Source(6), Config{Vmax: 100})
	if err != nil {
		t.Fatal(err)
	}
	res.Compact()
	if res.NumClusters != 2 {
		t.Fatalf("two triangles yielded %d clusters, want 2", res.NumClusters)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[1] != res.Assign[2] {
		t.Fatalf("triangle 0-1-2 split: %v", res.Assign[:3])
	}
	if res.Assign[3] != res.Assign[4] || res.Assign[4] != res.Assign[5] {
		t.Fatalf("triangle 3-4-5 split: %v", res.Assign[3:])
	}
	if res.Assign[0] == res.Assign[3] {
		t.Fatal("disjoint triangles merged")
	}
}

func TestCompact(t *testing.T) {
	edges, nv := webEdges(3000, 6)
	res, err := Run(stream.Of(edges).Source(nv), Config{Vmax: int64(len(edges) / 32)})
	if err != nil {
		t.Fatal(err)
	}
	members := res.Compact()
	if res.NumClusters != len(members) {
		t.Fatalf("NumClusters %d != len(members) %d", res.NumClusters, len(members))
	}
	// Dense ids, every cluster non-empty, volumes = sum of member degrees.
	var total int32
	for c, m := range members {
		if m <= 0 {
			t.Fatalf("cluster %d empty after compaction", c)
		}
		total += m
	}
	seen := 0
	volWant := make([]int64, res.NumClusters)
	for v, c := range res.Assign {
		if c == None {
			continue
		}
		seen++
		if int(c) >= res.NumClusters {
			t.Fatalf("assign[%d]=%d exceeds NumClusters %d", v, c, res.NumClusters)
		}
		volWant[c] += int64(res.Degree[v])
	}
	if int(total) != seen {
		t.Fatalf("membership %d != clustered vertices %d", total, seen)
	}
	for c := range volWant {
		if res.Volume[c] != volWant[c] {
			t.Fatalf("compacted volume[%d] = %d, want %d", c, res.Volume[c], volWant[c])
		}
	}
}

// TestSplittingReducesReplicaPotential verifies the motivation of Theorem 1
// on a real stream: the number of divided-vertex mirrors CLUGP creates is
// bounded by what Holl's framework would spread across clusters. We check
// the weaker, directly-observable form: with splitting, the cluster count
// stays near the Holl count while hot clusters stop saturating.
func TestSplittingBoundsClusterVolume(t *testing.T) {
	edges, nv := webEdges(5000, 7)
	vmax := int64(len(edges) / 64)
	res, err := Run(stream.Of(edges).Source(nv), Config{Vmax: vmax})
	if err != nil {
		t.Fatal(err)
	}
	res.Compact()
	// After splitting, no cluster should wildly exceed Vmax: a member's
	// whole degree arrives at most once past the threshold.
	over := 0
	for _, v := range res.Volume {
		if v > 3*vmax {
			over++
		}
	}
	if frac := float64(over) / float64(res.NumClusters); frac > 0.02 {
		t.Fatalf("%.1f%% of clusters exceed 3*Vmax", frac*100)
	}
}

func TestQuickClusteringInvariants(t *testing.T) {
	check := func(seed uint64, split bool) bool {
		g := gen.Web(gen.WebConfig{N: 400, OutDegree: 4, CopyFactor: 0.5, Seed: seed})
		edges := stream.Edges(g, stream.BFS, 0)
		res, err := Run(stream.Of(edges).Source(g.NumVertices), Config{Vmax: 40, DisableSplitting: !split})
		if err != nil {
			return false
		}
		var volSum, degSum int64
		for _, v := range res.Volume {
			volSum += v
		}
		for _, d := range res.Degree {
			degSum += int64(d)
		}
		if volSum != degSum {
			return false
		}
		for _, e := range edges {
			if res.Assign[e.Src] == None || res.Assign[e.Dst] == None {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
