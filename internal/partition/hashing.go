package partition

import (
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// Hashing is PowerGraph's random edge placement: each edge goes to a
// partition chosen by hashing the edge itself. O(1) time per edge, zero
// state, lowest quality (Table I: time Low, quality Low).
type Hashing struct {
	// Seed perturbs the hash so independent runs decorrelate.
	Seed uint64
}

// Name implements Partitioner.
func (h *Hashing) Name() string { return "Hashing" }

// PreferredOrder implements Partitioner. Hashing is order-oblivious; random
// is the paper's stated setting.
func (h *Hashing) PreferredOrder() stream.Order { return stream.Random }

// Partition implements Partitioner.
func (h *Hashing) Partition(src stream.Source, k int) ([]int32, error) {
	return partitionVia(h, src, k)
}

// PartitionInto implements IntoPartitioner. The sink is constructed in a
// concrete call chain so it stays on the stack (zero-allocation contract).
func (h *Hashing) PartitionInto(src stream.Source, k int, assign []int32) error {
	if err := checkInto(src, k, assign); err != nil {
		return err
	}
	sink := assignSink{assign: assign}
	return h.run(src, k, &sink)
}

// PartitionStream implements StreamingPartitioner.
func (h *Hashing) PartitionStream(src stream.Source, k int, emit Emit) error {
	return streamVia(h, src, k, emit)
}

func (h *Hashing) run(src stream.Source, k int, sink *assignSink) error {
	kk := uint64(k)
	return forEachBlock(src, func(blk []graph.Edge) error {
		out := sink.grab(len(blk))
		for j, e := range blk {
			key := uint64(e.Src)<<32 | uint64(e.Dst)
			out[j] = int32(xrand.Hash64(key^h.Seed) % kk)
		}
		return sink.commit(blk, out)
	})
}

// StateBytes implements StateSizer: a hash function needs no state beyond
// the k partition counters (the paper reports Hashing at 0 space cost).
func (h *Hashing) StateBytes(numVertices, numEdges, k int) int64 { return 0 }

// DBH is degree-based hashing (Xie et al., NeurIPS 2014): the edge is
// placed by hashing its lower-degree endpoint, so low-degree vertices keep
// their edges together while high-degree vertices are cut - the right
// trade for power-law graphs. Degrees are the partial (streamed-so-far)
// counts, keeping the algorithm single-pass. The degree table is scratch
// reused across runs.
type DBH struct {
	Seed uint64

	deg []uint32
}

// Name implements Partitioner.
func (d *DBH) Name() string { return "DBH" }

// PreferredOrder implements Partitioner.
func (d *DBH) PreferredOrder() stream.Order { return stream.Random }

// Partition implements Partitioner.
func (d *DBH) Partition(src stream.Source, k int) ([]int32, error) {
	return partitionVia(d, src, k)
}

// PartitionInto implements IntoPartitioner. The sink is constructed in a
// concrete call chain so it stays on the stack (zero-allocation contract).
func (d *DBH) PartitionInto(src stream.Source, k int, assign []int32) error {
	if err := checkInto(src, k, assign); err != nil {
		return err
	}
	sink := assignSink{assign: assign}
	return d.run(src, k, &sink)
}

// PartitionStream implements StreamingPartitioner.
func (d *DBH) PartitionStream(src stream.Source, k int, emit Emit) error {
	return streamVia(d, src, k, emit)
}

func (d *DBH) run(src stream.Source, k int, sink *assignSink) error {
	d.deg = resetUint32(d.deg, src.NumVertices())
	deg := d.deg
	kk := uint64(k)
	return forEachBlock(src, func(blk []graph.Edge) error {
		out := sink.grab(len(blk))
		for j, e := range blk {
			deg[e.Src]++
			deg[e.Dst]++
			low := e.Src
			if deg[e.Dst] < deg[e.Src] {
				low = e.Dst
			}
			out[j] = int32(xrand.Hash64(uint64(low)^d.Seed) % kk)
		}
		return sink.commit(blk, out)
	})
}

// StateBytes implements StateSizer: one degree counter per vertex.
func (d *DBH) StateBytes(numVertices, numEdges, k int) int64 {
	return int64(numVertices) * 4
}
