package store

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// cgr2RoundTrip encodes g as CGR2 and decodes it back, failing on any
// difference in shape or edge order.
func cgr2RoundTrip(t *testing.T, name string, g *graph.Graph) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFormat(&buf, g, FormatCGR2); err != nil {
		t.Fatalf("%s: write: %v", name, err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%s: read: %v", name, err)
	}
	if back.NumVertices != g.NumVertices || back.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: shape %d/%d, want %d/%d", name, back.NumVertices, back.NumEdges(), g.NumVertices, g.NumEdges())
	}
	for i := range g.Edges {
		if back.Edges[i] != g.Edges[i] {
			t.Fatalf("%s: edge %d changed: %v vs %v (order must be preserved)", name, i, back.Edges[i], g.Edges[i])
		}
	}
}

func TestCGR2RoundTrip(t *testing.T) {
	cgr2RoundTrip(t, "web", gen.Web(gen.WebConfig{N: 5000, OutDegree: 6, IntraSite: 0.85, Seed: 1}))
}

// TestCGR2RoundTripAdversarial pins the v2 codec on the shapes most likely
// to break a run/interval coder: ids at the top of the int32 range, giant
// runs that overflow the packed header's inline length, intervals that wrap
// the whole run, descending targets, self-loops, duplicates.
func TestCGR2RoundTripAdversarial(t *testing.T) {
	const maxID = 1<<31 - 1
	longRun := make([]graph.Edge, 100) // one run far beyond the 15-edge inline header
	for i := range longRun {
		longRun[i] = graph.Edge{Src: 7, Dst: graph.VertexID(i)} // also one long interval
	}
	descending := make([]graph.Edge, 50)
	for i := range descending {
		descending[i] = graph.Edge{Src: 3, Dst: graph.VertexID(99 - i)} // gaps of -1, never intervals
	}
	cases := map[string]*graph.Graph{
		"empty":         graph.New(3, nil),
		"no-vertices":   graph.New(0, nil),
		"single-vertex": graph.New(1, nil),
		"single-edge":   graph.New(2, []graph.Edge{{Src: 1, Dst: 0}}),
		"self-loop":     graph.New(1, []graph.Edge{{Src: 0, Dst: 0}}),
		"long-run":      graph.New(100, longRun),
		"descending":    graph.New(100, descending),
		"max-int32-ids": graph.New(maxID+1, []graph.Edge{
			{Src: maxID, Dst: 0},
			{Src: 0, Dst: maxID},
			{Src: maxID, Dst: maxID},
			{Src: maxID - 1, Dst: 1},
		}),
		"interval-at-run-start": graph.New(10, []graph.Edge{
			{Src: 4, Dst: 5}, {Src: 4, Dst: 6}, {Src: 4, Dst: 7}, // 5,6,7 = src+1...
		}),
		"interval-to-top": graph.New(4, []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, // interval ends at nv-1
		}),
		"sawtooth": graph.New(1000, []graph.Edge{
			{Src: 999, Dst: 0}, {Src: 0, Dst: 999}, {Src: 500, Dst: 500},
			{Src: 999, Dst: 999}, {Src: 0, Dst: 0},
		}),
		"duplicates": graph.New(2, []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1},
		}),
	}
	for name, g := range cases {
		cgr2RoundTrip(t, name, g)
	}
}

func TestCGR2QuickRoundTrip(t *testing.T) {
	check := func(raw []uint16, nRaw uint8) bool {
		nv := int(nRaw)%100 + 2
		edges := make([]graph.Edge, 0, len(raw))
		for _, r := range raw {
			edges = append(edges, graph.Edge{
				Src: graph.VertexID(int(r>>8) % nv),
				Dst: graph.VertexID(int(r) % nv),
			})
		}
		g := graph.New(nv, edges)
		var buf bytes.Buffer
		if err := WriteFormat(&buf, g, FormatCGR2); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.NumVertices != nv || back.NumEdges() != len(edges) {
			return false
		}
		for i := range edges {
			if edges[i] != back.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCGR2Compression is the headline acceptance criterion: on the
// clustered crawl-ordered generator graphs (the UK/IT dataset shapes),
// CGR2 must cut bytes/edge by at least 30% versus CGR1.
func TestCGR2Compression(t *testing.T) {
	for name, cfg := range map[string]gen.WebConfig{
		"UK-like": {N: 30000, OutDegree: 8, SiteMean: 150, IntraSite: 0.88, CopyFactor: 0.6, Seed: 1001},
		"IT-like": {N: 35000, OutDegree: 18, SiteMean: 150, IntraSite: 0.88, CopyFactor: 0.65, Seed: 1004},
	} {
		g := gen.Web(cfg)
		var v1, v2 bytes.Buffer
		if err := WriteFormat(&v1, g, FormatCGR1); err != nil {
			t.Fatal(err)
		}
		if err := WriteFormat(&v2, g, FormatCGR2); err != nil {
			t.Fatal(err)
		}
		saving := 1 - float64(v2.Len())/float64(v1.Len())
		t.Logf("%s: CGR1 %.3f B/edge, CGR2 %.3f B/edge (%.1f%% smaller)",
			name, float64(v1.Len())/float64(g.NumEdges()), float64(v2.Len())/float64(g.NumEdges()), 100*saving)
		if saving < 0.30 {
			t.Errorf("%s: CGR2 saves only %.1f%% over CGR1, want >= 30%%", name, 100*saving)
		}
	}
}

// TestCGR2IntervalCollapse pins the interval coding itself: a run of
// consecutive targets must cost O(1) tokens, not O(n) gaps.
func TestCGR2IntervalCollapse(t *testing.T) {
	edges := make([]graph.Edge, 10000)
	for i := range edges {
		edges[i] = graph.Edge{Src: 0, Dst: graph.VertexID(i + 1)}
	}
	g := graph.New(10002, edges)
	var buf bytes.Buffer
	if err := WriteFormat(&buf, g, FormatCGR2); err != nil {
		t.Fatal(err)
	}
	// Header + one run header + one interval token: far under a byte/edge.
	if buf.Len() > 64 {
		t.Fatalf("10000 consecutive targets took %d bytes, want O(1) interval coding", buf.Len())
	}
	cgr2RoundTrip(t, "interval-collapse", g)
}

// header2 hand-crafts a CGR2 header with arbitrary declared counts.
func header2(nv, ne uint64) []byte {
	buf := append([]byte{}, magic2[:]...)
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], nv)]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], ne)]...)
	return buf
}

// TestCGR2CorruptInputsRejected forges the failure shapes specific to the
// v2 layout: run lengths past the declared edge count, interval counts past
// the run remainder, out-of-range sources and targets, truncated tokens,
// varint overflows.
func TestCGR2CorruptInputsRejected(t *testing.T) {
	uv := func(xs ...uint64) []byte {
		var out []byte
		var tmp [binary.MaxVarintLen64]byte
		for _, x := range xs {
			out = append(out, tmp[:binary.PutUvarint(tmp[:], x)]...)
		}
		return out
	}
	cases := map[string][]byte{
		// Declared counts beyond any physical file.
		"forged-edge-count":   header2(4, 1<<60),
		"forged-vertex-count": header2(1<<40, 0),
		// Header only; body missing entirely.
		"truncated-empty-body": header2(4, 2),
		// Run header declares 3 targets but the file declares 2 edges.
		"run-past-edge-count": append(header2(4, 2), uv(zigzag(0)<<4|2)...),
		// Run of 2, then an interval of 2 when only the run's 2 remain but
		// one was consumed: interval count 2 > runLeft 1 after first target.
		"interval-past-run": append(header2(8, 2), append(uv(zigzag(0)<<4|1), uv(3, 0, 2)...)...),
		// Source gap lands outside [0, nv).
		"run-source-negative": append(header2(4, 1), uv(zigzag(-3)<<4|0, 1)...),
		"run-source-too-big":  append(header2(4, 1), uv(zigzag(10)<<4|0, 1)...),
		// Target gap lands outside [0, nv).
		"target-too-big": append(header2(4, 1), uv(zigzag(0)<<4|0, zigzag(100)+1)...),
		// Interval runs past nv: src=2, interval of 1 -> dst=3 ok; nv=3 -> dst 3 out of range.
		"interval-past-nv": append(header2(3, 1), uv(zigzag(2)<<4|0, 0, 1)...),
		// Token truncated mid-varint.
		"truncated-token": append(header2(4, 1), 0x80),
		// Varint overflow in the run header.
		"overflow-header": append(header2(4, 1), bytes.Repeat([]byte{0x80}, 11)...),
		// Interval count zero is never emitted and must be rejected.
		"zero-interval": append(header2(8, 2), uv(zigzag(0)<<4|1, 0, 0)...),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt CGR2 input accepted", name)
		}
	}
}

// TestWriteFormatDispatch: every writer produces its own magic and Read
// auto-detects all of them; Sniff accepts all of them.
func TestWriteFormatDispatch(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 500, OutDegree: 4, Seed: 2})
	for _, f := range []Format{FormatCGR1, FormatCGR2, FormatCGR3} {
		var buf bytes.Buffer
		if err := WriteFormat(&buf, g, f); err != nil {
			t.Fatal(err)
		}
		if !SniffHeader(buf.Bytes()) {
			t.Fatalf("SniffHeader missed %s", f)
		}
		sr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if sr.Format() != f {
			t.Fatalf("detected %s, wrote %s", sr.Format(), f)
		}
	}
	if err := WriteFormat(&bytes.Buffer{}, g, Format(9)); err == nil {
		t.Fatal("unknown format accepted")
	}
	if SniffHeader([]byte("CGR9....")) {
		t.Fatal("SniffHeader accepted unknown magic")
	}
}
