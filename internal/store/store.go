// Package store implements compact binary graph formats playing the role
// WebGraph's BV format plays for the paper's datasets: crawl-ordered edge
// streams compress extremely well under gap encoding because consecutive
// edges share sources and target nearby vertices.
//
// Three self-describing formats (little-endian varints throughout):
//
//	CGR1:  magic "CGR1" | uvarint numVertices | uvarint numEdges |
//	       per edge: zigzag(src - prevSrc) | zigzag(dst - src)
//
//	CGR2:  magic "CGR2" | uvarint numVertices | uvarint numEdges |
//	       per same-source run: packed header
//	       (zigzag(srcGap-1)<<4 | min(runLen-1, 15), then uvarint(runLen-16)
//	       when the low nibble is 15), then per target: 0 + uvarint(count)
//	       for runs of consecutive ids, or zigzag(dst - prevDst) + 1 for
//	       residuals
//
//	CGR3:  the CGR2 encoding under magic "CGR3", followed by a CRC32C
//	       block-checksum trailer and footer (see integrity.go): bit flips,
//	       torn writes and truncation are detected instead of decoded
//
// On BFS-ordered web graphs CGR1 lands around 2.5 bytes/edge versus ~13 for
// the text edge list; CGR2 cuts another 30-50% by amortizing repeated
// sources over one run header and collapsing consecutive targets. Both
// formats preserve edge order exactly - order is semantic for streaming
// partitioners - and decode via streaming readers so graphs need not be
// materialized to be re-streamed. For the out-of-core sources over these
// files see FileSource (seek-based) and MmapSource (mapped).
package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
)

// ErrBadMagic reports that the input is not in any of this package's
// formats.
var ErrBadMagic = errors.New("store: bad magic (not a CGR1/CGR2/CGR3 file)")

// Write encodes the graph to w in the original CGR1 format.
func Write(w io.Writer, g *graph.Graph) error {
	return WriteFormat(w, g, FormatCGR1)
}

// WriteFormat encodes the graph to w in the chosen format. CGR3 payloads
// are written through a checksumming writer and sealed with the integrity
// trailer; the other formats are written as-is.
func WriteFormat(w io.Writer, g *graph.Graph, f Format) error {
	if f == FormatCGR3 {
		cw := newCRCWriter(w)
		if err := writeGraphPayload(cw, g, f); err != nil {
			return err
		}
		return cw.writeTrailer()
	}
	return writeGraphPayload(w, g, f)
}

// writeGraphPayload emits magic, header and body - the checksummed span of
// a CGR3 file, the whole file for CGR1/CGR2.
func writeGraphPayload(w io.Writer, g *graph.Graph, f Format) error {
	vw := &varintWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	if err := vw.writeHeader(f, g); err != nil {
		return err
	}
	var err error
	switch f {
	case FormatCGR1:
		err = encodeCGR1(vw, g.Edges)
	case FormatCGR2, FormatCGR3:
		err = encodeCGR2(vw, g.Edges)
	default:
		return errors.New("store: unknown format " + f.String())
	}
	if err != nil {
		return err
	}
	return vw.bw.Flush()
}

// Reader streams edges of either format from an encoded graph without
// materializing them.
type Reader struct {
	dec         decoder
	numVertices int
	numEdges    int
	read        int
}

// NewReader validates the header and prepares streaming decode. The format
// is detected from the magic; see Reader.Format. A checksummed file (CGR3)
// cannot be verified lazily through a forward-only reader - the trailer
// lives at EOF - so its bytes are buffered and every payload block proven
// eagerly before the first edge decodes; the seekable sources (Open,
// OpenMmap) verify lazily instead and are what the streaming path uses.
func NewReader(r io.Reader) (*Reader, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	format, ok := formatOfMagic(m)
	if !ok {
		return nil, ErrBadMagic
	}
	sr := &Reader{}
	if format == FormatCGR3 {
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("store: buffering checksummed stream: %w", err)
		}
		data := make([]byte, 0, 4+len(rest))
		data = append(append(data, m[:]...), rest...)
		payload, err := verifyAllBytes(data, "stream")
		if err != nil {
			return nil, err
		}
		sr.dec.cur = mappedCursor(payload)
		sr.dec.cur.i = 4 // past the magic
	} else {
		sr.dec.cur = readerCursor(r)
	}
	nv, err := sr.dec.cur.uvarint()
	if err != nil {
		return nil, fmt.Errorf("store: reading vertex count: %w", err)
	}
	ne, err := sr.dec.cur.uvarint()
	if err != nil {
		return nil, fmt.Errorf("store: reading edge count: %w", err)
	}
	if err := checkCounts(nv, ne); err != nil {
		return nil, err
	}
	sr.dec.format = format
	sr.dec.nv = int64(nv)
	sr.dec.ne = int64(ne)
	sr.numVertices = int(nv)
	sr.numEdges = int(ne)
	return sr, nil
}

// NumVertices returns the declared vertex count.
func (r *Reader) NumVertices() int { return r.numVertices }

// NumEdges returns the declared edge count.
func (r *Reader) NumEdges() int { return r.numEdges }

// Format returns the detected on-disk format.
func (r *Reader) Format() Format { return r.dec.format }

// Next decodes the next edge. It returns io.EOF after the declared edge
// count has been delivered.
func (r *Reader) Next() (graph.Edge, error) {
	if r.read >= r.numEdges {
		return graph.Edge{}, io.EOF
	}
	e, err := r.dec.next(r.read)
	if err != nil {
		return graph.Edge{}, err
	}
	r.read++
	return e, nil
}

// Read decodes a whole graph of either format.
func Read(r io.Reader) (*graph.Graph, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	// Cap the initial allocation: the declared edge count is untrusted until
	// the body actually decodes, and a forged multi-billion count must not
	// translate into a giant up-front allocation. Real counts beyond the cap
	// just grow by appending.
	capHint := sr.NumEdges()
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	edges := make([]graph.Edge, 0, capHint)
	for {
		e, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		edges = append(edges, e)
	}
	return graph.New(sr.NumVertices(), edges), nil
}

// Sniff reports whether the reader's next bytes look like either of this
// package's formats, without consuming them. The reader must support Peek
// (bufio.Reader).
func Sniff(br *bufio.Reader) bool {
	head, err := br.Peek(4)
	if err != nil {
		return false
	}
	return SniffHeader(head)
}
