package partition

import (
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// Mint reimplements the quasi-streaming game-theoretic partitioner of Hua
// et al. (TPDS 2019) from its published description: edges arrive in
// batches; within a batch, each edge is a player that best-responds by
// moving to the partition minimizing its local cost (new replicas it would
// create among batch-local co-located endpoints, plus a load term) until the
// batch reaches equilibrium, after which the batch commits and its working
// state is discarded.
//
// Crucially - and unlike Greedy/HDRF - Mint keeps no global replica table:
// its state is O(batch size), which is why the paper's Figure 6 shows it
// well below the heuristic methods. Cross-batch consistency comes from the
// hash-anchored initial strategy (the lower-id endpoint's hash), which
// lands a vertex's edges on the same starting partition in every batch.
// Quality is therefore between the hash methods and the heuristics
// (Table I: Medium/Medium). The batch tables - including the batch edge
// buffer, which is what makes Mint runnable over a source that cannot be
// random-accessed - are scratch reused across batches and across runs.
type Mint struct {
	// BatchSize is the number of edges per game (default 6400).
	BatchSize int
	// MaxRounds caps best-response rounds per batch (default 4).
	MaxRounds int
	// BalanceWeight scales the load term of the edge cost (default 1.0).
	BalanceWeight float64
	Seed          uint64

	sizes    []int64
	local    []int64
	totals   []int64
	batch    []graph.Edge
	presence u64Table
	primary  u64Table
}

// u64Table is an open-addressed uint64 -> int32 counter table with a fixed
// hash (xrand.Hash64), power-of-two capacity, linear probing and
// generation-stamped slots so clearing is O(1). It replaces Go maps in
// Mint's batch loops for two reasons: the fixed hash makes the number of
// allocations a cross-process deterministic function of the input (Go maps
// seed their hash per process, so their overflow-bucket allocations vary
// run to run, which would defeat the suite's strict allocation gate), and
// probing a flat array is faster than map access in the per-edge path.
// Entries are never removed within a generation (Mint decrements counters
// to zero but keeps the slot), so linear probing needs no tombstones.
type u64Table struct {
	keys []uint64
	vals []int32
	gen  []uint32
	cur  uint32
	mask int
	used int
}

// reset clears the table in O(1) and guarantees capacity for at least hint
// live keys without growing.
func (t *u64Table) reset(hint int) {
	want := 16
	for want*3 < hint*4 { // invert the 3/4 load-factor bound
		want *= 2
	}
	if len(t.keys) < want {
		t.keys = make([]uint64, want)
		t.vals = make([]int32, want)
		t.gen = make([]uint32, want)
		t.cur = 1
		t.mask = want - 1
		t.used = 0
		return
	}
	t.cur++
	if t.cur == 0 { // generation wrap: re-stamp everything empty
		clear(t.gen)
		t.cur = 1
	}
	t.used = 0
}

// slot returns the index of key's slot, claiming an empty one if absent
// (claimed slots start at value 0).
func (t *u64Table) slot(key uint64) int {
	i := int(xrand.Hash64(key)) & t.mask
	for {
		if t.gen[i] != t.cur {
			if t.used*4 >= len(t.keys)*3 {
				t.growRehash()
				i = int(xrand.Hash64(key)) & t.mask
				continue
			}
			t.gen[i] = t.cur
			t.keys[i] = key
			t.vals[i] = 0
			t.used++
			return i
		}
		if t.keys[i] == key {
			return i
		}
		i = (i + 1) & t.mask
	}
}

// add adjusts key's counter by delta, creating it at zero first.
func (t *u64Table) add(key uint64, delta int32) {
	t.vals[t.slot(key)] += delta
}

// get returns key's counter (0 if absent) without inserting.
func (t *u64Table) get(key uint64) int32 {
	i := int(xrand.Hash64(key)) & t.mask
	for {
		if t.gen[i] != t.cur {
			return 0
		}
		if t.keys[i] == key {
			return t.vals[i]
		}
		i = (i + 1) & t.mask
	}
}

// lookup is get with a presence flag, for tables whose values are ids
// rather than counters (0 is a valid value).
func (t *u64Table) lookup(key uint64) (int32, bool) {
	i := int(xrand.Hash64(key)) & t.mask
	for {
		if t.gen[i] != t.cur {
			return 0, false
		}
		if t.keys[i] == key {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

// put sets key's value.
func (t *u64Table) put(key uint64, v int32) {
	t.vals[t.slot(key)] = v
}

// growRehash doubles the table and reinserts the current generation.
func (t *u64Table) growRehash() {
	oldKeys, oldVals, oldGen, oldCur := t.keys, t.vals, t.gen, t.cur
	n := 2 * len(oldKeys)
	t.keys = make([]uint64, n)
	t.vals = make([]int32, n)
	t.gen = make([]uint32, n)
	t.cur = 1
	t.mask = n - 1
	t.used = 0
	for i := range oldKeys {
		if oldGen[i] == oldCur {
			j := t.slot(oldKeys[i])
			t.vals[j] = oldVals[i]
		}
	}
}

// Name implements Partitioner.
func (m *Mint) Name() string { return "Mint" }

// PreferredOrder implements Partitioner: Mint exploits stream locality, so
// BFS order (the web-crawl order) is its best setting, as in the paper.
func (m *Mint) PreferredOrder() stream.Order { return stream.BFS }

// Partition implements Partitioner.
func (m *Mint) Partition(src stream.Source, k int) ([]int32, error) {
	return partitionVia(m, src, k)
}

// PartitionInto implements IntoPartitioner. The sink is constructed in a
// concrete call chain so it stays on the stack (zero-allocation contract).
func (m *Mint) PartitionInto(src stream.Source, k int, assign []int32) error {
	if err := checkInto(src, k, assign); err != nil {
		return err
	}
	sink := assignSink{assign: assign}
	return m.run(src, k, &sink)
}

// PartitionStream implements StreamingPartitioner: batches are finalized
// units, so each commits to the sink as soon as its game equilibrates.
func (m *Mint) PartitionStream(src stream.Source, k int, emit Emit) error {
	return streamVia(m, src, k, emit)
}

func (m *Mint) run(src stream.Source, k int, sink *assignSink) error {
	batchSize := m.BatchSize
	if batchSize <= 0 {
		batchSize = 6400
	}
	maxRounds := m.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4
	}
	mu := m.BalanceWeight
	if mu == 0 {
		mu = 1.0
	}

	numEdges := src.Len()
	m.sizes = resetInt64(m.sizes, k)   // committed edges per partition
	m.local = resetInt64(m.local, k)   // current batch's edges per partition
	m.totals = resetInt64(m.totals, k) // sizes + local, the cost basis

	batchCap := batchSize
	if batchCap > numEdges {
		batchCap = numEdges
	}
	if cap(m.batch) < batchCap {
		m.batch = make([]graph.Edge, 0, batchCap)
	}
	batch := m.batch[:0]

	err := forEachBlock(src, func(blk []graph.Edge) error {
		for len(blk) > 0 {
			take := batchSize - len(batch)
			if take > len(blk) {
				take = len(blk)
			}
			batch = append(batch, blk[:take]...)
			blk = blk[take:]
			if len(batch) == batchSize {
				if err := m.playBatch(batch, sink, k, numEdges, batchCap, maxRounds, mu); err != nil {
					return err
				}
				batch = batch[:0]
			}
		}
		return nil
	})
	if err == nil && len(batch) > 0 {
		err = m.playBatch(batch, sink, k, numEdges, batchCap, maxRounds, mu)
	}
	m.batch = batch[:0]
	return err
}

// playBatch runs one batch game to (approximate) equilibrium and commits
// its assignments to the sink.
func (m *Mint) playBatch(batch []graph.Edge, sink *assignSink, k, numEdges, batchCap, maxRounds int, mu float64) error {
	out := sink.grab(len(batch))
	sizes, local, totals := m.sizes, m.local, m.totals
	kk := uint64(k)

	// presence[v<<16|p] counts batch edges incident to v currently at p.
	presence := &m.presence
	key := func(v graph.VertexID, p int32) uint64 { return uint64(v)<<16 | uint64(uint16(p)) }
	// primary[v] is the partition v's plurality of batch edges sits on -
	// approximated by the most recent strategy an incident edge adopted.
	// Both tables are batch-scoped: Mint keeps no global per-vertex state.
	primary := &m.primary

	presence.reset(2 * batchCap)
	primary.reset(2 * batchCap)
	for p := range local {
		local[p] = 0
	}

	// Initial strategies: hash of the lower-id endpoint anchors each
	// vertex's edges to a consistent home partition across batches.
	for i, e := range batch {
		anchor := e.Src
		if e.Dst < anchor {
			anchor = e.Dst
		}
		p := int32(xrand.Hash64(uint64(anchor)^m.Seed) % kk)
		out[i] = p
		presence.add(key(e.Src, p), 1)
		presence.add(key(e.Dst, p), 1)
		local[p]++
	}
	for p := range totals {
		totals[p] = sizes[p] + local[p]
	}

	avg := float64(numEdges)/float64(k) + 1
	for round := 0; round < maxRounds; round++ {
		changed := false
		// The least-loaded partition is the only attractive strategy
		// beyond those where an endpoint already has presence, so each
		// edge evaluates a constant-size candidate set instead of all k
		// (keeping Mint's per-edge cost k-independent, which is the
		// point of its design).
		light := leastLoadedAll(totals)
		for i, e := range batch {
			cur := out[i]
			// Remove this edge's own contribution so costs are marginal.
			presence.add(key(e.Src, cur), -1)
			presence.add(key(e.Dst, cur), -1)
			totals[cur]--

			best := cur
			bestCost := m.edgeCost(presence, totals, key, e, cur, mu, avg)
			au := int32(xrand.Hash64(uint64(e.Src)^m.Seed) % kk)
			av := int32(xrand.Hash64(uint64(e.Dst)^m.Seed) % kk)
			cands := [5]int32{au, av, light, -1, -1}
			if p, ok := primary.lookup(uint64(e.Src)); ok {
				cands[3] = p
			}
			if p, ok := primary.lookup(uint64(e.Dst)); ok {
				cands[4] = p
			}
			for _, p := range cands {
				if p == cur || p < 0 {
					continue
				}
				if c := m.edgeCost(presence, totals, key, e, p, mu, avg); c < bestCost-1e-12 {
					bestCost = c
					best = p
				}
			}
			if best != cur {
				out[i] = best
				changed = true
			}
			presence.add(key(e.Src, best), 1)
			presence.add(key(e.Dst, best), 1)
			totals[best]++
			primary.put(uint64(e.Src), best)
			primary.put(uint64(e.Dst), best)
		}
		if !changed {
			break
		}
	}

	// Commit: only partition sizes survive the batch.
	for _, p := range out {
		sizes[p]++
	}
	return sink.commit(batch, out)
}

// edgeCost is the player cost of edge e choosing partition p: one unit per
// endpoint that no co-batched edge has at p (a would-be replica), plus the
// normalized load of p including the batch edges already there.
func (m *Mint) edgeCost(presence *u64Table, totals []int64, key func(graph.VertexID, int32) uint64, e graph.Edge, p int32, mu, avg float64) float64 {
	var rep float64
	if presence.get(key(e.Src, p)) == 0 {
		rep++
	}
	if presence.get(key(e.Dst, p)) == 0 {
		rep++
	}
	return rep + mu*float64(totals[p])/avg
}

// StateBytes implements StateSizer: the batch edge buffer, batch assignment
// and presence map; no global per-vertex state.
func (m *Mint) StateBytes(numVertices, numEdges, k int) int64 {
	b := m.BatchSize
	if b <= 0 {
		b = 6400
	}
	if b > numEdges {
		b = numEdges
	}
	// 8 bytes per buffered batch edge + 4 per batch assignment + ~2 presence
	// entries per edge at 16 bytes per open-addressing slot
	// (key+value+generation), + k sizes.
	return int64(b)*8 + int64(b)*4 + int64(b)*2*16 + int64(k)*8
}
