package store

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzRead checks the binary decoder never panics on arbitrary input and
// that any graph it accepts is structurally valid.
func FuzzRead(f *testing.F) {
	// Seed with a valid file, a truncation and junk.
	g := graph.New(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 0}})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("CGR1"))
	f.Add([]byte("junk data here"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid graph: %v", err)
		}
	})
}
