// Package graph provides the core directed-graph types used throughout the
// CLUGP reproduction: edges, in-memory edge lists, degree bookkeeping and
// compressed sparse row (CSR) adjacency built from edge lists.
//
// Graphs are deliberately simple: a Graph is an edge list plus a vertex
// count. Everything downstream (streaming clustering, partitioning, the GAS
// engine) consumes edges as a stream, so the edge list is the natural
// canonical form. CSR views are built on demand for BFS ordering and for the
// distributed engine.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// VertexID identifies a vertex. Web graphs in the paper reach 118M vertices;
// uint32 is sufficient for this reproduction's laptop-scale stand-ins while
// halving memory traffic relative to int64.
type VertexID uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VertexID
}

// Graph is a directed multigraph stored as an edge list.
// Self-loops and parallel edges are permitted (real crawls contain both);
// algorithms that care filter them explicitly.
type Graph struct {
	// NumVertices is one greater than the largest vertex id.
	NumVertices int
	// Edges in their canonical (generation or file) order.
	Edges []Edge
}

// New returns a graph over the given edges. The vertex count is inferred
// from the largest endpoint if n <= 0.
func New(n int, edges []Edge) *Graph {
	if n <= 0 {
		for _, e := range edges {
			if int(e.Src) >= n {
				n = int(e.Src) + 1
			}
			if int(e.Dst) >= n {
				n = int(e.Dst) + 1
			}
		}
	}
	return &Graph{NumVertices: n, Edges: edges}
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Degrees returns the total (in+out) degree of every vertex.
// Vertex-cut partitioning treats the graph as its underlying undirected
// multigraph for degree purposes, matching the paper's deg[] array.
func (g *Graph) Degrees() []uint32 {
	deg := make([]uint32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Src]++
		deg[e.Dst]++
	}
	return deg
}

// OutDegrees returns the out-degree of every vertex.
func (g *Graph) OutDegrees() []uint32 {
	deg := make([]uint32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	return deg
}

// InDegrees returns the in-degree of every vertex.
func (g *Graph) InDegrees() []uint32 {
	deg := make([]uint32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Dst]++
	}
	return deg
}

// MaxDegree returns the maximum total degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() uint32 {
	var max uint32
	for _, d := range g.Degrees() {
		if d > max {
			max = d
		}
	}
	return max
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	return &Graph{NumVertices: g.NumVertices, Edges: edges}
}

// Validate checks structural invariants: every endpoint within range.
func (g *Graph) Validate() error {
	for i, e := range g.Edges {
		if int(e.Src) >= g.NumVertices || int(e.Dst) >= g.NumVertices {
			return fmt.Errorf("graph: edge %d (%d->%d) out of range (n=%d)", i, e.Src, e.Dst, g.NumVertices)
		}
	}
	return nil
}

// WriteEdgeList writes the graph as "src dst" lines, the interchange format
// accepted by the cmd/clugp tool (and by SNAP, WebGraph ASCII dumps, etc.).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	for _, e := range g.Edges {
		buf = buf[:0]
		buf = strconv.AppendUint(buf, uint64(e.Src), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(e.Dst), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses "src dst" lines. Lines starting with '#' or '%' are
// comments. Blank lines are skipped.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var edges []Edge
	n := 0
	line := 0
	for sc.Scan() {
		line++
		s := sc.Text()
		if len(s) == 0 || s[0] == '#' || s[0] == '%' {
			continue
		}
		u, v, err := parsePair(s)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		edges = append(edges, Edge{Src: VertexID(u), Dst: VertexID(v)})
		if int(u) >= n {
			n = int(u) + 1
		}
		if int(v) >= n {
			n = int(v) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &Graph{NumVertices: n, Edges: edges}, nil
}

func parsePair(s string) (uint32, uint32, error) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	j := i
	for j < len(s) && s[j] != ' ' && s[j] != '\t' && s[j] != ',' {
		j++
	}
	u, err := strconv.ParseUint(s[i:j], 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad src %q", s[i:j])
	}
	for j < len(s) && (s[j] == ' ' || s[j] == '\t' || s[j] == ',') {
		j++
	}
	k := j
	for k < len(s) && s[k] != ' ' && s[k] != '\t' {
		k++
	}
	v, err := strconv.ParseUint(s[j:k], 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad dst %q", s[j:k])
	}
	return uint32(u), uint32(v), nil
}

// DegreeHistogram returns the number of vertices at each total degree,
// as sorted (degree, count) pairs. Degree-0 vertices are included.
func (g *Graph) DegreeHistogram() (degrees []uint32, counts []int) {
	hist := make(map[uint32]int)
	for _, d := range g.Degrees() {
		hist[d]++
	}
	degrees = make([]uint32, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Slice(degrees, func(i, j int) bool { return degrees[i] < degrees[j] })
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}
