package store

import (
	"io"
	"os"
	"sync/atomic"

	"repro/internal/stream"
)

// disableMmap forces the read-at fallback; tests set it to exercise the
// portable path on platforms where mapping would succeed.
var disableMmap bool

// mapping is the shared backing of one opened file: the mapped bytes (nil
// when the platform could not map and the source runs on pread) and the
// file handle, reference-counted so the root source and every segment can
// be closed in any order. The last Close unmaps and closes the file.
type mapping struct {
	refs atomic.Int64
	data []byte
	f    *os.File
	size int64
}

func (m *mapping) retain() { m.refs.Add(1) }

func (m *mapping) release() error {
	if m.refs.Add(-1) != 0 {
		return nil
	}
	var err error
	if m.data != nil {
		err = munmapFile(m.data)
		m.data = nil
	}
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// cursor returns a fresh decode cursor over the first limit bytes of the
// mapping (the checksummed payload, or the whole file): the mapped bytes
// directly (zero-copy; every seek is a pointer rewind) or, in fallback
// mode, a private read window over the shared handle via pread.
func (m *mapping) cursor(limit int64) cursor {
	if m.data != nil {
		return mappedCursor(m.data[:limit])
	}
	return readAtCursor(m.f, limit)
}

// ReadAt serves raw file bytes from the mapping (or the shared handle in
// fallback mode) - the verification reader of checksummed files.
func (m *mapping) ReadAt(p []byte, off int64) (int, error) {
	if m.data == nil {
		return m.f.ReadAt(p, off)
	}
	if off < 0 || off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// MmapSource streams a CGR file (either format) as a stream.Source by
// mapping it once and decoding straight from the mapped bytes: no read
// syscalls on the hot path, no per-handle buffers, and the OS page cache
// serves repeat passes - Reset is a pointer rewind, so multi-pass
// algorithms (the three CLUGP passes) pay for decode, not I/O.
//
// Segment(lo, hi) shares the mapping instead of reopening the file: a
// segment costs a checkpoint lookup plus a roll-forward decode, and any
// number of segments stream concurrently from the same pages. The mapping
// is reference-counted across the root and all segments, so handles may be
// closed in any order; each must be closed exactly when its consumer is
// done.
//
// Where the platform cannot map (or disableMmap is set), the source runs
// in a portable read-at mode: same contract, same shared handle, but each
// cursor reads through a private window via pread. Mapped reports which
// mode is active.
//
// An MmapSource is not safe for concurrent use; concurrent consumers each
// take their own Segment.
type MmapSource struct {
	segCore
	m    *mapping
	root *MmapSource
}

// OpenMmap opens path (a file written by Write or WriteFormat, either
// format) as an mmap-backed source. Mapping failure is not an error: the
// source transparently falls back to read-at mode, so OpenMmap only fails
// when the file itself cannot be opened or is not a valid CGR file.
func OpenMmap(path string) (*MmapSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	m := &mapping{f: f, size: fi.Size()}
	if !disableMmap {
		if data, err := mmapFile(f, m.size); err == nil {
			m.data = data
		}
	}
	s := &MmapSource{m: m}
	m.retain()
	s.path, s.size = path, m.size
	if err := s.initIntegrity(m); err != nil {
		s.Close()
		return nil, err
	}
	pay := s.payLimit()
	s.dec.cur = m.cursor(pay)
	// Index scans decode through their own cursor over the shared mapping;
	// segments keep the mapping alive, so the scan needs no reopen.
	s.newScanCursor = func() (cursor, func(), error) {
		return m.cursor(pay), nil, nil
	}
	if err := s.initHeader(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Mapped reports whether the source decodes from a memory mapping (true)
// or through the portable read-at fallback (false).
func (s *MmapSource) Mapped() bool { return s.m.data != nil }

// Segment implements stream.Segmenter by sharing the mapping: no reopen,
// no new file handle - the segment gets its own cursor positioned via the
// shared checkpoint index plus a roll-forward decode to edge lo exactly.
// lo and hi are relative to this source, so segments nest. Close each
// segment when done; the underlying mapping lives until the last handle
// over it is closed.
func (s *MmapSource) Segment(lo, hi int) (stream.Source, error) {
	root := s.rootSource()
	seg := &MmapSource{m: s.m, root: root}
	seg.raw = s.m
	seg.dec.cur = s.m.cursor(s.payLimit())
	if err := s.segmentWindow(&root.segCore, &seg.segCore, lo, hi); err != nil {
		return nil, err
	}
	s.m.retain()
	return seg, nil
}

func (s *MmapSource) rootSource() *MmapSource {
	if s.root != nil {
		return s.root
	}
	return s
}

// Close releases this handle's reference on the shared mapping and returns
// its decode buffer to the pool, invalidating the last NextBlock's slice.
// The mapping itself (and the underlying file) is released when the last
// handle over it - root or segment - is closed. Close is idempotent per
// handle.
func (s *MmapSource) Close() error {
	if !s.markClosed() {
		return nil
	}
	return s.m.release()
}
