package bench

import (
	"bytes"
	"testing"
)

// streamSuite is the smallest streaming-enabled grid: one algorithm cell
// plus the streaming grid on one dataset.
func streamSuite() SuiteConfig {
	return SuiteConfig{
		Algorithms:     []string{"Hashing"},
		Datasets:       []string{"UK"},
		Ks:             []int{4},
		Seeds:          []uint64{42},
		Scale:          0.02,
		Streaming:      true,
		StreamDatasets: []string{"UK"},
	}
}

// TestStreamCells pins the streaming grid's invariants: one cell per
// backend x format, quality bit-identical across all of them (every
// source decodes the same edge stream), CGR2 strictly smaller than CGR1
// on a clustered web graph, and CGR3's checksum trailer costing under 1%
// of CGR2's bytes/edge.
func TestStreamCells(t *testing.T) {
	rep, err := RunSuite(streamSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StreamCells) != 6 {
		t.Fatalf("got %d stream cells, want 6 (file/mmap x CGR1/CGR2/CGR3)", len(rep.StreamCells))
	}
	seen := map[string]StreamCell{}
	bytesPerEdge := map[string]float64{}
	for _, c := range rep.StreamCells {
		seen[c.Backend+"/"+c.Format] = c
		bytesPerEdge[c.Format] = c.BytesPerEdge
		if c.ReplicationFactor != rep.StreamCells[0].ReplicationFactor {
			t.Errorf("%s: RF %v != %v", c.ID(), c.ReplicationFactor, rep.StreamCells[0].ReplicationFactor)
		}
		if c.RelativeBalance != rep.StreamCells[0].RelativeBalance {
			t.Errorf("%s: balance %v != %v", c.ID(), c.RelativeBalance, rep.StreamCells[0].RelativeBalance)
		}
		if c.BytesPerEdge <= 0 || c.DecodeNS <= 0 || c.PartitionNS <= 0 {
			t.Errorf("%s: missing measurements: %+v", c.ID(), c)
		}
	}
	for _, want := range []string{"file/CGR1", "mmap/CGR1", "file/CGR2", "mmap/CGR2", "file/CGR3", "mmap/CGR3"} {
		if _, ok := seen[want]; !ok {
			t.Errorf("missing stream cell %s", want)
		}
	}
	if bytesPerEdge["CGR2"] >= bytesPerEdge["CGR1"] {
		t.Errorf("CGR2 %.3f bytes/edge not below CGR1 %.3f", bytesPerEdge["CGR2"], bytesPerEdge["CGR1"])
	}
	// CGR3 is CGR2 plus the integrity trailer: 4 bytes per 64 KiB block
	// and a fixed footer, so the size overhead must stay under 1%.
	if bytesPerEdge["CGR3"] >= bytesPerEdge["CGR2"]*1.01 {
		t.Errorf("CGR3 %.3f bytes/edge more than 1%% above CGR2 %.3f (trailer overhead regressed)",
			bytesPerEdge["CGR3"], bytesPerEdge["CGR2"])
	}

	// The cells survive a JSON round trip.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.StreamCells) != len(rep.StreamCells) || back.StreamCells[0] != rep.StreamCells[0] {
		t.Fatal("stream cells mangled by JSON round trip")
	}
}

// TestStreamCellsDiff covers the baseline gating: identical reports are
// clean, a bytes/edge growth is a regression at exact tolerance, and a
// baseline without stream cells skips the comparison instead of flagging
// phantom changes.
func TestStreamCellsDiff(t *testing.T) {
	rep, err := RunSuite(streamSuite())
	if err != nil {
		t.Fatal(err)
	}
	clean := Diff(rep, rep, DiffOptions{})
	if clean.HasRegressions() {
		t.Fatalf("self-diff regressed: %+v", clean.Regressions)
	}
	if clean.StreamSkipped != "" {
		t.Fatalf("self-diff skipped stream cells: %s", clean.StreamSkipped)
	}

	worse := *rep
	worse.StreamCells = append([]StreamCell(nil), rep.StreamCells...)
	worse.StreamCells[0].BytesPerEdge *= 1.01
	d := Diff(rep, &worse, DiffOptions{})
	found := false
	for _, r := range d.Regressions {
		if r.Metric == "bytes_per_edge" {
			found = true
		}
	}
	if !found {
		t.Fatalf("1%% bytes/edge growth not flagged: %+v", d.Regressions)
	}

	old := *rep
	old.StreamCells = nil
	d = Diff(&old, rep, DiffOptions{})
	if d.StreamSkipped == "" {
		t.Fatal("baseline without stream cells should skip the comparison")
	}
	if d.HasRegressions() {
		t.Fatalf("skip still produced regressions: %+v", d.Regressions)
	}
}
