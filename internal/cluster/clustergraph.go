package cluster

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Arc is one weighted inter-cluster adjacency entry. W counts directed
// edges in both directions between the two clusters, i.e.
// |e(ci,cj)| + |e(cj,ci)|, which is exactly the quantity the game's
// edge-cutting cost sums over (Equation 11).
type Arc struct {
	To ID
	W  int64
}

// Graph is the cluster-level view built by re-streaming the edges once the
// vertex->cluster table is final. It is the sole input of the second pass.
type Graph struct {
	// NumClusters is the number of (compacted) clusters.
	NumClusters int
	// Intra[c] is |c|: the number of edges with both endpoints in c.
	Intra []int64
	// Adj[c] lists c's inter-cluster arcs, sorted by To.
	Adj [][]Arc
	// AdjTotal[c] is the summed arc weight of c: |e(c,V\c)| + |e(V\c,c)|.
	AdjTotal []int64
	// Weight[c] = 2*Intra[c] + AdjTotal[c] is c's share of edge endpoints:
	// an intra edge contributes 2 to its cluster, a crossing edge 1 to each
	// side, so weights sum to 2|E|. The partitioning game balances this
	// quantity because it predicts the final per-partition edge load after
	// the transformation pass (each partition receives its clusters' intra
	// edges plus roughly half of their cut edges).
	Weight []int64
	// TotalIntra is the sum of Intra.
	TotalIntra int64
	// TotalInter is the number of directed edges crossing clusters
	// (each counted once), i.e. sum over clusters of |e(ci, V\ci)|.
	TotalInter int64
}

// BuildGraph aggregates the edge stream into the cluster graph using the
// final assignments in res. res must be compacted first (every edge
// endpoint assigned, ids dense).
func BuildGraph(edges []graph.Edge, res *Result) (*Graph, error) {
	m := res.NumClusters
	cg := &Graph{
		NumClusters: m,
		Intra:       make([]int64, m),
		Adj:         make([][]Arc, m),
	}
	// Aggregate pair weights in a map keyed by the (lo,hi) cluster pair.
	// The number of distinct pairs is bounded by the edge count.
	pair := make(map[uint64]int64, 1024)
	for _, e := range edges {
		cu := res.Assign[e.Src]
		cv := res.Assign[e.Dst]
		if cu == None || cv == None {
			return nil, fmt.Errorf("cluster: edge %d->%d has unclustered endpoint", e.Src, e.Dst)
		}
		if cu == cv {
			cg.Intra[cu]++
			cg.TotalIntra++
			continue
		}
		cg.TotalInter++
		lo, hi := cu, cv
		if lo > hi {
			lo, hi = hi, lo
		}
		pair[uint64(uint32(lo))<<32|uint64(uint32(hi))]++
	}
	counts := make([]int32, m)
	for key := range pair {
		lo := ID(key >> 32)
		hi := ID(key & 0xffffffff)
		counts[lo]++
		counts[hi]++
	}
	for c := 0; c < m; c++ {
		if counts[c] > 0 {
			cg.Adj[c] = make([]Arc, 0, counts[c])
		}
	}
	for key, w := range pair {
		lo := ID(key >> 32)
		hi := ID(key & 0xffffffff)
		cg.Adj[lo] = append(cg.Adj[lo], Arc{To: hi, W: w})
		cg.Adj[hi] = append(cg.Adj[hi], Arc{To: lo, W: w})
	}
	for c := range cg.Adj {
		a := cg.Adj[c]
		sort.Slice(a, func(i, j int) bool { return a[i].To < a[j].To })
	}
	cg.AdjTotal = make([]int64, m)
	cg.Weight = make([]int64, m)
	for c := 0; c < m; c++ {
		var t int64
		for _, a := range cg.Adj[c] {
			t += a.W
		}
		cg.AdjTotal[c] = t
		cg.Weight[c] = 2*cg.Intra[c] + t
	}
	return cg, nil
}

// ArcWeight returns the symmetric inter-cluster weight between a and b
// (0 if not adjacent), by binary search over a's sorted arcs.
func (g *Graph) ArcWeight(a, b ID) int64 {
	arcs := g.Adj[a]
	i := sort.Search(len(arcs), func(i int) bool { return arcs[i].To >= b })
	if i < len(arcs) && arcs[i].To == b {
		return arcs[i].W
	}
	return 0
}

// TotalAdjacency returns the sum of c's arc weights: |e(c,V\c)|+|e(V\c,c)|.
func (g *Graph) TotalAdjacency(c ID) int64 {
	if g.AdjTotal != nil {
		return g.AdjTotal[c]
	}
	var t int64
	for _, a := range g.Adj[c] {
		t += a.W
	}
	return t
}

// TotalWeight returns the sum of cluster weights, 2*TotalIntra+2*TotalInter
// = 2|E|.
func (g *Graph) TotalWeight() int64 {
	return 2*g.TotalIntra + 2*g.TotalInter
}

// WeightOf returns Weight[c], computing it on the fly for hand-built graphs
// that did not pass through BuildGraph.
func (g *Graph) WeightOf(c ID) int64 {
	if g.Weight != nil {
		return g.Weight[c]
	}
	return 2*g.Intra[c] + g.TotalAdjacency(c)
}
