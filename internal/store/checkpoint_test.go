package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testCheckpoint builds a representative snapshot: several sections of
// mixed sizes, one empty, non-zero marks.
func testCheckpoint() *Checkpoint {
	c := &Checkpoint{
		Algorithm:   "HDRF",
		K:           8,
		NumVertices: 1000,
		NumEdges:    50000,
		Offset:      16384,
		Batch:       2,
		EmitMark:    98304,
	}
	c.AddSection("hdrf.replicas", bytes.Repeat([]byte{0x01, 0x80, 0x02}, 40))
	c.AddSection("hdrf.sizes", []byte{10, 20, 30, 40, 50, 60, 70, 80})
	c.AddSection("eval.state", nil)
	return c
}

// TestCheckpointRoundTrip: encode -> decode reproduces every field and
// section, and re-encoding the decoded checkpoint is a bit-identical fixed
// point (the canonical-encoding contract FuzzReadCheckpoint generalizes).
func TestCheckpointRoundTrip(t *testing.T) {
	c := testCheckpoint()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, c)
	}
	var again bytes.Buffer
	if err := WriteCheckpoint(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), buf.Bytes()) {
		t.Fatal("re-encoding a decoded checkpoint changed the bytes")
	}
}

// TestCheckpointDetectsCorruption: a checkpoint file exists to be read
// after a crash, exactly when torn and corrupt writes are likeliest - so a
// flipped bit anywhere, or a truncated tail, must reject at read time.
func TestCheckpointDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for off := 0; off < len(valid); off += 7 {
		forged := bytes.Clone(valid)
		forged[off] ^= 0x10
		if _, err := ReadCheckpoint(bytes.NewReader(forged)); err == nil {
			t.Fatalf("flip at byte %d decoded without error", off)
		}
	}
	for _, cut := range []int{0, 3, 4, len(valid) / 2, len(valid) - 1} {
		if _, err := ReadCheckpoint(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
}

// TestCheckpointValidates: inconsistent snapshots are rejected before they
// reach disk - the write side enforces what the read side would refuse.
func TestCheckpointValidates(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Checkpoint)
	}{
		{"k zero", func(c *Checkpoint) { c.K = 0 }},
		{"offset past edges", func(c *Checkpoint) { c.Offset = c.NumEdges + 1 }},
		{"negative emit mark", func(c *Checkpoint) { c.EmitMark = -1 }},
		{"empty section name", func(c *Checkpoint) { c.AddSection("", nil) }},
		{"too many sections", func(c *Checkpoint) {
			for i := 0; i <= maxCheckpointSections; i++ {
				c.AddSection("s", nil)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testCheckpoint()
			tc.mutate(c)
			if err := WriteCheckpoint(&bytes.Buffer{}, c); err == nil {
				t.Fatal("invalid checkpoint encoded without error")
			}
		})
	}
}

// TestCheckpointFileRotation: WriteCheckpointFile keeps a two-generation
// pair - the new file commits atomically, the old one rotates to .prev -
// and LoadCheckpoint always returns the newest generation that proves out:
// the current file, the .prev fallback when the current is corrupt or
// missing, or an error when neither survives.
func TestCheckpointFileRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.cpk")
	prev := path + CheckpointPrevSuffix

	c1 := testCheckpoint()
	c1.Offset = 8192
	if _, err := WriteCheckpointFile(path, c1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(prev); !os.IsNotExist(err) {
		t.Fatalf("first write created a .prev (stat err %v)", err)
	}

	c2 := testCheckpoint()
	c2.Offset = 16384
	n, err := WriteCheckpointFile(path, c2)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != n {
		t.Fatalf("reported %d bytes, file is %v (err %v)", n, fi, err)
	}
	got, from, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if from != path || got.Offset != 16384 {
		t.Fatalf("loaded offset %d from %s, want 16384 from %s", got.Offset, from, path)
	}
	if pg, err := ReadCheckpointFile(prev); err != nil || pg.Offset != 8192 {
		t.Fatalf("rotated generation: offset %d, err %v", pg.Offset, err)
	}

	// Corrupt the current file: the pair still resumes, one generation back.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, from, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if from != prev || got.Offset != 8192 {
		t.Fatalf("fallback loaded offset %d from %s, want 8192 from %s", got.Offset, from, prev)
	}

	// The crash window between rotate and commit leaves only .prev.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, from, err = LoadCheckpoint(path); err != nil || from != prev {
		t.Fatalf("missing current: loaded from %s, err %v", from, err)
	}

	// Both generations gone bad: an error, never a fabricated resume.
	if err := os.Remove(prev); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("LoadCheckpoint invented a checkpoint from nothing")
	} else if !strings.Contains(err.Error(), "no usable checkpoint") {
		t.Fatalf("error %q does not explain the missing pair", err)
	}
}

// FuzzReadCheckpoint drives the CPK1 decoder: it must never panic, must
// reject forged headers, truncated bodies, oversized section tables and
// checksum forgeries, and anything it accepts must re-encode to a canonical
// file whose decode is a fixed point.
func FuzzReadCheckpoint(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, testCheckpoint()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	// Checksum forgeries: header flip, payload flip, trailer flip.
	for _, off := range []int{5, len(valid) / 2, len(valid) - 2} {
		forged := bytes.Clone(valid)
		forged[off] ^= 1
		f.Add(forged)
	}
	// A minimal checkpoint with no sections.
	min := &Checkpoint{Algorithm: "X", K: 1, NumVertices: 1, NumEdges: 1}
	buf.Reset()
	if err := WriteCheckpoint(&buf, min); err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(buf.Bytes()))
	f.Add([]byte("CPK1"))
	f.Add(append([]byte("CPK1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))
	f.Add([]byte("CGR3 pretending"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc bytes.Buffer
		if err := WriteCheckpoint(&enc, c); err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		again, err := ReadCheckpoint(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v", err)
		}
		if !reflect.DeepEqual(again, c) {
			t.Fatalf("canonical round trip changed the checkpoint:\n got %+v\nwant %+v", again, c)
		}
	})
}
