// Compare all six partitioners across partition counts on one graph - a
// one-dataset slice of the paper's Figure 3/7 sweep, printing replication
// factor, balance and runtime side by side.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	g := repro.GenerateWeb(repro.WebConfig{N: 30000, OutDegree: 10, IntraSite: 0.88, Seed: 11})
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices, g.NumEdges())

	for _, k := range []int{8, 32, 128} {
		fmt.Printf("k = %d\n", k)
		fmt.Printf("  %-8s  %8s  %8s  %10s\n", "algo", "RF", "balance", "runtime")
		for _, p := range repro.Suite(11) {
			res, err := repro.RunPartitioner(p, g, k, 11)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s  %8.3f  %8.3f  %10v\n",
				p.Name(), res.Quality.ReplicationFactor,
				res.Quality.RelativeBalance, res.Runtime.Round(time.Millisecond))
		}
		fmt.Println()
	}
}
