package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReloadGeometryGuard: a reload whose snapshot changes nv or k is
// rejected, counted as a failure, and leaves the serving snapshot - and
// every in-flight answer - on the last good epoch.
func TestReloadGeometryGuard(t *testing.T) {
	srv := NewServer(handSnapshot(t, 10, 3, "good"))
	for _, bad := range []*Snapshot{
		handSnapshot(t, 20, 3, "more-vertices"),
		handSnapshot(t, 10, 5, "more-partitions"),
	} {
		srv.SetLoader(func() (*Snapshot, error) { return bad, nil })
		if _, err := srv.Reload(); err == nil {
			t.Fatalf("reload accepted geometry change to %s", bad.Algorithm())
		}
	}
	if got := srv.Current().Algorithm(); got != "good" {
		t.Fatalf("serving %q after rejected reloads, want the original", got)
	}
	if srv.ReloadFailures() != 2 {
		t.Fatalf("failures = %d, want 2", srv.ReloadFailures())
	}
	if srv.LastReloadError() == "" {
		t.Fatal("geometry rejection left no error message")
	}
	// A same-geometry reload clears the streak.
	srv.SetLoader(func() (*Snapshot, error) { return handSnapshot(t, 10, 3, "fresh"), nil })
	if _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	if srv.ReloadFailures() != 0 || srv.LastReloadError() != "" {
		t.Fatalf("success did not clear failure state: %d, %q",
			srv.ReloadFailures(), srv.LastReloadError())
	}
}

// TestReadyzDegrades: /v1/healthz stays 200 through any number of reload
// failures (the process is alive and answering), while /v1/readyz flips to
// 503 once the consecutive-failure streak reaches the threshold and flips
// back on the first success. /v1/stats carries the same health fields.
func TestReadyzDegrades(t *testing.T) {
	srv := NewServer(handSnapshot(t, 10, 3, "A"))
	srv.AutoRetry(RetryPolicy{MaxFailures: 2}) // Base 0: no goroutine, threshold only
	srv.SetLoader(func() (*Snapshot, error) { return nil, fmt.Errorf("disk on fire") })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, _ := status("/v1/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before any failure = %d", code)
	}
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/reload", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failing reload = %d, want 500", resp.StatusCode)
		}
		wantReady := i < 1 // threshold 2: degraded at the second failure
		code, body := status("/v1/readyz")
		if ready := code == http.StatusOK; ready != wantReady {
			t.Fatalf("after %d failures readyz = %d (%s), want ready=%v", i+1, code, body, wantReady)
		}
		if code, _ := status("/v1/healthz"); code != http.StatusOK {
			t.Fatalf("healthz degraded with readiness: %d", code)
		}
		if code, _ := status("/healthz"); code != http.StatusOK {
			t.Fatalf("legacy healthz degraded: %d", code)
		}
	}

	_, body := status("/v1/stats")
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ready || st.ReloadFailures != 2 || st.LastReloadError == "" {
		t.Fatalf("degraded stats = %+v", st)
	}
	// Queries still answer from the last good epoch while degraded.
	m := getJSON(t, ts, "/v1/vertex/4", http.StatusOK)
	if m["epoch"].(float64) != 1 || int(m["partition"].(float64)) != 4%3 {
		t.Fatalf("degraded query = %v, want last-good epoch 1", m)
	}

	srv.SetLoader(func() (*Snapshot, error) { return handSnapshot(t, 10, 3, "B"), nil })
	if _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	if code, body := status("/v1/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d (%s)", code, body)
	}
}

// TestAutoRetryRecovers: after a failed reload the retry goroutine keeps
// trying on its backoff schedule, without any further external kick, until
// the loader heals - then the new epoch serves and readiness returns.
func TestAutoRetryRecovers(t *testing.T) {
	srv := NewServer(handSnapshot(t, 10, 3, "A"))
	var calls atomic.Int64
	healAfter := int64(3)
	srv.SetLoader(func() (*Snapshot, error) {
		if calls.Add(1) <= healAfter {
			return nil, fmt.Errorf("still broken")
		}
		return handSnapshot(t, 10, 3, "healed"), nil
	})
	stop := srv.AutoRetry(RetryPolicy{Base: time.Millisecond, Cap: 4 * time.Millisecond, Jitter: 0.5, MaxFailures: 2})
	defer stop()

	if _, err := srv.Reload(); err == nil {
		t.Fatal("first reload should fail")
	}
	deadline := time.After(5 * time.Second)
	for srv.Current().Algorithm() != "healed" {
		select {
		case <-deadline:
			t.Fatalf("auto-retry never recovered (loader calls: %d, failures: %d, last: %s)",
				calls.Load(), srv.ReloadFailures(), srv.LastReloadError())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if !srv.Ready() || srv.ReloadFailures() != 0 {
		t.Fatalf("recovered but not ready: failures=%d", srv.ReloadFailures())
	}
	if calls.Load() != healAfter+1 {
		t.Fatalf("loader called %d times, want %d (1 explicit + %d retries)",
			calls.Load(), healAfter+1, healAfter)
	}
	// Healed and disarmed: no further loader calls while healthy.
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != healAfter+1 {
		t.Fatalf("retry loop kept reloading after success (%d calls)", calls.Load())
	}
}

// TestDegradedHotReload is the -race harness for degraded operation: client
// goroutines hammer queries while reloads alternate between succeeding
// (same geometry, refreshed epoch) and failing (loader error or geometry
// mismatch). Every answer must come from a fully consistent installed
// epoch, failures must never tear or replace the serving tables, and the
// readiness endpoints must stay responsive throughout.
func TestDegradedHotReload(t *testing.T) {
	const (
		numVertices = 48
		clients     = 6
		queriesEach = 200
		reloads     = 60
	)
	srv := NewServer(handSnapshot(t, numVertices, 3, "good"))
	good := handSnapshot(t, numVertices, 3, "good")
	bad := handSnapshot(t, numVertices, 7, "bad-geometry")
	var flip atomic.Int64
	srv.SetLoader(func() (*Snapshot, error) {
		switch flip.Add(1) % 3 {
		case 0:
			return nil, fmt.Errorf("transient loader failure")
		case 1:
			return bad, nil // rejected by the geometry guard
		default:
			return good, nil
		}
	})
	stop := srv.AutoRetry(RetryPolicy{Base: time.Millisecond, Cap: 2 * time.Millisecond, MaxFailures: 3})
	defer stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errc := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < queriesEach; q++ {
				v := (c*queriesEach + q) % numVertices
				resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/vertex/%d", ts.URL, v))
				if err != nil {
					errc <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("query %d: status %d, err %v", q, resp.StatusCode, err)
					return
				}
				var m struct {
					Vertex    int `json:"vertex"`
					Partition int `json:"partition"`
				}
				if err := json.Unmarshal(body, &m); err != nil {
					errc <- fmt.Errorf("query %d: bad JSON %q: %v", q, body, err)
					return
				}
				// Every installed snapshot has k=3 (the k=7 one is always
				// rejected), so the answer is v%3 at every epoch: a v%7
				// answer would mean the guard let the wrong tables serve.
				if m.Vertex != v || m.Partition != v%3 {
					errc <- fmt.Errorf("vertex %d answered partition %d, want %d", v, m.Partition, v%3)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < reloads; r++ {
			resp, err := ts.Client().Post(ts.URL+"/v1/reload", "", nil)
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// Readiness probes interleave with the reload storm.
			probe, err := ts.Client().Get(ts.URL + "/v1/readyz")
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, probe.Body)
			probe.Body.Close()
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := srv.Current().K(); got != 3 {
		t.Fatalf("serving k=%d after the storm, want 3 (geometry guard held)", got)
	}
}
