package partition

import (
	"fmt"

	"repro/internal/store"
	"repro/internal/stream"
)

// Checkpointer is the seam a streaming partitioner implements to take part
// in checkpoint/resume. SnapshotState is called at a batch boundary, after
// the partitioner has committed every edge in [0, Offset) and none after:
// it must append sections to c capturing everything the algorithm needs to
// continue from that exact edge. RestoreState is called on a fresh
// partitioner value before PartitionStream; it must stash the sections and
// apply them when the run initializes its tables, so that the resumed run
// is bit-identical to an uninterrupted one.
//
// The state encodings are canonical (vertex-major, config-independent; see
// metrics/state.go), so a checkpoint written at one worker configuration
// restores under another.
type Checkpointer interface {
	SnapshotState(c *store.Checkpoint) error
	RestoreState(c *store.Checkpoint) error
}

// CheckpointOptions configures checkpointing of an out-of-core run.
type CheckpointOptions struct {
	// Path is where checkpoints are written (store CPK1 format, via
	// AtomicWriter; the previous checkpoint rotates to Path+".prev").
	// Empty disables writing - set only Resume to restore without
	// checkpointing the resumed run.
	Path string
	// EveryEdges is the checkpoint cadence in edges. Zero or negative
	// selects a default of roughly 1/16 of the stream. Cadence is a floor:
	// checkpoints fire at the first aligned batch boundary at or after
	// each multiple.
	EveryEdges int
	// Resume, when non-nil, restores the run from a previously written
	// checkpoint (store.LoadCheckpoint validates its integrity). The
	// partitioner, k, and source geometry must match the checkpoint.
	Resume *store.Checkpoint
	// EmitMark, when non-nil, is called while writing each checkpoint,
	// after every assignment in [0, Offset) has been emitted and none
	// after. It must make those assignments durable (flush + sync) and
	// return the emit-stream watermark - the byte offset a resume
	// truncates the assignment stream to before continuing.
	EmitMark func() (int64, error)
}

// CheckpointStats reports checkpoint activity of a run (Result.Pipeline).
type CheckpointStats struct {
	// Enabled reports whether checkpoints were written during the run.
	Enabled bool
	// EveryEdges is the resolved cadence in edges.
	EveryEdges int64
	// Written counts checkpoints written.
	Written int
	// Bytes is the total bytes of all checkpoints written.
	Bytes int64
	// LastOffset is the stream offset of the last checkpoint written.
	LastOffset int64
	// Resumed reports whether the run restored from a checkpoint.
	Resumed bool
	// ResumeOffset is the stream offset the run resumed from.
	ResumeOffset int64
}

func (s CheckpointStats) String() string {
	if !s.Enabled && !s.Resumed {
		return "off"
	}
	out := ""
	if s.Resumed {
		out = fmt.Sprintf("resumed@%d", s.ResumeOffset)
	}
	if s.Enabled {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("every=%d written=%d bytes=%d last@%d",
			s.EveryEdges, s.Written, s.Bytes, s.LastOffset)
	}
	return out
}

// Checkpoint section names shared between the runner and the partitioners.
const (
	sectionEval = "eval.state"

	sectionHDRFReplicas = "hdrf.replicas"
	sectionHDRFDegrees  = "hdrf.degrees"
	sectionHDRFSizes    = "hdrf.sizes"

	sectionGreedyReplicas = "greedy.replicas"
	sectionGreedySizes    = "greedy.sizes"

	sectionCLUGPAssign    = "clugp.assign"
	sectionCLUGPSplitFrom = "clugp.splitfrom"
	sectionCLUGPDegree    = "clugp.degree"
	sectionCLUGPCPart     = "clugp.cpart"
	sectionCLUGPSizes     = "clugp.sizes"
	sectionCLUGPScalars   = "clugp.scalars"
)

// loadSection fetches a named section or reports its absence - a checkpoint
// missing an algorithm section was written by a different (or older) run
// shape and cannot restore this one.
func loadSection(c *store.Checkpoint, name string) ([]byte, error) {
	data, ok := c.Section(name)
	if !ok {
		return nil, fmt.Errorf("partition: checkpoint has no %q section", name)
	}
	return data, nil
}

// consumed rejects trailing bytes after a fully-loaded state section.
func consumed(rem []byte, what string) error {
	if len(rem) != 0 {
		return fmt.Errorf("partition: %d trailing bytes after %s state", len(rem), what)
	}
	return nil
}

// resolveCadence turns the requested cadence into the effective one: at
// least one block, defaulting to ~1/16 of the stream so a run of any size
// writes a bounded number of checkpoints.
func resolveCadence(every int, total int64) int64 {
	e := int64(every)
	if e <= 0 {
		e = (total + 15) / 16
	}
	if e < int64(stream.BlockLen) {
		e = int64(stream.BlockLen)
	}
	return e
}

// validateResume rejects a checkpoint that does not describe this exact
// run: wrong algorithm, partition count or graph geometry would restore
// state that silently corrupts the assignment, so each is a hard error.
func validateResume(p Partitioner, src stream.Source, k int, c *store.Checkpoint) error {
	if c.Algorithm != p.Name() {
		return fmt.Errorf("partition: checkpoint is for algorithm %q, not %q", c.Algorithm, p.Name())
	}
	if c.K != k {
		return fmt.Errorf("partition: checkpoint has k=%d, run has k=%d", c.K, k)
	}
	if c.NumVertices != src.NumVertices() {
		return fmt.Errorf("partition: checkpoint has %d vertices, source has %d", c.NumVertices, src.NumVertices())
	}
	if c.NumEdges != int64(src.Len()) {
		return fmt.Errorf("partition: checkpoint has %d edges, source has %d", c.NumEdges, src.Len())
	}
	if c.Offset < 0 || c.Offset > c.NumEdges {
		return fmt.Errorf("partition: checkpoint offset %d outside [0, %d]", c.Offset, c.NumEdges)
	}
	if c.Offset%int64(stream.BlockLen) != 0 && c.Offset != c.NumEdges {
		return fmt.Errorf("partition: checkpoint offset %d is not a multiple of the block length %d", c.Offset, stream.BlockLen)
	}
	return nil
}

// evalStater is the restore seam both evaluator types implement.
type evalStater interface {
	AppendState(buf []byte) []byte
	LoadState(data []byte) error
}

// writeRunCheckpoint snapshots the run at the current watermark and writes
// it (atomically, rotating the previous checkpoint to .prev). Called from
// the emit path right after the watermark's last batch was emitted, so the
// EmitMark callback sees exactly the assignments in [0, offset).
func writeRunCheckpoint(p Partitioner, cp Checkpointer, opts *CheckpointOptions, ev evalStater, k, nv int, total, offset int64, stats *CheckpointStats) error {
	c := &store.Checkpoint{
		Algorithm:   p.Name(),
		K:           k,
		NumVertices: nv,
		NumEdges:    total,
		Offset:      offset,
		Batch:       offset / int64(stream.BlockLen),
	}
	if opts.EmitMark != nil {
		mark, err := opts.EmitMark()
		if err != nil {
			return fmt.Errorf("emit watermark: %w", err)
		}
		c.EmitMark = mark
	}
	if err := cp.SnapshotState(c); err != nil {
		return err
	}
	c.AddSection(sectionEval, ev.AppendState(nil))
	n, err := store.WriteCheckpointFile(opts.Path, c)
	if err != nil {
		return err
	}
	stats.Written++
	stats.Bytes += n
	stats.LastOffset = offset
	return nil
}
