package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
)

// The Source behavior shared by every backend x format combination -
// streaming, replay, segments and their edge cases, concurrency, truncation
// - lives in conformance_test.go and runs against FileSource, MmapSource
// and the read-at fallback uniformly. This file keeps only what is specific
// to the seek-based constructor.

// writeTemp writes g to a temp .cgr file (CGR1) and returns its path.
func writeTemp(t *testing.T, g *graph.Graph) string {
	t.Helper()
	return writeTempFormat(t, g, FormatCGR1)
}

func collect(t *testing.T, src stream.Source) []graph.Edge {
	t.Helper()
	out, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestOpenRejectsJunk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a graph at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestFileSourceClosedHandle: a closed FileSource fails cleanly and Close
// is idempotent (the decode buffer returns to the pool exactly once).
func TestFileSourceClosedHandle(t *testing.T) {
	g := graph.New(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	src, err := Open(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Collect(src); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Reset(); err == nil {
		t.Fatal("Reset on closed source succeeded")
	}
}
