package bench

import (
	"strings"
	"testing"

	"repro/internal/stream"
)

// checkpointSuite is the smallest grid whose streamed dataset clears the
// checkpoint floor (>= 3 blocks), so both checkpoint cells actually write
// and exercise the kill+resume gate.
func checkpointSuite() SuiteConfig {
	return SuiteConfig{
		Scale:          0.15,
		Seeds:          []uint64{42},
		StreamDatasets: []string{"UK"},
	}
}

// TestCheckpointCells runs the checkpoint grid directly: one cell per
// algorithm, each having passed its measurement-time gates (equal quality,
// bit-identical assignments, kill+resume round trip), with the overhead
// bookkeeping filled in.
func TestCheckpointCells(t *testing.T) {
	cells, err := runCheckpointCells(checkpointSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(checkpointAlgos) {
		t.Fatalf("got %d cells, want %d (one per algorithm)", len(cells), len(checkpointAlgos))
	}
	for i, c := range cells {
		if c.Algorithm != checkpointAlgos[i] {
			t.Fatalf("cell %d is %s, want %s", i, c.Algorithm, checkpointAlgos[i])
		}
		if c.Written == 0 || c.CheckpointBytes == 0 {
			t.Fatalf("%s: wrote %d checkpoints, %d bytes - the cell measured nothing", c.ID(), c.Written, c.CheckpointBytes)
		}
		if c.EveryEdges < int64(stream.BlockLen) {
			t.Fatalf("%s: cadence %d below a block", c.ID(), c.EveryEdges)
		}
		if c.BaselineNS <= 0 || c.CheckpointNS <= 0 {
			t.Fatalf("%s: runtimes %d/%d not measured", c.ID(), c.BaselineNS, c.CheckpointNS)
		}
		if c.ReplicationFactor < 1 {
			t.Fatalf("%s: replication factor %v", c.ID(), c.ReplicationFactor)
		}
		if !strings.Contains(c.ID(), c.Dataset) || !strings.Contains(c.ID(), c.Algorithm) {
			t.Fatalf("ID %q does not name the cell's coordinates", c.ID())
		}
	}
}

// TestCheckpointCellsSkipSmall: below the block floor the grid skips the
// dataset instead of failing the whole suite - the regime every small-scale
// streaming test runs in.
func TestCheckpointCellsSkipSmall(t *testing.T) {
	cfg := checkpointSuite()
	cfg.Scale = 0.02
	cells, err := runCheckpointCells(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("got %d cells from a sub-block dataset, want 0", len(cells))
	}
}

// TestCheckpointCellsDiff pins the baseline comparison: identical reports
// match, a quality drift past tolerance fails, and runtime-only drift obeys
// the runtime tolerance gates.
func TestCheckpointCellsDiff(t *testing.T) {
	cell := CheckpointCell{
		Dataset: "UK", Algorithm: "HDRF", K: streamK, Seed: 42,
		Vertices: 4500, Edges: 36000, EveryEdges: 8192,
		BaselineNS: 100e6, CheckpointNS: 105e6, OverheadPct: 5,
		Written: 3, CheckpointBytes: 30000,
		ReplicationFactor: 1.8, RelativeBalance: 1.02,
	}
	base := &Report{Experiment: "suite", Scale: 1, CheckpointCells: []CheckpointCell{cell}}

	same := *base
	d := Diff(base, &same, DiffOptions{})
	if len(d.Regressions) != 0 || d.Matched == 0 {
		t.Fatalf("identical reports diffed: %+v", d)
	}

	worse := cell
	worse.ReplicationFactor = 2.4
	d = Diff(base, &Report{Experiment: "suite", Scale: 1, CheckpointCells: []CheckpointCell{worse}}, DiffOptions{})
	if len(d.Regressions) == 0 {
		t.Fatal("replication-factor regression not flagged")
	}

	slower := cell
	slower.CheckpointNS = 300e6
	d = Diff(base, &Report{Experiment: "suite", Scale: 1, CheckpointCells: []CheckpointCell{slower}},
		DiffOptions{RuntimeTolerance: 0.5, RuntimeFloorNS: 1e6})
	if len(d.Regressions) == 0 {
		t.Fatal("checkpoint-runtime regression not flagged")
	}

	empty := Diff(base, &Report{Experiment: "suite", Scale: 1}, DiffOptions{})
	if empty.CheckpointSkipped == "" {
		t.Fatal("missing checkpoint cells not noted")
	}
}

// TestCheckpointTable: a report with checkpoint cells renders them as a
// table.
func TestCheckpointTable(t *testing.T) {
	rep := &Report{Experiment: "suite", Scale: 1, CheckpointCells: []CheckpointCell{{
		Dataset: "UK", Algorithm: "HDRF", K: streamK, Seed: 42,
		BaselineNS: 100e6, CheckpointNS: 105e6, OverheadPct: 5,
		Written: 3, CheckpointBytes: 30000, ReplicationFactor: 1.8,
	}}}
	var found bool
	for _, tb := range rep.Table() {
		if strings.Contains(tb.ID, "checkpoint") {
			found = true
			if len(tb.Rows) != 1 {
				t.Fatalf("checkpoint table has %d rows, want 1", len(tb.Rows))
			}
		}
	}
	if !found {
		t.Fatal("no checkpoint table rendered")
	}
}
