package partition

import (
	"errors"
	"os"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/stream"
)

// faultTestGraph is large enough that its CGR3 payload spans several
// checksum blocks and a transient plan has room to land mid-pass.
func faultTestGraph() *graph.Graph {
	return gen.Web(gen.WebConfig{N: 30000, OutDegree: 5, IntraSite: 0.7, Seed: 17})
}

// collectAssignments runs p out-of-core over src and returns the full
// assignment stream plus the result.
func collectAssignments(t *testing.T, p Partitioner, src stream.Source, k int, opts OutOfCoreOptions) ([]int32, *Result) {
	t.Helper()
	var assign []int32
	res, err := RunOutOfCoreOpts(p, src, k, func(edges []graph.Edge, a []int32) error {
		assign = append(assign, a...)
		return nil
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return assign, res
}

// openFaulty opens path through an injector, retrying the open itself when a
// transient fault hits it (the injector persists across attempts, like a
// real disk, so open-time transients heal).
func openFaulty(t *testing.T, path string, plan []faultfs.Fault) (*store.ReaderAtSource, *faultfs.Injector, func()) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	inj := faultfs.Wrap(f, plan...)
	for attempt := 0; ; attempt++ {
		src, err := store.OpenReaderAt(inj, fi.Size(), path)
		if err == nil {
			return src, inj, func() { src.Close(); f.Close() }
		}
		if !errors.Is(err, faultfs.ErrInjected) || attempt > len(plan) {
			f.Close()
			t.Fatal(err)
		}
	}
}

var retryInjected = stream.RetryConfig{
	MaxAttempts: 12,
	Retryable:   func(err error) bool { return errors.Is(err, faultfs.ErrInjected) },
}

// TestPartitionBitIdenticalUnderTransientFaults is the fault-injection
// bit-equivalence matrix: partitioning a CGR3 file from a disk that throws
// seeded transient errors - survived via stream.Retry - produces exactly the
// assignments and quality of the clean in-memory run, for every registered
// algorithm, serially and with parallel workers.
func TestPartitionBitIdenticalUnderTransientFaults(t *testing.T) {
	g := faultTestGraph()
	path := writeCGRFormat(t, g, store.FormatCGR3)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	for _, name := range Names() {
		p, err := New(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		ref, refRes := collectAssignments(t, p, stream.Of(g.Edges).Source(g.NumVertices), k, OutOfCoreOptions{})

		for _, workers := range []int{1, 4} {
			plan := faultfs.TransientPlan(uint64(1000+workers), fi.Size(), 6)
			src, inj, done := openFaulty(t, path, plan)
			got, gotRes := collectAssignments(t, p, stream.Retry(src, retryInjected), k, OutOfCoreOptions{Workers: workers})
			done()

			if len(got) != len(ref) {
				t.Fatalf("%s workers=%d: %d assignments, want %d", name, workers, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("%s workers=%d: assignment %d = %d, want %d", name, workers, i, got[i], ref[i])
				}
			}
			if gotRes.Quality.ReplicationFactor != refRes.Quality.ReplicationFactor ||
				gotRes.Quality.RelativeBalance != refRes.Quality.RelativeBalance {
				t.Fatalf("%s workers=%d: quality %+v, want %+v", name, workers, gotRes.Quality, refRes.Quality)
			}
			if st := inj.Stats(); st.TransientErrors == 0 {
				t.Fatalf("%s workers=%d: no transient fired (stats %+v); the run proved nothing", name, workers, st)
			}
		}
	}
}

// TestPartitionPersistentCorruptionFails: a partitioning run over a CGR3
// file with a flipped bit or a torn tail errors on every backend - it never
// completes with silently wrong assignments, and retrying transients does
// not launder the corruption into success.
func TestPartitionPersistentCorruptionFails(t *testing.T) {
	g := faultTestGraph()
	path := writeCGRFormat(t, g, store.FormatCGR3)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New("CLUGP", 3)
	if err != nil {
		t.Fatal(err)
	}

	run := func(src stream.Source) error {
		_, err := RunOutOfCore(p, stream.Retry(src, retryInjected), 4, nil)
		return err
	}

	corrupt := make([]byte, len(clean))
	copy(corrupt, clean)
	corrupt[len(clean)/2] ^= 0x04
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, open := range []struct {
		name string
		fn   func(string) (store.File, error)
	}{
		{"file", func(p string) (store.File, error) { return store.Open(p) }},
		{"mmap", func(p string) (store.File, error) { return store.OpenMmap(p) }},
	} {
		src, err := open.fn(path)
		if err != nil {
			continue // rejected at open: detected
		}
		if err := run(src); err == nil {
			t.Errorf("%s: bit-flipped file partitioned without error", open.name)
		}
		src.Close()
	}

	// Torn write, injected beneath an otherwise clean file.
	if err := os.WriteFile(path, clean, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := faultfs.Open(path, faultfs.Fault{Kind: faultfs.Truncate, Off: int64(len(clean)) * 2 / 3})
	if err == nil {
		if err := run(src); err == nil {
			t.Error("truncated file partitioned without error")
		}
		src.Close()
	}
}
