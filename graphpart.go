// Package repro is a from-scratch Go reproduction of "Clustering-based
// Partitioning for Large Web Graphs" (Kong, Xie, Zhang - ICDE 2022): the
// CLUGP three-pass restreaming vertex-cut graph partitioner, the five
// streaming baselines it is evaluated against (Hashing, DBH, Greedy, HDRF,
// Mint), deterministic web-graph generators standing in for the paper's
// crawls, the partition-quality metrics, and a simulated PowerGraph-style
// distributed GAS engine for end-to-end PageRank / connected-components /
// SSSP experiments.
//
// This file is the public facade: everything a downstream user needs is
// re-exported here, so examples and tools import only this package.
//
// Quickstart:
//
//	g := repro.GenerateWeb(repro.WebConfig{N: 100000, OutDegree: 8, Seed: 1})
//	res, err := repro.Partition(g, "CLUGP", 32, 1)
//	fmt.Println(res.Quality.ReplicationFactor)
package repro

import (
	"io"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgecut"
	"repro/internal/engine"
	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/stream"
)

// Graph types.
type (
	// Graph is a directed multigraph stored as an edge list.
	Graph = graph.Graph
	// Edge is a directed edge.
	Edge = graph.Edge
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// CSR is a compressed sparse row adjacency view.
	CSR = graph.CSR
	// GraphStats summarises degree structure (power-law fit etc.).
	GraphStats = graph.Stats
)

// NewGraph builds a graph from edges; n <= 0 infers the vertex count.
func NewGraph(n int, edges []Edge) *Graph { return graph.New(n, edges) }

// ReadEdgeList parses "src dst" lines (comments with '#' or '%').
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// CompressedFormat identifies an on-disk graph encoding.
type CompressedFormat = store.Format

const (
	// FormatCGR1 is the original per-edge gap encoding (~2.5 bytes/edge on
	// crawl-ordered web graphs).
	FormatCGR1 = store.FormatCGR1
	// FormatCGR2 is the run/interval/residual encoding (30-50% fewer
	// bytes/edge than CGR1 on crawl-ordered web graphs).
	FormatCGR2 = store.FormatCGR2
	// FormatCGR3 is CGR2 plus integrity: the same body encoding under a
	// CRC32C per-block checksum trailer, so bit rot and torn writes are
	// detected instead of decoded. The default written format.
	FormatCGR3 = store.FormatCGR3
)

// ParseCompressedFormat maps a format name ("cgr1", "cgr2", "cgr3",
// case-insensitive on the magic spelling) to its CompressedFormat.
func ParseCompressedFormat(s string) (CompressedFormat, error) { return store.ParseFormat(s) }

// AtomicWriter writes a file so the final path only ever holds a complete
// artifact: bytes go to a temp file in the target directory, Commit fsyncs
// and renames it into place (then fsyncs the directory), and Abort - a
// no-op after Commit - discards it. Every file-writing command in this
// repo writes through it.
type AtomicWriter = store.AtomicWriter

// NewAtomicWriter starts an atomic write of path.
func NewAtomicWriter(path string) (*AtomicWriter, error) { return store.NewAtomicWriter(path) }

// VerifyInfo describes what VerifyFile found: the detected on-disk kind
// and, for checksummed formats, the verified geometry.
type VerifyInfo = store.VerifyInfo

// VerifyFile checksum-scans a .cgr or .cpr file: for checksummed formats
// (CGR3, CPR2) every payload block is proven in order, so a corruption
// error names the first corrupt block. Pre-integrity formats return
// Checksummed=false and a nil error - not corrupt, just unprotected.
func VerifyFile(path string) (VerifyInfo, error) { return store.VerifyFile(path) }

// WriteCompressed encodes the graph in the package's gap-compressed binary
// format (CGR1), preserving edge order.
func WriteCompressed(w io.Writer, g *Graph) error { return store.Write(w, g) }

// WriteCompressedFormat encodes the graph in the chosen on-disk format.
// Readers detect the format from the file header, so either decodes
// transparently everywhere a compressed graph is accepted.
func WriteCompressedFormat(w io.Writer, g *Graph, f CompressedFormat) error {
	return store.WriteFormat(w, g, f)
}

// ReadCompressed decodes a graph written by WriteCompressed or
// WriteCompressedFormat (any format, detected from the header; CGR3
// inputs are checksum-verified as they decode).
func ReadCompressed(r io.Reader) (*Graph, error) { return store.Read(r) }

// SniffCompressed reports whether head (at least the first 4 bytes of a
// file) carries any compressed-format magic.
func SniffCompressed(head []byte) bool { return store.SniffHeader(head) }

// BuildCSR builds an out-adjacency view.
func BuildCSR(g *Graph) *CSR { return graph.BuildCSR(g) }

// ComputeStats computes degree statistics and a power-law fit.
func ComputeStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// Generators (substitutes for the paper's crawl datasets; see DESIGN.md).
type WebConfig = gen.WebConfig

// GenerateWeb generates a site-structured copying-model web graph.
func GenerateWeb(cfg WebConfig) *Graph { return gen.Web(cfg) }

// GenerateBarabasiAlbert generates a preferential-attachment social graph.
func GenerateBarabasiAlbert(n, m int, seed uint64) *Graph { return gen.BarabasiAlbert(n, m, seed) }

// GenerateRMAT generates a recursive-matrix (Kronecker) graph.
func GenerateRMAT(scale, edgeFactor int, a, b, c float64, seed uint64) *Graph {
	return gen.RMAT(scale, edgeFactor, a, b, c, seed)
}

// GenerateErdosRenyi generates a uniform random graph (no-skew control).
func GenerateErdosRenyi(n, m int, seed uint64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// SampleVertices returns a random vertex-induced subgraph (Figure 5).
func SampleVertices(g *Graph, frac float64, seed uint64) *Graph {
	return gen.SampleVertices(g, frac, seed)
}

// Stream orders (Definition 1; each partitioner declares its preference).
type Order = stream.Order

// StreamView is a zero-copy, read-only view of an ordered edge stream: the
// base edge slice plus an optional permutation. Views adapt to the Source
// interface via View.Source, so replaying or caching an order never copies
// edges.
type StreamView = stream.View

// StreamSource is a sequential, replayable edge stream with a known vertex
// count - the interface every partitioner and evaluator consumes. In-memory
// views adapt via StreamView.Source; compressed files open directly as
// sources via OpenCompressed without ever being materialized.
type StreamSource = stream.Source

// StreamSegmenter is a StreamSource whose contiguous ranges can be opened
// as independent sources (DistributedCLUGP's sharded ingest).
type StreamSegmenter = stream.Segmenter

// GraphFile is a compressed graph file opened as a replayable, segmentable
// edge source (see OpenCompressed). Both backends satisfy it: the
// mmap-backed MmapGraphFile and the seek-based FileGraphFile.
type GraphFile = store.File

// MmapGraphFile is the mmap-backed file source: the file is mapped once,
// edges decode straight from the mapped bytes, Reset is a pointer rewind
// and segments share the mapping, so repeat passes run at page-cache
// speed. Where mapping is unavailable it degrades to a portable read-at
// mode with the same contract.
type MmapGraphFile = store.MmapSource

// FileGraphFile is the seek-based file source: a private file handle and
// read window per handle, segments reopen the file.
type FileGraphFile = store.FileSource

const (
	// OrderNatural preserves generation order.
	OrderNatural = stream.Natural
	// OrderBFS is the web-crawl order (CLUGP's and Mint's setting).
	OrderBFS = stream.BFS
	// OrderDFS is the depth-first analogue.
	OrderDFS = stream.DFS
	// OrderRandom is a seeded shuffle (the one-pass heuristics' setting).
	OrderRandom = stream.Random
)

// StreamEdges returns the graph's edges in the requested order as a slice
// (a copy for every order but Natural). Prefer NewStreamView, which never
// copies.
func StreamEdges(g *Graph, order Order, seed uint64) []Edge { return stream.Edges(g, order, seed) }

// NewStreamView returns the graph's edges in the requested order as a
// zero-copy permutation view.
func NewStreamView(g *Graph, order Order, seed uint64) StreamView {
	return stream.NewView(g, order, seed)
}

// NewStreamSource returns the graph's edges in the requested order as a
// replayable source (a zero-copy view plus a cursor).
func NewStreamSource(g *Graph, order Order, seed uint64) StreamSource {
	return stream.NewView(g, order, seed).Source(g.NumVertices)
}

// StreamOf wraps an edge slice in its natural-order view.
func StreamOf(edges []Edge) StreamView { return stream.Of(edges) }

// StreamRetryConfig tunes RetryStream: attempts per stream position,
// backoff before each retry (capped doubling), and which errors count as
// transient (nil retries everything except end-of-stream).
type StreamRetryConfig = stream.RetryConfig

// RetryStream wraps a source so transient read failures are survived by
// replaying: on a retryable error the wrapper resets the underlying
// source, skips the edges it already delivered, and resumes from the
// exact next edge, so consumers observe the identical edge sequence a
// fault-free pass would deliver. Segmentable sources stay segmentable,
// with every segment retried under the same config.
func RetryStream(src StreamSource, cfg StreamRetryConfig) StreamSource {
	return stream.Retry(src, cfg)
}

// ForEachStreamed replays a source from its first edge, passing each block
// to fn with its global edge offset (stream-aligned data such as
// PartitionResult.Assign indexes as data[off+i]).
func ForEachStreamed(src StreamSource, fn func(off int, edges []Edge) error) error {
	return stream.ForEach(src, fn)
}

// OpenCompressed opens a graph written by WriteCompressed (either format)
// as a replayable edge source with the fastest available backend: the file
// is mapped once and edges decode straight from the mapped bytes, so Reset
// and Segment are free and the OS page cache serves repeat passes. This is
// the out-of-core entry point: the graph is never materialized.
func OpenCompressed(path string) (GraphFile, error) { return store.OpenAuto(path) }

// OpenCompressedMmap opens the mmap-backed source explicitly (with its
// portable read-at fallback); OpenCompressedFile opens the seek-based
// FileSource backend. OpenCompressed picks for you.
func OpenCompressedMmap(path string) (*MmapGraphFile, error) { return store.OpenMmap(path) }

// OpenCompressedFile opens the seek-based backend: one private file handle
// and read window per handle, segments reopen the file.
func OpenCompressedFile(path string) (*FileGraphFile, error) { return store.Open(path) }

// Partitioners.
type (
	// Partitioner assigns streamed edges to k partitions.
	Partitioner = partition.Partitioner
	// PartitionResult bundles a finished run with quality metrics.
	PartitionResult = partition.Result
	// Quality holds replication factor and balance (Section II-B).
	Quality = metrics.Quality
	// CLUGP is the paper's three-pass partitioner with all its knobs.
	CLUGP = partition.CLUGP
	// CLUGPTrace carries CLUGP's per-pass diagnostics.
	CLUGPTrace = partition.Trace
	// HDRF is the state-of-the-art one-pass baseline.
	HDRF = partition.HDRF
	// Greedy is PowerGraph's greedy heuristic.
	Greedy = partition.Greedy
	// Hashing is random edge placement.
	Hashing = partition.Hashing
	// DBH is degree-based hashing.
	DBH = partition.DBH
	// Mint is the quasi-streaming game-theoretic baseline.
	Mint = partition.Mint
	// DistributedCLUGP is the Section III-C sharded-ingest mode.
	DistributedCLUGP = partition.DistributedCLUGP
	// HybridCut is PowerLyra's differentiated partitioning (extension).
	HybridCut = partition.HybridCut
	// Grid is the 2D constrained-hash partitioner (extension).
	Grid = partition.Grid
)

// Edge-cut partitioning (the Section II-C comparison family).
type (
	// EdgeCutPartitioner assigns vertices (not edges) to partitions.
	EdgeCutPartitioner = edgecut.Partitioner
	// EdgeCutQuality holds cut fraction and balance for a vertex assignment.
	EdgeCutQuality = edgecut.Quality
	// LDG is the linear deterministic greedy streaming vertex partitioner.
	LDG = edgecut.LDG
	// FENNEL is the streaming vertex partitioner of Tsourakakis et al.
	FENNEL = edgecut.FENNEL
	// Multilevel is the METIS-style offline edge-cut partitioner.
	Multilevel = edgecut.Multilevel
	// Restream wraps LDG/FENNEL in the restreaming framework (ReLDG,
	// ReFENNEL) the paper's own architecture descends from.
	Restream = edgecut.Restream
)

// EvaluateEdgeCut computes edge-cut quality for a vertex assignment.
func EvaluateEdgeCut(g *Graph, assign []int32, k int) (*EdgeCutQuality, error) {
	return edgecut.Evaluate(g, assign, k)
}

// NewPartitioner constructs an algorithm by evaluation name
// (Hashing, DBH, Greedy, HDRF, Mint, CLUGP, CLUGP-S, CLUGP-G).
func NewPartitioner(name string, seed uint64) (Partitioner, error) {
	return partition.New(name, seed)
}

// PartitionerNames lists every name NewPartitioner accepts.
func PartitionerNames() []string { return partition.Names() }

// Suite returns the six algorithms of the paper's evaluation.
func Suite(seed uint64) []Partitioner { return partition.Suite(seed) }

// Partition runs the named algorithm over g's edges (in the algorithm's
// preferred stream order) and evaluates quality.
func Partition(g *Graph, algorithm string, k int, seed uint64) (*PartitionResult, error) {
	p, err := partition.New(algorithm, seed)
	if err != nil {
		return nil, err
	}
	return partition.Run(p, g, k, seed)
}

// RunPartitioner runs a custom-configured partitioner.
func RunPartitioner(p Partitioner, g *Graph, k int, seed uint64) (*PartitionResult, error) {
	return partition.Run(p, g, k, seed)
}

// Emit receives finalized runs of out-of-core assignments in stream order.
type Emit = partition.Emit

// RunOutOfCore partitions a source in its stored (natural) order without
// materializing the assignment: finalized runs are scored incrementally
// and forwarded to emit (nil discards them, leaving only quality). Peak
// memory is the algorithm's state plus a block buffer, never O(|E|). The
// result's Assign is nil.
func RunOutOfCore(p Partitioner, src StreamSource, k int, emit Emit) (*PartitionResult, error) {
	return partition.RunOutOfCore(p, src, k, emit)
}

// OutOfCoreOptions tune the out-of-core pass; Workers > 1 enables the
// parallel hot pass (multi-worker decode plus sharded quality accounting)
// with results bit-identical to the serial pass for any worker count.
type OutOfCoreOptions = partition.OutOfCoreOptions

// RunOutOfCoreOpts is RunOutOfCore with the parallel hot pass available.
func RunOutOfCoreOpts(p Partitioner, src StreamSource, k int, emit Emit, opts OutOfCoreOptions) (*PartitionResult, error) {
	return partition.RunOutOfCoreOpts(p, src, k, emit, opts)
}

// Checkpoint/resume of out-of-core runs (clugp -checkpoint/-resume).
type (
	// Checkpoint is a decoded CPK1 snapshot of an out-of-core run: the
	// stream offset it covers, the emit watermark, and the algorithm's
	// state sections, CRC-protected on disk.
	Checkpoint = store.Checkpoint
	// CheckpointOptions configures checkpoint writing and resume for
	// RunOutOfCoreOpts (OutOfCoreOptions.Checkpoint).
	CheckpointOptions = partition.CheckpointOptions
	// CheckpointStats reports checkpoint/resume activity of a run
	// (PartitionResult.Pipeline.Checkpoints).
	CheckpointStats = partition.CheckpointStats
	// Checkpointer is the snapshot/restore seam streaming partitioners
	// implement to support checkpointing (HDRF, Greedy, CLUGP family).
	Checkpointer = partition.Checkpointer
	// StreamRetryStats counts fired retry attempts across a retry-wrapped
	// source and all its segments (StreamRetryConfig.Stats).
	StreamRetryStats = stream.RetryStats
)

// LoadCheckpoint reads and integrity-verifies the checkpoint at path,
// falling back to the rotated previous checkpoint (path+".prev") when the
// newest one is corrupt or torn; it returns the checkpoint and which file
// it came from. A checkpoint that fails its CRC is never returned.
func LoadCheckpoint(path string) (*Checkpoint, string, error) { return store.LoadCheckpoint(path) }

// CheckpointPrevSuffix is appended to a checkpoint path to name the rotated
// previous checkpoint LoadCheckpoint falls back to.
const CheckpointPrevSuffix = store.CheckpointPrevSuffix

// AbortPendingWrites aborts every atomic file write that has neither
// committed nor aborted, removing the temp files, and returns how many were
// swept. Commands call it from signal handlers so an interrupt never
// litters temp files next to their outputs.
func AbortPendingWrites() int { return store.AbortPending() }

// Parallel-scoring introspection (clugp -trace surfaces these).
type (
	// PipelineInfo records how the out-of-core pipeline actually resolved:
	// the decode and score worker counts that ran, and any silent downgrade
	// to serial with its reason. Found on PartitionResult.Pipeline.
	PipelineInfo = partition.PipelineInfo
	// ScoreTrace describes the sharded scoring state of a partitioner's
	// most recent run: resolved worker count, table footprints, and
	// per-shard occupancy.
	ScoreTrace = partition.ScoreTrace
	// ScoreTracer is implemented by partitioners that shard their scoring
	// state (HDRF, Greedy); LastScoreTrace returns nil after serial runs.
	ScoreTracer = partition.ScoreTracer
	// ShardStat is one shard's occupancy summary inside a ScoreTrace.
	ShardStat = metrics.ShardStat
)

// ParallelStreamConfig sizes a parallel decode pipeline; the zero value
// picks sensible defaults (GOMAXPROCS workers). Every knob affects
// scheduling only, never which edges appear in which position.
type ParallelStreamConfig = stream.ParallelConfig

// ParallelStream wraps a segmentable source in a multi-worker decode
// pipeline that delivers exactly the base stream - same edges, same order,
// for any worker count - in fixed-size batches decoded concurrently. Close
// the returned source to release the workers; the base stays open.
func ParallelStream(base StreamSegmenter, cfg ParallelStreamConfig) (*stream.ParallelSource, error) {
	return stream.Parallel(base, cfg)
}

// EvaluatePartition recomputes quality metrics from an edge assignment.
func EvaluatePartition(edges []Edge, assign []int32, numVertices, k int) (*Quality, error) {
	return metrics.Evaluate(stream.Of(edges).Source(numVertices), assign, k)
}

// EvaluateStream recomputes quality metrics for an assignment over an
// ordered edge source (e.g. PartitionResult.Stream).
func EvaluateStream(src StreamSource, assign []int32, k int) (*Quality, error) {
	return metrics.Evaluate(src, assign, k)
}

// Pipeline access (the paper's contribution, stage by stage).
type (
	// PipelineOptions configure a stage-retaining CLUGP run.
	PipelineOptions = core.Options
	// Pipeline retains every intermediate CLUGP stage.
	Pipeline = core.Pipeline
	// Clustering is the pass-1 output (vertex->cluster tables).
	Clustering = cluster.Result
	// ClusterGraph is the cluster-level view feeding the game.
	ClusterGraph = cluster.Graph
	// GameAssignment is the pass-2 Nash equilibrium.
	GameAssignment = game.Assignment
)

// RunPipeline executes CLUGP's three passes, retaining each stage.
func RunPipeline(g *Graph, opts PipelineOptions) (*Pipeline, error) { return core.Run(g, opts) }

// Distributed engine (the PowerGraph substitute).
type (
	// Placement lays a partitioning onto k logical nodes.
	Placement = engine.Placement
	// CostModel converts counted work into simulated time.
	CostModel = engine.CostModel
	// RunStats aggregates messages, bytes and simulated makespan.
	RunStats = engine.RunStats
	// PageRankConfig controls the distributed PageRank run.
	PageRankConfig = engine.PageRankConfig
)

// NewPlacement lays out a finished partitioning onto logical nodes.
func NewPlacement(res *PartitionResult) (*Placement, error) { return engine.NewPlacement(res) }

// PageRank runs distributed PageRank over the placement.
func PageRank(pl *Placement, cfg PageRankConfig) ([]float64, RunStats, error) {
	return engine.PageRank(pl, cfg)
}

// ParallelPageRank runs the same computation with per-node goroutines and
// BSP barriers; results are bit-identical to PageRank.
func ParallelPageRank(pl *Placement, cfg PageRankConfig, workers int) ([]float64, RunStats, error) {
	return engine.ParallelPageRank(pl, cfg, workers)
}

// ConnectedComponents runs distributed min-label propagation.
func ConnectedComponents(pl *Placement, cost CostModel) ([]uint32, RunStats) {
	return engine.ConnectedComponents(pl, cost)
}

// SSSP runs distributed BFS hop distances from source.
func SSSP(pl *Placement, source uint32, cost CostModel) ([]uint32, RunStats) {
	return engine.SSSP(pl, source, cost)
}

// LabelPropagation runs distributed plurality label propagation.
func LabelPropagation(pl *Placement, maxIters int, cost CostModel) ([]uint32, RunStats) {
	return engine.LabelPropagation(pl, maxIters, cost)
}

// ReferenceLabelPropagation is the single-machine reference implementation.
func ReferenceLabelPropagation(g *Graph, maxIters int) []uint32 {
	return engine.ReferenceLabelPropagation(g, maxIters)
}

// ReferencePageRank is the single-machine reference implementation.
func ReferencePageRank(g *Graph, damping float64, iters int) []float64 {
	return engine.ReferencePageRank(g, damping, iters)
}

// ReferenceComponents is the single-machine reference implementation.
func ReferenceComponents(g *Graph) []uint32 { return engine.ReferenceComponents(g) }

// ReferenceSSSP is the single-machine reference implementation.
func ReferenceSSSP(g *Graph, source uint32) []uint32 { return engine.ReferenceSSSP(g, source) }

// Experiments (the paper's tables and figures).
type (
	// ExperimentConfig controls experiment scale and scope.
	ExperimentConfig = bench.Config
	// ExperimentTable is one regenerated table/figure panel.
	ExperimentTable = bench.Table
	// Dataset is a synthetic stand-in for one of the paper's graphs.
	Dataset = bench.Dataset
	// SuiteConfig describes a benchmark grid (algorithm x dataset x k x seed).
	SuiteConfig = bench.SuiteConfig
	// Report is a machine-readable suite result (BENCH_<experiment>.json).
	Report = bench.Report
	// ReportCell is one grid point of a Report.
	ReportCell = bench.Cell
	// DiffOptions set the regression thresholds for DiffReports.
	DiffOptions = bench.DiffOptions
	// DiffResult classifies per-cell metric changes between two Reports.
	DiffResult = bench.DiffResult
	// StreamCache memoizes ordered edge streams per graph.
	StreamCache = stream.Cache
)

// Datasets returns the five evaluation graphs (Table III stand-ins).
func Datasets() []Dataset { return bench.Datasets() }

// RunExperiment regenerates one paper artefact ("table1", "3".."11").
func RunExperiment(name string, cfg ExperimentConfig) ([]ExperimentTable, error) {
	return bench.Run(name, cfg)
}

// ExperimentNames lists the experiments RunExperiment accepts.
func ExperimentNames() []string { return bench.ExperimentNames() }

// RunSuite executes the benchmark grid serially. It is the reference
// RunSuiteParallel is measured against: quality metrics are identical
// for any worker count.
func RunSuite(cfg SuiteConfig) (*Report, error) { return bench.RunSuite(cfg) }

// RunSuiteParallel executes the algorithm x dataset x k x seed grid on a
// worker pool, computing each stream order at most once per graph.
func RunSuiteParallel(cfg SuiteConfig) (*Report, error) { return bench.RunSuiteParallel(cfg) }

// LoadReport reads a BENCH_*.json report written by Report.WriteFile.
func LoadReport(path string) (*Report, error) { return bench.LoadReport(path) }

// DiffReports compares a current report against a baseline, flagging
// quality and runtime regressions beyond the configured tolerances.
func DiffReports(baseline, current *Report, opts DiffOptions) *DiffResult {
	return bench.Diff(baseline, current, opts)
}

// NewStreamCache returns an empty stream-order cache for repeated
// partitioning runs over the same graphs.
func NewStreamCache() *StreamCache { return stream.NewCache() }

// Placement service: save a finished partitioning and serve
// vertex->partition, replica-set and edge-routing lookups online
// (cmd/partsrv is the daemon around these pieces).
type (
	// SavedResult is the serializable core of a finished partitioning:
	// replica table + per-partition sizes, everything a lookup service
	// needs, without the O(|E|) assignment.
	SavedResult = store.Result
	// ServeSnapshot is one immutable epoch of serving state; any number of
	// goroutines may query it concurrently.
	ServeSnapshot = serve.Snapshot
	// ServeOptions configure the snapshot table layout (flat or
	// vertex-range sharded).
	ServeOptions = serve.Options
	// ServeBuilder accumulates a streamed partitioning into SavedResult
	// form (chain Observe onto an out-of-core Emit).
	ServeBuilder = serve.Builder
	// ServeServer swaps snapshots behind an epoch pointer with zero
	// downtime and serves the HTTP/JSON query API.
	ServeServer = serve.Server
	// ServeStats is the /v1/stats response shape.
	ServeStats = serve.Stats
	// ServeRetryPolicy tunes the automatic reload retry a ServeServer runs
	// after a failed reload (capped exponential backoff with jitter) and
	// the consecutive-failure threshold behind /v1/readyz.
	ServeRetryPolicy = serve.RetryPolicy
)

// WriteSavedResult encodes a finished partitioning to w (.cpr file).
func WriteSavedResult(w io.Writer, r *SavedResult) error { return store.WriteResult(w, r) }

// ReadSavedResult decodes a result written by WriteSavedResult, rejecting
// truncated files, forged headers and inconsistent bodies.
func ReadSavedResult(r io.Reader) (*SavedResult, error) { return store.ReadResult(r) }

// SniffSavedResult reports whether head (at least 4 bytes) carries the
// result-file magic.
func SniffSavedResult(head []byte) bool { return store.SniffResultHeader(head) }

// SavedResultFromRun converts a finished in-memory run into saveable form
// by replaying its stream against its assignment.
func SavedResultFromRun(res *PartitionResult) (*SavedResult, error) { return serve.FromRun(res) }

// NewServeBuilder returns a builder for a stream over numVertices vertices
// and k partitions.
func NewServeBuilder(numVertices, k int) (*ServeBuilder, error) {
	return serve.NewBuilder(numVertices, k)
}

// NewServeSnapshot freezes a saved result into serving form.
func NewServeSnapshot(r *SavedResult, opts ServeOptions) (*ServeSnapshot, error) {
	return serve.NewSnapshot(r, opts)
}

// NewServeServer returns a server with initial installed as epoch 1.
func NewServeServer(initial *ServeSnapshot) *ServeServer { return serve.NewServer(initial) }

// ServeStatsOf summarises a snapshot.
func ServeStatsOf(snap *ServeSnapshot) ServeStats { return serve.StatsOf(snap) }

// PartitionCached is Partition with the stream order served from cache.
func PartitionCached(g *Graph, algorithm string, k int, seed uint64, cache *StreamCache) (*PartitionResult, error) {
	p, err := partition.New(algorithm, seed)
	if err != nil {
		return nil, err
	}
	return partition.RunCached(p, g, k, seed, cache)
}
