package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Integrity trailer shared by the checksummed formats (CGR3 graphs, CPR2
// results). The payload - everything a pre-integrity reader would call the
// file, magic included - is divided into fixed-size blocks and each block's
// CRC32C recorded in a trailer after the payload, discoverable without
// decoding anything via a fixed-size footer at EOF:
//
//	payload:  bytes [0, payloadLen) - magic | header | body
//	trailer:  magic "CKS1" | uvarint blockSize | uvarint nblocks |
//	          nblocks x uint32le CRC32C(payload block)
//	footer:   uint64le payloadLen | uint32le CRC32C(trailer) | magic "CKSZ"
//
// Blocks are aligned to the absolute byte grid (block b covers payload bytes
// [b*blockSize, (b+1)*blockSize), the last one short), so any byte range a
// decoder touches maps to blocks without knowing token boundaries. CRC32C
// (Castagnoli) is hardware-accelerated on every platform this repo targets,
// which is what keeps lazy verification inside the <=2% decode budget.
//
// Verification on the streaming sources is lazy: the trailer itself is
// checked eagerly at open (footer magic, trailer CRC, block-count/size
// consistency), each payload block the first time a decoded range touches
// it, and every remaining block when a stream that ends at the file's last
// edge reaches EOF - so any full consumption of the stream has, by the time
// it reports success, proven every payload byte against its checksum, and no
// corrupt bytes are ever handed to a consumer as decoded edges.

// checksumBlockSize is the byte granularity of payload checksums: one CRC
// per 64 KiB matches the cursor window, so lazy verification re-reads each
// byte at most once and the trailer stays ~0.006% of the payload.
const checksumBlockSize = 1 << 16

var (
	trailerMagic = [4]byte{'C', 'K', 'S', '1'}
	footerMagic  = [4]byte{'C', 'K', 'S', 'Z'}
)

// footerLen is the fixed EOF footer: payload length, trailer CRC, magic.
const footerLen = 16

// castagnoli is the CRC32C polynomial table every checksum here uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNoChecksums reports a Verify call on a file in a pre-integrity format
// (CGR1, CGR2, CPR1): the file is not corrupt, it just carries nothing to
// verify against.
var ErrNoChecksums = errors.New("store: file carries no checksums (pre-integrity format)")

// CorruptError reports detected corruption: a payload block whose bytes no
// longer match their recorded CRC32C, or a damaged trailer/footer. Block is
// the zero-based payload block index, or -1 when the trailer or footer
// itself is damaged; Off/Len locate the corrupt bytes in the file.
type CorruptError struct {
	Path  string
	Block int
	Off   int64
	Len   int64
	What  string
}

func (e *CorruptError) Error() string {
	if e.Block < 0 {
		return fmt.Sprintf("store: %s: corrupt file: %s", e.Path, e.What)
	}
	return fmt.Sprintf("store: %s: corrupt file: %s (block %d, bytes [%d,%d))",
		e.Path, e.What, e.Block, e.Off, e.Off+e.Len)
}

// integrity is the shared verification state of one checksummed file: the
// parsed trailer plus a bitmap of blocks already proven, shared by the root
// source and every segment so each block's CRC is computed at most once
// however many cursors stream the file.
type integrity struct {
	path       string
	payloadLen int64
	blockSize  int64
	crcs       []uint32

	remaining atomic.Int64 // unverified blocks; 0 is the hot-path fast out
	mu        sync.Mutex
	done      []uint64 // verified-block bitmap, guarded by mu
	scratch   []byte   // block read buffer, guarded by mu
}

// readFullAt reads exactly len(p) bytes at off, looping over short reads
// (an io.ReaderAt may legally return fewer bytes with a nil error only via
// retryable conditions; the fault injector exercises exactly that).
func readFullAt(r io.ReaderAt, p []byte, off int64) error {
	for len(p) > 0 {
		n, err := r.ReadAt(p, off)
		if n > 0 {
			p = p[n:]
			off += int64(n)
			continue
		}
		if err == nil || err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// parseTrailer reads and validates the integrity trailer of a checksummed
// file: footer magic and geometry, trailer CRC, block size and count. The
// payload blocks themselves are not touched - they verify lazily.
func parseTrailer(r io.ReaderAt, size int64, path string) (*integrity, error) {
	corrupt := func(what string) error {
		return &CorruptError{Path: path, Block: -1, What: what}
	}
	if size < footerLen+4 {
		return nil, corrupt("file too short for an integrity footer")
	}
	var foot [footerLen]byte
	if err := readFullAt(r, foot[:], size-footerLen); err != nil {
		return nil, fmt.Errorf("store: %s: reading integrity footer: %w", path, err)
	}
	if [4]byte(foot[12:16]) != footerMagic {
		return nil, corrupt("integrity footer magic missing")
	}
	payloadLen := int64(binary.LittleEndian.Uint64(foot[0:8]))
	wantTrailerCRC := binary.LittleEndian.Uint32(foot[8:12])
	if payloadLen < 4 || payloadLen > size-footerLen {
		return nil, corrupt(fmt.Sprintf("implausible payload length %d for a %d-byte file", payloadLen, size))
	}
	tb := make([]byte, size-footerLen-payloadLen)
	if err := readFullAt(r, tb, payloadLen); err != nil {
		return nil, fmt.Errorf("store: %s: reading integrity trailer: %w", path, err)
	}
	if crc32.Checksum(tb, castagnoli) != wantTrailerCRC {
		return nil, corrupt("integrity trailer checksum mismatch")
	}
	if len(tb) < 4 || [4]byte(tb[:4]) != trailerMagic {
		return nil, corrupt("integrity trailer magic missing")
	}
	rest := tb[4:]
	blockSize, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, corrupt("integrity trailer block size unreadable")
	}
	rest = rest[n:]
	nblocks, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, corrupt("integrity trailer block count unreadable")
	}
	rest = rest[n:]
	if blockSize < 1<<10 || blockSize > 1<<26 {
		return nil, corrupt(fmt.Sprintf("implausible checksum block size %d", blockSize))
	}
	want := uint64((payloadLen + int64(blockSize) - 1) / int64(blockSize))
	if nblocks != want {
		return nil, corrupt(fmt.Sprintf("trailer declares %d blocks, payload of %d bytes needs %d", nblocks, payloadLen, want))
	}
	if uint64(len(rest)) != 4*nblocks {
		return nil, corrupt(fmt.Sprintf("trailer carries %d checksum bytes, %d blocks need %d", len(rest), nblocks, 4*nblocks))
	}
	g := &integrity{
		path:       path,
		payloadLen: payloadLen,
		blockSize:  int64(blockSize),
		crcs:       make([]uint32, nblocks),
		done:       make([]uint64, (nblocks+63)/64),
	}
	for i := range g.crcs {
		g.crcs[i] = binary.LittleEndian.Uint32(rest[4*i:])
	}
	g.remaining.Store(int64(nblocks))
	return g, nil
}

// blockRange returns the payload byte range of block b.
func (g *integrity) blockRange(b int) (lo, hi int64) {
	lo = int64(b) * g.blockSize
	hi = lo + g.blockSize
	if hi > g.payloadLen {
		hi = g.payloadLen
	}
	return lo, hi
}

// verifyBlockLocked proves block b against its recorded CRC, reading the raw
// bytes through r. Called with mu held; marks the block verified on success.
func (g *integrity) verifyBlockLocked(r io.ReaderAt, b int) error {
	lo, hi := g.blockRange(b)
	if g.scratch == nil {
		g.scratch = make([]byte, g.blockSize)
	}
	buf := g.scratch[:hi-lo]
	if err := readFullAt(r, buf, lo); err != nil {
		return fmt.Errorf("store: %s: reading block %d for verification: %w", g.path, b, err)
	}
	if crc32.Checksum(buf, castagnoli) != g.crcs[b] {
		return &CorruptError{Path: g.path, Block: b, Off: lo, Len: hi - lo, What: "block checksum mismatch"}
	}
	g.done[b/64] |= 1 << (b % 64)
	g.remaining.Add(-1)
	return nil
}

// verifyRange proves every not-yet-verified block overlapping payload bytes
// [lo, hi), the lazy decode-path hook: a decoded range is only handed to the
// consumer once the bytes it came from are proven. A range past the payload
// is itself corruption (the decoder ran into the trailer).
func (g *integrity) verifyRange(r io.ReaderAt, lo, hi int64) error {
	if hi <= lo {
		return nil
	}
	if hi > g.payloadLen {
		return &CorruptError{Path: g.path, Block: -1, What: fmt.Sprintf("decode ran past the %d-byte payload", g.payloadLen)}
	}
	if g.remaining.Load() == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for b := int(lo / g.blockSize); b <= int((hi-1)/g.blockSize); b++ {
		if g.done[b/64]&(1<<(b%64)) != 0 {
			continue
		}
		if err := g.verifyBlockLocked(r, b); err != nil {
			return err
		}
	}
	return nil
}

// verifyAll proves every remaining block, in order, so the first corrupt
// block of a damaged file is the one reported.
func (g *integrity) verifyAll(r io.ReaderAt) error {
	if g.remaining.Load() == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for b := range g.crcs {
		if g.done[b/64]&(1<<(b%64)) != 0 {
			continue
		}
		if err := g.verifyBlockLocked(r, b); err != nil {
			return err
		}
	}
	return nil
}

// verifyAllBytes parses the trailer of a complete checksummed file held in
// memory, proves every payload block eagerly, and returns the payload slice.
// This is the sequential-reader path (NewReader, ReadResult): an io.Reader
// cannot seek to the footer, so the bytes are already buffered and the
// verification order is simply eager.
func verifyAllBytes(data []byte, path string) ([]byte, error) {
	br := byteReaderAt(data)
	g, err := parseTrailer(br, int64(len(data)), path)
	if err != nil {
		return nil, err
	}
	if err := g.verifyAll(br); err != nil {
		return nil, err
	}
	return data[:g.payloadLen], nil
}

// byteReaderAt adapts a byte slice to io.ReaderAt without the bytes.Reader
// seek state.
type byteReaderAt []byte

func (b byteReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// crcWriter accumulates per-block CRC32C checksums of everything written
// through it, then emits the trailer and footer. It buffers nothing: bytes
// pass straight to the underlying writer while the running block checksum
// folds them in.
type crcWriter struct {
	w        io.Writer
	n        int64 // payload bytes written so far
	blockCRC uint32
	fill     int64 // bytes of the current block already folded in
	crcs     []uint32
	err      error
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: w}
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	for rest := p[:n]; len(rest) > 0; {
		take := checksumBlockSize - cw.fill
		if take > int64(len(rest)) {
			take = int64(len(rest))
		}
		cw.blockCRC = crc32.Update(cw.blockCRC, castagnoli, rest[:take])
		cw.fill += take
		rest = rest[take:]
		if cw.fill == checksumBlockSize {
			cw.crcs = append(cw.crcs, cw.blockCRC)
			cw.blockCRC, cw.fill = 0, 0
		}
	}
	cw.n += int64(n)
	return n, err
}

// writeTrailer seals the payload: it flushes the final partial block's CRC
// and writes the trailer and footer to the underlying writer.
func (cw *crcWriter) writeTrailer() error {
	crcs := cw.crcs
	if cw.fill > 0 {
		crcs = append(crcs, cw.blockCRC)
	}
	var tmp [binary.MaxVarintLen64]byte
	tb := make([]byte, 0, 16+4*len(crcs))
	tb = append(tb, trailerMagic[:]...)
	tb = append(tb, tmp[:binary.PutUvarint(tmp[:], checksumBlockSize)]...)
	tb = append(tb, tmp[:binary.PutUvarint(tmp[:], uint64(len(crcs)))]...)
	for _, c := range crcs {
		tb = binary.LittleEndian.AppendUint32(tb, c)
	}
	var foot [footerLen]byte
	binary.LittleEndian.PutUint64(foot[0:8], uint64(cw.n))
	binary.LittleEndian.PutUint32(foot[8:12], crc32.Checksum(tb, castagnoli))
	copy(foot[12:16], footerMagic[:])
	if _, err := cw.w.Write(tb); err != nil {
		return err
	}
	_, err := cw.w.Write(foot[:])
	return err
}

// VerifyInfo describes what VerifyFile found: the detected on-disk kind and,
// for checksummed formats, the verified geometry.
type VerifyInfo struct {
	// Kind is the magic name: CGR1/CGR2/CGR3 for graphs, CPR1/CPR2 for
	// saved results, CPK1 for checkpoints.
	Kind string
	// Checksummed reports whether the format carries an integrity trailer;
	// when false there was nothing to verify and the scan is a no-op.
	Checksummed bool
	// Blocks is the number of payload checksum blocks proven.
	Blocks int
	// PayloadBytes and SizeBytes split the file into covered payload and
	// trailer overhead.
	PayloadBytes int64
	SizeBytes    int64
}

// VerifyFile checksum-scans path: it identifies the format from the magic,
// and for checksummed formats (CGR3, CPR2) proves every payload block in
// order, so a corruption report (*CorruptError) names the first corrupt
// block. Pre-integrity formats return Checksummed=false and a nil error -
// they are not corrupt, just unprotected. This is graphstat -verify.
func VerifyFile(path string) (VerifyInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return VerifyInfo{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return VerifyInfo{}, err
	}
	info := VerifyInfo{SizeBytes: fi.Size(), PayloadBytes: fi.Size()}
	var m [4]byte
	if err := readFullAt(f, m[:], 0); err != nil {
		return info, fmt.Errorf("store: %s: reading magic: %w", path, err)
	}
	switch m {
	case magic, magic2, resultMagic:
		info.Kind = string(m[:])
		return info, nil
	case magic3, resultMagic2, checkpointMagic:
		info.Kind = string(m[:])
		info.Checksummed = true
	default:
		return info, ErrBadMagic
	}
	g, err := parseTrailer(f, fi.Size(), path)
	if err != nil {
		return info, err
	}
	info.Blocks = len(g.crcs)
	info.PayloadBytes = g.payloadLen
	return info, g.verifyAll(f)
}
