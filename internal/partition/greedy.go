package partition

import (
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/stream"
)

// Greedy is PowerGraph's greedy heuristic (Gonzalez et al., OSDI 2012).
// For each edge (u,v) it consults the replica sets P(u), P(v) accumulated
// so far:
//
//  1. if P(u) and P(v) intersect, place the edge on the least-loaded common
//     partition (no new replica);
//  2. if both are non-empty but disjoint, place it on the least-loaded
//     partition holding either endpoint (one new replica);
//  3. if exactly one endpoint has been seen, use its least-loaded partition;
//  4. otherwise use the globally least-loaded partition.
//
// The P(v) table is the "global status table" whose locking the paper blames
// for the poor scaling of heuristic methods; here it also dominates their
// memory cost (Figure 6).
//
// A Greedy value keeps its replica table and counters as scratch reused
// across runs, so the per-edge path performs zero allocations and repeated
// runs reuse the O(|V|·k/64) bitset.
type Greedy struct {
	// ScoreWorkers > 1 routes the replica table through vertex-range shards
	// and scores each fixed batch over the gather -> score -> apply pipeline
	// (score.go), one worker per shard. Assignments are bit-identical to the
	// serial path for every value. Usually set through
	// OutOfCoreOptions.ScoreWorkers.
	ScoreWorkers int

	rs      metrics.ReplicaSets
	sizes   []int64
	scratch []int32

	// Sharded-scoring state (ScoreWorkers > 1 only).
	srs   metrics.ShardedReplicaSets
	gt    metrics.GatherTable
	pipe  scorePipe
	trace *ScoreTrace

	// resume holds checkpoint state stashed by RestoreState until the next
	// run consumes it right after its tables reset.
	resume *greedyResume
}

// greedyResume is the stashed checkpoint state of a Greedy run (canonical
// encodings: loads into flat or sharded tables alike).
type greedyResume struct {
	replicas []byte
	sizes    []int64
}

// SnapshotState implements Checkpointer: the replica table and partition
// sizes, Greedy's entire per-edge state, in the canonical encoding.
func (gr *Greedy) SnapshotState(c *store.Checkpoint) error {
	if gr.ScoreWorkers > 1 {
		c.AddSection(sectionGreedyReplicas, gr.srs.AppendState(nil))
	} else {
		c.AddSection(sectionGreedyReplicas, gr.rs.AppendState(nil))
	}
	c.AddSection(sectionGreedySizes, metrics.AppendSizesState(nil, gr.sizes))
	return nil
}

// RestoreState implements Checkpointer, stashing the checkpoint's sections
// for the next run to load once its tables are at the run's geometry.
func (gr *Greedy) RestoreState(c *store.Checkpoint) error {
	rep, err := loadSection(c, sectionGreedyReplicas)
	if err != nil {
		return err
	}
	szs, err := loadSection(c, sectionGreedySizes)
	if err != nil {
		return err
	}
	sizes := make([]int64, c.K)
	rem, err := metrics.LoadSizesState(sizes, szs)
	if err != nil {
		return err
	}
	if err := consumed(rem, "greedy sizes"); err != nil {
		return err
	}
	gr.resume = &greedyResume{replicas: rep, sizes: sizes}
	return nil
}

// consumeResume loads the stashed checkpoint state into the just-reset
// tables (flat or sharded per the current mode).
func (gr *Greedy) consumeResume() error {
	r := gr.resume
	gr.resume = nil
	var rem []byte
	var err error
	if gr.ScoreWorkers > 1 {
		rem, err = gr.srs.LoadState(r.replicas)
	} else {
		rem, err = gr.rs.LoadState(r.replicas)
	}
	if err != nil {
		return err
	}
	if err := consumed(rem, "greedy replica"); err != nil {
		return err
	}
	copy(gr.sizes, r.sizes)
	return nil
}

// setScoreWorkers implements scoreParallel.
func (gr *Greedy) setScoreWorkers(n int) { gr.ScoreWorkers = n }

// LastScoreTrace implements ScoreTracer: the most recent run's shard
// layout and occupancy, or nil if it scored serially.
func (gr *Greedy) LastScoreTrace() *ScoreTrace { return gr.trace }

// Name implements Partitioner.
func (gr *Greedy) Name() string { return "Greedy" }

// PreferredOrder implements Partitioner.
func (gr *Greedy) PreferredOrder() stream.Order { return stream.Random }

// Partition implements Partitioner.
func (gr *Greedy) Partition(src stream.Source, k int) ([]int32, error) {
	return partitionVia(gr, src, k)
}

// PartitionInto implements IntoPartitioner. The sink is constructed in a
// concrete call chain so it stays on the stack (zero-allocation contract).
func (gr *Greedy) PartitionInto(src stream.Source, k int, assign []int32) error {
	if err := checkInto(src, k, assign); err != nil {
		return err
	}
	sink := assignSink{assign: assign}
	return gr.run(src, k, &sink)
}

// PartitionStream implements StreamingPartitioner.
func (gr *Greedy) PartitionStream(src stream.Source, k int, emit Emit) error {
	return streamVia(gr, src, k, emit)
}

func (gr *Greedy) run(src stream.Source, k int, sink *assignSink) error {
	gr.trace = nil
	if gr.ScoreWorkers > 1 {
		return gr.runSharded(src, k, sink)
	}
	gr.rs.Reset(src.NumVertices(), k)
	gr.sizes = resetInt64(gr.sizes, k)
	if cap(gr.scratch) < k {
		gr.scratch = make([]int32, 0, k)
	}
	rs, sizes, scratch := &gr.rs, gr.sizes, gr.scratch
	if gr.resume != nil {
		if err := gr.consumeResume(); err != nil {
			return err
		}
	}
	return forEachBlock(src, func(blk []graph.Edge) error {
		out := sink.grab(len(blk))
		for j, e := range blk {
			u, v := e.Src, e.Dst
			var p int32
			common := rs.Intersect(u, v, scratch[:0])
			if len(common) > 0 {
				p = leastLoaded(sizes, common)
			} else {
				cu := rs.Count(u)
				cv := rs.Count(v)
				switch {
				case cu > 0 && cv > 0:
					p = leastLoaded(sizes, rs.Union(u, v, scratch[:0]))
				case cu > 0:
					p = leastLoaded(sizes, rs.Partitions(u, scratch[:0]))
				case cv > 0:
					p = leastLoaded(sizes, rs.Partitions(v, scratch[:0]))
				default:
					p = leastLoadedAll(sizes)
				}
			}
			out[j] = p
			sizes[p]++
			rs.Add(u, int(p))
			rs.Add(v, int(p))
		}
		return sink.commit(blk, out)
	})
}

// runSharded is run with the replica table sharded by vertex range and
// each fixed batch scored from a pre-gathered slot table (see score.go and
// HDRF.runSharded; the four-case dispatch below is the serial loop verbatim
// with slot reads for vertex reads). Bit-identical for every ScoreWorkers
// value.
func (gr *Greedy) runSharded(src stream.Source, k int, sink *assignSink) error {
	n := src.NumVertices()
	gr.srs.Reset(n, k, gr.ScoreWorkers)
	gr.sizes = resetInt64(gr.sizes, k)
	if cap(gr.scratch) < k {
		gr.scratch = make([]int32, 0, k)
	}
	srs, gt, sizes, scratch := &gr.srs, &gr.gt, gr.sizes, gr.scratch
	if gr.resume != nil {
		if err := gr.consumeResume(); err != nil {
			return err
		}
	}
	sp := &gr.pipe
	sp.begin(n, gr.srs.NumShards())
	defer sp.stop()
	gather := func(sh int, verts []graph.VertexID, slots []int32) {
		srs.GatherSlots(sh, verts, slots, gt)
	}
	apply := func(sh int, verts []graph.VertexID, slots []int32) {
		srs.ApplySlots(sh, verts, slots, gt)
	}

	err := forEachBlock(stream.Rebatch(src, 0), func(blk []graph.Edge) error {
		sp.prepare(blk)
		gt.Reset(sp.nslots, k, false)
		sp.do(gather)
		out := sink.grab(len(blk))
		for j := range blk {
			su, sv := sp.su[j], sp.sv[j]
			var p int32
			common := gt.Intersect(su, sv, scratch[:0])
			if len(common) > 0 {
				p = leastLoaded(sizes, common)
			} else {
				cu := gt.Count(su)
				cv := gt.Count(sv)
				switch {
				case cu > 0 && cv > 0:
					p = leastLoaded(sizes, gt.Union(su, sv, scratch[:0]))
				case cu > 0:
					p = leastLoaded(sizes, gt.Partitions(su, scratch[:0]))
				case cv > 0:
					p = leastLoaded(sizes, gt.Partitions(sv, scratch[:0]))
				default:
					p = leastLoadedAll(sizes)
				}
			}
			out[j] = p
			sizes[p]++
			gt.Set(su, int(p))
			gt.Set(sv, int(p))
		}
		sp.do(apply)
		return sink.commit(blk, out)
	})
	if err != nil {
		return err
	}
	gr.trace = &ScoreTrace{
		Workers:      srs.NumShards(),
		ReplicaBytes: srs.Bytes(),
		Shards:       srs.ShardStats(),
	}
	return nil
}

// StateBytes implements StateSizer: the replica bitset plus partition sizes.
func (gr *Greedy) StateBytes(numVertices, numEdges, k int) int64 {
	words := (k + 63) / 64
	return int64(numVertices)*int64(words)*8 + int64(k)*8
}

// resetInt64 returns a zeroed int64 slice of length n, reusing buf's
// storage when possible.
func resetInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// resetUint32 returns a zeroed uint32 slice of length n, reusing buf's
// storage when possible.
func resetUint32(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}
