// Package store implements a compact binary graph format playing the role
// WebGraph's BV format plays for the paper's datasets: crawl-ordered edge
// streams compress extremely well under gap encoding because consecutive
// edges share sources and target nearby vertices.
//
// Format (little-endian varints):
//
//	magic "CGR1" | uvarint numVertices | uvarint numEdges |
//	per edge: svarint(src - prevSrc) | svarint(dst - src)
//
// On BFS-ordered web graphs this lands around 2 bytes/edge versus ~13 for
// the text edge list. The format preserves edge order exactly - order is
// semantic for streaming partitioners - and decodes via a streaming reader
// so graphs need not be materialized to be re-streamed.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
)

var magic = [4]byte{'C', 'G', 'R', '1'}

// ErrBadMagic reports that the input is not in this package's format.
var ErrBadMagic = errors.New("store: bad magic (not a CGR1 file)")

// Write encodes the graph to w.
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(x int64) error {
		n := binary.PutVarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(g.NumVertices)); err != nil {
		return err
	}
	if err := putUvarint(uint64(g.NumEdges())); err != nil {
		return err
	}
	prevSrc := int64(0)
	for _, e := range g.Edges {
		src := int64(e.Src)
		if err := putVarint(src - prevSrc); err != nil {
			return err
		}
		if err := putVarint(int64(e.Dst) - src); err != nil {
			return err
		}
		prevSrc = src
	}
	return bw.Flush()
}

// Reader streams edges from an encoded graph without materializing them.
type Reader struct {
	br          *bufio.Reader
	numVertices int
	numEdges    int
	read        int
	prevSrc     int64
}

// NewReader validates the header and prepares streaming decode.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	nv, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading vertex count: %w", err)
	}
	ne, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading edge count: %w", err)
	}
	if err := checkCounts(nv, ne); err != nil {
		return nil, err
	}
	return &Reader{br: br, numVertices: int(nv), numEdges: int(ne)}, nil
}

// NumVertices returns the declared vertex count.
func (r *Reader) NumVertices() int { return r.numVertices }

// NumEdges returns the declared edge count.
func (r *Reader) NumEdges() int { return r.numEdges }

// Next decodes the next edge. It returns io.EOF after the declared edge
// count has been delivered.
func (r *Reader) Next() (graph.Edge, error) {
	if r.read >= r.numEdges {
		return graph.Edge{}, io.EOF
	}
	dSrc, err := binary.ReadVarint(r.br)
	if err != nil {
		return graph.Edge{}, fmt.Errorf("store: edge %d src: %w", r.read, err)
	}
	src := r.prevSrc + dSrc
	dDst, err := binary.ReadVarint(r.br)
	if err != nil {
		return graph.Edge{}, fmt.Errorf("store: edge %d dst: %w", r.read, err)
	}
	dst := src + dDst
	if src < 0 || dst < 0 || src >= int64(r.numVertices) || dst >= int64(r.numVertices) {
		return graph.Edge{}, fmt.Errorf("store: edge %d (%d->%d) out of range (n=%d)", r.read, src, dst, r.numVertices)
	}
	r.prevSrc = src
	r.read++
	return graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)}, nil
}

// Read decodes a whole graph.
func Read(r io.Reader) (*graph.Graph, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	// Cap the initial allocation: the declared edge count is untrusted until
	// the body actually decodes, and a forged multi-billion count must not
	// translate into a giant up-front allocation. Real counts beyond the cap
	// just grow by appending.
	capHint := sr.NumEdges()
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	edges := make([]graph.Edge, 0, capHint)
	for {
		e, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		edges = append(edges, e)
	}
	return graph.New(sr.NumVertices(), edges), nil
}

// Sniff reports whether the reader's next bytes look like this format,
// without consuming them. The reader must support Peek (bufio.Reader).
func Sniff(br *bufio.Reader) bool {
	head, err := br.Peek(4)
	if err != nil {
		return false
	}
	return [4]byte(head) == magic
}
