package metrics

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// TestShardGeometry pins the layout rule: shards clamp to n, spans cover
// exactly [0, n), no shard is empty, and the result is idempotent (feeding
// the effective count back yields the same layout) - the property that lets
// ShardedReplicaSets, ShardedDegrees and the scoring pipeline agree on
// "shard of v" when each resolves the requested count independently.
func TestShardGeometry(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 100, 257, 1000} {
		for _, req := range []int{0, 1, 2, 3, 7, 52, 64, 1000} {
			eff, span := ShardGeometry(n, req)
			if eff < 1 || span < 1 {
				t.Fatalf("n=%d req=%d: eff=%d span=%d", n, req, eff, span)
			}
			if n > 0 {
				if (eff-1)*span >= n || eff*span < n {
					t.Fatalf("n=%d req=%d: %d shards of span %d do not tile [0,%d)", n, req, eff, span, n)
				}
				if eff > n {
					t.Fatalf("n=%d req=%d: %d shards exceed vertex count", n, req, eff)
				}
			}
			if eff2, span2 := ShardGeometry(n, eff); eff2 != eff || span2 != span {
				t.Fatalf("n=%d req=%d: not idempotent: (%d,%d) -> (%d,%d)", n, req, eff, span, eff2, span2)
			}
		}
	}
}

// TestGatherApplyMatchesFlat is the differential criterion of the pipeline's
// state half: driving a sharded table through batched gather -> mutate ->
// apply cycles must leave it bit-identical to a flat table that received
// the same Adds directly, for shard counts around the boundary cases.
func TestGatherApplyMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for _, n := range []int{1, 5, 257, 500} {
		for _, k := range []int{3, 64, 65, 128} {
			for _, shards := range []int{1, 2, 7, 52} {
				flat := NewReplicaSets(n, k)
				srs := NewShardedReplicaSets(n, k, shards)
				fdeg := make([]uint32, n)
				var sdeg ShardedDegrees
				sdeg.Reset(n, shards)
				if sdeg.NumShards() != srs.NumShards() {
					t.Fatalf("n=%d shards=%d: degree table resolved %d shards, replica table %d",
						n, shards, sdeg.NumShards(), srs.NumShards())
				}
				var gt GatherTable

				for batch := 0; batch < 8; batch++ {
					// One batch: a few distinct vertices, slots in pick order.
					nv := 1 + rng.IntN(6)
					if nv > n {
						nv = n
					}
					verts := make([]graph.VertexID, 0, nv)
					seen := map[graph.VertexID]bool{}
					for len(verts) < nv {
						v := graph.VertexID(rng.IntN(n))
						if !seen[v] {
							seen[v] = true
							verts = append(verts, v)
						}
					}
					gt.Reset(len(verts), k, true)
					perShard := map[int][][2]int32{} // shard -> (local index into verts, slot)
					for i, v := range verts {
						sh := srs.ShardOf(v)
						perShard[sh] = append(perShard[sh], [2]int32{int32(i), int32(i)})
					}
					for sh, list := range perShard {
						vs := make([]graph.VertexID, len(list))
						ss := make([]int32, len(list))
						for i, e := range list {
							vs[i] = verts[e[0]]
							ss[i] = e[1]
						}
						srs.GatherSlots(sh, vs, ss, &gt)
						sdeg.GatherSlots(sh, vs, ss, &gt)
					}
					// The gathered view must equal the authoritative state.
					for i, v := range verts {
						if gt.Count(int32(i)) != flat.Count(v) {
							t.Fatalf("n=%d k=%d shards=%d: gathered count %d != flat %d for v=%d",
								n, k, shards, gt.Count(int32(i)), flat.Count(v), v)
						}
						if gt.Degree(int32(i)) != fdeg[v] {
							t.Fatalf("gathered degree mismatch for v=%d", v)
						}
						for w := 0; w < srs.Words(); w++ {
							if gt.Word(int32(i), w) != flat.Word(v, w) {
								t.Fatalf("gathered word mismatch for v=%d w=%d", v, w)
							}
						}
					}
					// Mutate slots as a score loop would, mirroring into flat.
					for i, v := range verts {
						for m := 0; m < 3; m++ {
							p := rng.IntN(k)
							gt.Set(int32(i), p)
							flat.Add(v, p)
							gt.Bump(int32(i))
							fdeg[v]++
						}
						if gt.Count(int32(i)) != flat.Count(v) {
							t.Fatalf("count cache diverged for v=%d: %d != %d", v, gt.Count(int32(i)), flat.Count(v))
						}
					}
					for sh, list := range perShard {
						vs := make([]graph.VertexID, len(list))
						ss := make([]int32, len(list))
						for i, e := range list {
							vs[i] = verts[e[0]]
							ss[i] = e[1]
						}
						srs.ApplySlots(sh, vs, ss, &gt)
						sdeg.ApplySlots(sh, vs, ss, &gt)
					}
				}
				// Final differential: every vertex, every word, every degree.
				for v := 0; v < n; v++ {
					vid := graph.VertexID(v)
					for w := 0; w < srs.Words(); w++ {
						if srs.Word(vid, w) != flat.Word(vid, w) {
							t.Fatalf("n=%d k=%d shards=%d: applied word diverges at v=%d w=%d", n, k, shards, v, w)
						}
					}
					if sdeg.Degree(vid) != fdeg[v] {
						t.Fatalf("n=%d shards=%d: applied degree diverges at v=%d: %d != %d",
							n, shards, v, sdeg.Degree(vid), fdeg[v])
					}
				}
			}
		}
	}
}

// TestGatherTableSlotOps pins the slot-level query ops against the flat
// table's vertex-level ops on identical contents.
func TestGatherTableSlotOps(t *testing.T) {
	const n, k = 40, 70
	rng := rand.New(rand.NewPCG(23, 29))
	flat := NewReplicaSets(n, k)
	for i := 0; i < 300; i++ {
		flat.Add(graph.VertexID(rng.IntN(n)), rng.IntN(k))
	}
	srs := NewShardedReplicaSets(n, k, 4)
	for v := 0; v < n; v++ {
		for p := 0; p < k; p++ {
			if flat.Has(graph.VertexID(v), p) {
				srs.Add(graph.VertexID(v), p)
			}
		}
	}
	var gt GatherTable
	gt.Reset(n, k, false)
	for sh := 0; sh < srs.NumShards(); sh++ {
		lo, hi := srs.ShardRange(sh)
		var vs []graph.VertexID
		var ss []int32
		for v := lo; v < hi; v++ {
			vs = append(vs, graph.VertexID(v))
			ss = append(ss, int32(v))
		}
		srs.GatherSlots(sh, vs, ss, &gt)
	}
	var a, b []int32
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			uu, vv := graph.VertexID(u), graph.VertexID(v)
			a = flat.Intersect(uu, vv, a[:0])
			b = gt.Intersect(int32(u), int32(v), b[:0])
			if len(a) != len(b) {
				t.Fatalf("Intersect(%d,%d): %v != %v", u, v, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("Intersect(%d,%d): %v != %v", u, v, a, b)
				}
			}
			a = flat.Union(uu, vv, a[:0])
			b = gt.Union(int32(u), int32(v), b[:0])
			if len(a) != len(b) {
				t.Fatalf("Union(%d,%d): %v != %v", u, v, a, b)
			}
		}
		a = flat.Partitions(graph.VertexID(u), a[:0])
		b = gt.Partitions(int32(u), b[:0])
		if len(a) != len(b) {
			t.Fatalf("Partitions(%d): %v != %v", u, a, b)
		}
		for p := 0; p < k; p++ {
			if flat.Has(graph.VertexID(u), p) != gt.Has(int32(u), p) {
				t.Fatalf("Has(%d,%d) diverges", u, p)
			}
		}
	}
}

// TestShardStats checks the occupancy summary against a direct count.
func TestShardStats(t *testing.T) {
	const n, k = 257, 65
	srs := NewShardedReplicaSets(n, k, 7)
	rng := rand.New(rand.NewPCG(31, 37))
	occupied := map[int]bool{}
	replicas := 0
	for i := 0; i < 500; i++ {
		v, p := rng.IntN(n), rng.IntN(k)
		if !srs.Has(graph.VertexID(v), p) {
			replicas++
		}
		srs.Add(graph.VertexID(v), p)
		occupied[v] = true
	}
	stats := srs.ShardStats()
	if len(stats) != srs.NumShards() {
		t.Fatalf("%d stats for %d shards", len(stats), srs.NumShards())
	}
	var totOcc int
	var totRep, totBytes int64
	prevHi := 0
	for i, st := range stats {
		if st.Lo != prevHi {
			t.Fatalf("shard %d starts at %d, previous ended at %d", i, st.Lo, prevHi)
		}
		prevHi = st.Hi
		totOcc += st.Occupied
		totRep += st.Replicas
		totBytes += st.Bytes
	}
	if prevHi != n {
		t.Fatalf("shards cover [0,%d), want [0,%d)", prevHi, n)
	}
	if totOcc != len(occupied) {
		t.Fatalf("occupied %d, want %d", totOcc, len(occupied))
	}
	if totRep != int64(replicas) {
		t.Fatalf("replicas %d, want %d", totRep, replicas)
	}
	if totBytes != srs.Bytes() {
		t.Fatalf("bytes %d, want %d", totBytes, srs.Bytes())
	}
}
