package store

import (
	"encoding/binary"
	"errors"
	"io"
)

// errVarintOverflow reports a varint whose encoding exceeds 64 bits - only
// corrupt or adversarial input contains one, since every writer emits
// canonical encodings.
var errVarintOverflow = errors.New("store: varint overflows 64 bits")

// cursor is the zero-copy decode window every source in this package reads
// through. It decodes varints directly from a byte slice with index
// arithmetic - no bufio, no per-byte interface calls - and abstracts where
// the bytes come from behind a single refill hook:
//
//   - mapped mode (fill == nil): data is the complete input (an mmap'd file
//     or an in-memory buffer). Every operation is pure slice indexing; seek
//     is a pointer rewind.
//   - read-at mode: data is a private window into an io.ReaderAt; fill
//     reloads the window at the cursor's absolute offset via one pread.
//     Seek within the window is free, outside it costs one refill.
//   - stream mode: data is a window over a sequential io.Reader; fill slides
//     the unconsumed tail down and reads more. Seek is unsupported (only
//     the forward-only Reader uses this mode).
//
// Varint decodes are atomic with respect to the cursor: a varint that runs
// past the window consumes nothing, the window is refilled at the varint's
// first byte, and the decode retries. A varint that runs past the *input*
// surfaces io.ErrUnexpectedEOF.
type cursor struct {
	data []byte // current window
	i    int    // index of the next byte within data
	base int64  // absolute input offset of data[0]
	// fill makes more bytes visible at the cursor's absolute offset, or
	// returns an error (io.ErrUnexpectedEOF at end of input). nil means data
	// is already the whole input.
	fill func(*cursor) error
}

// windowLen is the refill granularity of the non-mapped modes: large enough
// that refills are rare and sequential reads reach disk bandwidth, small
// enough that a per-handle window is cheap.
const windowLen = 1 << 16

// abs returns the absolute input offset of the next byte.
func (c *cursor) abs() int64 { return c.base + int64(c.i) }

// seek positions the cursor at absolute offset off. Inside the current
// window it is a pointer rewind; outside, the window is invalidated and the
// next read refills at off.
func (c *cursor) seek(off int64) {
	if rel := off - c.base; rel >= 0 && rel <= int64(len(c.data)) {
		c.i = int(rel)
		return
	}
	c.base = off
	c.data = c.data[:0]
	c.i = 0
}

// uvarint decodes one unsigned varint, refilling the window as needed.
func (c *cursor) uvarint() (uint64, error) {
	for {
		x, n := binary.Uvarint(c.data[c.i:])
		if n > 0 {
			c.i += n
			return x, nil
		}
		if n < 0 {
			return 0, errVarintOverflow
		}
		// The varint runs past the window. Refill at its first byte and
		// retry; no progress means the input itself is truncated.
		avail := len(c.data) - c.i
		if c.fill == nil {
			return 0, io.ErrUnexpectedEOF
		}
		if err := c.fill(c); err != nil {
			return 0, err
		}
		if len(c.data)-c.i <= avail {
			return 0, io.ErrUnexpectedEOF
		}
	}
}

// varint decodes one zig-zag signed varint.
func (c *cursor) varint() (int64, error) {
	u, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

// readFull fills p exactly, refilling the window as needed.
func (c *cursor) readFull(p []byte) error {
	done := 0
	for done < len(p) {
		n := copy(p[done:], c.data[c.i:])
		c.i += n
		done += n
		if done == len(p) {
			return nil
		}
		if c.fill == nil {
			return io.ErrUnexpectedEOF
		}
		avail := len(c.data) - c.i
		if err := c.fill(c); err != nil {
			return err
		}
		if len(c.data)-c.i <= avail {
			return io.ErrUnexpectedEOF
		}
	}
	return nil
}

// mappedCursor returns a cursor over a complete in-memory input.
func mappedCursor(data []byte) cursor {
	return cursor{data: data}
}

// readAtCursor returns a cursor windowing r via pread. ReadAt is stateless
// with respect to any file offset, so any number of cursors can share one
// *os.File. size bounds the input; reads at or past it report truncation,
// and the window is clamped to size so bytes past the bound (a checksummed
// file's trailer) never become visible to the decoder.
func readAtCursor(r io.ReaderAt, size int64) cursor {
	win := make([]byte, windowLen)
	return cursor{fill: func(c *cursor) error {
		off := c.abs()
		if off >= size {
			return io.ErrUnexpectedEOF
		}
		w := win
		if max := size - off; max < int64(len(w)) {
			w = w[:max]
		}
		n, err := r.ReadAt(w, off)
		if n <= 0 {
			if err != nil && err != io.EOF {
				return err
			}
			return io.ErrUnexpectedEOF
		}
		c.data, c.base, c.i = w[:n], off, 0
		return nil
	}}
}

// readerCursor returns a cursor windowing a sequential reader. Seeking
// backwards past the window start is not supported in this mode.
func readerCursor(r io.Reader) cursor {
	win := make([]byte, windowLen)
	return cursor{fill: func(c *cursor) error {
		tail := copy(win, c.data[c.i:])
		c.base += int64(c.i)
		n, err := io.ReadAtLeast(r, win[tail:], 1)
		if n <= 0 {
			if err == io.EOF || err == io.ErrUnexpectedEOF || err == nil {
				return io.ErrUnexpectedEOF
			}
			return err
		}
		c.data, c.i = win[:tail+n], 0
		return nil
	}}
}

// zigzag maps a signed delta to the unsigned value its varint encodes
// (LSB is the sign), the same mapping encoding/binary's PutVarint uses.
func zigzag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
