package bench

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// tiny returns a config small enough for unit tests.
func tiny() Config {
	return Config{Scale: 0.05, Ks: []int{4, 16}, Seed: 1}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 5 {
		t.Fatalf("%d datasets, want 5", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
		g := d.Build(0.02)
		if g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph at small scale", d.Name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
	}
	for _, want := range []string{"UK", "Arabic", "WebBase", "IT", "Twitter"} {
		if !names[want] {
			t.Fatalf("missing dataset %s", want)
		}
	}
	if len(WebDatasets()) != 4 {
		t.Fatalf("%d web datasets, want 4", len(WebDatasets()))
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, _ := DatasetByName("UK")
	g1 := a.Build(0.05)
	g2 := a.Build(0.05)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("dataset build not deterministic")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatal("dataset build not deterministic")
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Note:   "a note",
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## t — demo", "a", "bb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 11 {
		t.Fatalf("%d experiments, want 10", len(names))
	}
	if names[0] != "table1" {
		t.Fatalf("first experiment %q, want table1", names[0])
	}
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// checkTables verifies structural sanity shared by every experiment: at
// least one table, consistent column counts, numeric cells parseable.
func checkTables(t *testing.T, tables []Table, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables produced")
	}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" {
			t.Fatalf("table missing id/title: %+v", tb)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: no rows", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s: row %v has %d cells, header has %d", tb.ID, row, len(row), len(tb.Header))
			}
		}
	}
}

func TestFig3Tiny(t *testing.T) {
	tables, err := Fig3(tiny())
	checkTables(t, tables, err)
	if len(tables) != 4 {
		t.Fatalf("fig3 produced %d tables, want 4", len(tables))
	}
	// On every web dataset CLUGP (last column) must beat Hashing (column 3).
	for _, tb := range tables {
		for _, row := range tb.Rows {
			hash, err1 := strconv.ParseFloat(row[3], 64)
			clugp, err2 := strconv.ParseFloat(row[len(row)-1], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: unparseable RF cells %v", tb.ID, row)
			}
			if clugp >= hash {
				t.Fatalf("%s k=%s: CLUGP RF %v >= Hashing %v", tb.ID, row[0], clugp, hash)
			}
		}
	}
}

func TestFig4Tiny(t *testing.T) {
	tables, err := Fig4(tiny())
	checkTables(t, tables, err)
	if len(tables) != 2 {
		t.Fatalf("fig4 produced %d tables, want 2", len(tables))
	}
}

func TestFig5Tiny(t *testing.T) {
	cfg := tiny()
	cfg.Scale = 0.2 // sampling needs some material
	tables, err := Fig5(cfg)
	checkTables(t, tables, err)
}

func TestFig6Tiny(t *testing.T) {
	cfg := tiny()
	cfg.Ks = []int{4, 256} // replica bitsets only widen past 64 partitions
	tables, err := Fig6(cfg)
	checkTables(t, tables, err)
	// HDRF memory (col 1) grows between k=4 and k=16; CLUGP's (last) must not.
	tb := tables[0]
	first, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][1], 64)
	if last <= first {
		t.Fatalf("HDRF memory did not grow with k: %v -> %v", first, last)
	}
	// The CLUGP-vs-HDRF gap at large k (the Figure 6 story) is asserted at
	// realistic vertex counts in partition's TestStateBytesMonotonicInK;
	// at this test's tiny scale the per-worker game scratch dominates.
}

func TestFig7Tiny(t *testing.T) {
	tables, err := Fig7(tiny())
	checkTables(t, tables, err)
	if len(tables) != 2 {
		t.Fatalf("fig7 produced %d tables, want 2", len(tables))
	}
}

func TestFig8Tiny(t *testing.T) {
	tables, err := Fig8(tiny())
	checkTables(t, tables, err)
	if len(tables) != 3 {
		t.Fatalf("fig8 produced %d tables, want 3", len(tables))
	}
	// RTT table: every algorithm's runtime must increase with RTT.
	rttTab := tables[2]
	for col := 1; col < len(rttTab.Header); col++ {
		lo, _ := strconv.ParseFloat(rttTab.Rows[0][col], 64)
		hi, _ := strconv.ParseFloat(rttTab.Rows[len(rttTab.Rows)-1][col], 64)
		if hi <= lo {
			t.Fatalf("fig8c: %s runtime did not grow with RTT (%v -> %v)", rttTab.Header[col], lo, hi)
		}
	}
}

func TestFig9Tiny(t *testing.T) {
	tables, err := Fig9(tiny())
	checkTables(t, tables, err)
	// At the largest k, CLUGP must beat both ablations.
	tb := tables[0]
	last := tb.Rows[len(tb.Rows)-1]
	full, _ := strconv.ParseFloat(last[1], 64)
	noSplit, _ := strconv.ParseFloat(last[2], 64)
	noGame, _ := strconv.ParseFloat(last[3], 64)
	if full >= noSplit || full >= noGame {
		t.Fatalf("ablation inverted at k=%s: CLUGP %v vs CLUGP-S %v vs CLUGP-G %v", last[0], full, noSplit, noGame)
	}
}

func TestFig10Tiny(t *testing.T) {
	tables, err := Fig10(tiny())
	checkTables(t, tables, err)
	if len(tables) != 2 {
		t.Fatalf("fig10 produced %d tables, want 2", len(tables))
	}
}

func TestFig11Tiny(t *testing.T) {
	tables, err := Fig11(tiny())
	checkTables(t, tables, err)
	if len(tables) != 2 {
		t.Fatalf("fig11 produced %d tables, want 2", len(tables))
	}
}

func TestSec2CTiny(t *testing.T) {
	cfg := tiny()
	cfg.Scale = 0.2
	tables, err := Sec2C(cfg)
	checkTables(t, tables, err)
	tb := tables[0]
	if len(tb.Rows) != 10 {
		t.Fatalf("sec2c has %d rows, want 10 (5 algorithms x 2 datasets)", len(tb.Rows))
	}
	// On the social graph (last 5 rows), the best vertex-cut row must beat
	// the best edge-cut row on msgs/vertex - the Section II-C claim.
	bestEdge, bestVertex := 1e18, 1e18
	for _, row := range tb.Rows[5:] {
		var v float64
		if _, err := fmt.Sscanf(row[3], "%f", &v); err != nil {
			t.Fatalf("bad msgs cell %q", row[3])
		}
		if row[1] == "edge-cut" && v < bestEdge {
			bestEdge = v
		}
		if row[1] == "vertex-cut" && v < bestVertex {
			bestVertex = v
		}
	}
	if bestVertex >= bestEdge {
		t.Fatalf("vertex-cut (%v) did not beat edge-cut (%v) on the social graph", bestVertex, bestEdge)
	}
}

func TestTable1Tiny(t *testing.T) {
	cfg := tiny()
	cfg.Scale = 0.25 // quality ranks need a non-degenerate graph
	tables, err := Table1(cfg)
	checkTables(t, tables, err)
	tb := tables[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("table1 has %d rows, want 6", len(tb.Rows))
	}
	// CLUGP must be classified High quality; Hashing Low/Low.
	for _, row := range tb.Rows {
		switch row[0] {
		case "CLUGP":
			if row[2] != "High" {
				t.Fatalf("CLUGP quality class %q, want High", row[2])
			}
		case "Hashing":
			if row[1] != "Low" || row[2] != "Low" {
				t.Fatalf("Hashing classes %q/%q, want Low/Low", row[1], row[2])
			}
		}
	}
}
