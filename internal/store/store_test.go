package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestRoundTrip(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 5000, OutDegree: 6, IntraSite: 0.85, Seed: 1})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices != g.NumVertices || back.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", back.NumVertices, back.NumEdges(), g.NumVertices, g.NumEdges())
	}
	for i := range g.Edges {
		if g.Edges[i] != back.Edges[i] {
			t.Fatalf("edge %d changed: %v vs %v (order must be preserved)", i, g.Edges[i], back.Edges[i])
		}
	}
}

func TestCompressionBeatsText(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 20000, OutDegree: 8, IntraSite: 0.88, Seed: 2})
	var bin, txt bytes.Buffer
	if err := Write(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(&txt); err != nil {
		t.Fatal(err)
	}
	ratio := float64(bin.Len()) / float64(txt.Len())
	if ratio > 0.35 {
		t.Fatalf("binary/text ratio %.2f, want < 0.35 (%d vs %d bytes)", ratio, bin.Len(), txt.Len())
	}
	perEdge := float64(bin.Len()) / float64(g.NumEdges())
	if perEdge > 4 {
		t.Fatalf("%.2f bytes/edge, want < 4 on a crawl-ordered web graph", perEdge)
	}
}

func TestStreamingReader(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 1000, OutDegree: 4, Seed: 3})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sr.NumVertices() != g.NumVertices || sr.NumEdges() != g.NumEdges() {
		t.Fatal("header mismatch")
	}
	for i := 0; ; i++ {
		e, err := sr.Next()
		if err == io.EOF {
			if i != g.NumEdges() {
				t.Fatalf("EOF after %d edges, want %d", i, g.NumEdges())
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e != g.Edges[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
	// Next after EOF keeps returning EOF.
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Read(strings.NewReader("not a graph")); err != ErrBadMagic {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated body.
	g := gen.Web(gen.WebConfig{N: 100, OutDegree: 4, Seed: 4})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestCorruptRangeRejected(t *testing.T) {
	// Hand-craft a file whose edge points past the vertex count.
	small := graph.New(2, []graph.Edge{{Src: 0, Dst: 1}})
	var buf bytes.Buffer
	if err := Write(&buf, small); err != nil {
		t.Fatal(err)
	}
	big := graph.New(1000, []graph.Edge{{Src: 999, Dst: 999}})
	var buf2 bytes.Buffer
	if err := Write(&buf2, big); err != nil {
		t.Fatal(err)
	}
	// Splice: header of the small graph with the body of the big one.
	spliced := append([]byte{}, buf.Bytes()[:6]...) // magic + nv=2 + ne=1
	spliced = append(spliced, buf2.Bytes()[8:]...)  // big graph's edge data
	if _, err := Read(bytes.NewReader(spliced)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestSniff(t *testing.T) {
	g := graph.New(2, []graph.Edge{{Src: 0, Dst: 1}})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !Sniff(bufio.NewReader(&buf)) {
		t.Fatal("Sniff missed own format")
	}
	if Sniff(bufio.NewReader(strings.NewReader("0 1\n"))) {
		t.Fatal("Sniff false positive on text")
	}
	if Sniff(bufio.NewReader(strings.NewReader(""))) {
		t.Fatal("Sniff true on empty input")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(5, nil)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices != 5 || back.NumEdges() != 0 {
		t.Fatalf("empty graph mangled: %d/%d", back.NumVertices, back.NumEdges())
	}
}

// TestRoundTripAdversarial pins the format on the shapes most likely to
// break a delta codec: ids at the top of the int32 range (giant positive
// and negative gaps), self-loops (zero dst gap), a single vertex, an empty
// graph, and sawtooth source jumps.
func TestRoundTripAdversarial(t *testing.T) {
	const maxID = 1<<31 - 1 // math.MaxInt32, a valid VertexID
	cases := map[string]*graph.Graph{
		"empty":         graph.New(3, nil),
		"no-vertices":   graph.New(0, nil),
		"single-vertex": graph.New(1, nil),
		"self-loop":     graph.New(1, []graph.Edge{{Src: 0, Dst: 0}}),
		"max-int32-ids": graph.New(maxID+1, []graph.Edge{
			{Src: maxID, Dst: 0},
			{Src: 0, Dst: maxID},
			{Src: maxID, Dst: maxID},
			{Src: maxID - 1, Dst: 1},
		}),
		"sawtooth": graph.New(1000, []graph.Edge{
			{Src: 999, Dst: 0}, {Src: 0, Dst: 999}, {Src: 500, Dst: 500},
			{Src: 999, Dst: 999}, {Src: 0, Dst: 0},
		}),
		"duplicates": graph.New(2, []graph.Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1},
		}),
	}
	for name, g := range cases {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if back.NumVertices != g.NumVertices || back.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: shape %d/%d, want %d/%d", name, back.NumVertices, back.NumEdges(), g.NumVertices, g.NumEdges())
		}
		for i := range g.Edges {
			if back.Edges[i] != g.Edges[i] {
				t.Fatalf("%s: edge %d changed: %v vs %v", name, i, back.Edges[i], g.Edges[i])
			}
		}
	}
}

// header hand-crafts a CGR header with arbitrary declared counts.
func header(nv, ne uint64) []byte {
	buf := append([]byte{}, magic[:]...)
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], nv)]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], ne)]...)
	return buf
}

// TestImplausibleHeaderRejected: a forged edge or vertex count must be
// rejected (or fail cleanly at EOF) without sizing anything from it - the
// declared count reaches make() before a single edge is decoded.
func TestImplausibleHeaderRejected(t *testing.T) {
	// Declared counts beyond any physical file: rejected at the header.
	if _, err := Read(bytes.NewReader(header(4, 1<<60))); err == nil {
		t.Fatal("2^60 declared edges accepted")
	}
	if _, err := Read(bytes.NewReader(header(1<<40, 0))); err == nil {
		t.Fatal("2^40 declared vertices accepted")
	}
	// Large-but-plausible count with no body: must fail at EOF, not OOM on
	// the preallocation.
	if _, err := Read(bytes.NewReader(header(4, 1<<40))); err == nil {
		t.Fatal("truncated 2^40-edge body accepted")
	}
	// The streaming source applies the same guards.
	path := filepath.Join(t.TempDir(), "forged.cgr")
	if err := os.WriteFile(path, header(4, 1<<60), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("streaming source accepted a forged header")
	}
}

// TestVarintOverflowRejected: a delta whose varint encoding overflows 64
// bits (or lands an id outside [0, numVertices)) must surface as an error,
// never as a negative or wrapped vertex id.
func TestVarintOverflowRejected(t *testing.T) {
	overflow := bytes.Repeat([]byte{0x80}, 10) // 10 continuation bytes: > 64 bits
	overflow = append(overflow, 0x02)
	body := append(header(4, 1), overflow...)
	body = append(body, 0x00) // dst delta, never reached
	if _, err := Read(bytes.NewReader(body)); err == nil {
		t.Fatal("overflowing varint accepted")
	}
	// Maximum negative delta from src 0: wraps far below zero and must be
	// caught by the range guard.
	var tmp [binary.MaxVarintLen64]byte
	neg := tmp[:binary.PutVarint(tmp[:], -(1<<62))]
	body = append(header(4, 1), neg...)
	body = append(body, 0x00)
	if _, err := Read(bytes.NewReader(body)); err == nil {
		t.Fatal("negative vertex id accepted")
	}
	// Maximum positive delta: beyond numVertices, range-guarded too.
	pos := tmp[:binary.PutVarint(tmp[:], 1<<62)]
	body = append(header(4, 1), pos...)
	body = append(body, 0x00)
	if _, err := Read(bytes.NewReader(body)); err == nil {
		t.Fatal("out-of-range vertex id accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	check := func(raw []uint16, nRaw uint8) bool {
		nv := int(nRaw)%100 + 2
		edges := make([]graph.Edge, 0, len(raw))
		for _, r := range raw {
			edges = append(edges, graph.Edge{
				Src: graph.VertexID(int(r>>8) % nv),
				Dst: graph.VertexID(int(r) % nv),
			})
		}
		g := graph.New(nv, edges)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.NumVertices != nv || back.NumEdges() != len(edges) {
			return false
		}
		for i := range edges {
			if edges[i] != back.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
