package stream

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// RetryStats counts the replay activity of a Retry-wrapped source across
// every cursor sharing it: the top-level wrapper and all its segments bump
// the same counter, so one read covers a whole parallel ingest. Safe for
// concurrent use.
type RetryStats struct {
	attempts atomic.Int64
}

// Attempts returns how many retry attempts have fired (each one a fault
// that was survived by a replay - a green run over healthy media reads 0).
func (s *RetryStats) Attempts() int64 { return s.attempts.Load() }

// RetryConfig tunes a Retry wrapper.
type RetryConfig struct {
	// MaxAttempts is how many times the same stream position may be
	// attempted before the error is surfaced (so MaxAttempts-1 retries).
	// Zero or negative means 3. The attempt counter resets whenever the
	// stream delivers new edges, so a long pass tolerates MaxAttempts-1
	// consecutive faults at each position, not in total.
	MaxAttempts int
	// Backoff is the sleep before the first retry, doubling on each
	// consecutive one. Zero means no sleep - right for tests and for
	// sources whose transient faults clear without waiting.
	Backoff time.Duration
	// Retryable reports whether an error is worth a replay. nil retries
	// everything except io.EOF; persistent errors (checksum failures,
	// truncation) then simply fail again until attempts run out, which
	// costs MaxAttempts-1 replays but never masks the error.
	Retryable func(error) bool
	// Stats, when non-nil, receives every fired retry attempt. Retry fills
	// in a fresh one when nil, so the counter is always live; segments
	// share their parent's (RetrySource.RetryAttempts reads it).
	Stats *RetryStats
}

// Retry wraps src so that transient NextBlock failures are survived by
// replaying: on a retryable error the wrapper resets the underlying source,
// skips the edges it already delivered, and resumes from the exact next
// edge. Consumers observe the identical edge sequence a fault-free pass
// would deliver - the bit-equivalence contract the fault-injection matrix
// (internal/partition's fault tests) pins down - or the original error once
// attempts are exhausted.
//
// Replaying can split blocks at arbitrary points, so downstream consumers
// must not assume the block granularity of the underlying source; every
// consumer in this repository already iterates ForEach-style and the
// parallel decoder re-chunks into fixed batches, so assignments stay
// bit-deterministic under any fault pattern that Retry survives.
//
// If src is a Segmenter, the returned Source is too, and each segment is
// itself Retry-wrapped with the same config.
func Retry(src Source, cfg RetryConfig) Source {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Stats == nil {
		cfg.Stats = &RetryStats{}
	}
	rs := RetrySource{base: src, cfg: cfg}
	if _, ok := src.(Segmenter); ok {
		return &retrySegmenter{RetrySource: rs}
	}
	return &rs
}

// RetrySource is the Source returned by Retry. It carries one cursor like
// any Source; concurrent consumers wrap their own segments.
type RetrySource struct {
	base Source
	cfg  RetryConfig

	pos      int // edges delivered since the last consumer-visible Reset
	replay   int // edges still to skip while re-approaching pos
	attempts int // failed attempts at the current position
}

// NumVertices implements Source.
func (s *RetrySource) NumVertices() int { return s.base.NumVertices() }

// Len implements Source.
func (s *RetrySource) Len() int { return s.base.Len() }

// Reset implements Source, retrying the underlying Reset under the same
// policy as NextBlock.
func (s *RetrySource) Reset() error {
	s.pos, s.replay, s.attempts = 0, 0, 0
	for {
		err := s.base.Reset()
		if err == nil {
			return nil
		}
		if !s.retryable(err) || s.attempts >= s.cfg.MaxAttempts-1 {
			return err
		}
		s.attempts++
		s.cfg.Stats.attempts.Add(1)
		s.sleep()
	}
}

// NextBlock implements Source. On a retryable error it backs off, resets the
// underlying source and replays forward to the first undelivered edge; the
// block that resumes delivery may therefore start mid-way through one of the
// underlying source's blocks.
func (s *RetrySource) NextBlock() ([]graph.Edge, error) {
	for {
		blk, err := s.base.NextBlock()
		if err == nil {
			if s.replay > 0 {
				if len(blk) <= s.replay {
					s.replay -= len(blk)
					continue
				}
				blk = blk[s.replay:]
				s.replay = 0
			}
			s.pos += len(blk)
			s.attempts = 0
			return blk, nil
		}
		if err == io.EOF {
			if s.replay > 0 {
				// The replayed stream ended before reaching edges it
				// delivered on an earlier attempt: the source shrank
				// under us, which no retry can make consistent.
				return nil, fmt.Errorf("stream: source ended %d edges short of its replay position", s.replay)
			}
			return nil, io.EOF
		}
		if !s.retryable(err) || s.attempts >= s.cfg.MaxAttempts-1 {
			return nil, err
		}
		s.attempts++
		s.cfg.Stats.attempts.Add(1)
		s.sleep()
		for {
			rerr := s.base.Reset()
			if rerr == nil {
				break
			}
			if !s.retryable(rerr) || s.attempts >= s.cfg.MaxAttempts-1 {
				return nil, rerr
			}
			s.attempts++
			s.cfg.Stats.attempts.Add(1)
			s.sleep()
		}
		s.replay = s.pos
	}
}

func (s *RetrySource) retryable(err error) bool {
	if err == io.EOF {
		return false
	}
	if s.cfg.Retryable != nil {
		return s.cfg.Retryable(err)
	}
	return true
}

func (s *RetrySource) sleep() { s.sleepN(s.attempts) }

// sleepN sleeps the capped-doubling backoff for the given attempt number.
func (s *RetrySource) sleepN(attempt int) {
	if s.cfg.Backoff <= 0 {
		return
	}
	d := s.cfg.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
	}
	time.Sleep(d)
}

// retrySegmenter adds Segment to RetrySource when the base supports it, so
// RunOutOfCore's sharded ingest keeps its fast path under fault injection.
type retrySegmenter struct{ RetrySource }

// Segment implements Segmenter: the underlying segment gets its own Retry
// wrapper (retry state is per-cursor) with the same config. Creating a
// segment reads the source too (checkpoint-index scan, roll-forward to lo),
// so the creation itself is retried under the same policy.
func (s *retrySegmenter) Segment(lo, hi int) (Source, error) {
	attempts := 0
	for {
		seg, err := s.base.(Segmenter).Segment(lo, hi)
		if err == nil {
			return Retry(seg, s.cfg), nil
		}
		if !s.retryable(err) || attempts >= s.cfg.MaxAttempts-1 {
			return nil, err
		}
		attempts++
		s.cfg.Stats.attempts.Add(1)
		s.sleepN(attempts)
	}
}

// RetryAttempts returns the total retry attempts fired by this source and
// every segment derived from it (they share the config's RetryStats).
func (s *RetrySource) RetryAttempts() int64 { return s.cfg.Stats.Attempts() }

// Close closes the underlying source when it holds resources (file-backed
// segments do); in-memory sources make it a no-op.
func (s *RetrySource) Close() error {
	if c, ok := s.base.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
