// Command graphstat prints structural statistics of a graph: scale, degree
// distribution summary, power-law fit, degree Gini, connectivity - the
// properties that decide which partitioning family suits the graph
// (Section II-C).
//
// Usage:
//
//	graphstat -in graph.txt
//	graphstat -preset Arabic -hist
//	graphstat -in graph.cgr -verify   # checksum-scan only, no statistics
//
// -verify checksum-scans a .cgr or .cpr file and exits: every payload
// block is proven against the file's CRC32C trailer, and a corruption
// report names the first corrupt block and its byte range. Pre-integrity
// formats (CGR1/CGR2/CPR1) carry no checksums and report that there is
// nothing to verify.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	var (
		in     = flag.String("in", "", "input graph file (text or binary)")
		preset = flag.String("preset", "", "generate a dataset preset instead of reading a file")
		scale  = flag.Float64("scale", 1.0, "preset scale factor")
		hist   = flag.Bool("hist", false, "print the degree histogram (log-binned)")
		verify = flag.Bool("verify", false, "checksum-scan -in (.cgr or .cpr) and exit; reports the first corrupt block")
	)
	flag.Parse()

	if *verify {
		if *in == "" {
			fmt.Fprintln(os.Stderr, "graphstat: -verify needs -in FILE")
			os.Exit(1)
		}
		if err := runVerify(*in, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "graphstat:", err)
			os.Exit(1)
		}
		return
	}

	g, err := load(*in, *preset, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphstat:", err)
		os.Exit(1)
	}

	s := repro.ComputeStats(g)
	fmt.Printf("vertices:        %d\n", s.NumVertices)
	fmt.Printf("edges:           %d\n", s.NumEdges)
	// For compressed inputs, report the on-disk encoding so compression
	// wins (CGR1 vs CGR2) are visible from the CLI.
	if *in != "" {
		if f, err := repro.OpenCompressed(*in); err == nil {
			bpe := 0.0
			if f.Len() > 0 {
				bpe = float64(f.SizeBytes()) / float64(f.Len())
			}
			fmt.Printf("on-disk format:  %s (%d bytes, %.2f bytes/edge)\n", f.Format(), f.SizeBytes(), bpe)
			f.Close()
		}
	}
	fmt.Printf("mean degree:     %.2f\n", s.MeanDegree)
	fmt.Printf("max degree:      %d\n", s.MaxDegree)
	fmt.Printf("power-law alpha: %.2f (tail fit from degree %d)\n", s.Alpha, max32(s.DMin, 8))

	comps := repro.ReferenceComponents(g)
	seen := map[uint32]bool{}
	for _, c := range comps {
		seen[c] = true
	}
	fmt.Printf("components:      %d\n", len(seen))

	if *hist {
		fmt.Println("\ndegree histogram (log-binned):")
		degs, counts := g.DegreeHistogram()
		// Log-2 bins.
		bins := map[int]int{}
		for i, d := range degs {
			b := 0
			for v := d; v > 1; v >>= 1 {
				b++
			}
			bins[b] += counts[i]
		}
		for b := 0; b <= 32; b++ {
			if c, ok := bins[b]; ok {
				lo := 1 << uint(b) >> 1
				if b == 0 {
					lo = 0
				}
				fmt.Printf("  deg %7d..%-7d: %d\n", lo, (1<<uint(b))-1+lo, c)
			}
		}
	}
}

// runVerify implements -verify: checksum-scan path and report what was
// proven. A corruption error (from the integrity trailer) already names
// the first corrupt block and its byte range, so it is returned verbatim.
func runVerify(path string, w io.Writer) error {
	info, err := repro.VerifyFile(path)
	if err != nil {
		return err
	}
	if !info.Checksummed {
		fmt.Fprintf(w, "%s: %s carries no checksums; nothing to verify (recompress to cgr3)\n", path, info.Kind)
		return nil
	}
	fmt.Fprintf(w, "%s: %s ok: %d blocks over %d payload bytes verified (%d bytes on disk)\n",
		path, info.Kind, info.Blocks, info.PayloadBytes, info.SizeBytes)
	return nil
}

func max32(a uint32, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func load(in, preset string, scale float64) (*repro.Graph, error) {
	if preset != "" {
		for _, d := range repro.Datasets() {
			if d.Name == preset {
				return d.Build(scale), nil
			}
		}
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	if in == "" {
		return nil, fmt.Errorf("need -in FILE or -preset NAME")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(4)
	if err == nil && repro.SniffCompressed(head) {
		return repro.ReadCompressed(br)
	}
	return repro.ReadEdgeList(br)
}
