package partition

import (
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/stream"
)

// writeCGR writes g to a temp file in the given format and returns its path.
func writeCGRFormat(t *testing.T, g *graph.Graph, format store.Format) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.cgr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFormat(f, g, format); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeCGR writes g to a temp .cgr file (CGR1) and returns its path.
func writeCGR(t *testing.T, g *graph.Graph) string {
	t.Helper()
	return writeCGRFormat(t, g, store.FormatCGR1)
}

// fileBackends enumerates every (backend, format) combination the
// out-of-core equivalence criterion must hold over.
type fileBackend struct {
	name   string
	format store.Format
	open   func(path string) (store.File, error)
}

func fileBackends() []fileBackend {
	openFile := func(path string) (store.File, error) { return store.Open(path) }
	openMmap := func(path string) (store.File, error) { return store.OpenMmap(path) }
	var out []fileBackend
	for _, f := range []store.Format{store.FormatCGR1, store.FormatCGR2, store.FormatCGR3} {
		out = append(out,
			fileBackend{"file/" + f.String(), f, openFile},
			fileBackend{"mmap/" + f.String(), f, openMmap},
		)
	}
	return out
}

// outOfCorePartitioners is every algorithm the out-of-core path must cover:
// the full registry plus the extension partitioners and sharded ingest.
func outOfCorePartitioners(t *testing.T) []Partitioner {
	var ps []Partitioner
	for _, name := range Names() {
		p, err := New(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return append(ps,
		&HybridCut{Seed: 3},
		&Grid{Seed: 3},
		&DistributedCLUGP{Nodes: 3, Seed: 3},
	)
}

// TestOutOfCoreMatchesInMemoryNatural is the equivalence criterion of the
// out-of-core data path: partitioning a graph from a .cgr file - assignment
// streamed through Emit, quality accumulated incrementally - must be
// bit-identical (assignment, replication factor, balance) to the in-memory
// natural-order run, for every algorithm including CLUGP-D's sharded
// ingest (which exercises the segment readers), on every source backend
// over every on-disk format.
func TestOutOfCoreMatchesInMemoryNatural(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 3000, OutDegree: 6, IntraSite: 0.85, Seed: 31})
	k := 8
	for _, fb := range fileBackends() {
		t.Run(fb.name, func(t *testing.T) {
			path := writeCGRFormat(t, g, fb.format)
			for _, p := range outOfCorePartitioners(t) {
				mem, err := RunStreamed(p, stream.Of(g.Edges).Source(g.NumVertices), stream.Natural, k)
				if err != nil {
					t.Fatalf("%s in-memory: %v", p.Name(), err)
				}

				src, err := fb.open(path)
				if err != nil {
					t.Fatal(err)
				}
				var streamed []int32
				ooc, err := RunOutOfCore(p, src, k, func(edges []graph.Edge, assign []int32) error {
					streamed = append(streamed, assign...)
					return nil
				})
				src.Close()
				if err != nil {
					t.Fatalf("%s out-of-core: %v", p.Name(), err)
				}

				if len(streamed) != len(mem.Assign) {
					t.Fatalf("%s: emitted %d assignments, want %d", p.Name(), len(streamed), len(mem.Assign))
				}
				for i := range streamed {
					if streamed[i] != mem.Assign[i] {
						t.Fatalf("%s: out-of-core diverges from in-memory at edge %d (%d vs %d)",
							p.Name(), i, streamed[i], mem.Assign[i])
					}
				}
				if ooc.Quality.ReplicationFactor != mem.Quality.ReplicationFactor {
					t.Fatalf("%s: RF %v != %v", p.Name(), ooc.Quality.ReplicationFactor, mem.Quality.ReplicationFactor)
				}
				if ooc.Quality.RelativeBalance != mem.Quality.RelativeBalance {
					t.Fatalf("%s: balance %v != %v", p.Name(), ooc.Quality.RelativeBalance, mem.Quality.RelativeBalance)
				}
				if ooc.Assign != nil {
					t.Fatalf("%s: out-of-core result materialized its assignment", p.Name())
				}
			}
		})
	}
}

// TestDistributedFileShardingMatchesViewSharding: CLUGP-D's concurrent
// PartitionInto over file segments (one private handle per ingest node on
// the seek backend, one shared mapping on the mmap backend) must equal the
// same run over in-memory view slices, and equal its own sequential
// streaming mode - on every backend over every format.
func TestDistributedFileShardingMatchesViewSharding(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 4000, OutDegree: 6, IntraSite: 0.85, Seed: 32})
	d := &DistributedCLUGP{Nodes: 4, Seed: 7}

	fromView, err := d.Partition(stream.Of(g.Edges).Source(g.NumVertices), 8)
	if err != nil {
		t.Fatal(err)
	}

	for _, fb := range fileBackends() {
		t.Run(fb.name, func(t *testing.T) {
			src, err := fb.open(writeCGRFormat(t, g, fb.format))
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			fromFile := make([]int32, src.Len())
			if err := d.PartitionInto(src, 8, fromFile); err != nil {
				t.Fatal(err)
			}
			for i := range fromView {
				if fromFile[i] != fromView[i] {
					t.Fatalf("file sharding diverges from view sharding at edge %d", i)
				}
			}
		})
	}
}

// TestOutOfCoreBoundedMemory is the bounded-memory criterion: streaming the
// cmd/clugp code path (RunOutOfCore over a store.FileSource) on a graph
// whose edges dominate its vertices must keep live heap well below the
// materialized edge-list size. Live heap is sampled inside the Emit
// callback after forced collections, so the assertion sees actual
// reachable memory at the hot point of the run.
func TestOutOfCoreBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a large graph")
	}
	// |E| = 600k edges = 4.8 MB materialized; |V| = 3k vertices.
	g := gen.Web(gen.WebConfig{N: 3000, OutDegree: 200, IntraSite: 0.9, Seed: 33})
	edgeBytes := int64(g.NumEdges()) * int64(8) // sizeof(graph.Edge)
	if g.NumEdges() < 100*g.NumVertices {
		t.Fatalf("test graph not edge-dominated: %d vertices, %d edges", g.NumVertices, g.NumEdges())
	}
	path := writeCGR(t, g)
	g = nil // the whole point: the graph must not be resident

	liveHeap := func() int64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return int64(m.HeapAlloc)
	}
	base := liveHeap()

	src, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	for _, tc := range []struct {
		p Partitioner
		// budget is the allowed live-heap growth as a fraction of the
		// materialized edge list. CLUGP's pass 2 packs the crossing-edge
		// cluster pairs (a fraction of |E| on a clustered graph); the
		// one-pass heuristics hold only O(|V|) state and block buffers.
		budget float64
	}{
		{&DBH{Seed: 1}, 0.25},
		{&CLUGP{Seed: 1}, 0.5},
	} {
		var peak int64
		emits := 0
		_, err = RunOutOfCore(tc.p, src, 8, func(edges []graph.Edge, assign []int32) error {
			if emits++; emits%16 == 0 {
				if live := liveHeap(); live > peak {
					peak = live
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.p.Name(), err)
		}
		if live := liveHeap(); live > peak {
			peak = live
		}
		growth := peak - base
		limit := int64(tc.budget * float64(edgeBytes))
		t.Logf("%s: live heap growth %.2f MB vs %.2f MB materialized edges (budget %.0f%%)",
			tc.p.Name(), float64(growth)/(1<<20), float64(edgeBytes)/(1<<20), 100*tc.budget)
		if growth > limit {
			t.Fatalf("%s: live heap grew %d bytes, budget %d (%.0f%% of the %d-byte edge list)",
				tc.p.Name(), growth, limit, 100*tc.budget, edgeBytes)
		}
	}
}

// TestRunOutOfCoreQualityMatchesEvaluate: the incrementally accumulated
// quality must equal a from-scratch evaluation of the emitted assignment.
func TestRunOutOfCoreQualityMatchesEvaluate(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 1500, OutDegree: 5, Seed: 34})
	src := stream.Of(g.Edges).Source(g.NumVertices)
	var assign []int32
	res, err := RunOutOfCore(&HDRF{}, src, 16, func(edges []graph.Edge, as []int32) error {
		assign = append(assign, as...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := RunStreamed(&HDRF{}, src, stream.Natural, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Quality.ReplicationFactor-mem.Quality.ReplicationFactor) != 0 {
		t.Fatalf("incremental RF %v != recomputed %v", res.Quality.ReplicationFactor, mem.Quality.ReplicationFactor)
	}
	for i := range assign {
		if assign[i] != mem.Assign[i] {
			t.Fatalf("assignment diverges at %d", i)
		}
	}
}

// TestRunOutOfCoreRejectsBadK covers the shared precondition.
func TestRunOutOfCoreRejectsBadK(t *testing.T) {
	src := stream.Of([]graph.Edge{{Src: 0, Dst: 1}}).Source(2)
	if _, err := RunOutOfCore(&Hashing{}, src, 0, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}
