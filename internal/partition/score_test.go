package partition

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/stream"
)

// scoreMatrixPartitioners are the algorithms with sharded scoring: the two
// flat-bitset heuristics and the paper's restreaming partitioner (whose
// pass 3 is the sharded part).
func scoreMatrixPartitioners() []Partitioner {
	return []Partitioner{&HDRF{}, &Greedy{}, &CLUGP{Seed: 3}}
}

// TestScoreWorkerInvariance is the bit-identity criterion of the scoring
// pipeline: for score workers {1, 2, 4, 7} x decode workers {1, 4} x
// k in {3, 64, 65, 128} (k chosen around the 64-bit word boundary of the
// replica bitsets), the emitted per-edge assignment and the quality
// accounting must equal the serial reference exactly. Decode batches are
// forced small so score batches (fixed at stream.BlockLen offsets by
// stream.Rebatch) never align with decode parcels - the case that would
// expose any batch-boundary dependence.
func TestScoreWorkerInvariance(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 1200, OutDegree: 5, IntraSite: 0.85, Seed: 61})
	src := stream.Of(g.Edges).Source(g.NumVertices)
	for _, k := range []int{3, 64, 65, 128} {
		for _, p := range scoreMatrixPartitioners() {
			serial, serialRes := collectOutOfCore(t, p, src, k, OutOfCoreOptions{})
			for _, scoreW := range []int{1, 2, 4, 7} {
				for _, decodeW := range []int{1, 4} {
					par, parRes := collectOutOfCore(t, p, src, k, OutOfCoreOptions{
						Workers:      decodeW,
						BatchEdges:   512,
						ScoreWorkers: scoreW,
					})
					if len(par) != len(serial) {
						t.Fatalf("%s k=%d score=%d decode=%d: emitted %d assignments, serial %d",
							p.Name(), k, scoreW, decodeW, len(par), len(serial))
					}
					for i := range par {
						if par[i] != serial[i] {
							t.Fatalf("%s k=%d score=%d decode=%d: assignment diverges from serial at edge %d (%d vs %d)",
								p.Name(), k, scoreW, decodeW, i, par[i], serial[i])
						}
					}
					if parRes.Quality.ReplicationFactor != serialRes.Quality.ReplicationFactor ||
						parRes.Quality.RelativeBalance != serialRes.Quality.RelativeBalance ||
						parRes.Quality.Replicas != serialRes.Quality.Replicas ||
						parRes.Quality.Vertices != serialRes.Quality.Vertices {
						t.Fatalf("%s k=%d score=%d decode=%d: quality diverges from serial",
							p.Name(), k, scoreW, decodeW)
					}
				}
			}
		}
	}
}

// TestScoreWorkerInvarianceFile covers the file path the CLI uses:
// mmap + CGR3 (checksummed decode), score and decode fleets together.
func TestScoreWorkerInvarianceFile(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 2000, OutDegree: 6, IntraSite: 0.85, Seed: 62})
	path := writeCGRFormat(t, g, store.FormatCGR3)
	src, err := store.OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	k := 16
	for _, p := range scoreMatrixPartitioners() {
		serial, serialRes := collectOutOfCore(t, p, src, k, OutOfCoreOptions{})
		for _, scoreW := range []int{2, 7} {
			par, parRes := collectOutOfCore(t, p, src, k, OutOfCoreOptions{
				Workers:      4,
				BatchEdges:   512,
				ScoreWorkers: scoreW,
			})
			for i := range par {
				if par[i] != serial[i] {
					t.Fatalf("%s score=%d: diverges from serial at edge %d", p.Name(), scoreW, i)
				}
			}
			if parRes.Quality.ReplicationFactor != serialRes.Quality.ReplicationFactor {
				t.Fatalf("%s score=%d: RF diverges", p.Name(), scoreW)
			}
		}
	}
}

// TestScoreWorkersDirectField: setting the partitioner's own field (the
// non-RunOutOfCore path: Partition / PartitionInto) shards scoring too,
// and the in-memory assignment equals the serial one.
func TestScoreWorkersDirectField(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 900, OutDegree: 5, Seed: 63})
	src := stream.Of(g.Edges).Source(g.NumVertices)
	ref, err := (&HDRF{}).Partition(src, 12)
	if err != nil {
		t.Fatal(err)
	}
	h := &HDRF{ScoreWorkers: 5}
	got, err := h.Partition(src, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("diverges at edge %d", i)
		}
	}
	if h.LastScoreTrace() == nil {
		t.Fatal("sharded run left no score trace")
	}
}

// TestScoreTrace pins the diagnostics surfaced through clugp -trace: a
// sharded run reports its resolved layout with shard stats covering the
// vertex range and the table footprint; a serial run reports nil.
func TestScoreTrace(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 700, OutDegree: 5, Seed: 64})
	src := stream.Of(g.Edges).Source(g.NumVertices)
	h := &HDRF{}
	if _, err := RunOutOfCoreOpts(h, src, 8, nil, OutOfCoreOptions{ScoreWorkers: 4}); err != nil {
		t.Fatal(err)
	}
	tr := h.LastScoreTrace()
	if tr == nil {
		t.Fatal("no trace after sharded run")
	}
	if tr.Workers != 4 || len(tr.Shards) != 4 {
		t.Fatalf("trace has %d workers, %d shards, want 4", tr.Workers, len(tr.Shards))
	}
	if tr.ReplicaBytes <= 0 || tr.DegreeBytes <= 0 {
		t.Fatalf("trace bytes not populated: %+v", tr)
	}
	var occ int
	hi := 0
	for _, st := range tr.Shards {
		if st.Lo != hi {
			t.Fatalf("shard ranges do not tile: %+v", tr.Shards)
		}
		hi = st.Hi
		occ += st.Occupied
	}
	if hi != g.NumVertices || occ == 0 {
		t.Fatalf("shard stats cover [0,%d) with %d occupied, want [0,%d) and > 0", hi, occ, g.NumVertices)
	}
	// A serial run clears the trace.
	if _, err := RunOutOfCoreOpts(h, src, 8, nil, OutOfCoreOptions{ScoreWorkers: 1}); err != nil {
		t.Fatal(err)
	}
	if h.LastScoreTrace() != nil {
		t.Fatal("serial run left a stale score trace")
	}
}

// TestPipelineFallbackReported: the silent downgrades are now recorded in
// Result.Pipeline - a non-Segmenter source demotes decode workers, an
// algorithm without sharded scoring demotes score workers - and the
// results still equal the serial run.
func TestPipelineFallbackReported(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 500, OutDegree: 4, Seed: 65})
	src := stream.Of(g.Edges).Source(g.NumVertices)

	serial, _ := collectOutOfCore(t, &DBH{}, src, 4, OutOfCoreOptions{})
	fell, res := collectOutOfCore(t, &DBH{}, unsegmentable{src}, 4, OutOfCoreOptions{Workers: 8, ScoreWorkers: 4})
	for i := range fell {
		if fell[i] != serial[i] {
			t.Fatalf("fallback diverges at edge %d", i)
		}
	}
	if res.Pipeline.DecodeWorkers != 1 || res.Pipeline.ScoreWorkers != 1 {
		t.Fatalf("fallback pipeline resolved to %+v, want serial", res.Pipeline)
	}
	if !strings.Contains(res.Pipeline.SerialFallback, "cannot segment") {
		t.Fatalf("decode fallback not reported: %q", res.Pipeline.SerialFallback)
	}
	if !strings.Contains(res.Pipeline.SerialFallback, "DBH does not shard") {
		t.Fatalf("score fallback not reported: %q", res.Pipeline.SerialFallback)
	}

	// The happy path records the resolved fleets and no fallback.
	_, res = collectOutOfCore(t, &HDRF{}, src, 4, OutOfCoreOptions{Workers: 2, ScoreWorkers: 3})
	if res.Pipeline.DecodeWorkers != 2 || res.Pipeline.ScoreWorkers != 3 || res.Pipeline.SerialFallback != "" {
		t.Fatalf("pipeline info %+v, want decode=2 score=3 no fallback", res.Pipeline)
	}
}

// TestScorePipelineRace is the scoring-pipeline race workload: decode and
// score fleets together over the shared mmap backend, with shifting batch
// boundaries between rounds. Run under -race in CI; value assertions are
// minimal (TestScoreWorkerInvariance pins those).
func TestScorePipelineRace(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 1500, OutDegree: 8, IntraSite: 0.8, Seed: 66})
	path := writeCGRFormat(t, g, store.FormatCGR3)
	src, err := store.OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for round := 0; round < 2; round++ {
		for _, scoreW := range []int{2, 5} {
			for _, p := range []Partitioner{&HDRF{}, &Greedy{}, &CLUGP{Seed: 1}, &DistributedCLUGP{Nodes: 3, Seed: 1}} {
				res, err := RunOutOfCoreOpts(p, src, 8, nil, OutOfCoreOptions{
					Workers:      3,
					BatchEdges:   256 + 64*round,
					ScoreWorkers: scoreW,
				})
				if err != nil {
					t.Fatalf("%s score=%d round=%d: %v", p.Name(), scoreW, round, err)
				}
				var sum int64
				for _, s := range res.Quality.Sizes {
					sum += s
				}
				if sum != int64(g.NumEdges()) {
					t.Fatalf("%s score=%d: sizes sum %d, want %d", p.Name(), scoreW, sum, g.NumEdges())
				}
			}
		}
	}
}
