package stream

import (
	"errors"
	"io"
	"testing"

	"repro/internal/graph"
)

// chunkSource serves a fixed edge slice in caller-chosen block sizes,
// cycling through shapes - the adversarial upstream for Rebatch.
type chunkSource struct {
	edges  []graph.Edge
	shapes []int
	pos    int
	next   int
	// short, when set, under-reports by ending the stream early.
	short int
}

func (s *chunkSource) NumVertices() int { return 100 }
func (s *chunkSource) Len() int         { return len(s.edges) }
func (s *chunkSource) Reset() error     { s.pos, s.next = 0, 0; return nil }
func (s *chunkSource) NextBlock() ([]graph.Edge, error) {
	end := len(s.edges) - s.short
	if s.pos >= end {
		return nil, io.EOF
	}
	n := s.shapes[s.next%len(s.shapes)]
	s.next++
	if n > end-s.pos {
		n = end - s.pos
	}
	blk := s.edges[s.pos : s.pos+n]
	s.pos += n
	return blk, nil
}

// TestRebatchFixedBoundaries: whatever block shapes the base produces -
// one giant block, tiny ragged blocks, exact multiples - Rebatch must
// deliver the same edges in batches of exactly B (remainder last), across
// multiple Reset passes.
func TestRebatchFixedBoundaries(t *testing.T) {
	edges := seqEdges(1000)
	shapes := [][]int{
		{len(edges)},    // one zero-copy giant block (natural-order views)
		{1},             // degenerate
		{3, 17, 1, 250}, // ragged
		{64},            // divides the batch
		{96},            // straddles batches
	}
	for _, batch := range []int{1, 7, 64, 256, 1000, 2048} {
		for si, shape := range shapes {
			src := &chunkSource{edges: edges, shapes: shape}
			rb := Rebatch(src, batch)
			if rb.Len() != len(edges) || rb.NumVertices() != 100 {
				t.Fatalf("passthrough metadata wrong")
			}
			for pass := 0; pass < 2; pass++ {
				var got []graph.Edge
				blocks := 0
				err := ForEach(rb, func(off int, blk []graph.Edge) error {
					if off != blocks*batch {
						t.Fatalf("batch=%d shape=%d: block %d starts at %d, want %d", batch, si, blocks, off, blocks*batch)
					}
					want := batch
					if rem := len(edges) - off; rem < want {
						want = rem
					}
					if len(blk) != want {
						t.Fatalf("batch=%d shape=%d: block %d has %d edges, want %d", batch, si, blocks, len(blk), want)
					}
					blocks++
					got = append(got, blk...)
					return nil
				})
				if err != nil {
					t.Fatalf("batch=%d shape=%d: %v", batch, si, err)
				}
				if len(got) != len(edges) {
					t.Fatalf("batch=%d shape=%d: %d edges, want %d", batch, si, len(got), len(edges))
				}
				for i := range got {
					if got[i] != edges[i] {
						t.Fatalf("batch=%d shape=%d: edge %d diverges", batch, si, i)
					}
				}
			}
		}
	}
}

// TestRebatchDefault: batchEdges <= 0 means BlockLen.
func TestRebatchDefault(t *testing.T) {
	src := &chunkSource{edges: seqEdges(2*BlockLen + 5), shapes: []int{999}}
	rb := Rebatch(src, 0)
	sizes := []int{}
	if err := ForEach(rb, func(off int, blk []graph.Edge) error {
		sizes = append(sizes, len(blk))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []int{BlockLen, BlockLen, 5}
	if len(sizes) != len(want) {
		t.Fatalf("blocks %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("blocks %v, want %v", sizes, want)
		}
	}
}

// TestRebatchShortStream: a base that ends before Len edges must surface
// io.ErrUnexpectedEOF, not silently truncate.
func TestRebatchShortStream(t *testing.T) {
	src := &chunkSource{edges: seqEdges(100), shapes: []int{10}, short: 15}
	rb := Rebatch(src, 32)
	err := ForEach(rb, func(off int, blk []graph.Edge) error { return nil })
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestRebatchEmpty: zero-edge sources yield EOF immediately.
func TestRebatchEmpty(t *testing.T) {
	rb := Rebatch(&chunkSource{shapes: []int{1}}, 8)
	if err := rb.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.NextBlock(); err != io.EOF {
		t.Fatalf("got %v, want io.EOF", err)
	}
}
