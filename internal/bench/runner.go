package bench

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper artefact.
type Runner func(Config) ([]Table, error)

// Experiments maps experiment names (as accepted by cmd/experiments -fig)
// to their runners.
func Experiments() map[string]Runner {
	return map[string]Runner{
		"table1": Table1,
		"3":      Fig3,
		"4":      Fig4,
		"5":      Fig5,
		"6":      Fig6,
		"7":      Fig7,
		"8":      Fig8,
		"9":      Fig9,
		"10":     Fig10,
		"11":     Fig11,
		"sec2c":  Sec2C,
	}
}

// ExperimentNames lists valid experiment names in presentation order.
func ExperimentNames() []string {
	names := make([]string, 0, len(Experiments()))
	for name := range Experiments() {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		// table1 first, then numeric.
		if names[i] == "table1" {
			return true
		}
		if names[j] == "table1" {
			return false
		}
		return len(names[i]) < len(names[j]) || (len(names[i]) == len(names[j]) && names[i] < names[j])
	})
	return names
}

// Run executes the named experiment.
func Run(name string, cfg Config) ([]Table, error) {
	r, ok := Experiments()[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (want one of %v)", name, ExperimentNames())
	}
	return r(cfg)
}

// RunAll executes every experiment in presentation order.
func RunAll(cfg Config) ([]Table, error) {
	var all []Table
	for _, name := range ExperimentNames() {
		tables, err := Run(name, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: experiment %s: %w", name, err)
		}
		all = append(all, tables...)
	}
	return all, nil
}
