package partition

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/stream"
)

// CLUGP is the paper's contribution: a three-pass restreaming vertex-cut
// partitioner (Figure 1).
//
// Pass 1 clusters vertices with the allocation-splitting-migration streaming
// algorithm (package cluster). Pass 2 maps clusters to partitions at Nash
// equilibrium of an exact potential game (package game). Pass 3 re-streams
// the edges and materializes the edge->partition assignment while enforcing
// the imbalance factor tau (Algorithm 1).
type CLUGP struct {
	// Tau is the imbalance factor: no partition may exceed tau*|E|/k edges
	// (Algorithm 1 line 2). Zero means 1.0, the paper's default.
	Tau float64
	// VmaxFactor scales the maximum cluster volume Vmax = factor*|E|/k.
	// Zero means 0.2, i.e. Vmax = |E|/(5k). The paper follows Hollocou's
	// |E|/k suggestion; our calibration (DESIGN.md) found that partitioning
	// quality needs clusters an order of magnitude finer than partitions,
	// so that the game has enough movable pieces to both balance and heal
	// inter-cluster adjacency - at factor 1.0 the transformation's balance
	// guard ends up rerouting a large share of edges.
	VmaxFactor float64
	// RelWeight is the relative weight of load balance vs edge cutting in
	// the game (Figure 11b); zero means 0.5 (equal, Equation 11).
	RelWeight float64
	// Lambda overrides the game normalization factor; zero selects the
	// Theorem 5 maximum, the paper's default.
	Lambda float64
	// BatchSize is the cluster-game batch size (default 6400, Section VI).
	BatchSize int
	// GameRestarts plays each batch game from that many random starts,
	// keeping the lowest-potential equilibrium (closing the PoA/PoS gap of
	// Theorems 7-8). Zero means 1.
	GameRestarts int
	// Threads is the number of parallel game workers (default GOMAXPROCS;
	// the paper uses 32).
	Threads int
	// MigrateMaxDegree forwards to cluster.Config.MigrateMaxDegree
	// (0 = default cap of 1; -1 = uncapped, the literal Algorithm 2).
	MigrateMaxDegree int
	// DisableSplitting yields the CLUGP-S ablation (Holl clustering).
	DisableSplitting bool
	// GreedyAssign yields the CLUGP-G ablation (size-greedy cluster
	// placement instead of the game).
	GreedyAssign bool
	// Seed drives the game's random initial strategies.
	Seed uint64
	// ScoreWorkers > 1 runs pass 3 (transformation) over the gather ->
	// score -> apply pipeline (score.go): per-shard workers pre-gather each
	// fixed batch's vertex -> partition, mirror-partition and degree lookups
	// into slot tables; the tables are read-only in pass 3, so there is no
	// apply phase. Assignments are bit-identical to the serial path for
	// every value. Usually set through OutOfCoreOptions.ScoreWorkers.
	ScoreWorkers int

	// LastTrace captures diagnostics of the most recent run (nil before).
	LastTrace *Trace

	// Sharded-scoring scratch (ScoreWorkers > 1 only).
	pipe  scorePipe
	pslot []int32  // per-slot master partition
	mslot []int32  // per-slot mirror partition, or -1
	dslot []uint32 // per-slot degree
}

// setScoreWorkers implements scoreParallel.
func (c *CLUGP) setScoreWorkers(n int) { c.ScoreWorkers = n }

// Trace exposes per-pass diagnostics of a CLUGP run for the ablation and
// parallelization experiments.
type Trace struct {
	NumClusters int
	Splits      int64
	Migrations  int64
	// IntraFraction is the share of edges with both endpoints in the same
	// cluster after pass 1 - the direct measure of clustering quality.
	IntraFraction float64
	// HealedFraction is the share of inter-cluster edges whose two clusters
	// the game co-located, so they cut nothing.
	HealedFraction float64
	GameRounds     int
	GameMoves      int64
	GameBatches    int
	Overflowed     int64 // edges rerouted by the balance guard (Alg. 1 lines 6-14)
	// Per-pass wall times: pass 1 (clustering), the cluster-graph build,
	// pass 2 (the game - the parallelized computation of Figure 10), and
	// pass 3 (transformation). Streaming passes 1 and 3 are I/O-bound in
	// the paper's accounting; the game is the compute-bound part.
	ClusterTime   time.Duration
	BuildTime     time.Duration
	GameTime      time.Duration
	TransformTime time.Duration
}

// Name implements Partitioner.
func (c *CLUGP) Name() string {
	switch {
	case c.DisableSplitting && c.GreedyAssign:
		return "CLUGP-SG"
	case c.DisableSplitting:
		return "CLUGP-S"
	case c.GreedyAssign:
		return "CLUGP-G"
	default:
		return "CLUGP"
	}
}

// PreferredOrder implements Partitioner: BFS, the natural web-crawl order
// the paper's streaming-clustering analysis assumes.
func (c *CLUGP) PreferredOrder() stream.Order { return stream.BFS }

// Partition implements Partitioner, running the three passes.
func (c *CLUGP) Partition(src stream.Source, k int) ([]int32, error) {
	return partitionVia(c, src, k)
}

// PartitionInto implements IntoPartitioner. The sink is constructed in a
// concrete call chain so it stays on the stack (zero-allocation contract).
func (c *CLUGP) PartitionInto(src stream.Source, k int, assign []int32) error {
	if err := checkInto(src, k, assign); err != nil {
		return err
	}
	sink := assignSink{assign: assign}
	return c.run(src, k, &sink)
}

// PartitionStream implements StreamingPartitioner: passes 1 and 2 keep only
// the O(|V|) mapping tables and the cluster graph, and pass 3 commits each
// transformed block as soon as its balance bookkeeping is final, so the
// full run never holds O(|E|) state. This is the paper's actual streaming
// deployment: three sequential passes over a replayable stream.
func (c *CLUGP) PartitionStream(src stream.Source, k int, emit Emit) error {
	return streamVia(c, src, k, emit)
}

// run executes the three passes, delivering pass 3's assignment to the sink.
func (c *CLUGP) run(src stream.Source, k int, sink *assignSink) error {
	tau := c.Tau
	if tau == 0 {
		tau = 1.0
	}
	if tau < 1.0 {
		return fmt.Errorf("clugp: tau must be >= 1.0, got %v", tau)
	}
	vf := c.VmaxFactor
	if vf == 0 {
		vf = 0.2
	}
	numEdges := src.Len()
	if numEdges == 0 {
		return nil
	}

	// Pass 1: streaming clustering. Vmax = vf*|E|/k, at least 2 so that
	// tiny graphs still form multi-vertex clusters.
	vmax := int64(vf * float64(numEdges) / float64(k))
	if vmax < 2 {
		vmax = 2
	}
	t0 := time.Now()
	cres, err := cluster.Run(src, cluster.Config{
		Vmax:             vmax,
		DisableSplitting: c.DisableSplitting,
		MigrateMaxDegree: c.MigrateMaxDegree,
	})
	if err != nil {
		return fmt.Errorf("clugp pass 1: %w", err)
	}
	cres.Compact()
	t1 := time.Now()

	// Pass 2: build the cluster graph and play the partitioning game.
	cg, err := cluster.BuildGraph(src, cres)
	if err != nil {
		return fmt.Errorf("clugp pass 2: %w", err)
	}
	t2 := time.Now()
	var asg *game.Assignment
	if c.GreedyAssign {
		asg = game.GreedyAssign(cg, k)
	} else {
		batch := c.BatchSize
		if batch == 0 {
			batch = 6400
		}
		asg, err = game.Solve(cg, game.Config{
			K:         k,
			Lambda:    c.Lambda,
			RelWeight: c.RelWeight,
			BatchSize: batch,
			Threads:   c.Threads,
			Restarts:  c.GameRestarts,
			Seed:      c.Seed,
		})
		if err != nil {
			return fmt.Errorf("clugp pass 2: %w", err)
		}
	}
	t3 := time.Now()

	// Pass 3: transformation (Algorithm 1).
	var overflowed int64
	if c.ScoreWorkers > 1 {
		overflowed, err = c.transformSharded(src, cres, asg.Partition, k, tau, sink)
	} else {
		overflowed, err = transform(src, cres, asg.Partition, k, tau, sink)
	}
	if err != nil {
		return fmt.Errorf("clugp pass 3: %w", err)
	}
	t4 := time.Now()

	tr := &Trace{
		NumClusters:   cres.NumClusters,
		Splits:        cres.Splits,
		Migrations:    cres.Migrations,
		GameRounds:    asg.Rounds,
		GameMoves:     asg.Moves,
		GameBatches:   asg.Batches,
		Overflowed:    overflowed,
		ClusterTime:   t1.Sub(t0),
		BuildTime:     t2.Sub(t1),
		GameTime:      t3.Sub(t2),
		TransformTime: t4.Sub(t3),
	}
	if total := cg.TotalIntra + cg.TotalInter; total > 0 {
		tr.IntraFraction = float64(cg.TotalIntra) / float64(total)
	}
	if cg.TotalInter > 0 {
		var healed int64
		for ci := 0; ci < cg.NumClusters; ci++ {
			p := asg.Partition[ci]
			for _, a := range cg.Adj[ci] {
				if asg.Partition[a.To] == p {
					healed += a.W
				}
			}
		}
		// Each co-located pair's weight got counted from both sides, and
		// arc weights already combine both edge directions.
		tr.HealedFraction = float64(healed) / float64(2*cg.TotalInter)
	}
	c.LastTrace = tr
	return nil
}

// transform implements Algorithm 1: stream the edges once more, mapping
// each through vertex->cluster->partition, with the balance guard and the
// replica-reducing rules, committing each block to the sink as soon as its
// load bookkeeping is final.
//
// The key refinement over a literal line-by-line transcription concerns
// divided vertices (lines 18-19). A vertex split in pass 1 is present in
// two partitions: that of its final cluster and that of the cluster holding
// its mirror ("e will be assigned to the partitions where u's mirror vertex
// belongs", Section III-C). The edge is therefore routed to whichever
// candidate partition creates the fewest new replicas, judging presence by
// exactly those O(1) tables - master partition and mirror partition - so
// pass 3 keeps its O(1)-per-edge budget. Ties fall back to the paper's
// cut-the-higher-degree rule (lines 21-22), then to the lighter partition.
func transform(src stream.Source, cres *cluster.Result, cpart []int32, k int, tau float64, sink *assignSink) (overflowed int64, err error) {
	numEdges := src.Len()
	sizes := make([]int64, k)
	// Lmax = ceil(tau*|E|/k): the ceiling guarantees k*Lmax >= |E| so an
	// underflow partition always exists when the guard trips.
	lmax := int64((tau*float64(numEdges) + float64(k) - 1) / float64(k))
	if lmax < 1 {
		lmax = 1
	}

	deg := cres.Degree
	// mirror partition of a vertex, or -1.
	mirrorPart := func(v graph.VertexID) int32 {
		if c := cres.SplitFrom[v]; c != cluster.None {
			return cpart[c]
		}
		return -1
	}

	err = forEachBlock(src, func(blk []graph.Edge) error {
		out := sink.grab(len(blk))
		for j, e := range blk {
			u, v := e.Src, e.Dst
			pu := cpart[cres.Assign[u]]
			pv := cpart[cres.Assign[v]]

			var p int32
			if sizes[pu] >= lmax || sizes[pv] >= lmax {
				// Balance guard (lines 6-14): reroute to an underflow
				// partition, preferring the endpoints' own partitions.
				overflowed++
				switch {
				case sizes[pu] < lmax:
					p = pu
				case sizes[pv] < lmax:
					p = pv
				default:
					p = leastLoadedAll(sizes)
				}
			} else if pu == pv {
				// Same partition: no cut (lines 15-16).
				p = pu
			} else {
				mu, mv := mirrorPart(u), mirrorPart(v)
				// presentU(p): u exists at p already (master or mirror copy).
				presentU := func(p int32) bool { return p == pu || p == mu }
				presentV := func(p int32) bool { return p == pv || p == mv }
				// Candidates: each endpoint's master partition, plus mirror
				// partitions when they host the other endpoint too.
				bestCost := int32(3)
				pick := func(cand int32, cost int32) {
					if cand < 0 || sizes[cand] >= lmax {
						return
					}
					if cost < bestCost || (cost == bestCost && sizes[cand] < sizes[p]) {
						bestCost = cost
						p = cand
					}
				}
				p = pu
				cost := func(cand int32) int32 {
					c := int32(0)
					if !presentU(cand) {
						c++
					}
					if !presentV(cand) {
						c++
					}
					return c
				}
				// Degree rule ordering (lines 21-22): evaluating the
				// lower-degree endpoint's partition first makes it win ties,
				// cutting the higher-degree endpoint.
				if deg[v] > deg[u] {
					pick(pu, cost(pu))
					pick(pv, cost(pv))
				} else {
					pick(pv, cost(pv))
					pick(pu, cost(pu))
				}
				pick(mu, cost(mu))
				pick(mv, cost(mv))
			}
			out[j] = p
			sizes[p]++
		}
		return sink.commit(blk, out)
	})
	return overflowed, err
}

// transformSharded is transform with the per-edge table lookups - vertex ->
// cluster -> partition, mirror partition, degree - pre-gathered per fixed
// batch by one worker per vertex-range shard (score.go). The mapping tables
// are read-only during pass 3, so the pipeline runs gather -> score with no
// apply phase; the score loop is the serial loop verbatim reading slots.
// Bit-identical to transform for every ScoreWorkers value.
func (c *CLUGP) transformSharded(src stream.Source, cres *cluster.Result, cpart []int32, k int, tau float64, sink *assignSink) (overflowed int64, err error) {
	numEdges := src.Len()
	sizes := make([]int64, k)
	lmax := int64((tau*float64(numEdges) + float64(k) - 1) / float64(k))
	if lmax < 1 {
		lmax = 1
	}
	deg := cres.Degree

	sp := &c.pipe
	sp.begin(src.NumVertices(), c.ScoreWorkers)
	defer sp.stop()
	gather := func(sh int, verts []graph.VertexID, slots []int32) {
		for i, v := range verts {
			s := slots[i]
			c.pslot[s] = cpart[cres.Assign[v]]
			if cl := cres.SplitFrom[v]; cl != cluster.None {
				c.mslot[s] = cpart[cl]
			} else {
				c.mslot[s] = -1
			}
			c.dslot[s] = deg[v]
		}
	}

	err = forEachBlock(stream.Rebatch(src, 0), func(blk []graph.Edge) error {
		sp.prepare(blk)
		c.pslot = growInt32(c.pslot, sp.nslots)
		c.mslot = growInt32(c.mslot, sp.nslots)
		c.dslot = growUint32(c.dslot, sp.nslots)
		sp.do(gather)
		out := sink.grab(len(blk))
		for j := range blk {
			su, sv := sp.su[j], sp.sv[j]
			pu := c.pslot[su]
			pv := c.pslot[sv]

			var p int32
			if sizes[pu] >= lmax || sizes[pv] >= lmax {
				overflowed++
				switch {
				case sizes[pu] < lmax:
					p = pu
				case sizes[pv] < lmax:
					p = pv
				default:
					p = leastLoadedAll(sizes)
				}
			} else if pu == pv {
				p = pu
			} else {
				mu, mv := c.mslot[su], c.mslot[sv]
				presentU := func(p int32) bool { return p == pu || p == mu }
				presentV := func(p int32) bool { return p == pv || p == mv }
				bestCost := int32(3)
				pick := func(cand int32, cost int32) {
					if cand < 0 || sizes[cand] >= lmax {
						return
					}
					if cost < bestCost || (cost == bestCost && sizes[cand] < sizes[p]) {
						bestCost = cost
						p = cand
					}
				}
				p = pu
				cost := func(cand int32) int32 {
					cc := int32(0)
					if !presentU(cand) {
						cc++
					}
					if !presentV(cand) {
						cc++
					}
					return cc
				}
				if c.dslot[sv] > c.dslot[su] {
					pick(pu, cost(pu))
					pick(pv, cost(pv))
				} else {
					pick(pv, cost(pv))
					pick(pu, cost(pu))
				}
				pick(mu, cost(mu))
				pick(mv, cost(mv))
			}
			out[j] = p
			sizes[p]++
		}
		return sink.commit(blk, out)
	})
	return overflowed, err
}

// StateBytes implements StateSizer. CLUGP's standing state is the two
// mapping tables (vertex->cluster at 4 bytes/vertex, cluster->partition at
// <= 4 bytes/vertex) plus the degree array and divided marks - the O(2|V|)
// of Section III - plus the per-worker game scratch.
func (c *CLUGP) StateBytes(numVertices, numEdges, k int) int64 {
	perVertex := int64(numVertices) * (4 + 4 + 4 + 1) // cluster id, cluster->partition, degree, divided
	threads := c.Threads
	if threads <= 0 {
		threads = 8
	}
	// Each game worker holds k loads and a k-sized scratch.
	gameState := int64(threads) * int64(k) * 16
	return perVertex + gameState + int64(k)*8
}
