package metrics

import (
	"testing"

	"repro/internal/graph"
)

// These tests pin behaviour exactly at the 64-bit word boundary of the
// replica bitsets: k=64 is the largest single-word geometry (the top bit of
// word 0 is partition 63), k=128 the largest two-word one. Off-by-one bugs
// in word sizing, cloning or merging surface precisely here - a table that
// rounds (k+63)/64 wrong, clones one word short, or merges past a vertex's
// last word corrupts partition 63/64/127 first.

// boundaryPartitions are the partition ids that straddle word edges for a
// given k.
func boundaryPartitions(k int) []int {
	ps := []int{0, 62, 63}
	if k > 64 {
		ps = append(ps, 64, 65, k-1)
	}
	return ps
}

func TestEvaluatorCloneBoundary(t *testing.T) {
	for _, k := range []int{64, 128} {
		const n = 10
		var ev Evaluator
		ev.Begin(n, k)
		// Observe edges whose assignments hit every word-edge partition.
		var edges []graph.Edge
		var assign []int32
		for i, p := range boundaryPartitions(k) {
			v := graph.VertexID(i % n)
			edges = append(edges, graph.Edge{Src: v, Dst: (v + 1) % n})
			assign = append(assign, int32(p))
		}
		if err := ev.Observe(edges, assign); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}

		c := ev.Clone()

		// The clone starts bit-identical: same word content for every vertex,
		// including the top word holding partition k-1.
		for v := 0; v < n; v++ {
			for w := 0; w < ev.rs.Words(); w++ {
				if got, want := c.rs.Word(graph.VertexID(v), w), ev.rs.Word(graph.VertexID(v), w); got != want {
					t.Fatalf("k=%d: clone vertex %d word %d = %#x, want %#x", k, v, w, got, want)
				}
			}
		}

		// Diverge: the original gets partition k-1 on vertex 9, the clone
		// partition 0 on vertex 8. Neither write may leak into the other -
		// value-copied evaluators would fail exactly this (shared bits slice).
		last := []graph.Edge{{Src: 9, Dst: 9}}
		if err := ev.Observe(last, []int32{int32(k - 1)}); err != nil {
			t.Fatal(err)
		}
		if err := c.Observe([]graph.Edge{{Src: 8, Dst: 8}}, []int32{0}); err != nil {
			t.Fatal(err)
		}
		if c.rs.Has(9, k-1) {
			t.Errorf("k=%d: original's post-clone write to partition %d leaked into the clone", k, k-1)
		}
		if !ev.rs.Has(9, k-1) {
			t.Errorf("k=%d: original lost its own write to partition %d", k, k-1)
		}
		if ev.rs.Has(8, 0) && !eqObserved(&ev, 8, 0, edges, assign) {
			t.Errorf("k=%d: clone's write to vertex 8 leaked into the original", k)
		}

		// Both finish with internally consistent quality, and their totals
		// differ by exactly the divergent observations.
		qo, qc := ev.Finish(), c.Finish()
		if qo.Sizes[k-1] != qc.Sizes[k-1]+1 {
			t.Errorf("k=%d: sizes[%d] = %d (original) vs %d (clone)", k, k-1, qo.Sizes[k-1], qc.Sizes[k-1])
		}
		if qo.Sizes[0]+1 != qc.Sizes[0] {
			t.Errorf("k=%d: sizes[0] = %d (original) vs %d (clone)", k, qo.Sizes[0], qc.Sizes[0])
		}
	}
}

// eqObserved reports whether (v, p) was among the shared pre-clone
// observations, in which case seeing it in the original is not leakage.
func eqObserved(ev *Evaluator, v graph.VertexID, p int, edges []graph.Edge, assign []int32) bool {
	for i, e := range edges {
		if (e.Src == v || e.Dst == v) && int(assign[i]) == p {
			return true
		}
	}
	return false
}

func TestShardedMergeBoundary(t *testing.T) {
	for _, k := range []int{64, 128} {
		const n, shards = 130, 4
		a := NewShardedReplicaSets(n, k, shards)
		b := NewShardedReplicaSets(n, k, shards)

		// a and b get disjoint halves of the boundary bits on vertices that
		// themselves sit at shard edges (0, span-1, span, n-1).
		span := (n + shards - 1) / shards
		verts := []graph.VertexID{0, graph.VertexID(span - 1), graph.VertexID(span), n - 1}
		ps := boundaryPartitions(k)
		for i, v := range verts {
			for j, p := range ps {
				if (i+j)%2 == 0 {
					a.Add(v, p)
				} else {
					b.Add(v, p)
				}
			}
		}

		if err := a.Merge(b); err != nil {
			t.Fatalf("k=%d: Merge: %v", k, err)
		}

		// After the merge, a holds the union; b is untouched.
		for i, v := range verts {
			for j, p := range ps {
				if !a.Has(v, p) {
					t.Errorf("k=%d: merged table missing vertex %d partition %d", k, v, p)
				}
				if fromA := (i+j)%2 == 0; b.Has(v, p) == fromA {
					t.Errorf("k=%d: merge mutated its argument at vertex %d partition %d", k, v, p)
				}
			}
			// No stray bits: the union on these vertices is exactly ps.
			if got, want := a.Count(v), len(ps); got != want {
				t.Errorf("k=%d: vertex %d count = %d after merge, want %d", k, v, got, want)
			}
		}
		// Word-level check at the top word: partition k-1's bit lands in the
		// last word, bit (k-1)%64.
		topWord := (k - 1) / 64
		topBit := uint64(1) << uint((k-1)%64)
		for _, v := range verts {
			if a.Word(v, topWord)&topBit == 0 {
				t.Errorf("k=%d: vertex %d top word missing partition %d's bit", k, v, k-1)
			}
		}

		// Geometry mismatches reject: different k, n and shard count.
		for _, bad := range []*ShardedReplicaSets{
			NewShardedReplicaSets(n, k/2, shards),
			NewShardedReplicaSets(n+1, k, shards),
			NewShardedReplicaSets(n, k, shards+1),
		} {
			if err := a.Merge(bad); err == nil {
				t.Errorf("k=%d: Merge accepted mismatched geometry", k)
			}
		}
	}
}
