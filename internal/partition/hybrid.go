package partition

import (
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// HybridCut is PowerLyra's differentiated partitioning (Chen et al.,
// TOPC 2019; cited in the paper's introduction as one of the systems
// motivating vertex-cut): low-degree vertices keep all their in-edges
// together (hashed by target, edge-cut style), while high-degree vertices'
// in-edges are spread by source (vertex-cut style), since hubs must be
// replicated anyway. The degree threshold separates the two regimes; the
// streaming variant uses partial in-degrees. The in-degree table is scratch
// reused across runs.
type HybridCut struct {
	// Threshold is the in-degree above which a target counts as
	// high-degree (default 100, PowerLyra's typical setting).
	Threshold uint32
	Seed      uint64

	indeg []uint32
}

// Name implements Partitioner.
func (h *HybridCut) Name() string { return "Hybrid" }

// PreferredOrder implements Partitioner.
func (h *HybridCut) PreferredOrder() stream.Order { return stream.Random }

// Partition implements Partitioner.
func (h *HybridCut) Partition(src stream.Source, k int) ([]int32, error) {
	return partitionVia(h, src, k)
}

// PartitionInto implements IntoPartitioner. The sink is constructed in a
// concrete call chain so it stays on the stack (zero-allocation contract).
func (h *HybridCut) PartitionInto(src stream.Source, k int, assign []int32) error {
	if err := checkInto(src, k, assign); err != nil {
		return err
	}
	sink := assignSink{assign: assign}
	return h.run(src, k, &sink)
}

// PartitionStream implements StreamingPartitioner.
func (h *HybridCut) PartitionStream(src stream.Source, k int, emit Emit) error {
	return streamVia(h, src, k, emit)
}

func (h *HybridCut) run(src stream.Source, k int, sink *assignSink) error {
	threshold := h.Threshold
	if threshold == 0 {
		threshold = 100
	}
	h.indeg = resetUint32(h.indeg, src.NumVertices())
	indeg := h.indeg
	kk := uint64(k)
	return forEachBlock(src, func(blk []graph.Edge) error {
		out := sink.grab(len(blk))
		for j, e := range blk {
			indeg[e.Dst]++
			if indeg[e.Dst] > threshold {
				// High-degree target: spread by source (vertex-cut the hub).
				out[j] = int32(xrand.Hash64(uint64(e.Src)^h.Seed) % kk)
			} else {
				// Low-degree target: keep its in-edges together.
				out[j] = int32(xrand.Hash64(uint64(e.Dst)^h.Seed) % kk)
			}
		}
		return sink.commit(blk, out)
	})
}

// StateBytes implements StateSizer: one in-degree counter per vertex.
func (h *HybridCut) StateBytes(numVertices, numEdges, k int) int64 {
	return int64(numVertices) * 4
}

// Grid is the 2D constrained hashing partitioner (GraphBuilder / the
// "grid" heuristic PowerGraph ships): partitions form a sqrt(k) x sqrt(k)
// grid; each vertex hashes to a row and a column, and an edge goes to a
// partition in the intersection of its endpoints' constraint sets. Every
// vertex's replicas are confined to one row plus one column, bounding
// |P(v)| <= 2*sqrt(k)-1 by construction.
type Grid struct {
	Seed uint64
}

// Name implements Partitioner.
func (g *Grid) Name() string { return "Grid" }

// PreferredOrder implements Partitioner.
func (g *Grid) PreferredOrder() stream.Order { return stream.Random }

// Partition implements Partitioner. Grid semantics need a square layout,
// so the algorithm uses the largest perfect square side*side <= k and
// leaves any leftover partitions empty - the standard implementation
// choice; pick square k for meaningful balance numbers.
func (g *Grid) Partition(src stream.Source, k int) ([]int32, error) {
	return partitionVia(g, src, k)
}

// PartitionInto implements IntoPartitioner. The sink is constructed in a
// concrete call chain so it stays on the stack (zero-allocation contract).
func (g *Grid) PartitionInto(src stream.Source, k int, assign []int32) error {
	if err := checkInto(src, k, assign); err != nil {
		return err
	}
	sink := assignSink{assign: assign}
	return g.run(src, k, &sink)
}

// PartitionStream implements StreamingPartitioner.
func (g *Grid) PartitionStream(src stream.Source, k int, emit Emit) error {
	return streamVia(g, src, k, emit)
}

func (g *Grid) run(src stream.Source, k int, sink *assignSink) error {
	side := 1
	for (side+1)*(side+1) <= k {
		side++
	}
	ss := uint64(side)
	return forEachBlock(src, func(blk []graph.Edge) error {
		out := sink.grab(len(blk))
		for j, e := range blk {
			ru := xrand.Hash64(uint64(e.Src)^g.Seed) % ss        // u's row
			cv := xrand.Hash64(uint64(e.Dst)^g.Seed^0xbeef) % ss // v's column
			out[j] = int32(ru*ss + cv)                           // intersection cell
		}
		return sink.commit(blk, out)
	})
}

// StateBytes implements StateSizer: stateless like Hashing.
func (g *Grid) StateBytes(numVertices, numEdges, k int) int64 { return 0 }
