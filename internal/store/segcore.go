package store

import (
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/graph"
	"repro/internal/stream"
)

// segCore is the streaming state machine shared by both file backends:
// the cursor-positioned decoder, the [lo,hi) segment window, the captured
// resume point that makes Reset a seek, and the lazily built checkpoint
// index segments are opened through. Backends differ only in how cursors
// and OS resources are obtained, which they express through newScanCursor
// (for the index scan) and their own Segment/Close methods.
type segCore struct {
	path   string
	size   int64
	dec    decoder
	closed bool

	nv int
	ne int

	// Segment bounds in global edge indices; a root source spans [0, ne).
	lo, hi int
	// Decoder state at edge lo, captured once so Reset is a cursor seek.
	startOff int64
	startSt  decState

	pos int // global index of the next edge to decode
	buf *[]graph.Edge

	// Integrity state of a checksummed (CGR3) file: integ is the parsed
	// trailer plus the verified-block bitmap, shared by the root and every
	// segment so each block is proven once; raw is this handle's own raw
	// byte access for verification reads. Both are nil for CGR1/CGR2.
	integ *integrity
	raw   io.ReaderAt

	// Checkpoint index, owned by the root and shared by all segments.
	// idx[i] is the decoder state before edge i*indexStride. newScanCursor
	// returns a private cursor for extending it (plus optional cleanup);
	// it must never disturb any streaming cursor.
	idxMu         sync.Mutex
	idx           []checkpoint
	idxDone       bool
	newScanCursor func() (cursor, func(), error)
}

// indexStride is the edge spacing of seek checkpoints: fine enough that a
// segment open decodes at most a few thousand throwaway edges, coarse
// enough that the index is ~1000x smaller than the edges it indexes.
const indexStride = 4096

// checkpoint is a resume point: the byte offset of the next token and the
// full delta-decoder state before edge i*indexStride.
type checkpoint struct {
	off int64
	st  decState
}

// initIntegrity sniffs the magic through r and, when the file is in a
// checksummed format, eagerly parses and validates the integrity trailer
// (footer magic, trailer CRC, block geometry); the payload blocks verify
// lazily on the decode path. r becomes the handle's verification reader.
// Must run before the decode cursor is built: the cursor's byte bound
// (payLimit) depends on whether a trailer exists. A file too short for a
// magic is left for initHeader to reject.
func (s *segCore) initIntegrity(r io.ReaderAt) error {
	var head [4]byte
	if err := readFullAt(r, head[:], 0); err != nil {
		return nil
	}
	if head != magic3 {
		return nil
	}
	g, err := parseTrailer(r, s.size, s.path)
	if err != nil {
		return err
	}
	s.integ, s.raw = g, r
	return nil
}

// initHeader reads and validates the header through the core's cursor and
// primes the root state (full range, first checkpoint).
func (s *segCore) initHeader() error {
	format, nv, ne, err := readHeader(&s.dec.cur)
	if err != nil {
		return fmt.Errorf("store: %s: %w", s.path, err)
	}
	s.dec.format = format
	s.dec.nv = int64(nv)
	s.dec.ne = int64(ne)
	s.nv, s.ne = nv, ne
	s.hi = s.ne
	s.startOff = s.dec.cur.abs()
	s.idx = append(s.idx, checkpoint{off: s.startOff})
	return nil
}

// payLimit is the byte bound decode cursors run under: the checksummed
// payload for CGR3 (the trailer must never enter a decode window), the
// whole file otherwise.
func (s *segCore) payLimit() int64 {
	if s.integ != nil {
		return s.integ.payloadLen
	}
	return s.size
}

// Verify proves every payload block of a checksummed file against its
// recorded CRC32C, in order, reporting the first corrupt block. Files in
// pre-integrity formats return ErrNoChecksums. Blocks already proven by
// the lazy decode path are not re-read.
func (s *segCore) Verify() error {
	if s.closed {
		return fmt.Errorf("store: %s: %w", s.path, os.ErrClosed)
	}
	if s.integ == nil {
		return ErrNoChecksums
	}
	return s.integ.verifyAll(s.raw)
}

// NumVertices implements stream.Source.
func (s *segCore) NumVertices() int { return s.nv }

// Len implements stream.Source: the edge count of this source's range.
func (s *segCore) Len() int { return s.hi - s.lo }

// Path returns the file the source streams from.
func (s *segCore) Path() string { return s.path }

// Format returns the on-disk encoding.
func (s *segCore) Format() Format { return s.dec.format }

// SizeBytes returns the on-disk file size.
func (s *segCore) SizeBytes() int64 { return s.size }

// Reset implements stream.Source: the decoder state at the segment's first
// edge was captured when the source was opened, so Reset is a cursor seek
// (a pointer rewind when the offset is inside the mapping or window).
func (s *segCore) Reset() error {
	if s.closed {
		return fmt.Errorf("store: %s: %w", s.path, os.ErrClosed)
	}
	s.dec.seek(s.startOff, s.startSt)
	s.pos = s.lo
	return nil
}

// NextBlock implements stream.Source, decoding up to stream.BlockLen edges
// into a pooled buffer. On a checksummed file the byte range the block
// decoded from is proven against its CRCs before the block is returned, and
// a stream that ends at the file's last edge proves every remaining block
// at EOF - so completing the stream certifies the whole payload, and no
// block built from corrupt bytes is ever handed out.
func (s *segCore) NextBlock() ([]graph.Edge, error) {
	if s.pos >= s.hi {
		if s.integ != nil && s.hi == s.ne && !s.closed {
			if err := s.integ.verifyAll(s.raw); err != nil {
				return nil, err
			}
		}
		return nil, io.EOF
	}
	if s.closed {
		return nil, fmt.Errorf("store: %s: %w", s.path, os.ErrClosed)
	}
	if s.buf == nil {
		s.buf = blockPool.Get().(*[]graph.Edge)
	}
	buf := *s.buf
	n := s.hi - s.pos
	if n > stream.BlockLen {
		n = stream.BlockLen
	}
	from := s.dec.cur.abs()
	for j := 0; j < n; j++ {
		e, err := s.dec.next(s.pos + j)
		if err != nil {
			return nil, err
		}
		buf[j] = e
	}
	if s.integ != nil {
		if err := s.integ.verifyRange(s.raw, from, s.dec.cur.abs()); err != nil {
			return nil, err
		}
	}
	s.pos += n
	return buf[:n], nil
}

// segmentWindow validates [lo,hi) relative to this source and positions
// seg - a fresh core whose cursor is already constructed by the backend -
// at global edge lo exactly: seek to the nearest root checkpoint, roll
// forward, capture the resume point. root is the core that owns the
// checkpoint index.
func (s *segCore) segmentWindow(root, seg *segCore, lo, hi int) error {
	if s.closed {
		return fmt.Errorf("store: %s: %w", s.path, os.ErrClosed)
	}
	if lo < 0 || hi < lo || hi > s.Len() {
		return fmt.Errorf("store: %s: segment [%d,%d) out of range (len %d)", s.path, lo, hi, s.Len())
	}
	glo, ghi := s.lo+lo, s.lo+hi
	cp, cpEdge, err := root.checkpointFor(glo)
	if err != nil {
		return err
	}
	seg.path, seg.size = s.path, s.size
	seg.nv, seg.ne = s.nv, s.ne
	seg.lo, seg.hi = glo, ghi
	seg.integ = s.integ
	seg.dec.format, seg.dec.nv, seg.dec.ne = s.dec.format, s.dec.nv, s.dec.ne
	seg.dec.seek(cp.off, cp.st)
	// Roll forward from the checkpoint to the segment's first edge so Reset
	// becomes a plain seek afterwards.
	for i := cpEdge; i < glo; i++ {
		if _, err := seg.dec.next(i); err != nil {
			return err
		}
	}
	// The roll-forward fixed the segment's resume point from these bytes;
	// prove them before any edge positioned by them is served.
	if seg.integ != nil {
		if err := seg.integ.verifyRange(seg.raw, cp.off, seg.dec.cur.abs()); err != nil {
			return err
		}
	}
	seg.startOff = seg.dec.cur.abs()
	seg.startSt = seg.dec.st
	seg.pos = glo
	return nil
}

// checkpointFor returns the densest checkpoint at or before the global edge
// index, extending the index with a sequential scan if it does not reach
// that far yet. Must be called on the root core.
func (s *segCore) checkpointFor(edge int) (checkpoint, int, error) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	want := edge / indexStride
	if want >= len(s.idx) && !s.idxDone {
		if err := s.extendIndexLocked(want); err != nil {
			return checkpoint{}, 0, err
		}
	}
	if want >= len(s.idx) {
		want = len(s.idx) - 1
	}
	return s.idx[want], want * indexStride, nil
}

// extendIndexLocked scans forward from the last checkpoint until the index
// holds entry target (or the stream ends), recording a checkpoint every
// indexStride edges. The scan decodes through a private cursor from
// newScanCursor. Called with idxMu held.
func (s *segCore) extendIndexLocked(target int) error {
	cur, cleanup, err := s.newScanCursor()
	if err != nil {
		return err
	}
	if cleanup != nil {
		defer cleanup()
	}
	d := decoder{cur: cur, format: s.dec.format, nv: s.dec.nv, ne: s.dec.ne}
	last := s.idx[len(s.idx)-1]
	d.seek(last.off, last.st)
	for i := (len(s.idx) - 1) * indexStride; len(s.idx) <= target; i++ {
		if i >= s.ne {
			s.idxDone = true
			return nil
		}
		if _, err := d.next(i); err != nil {
			return err
		}
		if (i+1)%indexStride == 0 {
			s.idx = append(s.idx, checkpoint{off: d.cur.abs(), st: d.st})
		}
	}
	return nil
}

// markClosed flips the handle closed and returns its decode buffer to the
// pool; it reports whether this call was the one that closed the handle.
// Closing invalidates any block the last NextBlock handed out (the buffer
// may be recycled to another source immediately).
func (s *segCore) markClosed() bool {
	if s.closed {
		return false
	}
	s.closed = true
	if s.buf != nil {
		blockPool.Put(s.buf)
		s.buf = nil
	}
	return true
}
