package edgecut

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// LDG is the Linear Deterministic Greedy streaming vertex partitioner of
// Stanton and Kliot (KDD 2012): vertices arrive with their adjacency lists;
// each goes to the partition holding most of its already-placed neighbours,
// weighted by a linear capacity penalty (1 - |p|/C).
type LDG struct {
	// Slack scales each partition's capacity C = Slack * |V|/k
	// (default 1.0: strict balance).
	Slack float64
}

// Name implements Partitioner.
func (l *LDG) Name() string { return "LDG" }

// Partition implements Partitioner: vertices stream in id order (the
// crawl order of our generators) with their undirected adjacency.
func (l *LDG) Partition(g *graph.Graph, k int) ([]int32, error) {
	if k < 1 {
		return nil, fmt.Errorf("edgecut: k must be >= 1, got %d", k)
	}
	slack := l.Slack
	if slack == 0 {
		slack = 1.0
	}
	csr := graph.BuildUndirectedCSR(g)
	assign := make([]int32, g.NumVertices)
	for v := range assign {
		assign[v] = -1
	}
	sizes := make([]int64, k)
	capacity := slack * float64(g.NumVertices) / float64(k)
	neighCount := make([]int32, k)

	for v := 0; v < g.NumVertices; v++ {
		for p := range neighCount {
			neighCount[p] = 0
		}
		for _, w := range csr.Neigh(graph.VertexID(v)) {
			if p := assign[w]; p >= 0 {
				neighCount[p]++
			}
		}
		best := int32(0)
		bestScore := math.Inf(-1)
		for p := 0; p < k; p++ {
			penalty := 1 - float64(sizes[p])/capacity
			if penalty < 0 {
				penalty = 0
			}
			score := float64(neighCount[p]) * penalty
			// Tie-break to the least-loaded partition so empty-neighbour
			// vertices spread out.
			if score > bestScore || (score == bestScore && sizes[p] < sizes[best]) {
				bestScore = score
				best = int32(p)
			}
		}
		assign[v] = best
		sizes[best]++
	}
	return assign, nil
}

// FENNEL is the streaming vertex partitioner of Tsourakakis et al. (WSDM
// 2014): it places each vertex to maximize (neighbours in p) minus the
// marginal cost of the partition-size term alpha*gamma*|p|^(gamma-1), a
// relaxation of modularity-style objectives.
type FENNEL struct {
	// Gamma is the size-cost exponent (default 1.5, the paper's choice).
	Gamma float64
	// Balance bounds partition size at Balance*|V|/k (default 1.1).
	Balance float64
}

// Name implements Partitioner.
func (f *FENNEL) Name() string { return "FENNEL" }

// Partition implements Partitioner.
func (f *FENNEL) Partition(g *graph.Graph, k int) ([]int32, error) {
	if k < 1 {
		return nil, fmt.Errorf("edgecut: k must be >= 1, got %d", k)
	}
	gamma := f.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	balance := f.Balance
	if balance == 0 {
		balance = 1.1
	}
	n := float64(g.NumVertices)
	m := float64(g.NumEdges())
	if m == 0 {
		return make([]int32, g.NumVertices), nil
	}
	// alpha = sqrt(k) * m / n^gamma, the FENNEL paper's recommended value.
	alpha := math.Sqrt(float64(k)) * m / math.Pow(n, gamma)

	csr := graph.BuildUndirectedCSR(g)
	assign := make([]int32, g.NumVertices)
	for v := range assign {
		assign[v] = -1
	}
	sizes := make([]int64, k)
	maxSize := int64(balance * n / float64(k))
	if maxSize < 1 {
		maxSize = 1
	}
	neighCount := make([]int32, k)

	for v := 0; v < g.NumVertices; v++ {
		for p := range neighCount {
			neighCount[p] = 0
		}
		for _, w := range csr.Neigh(graph.VertexID(v)) {
			if p := assign[w]; p >= 0 {
				neighCount[p]++
			}
		}
		best := int32(-1)
		bestScore := math.Inf(-1)
		for p := 0; p < k; p++ {
			if sizes[p] >= maxSize {
				continue
			}
			// Marginal objective: neighbours gained minus marginal size
			// cost d/ds [alpha*s^gamma] = alpha*gamma*s^(gamma-1).
			score := float64(neighCount[p]) - alpha*gamma*math.Pow(float64(sizes[p]), gamma-1)
			if score > bestScore {
				bestScore = score
				best = int32(p)
			}
		}
		if best < 0 { // all partitions at the balance cap: least loaded
			best = 0
			for p := 1; p < k; p++ {
				if sizes[p] < sizes[best] {
					best = int32(p)
				}
			}
		}
		assign[v] = best
		sizes[best]++
	}
	return assign, nil
}
