package serve

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Server serves partition lookups over the current Snapshot and swaps in new
// snapshots with zero downtime. The entire mutable state is one
// atomic.Pointer: a query loads the pointer exactly once and answers wholly
// from that snapshot, so every response is consistent with exactly one
// epoch - a reload mid-request cannot mix old replica bits with new sizes.
// Install builds the next snapshot off-thread (the caller's goroutine) and
// publishes it with a single pointer store; readers never block and old
// epochs die by garbage collection once their in-flight queries return.
//
// Reloads degrade gracefully: a loader failure - or a snapshot whose
// geometry does not match what is serving - never replaces the serving
// snapshot. The server keeps answering from the last good epoch, counts
// consecutive failures, exposes the last error via Stats and /v1/readyz
// (which turns 503 once the failure streak passes the policy threshold),
// and, with AutoRetry enabled, keeps retrying the reload on a capped
// exponential backoff until one succeeds.
type Server struct {
	cur    atomic.Pointer[Snapshot]
	epoch  atomic.Uint64
	mu     sync.Mutex // serializes Reload (loader + install), not queries
	loader func() (*Snapshot, error)

	// Degradation state. failures counts consecutive reload failures since
	// the last success; lastErr holds the most recent failure's message
	// (nil after a success); maxFailures is the readiness threshold.
	failures    atomic.Int64
	lastErr     atomic.Pointer[string]
	maxFailures atomic.Int64

	retryMu sync.Mutex
	kick    chan struct{} // non-nil while an AutoRetry goroutine runs
}

// DefaultMaxReloadFailures is the readiness threshold when no RetryPolicy
// sets one: /v1/readyz reports degraded after this many consecutive reload
// failures.
const DefaultMaxReloadFailures = 3

// NewServer returns a server with initial installed as epoch 1.
func NewServer(initial *Snapshot) *Server {
	s := &Server{}
	s.maxFailures.Store(DefaultMaxReloadFailures)
	s.Install(initial)
	return s
}

// Install publishes snap as the new current snapshot under the next epoch
// and returns the installed copy. The argument is copied (shallowly - the
// immutable tables are shared) so the same prepared Snapshot value can be
// installed repeatedly, and so nothing ever writes to a snapshot that
// readers already hold.
func (s *Server) Install(snap *Snapshot) *Snapshot {
	next := *snap
	next.epoch = s.epoch.Add(1)
	s.cur.Store(&next)
	return &next
}

// Current returns the snapshot serving queries right now.
func (s *Server) Current() *Snapshot { return s.cur.Load() }

// SetLoader registers the function Reload uses to build the next snapshot
// (typically: re-read the result file, NewSnapshot). The loader runs outside
// any lock held by queries; only concurrent Reloads serialize.
func (s *Server) SetLoader(fn func() (*Snapshot, error)) {
	s.mu.Lock()
	s.loader = fn
	s.mu.Unlock()
}

// Reload builds the next snapshot via the registered loader and installs
// it. Queries keep answering from the old epoch for the whole build; the
// switch is the single pointer store inside Install.
//
// A reload can only refresh the partitioning it is already serving: a
// snapshot whose vertex count or partition count differs from the current
// epoch is rejected (clients cache geometry; swapping it under them turns
// every cached partition id into a lie - changing geometry takes a restart).
// Any failure - loader error or geometry mismatch - leaves the serving
// snapshot untouched, increments the consecutive-failure count behind
// Stats and /v1/readyz, and nudges the AutoRetry loop if one is running.
// Install bypasses the guard: it is the force-install primitive for boot
// and for operators who mean it.
func (s *Server) Reload() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.loader == nil {
		return nil, fmt.Errorf("serve: no loader registered")
	}
	snap, err := s.loader()
	if err != nil {
		err = fmt.Errorf("serve: reload: %w", err)
		s.reloadFailed(err)
		return nil, err
	}
	if cur := s.cur.Load(); cur != nil && (snap.numVertices != cur.numVertices || snap.k != cur.k) {
		err := fmt.Errorf("serve: reload rejected: snapshot geometry %dv/%dk does not match serving %dv/%dk (restart to change geometry)",
			snap.numVertices, snap.k, cur.numVertices, cur.k)
		s.reloadFailed(err)
		return nil, err
	}
	s.failures.Store(0)
	s.lastErr.Store(nil)
	return s.Install(snap), nil
}

// reloadFailed records one failed reload and wakes the retry loop.
func (s *Server) reloadFailed(err error) {
	msg := err.Error()
	s.lastErr.Store(&msg)
	s.failures.Add(1)
	s.retryMu.Lock()
	if s.kick != nil {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	s.retryMu.Unlock()
}

// LastReloadError returns the most recent reload failure, or "" after a
// success (or before any reload).
func (s *Server) LastReloadError() string {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// ReloadFailures returns the consecutive reload failures since the last
// successful reload.
func (s *Server) ReloadFailures() int64 { return s.failures.Load() }

// Ready reports whether the server is within its failure budget: false once
// the consecutive-failure streak reaches the policy threshold. Queries keep
// being answered either way - readiness is what load balancers use to drain
// a replica whose data is going stale.
func (s *Server) Ready() bool { return s.failures.Load() < s.maxFailures.Load() }

// RetryPolicy tunes the automatic reload retry AutoRetry runs after a
// failed reload.
type RetryPolicy struct {
	// Base is the delay before the first retry. <= 0 disables the retry
	// goroutine (failures then only recover via the next explicit reload).
	Base time.Duration
	// Cap bounds the exponential backoff; <= 0 means 32x Base.
	Cap time.Duration
	// Jitter spreads each delay uniformly over [d*(1-Jitter), d*(1+Jitter)]
	// so a fleet of replicas does not hammer shared storage in lockstep.
	// Clamped to [0, 1].
	Jitter float64
	// MaxFailures is the consecutive-failure count at which Ready() and
	// /v1/readyz report degraded; <= 0 keeps DefaultMaxReloadFailures.
	MaxFailures int
}

// AutoRetry starts a goroutine that retries failed reloads on a capped
// exponential backoff with jitter: each reload failure arms it, each retry
// that fails doubles the delay (up to policy.Cap), and the first success
// disarms it until the next failure. The returned stop function terminates
// the goroutine (idempotent per call site; call it on shutdown). The
// policy's MaxFailures takes effect even when Base <= 0 disables retrying.
func (s *Server) AutoRetry(policy RetryPolicy) (stop func()) {
	if policy.MaxFailures > 0 {
		s.maxFailures.Store(int64(policy.MaxFailures))
	}
	if policy.Base <= 0 {
		return func() {}
	}
	if policy.Cap <= 0 {
		policy.Cap = 32 * policy.Base
	}
	if policy.Jitter < 0 {
		policy.Jitter = 0
	}
	if policy.Jitter > 1 {
		policy.Jitter = 1
	}
	kick := make(chan struct{}, 1)
	stopc := make(chan struct{})
	s.retryMu.Lock()
	s.kick = kick
	s.retryMu.Unlock()
	go func() {
		for {
			select {
			case <-stopc:
				return
			case <-kick:
			}
			if s.failures.Load() == 0 {
				continue // already recovered by an explicit reload
			}
			delay := policy.Base
			for {
				timer := time.NewTimer(jittered(delay, policy.Jitter))
				select {
				case <-stopc:
					timer.Stop()
					return
				case <-timer.C:
				}
				if _, err := s.Reload(); err == nil {
					break
				}
				if delay *= 2; delay > policy.Cap {
					delay = policy.Cap
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopc)
			s.retryMu.Lock()
			if s.kick == kick {
				s.kick = nil
			}
			s.retryMu.Unlock()
		})
	}
}

// jittered spreads d uniformly over [d*(1-j), d*(1+j)].
func jittered(d time.Duration, j float64) time.Duration {
	if j <= 0 {
		return d
	}
	f := 1 + j*(2*rand.Float64()-1)
	return time.Duration(float64(d) * f)
}

// scratch is the per-request working set for the hot endpoints: one
// response buffer and one replica-id slice, pooled so steady-state query
// handling does not allocate. (The HTTP stack itself reuses its connection
// buffers; with this pool the handler adds nothing on top.)
type scratch struct {
	buf  []byte
	reps []int32
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{buf: make([]byte, 0, 512), reps: make([]int32, 0, 64)}
}}

// Handler returns the HTTP API:
//
//	GET  /v1/vertex/{id}    -> {"epoch":E,"vertex":V,"partition":P,"replicas":N}
//	GET  /v1/replicas/{id}  -> {"epoch":E,"vertex":V,"partitions":[...]}
//	GET  /v1/edge?src=&dst= -> {"epoch":E,"src":S,"dst":D,"partition":P}
//	GET  /v1/stats          -> snapshot metadata + sizes + reload health
//	POST /v1/reload         -> rebuild via the loader, swap epochs
//	GET  /v1/healthz        -> liveness: ok while the process serves at all
//	GET  /v1/readyz         -> readiness: 503 once consecutive reload
//	                           failures reach the policy threshold
//	GET  /healthz           -> ok (legacy alias of /v1/healthz)
//
// Every response carries the epoch it was answered under, which is what the
// hot-reload harness asserts consistency against. The three query endpoints
// hand-roll their JSON into a pooled buffer - no json.Marshal, no
// fmt.Sprintf - so the query path is allocation-free at steady state.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/vertex/{id}", s.handleVertex)
	mux.HandleFunc("GET /v1/replicas/{id}", s.handleReplicas)
	mux.HandleFunc("GET /v1/edge", s.handleEdge)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	liveness := func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	}
	mux.HandleFunc("GET /v1/healthz", liveness)
	mux.HandleFunc("GET /healthz", liveness)
	mux.HandleFunc("GET /v1/readyz", s.handleReady)
	return mux
}

// parseVertex parses a decimal vertex id. Range checking against the
// snapshot happens in the query itself.
func parseVertex(str string) (graph.VertexID, bool) {
	u, err := strconv.ParseUint(str, 10, 32)
	if err != nil {
		return 0, false
	}
	return graph.VertexID(u), true
}

func writeJSON(w http.ResponseWriter, status int, buf []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
}

func badRequest(w http.ResponseWriter, msg string) {
	http.Error(w, msg, http.StatusBadRequest)
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	v, ok := parseVertex(r.PathValue("id"))
	if !ok {
		badRequest(w, "bad vertex id")
		return
	}
	snap := s.cur.Load()
	p, err := snap.Primary(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	n, _ := snap.Count(v)
	sc := scratchPool.Get().(*scratch)
	b := sc.buf[:0]
	b = append(b, `{"epoch":`...)
	b = strconv.AppendUint(b, snap.epoch, 10)
	b = append(b, `,"vertex":`...)
	b = strconv.AppendUint(b, uint64(v), 10)
	b = append(b, `,"partition":`...)
	b = strconv.AppendInt(b, int64(p), 10)
	b = append(b, `,"replicas":`...)
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '}', '\n')
	writeJSON(w, http.StatusOK, b)
	sc.buf = b
	scratchPool.Put(sc)
}

func (s *Server) handleReplicas(w http.ResponseWriter, r *http.Request) {
	v, ok := parseVertex(r.PathValue("id"))
	if !ok {
		badRequest(w, "bad vertex id")
		return
	}
	snap := s.cur.Load()
	sc := scratchPool.Get().(*scratch)
	reps, err := snap.Replicas(v, sc.reps[:0])
	if err != nil {
		scratchPool.Put(sc)
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	b := sc.buf[:0]
	b = append(b, `{"epoch":`...)
	b = strconv.AppendUint(b, snap.epoch, 10)
	b = append(b, `,"vertex":`...)
	b = strconv.AppendUint(b, uint64(v), 10)
	b = append(b, `,"partitions":[`...)
	for i, p := range reps {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(p), 10)
	}
	b = append(b, ']', '}', '\n')
	writeJSON(w, http.StatusOK, b)
	sc.buf, sc.reps = b, reps
	scratchPool.Put(sc)
}

func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	src, ok1 := parseVertex(q.Get("src"))
	dst, ok2 := parseVertex(q.Get("dst"))
	if !ok1 || !ok2 {
		badRequest(w, "bad src/dst vertex id")
		return
	}
	snap := s.cur.Load()
	p, err := snap.RouteEdge(src, dst)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	sc := scratchPool.Get().(*scratch)
	b := sc.buf[:0]
	b = append(b, `{"epoch":`...)
	b = strconv.AppendUint(b, snap.epoch, 10)
	b = append(b, `,"src":`...)
	b = strconv.AppendUint(b, uint64(src), 10)
	b = append(b, `,"dst":`...)
	b = strconv.AppendUint(b, uint64(dst), 10)
	b = append(b, `,"partition":`...)
	b = strconv.AppendInt(b, int64(p), 10)
	b = append(b, '}', '\n')
	writeJSON(w, http.StatusOK, b)
	sc.buf = b
	scratchPool.Put(sc)
}

// Stats is the /v1/stats response shape (also returned by cmd/partsrv's
// startup log). Stats is cold-path: plain json.Marshal.
type Stats struct {
	Epoch     uint64  `json:"epoch"`
	Algorithm string  `json:"algorithm"`
	Order     string  `json:"order"`
	Layout    string  `json:"layout"`
	K         int     `json:"k"`
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	Sizes     []int64 `json:"sizes"`
	// Reload health: whether the replica is within its failure budget, how
	// many reloads have failed consecutively, and the latest failure.
	Ready           bool   `json:"ready"`
	ReloadFailures  int64  `json:"reload_failures"`
	LastReloadError string `json:"last_reload_error,omitempty"`
}

// StatsOf summarises a snapshot.
func StatsOf(snap *Snapshot) Stats {
	return Stats{
		Epoch:     snap.epoch,
		Algorithm: snap.algorithm,
		Order:     snap.order,
		Layout:    snap.layout,
		K:         snap.k,
		Vertices:  snap.numVertices,
		Edges:     snap.numEdges,
		Sizes:     snap.AppendSizes(nil),
	}
}

// Stats summarises the serving snapshot plus the server's reload health.
func (s *Server) Stats() Stats {
	st := StatsOf(s.cur.Load())
	st.ReloadFailures = s.failures.Load()
	st.LastReloadError = s.LastReloadError()
	st.Ready = st.ReloadFailures < s.maxFailures.Load()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	b, err := json.Marshal(s.Stats())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

// handleReady answers readiness: 200 while the replica is within its
// reload-failure budget, 503 once the streak passes the threshold. The
// body carries the streak and the last error either way, so a probe log
// explains itself.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	type readiness struct {
		Ready           bool   `json:"ready"`
		ReloadFailures  int64  `json:"reload_failures"`
		LastReloadError string `json:"last_reload_error,omitempty"`
	}
	r := readiness{
		Ready:           s.Ready(),
		ReloadFailures:  s.failures.Load(),
		LastReloadError: s.LastReloadError(),
	}
	b, _ := json.Marshal(r)
	status := http.StatusOK
	if !r.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, append(b, '\n'))
}

func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	hasLoader := s.loader != nil
	s.mu.Unlock()
	if !hasLoader {
		http.Error(w, "no loader configured", http.StatusNotImplemented)
		return
	}
	if _, err := s.Reload(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b, _ := json.Marshal(s.Stats())
	writeJSON(w, http.StatusOK, append(b, '\n'))
}
