package stream

import (
	"io"
	"testing"

	"repro/internal/graph"
)

// TestSegmentRebatchOffsetRoundTrip holds the fast-forward contract the
// checkpoint subsystem resumes through: opening a segment at a checkpointed
// offset and rebatching it to BlockLen delivers exactly the edges past the
// offset, in order, with every batch boundary landing on the same absolute
// stream offsets an uninterrupted rebatched pass would produce. Offsets
// cover the interesting boundaries: the stream head, the first and a middle
// block boundary, the last full boundary before the ragged tail, and the
// stream end (an empty resume).
func TestSegmentRebatchOffsetRoundTrip(t *testing.T) {
	edges := seqEdges(3*BlockLen + 123)
	total := len(edges)
	last := (total / BlockLen) * BlockLen
	for _, off := range []int{0, BlockLen, 2 * BlockLen, last, total} {
		src := Of(edges).Source(100)
		tail, err := src.Segment(off, total)
		if err != nil {
			t.Fatalf("Segment(%d, %d): %v", off, total, err)
		}
		if tail.Len() != total-off {
			t.Fatalf("segment [%d, %d) has Len %d, want %d", off, total, tail.Len(), total-off)
		}
		rb := Rebatch(tail, BlockLen)
		pos := off
		err = ForEach(rb, func(_ int, blk []graph.Edge) error {
			// Batch boundaries must sit at absolute BlockLen multiples (the
			// final batch carries the remainder), or a resumed run's commit
			// points would drift from a clean run's.
			if want := min(BlockLen-pos%BlockLen, total-pos); len(blk) != want {
				t.Fatalf("offset %d: batch at %d has %d edges, want %d", off, pos, len(blk), want)
			}
			for i, e := range blk {
				if e != edges[pos+i] {
					t.Fatalf("offset %d: edge %d = %v, want %v", off, pos+i, e, edges[pos+i])
				}
			}
			pos += len(blk)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if pos != total {
			t.Fatalf("offset %d: delivered up to %d, want %d", off, pos, total)
		}
	}
}

// TestSegmentNests: Segment(lo, hi) is relative to its receiver, so a
// segment of a segment addresses the original stream at the summed offset -
// what lets a resumed tail be wrapped again by the parallel decoder.
func TestSegmentNests(t *testing.T) {
	edges := seqEdges(2 * BlockLen)
	src := Of(edges).Source(100)
	tail, err := src.Segment(BlockLen, len(edges))
	if err != nil {
		t.Fatal(err)
	}
	seg, ok := tail.(Segmenter)
	if !ok {
		t.Fatalf("segment %T lost the Segment method", tail)
	}
	sub, err := seg.Segment(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != edges[BlockLen+10] || got[9] != edges[BlockLen+19] {
		t.Fatalf("nested segment returned %d edges starting %v", len(got), got[0])
	}
}

// TestSegmentEmptyTail: resuming at the very end of the stream is legal
// (the checkpoint covered everything); the segment is empty and a pass over
// it delivers nothing.
func TestSegmentEmptyTail(t *testing.T) {
	edges := seqEdges(BlockLen)
	src := Of(edges).Source(100)
	tail, err := src.Segment(len(edges), len(edges))
	if err != nil {
		t.Fatal(err)
	}
	if tail.Len() != 0 {
		t.Fatalf("empty segment has Len %d", tail.Len())
	}
	if _, err := Rebatch(tail, BlockLen).NextBlock(); err != io.EOF {
		t.Fatalf("empty segment yielded a block (err %v)", err)
	}
}

// TestRetryStatsCount: every survived replay bumps the shared stats
// counter, the wrapper surfaces it via RetryAttempts, and a clean pass
// reads zero.
func TestRetryStatsCount(t *testing.T) {
	edges := testEdges(100)
	st := &RetryStats{}
	f := &flaky{Source: &sliceSource{edges: edges, nv: 10, bs: 7},
		failOn: map[int]error{2: errFlaky, 5: errFlaky, 9: errFlaky}}
	src := Retry(f, RetryConfig{MaxAttempts: 5, Stats: st})
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("collected %d edges, want %d", len(got), len(edges))
	}
	if st.Attempts() != 3 {
		t.Fatalf("stats count %d attempts, want 3", st.Attempts())
	}
	rc, ok := src.(interface{ RetryAttempts() int64 })
	if !ok {
		t.Fatalf("%T does not surface RetryAttempts", src)
	}
	if rc.RetryAttempts() != 3 {
		t.Fatalf("RetryAttempts() = %d, want 3", rc.RetryAttempts())
	}

	clean := Retry(&sliceSource{edges: edges, nv: 10, bs: 7}, RetryConfig{})
	if _, err := Collect(clean); err != nil {
		t.Fatal(err)
	}
	if n := clean.(interface{ RetryAttempts() int64 }).RetryAttempts(); n != 0 {
		t.Fatalf("clean pass fired %d attempts", n)
	}
}
