package store

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestRoundTrip(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 5000, OutDegree: 6, IntraSite: 0.85, Seed: 1})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices != g.NumVertices || back.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", back.NumVertices, back.NumEdges(), g.NumVertices, g.NumEdges())
	}
	for i := range g.Edges {
		if g.Edges[i] != back.Edges[i] {
			t.Fatalf("edge %d changed: %v vs %v (order must be preserved)", i, g.Edges[i], back.Edges[i])
		}
	}
}

func TestCompressionBeatsText(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 20000, OutDegree: 8, IntraSite: 0.88, Seed: 2})
	var bin, txt bytes.Buffer
	if err := Write(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(&txt); err != nil {
		t.Fatal(err)
	}
	ratio := float64(bin.Len()) / float64(txt.Len())
	if ratio > 0.35 {
		t.Fatalf("binary/text ratio %.2f, want < 0.35 (%d vs %d bytes)", ratio, bin.Len(), txt.Len())
	}
	perEdge := float64(bin.Len()) / float64(g.NumEdges())
	if perEdge > 4 {
		t.Fatalf("%.2f bytes/edge, want < 4 on a crawl-ordered web graph", perEdge)
	}
}

func TestStreamingReader(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 1000, OutDegree: 4, Seed: 3})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sr.NumVertices() != g.NumVertices || sr.NumEdges() != g.NumEdges() {
		t.Fatal("header mismatch")
	}
	for i := 0; ; i++ {
		e, err := sr.Next()
		if err == io.EOF {
			if i != g.NumEdges() {
				t.Fatalf("EOF after %d edges, want %d", i, g.NumEdges())
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e != g.Edges[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
	// Next after EOF keeps returning EOF.
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Read(strings.NewReader("not a graph")); err != ErrBadMagic {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated body.
	g := gen.Web(gen.WebConfig{N: 100, OutDegree: 4, Seed: 4})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestCorruptRangeRejected(t *testing.T) {
	// Hand-craft a file whose edge points past the vertex count.
	small := graph.New(2, []graph.Edge{{Src: 0, Dst: 1}})
	var buf bytes.Buffer
	if err := Write(&buf, small); err != nil {
		t.Fatal(err)
	}
	big := graph.New(1000, []graph.Edge{{Src: 999, Dst: 999}})
	var buf2 bytes.Buffer
	if err := Write(&buf2, big); err != nil {
		t.Fatal(err)
	}
	// Splice: header of the small graph with the body of the big one.
	spliced := append([]byte{}, buf.Bytes()[:6]...) // magic + nv=2 + ne=1
	spliced = append(spliced, buf2.Bytes()[8:]...)  // big graph's edge data
	if _, err := Read(bytes.NewReader(spliced)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestSniff(t *testing.T) {
	g := graph.New(2, []graph.Edge{{Src: 0, Dst: 1}})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !Sniff(bufio.NewReader(&buf)) {
		t.Fatal("Sniff missed own format")
	}
	if Sniff(bufio.NewReader(strings.NewReader("0 1\n"))) {
		t.Fatal("Sniff false positive on text")
	}
	if Sniff(bufio.NewReader(strings.NewReader(""))) {
		t.Fatal("Sniff true on empty input")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(5, nil)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices != 5 || back.NumEdges() != 0 {
		t.Fatalf("empty graph mangled: %d/%d", back.NumVertices, back.NumEdges())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	check := func(raw []uint16, nRaw uint8) bool {
		nv := int(nRaw)%100 + 2
		edges := make([]graph.Edge, 0, len(raw))
		for _, r := range raw {
			edges = append(edges, graph.Edge{
				Src: graph.VertexID(int(r>>8) % nv),
				Dst: graph.VertexID(int(r) % nv),
			})
		}
		g := graph.New(nv, edges)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.NumVertices != nv || back.NumEdges() != len(edges) {
			return false
		}
		for i := range edges {
			if edges[i] != back.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
