package graph

import (
	"math"
	"sort"
)

// Stats summarises the structural properties the partitioning literature
// cares about: scale, degree skew and the fitted power-law exponent.
type Stats struct {
	NumVertices int
	NumEdges    int
	MaxDegree   uint32
	MeanDegree  float64
	// Alpha is the maximum-likelihood power-law exponent of the total-degree
	// distribution (Clauset-Shalizi-Newman discrete MLE with xmin = DMin).
	Alpha float64
	// DMin is the minimum degree used for the MLE fit (the paper's gamma).
	DMin uint32
}

// ComputeStats computes Stats over the total-degree distribution. Vertices
// of degree zero are excluded from the power-law fit, matching how crawl
// datasets are reported.
func ComputeStats(g *Graph) Stats {
	deg := g.Degrees()
	var max uint32
	var sum float64
	nz := 0
	var dmin uint32 = math.MaxUint32
	for _, d := range deg {
		if d == 0 {
			continue
		}
		nz++
		sum += float64(d)
		if d > max {
			max = d
		}
		if d < dmin {
			dmin = d
		}
	}
	s := Stats{
		NumVertices: g.NumVertices,
		NumEdges:    g.NumEdges(),
		MaxDegree:   max,
	}
	if nz == 0 {
		return s
	}
	s.MeanDegree = sum / float64(nz)
	s.DMin = dmin
	// Fit the tail from degree >= 8: the continuous-approximation MLE is
	// badly biased at xmin 1-2 (Clauset-Shalizi-Newman recommend xmin >~ 6).
	fitMin := dmin
	if fitMin < 8 {
		fitMin = 8
	}
	s.Alpha = PowerLawAlpha(deg, fitMin)
	return s
}

// PowerLawAlpha estimates the exponent alpha of f(x) ~ x^-alpha over degrees
// >= xmin using the continuous-approximation MLE
// alpha = 1 + n / sum(ln(d_i / (xmin - 1/2))). Returns 0 when no vertex
// qualifies.
func PowerLawAlpha(degrees []uint32, xmin uint32) float64 {
	if xmin == 0 {
		xmin = 1
	}
	var logSum float64
	n := 0
	shift := float64(xmin) - 0.5
	for _, d := range degrees {
		if d < xmin {
			continue
		}
		logSum += math.Log(float64(d) / shift)
		n++
	}
	if n == 0 || logSum == 0 {
		return 0
	}
	return 1 + float64(n)/logSum
}

// GiniCoefficient measures degree inequality in [0,1]; power-law web graphs
// sit far above uniform-degree graphs. Used by tests to check generator
// skew without fragile tail fits.
func GiniCoefficient(degrees []uint32) float64 {
	n := len(degrees)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	var total float64
	for i, d := range degrees {
		sorted[i] = float64(d)
		total += float64(d)
	}
	if total == 0 {
		return 0
	}
	sort.Float64s(sorted)
	var cum float64
	for i, v := range sorted {
		cum += float64(i+1) * v
	}
	return (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n)
}
