package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/stream"
)

func TestReplicaSetsBasics(t *testing.T) {
	rs := NewReplicaSets(10, 100)
	if rs.K() != 100 {
		t.Fatalf("K = %d", rs.K())
	}
	if rs.Has(3, 64) {
		t.Fatal("fresh table has membership")
	}
	rs.Add(3, 64)
	rs.Add(3, 64) // idempotent
	rs.Add(3, 0)
	if !rs.Has(3, 64) || !rs.Has(3, 0) {
		t.Fatal("Add not visible")
	}
	if rs.Has(3, 1) || rs.Has(4, 64) {
		t.Fatal("membership leaked")
	}
	if rs.Count(3) != 2 {
		t.Fatalf("Count = %d, want 2", rs.Count(3))
	}
	parts := rs.Partitions(3, nil)
	if len(parts) != 2 || parts[0] != 0 || parts[1] != 64 {
		t.Fatalf("Partitions = %v", parts)
	}
}

func TestReplicaSetsSetOps(t *testing.T) {
	rs := NewReplicaSets(4, 130)
	rs.Add(0, 1)
	rs.Add(0, 65)
	rs.Add(0, 129)
	rs.Add(1, 65)
	rs.Add(1, 2)
	inter := rs.Intersect(0, 1, nil)
	if len(inter) != 1 || inter[0] != 65 {
		t.Fatalf("Intersect = %v, want [65]", inter)
	}
	union := rs.Union(0, 1, nil)
	want := []int32{1, 2, 65, 129}
	if len(union) != len(want) {
		t.Fatalf("Union = %v, want %v", union, want)
	}
	for i := range want {
		if union[i] != want[i] {
			t.Fatalf("Union = %v, want %v", union, want)
		}
	}
}

func TestReplicaSetsQuick(t *testing.T) {
	check := func(adds []uint16, kRaw uint8) bool {
		k := int(kRaw)%200 + 1
		const nv = 32
		rs := NewReplicaSets(nv, k)
		ref := make(map[[2]int]bool)
		for _, a := range adds {
			v := int(a>>8) % nv
			p := int(a&0xff) % k
			rs.Add(graph.VertexID(v), p)
			ref[[2]int{v, p}] = true
		}
		for v := 0; v < nv; v++ {
			count := 0
			for p := 0; p < k; p++ {
				has := ref[[2]int{v, p}]
				if rs.Has(graph.VertexID(v), p) != has {
					return false
				}
				if has {
					count++
				}
			}
			if rs.Count(graph.VertexID(v)) != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateHandExample(t *testing.T) {
	// Figure 1(c-2)-style example: 5 edges, 2 partitions.
	// Partition 0: (0,1),(1,2); partition 1: (0,3),(3,4),(0,4).
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 3}, {Src: 3, Dst: 4}, {Src: 0, Dst: 4}}
	assign := []int32{0, 0, 1, 1, 1}
	q, err := Evaluate(stream.Of(edges).Source(5), assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	// P(0)={0,1} -> 2, P(1)={0}, P(2)={0}, P(3)={1}, P(4)={1}: sum 6 over 5.
	if math.Abs(q.ReplicationFactor-6.0/5.0) > 1e-12 {
		t.Fatalf("RF = %v, want 1.2", q.ReplicationFactor)
	}
	if q.Sizes[0] != 2 || q.Sizes[1] != 3 {
		t.Fatalf("Sizes = %v", q.Sizes)
	}
	// balance = k*max/|E| = 2*3/5.
	if math.Abs(q.RelativeBalance-1.2) > 1e-12 {
		t.Fatalf("balance = %v, want 1.2", q.RelativeBalance)
	}
	if q.Vertices != 5 || q.Replicas != 6 {
		t.Fatalf("vertices/replicas = %d/%d", q.Vertices, q.Replicas)
	}
}

func TestEvaluateExcludesUnseenVertices(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}}
	q, err := Evaluate(stream.Of(edges).Source(10), []int32{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Vertices != 2 {
		t.Fatalf("Vertices = %d, want 2 (8 unseen excluded)", q.Vertices)
	}
	if q.ReplicationFactor != 1.0 {
		t.Fatalf("RF = %v, want 1.0", q.ReplicationFactor)
	}
}

func TestEvaluateErrors(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}}
	if _, err := Evaluate(stream.Of(edges).Source(2), []int32{}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Evaluate(stream.Of(edges).Source(2), []int32{5}, 2); err == nil {
		t.Fatal("invalid partition accepted")
	}
	if _, err := Evaluate(stream.Of(edges).Source(2), []int32{-1}, 2); err == nil {
		t.Fatal("negative partition accepted")
	}
}

func TestEvaluateRFLowerBound(t *testing.T) {
	// RF is always >= 1 and <= k, whatever the assignment.
	check := func(raw []uint16, kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		if len(raw) == 0 {
			return true
		}
		const nv = 16
		edges := make([]graph.Edge, len(raw))
		assign := make([]int32, len(raw))
		for i, r := range raw {
			edges[i] = graph.Edge{Src: graph.VertexID(int(r>>8) % nv), Dst: graph.VertexID(int(r) % nv)}
			assign[i] = int32(i % k)
		}
		q, err := Evaluate(stream.Of(edges).Source(nv), assign, k)
		if err != nil {
			return false
		}
		return q.ReplicationFactor >= 1 && q.ReplicationFactor <= float64(k)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBytes(t *testing.T) {
	rs := NewReplicaSets(1000, 128)
	if rs.Bytes() != 1000*2*8 {
		t.Fatalf("Bytes = %d, want %d", rs.Bytes(), 1000*2*8)
	}
}

// TestReplicaSetsMultiWordLarge exercises k > 64 (multi-word bitsets) across
// every word boundary: Count, Partitions and Intersect must see bits in
// words 0, 1 and 2 alike.
func TestReplicaSetsMultiWordLarge(t *testing.T) {
	const k = 130 // 3 words: 64 + 64 + 2
	rs := NewReplicaSets(6, k)
	if rs.Words() != 3 {
		t.Fatalf("Words() = %d, want 3", rs.Words())
	}
	adds := []int{0, 5, 63, 64, 100, 127, 128, 129}
	for _, p := range adds {
		rs.Add(2, p)
	}
	if got := rs.Count(2); got != len(adds) {
		t.Fatalf("Count = %d, want %d", got, len(adds))
	}
	parts := rs.Partitions(2, nil)
	if len(parts) != len(adds) {
		t.Fatalf("Partitions = %v", parts)
	}
	for i, p := range adds {
		if parts[i] != int32(p) {
			t.Fatalf("Partitions[%d] = %d, want %d (ascending across words)", i, parts[i], p)
		}
		if !rs.Has(2, p) {
			t.Fatalf("Has(2, %d) = false", p)
		}
	}
	// Word accessor: partition 129 lives in word 2, bit 1.
	if w := rs.Word(2, 2); w&(1<<1) == 0 {
		t.Fatalf("Word(2,2) = %#x missing bit for partition 129", w)
	}
	// Intersect across words.
	for _, p := range []int{63, 64, 129} {
		rs.Add(3, p)
	}
	inter := rs.Intersect(2, 3, nil)
	want := []int32{63, 64, 129}
	if len(inter) != len(want) {
		t.Fatalf("Intersect = %v, want %v", inter, want)
	}
	for i := range want {
		if inter[i] != want[i] {
			t.Fatalf("Intersect = %v, want %v", inter, want)
		}
	}
	// Count stays per-vertex: vertex 4 untouched.
	if rs.Count(4) != 0 {
		t.Fatal("membership leaked across vertices")
	}
}

// TestReplicaSetsReset pins the scratch-reuse contract: Reset must clear
// every bit and support shrinking and growing the (n, k) shape, reusing
// storage when it can.
func TestReplicaSetsReset(t *testing.T) {
	rs := NewReplicaSets(8, 130)
	rs.Add(7, 129)
	rs.Add(0, 0)
	rs.Reset(8, 130)
	for v := 0; v < 8; v++ {
		if rs.Count(graph.VertexID(v)) != 0 {
			t.Fatalf("Reset left bits for vertex %d", v)
		}
	}
	// Shrink: smaller k must not see stale high-word bits.
	rs.Add(3, 100)
	rs.Reset(8, 32)
	if rs.K() != 32 || rs.Words() != 1 {
		t.Fatalf("shape after shrink: k=%d words=%d", rs.K(), rs.Words())
	}
	if rs.Count(3) != 0 {
		t.Fatal("stale bits visible after shrinking Reset")
	}
	// Grow beyond original capacity.
	rs.Reset(100, 256)
	rs.Add(99, 255)
	if !rs.Has(99, 255) || rs.Count(99) != 1 {
		t.Fatal("grow Reset broken")
	}
}

// TestEvaluatorReuseMatchesOneShot: an Evaluator reused across runs of
// different shapes must produce exactly what the one-shot Evaluate does.
func TestEvaluatorReuseMatchesOneShot(t *testing.T) {
	var ev Evaluator
	cases := []struct {
		edges  []graph.Edge
		assign []int32
		nv, k  int
	}{
		{[]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 3}, {Src: 3, Dst: 4}, {Src: 0, Dst: 4}}, []int32{0, 0, 1, 1, 1}, 5, 2},
		{[]graph.Edge{{Src: 0, Dst: 1}}, []int32{66}, 2, 130}, // multi-word k
		{[]graph.Edge{{Src: 2, Dst: 2}}, []int32{0}, 9, 3},    // shrink: stale seen[] must not leak
	}
	for i, tc := range cases {
		got, err := ev.Evaluate(stream.Of(tc.edges).Source(tc.nv), tc.assign, tc.k)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want, err := Evaluate(stream.Of(tc.edges).Source(tc.nv), tc.assign, tc.k)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.ReplicationFactor != want.ReplicationFactor || got.Vertices != want.Vertices ||
			got.Replicas != want.Replicas || got.RelativeBalance != want.RelativeBalance {
			t.Fatalf("case %d: reused evaluator %+v != one-shot %+v", i, got, want)
		}
	}
}

// TestEvaluateViewMatchesMaterialized: evaluating through a permuted view
// must equal evaluating the materialized slice (assignment aligned to the
// view order).
func TestEvaluateViewMatchesMaterialized(t *testing.T) {
	base := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}}
	perm := []int32{2, 0, 3, 1}
	v := stream.Permuted(base, perm)
	assign := []int32{1, 0, 1, 0}
	got, err := Evaluate(v.Source(4), assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(stream.Of(v.Materialize()).Source(4), assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReplicationFactor != want.ReplicationFactor || got.Sizes[0] != want.Sizes[0] {
		t.Fatalf("view eval %+v != materialized eval %+v", got, want)
	}
}
