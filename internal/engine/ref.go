package engine

import (
	"math"

	"repro/internal/graph"
)

// Reference single-machine implementations, structured independently of the
// distributed engine (array sweeps over the raw edge list rather than
// per-node local state), used by tests to validate that the simulated
// distributed runs compute the same fixed points regardless of the
// partitioner.

// ReferencePageRank computes damped PageRank with uniform dangling-mass
// redistribution over iters synchronous iterations.
func ReferencePageRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.NumVertices
	if n == 0 {
		return nil
	}
	nf := float64(n)
	outdeg := make([]int64, n)
	for _, e := range g.Edges {
		outdeg[e.Src]++
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / nf
	}
	for it := 0; it < iters; it++ {
		var dangling float64
		for v := 0; v < n; v++ {
			next[v] = 0
			if outdeg[v] == 0 {
				dangling += rank[v]
			}
		}
		for _, e := range g.Edges {
			next[e.Dst] += rank[e.Src] / float64(outdeg[e.Src])
		}
		base := (1-damping)/nf + damping*dangling/nf
		for v := 0; v < n; v++ {
			next[v] = base + damping*next[v]
		}
		rank, next = next, rank
	}
	return rank
}

// ReferenceComponents computes undirected connected components by
// union-find, labelling each vertex with the smallest vertex id of its
// component.
func ReferenceComponents(g *graph.Graph) []uint32 {
	n := g.NumVertices
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		ru, rv := find(int32(e.Src)), find(int32(e.Dst))
		if ru == rv {
			continue
		}
		// Union by smaller id so the root is the component minimum.
		if ru < rv {
			parent[rv] = ru
		} else {
			parent[ru] = rv
		}
	}
	out := make([]uint32, n)
	for v := 0; v < n; v++ {
		out[v] = uint32(find(int32(v)))
	}
	return out
}

// ReferenceLabelPropagation runs synchronous plurality label propagation
// over the undirected graph with the exact update rule of the distributed
// engine (keep current label unless strictly beaten; ties to the smaller
// label), for validation.
func ReferenceLabelPropagation(g *graph.Graph, maxIters int) []uint32 {
	if maxIters <= 0 {
		maxIters = 20
	}
	n := g.NumVertices
	label := make([]uint32, n)
	for v := range label {
		label[v] = uint32(v)
	}
	csr := graph.BuildUndirectedCSR(g)
	next := make([]uint32, n)
	counts := make(map[uint32]int32)
	for it := 0; it < maxIters; it++ {
		changed := false
		for v := 0; v < n; v++ {
			neigh := csr.Neigh(graph.VertexID(v))
			if len(neigh) == 0 {
				next[v] = label[v]
				continue
			}
			clear(counts)
			for _, w := range neigh {
				counts[label[w]]++
			}
			cur := label[v]
			best := cur
			bestCount := counts[cur]
			for lab, c := range counts {
				if c > bestCount || (c == bestCount && lab < best) {
					best, bestCount = lab, c
				}
			}
			next[v] = best
			if best != cur {
				changed = true
			}
		}
		label, next = next, label
		if !changed {
			break
		}
	}
	return label
}

// ReferenceSSSP computes directed BFS hop distances from source, with
// math.MaxUint32 marking unreachable vertices.
func ReferenceSSSP(g *graph.Graph, source uint32) []uint32 {
	const inf = math.MaxUint32
	n := g.NumVertices
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = inf
	}
	if int(source) >= n {
		return dist
	}
	csr := graph.BuildCSR(g)
	dist[source] = 0
	queue := []graph.VertexID{graph.VertexID(source)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range csr.Neigh(v) {
			if dist[w] == inf {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
