package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// FuzzRead checks the binary decoder never panics on arbitrary input and
// that any graph it accepts is structurally valid. Both formats share the
// entry point (the magic dispatches), so seeds cover both.
func FuzzRead(f *testing.F) {
	// Seed with valid files of both formats, truncations and junk.
	g := graph.New(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 0}})
	for _, format := range []Format{FormatCGR1, FormatCGR2, FormatCGR3} {
		var buf bytes.Buffer
		if err := WriteFormat(&buf, g, format); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
		if format == FormatCGR3 {
			// Checksum forgeries: payload flip, trailer flip, footer cut.
			for _, off := range []int{6, len(valid) - 20, len(valid) - 2} {
				forged := bytes.Clone(valid)
				forged[off] ^= 1
				f.Add(forged)
			}
			f.Add(valid[:len(valid)-footerLen])
		}
	}
	f.Add([]byte("CGR1"))
	f.Add([]byte("CGR2"))
	f.Add([]byte("CGR3"))
	f.Add([]byte("junk data here"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid graph: %v", err)
		}
	})
}

// FuzzReadCGR2 drives the v2 decoder specifically: its seeds forge the
// failure shapes unique to the run/interval layout - run lengths past the
// declared edge count, interval counts past the run remainder, truncated
// interval tokens, overflowing varints in the packed header - so mutation
// starts from the interesting corners rather than random bytes.
func FuzzReadCGR2(f *testing.F) {
	// A valid file with runs, an interval and residuals.
	g := graph.New(16, []graph.Edge{
		{Src: 2, Dst: 3}, {Src: 2, Dst: 4}, {Src: 2, Dst: 5}, // interval
		{Src: 2, Dst: 1}, // residual, negative gap
		{Src: 5, Dst: 5}, // new run, self-loop
	})
	var buf bytes.Buffer
	if err := WriteFormat(&buf, g, FormatCGR2); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for cut := 1; cut < 6; cut++ { // truncations inside tokens
		f.Add(valid[:len(valid)-cut])
	}
	f.Add(header2(4, 1<<60))                                        // forged edge count
	f.Add(header2(1<<40, 0))                                        // forged vertex count
	f.Add(append(header2(4, 2), byte(2<<4|2)))                      // run past edge count
	f.Add(append(header2(8, 2), []byte{1<<4 | 1, 3, 0, 2}...))      // interval past run
	f.Add(append(header2(4, 1), 0x80))                              // truncated varint
	f.Add(append(header2(4, 1), bytes.Repeat([]byte{0x80}, 11)...)) // varint overflow
	f.Add(append(header2(8, 2), []byte{1<<4 | 1, 0, 0}...))         // zero interval
	// Checksum-forgery seeds: the same body under the checksummed magic,
	// with the trailer variously missing, misdeclared or flipped.
	var b3 bytes.Buffer
	if err := WriteFormat(&b3, g, FormatCGR3); err != nil {
		f.Fatal(err)
	}
	v3 := b3.Bytes()
	f.Add(v3)
	f.Add(append(bytes.Clone(valid[:0]), append([]byte("CGR3"), valid[4:]...)...)) // CGR2 body, no trailer
	for _, off := range []int{5, len(v3) - footerLen + 2, len(v3) - 10} {
		forged := bytes.Clone(v3)
		forged[off] ^= 0x40
		f.Add(forged)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("CGR2 decoder accepted invalid graph: %v", err)
		}
	})
}

// FuzzReadResult drives the result-file decoder: it must never panic, must
// reject truncated files, forged headers and id/k overflow, and anything it
// accepts must be internally consistent and round-trip bit-identically
// (decode -> encode reproduces a canonical file whose decode matches, and
// re-encoding that is a fixed point).
func FuzzReadResult(f *testing.F) {
	for _, k := range []int{1, 4, 64, 65, 128} {
		rs := metrics.NewReplicaSets(3, k)
		rs.Add(0, 0)
		rs.Add(2, k-1)
		sizes := make([]int64, k)
		sizes[0] = 2
		r := &Result{
			Algorithm: "CLUGP", Order: "bfs", K: k,
			NumVertices: 3, NumEdges: 2, Sizes: sizes, Replicas: rs,
		}
		var buf bytes.Buffer
		if err := WriteResult(&buf, r); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		f.Add(valid[:len(valid)-1])
		f.Add(valid[:len(valid)/2])
		// The legacy CPR1 framing of the same result, and checksum
		// forgeries of the CPR2 file: payload flip, trailer flip, footer cut.
		var legacy bytes.Buffer
		if err := writeResultPayload(&legacy, r, resultMagic); err != nil {
			f.Fatal(err)
		}
		f.Add(legacy.Bytes())
		for _, off := range []int{5, len(valid) - footerLen + 1, len(valid) - 3} {
			forged := bytes.Clone(valid)
			forged[off] ^= 1
			f.Add(forged)
		}
	}
	f.Add([]byte("CPR1"))
	f.Add([]byte("CPR2"))
	f.Add(append([]byte("CPR1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))
	f.Add([]byte("CGR1junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadResult(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: the decoded result must satisfy the writer's own
		// validation and re-encode canonically.
		var enc bytes.Buffer
		if err := WriteResult(&enc, got); err != nil {
			t.Fatalf("decoded result does not re-encode: %v", err)
		}
		again, err := ReadResult(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		var enc2 bytes.Buffer
		if err := WriteResult(&enc2, again); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}

// FuzzSourcesAgree is differential: the sequential Reader, the seek-based
// FileSource and the mmap-backed MmapSource decode the same bytes through
// different cursors (stream window, pread window, mapped slice), so on any
// input all three must agree - same accept/reject decision, same edges.
// One backend accepting what another rejects would let a corrupt file
// produce different streams depending on how it was opened.
func FuzzSourcesAgree(f *testing.F) {
	g := graph.New(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 4, Dst: 0},
	})
	for _, format := range []Format{FormatCGR1, FormatCGR2, FormatCGR3} {
		var buf bytes.Buffer
		if err := WriteFormat(&buf, g, format); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()-2])
		if format == FormatCGR3 {
			forged := bytes.Clone(buf.Bytes())
			forged[7] ^= 1 // payload flip under an intact trailer
			f.Add(forged)
		}
	}
	f.Add([]byte("CGR2junk"))
	f.Add([]byte("CGR3junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fromReader, readerErr := Read(bytes.NewReader(data))

		path := filepath.Join(t.TempDir(), "f.cgr")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip(err)
		}
		collectFile := func(open func(string) (File, error)) ([]graph.Edge, error) {
			src, err := open(path)
			if err != nil {
				return nil, err
			}
			defer src.Close()
			return stream.Collect(src)
		}
		fromFile, fileErr := collectFile(func(p string) (File, error) { return Open(p) })
		fromMmap, mmapErr := collectFile(func(p string) (File, error) { return OpenMmap(p) })
		fromRA, raErr := collectFile(func(p string) (File, error) {
			return OpenReaderAt(byteReaderAt(data), int64(len(data)), p)
		})

		if (readerErr == nil) != (fileErr == nil) || (readerErr == nil) != (mmapErr == nil) ||
			(readerErr == nil) != (raErr == nil) {
			t.Fatalf("backends disagree on acceptance: reader=%v file=%v mmap=%v readerat=%v",
				readerErr, fileErr, mmapErr, raErr)
		}
		if readerErr != nil {
			return
		}
		if len(fromFile) != len(fromReader.Edges) || len(fromMmap) != len(fromReader.Edges) ||
			len(fromRA) != len(fromReader.Edges) {
			t.Fatalf("edge counts disagree: reader=%d file=%d mmap=%d readerat=%d",
				len(fromReader.Edges), len(fromFile), len(fromMmap), len(fromRA))
		}
		for i := range fromReader.Edges {
			if fromFile[i] != fromReader.Edges[i] || fromMmap[i] != fromReader.Edges[i] ||
				fromRA[i] != fromReader.Edges[i] {
				t.Fatalf("edge %d disagrees: reader=%v file=%v mmap=%v readerat=%v",
					i, fromReader.Edges[i], fromFile[i], fromMmap[i], fromRA[i])
			}
		}
	})
}

// FuzzReadCGR3 drives the checksummed graph path end to end on disk: Open,
// stream, Verify. Nothing may panic, and the integrity contract must hold -
// a CGR3 stream that completes successfully has proven every payload block,
// so Verify on the same source must also succeed.
func FuzzReadCGR3(f *testing.F) {
	g := graph.New(8, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 5, Dst: 4},
	})
	var buf bytes.Buffer
	if err := WriteFormat(&buf, g, FormatCGR3); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, off := range []int{4, 9, len(valid) - footerLen - 1, len(valid) - footerLen + 3, len(valid) - 1} {
		forged := bytes.Clone(valid)
		forged[off] ^= 0x20
		f.Add(forged)
	}
	f.Add(valid[:len(valid)-footerLen])
	f.Add(valid[:len(valid)-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := OpenReaderAt(byteReaderAt(data), int64(len(data)), "fuzz")
		if err != nil {
			return
		}
		defer src.Close()
		_, collectErr := stream.Collect(src)
		if collectErr == nil && src.Format() == FormatCGR3 {
			if err := src.Verify(); err != nil {
				t.Fatalf("stream completed but Verify fails: %v", err)
			}
		}
	})
}
