// Package gen provides deterministic synthetic graph generators that stand
// in for the paper's real crawl datasets (uk-2002, arabic-2005,
// webbase-2001, it-2004, twitter), which are multi-gigabyte WebGraph files
// we cannot ship.
//
// The substitution rationale (see DESIGN.md): every partitioner in the study
// reacts only to (a) the power-law degree skew, (b) community/link locality,
// and (c) the stream order. The Web generator models all three the way real
// crawls exhibit them: pages are grouped into power-law-sized sites, most
// links stay within the site (dense local clusters - the property CLUGP's
// streaming clustering exploits), and cross-site links copy the destination
// of a random existing link (Kumar et al.'s copying model, which the paper
// itself cites: uniform edge-copying is in-degree-preferential attachment
// and yields power-law in-degrees). Pages are emitted in site order, the
// BFS-like order of a crawler walking site by site. The Barabasi-Albert
// model produces hubs without web-like locality and stands in for the
// Twitter social graph, where the paper reports CLUGP's edge over HDRF
// disappears.
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// WebConfig parameterizes the site-structured copying-model web graph.
type WebConfig struct {
	// N is the number of pages (vertices).
	N int
	// OutDegree is the mean number of out-links per page. Actual
	// out-degrees are drawn uniformly from [1, 2*OutDegree-1].
	OutDegree int
	// IntraSite in [0,1] is the probability that an out-link targets a page
	// of the same site. Real web crawls sit around 0.7-0.8; this is the
	// knob that makes the graph clusterable. Zero means 0.7.
	IntraSite float64
	// SiteMean is the mean number of pages per site; site sizes follow a
	// shifted geometric-of-geometric (heavy-ish tail). Zero means 64.
	SiteMean int
	// CopyFactor in [0,1] is the probability that a cross-site link copies
	// the destination of a uniformly random existing cross-site link
	// (in-degree preferential attachment) instead of linking to a uniform
	// random earlier page. Higher values mean heavier-tailed in-degrees.
	// Zero means 0.5.
	CopyFactor float64
	// Seed makes generation deterministic.
	Seed uint64
}

func (c WebConfig) withDefaults() WebConfig {
	if c.OutDegree < 1 {
		c.OutDegree = 8
	}
	if c.IntraSite == 0 {
		c.IntraSite = 0.7
	}
	if c.SiteMean == 0 {
		c.SiteMean = 64
	}
	if c.CopyFactor == 0 {
		c.CopyFactor = 0.5
	}
	return c
}

// Web generates a directed site-structured web graph. Edges are emitted in
// page-creation order (site after site), the natural crawl order the paper
// assumes for web graph streams.
func Web(cfg WebConfig) *graph.Graph {
	if cfg.N < 2 {
		panic(fmt.Sprintf("gen: Web needs N >= 2, got %d", cfg.N))
	}
	if cfg.IntraSite < 0 || cfg.IntraSite > 1 {
		panic(fmt.Sprintf("gen: IntraSite %v out of [0,1]", cfg.IntraSite))
	}
	if cfg.CopyFactor < 0 || cfg.CopyFactor > 1 {
		panic(fmt.Sprintf("gen: CopyFactor %v out of [0,1]", cfg.CopyFactor))
	}
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed)

	edges := make([]graph.Edge, 0, cfg.N*cfg.OutDegree)
	// globalDst records destinations of cross-site links; copying a uniform
	// element is in-degree-proportional sampling over cross-site linkage.
	globalDst := make([]graph.VertexID, 0, cfg.N)

	siteStart := 0
	siteEnd := siteSize(rng, cfg.SiteMean)
	if siteEnd > cfg.N {
		siteEnd = cfg.N
	}
	for v := 1; v < cfg.N; v++ {
		if v >= siteEnd { // start a new site
			siteStart = siteEnd
			siteEnd += siteSize(rng, cfg.SiteMean)
			if siteEnd > cfg.N {
				siteEnd = cfg.N
			}
		}
		d := 1 + rng.Intn(2*cfg.OutDegree-1)
		for i := 0; i < d; i++ {
			var dst graph.VertexID
			if rng.Float64() < cfg.IntraSite && v > siteStart {
				// Intra-site link to an earlier page of the same site.
				dst = graph.VertexID(siteStart + rng.Intn(v-siteStart))
			} else if len(globalDst) > 0 && rng.Float64() < cfg.CopyFactor {
				// Cross-site: copy the destination of an existing link.
				dst = globalDst[rng.Intn(len(globalDst))]
				if int(dst) >= v { // copied a forward reference to own site
					dst = graph.VertexID(rng.Intn(v))
				}
				globalDst = append(globalDst, dst)
			} else {
				// Cross-site: uniform earlier page.
				dst = graph.VertexID(rng.Intn(v))
				globalDst = append(globalDst, dst)
			}
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: dst})
		}
	}
	return graph.New(cfg.N, edges)
}

// siteSize draws a site size with mean roughly m and a heavy-ish tail:
// a shifted geometric whose parameter is itself occasionally boosted,
// giving many small sites and a few very large ones, like real hosts.
func siteSize(rng *xrand.RNG, m int) int {
	// With prob 0.1 draw a "large site" with mean 4m, else mean ~2/3 m;
	// overall mean stays near m.
	mean := float64(m) * 2 / 3
	if rng.Float64() < 0.1 {
		mean = float64(m) * 4
	}
	// Geometric with the chosen mean.
	size := 1
	p := 1 / mean
	for rng.Float64() > p && size < 100*m {
		size++
	}
	return size
}

// BarabasiAlbert generates a directed preferential-attachment graph: each
// new vertex attaches m out-edges to existing vertices chosen proportionally
// to their current total degree. This yields a power-law tail with exponent
// about 3 and, unlike the web model, no particular link locality -
// the social-graph regime where the paper reports CLUGP loses its edge.
func BarabasiAlbert(n, m int, seed uint64) *graph.Graph {
	if n < 2 || m < 1 {
		panic(fmt.Sprintf("gen: BarabasiAlbert needs n>=2, m>=1 (n=%d m=%d)", n, m))
	}
	rng := xrand.New(seed)
	edges := make([]graph.Edge, 0, n*m)
	// targets holds one entry per edge endpoint, so uniform sampling from it
	// is degree-proportional sampling (the standard trick).
	targets := make([]graph.VertexID, 0, 2*n*m)
	targets = append(targets, 0, 1)
	edges = append(edges, graph.Edge{Src: 1, Dst: 0})
	for v := 2; v < n; v++ {
		deg := m
		if v <= m {
			deg = v
		}
		for i := 0; i < deg; i++ {
			dst := targets[rng.Intn(len(targets))]
			if int(dst) == v {
				dst = graph.VertexID(rng.Intn(v))
			}
			edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: dst})
			targets = append(targets, graph.VertexID(v), dst)
		}
	}
	return graph.New(n, edges)
}

// RMAT generates a recursive-matrix (Kronecker) graph with 2^scale vertices
// and edgeFactor * 2^scale edges, using the standard (a,b,c,d) quadrant
// probabilities. Graph500 uses (0.57, 0.19, 0.19, 0.05).
func RMAT(scale, edgeFactor int, a, b, c float64, seed uint64) *graph.Graph {
	n := 1 << uint(scale)
	m := edgeFactor * n
	d := 1 - a - b - c
	if d < 0 {
		panic(fmt.Sprintf("gen: RMAT probabilities exceed 1 (a=%v b=%v c=%v)", a, b, c))
	}
	rng := xrand.New(seed)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << uint(bit)
			case r < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
	}
	return graph.New(n, edges)
}

// ErdosRenyi generates n vertices and m uniformly random directed edges.
// It is the no-skew control: partitioners relying on power-law structure
// (DBH, HDRF, CLUGP) should lose their advantage here.
func ErdosRenyi(n, m int, seed uint64) *graph.Graph {
	if n < 2 {
		panic(fmt.Sprintf("gen: ErdosRenyi needs n >= 2, got %d", n))
	}
	rng := xrand.New(seed)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
	}
	return graph.New(n, edges)
}

// SampleVertices returns the subgraph induced by keeping each vertex with
// probability frac (seeded), relabelling kept vertices densely. This is the
// random-sampling procedure behind the paper's Figure 5 graph-size sweep
// ("we randomly sample UK-2002 to create a series of graph datasets").
func SampleVertices(g *graph.Graph, frac float64, seed uint64) *graph.Graph {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("gen: sample fraction %v out of (0,1]", frac))
	}
	rng := xrand.New(seed)
	keep := make([]int32, g.NumVertices)
	n := 0
	for v := range keep {
		if rng.Float64() < frac {
			keep[v] = int32(n)
			n++
		} else {
			keep[v] = -1
		}
	}
	var edges []graph.Edge
	for _, e := range g.Edges {
		su, sv := keep[e.Src], keep[e.Dst]
		if su >= 0 && sv >= 0 {
			edges = append(edges, graph.Edge{Src: graph.VertexID(su), Dst: graph.VertexID(sv)})
		}
	}
	return graph.New(n, edges)
}

// SampleEdges keeps each edge independently with probability frac, without
// relabelling vertices. Used for quick stress variants in tests.
func SampleEdges(g *graph.Graph, frac float64, seed uint64) *graph.Graph {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("gen: sample fraction %v out of (0,1]", frac))
	}
	rng := xrand.New(seed)
	var edges []graph.Edge
	for _, e := range g.Edges {
		if rng.Float64() < frac {
			edges = append(edges, e)
		}
	}
	return graph.New(g.NumVertices, edges)
}
