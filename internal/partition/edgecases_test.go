package partition

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func evalQuality(edges []graph.Edge, assign []int32, nv, k int) (float64, error) {
	q, err := metrics.Evaluate(stream.Of(edges).Source(nv), assign, k)
	if err != nil {
		return 0, err
	}
	return q.ReplicationFactor, nil
}

func newTestRNG(seed uint64) *xrand.RNG { return xrand.New(seed) }

// Edge-case coverage shared across all algorithms: degenerate graphs,
// duplicate edges, self-loops, and k at the extremes.

func degenerateGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"single-edge":  graph.New(2, []graph.Edge{{Src: 0, Dst: 1}}),
		"self-loop":    graph.New(1, []graph.Edge{{Src: 0, Dst: 0}}),
		"duplicates":   graph.New(2, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1}}),
		"star":         starGraph(50),
		"path":         pathGraph(50),
		"two-vertices": graph.New(2, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}),
	}
}

func starGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 0})
	}
	return graph.New(n, edges)
}

func pathGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
	}
	return graph.New(n, edges)
}

func TestDegenerateGraphsAllAlgorithms(t *testing.T) {
	for gname, g := range degenerateGraphs() {
		for _, p := range allPartitioners() {
			for _, k := range []int{1, 2, 7} {
				res, err := Run(p, g, k, 1)
				if err != nil {
					t.Fatalf("%s on %s k=%d: %v", p.Name(), gname, k, err)
				}
				if len(res.Assign) != g.NumEdges() {
					t.Fatalf("%s on %s k=%d: wrong assignment length", p.Name(), gname, k)
				}
				if res.Quality.ReplicationFactor < 1 {
					t.Fatalf("%s on %s k=%d: RF %v < 1", p.Name(), gname, k, res.Quality.ReplicationFactor)
				}
			}
		}
	}
}

// TestKExceedsEdges: more partitions than edges still yields a valid
// (necessarily unbalanced) result.
func TestKExceedsEdges(t *testing.T) {
	g := pathGraph(5) // 4 edges
	for _, p := range allPartitioners() {
		res, err := Run(p, g, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		var total int64
		for _, s := range res.Quality.Sizes {
			total += s
		}
		if total != 4 {
			t.Fatalf("%s: lost edges at k > |E|", p.Name())
		}
	}
}

// TestStarGraphHubCutting: on a star, a quality partitioner should cut the
// hub (replicating it) while keeping every leaf whole.
func TestStarGraphHubCutting(t *testing.T) {
	g := starGraph(200)
	for _, name := range []string{"DBH", "HDRF", "CLUGP"} {
		p, _ := New(name, 1)
		res, err := Run(p, g, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		// RF = (|P(hub)| + 199 leaves) / 200 <= (8 + 199)/200.
		if res.Quality.ReplicationFactor > 1.04 {
			t.Fatalf("%s: star RF %.3f, want ~1.035 (only the hub cut)", name, res.Quality.ReplicationFactor)
		}
	}
}

// TestERControlGraph: on a uniform random graph the clustering advantage
// should vanish - CLUGP must not be dramatically better than DBH - but all
// invariants still hold.
func TestERControlGraph(t *testing.T) {
	g := gen.ErdosRenyi(2000, 16000, 3)
	dbh, err := Run(&DBH{Seed: 1}, g, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	clugp, err := Run(&CLUGP{Seed: 1}, g, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clugp.Quality.ReplicationFactor < dbh.Quality.ReplicationFactor/3 {
		t.Fatalf("implausible CLUGP advantage on structureless graph: %.3f vs %.3f",
			clugp.Quality.ReplicationFactor, dbh.Quality.ReplicationFactor)
	}
}

// TestOrderRobustness: CLUGP follows the paper in preferring BFS streams,
// but its quality must not collapse under a shuffled stream (with the
// calibrated clustering the two orders measure within a few percent of
// each other; see EXPERIMENTS.md).
func TestOrderRobustness(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 6000, OutDegree: 8, IntraSite: 0.88, Seed: 12})
	p := &CLUGP{Seed: 1}
	bfsEdges := g.Edges // generation order is crawl-like already
	bfs, err := p.Partition(stream.Of(bfsEdges).Source(g.NumVertices), 16)
	if err != nil {
		t.Fatal(err)
	}
	qBFS, err := evalQuality(bfsEdges, bfs, g.NumVertices, 16)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]graph.Edge(nil), g.Edges...)
	rng := newTestRNG(9)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	rnd, err := p.Partition(stream.Of(shuffled).Source(g.NumVertices), 16)
	if err != nil {
		t.Fatal(err)
	}
	qRnd, err := evalQuality(shuffled, rnd, g.NumVertices, 16)
	if err != nil {
		t.Fatal(err)
	}
	if qBFS > 1.3*qRnd || qRnd > 1.3*qBFS {
		t.Fatalf("order changed CLUGP quality by >30%%: bfs %.3f vs random %.3f", qBFS, qRnd)
	}
}

// TestCLUGPThreadCountInvariantQuality: the batch-parallel game must give
// identical results regardless of worker count (batches are independent).
func TestCLUGPThreadCountInvariantQuality(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 5000, OutDegree: 8, IntraSite: 0.85, Seed: 13})
	var first []int32
	for _, threads := range []int{1, 4, 16} {
		p := &CLUGP{Seed: 1, Threads: threads, BatchSize: 256}
		res, err := Run(p, g, 32, 1)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res.Assign
			continue
		}
		for i := range first {
			if res.Assign[i] != first[i] {
				t.Fatalf("threads=%d: assignment differs at edge %d", threads, i)
			}
		}
	}
}

// TestRelWeightExtremes: both cost-weight extremes must still produce valid
// partitions, and the balanced default should not be worse than both
// extremes at once (the U-shape of Figure 11b).
func TestRelWeightExtremes(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 6000, OutDegree: 8, IntraSite: 0.88, Seed: 14})
	rf := map[float64]float64{}
	for _, w := range []float64{0.1, 0.5, 0.9} {
		p := &CLUGP{Seed: 1, RelWeight: w}
		res, err := Run(p, g, 32, 1)
		if err != nil {
			t.Fatal(err)
		}
		rf[w] = res.Quality.ReplicationFactor
	}
	if rf[0.5] > rf[0.1] && rf[0.5] > rf[0.9] {
		t.Fatalf("default weight is the worst of the sweep: %v", rf)
	}
}
