package bench

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

// smallSuite is a grid small enough for tests but covering two datasets,
// every algorithm family's order preference, and two ks.
func smallSuite() SuiteConfig {
	return SuiteConfig{
		Algorithms: []string{"Hashing", "HDRF", "CLUGP"},
		Datasets:   []string{"UK", "Twitter"},
		Ks:         []int{4, 16},
		Seeds:      []uint64{42, 43},
		Scale:      0.02,
	}
}

// stripRuntimes zeroes the fields that legitimately vary with run
// conditions - wall times always, allocation deltas because only serial
// runs record them - so the rest of the report can be compared exactly.
func stripRuntimes(r *Report) *Report {
	c := *r
	c.Workers = 0
	c.WallTimeNS = 0
	c.Cells = append([]Cell(nil), r.Cells...)
	for i := range c.Cells {
		c.Cells[i].RuntimeNS = 0
		c.Cells[i].Allocs = 0
		c.Cells[i].AllocBytes = 0
	}
	return &c
}

// TestSuiteParallelMatchesSerial is the tentpole invariant: the parallel
// runner must produce bit-identical quality metrics, in identical order,
// to the serial run.
func TestSuiteParallelMatchesSerial(t *testing.T) {
	cfg := smallSuite()
	serial, err := RunSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := RunSuiteParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Workers != 1 {
		t.Errorf("RunSuite.Workers = %d, want 1", serial.Workers)
	}
	if parallel.Workers != 4 {
		t.Errorf("RunSuiteParallel.Workers = %d, want 4", parallel.Workers)
	}
	if !reflect.DeepEqual(stripRuntimes(serial), stripRuntimes(parallel)) {
		t.Fatal("parallel suite differs from serial beyond runtime fields")
	}
	wantCells := len(cfg.Algorithms) * len(cfg.Datasets) * len(cfg.Ks) * len(cfg.Seeds)
	if len(parallel.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(parallel.Cells), wantCells)
	}
}

// TestSuiteStreamOrdersBuiltOnce checks the shared cache holds the suite to
// at most one ordering per (graph, order, seed) however many cells run.
func TestSuiteStreamOrdersBuiltOnce(t *testing.T) {
	cfg := smallSuite()
	cfg.Workers = 4
	report, err := RunSuiteParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hashing and HDRF stream in random order (keyed per seed), CLUGP in
	// BFS (seed-independent): per graph that is 2 random + 1 bfs = 3.
	want := int64(len(cfg.Datasets)) * 3
	if report.StreamOrdersBuilt != want {
		t.Errorf("StreamOrdersBuilt = %d, want %d (each order at most once per graph)", report.StreamOrdersBuilt, want)
	}
}

// TestReportJSONRoundTrip checks WriteJSON/ReadReport and the file variants
// reproduce the report exactly.
func TestReportJSONRoundTrip(t *testing.T) {
	cfg := smallSuite()
	cfg.Ks = []int{4}
	cfg.Seeds = []uint64{42}
	report, err := RunSuiteParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report, back) {
		t.Error("report changed across WriteJSON/ReadReport")
	}

	path := filepath.Join(t.TempDir(), report.Filename())
	if err := report.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err = LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report, back) {
		t.Error("report changed across WriteFile/LoadReport")
	}
	if report.Filename() != "BENCH_suite.json" {
		t.Errorf("Filename() = %q, want BENCH_suite.json", report.Filename())
	}
}

// TestDiffDetectsInjectedRegression corrupts one cell of a copied report
// and checks Diff flags exactly that metric.
func TestDiffDetectsInjectedRegression(t *testing.T) {
	baseline := &Report{
		Experiment: "suite",
		Cells: []Cell{
			{Algorithm: "CLUGP", Dataset: "UK", K: 4, Seed: 42, ReplicationFactor: 2.0, RelativeBalance: 1.0, RuntimeNS: 100e6},
			{Algorithm: "HDRF", Dataset: "UK", K: 4, Seed: 42, ReplicationFactor: 2.5, RelativeBalance: 1.0, RuntimeNS: 200e6},
		},
	}
	current := &Report{Experiment: "suite", Cells: append([]Cell(nil), baseline.Cells...)}

	// Identical reports: clean diff.
	d := Diff(baseline, current, DiffOptions{})
	if d.HasRegressions() || len(d.Improvements) != 0 || d.Matched != 2 {
		t.Fatalf("identical reports: regressions=%d improvements=%d matched=%d", len(d.Regressions), len(d.Improvements), d.Matched)
	}

	// Inject a quality regression (RF up 10%) on CLUGP.
	current.Cells[0].ReplicationFactor = 2.2
	d = Diff(baseline, current, DiffOptions{})
	if len(d.Regressions) != 1 {
		t.Fatalf("injected RF regression: got %d regressions, want 1: %+v", len(d.Regressions), d.Regressions)
	}
	r := d.Regressions[0]
	if r.Metric != "replication_factor" || r.Cell != current.Cells[0].ID() {
		t.Errorf("flagged %s on %s, want replication_factor on %s", r.Metric, r.Cell, current.Cells[0].ID())
	}

	// A big runtime slowdown is flagged; one under the absolute floor is not.
	current.Cells[0].ReplicationFactor = 2.0
	current.Cells[0].RuntimeNS = 400e6 // 100ms -> 400ms: over floor and tolerance
	current.Cells[1].RuntimeNS = 230e6 // 200ms -> 230ms: under both
	d = Diff(baseline, current, DiffOptions{})
	if len(d.Regressions) != 1 || d.Regressions[0].Metric != "runtime" {
		t.Fatalf("runtime regression: got %+v, want one runtime flag", d.Regressions)
	}

	// Quality improvements land on the other side of the ledger.
	current.Cells[0].RuntimeNS = 100e6
	current.Cells[0].ReplicationFactor = 1.5
	d = Diff(baseline, current, DiffOptions{})
	if d.HasRegressions() || len(d.Improvements) != 1 {
		t.Fatalf("improvement: regressions=%+v improvements=%+v", d.Regressions, d.Improvements)
	}

	// Grid changes surface as unmatched cells, not regressions.
	current.Cells = current.Cells[:1]
	d = Diff(baseline, current, DiffOptions{})
	if len(d.OnlyBaseline) != 1 || d.Matched != 1 {
		t.Errorf("dropped cell: only_baseline=%v matched=%d", d.OnlyBaseline, d.Matched)
	}
}

// TestDiffSkipsRuntimeAcrossEnvironments checks runtime is not compared
// between reports measured under different worker counts or GOMAXPROCS -
// only quality - while identical environments still compare runtime.
func TestDiffSkipsRuntimeAcrossEnvironments(t *testing.T) {
	cell := Cell{Algorithm: "CLUGP", Dataset: "UK", K: 4, Seed: 42, ReplicationFactor: 2.0, RelativeBalance: 1.0, RuntimeNS: 100e6}
	baseline := &Report{Workers: 1, GOMAXPROCS: 8, Cells: []Cell{cell}}
	slow := cell
	slow.RuntimeNS = 400e6
	current := &Report{Workers: 4, GOMAXPROCS: 8, Cells: []Cell{slow}}

	d := Diff(baseline, current, DiffOptions{})
	if d.RuntimeSkipped == "" {
		t.Error("workers differ: want RuntimeSkipped set")
	}
	if d.HasRegressions() {
		t.Errorf("workers differ: runtime must not be compared, got %+v", d.Regressions)
	}

	// Quality is still compared even when runtime is skipped.
	bad := slow
	bad.ReplicationFactor = 3.0
	current.Cells = []Cell{bad}
	d = Diff(baseline, current, DiffOptions{})
	if len(d.Regressions) != 1 || d.Regressions[0].Metric != "replication_factor" {
		t.Errorf("quality under skipped runtime: got %+v", d.Regressions)
	}

	// Same environment: the runtime regression is flagged.
	current = &Report{Workers: 1, GOMAXPROCS: 8, Cells: []Cell{slow}}
	d = Diff(baseline, current, DiffOptions{})
	if len(d.Regressions) != 1 || d.Regressions[0].Metric != "runtime" {
		t.Errorf("same environment: got %+v, want runtime flag", d.Regressions)
	}
}

// TestDiffMarksDifferentGraphsIncomparable checks cells whose underlying
// graphs differ (a -scale change) are surfaced as incomparable instead of
// producing false quality regressions.
func TestDiffMarksDifferentGraphsIncomparable(t *testing.T) {
	cell := Cell{Algorithm: "CLUGP", Dataset: "UK", K: 4, Seed: 42, Vertices: 30000, Edges: 240000, ReplicationFactor: 2.0, RelativeBalance: 1.0}
	baseline := &Report{Scale: 1.0, Cells: []Cell{cell}}
	half := cell
	half.Vertices, half.Edges = 15000, 118000
	half.ReplicationFactor = 2.5 // different graph, naturally different RF
	current := &Report{Scale: 0.5, Cells: []Cell{half}}

	d := Diff(baseline, current, DiffOptions{})
	if d.HasRegressions() {
		t.Errorf("different graphs must not classify as regressions: %+v", d.Regressions)
	}
	if len(d.Incomparable) != 1 || d.Incomparable[0] != cell.ID() {
		t.Errorf("Incomparable = %v, want [%s]", d.Incomparable, cell.ID())
	}
}

// TestSuiteValidatesGrid checks unknown names fail before any work runs.
func TestSuiteValidatesGrid(t *testing.T) {
	cfg := smallSuite()
	cfg.Algorithms = []string{"NoSuchAlgo"}
	if _, err := RunSuiteParallel(cfg); err == nil {
		t.Error("unknown algorithm: want error")
	}
	cfg = smallSuite()
	cfg.Datasets = []string{"NoSuchDataset"}
	if _, err := RunSuiteParallel(cfg); err == nil {
		t.Error("unknown dataset: want error")
	}
}

// TestDiffAllocGating pins the strict allocation gate: any growth in a
// cell's alloc count is a regression when both reports are serial at the
// same GOMAXPROCS, and the comparison is skipped (never false-flagged)
// for parallel runs, mismatched GOMAXPROCS, or alloc-less baselines.
func TestDiffAllocGating(t *testing.T) {
	cell := Cell{Algorithm: "HDRF", Dataset: "UK", K: 4, Seed: 42,
		Vertices: 100, Edges: 1000, ReplicationFactor: 2, RelativeBalance: 1,
		Allocs: 100, AllocBytes: 4096}
	base := &Report{Workers: 1, GOMAXPROCS: 1, Cells: []Cell{cell}}

	// Growth beyond the absolute floor is a regression, however small in
	// relative terms.
	grew := cell
	grew.Allocs = 108
	d := Diff(base, &Report{Workers: 1, GOMAXPROCS: 1, Cells: []Cell{grew}}, DiffOptions{})
	if len(d.Regressions) != 1 || d.Regressions[0].Metric != "allocs" {
		t.Errorf("alloc growth: got %+v, want one allocs regression", d.Regressions)
	}
	// One or two stray allocations sit under the floor: runtime background
	// noise, not a regression.
	noise := cell
	noise.Allocs = 102
	d = Diff(base, &Report{Workers: 1, GOMAXPROCS: 1, Cells: []Cell{noise}}, DiffOptions{})
	if d.HasRegressions() {
		t.Errorf("sub-floor alloc jitter flagged: %+v", d.Regressions)
	}
	// Fewer bytes (beyond the floor) is an improvement, not a regression.
	shrunk := cell
	shrunk.AllocBytes = 0
	shrunk.Allocs = 50
	d = Diff(base, &Report{Workers: 1, GOMAXPROCS: 1, Cells: []Cell{shrunk}}, DiffOptions{})
	if d.HasRegressions() || len(d.Improvements) != 2 {
		t.Errorf("shrink: regressions %+v improvements %+v", d.Regressions, d.Improvements)
	}

	// Parallel run: skipped with a reason, growth not flagged.
	d = Diff(base, &Report{Workers: 4, GOMAXPROCS: 1, Cells: []Cell{grew}}, DiffOptions{})
	if d.AllocSkipped == "" || len(d.Regressions) != 0 {
		t.Errorf("parallel: AllocSkipped=%q regressions=%+v", d.AllocSkipped, d.Regressions)
	}
	// GOMAXPROCS above 1 on either side: skipped (worker pools allocate
	// scratch on scheduler-chosen workers, so counts are nondeterministic).
	d = Diff(base, &Report{Workers: 1, GOMAXPROCS: 8, Cells: []Cell{grew}}, DiffOptions{})
	if d.AllocSkipped == "" {
		t.Error("GOMAXPROCS>1 current must skip alloc comparison")
	}
	multiBase := &Report{Workers: 1, GOMAXPROCS: 8, Cells: []Cell{cell}}
	d = Diff(multiBase, &Report{Workers: 1, GOMAXPROCS: 8, Cells: []Cell{grew}}, DiffOptions{})
	if d.AllocSkipped == "" || len(d.Regressions) != 0 {
		t.Errorf("matching GOMAXPROCS=8 must still skip alloc comparison: %q %+v", d.AllocSkipped, d.Regressions)
	}
	// Baseline predating the field (all-zero allocs): skipped.
	old := cell
	old.Allocs, old.AllocBytes = 0, 0
	d = Diff(&Report{Workers: 1, GOMAXPROCS: 1, Cells: []Cell{old}},
		&Report{Workers: 1, GOMAXPROCS: 1, Cells: []Cell{grew}}, DiffOptions{})
	if d.AllocSkipped == "" || len(d.Regressions) != 0 {
		t.Errorf("alloc-less baseline: AllocSkipped=%q regressions=%+v", d.AllocSkipped, d.Regressions)
	}
}

// TestSuiteSerialRecordsAllocs: a 1-worker suite records repeatable
// allocation counts (up to the runtime's stray-allocation jitter, the same
// sub-floor band the Diff gate ignores); a parallel suite leaves them zero.
func TestSuiteSerialRecordsAllocs(t *testing.T) {
	cfg := smallSuite()
	cfg.Workers = 1
	a, err := RunSuiteParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuiteParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jitter := DiffOptions{}.withDefaults().AllocFloor
	for i := range a.Cells {
		if a.Cells[i].Allocs == 0 || a.Cells[i].AllocBytes == 0 {
			t.Fatalf("serial cell %s recorded no allocations", a.Cells[i].ID())
		}
		if d := abs64(a.Cells[i].Allocs - b.Cells[i].Allocs); d >= jitter {
			t.Fatalf("cell %s allocs not repeatable beyond runtime jitter: %d vs %d",
				a.Cells[i].ID(), a.Cells[i].Allocs, b.Cells[i].Allocs)
		}
	}
	cfg.Workers = 4
	p, err := RunSuiteParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Cells {
		if p.Cells[i].Allocs != 0 {
			t.Fatal("parallel suite must not record per-cell allocations")
		}
	}
}
