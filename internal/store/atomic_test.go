package store

import (
	"os"
	"path/filepath"
	"testing"
)

// tempFiles lists the hidden temp files AtomicWriter would leave in dir.
func tempFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, ".*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestAbortPendingSweepsLiveWriters: the signal-handler sweep aborts every
// writer caught between create and Commit - their temp files vanish, their
// final paths stay untouched, later writes fail cleanly instead of
// resurrecting the file - while committed and aborted writers are left
// alone and a second sweep finds nothing.
func TestAbortPendingSweepsLiveWriters(t *testing.T) {
	dir := t.TempDir()

	committed, err := NewAtomicWriter(filepath.Join(dir, "done.out"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := committed.Write([]byte("complete artifact")); err != nil {
		t.Fatal(err)
	}
	if err := committed.Commit(); err != nil {
		t.Fatal(err)
	}

	var pending []*AtomicWriter
	for _, name := range []string{"a.out", "b.out"} {
		w, err := NewAtomicWriter(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte("half-written")); err != nil {
			t.Fatal(err)
		}
		pending = append(pending, w)
	}
	if got := tempFiles(t, dir); len(got) != 2 {
		t.Fatalf("expected 2 live temp files, found %v", got)
	}

	if n := AbortPending(); n != 2 {
		t.Fatalf("AbortPending swept %d writers, want 2", n)
	}
	if got := tempFiles(t, dir); len(got) != 0 {
		t.Fatalf("temp files survived the sweep: %v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "done.out")); err != nil {
		t.Fatalf("committed file disturbed by the sweep: %v", err)
	}
	for _, name := range []string{"a.out", "b.out"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s exists (stat err %v); aborted writers must not publish", name, err)
		}
	}
	for _, w := range pending {
		if _, err := w.Write([]byte("more")); err == nil {
			t.Fatal("write to a swept writer succeeded")
		}
	}
	if n := AbortPending(); n != 0 {
		t.Fatalf("second sweep found %d writers, want 0", n)
	}
}
