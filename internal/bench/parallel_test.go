package bench

import (
	"bytes"
	"testing"
)

// TestParallelCells pins the scaling grid's invariants: one cell per
// algorithm x worker count per dataset, quality bit-identical down each
// workers column (the run-time gate), the workers=1 reference at
// speedup 1.0, and every cell measured.
func TestParallelCells(t *testing.T) {
	rep, err := RunSuite(streamSuite())
	if err != nil {
		t.Fatal(err)
	}
	want := len(parallelAlgos) * len(parallelWorkers)
	if len(rep.ParallelCells) != want {
		t.Fatalf("got %d parallel cells, want %d", len(rep.ParallelCells), want)
	}
	ref := map[string]ParallelCell{}
	for _, c := range rep.ParallelCells {
		if c.PartitionNS <= 0 {
			t.Errorf("%s: missing runtime: %+v", c.ID(), c)
		}
		if c.Workers == 1 {
			if c.Speedup != 1 || c.Efficiency != 1 {
				t.Errorf("%s: serial reference has speedup %v / efficiency %v", c.ID(), c.Speedup, c.Efficiency)
			}
			ref[c.Dataset+"/"+c.Algorithm] = c
			continue
		}
		r, ok := ref[c.Dataset+"/"+c.Algorithm]
		if !ok {
			t.Fatalf("%s: no workers=1 reference preceding it", c.ID())
		}
		if c.ReplicationFactor != r.ReplicationFactor || c.RelativeBalance != r.RelativeBalance {
			t.Errorf("%s: quality diverges from serial", c.ID())
		}
		if c.Speedup <= 0 || c.Efficiency <= 0 {
			t.Errorf("%s: unmeasured scaling: %+v", c.ID(), c)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.ParallelCells) != len(rep.ParallelCells) || back.ParallelCells[0] != rep.ParallelCells[0] {
		t.Fatal("parallel cells mangled by JSON round trip")
	}

	// Diff gating: self-diff clean, injected quality drift flagged at exact
	// tolerance, missing grid skipped rather than phantom-flagged.
	clean := Diff(rep, rep, DiffOptions{})
	if clean.HasRegressions() {
		t.Fatalf("self-diff regressed: %+v", clean.Regressions)
	}
	if clean.ParallelSkipped != "" {
		t.Fatalf("self-diff skipped parallel cells: %s", clean.ParallelSkipped)
	}
	worse := *rep
	worse.ParallelCells = append([]ParallelCell(nil), rep.ParallelCells...)
	worse.ParallelCells[1].ReplicationFactor *= 1.000001
	d := Diff(rep, &worse, DiffOptions{})
	found := false
	for _, r := range d.Regressions {
		if r.Metric == "replication_factor" {
			found = true
		}
	}
	if !found {
		t.Fatalf("quality drift in a parallel cell not flagged: %+v", d.Regressions)
	}
	old := *rep
	old.ParallelCells = nil
	d = Diff(&old, rep, DiffOptions{})
	if d.ParallelSkipped == "" {
		t.Fatal("baseline without parallel cells should skip the comparison")
	}
	if d.HasRegressions() {
		t.Fatalf("skip still produced regressions: %+v", d.Regressions)
	}
}
