package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/partition"
	"repro/internal/store"
)

// ScoreCell is one grid point of the parallel-scoring benchmark: one
// algorithm streaming one dataset out-of-core (mmap backend, CGR3 format)
// with one score worker count and decode left serial, so the scaling
// column isolates the gather -> score -> apply pipeline rather than the
// decode fleet. Like ParallelCell, quality is gated at run time against
// the score-workers=1 cell of the same (dataset, algorithm): sharded
// scoring is bit-identical by construction, so any drift is a bug, not
// noise, and fails the suite.
type ScoreCell struct {
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	// ScoreWorkers is the scoring shard count (1 = the serial reference
	// the scaling column is measured against).
	ScoreWorkers int    `json:"score_workers"`
	K            int    `json:"k"`
	Seed         uint64 `json:"seed"`
	// Vertices and Edges describe the built graph (after scaling).
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// PartitionNS is the full out-of-core run at this score worker count.
	PartitionNS int64 `json:"partition_ns"`
	// Speedup is the score-workers=1 cell's runtime divided by this
	// cell's; Efficiency is Speedup/ScoreWorkers. Both are hardware- and
	// load-dependent and are never diffed against baselines; PartitionNS
	// carries the runtime comparison.
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// ReplicationFactor and RelativeBalance must be bit-identical across
	// the whole score-workers column (enforced when the cells are measured).
	ReplicationFactor float64 `json:"replication_factor"`
	RelativeBalance   float64 `json:"relative_balance"`
}

// ID names the cell's grid coordinates, the join key for baseline diffs.
func (c ScoreCell) ID() string {
	return fmt.Sprintf("score/%s/%s sw=%d k=%d seed=%d", c.Dataset, c.Algorithm, c.ScoreWorkers, c.K, c.Seed)
}

// scoreWorkerCol is the scaling column; scoreAlgos pairs the flat-bitset
// heuristic whose score loop dominates (HDRF scans all k partitions per
// edge) with the paper's restreaming partitioner (sharded pass 3).
var (
	scoreWorkerCol = []int{1, 2, 4}
	scoreAlgos     = []string{"HDRF", "CLUGP"}
)

// runScoreCells measures the parallel-scoring grid serially (each cell
// times wall clock over its own shard fleet). Graphs are encoded once into
// a temp directory (mmap + CGR3, the checksummed production pairing the
// CLI defaults to), decode stays single-threaded.
func runScoreCells(cfg SuiteConfig) ([]ScoreCell, error) {
	datasets := cfg.StreamDatasets
	if len(datasets) == 0 {
		datasets = defaultStreamDatasets
	}
	seed := cfg.Seeds[0]
	dir, err := os.MkdirTemp("", "bench-score-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var cells []ScoreCell
	for _, name := range datasets {
		ds, err := DatasetByName(name)
		if err != nil {
			return nil, fmt.Errorf("bench: score cells: %w", err)
		}
		g := ds.Build(cfg.Scale)
		suiteLogf(cfg, "score: built %s (%d vertices, %d edges)", name, g.NumVertices, g.NumEdges())
		path := filepath.Join(dir, name+".cgr")
		if err := writeEncoded(path, g, store.FormatCGR3); err != nil {
			return nil, err
		}
		src, err := store.OpenMmap(path)
		if err != nil {
			return nil, err
		}
		for _, alg := range scoreAlgos {
			var ref ScoreCell
			for _, sw := range scoreWorkerCol {
				p, err := partition.New(alg, seed)
				if err != nil {
					src.Close()
					return nil, err
				}
				start := time.Now()
				res, err := partition.RunOutOfCoreOpts(p, src, streamK, nil, partition.OutOfCoreOptions{ScoreWorkers: sw})
				if err != nil {
					src.Close()
					return nil, fmt.Errorf("bench: score cell %s/%s sw=%d: %w", name, alg, sw, err)
				}
				elapsed := time.Since(start)
				cell := ScoreCell{
					Dataset: name, Algorithm: alg, ScoreWorkers: sw,
					K: streamK, Seed: seed,
					Vertices: g.NumVertices, Edges: g.NumEdges(),
					PartitionNS:       elapsed.Nanoseconds(),
					ReplicationFactor: res.Quality.ReplicationFactor,
					RelativeBalance:   res.Quality.RelativeBalance,
				}
				if sw == 1 {
					ref = cell
					cell.Speedup, cell.Efficiency = 1, 1
				} else {
					// The bit-identity gate: sharded-scoring quality must equal
					// the serial cell exactly, not within tolerance.
					if cell.ReplicationFactor != ref.ReplicationFactor || cell.RelativeBalance != ref.RelativeBalance {
						src.Close()
						return nil, fmt.Errorf("bench: score cell %s/%s sw=%d: quality diverges from serial (RF %v vs %v, bal %v vs %v)",
							name, alg, sw, cell.ReplicationFactor, ref.ReplicationFactor, cell.RelativeBalance, ref.RelativeBalance)
					}
					if cell.PartitionNS > 0 {
						cell.Speedup = float64(ref.PartitionNS) / float64(cell.PartitionNS)
						cell.Efficiency = cell.Speedup / float64(sw)
					}
				}
				cells = append(cells, cell)
				suiteLogf(cfg, "  score %-4s %-5s sw=%d  %v  speedup %.2fx (eff %.2f)",
					name, alg, sw, elapsed.Round(time.Millisecond), cell.Speedup, cell.Efficiency)
			}
		}
		src.Close()
	}
	return cells, nil
}
