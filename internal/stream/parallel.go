package stream

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// ParallelConfig sizes a parallel decode pipeline. The zero value selects
// the defaults noted on each field; every knob affects scheduling and
// prefetch only, never which edges appear in which position - the stream a
// ParallelSource delivers is a pure function of the base stream.
type ParallelConfig struct {
	// Workers is the number of decode goroutines (default GOMAXPROCS,
	// clamped to the segment count - tiny streams spawn fewer).
	Workers int
	// BatchEdges is the batch granularity: the stream is cut into
	// fixed-size batches of this many edges (the last one short), and each
	// NextBlock returns exactly one batch. Batch b always covers edges
	// [b*BatchEdges, (b+1)*BatchEdges) regardless of the worker count,
	// which is what makes downstream per-edge algorithms see a bit-identical
	// stream however many workers decode it. Default BlockLen.
	BatchEdges int
	// SegmentBatches is the scheduling unit: workers claim runs of this
	// many consecutive batches, each opened as one base Segment (one
	// checkpoint seek + roll-forward, one file handle on seek-based
	// backends), so larger values amortize segment-open cost and smaller
	// values spread tail work. Default 8.
	SegmentBatches int
	// Depth is the per-worker prefetch bound in batches: a worker may run
	// at most Depth undelivered batches ahead of the commit frontier, so
	// pipeline memory is Workers*Depth*BatchEdges edges. Default 4.
	Depth int
}

func (c ParallelConfig) withDefaults() ParallelConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchEdges <= 0 {
		c.BatchEdges = BlockLen
	}
	if c.SegmentBatches <= 0 {
		c.SegmentBatches = 8
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	return c
}

// parcel is one decoded batch in flight from a worker to the consumer, or
// the error that ended the worker's segment.
type parcel struct {
	buf []graph.Edge
	err error
}

// ParallelSource decodes a segmentable stream with a pool of workers while
// delivering its edges in exact stream order - the decode stage of the
// parallel hot pass. The stream is cut into fixed-size batches (ParallelConfig
// .BatchEdges); segments of consecutive batches are statically round-robined
// across workers, each worker decodes its segments through its own base
// Segment cursor into recycled batch buffers, and the consumer commits
// batches in global order by draining each batch from its owner's channel.
// Per-worker channels make the segment-ordered merge free: a worker's
// batches arrive in order, and the owner of batch b is a pure function of b,
// so no reordering structure is needed and prefetch memory stays bounded at
// Workers*Depth batches.
//
// Like every Source, a ParallelSource is a single-cursor stream and is not
// safe for concurrent consumption; the concurrency is internal. Reset
// stops the current worker fleet and respawns it from edge 0 (multi-pass
// algorithms restream exactly as they do over serial sources). Close
// releases the workers and any segment resources; the base source is not
// closed unless the ParallelSource owns it (nested Segment wrappers do).
type ParallelSource struct {
	base     Segmenter
	ownsBase bool
	cfg      ParallelConfig
	nv, n    int
	nb       int // number of batches
	nseg     int // number of segments

	// bufs persists each worker's Depth batch buffers across respawns so a
	// multi-pass consumer allocates the pipeline once.
	bufs [][][]graph.Edge

	running bool
	stop    chan struct{}
	wg      sync.WaitGroup
	outs    []chan parcel       // worker -> consumer, cap Depth
	free    []chan []graph.Edge // consumer -> worker buffer returns, cap Depth
	closers []io.Closer         // open segment handles of the current run
	mu      sync.Mutex          // guards closers (workers append, stopRun sweeps)

	pos    int          // next batch index to deliver
	held   []graph.Edge // buffer of the last delivered batch, owed to its worker
	err    error
	closed bool
}

// Parallel wraps a segmentable source in a multi-worker decode pipeline.
// The returned source streams exactly the base stream - same edges, same
// order, for any configuration - so any Source consumer gains parallel
// decode by partitioning the wrapper instead of the base. The caller keeps
// ownership of base (Close releases only pipeline resources); the wrapper
// must not be used concurrently with direct consumption of base.
func Parallel(base Segmenter, cfg ParallelConfig) (*ParallelSource, error) {
	return newParallel(base, cfg, false)
}

func newParallel(base Segmenter, cfg ParallelConfig, ownsBase bool) (*ParallelSource, error) {
	cfg = cfg.withDefaults()
	n := base.Len()
	nb := (n + cfg.BatchEdges - 1) / cfg.BatchEdges
	nseg := (nb + cfg.SegmentBatches - 1) / cfg.SegmentBatches
	if cfg.Workers > nseg && nseg > 0 {
		cfg.Workers = nseg
	}
	if nseg == 0 {
		cfg.Workers = 0
	}
	s := &ParallelSource{
		base: base, ownsBase: ownsBase, cfg: cfg,
		nv: base.NumVertices(), n: n, nb: nb, nseg: nseg,
	}
	s.bufs = make([][][]graph.Edge, cfg.Workers)
	for w := range s.bufs {
		s.bufs[w] = make([][]graph.Edge, cfg.Depth)
		for d := range s.bufs[w] {
			s.bufs[w][d] = make([]graph.Edge, 0, cfg.BatchEdges)
		}
	}
	return s, nil
}

// NumVertices implements Source.
func (s *ParallelSource) NumVertices() int { return s.nv }

// Len implements Source.
func (s *ParallelSource) Len() int { return s.n }

// Workers reports the resolved worker count (after segment-count clamping).
func (s *ParallelSource) Workers() int { return s.cfg.Workers }

// batchRange returns the edge range of batch b.
func (s *ParallelSource) batchRange(b int) (lo, hi int) {
	lo = b * s.cfg.BatchEdges
	hi = lo + s.cfg.BatchEdges
	if hi > s.n {
		hi = s.n
	}
	return lo, hi
}

// owner returns the worker that decodes batch b: segments are round-robined
// in order, so ownership is a pure function of the batch index.
func (s *ParallelSource) owner(b int) int {
	return (b / s.cfg.SegmentBatches) % s.cfg.Workers
}

// Reset implements Source: it stops any in-flight fleet and rewinds to the
// first batch. Workers respawn lazily on the next NextBlock, so a
// Reset-then-Close sequence never starts a fleet it immediately kills.
func (s *ParallelSource) Reset() error {
	if s.closed {
		return fmt.Errorf("stream: parallel source is closed")
	}
	s.stopRun()
	s.pos = 0
	s.held = nil
	s.err = nil
	return nil
}

// NextBlock implements Source: it returns the next fixed-size batch, valid
// until the next NextBlock, Reset or Close call.
func (s *ParallelSource) NextBlock() ([]graph.Edge, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, fmt.Errorf("stream: parallel source is closed")
	}
	if s.pos >= s.nb {
		return nil, io.EOF
	}
	if !s.running {
		s.spawn()
	}
	// Return the previous batch's buffer to its owner before taking the
	// next one; each worker circulates exactly Depth buffers, so this send
	// always has capacity.
	if s.held != nil {
		s.free[s.owner(s.pos-1)] <- s.held
		s.held = nil
	}
	p := <-s.outs[s.owner(s.pos)]
	if p.err != nil {
		s.err = p.err
		s.stopRun()
		return nil, s.err
	}
	s.pos++
	s.held = p.buf
	return p.buf, nil
}

// Segment implements Segmenter: the sub-range is opened on the base source
// and wrapped in its own pipeline with the same configuration, so sharded
// consumers (CLUGP-D's per-node ingest) get parallel decode inside each
// shard. The returned source owns the base segment and releases it on Close.
func (s *ParallelSource) Segment(lo, hi int) (Source, error) {
	if s.closed {
		return nil, fmt.Errorf("stream: parallel source is closed")
	}
	sub, err := s.base.Segment(lo, hi)
	if err != nil {
		return nil, err
	}
	seg, ok := sub.(Segmenter)
	if !ok {
		// A base whose segments cannot segment further still streams
		// correctly - just without nested decode parallelism.
		return sub, nil
	}
	return newParallel(seg, s.cfg, true)
}

// Close implements io.Closer: it stops the workers, releases open segment
// handles, and (for wrappers created by Segment) closes the owned base.
// The last delivered block is invalidated.
func (s *ParallelSource) Close() error {
	if s.closed {
		return nil
	}
	s.stopRun()
	s.closed = true
	s.held = nil
	s.bufs = nil
	var err error
	if s.ownsBase {
		if c, ok := s.base.(io.Closer); ok {
			err = c.Close()
		}
	}
	return err
}

// spawn starts one run of the fleet: fresh channels, free lists primed with
// the persistent buffers, one goroutine per worker walking its round-robin
// share of segments.
func (s *ParallelSource) spawn() {
	s.running = true
	s.stop = make(chan struct{})
	s.outs = make([]chan parcel, s.cfg.Workers)
	s.free = make([]chan []graph.Edge, s.cfg.Workers)
	for w := 0; w < s.cfg.Workers; w++ {
		s.outs[w] = make(chan parcel, s.cfg.Depth)
		s.free[w] = make(chan []graph.Edge, s.cfg.Depth)
		for _, buf := range s.bufs[w] {
			s.free[w] <- buf
		}
		s.wg.Add(1)
		go s.worker(w, s.stop, s.outs[w], s.free[w])
	}
}

// stopRun tears down the current fleet: workers unblock via the stop
// channel, joined, and their open segments closed. Buffers survive in
// s.bufs for the next spawn.
func (s *ParallelSource) stopRun() {
	if !s.running {
		return
	}
	close(s.stop)
	s.wg.Wait()
	s.running = false
	s.mu.Lock()
	closers := s.closers
	s.closers = nil
	s.mu.Unlock()
	for _, c := range closers {
		c.Close()
	}
	s.outs, s.free = nil, nil
}

// worker decodes every segment it owns (seg % Workers == w) in increasing
// order, cutting each into fixed-size batches sent in order on out. Errors
// are delivered positionally: the consumer reaches them exactly where the
// stream broke.
func (s *ParallelSource) worker(w int, stop chan struct{}, out chan parcel, free chan []graph.Edge) {
	defer s.wg.Done()
	fail := func(err error) {
		select {
		case out <- parcel{err: err}:
		case <-stop:
		}
	}
	for seg := w; seg < s.nseg; seg += s.cfg.Workers {
		first := seg * s.cfg.SegmentBatches
		last := first + s.cfg.SegmentBatches
		if last > s.nb {
			last = s.nb
		}
		lo, _ := s.batchRange(first)
		_, hi := s.batchRange(last - 1)
		sub, err := s.base.Segment(lo, hi)
		if err != nil {
			fail(err)
			return
		}
		closeSub := func() {}
		if c, ok := sub.(io.Closer); ok {
			// Register the handle so an abandoned run (Reset/Close while
			// this worker is mid-segment) still releases it.
			s.mu.Lock()
			s.closers = append(s.closers, c)
			idx := len(s.closers) - 1
			s.mu.Unlock()
			closeSub = func() {
				s.mu.Lock()
				s.closers[idx] = nopCloser{}
				s.mu.Unlock()
				c.Close()
			}
		}
		if err := sub.Reset(); err != nil {
			fail(err)
			closeSub()
			return
		}
		if !s.decodeSegment(sub, first, last, stop, out, free) {
			closeSub()
			return
		}
		closeSub()
	}
}

// decodeSegment streams sub into batches [first,last) and sends them. It
// reports false when the worker must exit (stop closed or error sent).
func (s *ParallelSource) decodeSegment(sub Source, first, last int, stop chan struct{}, out chan parcel, free chan []graph.Edge) bool {
	var blk []graph.Edge // current run from the segment cursor
	for b := first; b < last; b++ {
		var buf []graph.Edge
		select {
		case buf = <-free:
		case <-stop:
			return false
		}
		lo, hi := s.batchRange(b)
		buf = buf[:0]
		for len(buf) < hi-lo {
			if len(blk) == 0 {
				var err error
				blk, err = sub.NextBlock()
				if err != nil {
					if err == io.EOF {
						err = io.ErrUnexpectedEOF
					}
					select {
					case out <- parcel{err: err}:
					case <-stop:
					}
					return false
				}
			}
			take := hi - lo - len(buf)
			if take > len(blk) {
				take = len(blk)
			}
			buf = append(buf, blk[:take]...)
			blk = blk[take:]
		}
		select {
		case out <- parcel{buf: buf}:
		case <-stop:
			return false
		}
	}
	return true
}

// nopCloser replaces an already-closed segment handle in the cleanup list.
type nopCloser struct{}

func (nopCloser) Close() error { return nil }
