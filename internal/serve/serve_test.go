package serve

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/store"
)

// savedResult runs algorithm on a small synthetic web graph at k partitions
// and returns its run result alongside the saved form, pushed through the
// file codec so the conformance matrix covers the full save/load path, not
// just the in-memory conversion.
func savedResult(t testing.TB, algorithm string, k int) (*partition.Result, *store.Result) {
	t.Helper()
	g := gen.ErdosRenyi(300, 1200, 7)
	p, err := partition.New(algorithm, 42)
	if err != nil {
		t.Fatal(err)
	}
	run, err := partition.Run(p, g, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	saved, err := FromRun(run)
	if err != nil {
		t.Fatalf("FromRun: %v", err)
	}
	var buf bytes.Buffer
	if err := store.WriteResult(&buf, saved); err != nil {
		t.Fatalf("WriteResult: %v", err)
	}
	loaded, err := store.ReadResult(&buf)
	if err != nil {
		t.Fatalf("ReadResult: %v", err)
	}
	return run, loaded
}

// referenceRoute recomputes RouteEdge from the raw result tables with the
// obvious quadratic-free but slice-based algorithm, independent of the
// word-at-a-time implementation under test.
func referenceRoute(r *store.Result, src, dst graph.VertexID) int32 {
	pick := func(cands []int32) int32 {
		best := int32(-1)
		for _, p := range cands {
			if best < 0 || r.Sizes[p] < r.Sizes[best] {
				best = p
			}
		}
		return best
	}
	if p := pick(r.Replicas.Intersect(src, dst, nil)); p >= 0 {
		return p
	}
	if p := pick(r.Replicas.Union(src, dst, nil)); p >= 0 {
		return p
	}
	all := make([]int32, r.K)
	for i := range all {
		all[i] = int32(i)
	}
	return pick(all)
}

// TestConformanceMatrix differential-tests every snapshot query against
// direct reads of the underlying Result/ReplicaSets, across algorithms,
// k spanning the 64-bit word boundary, and both table layouts. The serving
// path (FromRun -> codec round-trip -> NewSnapshot -> query) must agree
// bit-for-bit with the offline data it was built from.
func TestConformanceMatrix(t *testing.T) {
	for _, algorithm := range []string{"Hashing", "HDRF", "CLUGP"} {
		for _, k := range []int{3, 64, 65, 128} {
			run, loaded := savedResult(t, algorithm, k)
			for _, layout := range []struct {
				name string
				opts Options
			}{
				{"flat", Options{}},
				{"sharded", Options{Shards: 4}},
			} {
				t.Run(fmt.Sprintf("%s/k=%d/%s", algorithm, k, layout.name), func(t *testing.T) {
					snap, err := NewSnapshot(loaded, layout.opts)
					if err != nil {
						t.Fatal(err)
					}
					if snap.Layout() != layout.name {
						t.Fatalf("layout = %q, want %q", snap.Layout(), layout.name)
					}
					if snap.K() != k || snap.NumVertices() != run.NumVertices ||
						snap.NumEdges() != int64(len(run.Assign)) {
						t.Fatalf("snapshot geometry %d/%d/%d disagrees with run",
							snap.K(), snap.NumVertices(), snap.NumEdges())
					}
					// Partition sizes must match the run's quality accounting.
					for p, sz := range run.Quality.Sizes {
						if snap.Size(p) != sz {
							t.Fatalf("size[%d] = %d, want %d", p, snap.Size(p), sz)
						}
					}
					rs := loaded.Replicas
					var scratch, direct []int32
					for v := 0; v < snap.NumVertices(); v++ {
						id := graph.VertexID(v)
						direct = rs.Partitions(id, direct[:0])
						scratch, err = snap.Replicas(id, scratch[:0])
						if err != nil {
							t.Fatal(err)
						}
						if len(scratch) != len(direct) {
							t.Fatalf("vertex %d: %d replicas, want %d", v, len(scratch), len(direct))
						}
						for i := range direct {
							if scratch[i] != direct[i] {
								t.Fatalf("vertex %d replica %d = %d, want %d", v, i, scratch[i], direct[i])
							}
						}
						if n, err := snap.Count(id); err != nil || n != rs.Count(id) {
							t.Fatalf("vertex %d count = %d (%v), want %d", v, n, err, rs.Count(id))
						}
						primary, err := snap.Primary(id)
						if err != nil {
							t.Fatal(err)
						}
						want := int32(-1)
						if len(direct) > 0 {
							want = direct[0] // Partitions appends in ascending order
						}
						if primary != want {
							t.Fatalf("vertex %d primary = %d, want %d", v, primary, want)
						}
					}
					// Edge routing: replayed stream edges (intersection hits by
					// construction) plus synthetic pairs exercising the union
					// and cold branches.
					probe := func(src, dst graph.VertexID) {
						got, err := snap.RouteEdge(src, dst)
						if err != nil {
							t.Fatal(err)
						}
						if want := referenceRoute(loaded, src, dst); got != want {
							t.Fatalf("route(%d,%d) = %d, want %d", src, dst, got, want)
						}
					}
					for v := 0; v < snap.NumVertices()-1; v += 7 {
						probe(graph.VertexID(v), graph.VertexID(v+1))
					}
					// Out-of-range ids reject, including the u32 extremes.
					for _, bad := range []graph.VertexID{
						graph.VertexID(snap.NumVertices()),
						graph.VertexID(snap.NumVertices() + 1),
						^graph.VertexID(0),
					} {
						if _, err := snap.Primary(bad); err != ErrOutOfRange {
							t.Fatalf("Primary(%d) err = %v, want ErrOutOfRange", bad, err)
						}
						if _, err := snap.Count(bad); err != ErrOutOfRange {
							t.Fatalf("Count(%d) err = %v, want ErrOutOfRange", bad, err)
						}
						if _, err := snap.Replicas(bad, nil); err != ErrOutOfRange {
							t.Fatalf("Replicas(%d) err = %v, want ErrOutOfRange", bad, err)
						}
						if _, err := snap.RouteEdge(0, bad); err != ErrOutOfRange {
							t.Fatalf("RouteEdge(0,%d) err = %v, want ErrOutOfRange", bad, err)
						}
						if _, err := snap.RouteEdge(bad, 0); err != ErrOutOfRange {
							t.Fatalf("RouteEdge(%d,0) err = %v, want ErrOutOfRange", bad, err)
						}
					}
				})
			}
		}
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	b, err := NewBuilder(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 4} {
		snap, err := NewSnapshot(b.Result("DBH", "natural"), Options{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if snap.NumVertices() != 0 || snap.NumEdges() != 0 {
			t.Fatalf("shards=%d: empty snapshot reports %d vertices, %d edges",
				shards, snap.NumVertices(), snap.NumEdges())
		}
		if _, err := snap.Primary(0); err != ErrOutOfRange {
			t.Fatalf("shards=%d: Primary(0) on empty graph err = %v", shards, err)
		}
		if _, err := snap.RouteEdge(0, 0); err != ErrOutOfRange {
			t.Fatalf("shards=%d: RouteEdge on empty graph err = %v", shards, err)
		}
	}
}

func TestRouteEdgeColdBranches(t *testing.T) {
	// Hand-built tables: vertex 0 in {1, 2}, vertex 1 in {2, 3}, vertices
	// 2 and 3 unreplicated. Sizes make partition 3 lightest, then 2.
	b, err := NewBuilder(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	edges := []graph.Edge{
		{Src: 0, Dst: 0}, {Src: 0, Dst: 0}, {Src: 0, Dst: 0},
		{Src: 1, Dst: 1}, {Src: 1, Dst: 1},
		{Src: 0, Dst: 1},
	}
	assign := []int32{1, 1, 1, 3, 3, 2}
	if err := b.Observe(edges, assign); err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(b.Result("hand", "natural"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Size(1) != 3 || snap.Size(2) != 1 || snap.Size(3) != 2 {
		t.Fatalf("unexpected sizes %v", snap.AppendSizes(nil))
	}
	cases := []struct {
		src, dst graph.VertexID
		want     int32
	}{
		{0, 1, 2}, // intersection {2}
		{0, 0, 2}, // self-edge: intersection = P(0) = {1, 2}; size 1 vs 3 -> 2
		{0, 2, 2}, // dst unknown: union = P(0) = {1, 2} -> 2
		{1, 3, 2}, // dst unknown: union = P(1) = {2, 3}; size 1 vs 2 -> 2
		{2, 3, 0}, // both unknown: globally least loaded, ties to lowest id -> 0
	}
	for _, tc := range cases {
		got, err := snap.RouteEdge(tc.src, tc.dst)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("route(%d,%d) = %d, want %d", tc.src, tc.dst, got, tc.want)
		}
	}
}

func TestBuilderRejects(t *testing.T) {
	if _, err := NewBuilder(4, 0); err == nil {
		t.Error("NewBuilder accepted k=0")
	}
	if _, err := NewBuilder(-1, 2); err == nil {
		t.Error("NewBuilder accepted negative vertex count")
	}
	b, err := NewBuilder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Observe(make([]graph.Edge, 2), make([]int32, 1)); err == nil {
		t.Error("Observe accepted mismatched lengths")
	}
	if err := b.Observe([]graph.Edge{{Src: 0, Dst: 1}}, []int32{2}); err == nil {
		t.Error("Observe accepted an out-of-range partition")
	}
	if err := b.Observe([]graph.Edge{{Src: 0, Dst: 1}}, []int32{-1}); err == nil {
		t.Error("Observe accepted a negative partition")
	}
}

func TestFromRunRequiresAssignment(t *testing.T) {
	run, _ := savedResult(t, "Hashing", 4)
	run.Assign = nil
	if _, err := FromRun(run); err == nil {
		t.Fatal("FromRun accepted a run with no materialized assignment")
	}
}

func TestNewSnapshotRejects(t *testing.T) {
	if _, err := NewSnapshot(nil, Options{}); err == nil {
		t.Error("NewSnapshot accepted nil result")
	}
	_, saved := savedResult(t, "Hashing", 4)
	saved.Sizes = saved.Sizes[:3]
	if _, err := NewSnapshot(saved, Options{}); err == nil {
		t.Error("NewSnapshot accepted len(Sizes) != k")
	}
	_, saved = savedResult(t, "Hashing", 4)
	saved.NumVertices++
	if _, err := NewSnapshot(saved, Options{}); err == nil {
		t.Error("NewSnapshot accepted a replica table with the wrong vertex count")
	}
}

// TestQueryPathZeroAlloc pins the hot-path contract the serve bench gates
// in CI: with a caller-provided scratch slice, every query answers without
// allocating, on both layouts.
func TestQueryPathZeroAlloc(t *testing.T) {
	_, saved := savedResult(t, "HDRF", 65)
	for _, shards := range []int{0, 4} {
		snap, err := NewSnapshot(saved, Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		scratch := make([]int32, 0, snap.K())
		n := graph.VertexID(snap.NumVertices())
		probe := func() {
			for v := graph.VertexID(0); v < 32; v++ {
				if _, err := snap.Primary(v % n); err != nil {
					t.Fatal(err)
				}
				if _, err := snap.Count(v % n); err != nil {
					t.Fatal(err)
				}
				if _, err := snap.Replicas(v%n, scratch[:0]); err != nil {
					t.Fatal(err)
				}
				if _, err := snap.RouteEdge(v%n, (v+1)%n); err != nil {
					t.Fatal(err)
				}
				if _, err := snap.Primary(^graph.VertexID(0)); err != ErrOutOfRange {
					t.Fatal("expected ErrOutOfRange")
				}
			}
		}
		if allocs := testing.AllocsPerRun(100, probe); allocs != 0 {
			t.Errorf("shards=%d: query path allocates %.1f/run, want 0", shards, allocs)
		}
	}
}

func BenchmarkSnapshotPrimary(b *testing.B) {
	_, saved := savedResult(b, "HDRF", 64)
	snap, err := NewSnapshot(saved, Options{})
	if err != nil {
		b.Fatal(err)
	}
	n := graph.VertexID(snap.NumVertices())
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		if _, err := snap.Primary(graph.VertexID(i) % n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotRouteEdge(b *testing.B) {
	_, saved := savedResult(b, "HDRF", 64)
	for _, shards := range []int{0, 4} {
		name := "flat"
		if shards > 0 {
			name = "sharded"
		}
		b.Run(name, func(b *testing.B) {
			snap, err := NewSnapshot(saved, Options{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			n := graph.VertexID(snap.NumVertices())
			b.ReportAllocs()
			for i := 0; b.Loop(); i++ {
				v := graph.VertexID(i) % n
				if _, err := snap.RouteEdge(v, (v+1)%n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
