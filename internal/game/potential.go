package game

import "repro/internal/cluster"

// Costs evaluates the paper's cost functions over a full (un-batched)
// assignment, for analysis and for the property tests that check the
// exact-potential identity of Theorem 4. All functions use RelWeight = 0.5,
// i.e. the unscaled Equations 10, 11 and 13, with cluster size measured by
// the weight 2*intra+adjacency (the game's load unit).

// GlobalCost is phi(Lambda) of Equation 10:
// lambda/k * sum_p |p|^2 + sum_p |e(p, V\p)|,
// with |p| = sum of weights of p's clusters and the cut term counting
// directed edges leaving each partition.
func GlobalCost(cg *cluster.Graph, assign []int32, k int, lambda float64) float64 {
	load := partitionLoads(cg, assign, k)
	var loadSq float64
	for _, l := range load {
		loadSq += float64(l) * float64(l)
	}
	// Each symmetric arc weight W between clusters in different partitions
	// contributes W directed cut edges in total; summing per partition both
	// directions and halving gives the same value.
	var cut float64
	for c := range cg.Adj {
		ac := assign[c]
		for _, a := range cg.Adj[c] {
			if assign[a.To] != ac {
				cut += float64(a.W)
			}
		}
	}
	cut /= 2 // every crossing arc counted from both endpoints
	return lambda/float64(k)*loadSq + cut
}

// Potential is Phi(Lambda) of Definition 4 (Equation 13):
// lambda/(2k) * sum_p |p|^2 + 1/2 * sum_p |e(p, V\p)|.
func Potential(cg *cluster.Graph, assign []int32, k int, lambda float64) float64 {
	load := partitionLoads(cg, assign, k)
	var loadSq float64
	for _, l := range load {
		loadSq += float64(l) * float64(l)
	}
	var cut float64
	for c := range cg.Adj {
		ac := assign[c]
		for _, a := range cg.Adj[c] {
			if assign[a.To] != ac {
				cut += float64(a.W)
			}
		}
	}
	cut /= 2 // every crossing arc counted from both endpoints -> directed cut
	return lambda/(2*float64(k))*loadSq + cut/2
}

// IndividualCost is phi(a_c) of Equation 11 for cluster c:
// lambda/k * |c| * |a_c| + 1/2 * (weight of c's arcs leaving its partition).
func IndividualCost(cg *cluster.Graph, assign []int32, c cluster.ID, k int, lambda float64) float64 {
	load := partitionLoads(cg, assign, k)
	var cut float64
	for _, a := range cg.Adj[c] {
		if assign[a.To] != assign[c] {
			cut += float64(a.W)
		}
	}
	return lambda/float64(k)*float64(cg.WeightOf(c))*float64(load[assign[c]]) + cut/2
}

// LambdaMax is the Theorem 5 upper bound of the valid lambda range on the
// weight scale: k^2 * sum_i |e(ci, V\ci)| / (sum_i w_i)^2. Returns 1 when
// the graph carries no weight (no edges).
func LambdaMax(cg *cluster.Graph, k int) float64 {
	var sumW int64
	for c := 0; c < cg.NumClusters; c++ {
		sumW += cg.WeightOf(cluster.ID(c))
	}
	if sumW == 0 {
		return 1
	}
	return float64(k*k) * float64(cg.TotalInter) / (float64(sumW) * float64(sumW))
}

func partitionLoads(cg *cluster.Graph, assign []int32, k int) []int64 {
	load := make([]int64, k)
	for c, p := range assign {
		load[p] += cg.WeightOf(cluster.ID(c))
	}
	return load
}
