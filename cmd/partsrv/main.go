// Command partsrv serves a finished graph partitioning over HTTP: vertex
// lookups, replica sets and edge routing, answered from an immutable
// in-memory snapshot of the partition result.
//
// Usage:
//
//	partsrv -result run.cpr -addr :8080            # serve a saved result
//	partsrv -in graph.cgr -k 32 -addr :8080        # partition on boot, then serve
//	partsrv -result run.cpr -layout sharded -shards 16
//
// Input is either a saved result file (clugp -result run.cpr, or
// repro.WriteSavedResult) or a compressed .cgr graph, which is partitioned
// out-of-core on boot with the chosen algorithm - the assignment is never
// materialized; the serving tables are built directly from the emitted
// stream.
//
// Endpoints:
//
//	GET  /v1/vertex/{id}     primary partition + replica count
//	GET  /v1/replicas/{id}   full replica set P(v)
//	GET  /v1/edge?src=&dst=  edge-routing decision (vertex-cut rule)
//	GET  /v1/stats           snapshot metadata + sizes + reload health
//	POST /v1/reload          rebuild from the input and swap epochs
//	GET  /v1/healthz         liveness (also /healthz)
//	GET  /v1/readyz          readiness; 503 while degraded
//
// SIGHUP triggers the same reload as POST /v1/reload: the next snapshot is
// built off-thread from the input file and swapped in with a single atomic
// pointer store. In-flight queries keep answering from the epoch they
// loaded; no request ever blocks on, or tears across, a reload.
//
// SIGTERM/SIGINT shut down gracefully: the listener stops accepting,
// in-flight queries drain for up to -drain-timeout, the reload-retry loop
// stops, and the process exits 0 - the contract a rolling restart or an
// orchestrator's preStop expects. A second signal aborts immediately.
//
// Reloads degrade gracefully rather than fail the service: if the input
// file is missing, corrupt (CGR3/CPR2 checksums catch silent bit rot) or
// changes geometry (vertex or partition count - rejected, since cached
// partition ids would turn into lies), the serving snapshot stays exactly
// as it was and queries keep answering from the last good epoch. The
// failure is counted and surfaced in /v1/stats, and after -max-reload-failures
// consecutive failures /v1/readyz turns 503 so a load balancer can drain
// the replica while /v1/healthz keeps reporting the process alive. Failed
// reloads are retried automatically on a capped exponential backoff with
// jitter (-reload-retry, -reload-retry-cap) until one succeeds.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		result = flag.String("result", "", "saved partition result (.cpr) to serve")
		in     = flag.String("in", "", "compressed .cgr graph to partition on boot (alternative to -result)")
		algo   = flag.String("algo", "CLUGP", "algorithm for -in partitioning on boot")
		k      = flag.Int("k", 32, "partition count for -in")
		seed   = flag.Uint64("seed", 42, "seed for -in")
		addr   = flag.String("addr", ":8080", "listen address")
		layout = flag.String("layout", "flat", "snapshot table layout: flat or sharded")
		shards = flag.Int("shards", 0, "shard count for -layout sharded (default GOMAXPROCS)")

		retryBase   = flag.Duration("reload-retry", time.Second, "delay before the first automatic retry of a failed reload (0 disables)")
		retryCap    = flag.Duration("reload-retry-cap", time.Minute, "upper bound of the reload retry backoff")
		maxFailures = flag.Int("max-reload-failures", 3, "consecutive reload failures before /v1/readyz reports degraded")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "how long SIGTERM/SIGINT waits for in-flight queries before exiting anyway")
	)
	flag.Parse()

	opts, err := layoutOptions(*layout, *shards)
	if err != nil {
		fail(err)
	}
	loader, err := makeLoader(*result, *in, *algo, *k, *seed, opts)
	if err != nil {
		fail(err)
	}
	snap, err := loader()
	if err != nil {
		fail(err)
	}
	srv := repro.NewServeServer(snap)
	srv.SetLoader(loader)
	stopRetry := srv.AutoRetry(repro.ServeRetryPolicy{
		Base:        *retryBase,
		Cap:         *retryCap,
		Jitter:      0.2,
		MaxFailures: *maxFailures,
	})
	defer stopRetry()
	logStats(srv.Current())

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			next, err := srv.Reload()
			if err != nil {
				fmt.Fprintln(os.Stderr, "partsrv: SIGHUP reload failed:", err)
				continue
			}
			fmt.Println("partsrv: reloaded on SIGHUP")
			logStats(next)
		}
	}()

	server := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful shutdown: Shutdown stops the listener and waits for in-flight
	// requests; ListenAndServe then returns ErrServerClosed, and main waits
	// for the drain to finish before exiting 0. A second signal skips the
	// drain.
	done := make(chan struct{})
	term := make(chan os.Signal, 2)
	signal.Notify(term, syscall.SIGTERM, os.Interrupt)
	go func() {
		defer close(done)
		s := <-term
		fmt.Printf("partsrv: %v: draining (up to %v; signal again to abort)\n", s, *drain)
		go func() {
			<-term
			fmt.Fprintln(os.Stderr, "partsrv: second signal, aborting drain")
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "partsrv: drain timed out, closing:", err)
			server.Close()
		}
	}()

	fmt.Printf("partsrv: listening on %s\n", *addr)
	err = server.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	<-done
	// stopRetry runs via its defer on return, ending the reload-retry loop.
	fmt.Println("partsrv: drained, exiting")
}

func layoutOptions(layout string, shards int) (repro.ServeOptions, error) {
	switch layout {
	case "flat":
		return repro.ServeOptions{}, nil
	case "sharded":
		if shards < 2 {
			shards = 8
		}
		return repro.ServeOptions{Shards: shards}, nil
	}
	return repro.ServeOptions{}, fmt.Errorf("unknown -layout %q (want flat or sharded)", layout)
}

// makeLoader returns the snapshot builder both boot and every reload use:
// re-read the saved result, or re-partition the graph file out-of-core with
// the serving tables accumulated from the emitted stream.
func makeLoader(result, in, algo string, k int, seed uint64, opts repro.ServeOptions) (func() (*repro.ServeSnapshot, error), error) {
	switch {
	case result != "" && in != "":
		return nil, fmt.Errorf("-result and -in are mutually exclusive")
	case result != "":
		return func() (*repro.ServeSnapshot, error) {
			saved, err := loadResult(result)
			if err != nil {
				return nil, err
			}
			return repro.NewServeSnapshot(saved, opts)
		}, nil
	case in != "":
		return func() (*repro.ServeSnapshot, error) {
			saved, err := partitionFile(in, algo, k, seed)
			if err != nil {
				return nil, err
			}
			return repro.NewServeSnapshot(saved, opts)
		}, nil
	}
	return nil, fmt.Errorf("need -result FILE.cpr or -in FILE.cgr")
}

func loadResult(path string) (*repro.SavedResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return repro.ReadSavedResult(bufio.NewReaderSize(f, 1<<16))
}

// partitionFile streams a .cgr file through the algorithm out-of-core,
// chaining a ServeBuilder onto the emit callback so the serving tables are
// the only partition-sized state ever held.
func partitionFile(path, algo string, k int, seed uint64) (*repro.SavedResult, error) {
	p, err := repro.NewPartitioner(algo, seed)
	if err != nil {
		return nil, err
	}
	src, err := repro.OpenCompressed(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	b, err := repro.NewServeBuilder(src.NumVertices(), k)
	if err != nil {
		return nil, err
	}
	res, err := repro.RunOutOfCore(p, src, k, b.Observe)
	if err != nil {
		return nil, err
	}
	return b.Result(res.Algorithm, res.Order.String()), nil
}

func logStats(snap *repro.ServeSnapshot) {
	st := repro.ServeStatsOf(snap)
	fmt.Printf("partsrv: epoch %d: %s/%s, k=%d, %d vertices, %d edges, %s layout\n",
		st.Epoch, st.Algorithm, st.Order, st.K, st.Vertices, st.Edges, st.Layout)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "partsrv:", err)
	os.Exit(1)
}
