package store

import (
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
)

// backends enumerates every (backend, format) combination the Source
// contract must hold for; the matrix tests below run each case against the
// same expectations, so the two backends and two formats can never drift
// apart behaviorally.
type backendCase struct {
	name   string
	format Format
	open   func(path string) (File, error)
}

func backendCases() []backendCase {
	openFile := func(path string) (File, error) { return Open(path) }
	openMmap := func(path string) (File, error) { return OpenMmap(path) }
	openFallback := func(path string) (File, error) {
		disableMmap = true
		defer func() { disableMmap = false }()
		return OpenMmap(path)
	}
	openReaderAt := func(path string) (File, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return OpenReaderAt(byteReaderAt(data), int64(len(data)), path)
	}
	var cases []backendCase
	for _, f := range []Format{FormatCGR1, FormatCGR2, FormatCGR3} {
		cases = append(cases,
			backendCase{"file/" + f.String(), f, openFile},
			backendCase{"mmap/" + f.String(), f, openMmap},
			backendCase{"fallback/" + f.String(), f, openFallback},
			backendCase{"readerat/" + f.String(), f, openReaderAt},
		)
	}
	return cases
}

// writeTempFormat writes g to a temp file in the given format.
func writeTempFormat(t *testing.T, g *graph.Graph, f Format) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.cgr")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFormat(w, g, f); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func closeSource(t *testing.T, s stream.Source) {
	t.Helper()
	if c, ok := s.(io.Closer); ok {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSourceMatrixStreamsAndReplays: every backend x format streams the
// exact edge sequence, replays it identically, and reports the header.
func TestSourceMatrixStreamsAndReplays(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 4000, OutDegree: 7, IntraSite: 0.85, Seed: 5})
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			src, err := bc.open(writeTempFormat(t, g, bc.format))
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			if src.NumVertices() != g.NumVertices || src.Len() != g.NumEdges() {
				t.Fatalf("header %d/%d, want %d/%d", src.NumVertices(), src.Len(), g.NumVertices, g.NumEdges())
			}
			if src.Format() != bc.format {
				t.Fatalf("format %s, want %s", src.Format(), bc.format)
			}
			a := collect(t, src)
			b := collect(t, src) // Collect resets: the CLUGP multi-pass contract
			if len(a) != len(g.Edges) {
				t.Fatalf("decoded %d edges, want %d", len(a), len(g.Edges))
			}
			for i := range a {
				if a[i] != g.Edges[i] {
					t.Fatalf("edge %d: %v != %v (order must be preserved)", i, a[i], g.Edges[i])
				}
				if b[i] != a[i] {
					t.Fatalf("replay diverged at edge %d", i)
				}
			}
		})
	}
}

// TestSourceMatrixSegmentEdgeCases covers the boundary shapes shared by
// both backends: an empty file, a single-edge file, a segment whose bounds
// land exactly on a checkpoint, and a nested segment of a segment.
func TestSourceMatrixSegmentEdgeCases(t *testing.T) {
	big := gen.Web(gen.WebConfig{N: 6000, OutDegree: 6, Seed: 7})
	if big.NumEdges() < 3*indexStride {
		t.Fatalf("test graph too small: %d edges", big.NumEdges())
	}
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			// Empty file: zero-length segments and EOF on first block.
			empty, err := bc.open(writeTempFormat(t, graph.New(7, nil), bc.format))
			if err != nil {
				t.Fatal(err)
			}
			if got := collect(t, empty); len(got) != 0 {
				t.Fatalf("empty file decoded %d edges", len(got))
			}
			seg, err := empty.Segment(0, 0)
			if err != nil {
				t.Fatalf("empty segment: %v", err)
			}
			if got := collect(t, seg); len(got) != 0 {
				t.Fatal("empty segment yielded edges")
			}
			closeSource(t, seg)
			empty.Close()

			// Single-edge file: the whole file as one segment, and both
			// degenerate boundary segments.
			one := graph.New(3, []graph.Edge{{Src: 2, Dst: 0}})
			osrc, err := bc.open(writeTempFormat(t, one, bc.format))
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range [][2]int{{0, 1}, {0, 0}, {1, 1}} {
				seg, err := osrc.Segment(b[0], b[1])
				if err != nil {
					t.Fatalf("single-edge segment %v: %v", b, err)
				}
				got := collect(t, seg)
				if len(got) != b[1]-b[0] {
					t.Fatalf("single-edge segment %v: %d edges", b, len(got))
				}
				if len(got) == 1 && got[0] != one.Edges[0] {
					t.Fatalf("single-edge segment decoded %v", got[0])
				}
				closeSource(t, seg)
			}
			osrc.Close()

			// Large file: segments straddling and landing exactly on
			// checkpoint boundaries, plus nesting.
			src, err := bc.open(writeTempFormat(t, big, bc.format))
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			n := big.NumEdges()
			bounds := [][2]int{
				{0, n},
				{0, 1},
				{n - 1, n},
				{indexStride, 2 * indexStride},        // exactly on checkpoints
				{indexStride - 1, indexStride + 1},    // straddles a checkpoint
				{indexStride + 37, 2*indexStride + 5}, // mid-stride start
			}
			for _, b := range bounds {
				seg, err := src.Segment(b[0], b[1])
				if err != nil {
					t.Fatalf("segment %v: %v", b, err)
				}
				got := collect(t, seg)
				if len(got) != b[1]-b[0] {
					t.Fatalf("segment %v: %d edges", b, len(got))
				}
				for i := range got {
					if got[i] != big.Edges[b[0]+i] {
						t.Fatalf("segment %v: edge %d mismatch", b, i)
					}
				}
				// Segments replay independently too.
				again := collect(t, seg)
				for i := range again {
					if again[i] != got[i] {
						t.Fatalf("segment %v: replay diverged", b)
					}
				}
				closeSource(t, seg)
			}

			// Nested segment of a segment: global [150, 250).
			outer, err := src.Segment(100, 900)
			if err != nil {
				t.Fatal(err)
			}
			inner, err := outer.(stream.Segmenter).Segment(50, 150)
			if err != nil {
				t.Fatal(err)
			}
			got := collect(t, inner)
			if len(got) != 100 {
				t.Fatalf("nested segment has %d edges", len(got))
			}
			for i := range got {
				if got[i] != big.Edges[150+i] {
					t.Fatalf("nested segment edge %d mismatch", i)
				}
			}
			closeSource(t, inner)
			closeSource(t, outer)

			// Out-of-range bounds are rejected.
			for _, b := range [][2]int{{-1, 1}, {0, n + 1}, {2, 1}} {
				if _, err := src.Segment(b[0], b[1]); err == nil {
					t.Fatalf("segment %v accepted", b)
				}
			}
		})
	}
}

// TestSourceMatrixConcurrentSegments shards one file across goroutines on
// every backend; the mmap backend shares one mapping between all of them.
func TestSourceMatrixConcurrentSegments(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 5000, OutDegree: 6, Seed: 8})
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			src, err := bc.open(writeTempFormat(t, g, bc.format))
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			n := g.NumEdges()
			nodes := 4
			per := (n + nodes - 1) / nodes
			subs := make([]stream.Source, 0, nodes)
			for nd := 0; nd < nodes; nd++ {
				lo, hi := nd*per, (nd+1)*per
				if hi > n {
					hi = n
				}
				sub, err := src.Segment(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				subs = append(subs, sub)
			}
			out := make([][]graph.Edge, nodes)
			errs := make([]error, nodes)
			var wg sync.WaitGroup
			for nd, sub := range subs {
				wg.Add(1)
				go func(nd int, sub stream.Source) {
					defer wg.Done()
					out[nd], errs[nd] = stream.Collect(sub)
				}(nd, sub)
			}
			wg.Wait()
			var all []graph.Edge
			for nd := range subs {
				if errs[nd] != nil {
					t.Fatal(errs[nd])
				}
				all = append(all, out[nd]...)
				closeSource(t, subs[nd])
			}
			if len(all) != n {
				t.Fatalf("shards cover %d edges, want %d", len(all), n)
			}
			for i := range all {
				if all[i] != g.Edges[i] {
					t.Fatalf("sharded read diverges at edge %d", i)
				}
			}
		})
	}
}

// TestSourceMatrixTruncatedBody: a header-intact, body-truncated file must
// surface a decode error, not bogus edges, on every backend.
func TestSourceMatrixTruncatedBody(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 300, OutDegree: 4, Seed: 10})
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			path := writeTempFormat(t, g, bc.format)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			src, err := bc.open(path) // header is intact; the body is cut short
			if err != nil {
				// Checksummed formats reject the torn file at open (the
				// trailer is gone); that satisfies the contract too.
				return
			}
			defer src.Close()
			if _, err := stream.Collect(src); err == nil {
				t.Fatal("truncated body decoded without error")
			}
		})
	}
}

// TestMmapSourceModes pins the backend mode reporting and the refcounted
// close order: the root may close before its segments, which keep the
// mapping alive until the last handle goes.
func TestMmapSourceModes(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 2000, OutDegree: 5, Seed: 9})
	path := writeTempFormat(t, g, FormatCGR2)

	src, err := OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	// On platforms with mmap wired up this must actually map; the fallback
	// variant is exercised via disableMmap below either way.
	t.Logf("mapped=%v", src.Mapped())

	seg, err := src.Segment(100, 600)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil { // root first: segment must survive
		t.Fatal(err)
	}
	if err := src.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	got := collect(t, seg)
	for i := range got {
		if got[i] != g.Edges[100+i] {
			t.Fatalf("segment after root close: edge %d mismatch", i)
		}
	}
	closeSource(t, seg)

	// Operations on a closed handle fail cleanly instead of touching a
	// released mapping.
	if err := src.Reset(); err == nil {
		t.Fatal("Reset on closed source succeeded")
	}
	if _, err := src.Segment(0, 1); err == nil {
		t.Fatal("Segment on closed source succeeded")
	}

	// The forced fallback reports unmapped and still satisfies the matrix
	// (covered above); here just pin the flag.
	disableMmap = true
	defer func() { disableMmap = false }()
	fb, err := OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if fb.Mapped() {
		t.Fatal("disableMmap still mapped")
	}
	got = collect(t, fb)
	if len(got) != g.NumEdges() {
		t.Fatalf("fallback decoded %d edges", len(got))
	}
}

// TestOpenAutoAndJunk: OpenAuto rejects junk and missing files like the
// explicit constructors do.
func TestOpenAutoAndJunk(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not a graph at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAuto(junk); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := OpenAuto(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := OpenMmap(junk); err == nil {
		t.Fatal("mmap junk accepted")
	}
	g := gen.Web(gen.WebConfig{N: 300, OutDegree: 4, Seed: 11})
	f, err := OpenAuto(writeTempFormat(t, g, FormatCGR2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Len() != g.NumEdges() || f.Format() != FormatCGR2 || f.SizeBytes() <= 0 {
		t.Fatalf("OpenAuto header: len=%d format=%s size=%d", f.Len(), f.Format(), f.SizeBytes())
	}
}
