package partition

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/stream"
)

// collectOutOfCore runs the out-of-core pass with the given options and
// returns the emitted assignment plus the result.
func collectOutOfCore(t *testing.T, p Partitioner, src stream.Source, k int, opts OutOfCoreOptions) ([]int32, *Result) {
	t.Helper()
	var assign []int32
	res, err := RunOutOfCoreOpts(p, src, k, func(edges []graph.Edge, as []int32) error {
		assign = append(assign, as...)
		return nil
	}, opts)
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", p.Name(), opts.Workers, err)
	}
	return assign, res
}

// TestParallelWorkerInvariance is the worker-invariance criterion of the
// parallel hot pass: for every algorithm, on every source backend, over
// every on-disk format, the parallel out-of-core run must emit an
// assignment bit-identical to the serial run - and identical quality - for
// every worker count, including one that divides nothing (7). BatchEdges is
// forced small so even the test graph spans many batches and segments and
// the workers genuinely interleave.
func TestParallelWorkerInvariance(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 2500, OutDegree: 6, IntraSite: 0.85, Seed: 51})
	k := 8
	for _, fb := range fileBackends() {
		t.Run(fb.name, func(t *testing.T) {
			path := writeCGRFormat(t, g, fb.format)
			for _, p := range outOfCorePartitioners(t) {
				src, err := fb.open(path)
				if err != nil {
					t.Fatal(err)
				}
				serial, serialRes := collectOutOfCore(t, p, src, k, OutOfCoreOptions{})
				for _, workers := range []int{1, 2, 4, 7} {
					par, parRes := collectOutOfCore(t, p, src, k, OutOfCoreOptions{
						Workers:    workers,
						BatchEdges: 512,
					})
					if len(par) != len(serial) {
						t.Fatalf("%s workers=%d: emitted %d assignments, serial %d",
							p.Name(), workers, len(par), len(serial))
					}
					for i := range par {
						if par[i] != serial[i] {
							t.Fatalf("%s workers=%d: assignment diverges from serial at edge %d (%d vs %d)",
								p.Name(), workers, i, par[i], serial[i])
						}
					}
					if parRes.Quality.ReplicationFactor != serialRes.Quality.ReplicationFactor {
						t.Fatalf("%s workers=%d: RF %v != serial %v",
							p.Name(), workers, parRes.Quality.ReplicationFactor, serialRes.Quality.ReplicationFactor)
					}
					if parRes.Quality.RelativeBalance != serialRes.Quality.RelativeBalance {
						t.Fatalf("%s workers=%d: balance %v != serial %v",
							p.Name(), workers, parRes.Quality.RelativeBalance, serialRes.Quality.RelativeBalance)
					}
					if parRes.Quality.Replicas != serialRes.Quality.Replicas ||
						parRes.Quality.Vertices != serialRes.Quality.Vertices {
						t.Fatalf("%s workers=%d: replica accounting diverges", p.Name(), workers)
					}
				}
				src.Close()
			}
		})
	}
}

// TestParallelWorkerInvarianceInMemory covers the in-memory segmentable
// source (ViewSource), whose natural-order fast path returns one giant
// block: the parallel pipeline must still cut exact fixed-size batches.
func TestParallelWorkerInvarianceInMemory(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 1500, OutDegree: 5, Seed: 52})
	src := stream.Of(g.Edges).Source(g.NumVertices)
	for _, p := range []Partitioner{&HDRF{}, &CLUGP{Seed: 2}} {
		serial, _ := collectOutOfCore(t, p, src, 6, OutOfCoreOptions{})
		for _, workers := range []int{2, 7} {
			par, _ := collectOutOfCore(t, p, src, 6, OutOfCoreOptions{Workers: workers, BatchEdges: 300})
			for i := range par {
				if par[i] != serial[i] {
					t.Fatalf("%s workers=%d: diverges at edge %d", p.Name(), workers, i)
				}
			}
		}
	}
}

// TestParallelFallsBackWithoutSegmenter: a source that cannot segment runs
// the serial pass (same results, no error) even when workers are requested.
type unsegmentable struct{ stream.Source }

func TestParallelFallsBackWithoutSegmenter(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 500, OutDegree: 4, Seed: 53})
	src := stream.Of(g.Edges).Source(g.NumVertices)
	serial, _ := collectOutOfCore(t, &DBH{}, src, 4, OutOfCoreOptions{})
	fell, _ := collectOutOfCore(t, &DBH{}, unsegmentable{src}, 4, OutOfCoreOptions{Workers: 8})
	for i := range fell {
		if fell[i] != serial[i] {
			t.Fatalf("fallback diverges at edge %d", i)
		}
	}
}

// TestParallelOutOfCoreRace is the dedicated race workload: repeated
// parallel passes with several worker counts over the mmap backend, so the
// decode fleet hammers concurrent Segment cursors on one shared mapping
// while the shard fleet writes the sharded replica tables. Run under
// -race in CI; assertions are minimal because the test's job is the
// schedule, not the values (TestParallelWorkerInvariance pins those).
func TestParallelOutOfCoreRace(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 2000, OutDegree: 8, IntraSite: 0.8, Seed: 54})
	path := writeCGRFormat(t, g, store.FormatCGR2)
	src, err := store.OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for round := 0; round < 3; round++ {
		for _, workers := range []int{2, 3, 5} {
			for _, p := range []Partitioner{&DBH{Seed: 1}, &CLUGP{Seed: 1}, &DistributedCLUGP{Nodes: 3, Seed: 1}} {
				res, err := RunOutOfCoreOpts(p, src, 8, nil, OutOfCoreOptions{
					Workers:    workers,
					BatchEdges: 256 + 64*round, // shift batch boundaries between rounds
				})
				if err != nil {
					t.Fatalf("%s workers=%d round=%d: %v", p.Name(), workers, round, err)
				}
				if got := res.Quality.Sizes; len(got) != 8 {
					t.Fatalf("%s: %d partition sizes", p.Name(), len(got))
				}
				var sum int64
				for _, s := range res.Quality.Sizes {
					sum += s
				}
				if sum != int64(g.NumEdges()) {
					t.Fatalf("%s workers=%d: sizes sum %d, want %d", p.Name(), workers, sum, g.NumEdges())
				}
			}
		}
	}
}

// TestRunOutOfCoreOptsRejectsBadK covers the shared precondition on the
// options path too.
func TestRunOutOfCoreOptsRejectsBadK(t *testing.T) {
	src := stream.Of([]graph.Edge{{Src: 0, Dst: 1}}).Source(2)
	if _, err := RunOutOfCoreOpts(&Hashing{}, src, 0, nil, OutOfCoreOptions{Workers: 4}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// BenchmarkOutOfCoreWorkers measures the parallel hot pass end to end on
// the mmap/CGR2 backend - the configuration the bench suite's scaling
// cells use.
func BenchmarkOutOfCoreWorkers(b *testing.B) {
	g := gen.Web(gen.WebConfig{N: 20000, OutDegree: 15, IntraSite: 0.85, Seed: 55})
	path := b.TempDir() + "/g.cgr"
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.WriteFormat(f, g, store.FormatCGR2); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	src, err := store.OpenMmap(path)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("dbh/w%d", workers), func(b *testing.B) {
			p := &DBH{Seed: 1}
			b.SetBytes(int64(g.NumEdges()) * 8)
			for i := 0; i < b.N; i++ {
				if _, err := RunOutOfCoreOpts(p, src, 32, nil, OutOfCoreOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
