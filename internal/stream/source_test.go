package stream

import (
	"io"
	"testing"

	"repro/internal/graph"
)

func sourceEdges(t *testing.T, src Source) []graph.Edge {
	t.Helper()
	out, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestViewSourceNaturalIsZeroCopy(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}
	src := Of(edges).Source(3)
	if src.NumVertices() != 3 || src.Len() != 3 {
		t.Fatalf("shape %d/%d", src.NumVertices(), src.Len())
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	blk, err := src.NextBlock()
	if err != nil {
		t.Fatal(err)
	}
	// Natural order must alias the base storage in one block.
	if len(blk) != 3 || &blk[0] != &edges[0] {
		t.Fatal("natural-order block is not the base slice")
	}
	if _, err := src.NextBlock(); err != io.EOF {
		t.Fatalf("post-EOF NextBlock: %v", err)
	}
}

func TestViewSourcePermutedMatchesAt(t *testing.T) {
	// More than one block so the gather path chunks.
	n := 3*BlockLen + 17
	edges := make([]graph.Edge, n)
	perm := make([]int32, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i % 97), Dst: graph.VertexID(i % 89)}
		perm[i] = int32(n - 1 - i)
	}
	v := Permuted(edges, perm)
	got := sourceEdges(t, v.Source(100))
	if len(got) != n {
		t.Fatalf("len %d, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != v.At(i) {
			t.Fatalf("edge %d: %v != %v", i, got[i], v.At(i))
		}
	}
}

func TestViewSourceReplays(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
	src := Of(edges).Source(2)
	a := sourceEdges(t, src)
	b := sourceEdges(t, src) // Collect resets
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("replay diverged: %v vs %v", a, b)
	}
}

func TestViewSourceSegment(t *testing.T) {
	n := 100
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n)}
	}
	src := Of(edges).Source(n)
	sub, err := src.Segment(10, 35)
	if err != nil {
		t.Fatal(err)
	}
	got := sourceEdges(t, sub)
	if len(got) != 25 {
		t.Fatalf("segment len %d, want 25", len(got))
	}
	for i, e := range got {
		if e != edges[10+i] {
			t.Fatalf("segment edge %d mismatch", i)
		}
	}
	if _, err := src.Segment(-1, 5); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := src.Segment(0, n+1); err == nil {
		t.Fatal("hi beyond len accepted")
	}
}

func TestViewSourceEmpty(t *testing.T) {
	src := View{}.Source(5)
	if src.Len() != 0 {
		t.Fatal("empty view has edges")
	}
	if _, err := src.NextBlock(); err != io.EOF {
		t.Fatalf("empty NextBlock: %v", err)
	}
}
