package engine

import (
	"fmt"
	"math"
)

// PageRankConfig controls the distributed PageRank run.
type PageRankConfig struct {
	// Damping is the damping factor d (default 0.85).
	Damping float64
	// Iterations is the number of supersteps (default 10, the fixed
	// iteration count typical of partitioning evaluations).
	Iterations int
	// Cost is the network/compute cost model.
	Cost CostModel
}

// PageRank runs damped PageRank on the placement as GAS supersteps and
// returns the per-vertex ranks (indexed by global vertex id, summing to 1)
// along with the run accounting.
//
// Each superstep performs: local gather acc[dst] += rank[src]/outdeg[src]
// over each node's local edges; a mirror->master message per sync pair
// combining partial accumulators; the apply step at masters
// rank = (1-d)/N + d*(acc + danglingMass/N); and a master->mirror sync
// message per pair. Dangling mass (vertices with no out-edges) is
// redistributed uniformly, the standard correction, with its global
// reduction costed as one message per node.
func PageRank(pl *Placement, cfg PageRankConfig) ([]float64, RunStats, error) {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Damping < 0 || cfg.Damping >= 1 {
		return nil, RunStats{}, fmt.Errorf("engine: damping %v out of [0,1)", cfg.Damping)
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 10
	}
	cm := cfg.Cost.withDefaults()
	n := pl.NumVertices
	if n == 0 {
		return nil, RunStats{}, nil
	}
	nf := float64(n)
	d := cfg.Damping

	// Global out-degrees, needed by the gather; masters distribute them to
	// mirrors once at load time (not counted in per-superstep traffic,
	// matching how PowerGraph ships static vertex data during ingress).
	outdeg := make([]int64, n)
	for i := range pl.Nodes {
		node := &pl.Nodes[i]
		for _, e := range node.Edges {
			outdeg[node.Global[e.Src]]++
		}
	}

	// Per-node state: local rank and accumulator arrays.
	rank := make([][]float64, pl.K)
	acc := make([][]float64, pl.K)
	for i := range pl.Nodes {
		ln := len(pl.Nodes[i].Global)
		rank[i] = make([]float64, ln)
		acc[i] = make([]float64, ln)
		for l := range rank[i] {
			rank[i][l] = 1 / nf
		}
	}

	var stats RunStats
	stats.MaxLocalEdges = pl.MaxLocalEdges()

	for it := 0; it < cfg.Iterations; it++ {
		var messages int64

		// Gather: local partial sums.
		for i := range pl.Nodes {
			node := &pl.Nodes[i]
			a := acc[i]
			r := rank[i]
			for l := range a {
				a[l] = 0
			}
			for _, e := range node.Edges {
				od := outdeg[node.Global[e.Src]]
				a[e.Dst] += r[e.Src] / float64(od)
			}
		}

		// Mirror -> master accumulator combine.
		for _, sp := range pl.Sync {
			acc[sp.MasterNode][sp.MasterLocal] += acc[sp.MirrorNode][sp.MirrorLocal]
		}
		messages += int64(len(pl.Sync))

		// Dangling mass: global reduction over masters (one message per
		// node for the aggregate).
		var dangling float64
		for i := range pl.Nodes {
			node := &pl.Nodes[i]
			r := rank[i]
			for l := range node.Global {
				if node.IsMaster[l] && outdeg[node.Global[l]] == 0 {
					dangling += r[l]
				}
			}
		}
		messages += int64(pl.K)

		// Apply at masters.
		base := (1 - d) / nf
		spread := d * dangling / nf
		for i := range pl.Nodes {
			node := &pl.Nodes[i]
			for l := range node.Global {
				if node.IsMaster[l] {
					rank[i][l] = base + d*acc[i][l] + spread
				}
			}
		}

		// Master -> mirror rank sync.
		for _, sp := range pl.Sync {
			rank[sp.MirrorNode][sp.MirrorLocal] = rank[sp.MasterNode][sp.MasterLocal]
		}
		messages += int64(len(pl.Sync))

		stats.accountSuperstep(cm, stats.MaxLocalEdges, messages)
	}

	// Collect master ranks into the global result.
	out := make([]float64, n)
	for i := range pl.Nodes {
		node := &pl.Nodes[i]
		for l, v := range node.Global {
			if node.IsMaster[l] {
				out[v] = rank[i][l]
			}
		}
	}
	// Guard: ranks must form a distribution (up to float error).
	var sum float64
	for _, r := range out {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		return out, stats, fmt.Errorf("engine: pagerank mass %v != 1", sum)
	}
	return out, stats, nil
}
