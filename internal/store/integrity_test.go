package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
)

// multiBlockGraph is sized so its CGR3 payload spans several checksum
// blocks (>64 KiB per block), exercising the block grid rather than the
// single-block degenerate case.
func multiBlockGraph() *graph.Graph {
	return gen.Web(gen.WebConfig{N: 60000, OutDegree: 6, IntraSite: 0.7, Seed: 21})
}

// TestChecksummedVerify: Verify proves a clean CGR3 file on every backend,
// reports ErrNoChecksums on pre-integrity formats, and the decoded stream
// matches the written edges exactly.
func TestChecksummedVerify(t *testing.T) {
	g := multiBlockGraph()
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			src, err := bc.open(writeTempFormat(t, g, bc.format))
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			err = src.Verify()
			if bc.format == FormatCGR3 {
				if err != nil {
					t.Fatalf("Verify on a clean file: %v", err)
				}
			} else if !errors.Is(err, ErrNoChecksums) {
				t.Fatalf("Verify on %s: got %v, want ErrNoChecksums", bc.format, err)
			}
			got := collect(t, src)
			if len(got) != len(g.Edges) {
				t.Fatalf("decoded %d edges, wrote %d", len(got), len(g.Edges))
			}
			for i := range got {
				if got[i] != g.Edges[i] {
					t.Fatalf("edge %d: got %v, want %v", i, got[i], g.Edges[i])
				}
			}
		})
	}
}

// TestBitFlipDetected: flipping any single bit - header, early payload,
// late payload, trailer, footer - makes every backend fail the open or the
// stream; no flipped file ever streams to completion successfully.
func TestBitFlipDetected(t *testing.T) {
	g := multiBlockGraph()
	ref := writeTempFormat(t, g, FormatCGR3)
	clean, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int{
		5,                                  // header counts
		100,                                // first payload block
		len(clean) / 2,                     // middle payload block
		int(cleanPayloadLen(t, clean)) - 2, // last payload bytes
		int(cleanPayloadLen(t, clean)) + 6, // trailer
		len(clean) - 3,                     // footer
	}
	for _, bc := range backendCases() {
		if bc.format != FormatCGR3 {
			continue
		}
		for _, off := range offsets {
			flipped := bytes.Clone(clean)
			flipped[off] ^= 0x10
			path := filepath.Join(t.TempDir(), "flip.cgr")
			if err := os.WriteFile(path, flipped, 0o644); err != nil {
				t.Fatal(err)
			}
			src, err := bc.open(path)
			if err != nil {
				continue // rejected at open: detected
			}
			if _, err := stream.Collect(src); err == nil {
				t.Errorf("%s: bit flip at byte %d streamed without error", bc.name, off)
			}
			src.Close()
		}
	}
}

// cleanPayloadLen parses the payload length out of a checksummed file's
// footer.
func cleanPayloadLen(t *testing.T, data []byte) int64 {
	t.Helper()
	g, err := parseTrailer(byteReaderAt(data), int64(len(data)), "clean")
	if err != nil {
		t.Fatal(err)
	}
	return g.payloadLen
}

// TestVerifyFileReportsFirstCorruptBlock: a deliberately bit-flipped
// fixture is reported as corrupt with the exact block the first flipped
// byte lives in - the contract graphstat -verify exposes to operators.
func TestVerifyFileReportsFirstCorruptBlock(t *testing.T) {
	g := multiBlockGraph()
	path := writeTempFormat(t, g, FormatCGR3)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	info, err := VerifyFile(path)
	if err != nil {
		t.Fatalf("clean file: %v", err)
	}
	if !info.Checksummed || info.Kind != "CGR3" || info.Blocks < 2 {
		t.Fatalf("clean file info = %+v, want checksummed CGR3 with >=2 blocks", info)
	}

	// Flip one byte in block 1 and one in a later block: the report must
	// name block 1.
	flipped := bytes.Clone(clean)
	flipped[checksumBlockSize+123] ^= 1
	flipped[2*checksumBlockSize+45] ^= 1
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyFile(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("flipped file: got %v, want *CorruptError", err)
	}
	if ce.Block != 1 {
		t.Fatalf("first corrupt block reported as %d, want 1", ce.Block)
	}

	// Pre-integrity formats scan as unprotected, not corrupt.
	p2 := writeTempFormat(t, g, FormatCGR2)
	info, err = VerifyFile(p2)
	if err != nil || info.Checksummed {
		t.Fatalf("CGR2 scan = %+v, %v; want unchecksummed, nil error", info, err)
	}
}

// TestEveryPrefixTruncationRejected: the torn-write matrix. Every proper
// prefix of a valid graph file must be rejected - at open or by the time
// the stream completes - on both seek-based backends and the sequential
// reader, for every format; and every proper prefix of a valid result file
// must be rejected by ReadResult, for both result versions.
func TestEveryPrefixTruncationRejected(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 200, OutDegree: 3, Seed: 8})
	for _, f := range []Format{FormatCGR1, FormatCGR2, FormatCGR3} {
		var buf bytes.Buffer
		if err := WriteFormat(&buf, g, f); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		t.Run(f.String(), func(t *testing.T) {
			dir := t.TempDir()
			for cut := 0; cut < len(full); cut++ {
				path := filepath.Join(dir, "cut.cgr")
				if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				for _, open := range []func(string) (File, error){
					func(p string) (File, error) { return Open(p) },
					func(p string) (File, error) { return OpenMmap(p) },
				} {
					src, err := open(path)
					if err != nil {
						continue
					}
					if _, err := stream.Collect(src); err == nil {
						t.Fatalf("prefix of %d/%d bytes streamed without error", cut, len(full))
					}
					src.Close()
				}
				if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
					t.Fatalf("prefix of %d/%d bytes Read without error", cut, len(full))
				}
			}
		})
	}

	res := buildResult(t, 32)
	for name, enc := range map[string][]byte{"CPR2": encodeResult(t, res), "CPR1": encodeLegacyResult(t, res)} {
		t.Run(name, func(t *testing.T) {
			for cut := 0; cut < len(enc); cut++ {
				if _, err := ReadResult(bytes.NewReader(enc[:cut])); err == nil {
					t.Fatalf("result prefix of %d/%d bytes accepted", cut, len(enc))
				}
			}
		})
	}
}

// encodeLegacyResult writes r in the pre-integrity CPR1 framing, the
// fixture for backward-compatibility tests.
func encodeLegacyResult(t testing.TB, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeResultPayload(&buf, r, resultMagic); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResultChecksums: CPR2 round-trips and self-verifies, legacy CPR1
// files still read, and a bit flip anywhere in a CPR2 file rejects.
func TestResultChecksums(t *testing.T) {
	r := buildResult(t, 64)
	enc := encodeResult(t, r)

	got, err := ReadResult(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("Verify on a decoded result: %v", err)
	}

	legacy := encodeLegacyResult(t, r)
	if bytes.Equal(legacy, enc) {
		t.Fatal("CPR1 and CPR2 encodings are identical; trailer missing")
	}
	if _, err := ReadResult(bytes.NewReader(legacy)); err != nil {
		t.Fatalf("legacy CPR1 file rejected: %v", err)
	}

	for off := 0; off < len(enc); off += 7 {
		flipped := bytes.Clone(enc)
		flipped[off] ^= 0x08
		if _, err := ReadResult(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("bit flip at byte %d of a CPR2 result accepted", off)
		}
	}
}

// TestAtomicWriter: Commit publishes the full content and cleans up the
// temp file; Abort leaves the final path exactly as it was; a writer
// abandoned mid-write never disturbs the final path.
func TestAtomicWriter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")

	w, err := NewAtomicWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	w.Abort() // post-Commit Abort is a no-op
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("committed file = %q, %v", got, err)
	}

	// Abort: the previous content survives, and no temp files linger.
	w2, err := NewAtomicWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write([]byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	w2.Abort()
	if _, err := w2.Write([]byte("more")); err == nil {
		t.Fatal("write after Abort accepted")
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("after abort, file = %q, %v; want previous content", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries after commit+abort, want 1", len(ents))
	}
}
