package edgecut

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func partitioners() []Partitioner {
	return []Partitioner{
		&Hash{Seed: 1},
		&LDG{},
		&FENNEL{},
		&Multilevel{Seed: 1},
	}
}

func blockGraph(sites, pages int, seed uint64) *graph.Graph {
	return gen.Web(gen.WebConfig{
		N: sites * pages, OutDegree: 6, IntraSite: 0.95,
		SiteMean: pages, Seed: seed,
	})
}

func TestAllAssignEveryVertex(t *testing.T) {
	g := blockGraph(40, 50, 1)
	for _, p := range partitioners() {
		for _, k := range []int{1, 2, 8, 17} {
			assign, err := p.Partition(g, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", p.Name(), k, err)
			}
			q, err := Evaluate(g, assign, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", p.Name(), k, err)
			}
			var total int64
			for _, s := range q.VertexSizes {
				total += s
			}
			if total != int64(g.NumVertices) {
				t.Fatalf("%s k=%d: %d vertices placed, want %d", p.Name(), k, total, g.NumVertices)
			}
		}
	}
}

func TestEvaluateHandExample(t *testing.T) {
	g := graph.New(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 0, Dst: 0}})
	assign := []int32{0, 0, 1, 1}
	q, err := Evaluate(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.CutEdges != 1 {
		t.Fatalf("CutEdges = %d, want 1 (only 1->2 crosses)", q.CutEdges)
	}
	if q.VertexBalance != 1.0 {
		t.Fatalf("VertexBalance = %v, want 1.0", q.VertexBalance)
	}
}

func TestEvaluateRejectsBadInput(t *testing.T) {
	g := graph.New(2, []graph.Edge{{Src: 0, Dst: 1}})
	if _, err := Evaluate(g, []int32{0}, 2); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := Evaluate(g, []int32{0, 9}, 2); err == nil {
		t.Fatal("invalid partition accepted")
	}
}

// TestQualityOrdering: on a clusterable graph, every structure-aware
// algorithm must cut far less than hashing, and the offline multilevel
// partitioner must be at least as good as the streaming ones.
func TestQualityOrdering(t *testing.T) {
	g := blockGraph(60, 40, 2)
	k := 8
	cut := map[string]float64{}
	for _, p := range partitioners() {
		assign, err := p.Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Evaluate(g, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		cut[p.Name()] = q.CutFraction
	}
	hash := cut["HashEC"]
	if hash < 0.5 {
		t.Fatalf("hash cut %.3f implausibly low at k=8", hash)
	}
	for _, name := range []string{"LDG", "FENNEL", "Multilevel"} {
		if cut[name] > hash*0.7 {
			t.Fatalf("%s cut %.3f not clearly below hash %.3f", name, cut[name], hash)
		}
	}
	if cut["Multilevel"] > cut["LDG"]*1.2 {
		t.Fatalf("offline multilevel (%.3f) should not lose clearly to streaming LDG (%.3f)",
			cut["Multilevel"], cut["LDG"])
	}
}

func TestBalanceBounds(t *testing.T) {
	g := blockGraph(40, 50, 3)
	k := 8
	for _, p := range []Partitioner{&LDG{}, &FENNEL{}, &Multilevel{Seed: 1}} {
		assign, err := p.Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Evaluate(g, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		if q.VertexBalance > 1.3 {
			t.Fatalf("%s vertex balance %.3f too loose", p.Name(), q.VertexBalance)
		}
	}
}

// TestEdgeCutPoorOnPowerLaw backs the paper's Section II-C argument: on a
// heavy-tailed graph, even good edge-cut partitioners cut a large share of
// edges (because hub edges cross wherever the hub lands), while vertex-cut
// handles hubs by replication. We check the premise: the cut fraction on a
// skewed low-locality graph stays high for every edge-cut algorithm.
func TestEdgeCutPoorOnPowerLaw(t *testing.T) {
	g := gen.BarabasiAlbert(6000, 8, 4)
	k := 16
	for _, p := range []Partitioner{&LDG{}, &FENNEL{}, &Multilevel{Seed: 1}} {
		assign, err := p.Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Evaluate(g, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		if q.CutFraction < 0.3 {
			t.Fatalf("%s cut %.3f surprisingly low on a BA graph - the II-C premise would not hold", p.Name(), q.CutFraction)
		}
	}
}

func TestMultilevelBeatsHashOnCliqueChain(t *testing.T) {
	// k cliques, one bridge each: the ideal cut is k-1 edges.
	var edges []graph.Edge
	const cliques, size = 8, 12
	for c := 0; c < cliques; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, graph.Edge{Src: graph.VertexID(base + i), Dst: graph.VertexID(base + j)})
			}
		}
		if c > 0 {
			edges = append(edges, graph.Edge{Src: graph.VertexID(base - 1), Dst: graph.VertexID(base)})
		}
	}
	g := graph.New(cliques*size, edges)
	ml := &Multilevel{Seed: 2}
	assign, err := ml.Partition(g, cliques)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Evaluate(g, assign, cliques)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect answer cuts 7 edges; allow some slack but demand near-ideal.
	if q.CutEdges > 3*(cliques-1) {
		t.Fatalf("multilevel cut %d edges on the clique chain, ideal is %d", q.CutEdges, cliques-1)
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := blockGraph(30, 30, 5)
	a, err := (&Multilevel{Seed: 7}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Multilevel{Seed: 7}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("nondeterministic at vertex %d", v)
		}
	}
}

func TestQuickValidAssignments(t *testing.T) {
	check := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw)%6 + 1
		g := gen.Web(gen.WebConfig{N: 300, OutDegree: 4, Seed: seed})
		for _, p := range partitioners() {
			assign, err := p.Partition(g, k)
			if err != nil {
				return false
			}
			if _, err := Evaluate(g, assign, k); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestK1AndEmpty(t *testing.T) {
	g := blockGraph(10, 10, 6)
	for _, p := range partitioners() {
		assign, err := p.Partition(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Evaluate(g, assign, 1)
		if err != nil {
			t.Fatal(err)
		}
		if q.CutEdges != 0 {
			t.Fatalf("%s: cut edges at k=1", p.Name())
		}
	}
	empty := graph.New(0, nil)
	if assign, err := (&Multilevel{}).Partition(empty, 4); err != nil || len(assign) != 0 {
		t.Fatalf("empty graph mishandled: %v %v", assign, err)
	}
}
