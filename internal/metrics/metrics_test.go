package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestReplicaSetsBasics(t *testing.T) {
	rs := NewReplicaSets(10, 100)
	if rs.K() != 100 {
		t.Fatalf("K = %d", rs.K())
	}
	if rs.Has(3, 64) {
		t.Fatal("fresh table has membership")
	}
	rs.Add(3, 64)
	rs.Add(3, 64) // idempotent
	rs.Add(3, 0)
	if !rs.Has(3, 64) || !rs.Has(3, 0) {
		t.Fatal("Add not visible")
	}
	if rs.Has(3, 1) || rs.Has(4, 64) {
		t.Fatal("membership leaked")
	}
	if rs.Count(3) != 2 {
		t.Fatalf("Count = %d, want 2", rs.Count(3))
	}
	parts := rs.Partitions(3, nil)
	if len(parts) != 2 || parts[0] != 0 || parts[1] != 64 {
		t.Fatalf("Partitions = %v", parts)
	}
}

func TestReplicaSetsSetOps(t *testing.T) {
	rs := NewReplicaSets(4, 130)
	rs.Add(0, 1)
	rs.Add(0, 65)
	rs.Add(0, 129)
	rs.Add(1, 65)
	rs.Add(1, 2)
	inter := rs.Intersect(0, 1, nil)
	if len(inter) != 1 || inter[0] != 65 {
		t.Fatalf("Intersect = %v, want [65]", inter)
	}
	union := rs.Union(0, 1, nil)
	want := []int{1, 2, 65, 129}
	if len(union) != len(want) {
		t.Fatalf("Union = %v, want %v", union, want)
	}
	for i := range want {
		if union[i] != want[i] {
			t.Fatalf("Union = %v, want %v", union, want)
		}
	}
}

func TestReplicaSetsQuick(t *testing.T) {
	check := func(adds []uint16, kRaw uint8) bool {
		k := int(kRaw)%200 + 1
		const nv = 32
		rs := NewReplicaSets(nv, k)
		ref := make(map[[2]int]bool)
		for _, a := range adds {
			v := int(a>>8) % nv
			p := int(a&0xff) % k
			rs.Add(graph.VertexID(v), p)
			ref[[2]int{v, p}] = true
		}
		for v := 0; v < nv; v++ {
			count := 0
			for p := 0; p < k; p++ {
				has := ref[[2]int{v, p}]
				if rs.Has(graph.VertexID(v), p) != has {
					return false
				}
				if has {
					count++
				}
			}
			if rs.Count(graph.VertexID(v)) != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateHandExample(t *testing.T) {
	// Figure 1(c-2)-style example: 5 edges, 2 partitions.
	// Partition 0: (0,1),(1,2); partition 1: (0,3),(3,4),(0,4).
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 3}, {Src: 3, Dst: 4}, {Src: 0, Dst: 4}}
	assign := []int32{0, 0, 1, 1, 1}
	q, err := Evaluate(edges, assign, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// P(0)={0,1} -> 2, P(1)={0}, P(2)={0}, P(3)={1}, P(4)={1}: sum 6 over 5.
	if math.Abs(q.ReplicationFactor-6.0/5.0) > 1e-12 {
		t.Fatalf("RF = %v, want 1.2", q.ReplicationFactor)
	}
	if q.Sizes[0] != 2 || q.Sizes[1] != 3 {
		t.Fatalf("Sizes = %v", q.Sizes)
	}
	// balance = k*max/|E| = 2*3/5.
	if math.Abs(q.RelativeBalance-1.2) > 1e-12 {
		t.Fatalf("balance = %v, want 1.2", q.RelativeBalance)
	}
	if q.Vertices != 5 || q.Replicas != 6 {
		t.Fatalf("vertices/replicas = %d/%d", q.Vertices, q.Replicas)
	}
}

func TestEvaluateExcludesUnseenVertices(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}}
	q, err := Evaluate(edges, []int32{0}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Vertices != 2 {
		t.Fatalf("Vertices = %d, want 2 (8 unseen excluded)", q.Vertices)
	}
	if q.ReplicationFactor != 1.0 {
		t.Fatalf("RF = %v, want 1.0", q.ReplicationFactor)
	}
}

func TestEvaluateErrors(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}}
	if _, err := Evaluate(edges, []int32{}, 2, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Evaluate(edges, []int32{5}, 2, 2); err == nil {
		t.Fatal("invalid partition accepted")
	}
	if _, err := Evaluate(edges, []int32{-1}, 2, 2); err == nil {
		t.Fatal("negative partition accepted")
	}
}

func TestEvaluateRFLowerBound(t *testing.T) {
	// RF is always >= 1 and <= k, whatever the assignment.
	check := func(raw []uint16, kRaw uint8) bool {
		k := int(kRaw)%8 + 1
		if len(raw) == 0 {
			return true
		}
		const nv = 16
		edges := make([]graph.Edge, len(raw))
		assign := make([]int32, len(raw))
		for i, r := range raw {
			edges[i] = graph.Edge{Src: graph.VertexID(int(r>>8) % nv), Dst: graph.VertexID(int(r) % nv)}
			assign[i] = int32(i % k)
		}
		q, err := Evaluate(edges, assign, nv, k)
		if err != nil {
			return false
		}
		return q.ReplicationFactor >= 1 && q.ReplicationFactor <= float64(k)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBytes(t *testing.T) {
	rs := NewReplicaSets(1000, 128)
	if rs.Bytes() != 1000*2*8 {
		t.Fatalf("Bytes = %d, want %d", rs.Bytes(), 1000*2*8)
	}
}
