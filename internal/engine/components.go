package engine

import "math"

// ConnectedComponents runs min-label propagation over the underlying
// undirected graph as GAS supersteps until no label changes, returning the
// per-vertex component label (the smallest vertex id in the component,
// among vertices appearing in edges; isolated vertices label themselves).
//
// Message accounting is delta-based, as in PowerGraph's dynamic scheduling:
// a sync pair only exchanges messages in a superstep when the synced value
// changed.
func ConnectedComponents(pl *Placement, cost CostModel) ([]uint32, RunStats) {
	cm := cost.withDefaults()
	n := pl.NumVertices

	label := make([][]uint32, pl.K)
	minAcc := make([][]uint32, pl.K)
	for i := range pl.Nodes {
		node := &pl.Nodes[i]
		label[i] = make([]uint32, len(node.Global))
		minAcc[i] = make([]uint32, len(node.Global))
		for l, v := range node.Global {
			label[i][l] = uint32(v)
		}
	}

	var stats RunStats
	stats.MaxLocalEdges = pl.MaxLocalEdges()

	for {
		var messages int64
		changedAny := false

		// Gather: local undirected min over edges.
		for i := range pl.Nodes {
			node := &pl.Nodes[i]
			lb := label[i]
			ma := minAcc[i]
			copy(ma, lb)
			for _, e := range node.Edges {
				if ma[e.Dst] > lb[e.Src] {
					ma[e.Dst] = lb[e.Src]
				}
				if ma[e.Src] > lb[e.Dst] {
					ma[e.Src] = lb[e.Dst]
				}
			}
		}

		// Mirror -> master min combine; message only when the mirror has
		// something smaller than its last synced label.
		for _, sp := range pl.Sync {
			mv := minAcc[sp.MirrorNode][sp.MirrorLocal]
			if mv < label[sp.MirrorNode][sp.MirrorLocal] {
				messages++
			}
			if mv < minAcc[sp.MasterNode][sp.MasterLocal] {
				minAcc[sp.MasterNode][sp.MasterLocal] = mv
			}
		}

		// Apply at masters.
		for i := range pl.Nodes {
			node := &pl.Nodes[i]
			for l := range node.Global {
				if node.IsMaster[l] && minAcc[i][l] < label[i][l] {
					label[i][l] = minAcc[i][l]
					changedAny = true
				}
			}
		}

		// Master -> mirror sync, delta-only.
		for _, sp := range pl.Sync {
			mv := label[sp.MasterNode][sp.MasterLocal]
			if label[sp.MirrorNode][sp.MirrorLocal] != mv {
				label[sp.MirrorNode][sp.MirrorLocal] = mv
				messages++
			}
		}

		stats.accountSuperstep(cm, stats.MaxLocalEdges, messages)
		if !changedAny {
			break
		}
	}

	out := make([]uint32, n)
	for i := range pl.Nodes {
		node := &pl.Nodes[i]
		for l, v := range node.Global {
			if node.IsMaster[l] {
				out[v] = label[i][l]
			}
		}
	}
	return out, stats
}

// SSSP computes hop distances from source over directed edges (BFS levels)
// as GAS supersteps, returning per-vertex distances with math.MaxUint32 for
// unreachable vertices. Accounting is delta-based like ConnectedComponents.
func SSSP(pl *Placement, source uint32, cost CostModel) ([]uint32, RunStats) {
	const inf = math.MaxUint32
	cm := cost.withDefaults()
	n := pl.NumVertices

	dist := make([][]uint32, pl.K)
	acc := make([][]uint32, pl.K)
	for i := range pl.Nodes {
		node := &pl.Nodes[i]
		dist[i] = make([]uint32, len(node.Global))
		acc[i] = make([]uint32, len(node.Global))
		for l, v := range node.Global {
			if uint32(v) == source {
				dist[i][l] = 0
			} else {
				dist[i][l] = inf
			}
		}
	}

	var stats RunStats
	stats.MaxLocalEdges = pl.MaxLocalEdges()

	for {
		var messages int64
		changedAny := false

		for i := range pl.Nodes {
			node := &pl.Nodes[i]
			d := dist[i]
			a := acc[i]
			copy(a, d)
			for _, e := range node.Edges {
				if d[e.Src] != inf && d[e.Src]+1 < a[e.Dst] {
					a[e.Dst] = d[e.Src] + 1
				}
			}
		}

		for _, sp := range pl.Sync {
			mv := acc[sp.MirrorNode][sp.MirrorLocal]
			if mv < dist[sp.MirrorNode][sp.MirrorLocal] {
				messages++
			}
			if mv < acc[sp.MasterNode][sp.MasterLocal] {
				acc[sp.MasterNode][sp.MasterLocal] = mv
			}
		}

		for i := range pl.Nodes {
			node := &pl.Nodes[i]
			for l := range node.Global {
				if node.IsMaster[l] && acc[i][l] < dist[i][l] {
					dist[i][l] = acc[i][l]
					changedAny = true
				}
			}
		}

		for _, sp := range pl.Sync {
			mv := dist[sp.MasterNode][sp.MasterLocal]
			if dist[sp.MirrorNode][sp.MirrorLocal] != mv {
				dist[sp.MirrorNode][sp.MirrorLocal] = mv
				messages++
			}
		}

		stats.accountSuperstep(cm, stats.MaxLocalEdges, messages)
		if !changedAny {
			break
		}
	}

	out := make([]uint32, n)
	for i := range pl.Nodes {
		node := &pl.Nodes[i]
		for l, v := range node.Global {
			if node.IsMaster[l] {
				out[v] = dist[i][l]
			}
		}
	}
	return out, stats
}
