// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI) at reduced scale, plus micro-benchmarks of the pipeline
// stages. Run the full-size experiments with cmd/experiments; these benches
// exist so `go test -bench=.` exercises every artefact end to end and
// reports per-edge costs.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/stream"
)

// benchConfig keeps one benchmark iteration around a second.
func benchConfig() bench.Config {
	return bench.Config{Scale: 0.08, Ks: []int{8, 64}, Seed: 42}
}

func runExperiment(b *testing.B, name string) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tables, err := bench.Run(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "3") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "4") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "5") }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "6") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "11") }

// Micro-benchmarks: per-stage and per-algorithm costs on a fixed graph.

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	return gen.Web(gen.WebConfig{N: 20000, OutDegree: 10, IntraSite: 0.88, Seed: 7})
}

func BenchmarkStreamBFSOrder(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := stream.NewView(g, stream.BFS, 0)
		if s.Len() != g.NumEdges() {
			b.Fatal("edge count changed")
		}
	}
	b.ReportMetric(float64(g.NumEdges()), "edges/op")
}

func BenchmarkPass1Clustering(b *testing.B) {
	g := benchGraph(b)
	s := stream.NewView(g, stream.BFS, 0).Source(g.NumVertices)
	vmax := int64(s.Len() / (5 * 32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(s, cluster.Config{Vmax: vmax}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Len()), "edges/op")
}

func BenchmarkPass2Game(b *testing.B) {
	g := benchGraph(b)
	s := stream.NewView(g, stream.BFS, 0).Source(g.NumVertices)
	res, err := cluster.Run(s, cluster.Config{Vmax: int64(s.Len() / (5 * 32))})
	if err != nil {
		b.Fatal(err)
	}
	res.Compact()
	cg, err := cluster.BuildGraph(s, res)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.Solve(cg, game.Config{K: 32, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cg.NumClusters), "clusters/op")
}

// BenchmarkClusterGraphBuild isolates the pass-2 input build (the former
// map+sort.Slice hot spot, now a counting-sort CSR construction).
func BenchmarkClusterGraphBuild(b *testing.B) {
	g := benchGraph(b)
	s := stream.NewView(g, stream.BFS, 0).Source(g.NumVertices)
	res, err := cluster.Run(s, cluster.Config{Vmax: int64(s.Len() / (5 * 32))})
	if err != nil {
		b.Fatal(err)
	}
	res.Compact()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.BuildGraph(s, res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Len()), "edges/op")
}

func benchPartitioner(b *testing.B, name string, k int) {
	g := benchGraph(b)
	p, err := partition.New(name, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := stream.NewView(g, p.PreferredOrder(), 1).Source(g.NumVertices)
	// Partitioners with an allocation-free PartitionInto run it against a
	// reused output buffer, the repeated-run hot path the suite uses; the
	// rest go through the one-shot Partition.
	ip, reuse := p.(partition.IntoPartitioner)
	assign := make([]int32, s.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reuse {
			if err := ip.PartitionInto(s, k, assign); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := p.Partition(s, k); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	res, err := partition.Run(p, g, k, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Quality.ReplicationFactor, "RF")
	b.ReportMetric(float64(s.Len())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkHashingK32(b *testing.B) { benchPartitioner(b, "Hashing", 32) }
func BenchmarkDBHK32(b *testing.B)     { benchPartitioner(b, "DBH", 32) }
func BenchmarkGreedyK32(b *testing.B)  { benchPartitioner(b, "Greedy", 32) }
func BenchmarkHDRFK32(b *testing.B)    { benchPartitioner(b, "HDRF", 32) }
func BenchmarkMintK32(b *testing.B)    { benchPartitioner(b, "Mint", 32) }
func BenchmarkCLUGPK32(b *testing.B)   { benchPartitioner(b, "CLUGP", 32) }

// The large-k regime, where the paper's runtime claims live (Figure 7).
func BenchmarkHDRFK256(b *testing.B)  { benchPartitioner(b, "HDRF", 256) }
func BenchmarkCLUGPK256(b *testing.B) { benchPartitioner(b, "CLUGP", 256) }

// Ablations called out in DESIGN.md.
func BenchmarkCLUGPNoSplitK64(b *testing.B) { benchPartitioner(b, "CLUGP-S", 64) }
func BenchmarkCLUGPGreedyK64(b *testing.B)  { benchPartitioner(b, "CLUGP-G", 64) }

func BenchmarkPageRank32Nodes(b *testing.B) {
	g := benchGraph(b)
	res, err := Partition(g, "CLUGP", 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := NewPlacement(res)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PageRank(pl, PageRankConfig{Iterations: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedCLUGP4Nodes(b *testing.B) {
	g := benchGraph(b)
	p := &DistributedCLUGP{Nodes: 4, Seed: 1}
	s := stream.NewView(g, p.PreferredOrder(), 1).Source(g.NumVertices)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(s, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeCutMultilevel(b *testing.B) {
	g := benchGraph(b)
	ml := &Multilevel{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.Partition(g, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeCutLDG(b *testing.B) {
	g := benchGraph(b)
	l := &LDG{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Partition(g, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreWrite(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteCompressed(&buf, g); err != nil {
			b.Fatal(err)
		}
		n = buf.Len()
	}
	b.ReportMetric(float64(n)/float64(g.NumEdges()), "bytes/edge")
}

func BenchmarkStoreRead(b *testing.B) {
	g := benchGraph(b)
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCompressed(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateMetrics(b *testing.B) {
	g := benchGraph(b)
	res, err := Partition(g, "DBH", 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateStream(res.Stream, res.Assign, 32); err != nil {
			b.Fatal(err)
		}
	}
}
