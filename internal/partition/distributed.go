package partition

import (
	"fmt"
	"sync"

	"repro/internal/stream"
)

// DistributedCLUGP implements Section III-C's distributed ingest mode:
// "each distributed node accesses partial streaming edges and performs the
// three steps, clustering, game processing, and transformation, locally.
// ... the final graph partitioning result is obtained by combining the
// partial partitioning results of distributed nodes."
//
// The stream is split into Nodes contiguous shards (contiguity preserves
// the crawl locality each local clustering depends on); each shard runs a
// full, independent CLUGP pipeline concurrently, partitioning its edges
// over the same k target partitions; the shard results concatenate into
// the final assignment. Because every shard is individually balanced to
// tau * |shard|/k, the union respects tau * |E|/k up to per-shard ceiling
// slack. Quality gives up a little versus single-node CLUGP (shards cannot
// heal adjacency across their boundary), which is the trade the paper
// accepts for horizontal ingest scaling.
type DistributedCLUGP struct {
	// Nodes is the number of ingest nodes (default 4).
	Nodes int
	// Options configures each node's local pipeline (Seed is perturbed per
	// node; leave Options.Seed zero to derive everything from Seed).
	Options CLUGP
	// Seed drives per-node seeds.
	Seed uint64
}

// Name implements Partitioner.
func (d *DistributedCLUGP) Name() string { return "CLUGP-D" }

// PreferredOrder implements Partitioner.
func (d *DistributedCLUGP) PreferredOrder() stream.Order { return stream.BFS }

// Partition implements Partitioner.
func (d *DistributedCLUGP) Partition(s stream.View, numVertices, k int) ([]int32, error) {
	nodes := d.Nodes
	if nodes <= 0 {
		nodes = 4
	}
	numEdges := s.Len()
	if nodes > numEdges {
		nodes = 1
	}
	assign := make([]int32, numEdges)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	per := (numEdges + nodes - 1) / nodes
	for nd := 0; nd < nodes; nd++ {
		lo := nd * per
		hi := lo + per
		if lo >= numEdges {
			break
		}
		if hi > numEdges {
			hi = numEdges
		}
		wg.Add(1)
		go func(nd, lo, hi int) {
			defer wg.Done()
			local := d.Options // copy: each node owns its pipeline state
			local.Seed = d.Seed ^ (0x9e3779b97f4a7c15 * uint64(nd+1))
			out, err := local.Partition(s.Slice(lo, hi), numVertices, k)
			if err != nil {
				errs[nd] = fmt.Errorf("clugp-d node %d: %w", nd, err)
				return
			}
			copy(assign[lo:hi], out)
		}(nd, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return assign, nil
}

// StateBytes implements StateSizer: each node carries a full per-vertex
// table set (vertices are not range-partitioned across ingest nodes, since
// any shard can touch any vertex).
func (d *DistributedCLUGP) StateBytes(numVertices, numEdges, k int) int64 {
	nodes := d.Nodes
	if nodes <= 0 {
		nodes = 4
	}
	one := d.Options.StateBytes(numVertices, numEdges, k)
	return int64(nodes) * one
}
