// Package metrics implements the partition-quality measures of Section II-B:
// the replication factor (Equation 1's objective) and the relative load
// balance (its constraint), plus the replica-set bitsets shared by the
// heuristic partitioners and the memory accounting behind Figure 6.
package metrics

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// ReplicaSets tracks P(v), the set of partitions holding each vertex, as a
// dense bitset: k bits per vertex. This is exactly the "global status table"
// the paper identifies as the scalability bottleneck of heuristic-based
// streaming partitioners; its size is the dominant term of their memory
// cost.
type ReplicaSets struct {
	k     int
	words int
	bits  []uint64
}

// NewReplicaSets returns an empty table for n vertices and k partitions.
func NewReplicaSets(n, k int) *ReplicaSets {
	words := (k + 63) / 64
	return &ReplicaSets{k: k, words: words, bits: make([]uint64, n*words)}
}

// K returns the number of partitions.
func (r *ReplicaSets) K() int { return r.k }

// Add records that partition p holds vertex v.
func (r *ReplicaSets) Add(v graph.VertexID, p int) {
	r.bits[int(v)*r.words+p/64] |= 1 << uint(p%64)
}

// Has reports whether partition p holds vertex v.
func (r *ReplicaSets) Has(v graph.VertexID, p int) bool {
	return r.bits[int(v)*r.words+p/64]&(1<<uint(p%64)) != 0
}

// Count returns |P(v)|.
func (r *ReplicaSets) Count(v graph.VertexID) int {
	n := 0
	for _, w := range r.bits[int(v)*r.words : (int(v)+1)*r.words] {
		n += bits.OnesCount64(w)
	}
	return n
}

// Partitions appends the partitions holding v to dst and returns it.
func (r *ReplicaSets) Partitions(v graph.VertexID, dst []int) []int {
	base := int(v) * r.words
	for w := 0; w < r.words; w++ {
		word := r.bits[base+w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*64+b)
			word &= word - 1
		}
	}
	return dst
}

// Intersect appends the partitions holding both u and v to dst.
func (r *ReplicaSets) Intersect(u, v graph.VertexID, dst []int) []int {
	bu := int(u) * r.words
	bv := int(v) * r.words
	for w := 0; w < r.words; w++ {
		word := r.bits[bu+w] & r.bits[bv+w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*64+b)
			word &= word - 1
		}
	}
	return dst
}

// Union appends the partitions holding u or v to dst.
func (r *ReplicaSets) Union(u, v graph.VertexID, dst []int) []int {
	bu := int(u) * r.words
	bv := int(v) * r.words
	for w := 0; w < r.words; w++ {
		word := r.bits[bu+w] | r.bits[bv+w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*64+b)
			word &= word - 1
		}
	}
	return dst
}

// Bytes returns the memory footprint of the table.
func (r *ReplicaSets) Bytes() int64 { return int64(len(r.bits)) * 8 }

// Quality summarises a finished vertex-cut partitioning.
type Quality struct {
	K int
	// ReplicationFactor is (1/|V'|) * sum_v |P(v)| over vertices that occur
	// in at least one edge (vertices absent from the stream cannot be
	// replicated and are excluded, matching how the literature reports RF).
	ReplicationFactor float64
	// RelativeBalance is k * max|p| / |E| (>= 1; 1.0 is perfect).
	RelativeBalance float64
	// Sizes is the number of edges per partition.
	Sizes []int64
	// MaxSize and MinSize are the extreme partition sizes.
	MaxSize, MinSize int64
	// Vertices is the number of distinct vertices seen in the stream.
	Vertices int
	// Replicas is sum_v |P(v)|.
	Replicas int64
}

// Evaluate recomputes partition quality from scratch given the edge stream
// and the per-edge partition assignment (ground truth, independent of any
// partitioner-internal bookkeeping). numVertices must exceed all endpoints.
func Evaluate(edges []graph.Edge, assign []int32, numVertices, k int) (*Quality, error) {
	if len(edges) != len(assign) {
		return nil, fmt.Errorf("metrics: %d edges but %d assignments", len(edges), len(assign))
	}
	rs := NewReplicaSets(numVertices, k)
	sizes := make([]int64, k)
	seen := make([]bool, numVertices)
	for i, e := range edges {
		p := assign[i]
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("metrics: edge %d assigned to invalid partition %d (k=%d)", i, p, k)
		}
		sizes[p]++
		rs.Add(e.Src, int(p))
		rs.Add(e.Dst, int(p))
		seen[e.Src] = true
		seen[e.Dst] = true
	}
	q := &Quality{K: k, Sizes: sizes, MinSize: int64(^uint64(0) >> 1)}
	for _, s := range sizes {
		if s > q.MaxSize {
			q.MaxSize = s
		}
		if s < q.MinSize {
			q.MinSize = s
		}
	}
	for v := 0; v < numVertices; v++ {
		if !seen[v] {
			continue
		}
		q.Vertices++
		q.Replicas += int64(rs.Count(graph.VertexID(v)))
	}
	if q.Vertices > 0 {
		q.ReplicationFactor = float64(q.Replicas) / float64(q.Vertices)
	}
	if len(edges) > 0 {
		q.RelativeBalance = float64(k) * float64(q.MaxSize) / float64(len(edges))
	}
	return q, nil
}
