package stream

import (
	"errors"
	"io"
	"testing"

	"repro/internal/graph"
)

var errFlaky = errors.New("flaky I/O")

// sliceSource streams a slice in fixed blocks - small enough that retry
// tests exercise multi-block replay without large graphs.
type sliceSource struct {
	edges []graph.Edge
	nv    int
	bs    int
	pos   int
}

func (s *sliceSource) NumVertices() int { return s.nv }
func (s *sliceSource) Len() int         { return len(s.edges) }
func (s *sliceSource) Reset() error     { s.pos = 0; return nil }
func (s *sliceSource) NextBlock() ([]graph.Edge, error) {
	if s.pos >= len(s.edges) {
		return nil, io.EOF
	}
	hi := s.pos + s.bs
	if hi > len(s.edges) {
		hi = len(s.edges)
	}
	blk := s.edges[s.pos:hi]
	s.pos = hi
	return blk, nil
}

// flaky wraps a source and fails NextBlock once at each scripted absolute
// call number (counted across resets, so each fault fires exactly once).
type flaky struct {
	Source
	failOn map[int]error
	calls  int
	fired  int
	resets int
}

func (f *flaky) Reset() error { f.resets++; return f.Source.Reset() }
func (f *flaky) NextBlock() ([]graph.Edge, error) {
	f.calls++
	if err, ok := f.failOn[f.calls]; ok {
		delete(f.failOn, f.calls)
		f.fired++
		return nil, err
	}
	return f.Source.NextBlock()
}

func testEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i % 7), Dst: graph.VertexID(i % 5)}
	}
	return edges
}

// TestRetryBitIdentical: a stream hit by transient faults at several points -
// first block, mid-stream, right before EOF - delivers exactly the edges a
// clean pass would, in order, with no duplicates or gaps.
func TestRetryBitIdentical(t *testing.T) {
	edges := testEdges(100)
	base := &flaky{
		Source: &sliceSource{edges: edges, nv: 7, bs: 9},
		failOn: map[int]error{1: errFlaky, 5: errFlaky, 11: errFlaky},
	}
	src := Retry(base, RetryConfig{MaxAttempts: 3})
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if base.fired != 3 {
		t.Fatalf("%d faults fired, want 3", base.fired)
	}
	if base.resets < 3 {
		t.Fatalf("%d resets, want at least one per fault", base.resets)
	}
	if len(got) != len(edges) {
		t.Fatalf("collected %d edges, want %d", len(got), len(edges))
	}
	for i := range got {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
}

// TestRetryReplaySplitsBlocks: a fault after a partial pass makes the
// resuming block start mid-way through an underlying block; the edge
// sequence is still exact.
func TestRetryReplaySplitsBlocks(t *testing.T) {
	edges := testEdges(40)
	base := &flaky{
		Source: &sliceSource{edges: edges, nv: 7, bs: 16},
		failOn: map[int]error{2: errFlaky},
	}
	src := Retry(base, RetryConfig{})
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	var got []graph.Edge
	var sizes []int
	for {
		blk, err := src.NextBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, blk...)
		sizes = append(sizes, len(blk))
	}
	if len(got) != len(edges) {
		t.Fatalf("collected %d edges, want %d", len(got), len(edges))
	}
	for i := range got {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], edges[i])
		}
	}
	// First block delivered 16 edges, then the fault; the replayed resume
	// must pick up at edge 16 inside the underlying pass.
	if sizes[0] != 16 {
		t.Fatalf("first block %d edges, want 16", sizes[0])
	}
}

// TestRetryExhausted: a position that keeps failing surfaces the original
// error after MaxAttempts tries, not a success and not a different error.
func TestRetryExhausted(t *testing.T) {
	edges := testEdges(10)
	base := &flaky{
		Source: &sliceSource{edges: edges, nv: 7, bs: 4},
		failOn: map[int]error{1: errFlaky, 2: errFlaky, 3: errFlaky},
	}
	src := Retry(base, RetryConfig{MaxAttempts: 3})
	_, err := Collect(src)
	if !errors.Is(err, errFlaky) {
		t.Fatalf("got %v, want errFlaky after exhausted attempts", err)
	}
	if base.fired != 3 {
		t.Fatalf("%d faults consumed, want MaxAttempts=3", base.fired)
	}
}

// TestRetryRespectsRetryable: errors the policy declares permanent surface
// immediately, with no replay.
func TestRetryRespectsRetryable(t *testing.T) {
	permanent := errors.New("checksum mismatch")
	base := &flaky{
		Source: &sliceSource{edges: testEdges(10), nv: 7, bs: 4},
		failOn: map[int]error{2: permanent},
	}
	src := Retry(base, RetryConfig{
		MaxAttempts: 5,
		Retryable:   func(err error) bool { return errors.Is(err, errFlaky) },
	})
	_, err := Collect(src)
	if !errors.Is(err, permanent) {
		t.Fatalf("got %v, want the permanent error", err)
	}
	if base.resets != 1 {
		t.Fatalf("%d resets, want only Collect's initial one", base.resets)
	}
}

// TestRetrySegmenter: wrapping a Segmenter yields a Segmenter whose segments
// are retry-wrapped; wrapping a plain Source does not invent a Segment
// method (RunOutOfCore's fallback logic depends on the distinction).
func TestRetrySegmenter(t *testing.T) {
	edges := testEdges(50)
	vs := Of(edges).Source(7)
	wrapped := Retry(vs, RetryConfig{})
	seg, ok := wrapped.(Segmenter)
	if !ok {
		t.Fatal("Retry over a Segmenter lost the Segment method")
	}
	sub, err := seg.Segment(10, 30)
	if err != nil {
		t.Fatal(err)
	}
	switch sub.(type) {
	case *RetrySource, *retrySegmenter:
	default:
		t.Fatalf("segment is %T, want a retry-wrapped source", sub)
	}
	got, err := Collect(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 || got[0] != edges[10] || got[19] != edges[29] {
		t.Fatalf("segment [10,30) returned %d edges starting %v", len(got), got[0])
	}

	plain := Retry(&sliceSource{edges: edges, nv: 7, bs: 8}, RetryConfig{})
	if _, ok := plain.(Segmenter); ok {
		t.Fatal("Retry over a plain Source invented a Segment method")
	}
}

// TestRetryShrunkenSource: if a replay finds fewer edges than were already
// delivered (the file changed underneath), the wrapper reports it instead of
// silently delivering a divergent stream.
func TestRetryShrunkenSource(t *testing.T) {
	edges := testEdges(20)
	inner := &sliceSource{edges: edges, nv: 7, bs: 8}
	base := &flaky{Source: inner, failOn: map[int]error{3: errFlaky}}
	src := Retry(base, RetryConfig{})
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	// Deliver two blocks (16 edges), then shrink the source below the
	// delivered position before the fault triggers a replay.
	for i := 0; i < 2; i++ {
		if _, err := src.NextBlock(); err != nil {
			t.Fatal(err)
		}
	}
	inner.edges = edges[:10]
	_, err := src.NextBlock()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("got %v, want a replay-position error", err)
	}
}
