package engine

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/stream"
)

func testGraph(seed uint64) *graph.Graph {
	return gen.Web(gen.WebConfig{N: 3000, OutDegree: 6, IntraSite: 0.8, SiteMean: 50, CopyFactor: 0.5, Seed: seed})
}

func place(t testing.TB, g *graph.Graph, p partition.Partitioner, k int) *Placement {
	t.Helper()
	res, err := partition.Run(p, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestPlacementInvariants(t *testing.T) {
	g := testGraph(1)
	for _, pr := range []partition.Partitioner{&partition.Hashing{Seed: 1}, &partition.CLUGP{Seed: 1}} {
		pl := place(t, g, pr, 8)
		if pl.K != 8 || pl.NumVertices != g.NumVertices {
			t.Fatalf("%s: placement shape %d/%d", pr.Name(), pl.K, pl.NumVertices)
		}
		// Every vertex has exactly one master across all nodes.
		masters := make([]int, g.NumVertices)
		totalEdges := 0
		for i := range pl.Nodes {
			n := &pl.Nodes[i]
			totalEdges += len(n.Edges)
			if len(n.Global) != len(n.IsMaster) {
				t.Fatalf("node %d: table length mismatch", i)
			}
			for l, v := range n.Global {
				if n.IsMaster[l] {
					masters[v]++
					if pl.Master[v] != int32(i) {
						t.Fatalf("vertex %d: master table says %d, slot on %d", v, pl.Master[v], i)
					}
				}
			}
		}
		if totalEdges != g.NumEdges() {
			t.Fatalf("%s: placement holds %d edges, want %d", pr.Name(), totalEdges, g.NumEdges())
		}
		for v, m := range masters {
			if m != 1 {
				t.Fatalf("%s: vertex %d has %d masters", pr.Name(), v, m)
			}
		}
		// Sync pairs = total local slots - one master slot per vertex.
		slots := 0
		for i := range pl.Nodes {
			slots += len(pl.Nodes[i].Global)
		}
		if len(pl.Sync) != slots-g.NumVertices {
			t.Fatalf("%s: %d sync pairs, want %d", pr.Name(), len(pl.Sync), slots-g.NumVertices)
		}
		if pl.ReplicationFactor() < 1 {
			t.Fatalf("%s: RF %v < 1", pr.Name(), pl.ReplicationFactor())
		}
	}
}

func TestMasterHoldsMostEdges(t *testing.T) {
	// Hand-built: vertex 0 has 3 edges on partition 1, 1 edge on partition 0.
	res := &partition.Result{
		Algorithm:   "hand",
		K:           2,
		NumVertices: 5,
		Stream: stream.Of([]graph.Edge{
			{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4},
		}).Source(5),
		Assign: []int32{0, 1, 1, 1},
	}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Master[0] != 1 {
		t.Fatalf("master of hub = %d, want 1 (holds 3 of 4 edges)", pl.Master[0])
	}
}

func TestPageRankMatchesReferenceAcrossPartitioners(t *testing.T) {
	g := testGraph(2)
	want := ReferencePageRank(g, 0.85, 10)
	for _, pr := range []partition.Partitioner{
		&partition.Hashing{Seed: 3},
		&partition.DBH{Seed: 3},
		&partition.CLUGP{Seed: 3},
	} {
		for _, k := range []int{1, 4, 17} {
			pl := place(t, g, pr, k)
			got, stats, err := PageRank(pl, PageRankConfig{Damping: 0.85, Iterations: 10})
			if err != nil {
				t.Fatalf("%s k=%d: %v", pr.Name(), k, err)
			}
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-9 {
					t.Fatalf("%s k=%d: rank[%d] = %v, want %v", pr.Name(), k, v, got[v], want[v])
				}
			}
			if stats.Supersteps != 10 {
				t.Fatalf("%s k=%d: %d supersteps", pr.Name(), k, stats.Supersteps)
			}
		}
	}
}

func TestPageRankMessageAccounting(t *testing.T) {
	g := testGraph(3)
	pl := place(t, g, &partition.Hashing{Seed: 1}, 8)
	_, stats, err := PageRank(pl, PageRankConfig{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Per superstep: 2 messages per sync pair + k for the dangling reduce.
	wantPerStep := int64(2*len(pl.Sync) + pl.K)
	if stats.Messages != 5*wantPerStep {
		t.Fatalf("messages = %d, want %d", stats.Messages, 5*wantPerStep)
	}
	cm := DefaultCostModel()
	if stats.CommBytes != stats.Messages*(cm.MsgBytes+cm.MsgOverheadBytes) {
		t.Fatalf("bytes %d inconsistent with messages %d", stats.CommBytes, stats.Messages)
	}
	if stats.SimTime <= 0 || stats.SimTime != stats.ComputeTime+stats.CommTime {
		t.Fatalf("SimTime %v != compute %v + comm %v", stats.SimTime, stats.ComputeTime, stats.CommTime)
	}
}

func TestBetterPartitioningFewerMessages(t *testing.T) {
	// The whole point of CLUGP: lower RF means fewer messages on the same
	// workload.
	g := gen.Web(gen.WebConfig{N: 8000, OutDegree: 8, IntraSite: 0.85, SiteMean: 100, CopyFactor: 0.5, Seed: 4})
	hash := place(t, g, &partition.Hashing{Seed: 1}, 32)
	clugp := place(t, g, &partition.CLUGP{Seed: 1}, 32)
	_, sh, err := PageRank(hash, PageRankConfig{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, sc, err := PageRank(clugp, PageRankConfig{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Messages >= sh.Messages {
		t.Fatalf("CLUGP messages %d >= Hashing %d", sc.Messages, sh.Messages)
	}
}

func TestRTTIncreasesSimTime(t *testing.T) {
	g := testGraph(5)
	pl := place(t, g, &partition.DBH{Seed: 1}, 8)
	_, fast, err := PageRank(pl, PageRankConfig{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PageRankConfig{Iterations: 5}
	cfg.Cost.RTT = 50e6 // 50ms in ns units of time.Duration
	_, slow, err := PageRank(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.SimTime <= fast.SimTime {
		t.Fatalf("RTT did not slow the run: %v vs %v", slow.SimTime, fast.SimTime)
	}
}

func TestConnectedComponentsMatchesReference(t *testing.T) {
	g := testGraph(6)
	want := ReferenceComponents(g)
	for _, k := range []int{1, 8} {
		pl := place(t, g, &partition.CLUGP{Seed: 2}, k)
		got, stats := ConnectedComponents(pl, CostModel{})
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("k=%d: label[%d] = %d, want %d", k, v, got[v], want[v])
			}
		}
		if stats.Supersteps < 1 {
			t.Fatal("no supersteps recorded")
		}
	}
}

func TestConnectedComponentsDisconnected(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}, {Src: 4, Dst: 4}}
	g := graph.New(6, edges)
	res, err := partition.Run(&partition.Hashing{Seed: 1}, g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ConnectedComponents(pl, CostModel{})
	want := ReferenceComponents(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestSSSPMatchesReference(t *testing.T) {
	g := testGraph(7)
	want := ReferenceSSSP(g, 2)
	pl := place(t, g, &partition.DBH{Seed: 1}, 8)
	got, stats := SSSP(pl, 2, CostModel{})
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	if stats.Supersteps < 2 {
		t.Fatalf("implausible superstep count %d", stats.Supersteps)
	}
}

func TestSSSPUnreachable(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}
	g := graph.New(4, edges)
	res, err := partition.Run(&partition.Hashing{Seed: 1}, g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := SSSP(pl, 0, CostModel{})
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("reachable distances wrong: %v", got)
	}
	if got[2] != math.MaxUint32 || got[3] != math.MaxUint32 {
		t.Fatalf("unreachable distances wrong: %v", got)
	}
}

func TestLabelPropagationMatchesReference(t *testing.T) {
	g := testGraph(9)
	want := ReferenceLabelPropagation(g, 15)
	for _, k := range []int{1, 8} {
		pl := place(t, g, &partition.CLUGP{Seed: 3}, k)
		got, stats := LabelPropagation(pl, 15, CostModel{})
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("k=%d: label[%d] = %d, want %d", k, v, got[v], want[v])
			}
		}
		if stats.Supersteps < 2 {
			t.Fatalf("implausible superstep count %d", stats.Supersteps)
		}
	}
}

func TestLabelPropagationFindsCommunities(t *testing.T) {
	// Two dense cliques joined by one edge: propagation should settle on
	// (at most) two labels, one per clique.
	var edges []graph.Edge
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(j)})
			edges = append(edges, graph.Edge{Src: graph.VertexID(i + 6), Dst: graph.VertexID(j + 6)})
		}
	}
	edges = append(edges, graph.Edge{Src: 0, Dst: 6})
	g := graph.New(12, edges)
	res, err := partition.Run(&partition.Hashing{Seed: 1}, g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	labels, _ := LabelPropagation(pl, 30, CostModel{})
	left := labels[1]
	for v := 1; v < 6; v++ {
		if labels[v] != left {
			t.Fatalf("left clique split: %v", labels[:6])
		}
	}
	right := labels[7]
	for v := 7; v < 12; v++ {
		if labels[v] != right {
			t.Fatalf("right clique split: %v", labels[6:])
		}
	}
}

func TestPageRankEmptyPlacement(t *testing.T) {
	res := &partition.Result{Algorithm: "hand", K: 2, NumVertices: 0, Assign: []int32{}}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	ranks, _, err := PageRank(pl, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 0 {
		t.Fatal("ranks from empty graph")
	}
}

func TestCostModelDefaults(t *testing.T) {
	cm := CostModel{}.withDefaults()
	d := DefaultCostModel()
	if cm.ComputePerEdge != d.ComputePerEdge || cm.MsgBytes != d.MsgBytes || cm.BandwidthBytesPerSec != d.BandwidthBytesPerSec {
		t.Fatalf("defaults not applied: %+v", cm)
	}
}

func TestPageRankRejectsBadDamping(t *testing.T) {
	g := testGraph(8)
	pl := place(t, g, &partition.Hashing{Seed: 1}, 2)
	if _, _, err := PageRank(pl, PageRankConfig{Damping: 1.5}); err == nil {
		t.Fatal("damping 1.5 accepted")
	}
}
