// PageRank on the simulated distributed engine: partition a web graph with
// two algorithms, lay each onto 32 logical nodes, run 10 PageRank
// supersteps, and compare communication volume and simulated makespan -
// the paper's Figure 8 experiment in miniature. The distributed result is
// checked against the single-machine reference.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro"
)

func main() {
	g := repro.GenerateWeb(repro.WebConfig{N: 40000, OutDegree: 12, IntraSite: 0.88, Seed: 3})
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices, g.NumEdges())

	ref := repro.ReferencePageRank(g, 0.85, 10)

	fmt.Printf("%-8s  %12s  %14s  %12s  %s\n", "algo", "repl.factor", "messages", "comm (MB)", "sim time")
	for _, name := range []string{"Hashing", "HDRF", "CLUGP"} {
		res, err := repro.Partition(g, name, 32, 3)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := repro.NewPlacement(res)
		if err != nil {
			log.Fatal(err)
		}
		ranks, stats, err := repro.PageRank(pl, repro.PageRankConfig{Damping: 0.85, Iterations: 10})
		if err != nil {
			log.Fatal(err)
		}
		// The partitioning must never change the computed ranks.
		for v := range ranks {
			if math.Abs(ranks[v]-ref[v]) > 1e-9 {
				log.Fatalf("%s: rank mismatch at vertex %d", name, v)
			}
		}
		fmt.Printf("%-8s  %12.3f  %14d  %12.2f  %v\n",
			name, pl.ReplicationFactor(), stats.Messages,
			float64(stats.CommBytes)/(1<<20), stats.SimTime)
	}

	// Show the top pages - the hubs every partitioner ends up replicating.
	type pr struct {
		v    int
		rank float64
	}
	top := make([]pr, len(ref))
	for v, r := range ref {
		top[v] = pr{v, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("\ntop pages by rank:")
	for _, p := range top[:5] {
		fmt.Printf("  vertex %6d  rank %.6f\n", p.v, p.rank)
	}
}
