package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Server serves partition lookups over the current Snapshot and swaps in new
// snapshots with zero downtime. The entire mutable state is one
// atomic.Pointer: a query loads the pointer exactly once and answers wholly
// from that snapshot, so every response is consistent with exactly one
// epoch - a reload mid-request cannot mix old replica bits with new sizes.
// Install builds the next snapshot off-thread (the caller's goroutine) and
// publishes it with a single pointer store; readers never block and old
// epochs die by garbage collection once their in-flight queries return.
type Server struct {
	cur    atomic.Pointer[Snapshot]
	epoch  atomic.Uint64
	mu     sync.Mutex // serializes Reload (loader + install), not queries
	loader func() (*Snapshot, error)
}

// NewServer returns a server with initial installed as epoch 1.
func NewServer(initial *Snapshot) *Server {
	s := &Server{}
	s.Install(initial)
	return s
}

// Install publishes snap as the new current snapshot under the next epoch
// and returns the installed copy. The argument is copied (shallowly - the
// immutable tables are shared) so the same prepared Snapshot value can be
// installed repeatedly, and so nothing ever writes to a snapshot that
// readers already hold.
func (s *Server) Install(snap *Snapshot) *Snapshot {
	next := *snap
	next.epoch = s.epoch.Add(1)
	s.cur.Store(&next)
	return &next
}

// Current returns the snapshot serving queries right now.
func (s *Server) Current() *Snapshot { return s.cur.Load() }

// SetLoader registers the function Reload uses to build the next snapshot
// (typically: re-read the result file, NewSnapshot). The loader runs outside
// any lock held by queries; only concurrent Reloads serialize.
func (s *Server) SetLoader(fn func() (*Snapshot, error)) {
	s.mu.Lock()
	s.loader = fn
	s.mu.Unlock()
}

// Reload builds the next snapshot via the registered loader and installs
// it. Queries keep answering from the old epoch for the whole build; the
// switch is the single pointer store inside Install.
func (s *Server) Reload() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.loader == nil {
		return nil, fmt.Errorf("serve: no loader registered")
	}
	snap, err := s.loader()
	if err != nil {
		return nil, fmt.Errorf("serve: reload: %w", err)
	}
	return s.Install(snap), nil
}

// scratch is the per-request working set for the hot endpoints: one
// response buffer and one replica-id slice, pooled so steady-state query
// handling does not allocate. (The HTTP stack itself reuses its connection
// buffers; with this pool the handler adds nothing on top.)
type scratch struct {
	buf  []byte
	reps []int32
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{buf: make([]byte, 0, 512), reps: make([]int32, 0, 64)}
}}

// Handler returns the HTTP API:
//
//	GET  /v1/vertex/{id}    -> {"epoch":E,"vertex":V,"partition":P,"replicas":N}
//	GET  /v1/replicas/{id}  -> {"epoch":E,"vertex":V,"partitions":[...]}
//	GET  /v1/edge?src=&dst= -> {"epoch":E,"src":S,"dst":D,"partition":P}
//	GET  /v1/stats          -> snapshot metadata + partition sizes
//	POST /v1/reload         -> rebuild via the loader, swap epochs
//	GET  /healthz           -> ok
//
// Every response carries the epoch it was answered under, which is what the
// hot-reload harness asserts consistency against. The three query endpoints
// hand-roll their JSON into a pooled buffer - no json.Marshal, no
// fmt.Sprintf - so the query path is allocation-free at steady state.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/vertex/{id}", s.handleVertex)
	mux.HandleFunc("GET /v1/replicas/{id}", s.handleReplicas)
	mux.HandleFunc("GET /v1/edge", s.handleEdge)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// parseVertex parses a decimal vertex id. Range checking against the
// snapshot happens in the query itself.
func parseVertex(str string) (graph.VertexID, bool) {
	u, err := strconv.ParseUint(str, 10, 32)
	if err != nil {
		return 0, false
	}
	return graph.VertexID(u), true
}

func writeJSON(w http.ResponseWriter, status int, buf []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
}

func badRequest(w http.ResponseWriter, msg string) {
	http.Error(w, msg, http.StatusBadRequest)
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	v, ok := parseVertex(r.PathValue("id"))
	if !ok {
		badRequest(w, "bad vertex id")
		return
	}
	snap := s.cur.Load()
	p, err := snap.Primary(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	n, _ := snap.Count(v)
	sc := scratchPool.Get().(*scratch)
	b := sc.buf[:0]
	b = append(b, `{"epoch":`...)
	b = strconv.AppendUint(b, snap.epoch, 10)
	b = append(b, `,"vertex":`...)
	b = strconv.AppendUint(b, uint64(v), 10)
	b = append(b, `,"partition":`...)
	b = strconv.AppendInt(b, int64(p), 10)
	b = append(b, `,"replicas":`...)
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '}', '\n')
	writeJSON(w, http.StatusOK, b)
	sc.buf = b
	scratchPool.Put(sc)
}

func (s *Server) handleReplicas(w http.ResponseWriter, r *http.Request) {
	v, ok := parseVertex(r.PathValue("id"))
	if !ok {
		badRequest(w, "bad vertex id")
		return
	}
	snap := s.cur.Load()
	sc := scratchPool.Get().(*scratch)
	reps, err := snap.Replicas(v, sc.reps[:0])
	if err != nil {
		scratchPool.Put(sc)
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	b := sc.buf[:0]
	b = append(b, `{"epoch":`...)
	b = strconv.AppendUint(b, snap.epoch, 10)
	b = append(b, `,"vertex":`...)
	b = strconv.AppendUint(b, uint64(v), 10)
	b = append(b, `,"partitions":[`...)
	for i, p := range reps {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(p), 10)
	}
	b = append(b, ']', '}', '\n')
	writeJSON(w, http.StatusOK, b)
	sc.buf, sc.reps = b, reps
	scratchPool.Put(sc)
}

func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	src, ok1 := parseVertex(q.Get("src"))
	dst, ok2 := parseVertex(q.Get("dst"))
	if !ok1 || !ok2 {
		badRequest(w, "bad src/dst vertex id")
		return
	}
	snap := s.cur.Load()
	p, err := snap.RouteEdge(src, dst)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	sc := scratchPool.Get().(*scratch)
	b := sc.buf[:0]
	b = append(b, `{"epoch":`...)
	b = strconv.AppendUint(b, snap.epoch, 10)
	b = append(b, `,"src":`...)
	b = strconv.AppendUint(b, uint64(src), 10)
	b = append(b, `,"dst":`...)
	b = strconv.AppendUint(b, uint64(dst), 10)
	b = append(b, `,"partition":`...)
	b = strconv.AppendInt(b, int64(p), 10)
	b = append(b, '}', '\n')
	writeJSON(w, http.StatusOK, b)
	sc.buf = b
	scratchPool.Put(sc)
}

// Stats is the /v1/stats response shape (also returned by cmd/partsrv's
// startup log). Stats is cold-path: plain json.Marshal.
type Stats struct {
	Epoch     uint64  `json:"epoch"`
	Algorithm string  `json:"algorithm"`
	Order     string  `json:"order"`
	Layout    string  `json:"layout"`
	K         int     `json:"k"`
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	Sizes     []int64 `json:"sizes"`
}

// StatsOf summarises a snapshot.
func StatsOf(snap *Snapshot) Stats {
	return Stats{
		Epoch:     snap.epoch,
		Algorithm: snap.algorithm,
		Order:     snap.order,
		Layout:    snap.layout,
		K:         snap.k,
		Vertices:  snap.numVertices,
		Edges:     snap.numEdges,
		Sizes:     snap.AppendSizes(nil),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	b, err := json.Marshal(StatsOf(s.cur.Load()))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	hasLoader := s.loader != nil
	s.mu.Unlock()
	if !hasLoader {
		http.Error(w, "no loader configured", http.StatusNotImplemented)
		return
	}
	snap, err := s.Reload()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b, _ := json.Marshal(StatsOf(snap))
	writeJSON(w, http.StatusOK, append(b, '\n'))
}
