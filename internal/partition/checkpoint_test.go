package partition

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/stream"
)

// errCrash is the seeded "kill": an emit callback returning it aborts the
// run exactly the way a process death between two batches would, except the
// test keeps the assignments emitted so far for comparison.
var errCrash = errors.New("partition_test: injected crash")

// checkpointTestGraph is sized so a crash threshold of 5 blocks leaves two
// checkpoints on disk (current + rotated .prev) and a resumed tail long
// enough to write at least one more.
func checkpointTestGraph() *graph.Graph {
	return gen.Web(gen.WebConfig{N: 12000, OutDegree: 5, IntraSite: 0.7, Seed: 17})
}

const (
	ckCadence = 2 * stream.BlockLen // checkpoints at 2B, 4B, ...
	ckCrashAt = 5 * stream.BlockLen // die mid-epoch: last checkpoint at 4B
)

// runUntilCrash partitions g with checkpointing enabled and kills the run
// (via errCrash from emit) once threshold assignments have been emitted,
// returning everything emitted up to the kill. Deterministic: batches are
// rebatched to BlockLen offsets whenever checkpointing is on, so the kill
// always lands at the same batch boundary.
func runUntilCrash(t *testing.T, p Partitioner, g *graph.Graph, k int, opts OutOfCoreOptions, threshold int) []int32 {
	t.Helper()
	var got []int32
	_, err := RunOutOfCoreOpts(p, stream.Of(g.Edges).Source(g.NumVertices), k, func(edges []graph.Edge, a []int32) error {
		got = append(got, a...)
		if len(got) >= threshold {
			return errCrash
		}
		return nil
	}, opts)
	if !errors.Is(err, errCrash) {
		t.Fatalf("crash run: got err %v, want the injected crash", err)
	}
	return got
}

// resumeFrom restores c and runs the tail, returning the resumed
// assignments and the result.
func resumeFrom(t *testing.T, name string, g *graph.Graph, k int, c *store.Checkpoint, ckPath string, opts OutOfCoreOptions) ([]int32, *Result) {
	t.Helper()
	p, err := New(name, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = &CheckpointOptions{Path: ckPath, EveryEdges: ckCadence, Resume: c}
	var got []int32
	res, err := RunOutOfCoreOpts(p, stream.Of(g.Edges).Source(g.NumVertices), k, func(edges []graph.Edge, a []int32) error {
		got = append(got, a...)
		return nil
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

// checkResumedRun asserts the crash+resume pair reproduced the clean run
// bit for bit: the kept prefix [0, Offset) plus the resumed tail must match
// the reference per edge, and the resumed result's quality must be
// identical, not merely close.
func checkResumedRun(t *testing.T, ref []int32, refRes *Result, crashed, resumed []int32, res *Result, offset int64) {
	t.Helper()
	combined := append(append([]int32(nil), crashed[:offset]...), resumed...)
	if len(combined) != len(ref) {
		t.Fatalf("prefix+resume covers %d edges, want %d", len(combined), len(ref))
	}
	for i := range combined {
		if combined[i] != ref[i] {
			t.Fatalf("assignment %d = %d, want %d (resume diverged)", i, combined[i], ref[i])
		}
	}
	if !reflect.DeepEqual(res.Quality, refRes.Quality) {
		t.Fatalf("resumed quality %+v, want %+v", res.Quality, refRes.Quality)
	}
	if !res.Pipeline.Checkpoints.Resumed || res.Pipeline.Checkpoints.ResumeOffset != offset {
		t.Fatalf("pipeline checkpoint stats %+v do not record the resume at %d", res.Pipeline.Checkpoints, offset)
	}
}

// TestCheckpointResumeBitIdentical is the crash-injection matrix of the
// checkpoint subsystem: kill each checkpointing algorithm at a deterministic
// batch boundary, resume a fresh partitioner from the checkpoint on disk,
// and require the stitched run to be bit-identical - per-edge assignments
// and quality - to an uninterrupted one, across decode workers x score
// workers. Checkpoints are written at one configuration and restored at the
// same one here; cross-configuration restore has its own test below.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	g := checkpointTestGraph()
	k := 4
	if len(g.Edges) < ckCrashAt+ckCadence {
		t.Fatalf("test graph has %d edges, need at least %d", len(g.Edges), ckCrashAt+ckCadence)
	}
	for _, name := range []string{"HDRF", "Greedy", "CLUGP"} {
		p, err := New(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		ref, refRes := collectAssignments(t, p, stream.Of(g.Edges).Source(g.NumVertices), k, OutOfCoreOptions{})

		for _, dw := range []int{1, 4} {
			for _, sw := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/decode=%d/score=%d", name, dw, sw), func(t *testing.T) {
					ckPath := filepath.Join(t.TempDir(), "run.cpk")
					opts := OutOfCoreOptions{Workers: dw, ScoreWorkers: sw,
						Checkpoint: &CheckpointOptions{Path: ckPath, EveryEdges: ckCadence}}
					crashP, err := New(name, 3)
					if err != nil {
						t.Fatal(err)
					}
					crashed := runUntilCrash(t, crashP, g, k, opts, ckCrashAt)

					c, from, err := store.LoadCheckpoint(ckPath)
					if err != nil {
						t.Fatal(err)
					}
					if from != ckPath {
						t.Fatalf("loaded %s, want the current checkpoint %s", from, ckPath)
					}
					if want := int64(4 * stream.BlockLen); c.Offset != want {
						t.Fatalf("checkpoint at offset %d, want %d", c.Offset, want)
					}
					resumed, res := resumeFrom(t, name, g, k, c, ckPath, OutOfCoreOptions{Workers: dw, ScoreWorkers: sw})
					checkResumedRun(t, ref, refRes, crashed, resumed, res, c.Offset)
				})
			}
		}
	}
}

// TestCheckpointResumeAcrossConfigurations: the state encodings are
// canonical (vertex-major, shard-independent), so a checkpoint written
// under one worker configuration restores bit-identically under another -
// a crashed 8-core run can resume on a 1-core box and vice versa.
func TestCheckpointResumeAcrossConfigurations(t *testing.T) {
	g := checkpointTestGraph()
	k := 4
	for _, name := range []string{"HDRF", "Greedy", "CLUGP"} {
		p, err := New(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		ref, refRes := collectAssignments(t, p, stream.Of(g.Edges).Source(g.NumVertices), k, OutOfCoreOptions{})
		for _, dir := range []struct {
			crash, resume OutOfCoreOptions
		}{
			{OutOfCoreOptions{Workers: 4, ScoreWorkers: 4}, OutOfCoreOptions{}},
			{OutOfCoreOptions{}, OutOfCoreOptions{Workers: 4, ScoreWorkers: 4}},
		} {
			t.Run(fmt.Sprintf("%s/decode=%d,score=%d->decode=%d,score=%d", name,
				dir.crash.Workers, dir.crash.ScoreWorkers, dir.resume.Workers, dir.resume.ScoreWorkers), func(t *testing.T) {
				ckPath := filepath.Join(t.TempDir(), "run.cpk")
				crashOpts := dir.crash
				crashOpts.Checkpoint = &CheckpointOptions{Path: ckPath, EveryEdges: ckCadence}
				crashP, err := New(name, 3)
				if err != nil {
					t.Fatal(err)
				}
				crashed := runUntilCrash(t, crashP, g, k, crashOpts, ckCrashAt)
				c, _, err := store.LoadCheckpoint(ckPath)
				if err != nil {
					t.Fatal(err)
				}
				resumed, res := resumeFrom(t, name, g, k, c, ckPath, dir.resume)
				checkResumedRun(t, ref, refRes, crashed, resumed, res, c.Offset)
			})
		}
	}
}

// TestCheckpointCorruptionFallsBackToPrev: a corrupted current checkpoint
// must never be resumed from - the CRC trailer rejects it and LoadCheckpoint
// falls back to the rotated previous generation, which still resumes
// bit-identically (just from an earlier offset). With both generations
// corrupt there is nothing to resume from, and that is an error, not a
// silent restart.
func TestCheckpointCorruptionFallsBackToPrev(t *testing.T) {
	g := checkpointTestGraph()
	k := 4
	name := "HDRF"
	p, err := New(name, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, refRes := collectAssignments(t, p, stream.Of(g.Edges).Source(g.NumVertices), k, OutOfCoreOptions{})

	ckPath := filepath.Join(t.TempDir(), "run.cpk")
	crashP, err := New(name, 3)
	if err != nil {
		t.Fatal(err)
	}
	crashed := runUntilCrash(t, crashP, g, k, OutOfCoreOptions{
		Checkpoint: &CheckpointOptions{Path: ckPath, EveryEdges: ckCadence},
	}, ckCrashAt)

	// Reading the current checkpoint through a faultfs injector: a flipped
	// bit or a torn tail beneath the reader is detected by the checksum, and
	// the decoder never hands back a checkpoint.
	fi, err := os.Stat(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, fault := range []faultfs.Fault{
		{Kind: faultfs.BitFlip, Off: fi.Size() / 3, Bit: 2},
		{Kind: faultfs.Truncate, Off: fi.Size() * 2 / 3},
	} {
		f, err := os.Open(ckPath)
		if err != nil {
			t.Fatal(err)
		}
		inj := faultfs.Wrap(f, fault)
		if _, err := store.ReadCheckpoint(io.NewSectionReader(inj, 0, fi.Size())); err == nil {
			t.Fatalf("checkpoint decoded despite fault %+v", fault)
		}
		if st := inj.Stats(); st.Reads == 0 {
			t.Fatalf("fault plan never touched a read (stats %+v)", st)
		}
		f.Close()
	}

	// Corrupt the current file at rest: LoadCheckpoint must fall back to the
	// previous generation (one cadence earlier), and resuming from it is
	// still bit-identical.
	cur, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	cur[len(cur)/2] ^= 0x10
	if err := os.WriteFile(ckPath, cur, 0o644); err != nil {
		t.Fatal(err)
	}
	c, from, err := store.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if want := ckPath + store.CheckpointPrevSuffix; from != want {
		t.Fatalf("loaded %s, want the fallback %s", from, want)
	}
	if want := int64(2 * stream.BlockLen); c.Offset != want {
		t.Fatalf("fallback checkpoint at offset %d, want %d", c.Offset, want)
	}
	resumed, res := resumeFrom(t, name, g, k, c, ckPath, OutOfCoreOptions{})
	checkResumedRun(t, ref, refRes, crashed, resumed, res, c.Offset)

	// Corrupt the previous generation too: no usable checkpoint remains.
	prev, err := os.ReadFile(ckPath + store.CheckpointPrevSuffix)
	if err != nil {
		t.Fatal(err)
	}
	prev[len(prev)/3] ^= 0x01
	if err := os.WriteFile(ckPath+store.CheckpointPrevSuffix, prev, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckPath, cur, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadCheckpoint(ckPath); err == nil {
		t.Fatal("LoadCheckpoint accepted a pair of corrupt checkpoints")
	}
}

// TestCheckpointResumeRejectsMismatch: a checkpoint that does not describe
// this exact run - wrong algorithm, k, graph geometry, or a tampered
// offset - must be rejected before any state is restored. Resuming it would
// silently produce wrong assignments, the one outcome the subsystem exists
// to prevent.
func TestCheckpointResumeRejectsMismatch(t *testing.T) {
	g := checkpointTestGraph()
	k := 4
	ckPath := filepath.Join(t.TempDir(), "run.cpk")
	crashP, err := New("HDRF", 3)
	if err != nil {
		t.Fatal(err)
	}
	runUntilCrash(t, crashP, g, k, OutOfCoreOptions{
		Checkpoint: &CheckpointOptions{Path: ckPath, EveryEdges: ckCadence},
	}, ckCrashAt)
	c, _, err := store.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	other := gen.Web(gen.WebConfig{N: 6000, OutDegree: 5, IntraSite: 0.7, Seed: 17})
	cases := []struct {
		name   string
		algo   string
		k      int
		g      *graph.Graph
		mutate func(*store.Checkpoint)
		want   string
	}{
		{name: "wrong algorithm", algo: "Greedy", k: k, g: g, want: "algorithm"},
		{name: "wrong k", algo: "HDRF", k: k + 1, g: g, want: "k="},
		{name: "wrong geometry", algo: "HDRF", k: k, g: other, want: "vertices"},
		{name: "tampered edge count", algo: "HDRF", k: k, g: g,
			mutate: func(c *store.Checkpoint) { c.NumEdges++ }, want: "edges"},
		{name: "misaligned offset", algo: "HDRF", k: k, g: g,
			mutate: func(c *store.Checkpoint) { c.Offset++ }, want: "multiple"},
		{name: "non-checkpointer resume", algo: "DBH", k: k, g: g, want: "cannot restore"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cc := *c
			if tc.mutate != nil {
				tc.mutate(&cc)
			}
			p, err := New(tc.algo, 3)
			if err != nil {
				t.Fatal(err)
			}
			_, err = RunOutOfCoreOpts(p, stream.Of(tc.g.Edges).Source(tc.g.NumVertices), tc.k, nil,
				OutOfCoreOptions{Checkpoint: &CheckpointOptions{Resume: &cc}})
			if err == nil {
				t.Fatal("resume accepted a mismatched checkpoint")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCheckpointNonCheckpointerFallsBack: asking for checkpoints from an
// algorithm that cannot snapshot its state is not an error - the run
// completes without them - but the demotion is recorded in the pipeline
// info and no checkpoint file appears.
func TestCheckpointNonCheckpointerFallsBack(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 4000, OutDegree: 4, IntraSite: 0.7, Seed: 9})
	p, err := New("DBH", 3)
	if err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(t.TempDir(), "run.cpk")
	res, err := RunOutOfCore(p, stream.Of(g.Edges).Source(g.NumVertices), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	ckRes, err := RunOutOfCoreOpts(p, stream.Of(g.Edges).Source(g.NumVertices), 4, nil,
		OutOfCoreOptions{Checkpoint: &CheckpointOptions{Path: ckPath, EveryEdges: stream.BlockLen}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ckRes.Quality, res.Quality) {
		t.Fatalf("checkpoint-demoted run changed quality: %+v vs %+v", ckRes.Quality, res.Quality)
	}
	if ckRes.Pipeline.Checkpoints.Enabled || ckRes.Pipeline.Checkpoints.Written != 0 {
		t.Fatalf("checkpoint stats %+v for an algorithm that cannot snapshot", ckRes.Pipeline.Checkpoints)
	}
	if !strings.Contains(ckRes.Pipeline.SerialFallback, "snapshot") {
		t.Fatalf("fallback note %q does not record the demotion", ckRes.Pipeline.SerialFallback)
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file exists (stat err %v) though checkpointing was demoted", err)
	}
}

// TestPipelineReportsRetryAttempts: a retry-wrapped source surfaces its
// fired replay count through Result.Pipeline, and a clean source reads
// zero - the observability half of the stream.Retry contract.
func TestPipelineReportsRetryAttempts(t *testing.T) {
	g := faultTestGraph()
	path := writeCGRFormat(t, g, store.FormatCGR3)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New("HDRF", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Faults pinned mid-payload, past everything open-time reads touch (the
	// file is large enough that open stays near the header and trailer), so
	// they fire during the streaming pass - against the retry wrapper, not
	// the open loop.
	plan := []faultfs.Fault{
		{Kind: faultfs.TransientError, Off: fi.Size() / 2},
		{Kind: faultfs.TransientError, Off: fi.Size() * 3 / 5},
	}
	src, inj, done := openFaulty(t, path, plan)
	defer done()
	_, res := collectAssignments(t, p, stream.Retry(src, retryInjected), 4, OutOfCoreOptions{})
	if st := inj.Stats(); st.TransientErrors == 0 {
		t.Fatalf("no transient fired (stats %+v); the run proved nothing", st)
	}
	if res.Pipeline.RetryAttempts == 0 {
		t.Fatal("pipeline info reports zero retry attempts despite fired faults")
	}

	_, cleanRes := collectAssignments(t, p, stream.Of(g.Edges).Source(g.NumVertices), 4, OutOfCoreOptions{})
	if cleanRes.Pipeline.RetryAttempts != 0 {
		t.Fatalf("clean run reports %d retry attempts", cleanRes.Pipeline.RetryAttempts)
	}
}
