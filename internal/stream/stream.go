// Package stream implements the edge-streaming graph model of the paper
// (Definition 1): edges of a graph arrive sequentially in a chosen order and
// may be replayed for multi-pass ("restreaming") algorithms.
//
// The paper evaluates each partitioner under its best-performing order:
// random for Hashing/DBH/Greedy/HDRF and BFS (the natural crawl order of web
// graphs) for Mint and CLUGP.
package stream

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Order selects the arrival order of the edge stream.
type Order int

const (
	// Natural preserves the order edges were generated or loaded in.
	Natural Order = iota
	// BFS reorders edges as a breadth-first crawl would discover them:
	// vertices are visited in BFS order over the underlying undirected
	// graph, and each vertex emits its incident not-yet-emitted edges when
	// visited. This is the order real web crawls approximate (Section II).
	BFS
	// DFS is the depth-first analogue of BFS, for order-sensitivity studies.
	DFS
	// Random applies a seeded Fisher-Yates shuffle.
	Random
)

func (o Order) String() string {
	switch o {
	case Natural:
		return "natural"
	case BFS:
		return "bfs"
	case DFS:
		return "dfs"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// ParseOrder converts a name produced by Order.String back to an Order.
func ParseOrder(s string) (Order, error) {
	switch s {
	case "natural":
		return Natural, nil
	case "bfs":
		return BFS, nil
	case "dfs":
		return DFS, nil
	case "random":
		return Random, nil
	}
	return Natural, fmt.Errorf("stream: unknown order %q", s)
}

// Edges returns the graph's edges arranged in the requested order. The
// returned slice is freshly allocated except for Natural, which aliases the
// graph's own storage. seed only affects Random.
func Edges(g *graph.Graph, order Order, seed uint64) []graph.Edge {
	switch order {
	case Natural:
		return g.Edges
	case Random:
		out := make([]graph.Edge, len(g.Edges))
		copy(out, g.Edges)
		rng := xrand.New(seed)
		for i := len(out) - 1; i > 0; i-- {
			j := int(rng.Uint64n(uint64(i + 1)))
			out[i], out[j] = out[j], out[i]
		}
		return out
	case BFS:
		return traversalOrder(g, false)
	case DFS:
		return traversalOrder(g, true)
	default:
		panic(fmt.Sprintf("stream: unknown order %d", int(order)))
	}
}

// traversalOrder emits edges in the order a BFS (or DFS) crawl over the
// undirected graph would first touch them. Each directed edge is emitted
// exactly once, when the traversal visits either endpoint. Disconnected
// components are started from the smallest unvisited vertex, matching how a
// crawler restarts from a new seed page.
func traversalOrder(g *graph.Graph, depthFirst bool) []graph.Edge {
	n := g.NumVertices
	// Build an undirected CSR carrying original edge indices so each edge is
	// emitted once regardless of which endpoint is visited first.
	type half struct {
		to  graph.VertexID
		eid int32
	}
	off := make([]int64, n+1)
	for _, e := range g.Edges {
		off[e.Src+1]++
		off[e.Dst+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	adj := make([]half, 2*len(g.Edges))
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for i, e := range g.Edges {
		adj[cursor[e.Src]] = half{to: e.Dst, eid: int32(i)}
		cursor[e.Src]++
		adj[cursor[e.Dst]] = half{to: e.Src, eid: int32(i)}
		cursor[e.Dst]++
	}

	out := make([]graph.Edge, 0, len(g.Edges))
	emitted := make([]bool, len(g.Edges))
	visited := make([]bool, n)
	// frontier doubles as queue (BFS) or stack (DFS).
	frontier := make([]graph.VertexID, 0, 1024)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		frontier = append(frontier[:0], graph.VertexID(start))
		for len(frontier) > 0 {
			var v graph.VertexID
			if depthFirst {
				v = frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
			} else {
				v = frontier[0]
				frontier = frontier[1:]
			}
			for _, h := range adj[off[v]:off[v+1]] {
				if !emitted[h.eid] {
					emitted[h.eid] = true
					out = append(out, g.Edges[h.eid])
				}
				if !visited[h.to] {
					visited[h.to] = true
					frontier = append(frontier, h.to)
				}
			}
		}
	}
	return out
}
