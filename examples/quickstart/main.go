// Quickstart: generate a web graph, partition it with CLUGP, and read the
// two quality metrics the paper optimizes (Section II-B).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 50k-page synthetic web graph: pages grouped into sites, power-law
	// in-degrees, emitted in crawl (BFS-like) order.
	g := repro.GenerateWeb(repro.WebConfig{
		N:         50000,
		OutDegree: 10,
		IntraSite: 0.85,
		Seed:      7,
	})
	stats := repro.ComputeStats(g)
	fmt.Printf("graph: %d vertices, %d edges, max degree %d, power-law alpha %.2f\n",
		stats.NumVertices, stats.NumEdges, stats.MaxDegree, stats.Alpha)

	// Partition into 32 parts with CLUGP (three restreaming passes:
	// clustering, cluster-partitioning game, transformation).
	res, err := repro.Partition(g, "CLUGP", 32, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CLUGP:  replication factor %.3f, balance %.3f, %v\n",
		res.Quality.ReplicationFactor, res.Quality.RelativeBalance, res.Runtime)

	// Compare with random edge placement to see what the clustering buys.
	hash, err := repro.Partition(g, "Hashing", 32, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hashing: replication factor %.3f, balance %.3f, %v\n",
		hash.Quality.ReplicationFactor, hash.Quality.RelativeBalance, hash.Runtime)
	fmt.Printf("\nCLUGP cuts the replication factor by %.1fx, which directly cuts\n",
		hash.Quality.ReplicationFactor/res.Quality.ReplicationFactor)
	fmt.Println("mirror-synchronization traffic in a distributed graph engine.")
}
