// Command experiments regenerates the paper's tables and figures on the
// synthetic stand-in datasets, and runs the machine-readable benchmark
// suite that tracks this repo's performance over time.
//
// Figure mode prints each artefact as an aligned text table whose
// rows/series correspond to the paper's plot:
//
//	experiments -fig 3              # Figure 3 (a-d)
//	experiments -fig table1
//	experiments -all -scale 0.5     # everything, at half dataset size
//
// Suite mode runs the full algorithm x dataset x k x seed grid on a worker
// pool and writes a BENCH_<name>.json report for regression tracking:
//
//	experiments -json                          # parallel suite -> BENCH_suite.json
//	experiments -json -workers 4 -seeds 3      # 4 workers, 3 seed replicates
//	experiments -json -baseline BENCH_suite.json   # diff against a prior report
//
// With -baseline the exit status is 2 when any cell regressed beyond
// tolerance, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
)

func main() {
	var (
		fig      = flag.String("fig", "", "experiment to run: "+strings.Join(repro.ExperimentNames(), ", "))
		all      = flag.Bool("all", false, "run every experiment")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		seed     = flag.Uint64("seed", 42, "seed for stochastic components")
		quiet    = flag.Bool("q", false, "suppress per-run progress lines")
		workers  = flag.Int("workers", 0, "suite worker-pool size (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "run the benchmark suite and write BENCH_<name>.json")
		baseline = flag.String("baseline", "", "diff the suite against a prior BENCH_*.json report")
		name     = flag.String("name", "suite", "experiment name for the JSON report filename")
		seeds    = flag.Int("seeds", 1, "number of seed replicates per suite cell (seed, seed+1, ...)")
		rtol     = flag.Float64("rtol", 0, "runtime regression tolerance for -baseline (0 = default 0.5; CI on unmatched hardware should raise it)")
		streamC  = flag.Bool("streamcells", true, "measure the out-of-core streaming grids (backend x format, plus decode-worker and score-worker scaling) in suite mode")
		cpuprof  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		algoList = flag.String("algos", "", "comma-separated algorithms for the suite (default: the paper's six)")
		dsList   = flag.String("datasets", "", "comma-separated datasets for the suite (default: all five)")
		ksList   = flag.String("ks", "", "comma-separated partition counts for the suite (default: 4..256)")
	)
	flag.Parse()

	stop, err := startProfiles(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		exit(1)
	}
	stopProfiles = stop
	defer stop()

	// The suite (-json/-baseline) and figure (-fig/-all) modes are
	// mutually exclusive; several flags only apply to the suite. Surface
	// conflicts instead of silently ignoring flags.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *jsonOut || *baseline != "" {
		if *fig != "" || *all {
			fmt.Fprintln(os.Stderr, "experiments: -json/-baseline run the benchmark suite and cannot be combined with -fig or -all")
			exit(2)
		}
		runSuite(*name, *scale, *seed, *seeds, *workers, *algoList, *dsList, *ksList, *jsonOut, *baseline, *quiet, *rtol, *streamC)
		return
	}
	for _, suiteOnly := range []string{"workers", "seeds", "name", "algos", "datasets", "ks", "rtol", "streamcells"} {
		if set[suiteOnly] {
			fmt.Fprintf(os.Stderr, "experiments: warning: -%s only applies to suite mode (-json/-baseline) and is ignored here\n", suiteOnly)
		}
	}

	cfg := repro.ExperimentConfig{Scale: *scale, Seed: *seed}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	names := repro.ExperimentNames()
	if !*all {
		if *fig == "" {
			fmt.Fprintln(os.Stderr, "experiments: need -fig NAME, -all or -json; valid names:", strings.Join(names, ", "))
			exit(2)
		}
		names = []string{*fig}
	}

	start := time.Now()
	for _, name := range names {
		tables, err := repro.RunExperiment(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			exit(1)
		}
		for i := range tables {
			if err := tables[i].Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				exit(1)
			}
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	}
}

// runSuite executes the benchmark grid, optionally writes the JSON report,
// and optionally diffs it against a baseline (exit 2 on regression).
func runSuite(name string, scale float64, seed uint64, seeds, workers int, algoList, dsList, ksList string, writeJSON bool, baseline string, quiet bool, rtol float64, streamCells bool) {
	cfg := repro.SuiteConfig{
		Scale:      scale,
		Workers:    workers,
		Algorithms: splitList(algoList),
		Datasets:   splitList(dsList),
		Streaming:  streamCells,
	}
	if !quiet {
		cfg.Progress = os.Stderr
	}
	for i := 0; i < seeds; i++ {
		cfg.Seeds = append(cfg.Seeds, seed+uint64(i))
	}
	for _, s := range splitList(ksList) {
		k, err := strconv.Atoi(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bad -ks entry %q: %v\n", s, err)
			exit(2)
		}
		cfg.Ks = append(cfg.Ks, k)
	}

	report, err := repro.RunSuiteParallel(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		exit(1)
	}
	report.Experiment = name
	for _, t := range report.Table() {
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			exit(1)
		}
	}
	if writeJSON {
		path := report.Filename()
		if err := report.WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			exit(1)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %s (%d cells in %v)\n",
				path, len(report.Cells), time.Duration(report.WallTimeNS).Round(time.Millisecond))
		}
	}
	if baseline != "" {
		prior, err := repro.LoadReport(baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			exit(1)
		}
		diff := repro.DiffReports(prior, report, repro.DiffOptions{RuntimeTolerance: rtol})
		t := diff.Table()
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			exit(1)
		}
		if diff.HasRegressions() {
			fmt.Fprintf(os.Stderr, "experiments: %d regression(s) against %s\n", len(diff.Regressions), baseline)
			exit(2)
		}
	}
}

// stopProfiles flushes any active -cpuprofile/-memprofile collection; exit
// routes through it so profiles survive error exits.
var stopProfiles = func() {}

// exit flushes profiles before terminating - the suite's regression gate
// (exit 2) is exactly when a CPU profile of the run is most wanted.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// startProfiles begins CPU profiling and/or arranges a heap snapshot. The
// returned stop is idempotent: it ends the CPU profile and writes the heap
// profile after a GC, so the snapshot shows live memory.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			if mem != "" {
				f, err := os.Create(mem)
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
					return
				}
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
				}
				f.Close()
			}
		})
	}, nil
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
