package stream

import (
	"sync"
	"testing"
	"unsafe"

	"repro/internal/gen"
	"repro/internal/graph"
)

func cacheTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.Web(gen.WebConfig{N: 2000, OutDegree: 6, SiteMean: 40, IntraSite: 0.8, CopyFactor: 0.5, Seed: 7})
}

func viewsEqual(a, b View) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}

// samePerm reports whether two views share one permutation (or are both
// natural over the same base).
func samePerm(a, b View) bool {
	pa, pb := a.Perm(), b.Perm()
	if (pa == nil) != (pb == nil) {
		return false
	}
	if pa == nil {
		return len(a.base) == len(b.base) && (len(a.base) == 0 || &a.base[0] == &b.base[0])
	}
	return len(pa) == len(pb) && (len(pa) == 0 || &pa[0] == &pb[0])
}

// TestCacheMatchesView checks the cache returns exactly what a direct
// NewView call produces, for every order.
func TestCacheMatchesView(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewCache()
	for _, order := range []Order{Natural, BFS, DFS, Random} {
		want := NewView(g, order, 99)
		got := c.View(g, order, 99)
		if !viewsEqual(got, want) {
			t.Errorf("order %v: cached stream differs from direct NewView", order)
		}
	}
}

// TestCacheComputesOnce checks repeated lookups reuse the same permutation
// and the cache materializes each distinct key exactly once.
func TestCacheComputesOnce(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewCache()
	first := c.View(g, BFS, 1)
	for i := 0; i < 10; i++ {
		again := c.View(g, BFS, uint64(i))
		if !samePerm(again, first) {
			t.Fatalf("lookup %d returned a different permutation; want the cached one", i)
		}
	}
	if got := c.Builds(); got != 1 {
		t.Errorf("Builds() = %d after repeated BFS lookups, want 1 (seed must not fragment non-random orders)", got)
	}

	// Random keys on seed; distinct seeds are distinct streams.
	r1 := c.View(g, Random, 1)
	r2 := c.View(g, Random, 2)
	if viewsEqual(r1, r2) {
		t.Error("Random streams for different seeds are identical")
	}
	if again := c.View(g, Random, 1); !samePerm(again, r1) {
		t.Error("Random lookup with same seed did not reuse the cached permutation")
	}
	if got := c.Builds(); got != 3 {
		t.Errorf("Builds() = %d, want 3 (bfs + two random seeds)", got)
	}
}

// TestCacheConcurrent hammers one key from many goroutines: every caller
// must observe the same permutation and the computation must run exactly
// once.
func TestCacheConcurrent(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewCache()
	const goroutines = 16
	results := make([]View, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.View(g, BFS, 0)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if !samePerm(results[i], results[0]) {
			t.Fatalf("goroutine %d got a different permutation", i)
		}
	}
	if got := c.Builds(); got != 1 {
		t.Errorf("Builds() = %d under concurrency, want 1", got)
	}
}

// TestCacheMemoryHalved pins the representation claim behind the View
// refactor: a cached non-natural order costs 4 bytes per edge (one int32
// permutation entry) - half of the 8 bytes per edge (one graph.Edge) the
// former edge-copy cache paid - and a cached natural order costs nothing.
func TestCacheMemoryHalved(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewCache()

	if sz := unsafe.Sizeof(graph.Edge{}); sz != 8 {
		t.Fatalf("graph.Edge is %d bytes, the halving claim assumes 8", sz)
	}
	edgeCopyBytes := int64(g.NumEdges()) * 8

	v := c.View(g, BFS, 0)
	if got := v.OrderBytes(); got != edgeCopyBytes/2 {
		t.Fatalf("BFS view order costs %d bytes, want %d (half of an edge copy's %d)",
			got, edgeCopyBytes/2, edgeCopyBytes)
	}
	if got := c.OrderBytes(); got != edgeCopyBytes/2 {
		t.Fatalf("cache holds %d order bytes after one BFS order, want %d", got, edgeCopyBytes/2)
	}

	c.View(g, Random, 1)
	c.View(g, Natural, 0) // natural aliases the graph: no order memory
	if got, want := c.OrderBytes(), edgeCopyBytes; got != want {
		t.Fatalf("cache holds %d order bytes after BFS+Random+Natural, want %d", got, want)
	}
}
