package bench

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/store"
	"repro/internal/stream"
)

// CheckpointCell is one grid point of the checkpoint-overhead benchmark:
// one algorithm streaming one dataset out-of-core (mmap backend, CGR3
// format, serial decode and scoring) twice - once bare, once writing CPK1
// checkpoints at the default cadence - so the runtime pair isolates what
// crash tolerance costs. The cell is also a hard correctness gate at
// measurement time: the checkpointed run's quality must equal the bare
// run's exactly, and a kill + resume through the checkpoint on disk must
// reproduce the bare run's per-edge assignments bit for bit, or the suite
// fails.
type CheckpointCell struct {
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	K         int    `json:"k"`
	Seed      uint64 `json:"seed"`
	// Vertices and Edges describe the built graph (after scaling).
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// EveryEdges is the resolved default checkpoint cadence.
	EveryEdges int64 `json:"every_edges"`
	// BaselineNS is the run without checkpointing; CheckpointNS the same
	// run writing checkpoints at the default cadence.
	BaselineNS   int64 `json:"baseline_ns"`
	CheckpointNS int64 `json:"checkpoint_ns"`
	// OverheadPct is (CheckpointNS-BaselineNS)/BaselineNS*100 - derived,
	// hardware-dependent, never diffed against baselines; the two runtimes
	// carry the comparison.
	OverheadPct float64 `json:"overhead_pct"`
	// Written and CheckpointBytes describe the checkpoints the run wrote.
	Written         int   `json:"written"`
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// ReplicationFactor and RelativeBalance are gated bit-identical across
	// the bare, checkpointed and resumed runs when the cell is measured.
	ReplicationFactor float64 `json:"replication_factor"`
	RelativeBalance   float64 `json:"relative_balance"`
}

// ID names the cell's grid coordinates, the join key for baseline diffs.
func (c CheckpointCell) ID() string {
	return fmt.Sprintf("checkpoint/%s/%s k=%d seed=%d", c.Dataset, c.Algorithm, c.K, c.Seed)
}

// checkpointAlgos covers the heuristic and the restreaming partitioner, the
// two checkpoint-state shapes (replica tables vs cluster state).
var checkpointAlgos = []string{"HDRF", "CLUGP"}

// errBenchKill is the seeded mid-run kill of the resume gate.
var errBenchKill = errors.New("bench: injected kill")

// runCheckpointCells measures the checkpoint grid serially. Each cell runs
// the dataset four times: bare (timed), checkpointing (timed), killed
// mid-run, and resumed from the on-disk checkpoint - the last two feed the
// bit-identity gate, not the clock.
func runCheckpointCells(cfg SuiteConfig) ([]CheckpointCell, error) {
	datasets := cfg.StreamDatasets
	if len(datasets) == 0 {
		datasets = defaultStreamDatasets
	}
	seed := cfg.Seeds[0]
	dir, err := os.MkdirTemp("", "bench-checkpoint-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var cells []CheckpointCell
	for _, name := range datasets {
		ds, err := DatasetByName(name)
		if err != nil {
			return nil, fmt.Errorf("bench: checkpoint cells: %w", err)
		}
		g := ds.Build(cfg.Scale)
		// Checkpoints fire only at BlockLen-aligned commit boundaries
		// strictly inside the stream, and the kill+resume gate needs one
		// before the midpoint kill. A dataset below that floor would
		// measure nothing, so skip it rather than fail the suite.
		if g.NumEdges() < 3*stream.BlockLen {
			suiteLogf(cfg, "checkpoint: %s too small at scale %.2f (%d edges < %d), skipping",
				name, cfg.Scale, g.NumEdges(), 3*stream.BlockLen)
			continue
		}
		suiteLogf(cfg, "checkpoint: built %s (%d vertices, %d edges)", name, g.NumVertices, g.NumEdges())
		path := filepath.Join(dir, name+".cgr")
		if err := writeEncoded(path, g, store.FormatCGR3); err != nil {
			return nil, err
		}
		src, err := store.OpenMmap(path)
		if err != nil {
			return nil, err
		}
		for _, alg := range checkpointAlgos {
			cell, err := runCheckpointCell(dir, name, alg, seed, src, g.NumVertices, g.NumEdges())
			if err != nil {
				src.Close()
				return nil, err
			}
			cells = append(cells, cell)
			suiteLogf(cfg, "  checkpoint %-4s %-5s  bare %v  ckpt %v (+%.1f%%, %d written, %d B)",
				name, alg, time.Duration(cell.BaselineNS).Round(time.Millisecond),
				time.Duration(cell.CheckpointNS).Round(time.Millisecond),
				cell.OverheadPct, cell.Written, cell.CheckpointBytes)
		}
		src.Close()
	}
	return cells, nil
}

// runCheckpointCell measures one (dataset, algorithm) cell and enforces its
// correctness gates.
func runCheckpointCell(dir, name, alg string, seed uint64, src *store.MmapSource, nv, ne int) (CheckpointCell, error) {
	fail := func(err error) (CheckpointCell, error) {
		return CheckpointCell{}, fmt.Errorf("bench: checkpoint cell %s/%s: %w", name, alg, err)
	}
	collect := func(dst *[]int32) partition.Emit {
		return func(_ []graph.Edge, a []int32) error {
			*dst = append(*dst, a...)
			return nil
		}
	}

	// Bare run: the timing reference and the per-edge reference.
	p, err := partition.New(alg, seed)
	if err != nil {
		return fail(err)
	}
	ref := make([]int32, 0, ne)
	start := time.Now()
	bare, err := partition.RunOutOfCoreOpts(p, src, streamK, collect(&ref), partition.OutOfCoreOptions{})
	if err != nil {
		return fail(err)
	}
	baselineNS := time.Since(start).Nanoseconds()

	// Checkpointed run at the default cadence.
	ckPath := filepath.Join(dir, name+"-"+alg+".cpk")
	p, err = partition.New(alg, seed)
	if err != nil {
		return fail(err)
	}
	got := make([]int32, 0, ne)
	start = time.Now()
	ck, err := partition.RunOutOfCoreOpts(p, src, streamK, collect(&got), partition.OutOfCoreOptions{
		Checkpoint: &partition.CheckpointOptions{Path: ckPath},
	})
	if err != nil {
		return fail(err)
	}
	checkpointNS := time.Since(start).Nanoseconds()
	if ck.Quality.ReplicationFactor != bare.Quality.ReplicationFactor ||
		ck.Quality.RelativeBalance != bare.Quality.RelativeBalance {
		return fail(fmt.Errorf("checkpointed run diverges from bare (RF %v vs %v, bal %v vs %v)",
			ck.Quality.ReplicationFactor, bare.Quality.ReplicationFactor,
			ck.Quality.RelativeBalance, bare.Quality.RelativeBalance))
	}
	if !assignEqual(got, ref) {
		return fail(errors.New("checkpointed run's assignments diverge from bare"))
	}
	cks := ck.Pipeline.Checkpoints
	if cks.Written == 0 {
		return fail(errors.New("no checkpoint was written; the overhead cell measured nothing"))
	}

	// Kill + resume gate: die past the midpoint, resume from the newest
	// on-disk checkpoint, and require the stitched assignment stream to be
	// bit-identical to the bare run.
	p, err = partition.New(alg, seed)
	if err != nil {
		return fail(err)
	}
	var crashed []int32
	_, err = partition.RunOutOfCoreOpts(p, src, streamK, func(_ []graph.Edge, a []int32) error {
		crashed = append(crashed, a...)
		if len(crashed) >= ne/2 {
			return errBenchKill
		}
		return nil
	}, partition.OutOfCoreOptions{Checkpoint: &partition.CheckpointOptions{Path: ckPath}})
	if !errors.Is(err, errBenchKill) {
		return fail(fmt.Errorf("kill run: got %v, want the injected kill", err))
	}
	c, _, err := store.LoadCheckpoint(ckPath)
	if err != nil {
		return fail(err)
	}
	p, err = partition.New(alg, seed)
	if err != nil {
		return fail(err)
	}
	resumed := make([]int32, 0, ne-int(c.Offset))
	res, err := partition.RunOutOfCoreOpts(p, src, streamK, collect(&resumed), partition.OutOfCoreOptions{
		Checkpoint: &partition.CheckpointOptions{Path: ckPath, Resume: c},
	})
	if err != nil {
		return fail(err)
	}
	stitched := append(crashed[:c.Offset:c.Offset], resumed...)
	if !assignEqual(stitched, ref) {
		return fail(fmt.Errorf("kill at %d edges + resume from offset %d is not bit-identical to the bare run", ne/2, c.Offset))
	}
	if res.Quality.ReplicationFactor != bare.Quality.ReplicationFactor ||
		res.Quality.RelativeBalance != bare.Quality.RelativeBalance {
		return fail(errors.New("resumed run's quality diverges from bare"))
	}

	cell := CheckpointCell{
		Dataset: name, Algorithm: alg, K: streamK, Seed: seed,
		Vertices: nv, Edges: ne,
		EveryEdges:        cks.EveryEdges,
		BaselineNS:        baselineNS,
		CheckpointNS:      checkpointNS,
		Written:           cks.Written,
		CheckpointBytes:   cks.Bytes,
		ReplicationFactor: bare.Quality.ReplicationFactor,
		RelativeBalance:   bare.Quality.RelativeBalance,
	}
	if baselineNS > 0 {
		cell.OverheadPct = float64(checkpointNS-baselineNS) / float64(baselineNS) * 100
	}
	return cell, nil
}

// assignEqual reports whether two assignment streams are identical.
func assignEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
