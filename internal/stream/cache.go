package stream

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Cache memoizes ordered stream views per graph. The experiment suite runs
// every algorithm x k x seed cell against the same handful of graphs, and
// without a cache each run re-materializes its stream order from scratch -
// a full BFS/DFS traversal or shuffle per run. A Cache computes each
// distinct (graph, order, seed) permutation exactly once and hands the same
// View to every subsequent caller, turning the suite's per-run O(|E|)
// ordering cost into a map lookup.
//
// Because an order is a permutation over the graph's own edge slice, a
// cached entry costs 4 bytes per edge (one int32 index) instead of the 8 an
// edge copy used to, and the View it returns exposes no mutable state:
// sharing one entry across concurrent runs is safe by construction.
//
// A Cache is safe for concurrent use; concurrent requests for the same key
// block until the single computation finishes, while requests for different
// keys proceed independently.
//
// Keys hold the *graph.Graph pointer, so a Cache keeps every graph it has
// seen alive. Scope a Cache to one suite or experiment run and let it go
// out of scope with the graphs it ordered.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	builds  atomic.Int64
	bytes   atomic.Int64
}

type cacheKey struct {
	g     *graph.Graph
	order Order
	seed  uint64
}

type cacheEntry struct {
	once sync.Once
	view View
}

// NewCache returns an empty stream-order cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// View is NewView(g, order, seed) served from the cache: the first request
// for a key computes the permutation, every later request returns a View
// sharing it. seed is part of the key only for Random, the one order it
// affects.
func (c *Cache) View(g *graph.Graph, order Order, seed uint64) View {
	if order != Random {
		seed = 0
	}
	key := cacheKey{g: g, order: order, seed: seed}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.builds.Add(1)
		e.view = NewView(g, order, seed)
		c.bytes.Add(e.view.OrderBytes())
	})
	return e.view
}

// Builds reports how many distinct orderings the cache has materialized -
// the suite's "each stream order computed at most once" invariant is
// Builds() staying at the number of distinct (graph, order, seed) keys
// (seed only distinguishes Random) regardless of how many runs consumed
// them.
func (c *Cache) Builds() int64 { return c.builds.Load() }

// OrderBytes reports the memory held by the cached orderings themselves
// (the permutations; base edge slices belong to their graphs). With the
// permutation representation this is 4 bytes per edge per non-natural
// order - half of the 8 bytes per edge the former edge-copy representation
// paid.
func (c *Cache) OrderBytes() int64 { return c.bytes.Load() }
