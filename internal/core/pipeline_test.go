package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/stream"
)

func TestRunRetainsStages(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 3000, OutDegree: 6, IntraSite: 0.85, Seed: 2})
	pl, err := Run(g, Options{K: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Clustering == nil || pl.ClusterGraph == nil || pl.Game == nil || pl.Result == nil || pl.Trace == nil {
		t.Fatal("missing pipeline stage")
	}
	if pl.Stream.Len() != g.NumEdges() {
		t.Fatalf("pipeline stream has %d edges, want %d", pl.Stream.Len(), g.NumEdges())
	}
	if pl.Clustering.NumClusters != pl.ClusterGraph.NumClusters {
		t.Fatalf("cluster count mismatch: %d vs %d", pl.Clustering.NumClusters, pl.ClusterGraph.NumClusters)
	}
	if len(pl.ClusterPartition) != pl.ClusterGraph.NumClusters {
		t.Fatal("cluster-partition table length mismatch")
	}
	if pl.Result.Quality.ReplicationFactor < 1 {
		t.Fatalf("RF %v < 1", pl.Result.Quality.ReplicationFactor)
	}
}

func TestRunMatchesBlackBoxPartitioner(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 3000, OutDegree: 6, IntraSite: 0.85, Seed: 3})
	pl, err := Run(g, Options{K: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p := &partition.CLUGP{Seed: 9}
	res, err := partition.Run(p, g, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Result.Quality.ReplicationFactor != res.Quality.ReplicationFactor {
		t.Fatalf("pipeline RF %v != black-box RF %v",
			pl.Result.Quality.ReplicationFactor, res.Quality.ReplicationFactor)
	}
	for i := range res.Assign {
		if pl.Result.Assign[i] != res.Assign[i] {
			t.Fatalf("assignment diverges at edge %d", i)
		}
	}
}

func TestRunStagesConsistent(t *testing.T) {
	// The retained cluster-partition table must be what the trace's healed
	// fraction was computed from: every cluster id within range.
	g := gen.Web(gen.WebConfig{N: 2000, OutDegree: 5, IntraSite: 0.85, Seed: 4})
	pl, err := Run(g, Options{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for c, p := range pl.ClusterPartition {
		if p < 0 || p >= 4 {
			t.Fatalf("cluster %d assigned to invalid partition %d", c, p)
		}
	}
	// Every edge endpoint must be clustered.
	for i, n := 0, pl.Stream.Len(); i < n; i++ {
		e := pl.Stream.At(i)
		if pl.Clustering.Assign[e.Src] < 0 || pl.Clustering.Assign[e.Dst] < 0 {
			t.Fatalf("unclustered endpoint on edge %v", e)
		}
	}
}

func TestRunRejectsBadK(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 200, OutDegree: 4, Seed: 1})
	if _, err := Run(g, Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestRunGreedyVariant(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 2000, OutDegree: 5, IntraSite: 0.85, Seed: 5})
	pl, err := Run(g, Options{K: 8, Seed: 1, GreedyAssign: true})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Game == nil || pl.Game.Rounds != 0 {
		t.Fatal("greedy variant should produce a rounds-free assignment")
	}
}

func TestRunCustomOrder(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 1000, OutDegree: 4, IntraSite: 0.85, Seed: 6})
	pl, err := Run(g, Options{K: 4, Seed: 1, Order: stream.Random, OrderSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Result.Order != stream.Random {
		t.Fatalf("order %v, want random", pl.Result.Order)
	}
}
