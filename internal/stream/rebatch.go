package stream

import (
	"fmt"
	"io"

	"repro/internal/graph"
)

// RebatchSource re-blocks any source into fixed-size batches: every
// NextBlock returns exactly batchEdges edges (the final block carries the
// remainder), whatever block shape the base source produces. It is the
// batch-handoff seam of the gather -> score -> apply scoring pipeline
// (partition package): the pipeline's per-batch gather tables are sized by
// block, so blocks must be bounded - a natural-order in-memory view hands
// out its whole edge slice as one zero-copy block - and batch boundaries
// must sit at fixed stream offsets [b*B, (b+1)*B) for every decode
// configuration, or assignments would shift with the upstream blocking.
//
// When the base block already covers the whole batch the batch is served as
// a zero-copy sub-slice; otherwise edges are staged through an internal
// buffer (allocated once). Like any Source, a RebatchSource carries one
// cursor and is not safe for concurrent use.
type RebatchSource struct {
	base  Source
	batch int
	buf   []graph.Edge
	cur   []graph.Edge // unconsumed tail of the base source's current block
	pos   int          // edges delivered so far this pass
}

// Rebatch wraps src so blocks arrive in runs of batchEdges edges
// (0 = BlockLen). The wrapper shares src's cursor: Reset rewinds src.
func Rebatch(src Source, batchEdges int) *RebatchSource {
	if batchEdges <= 0 {
		batchEdges = BlockLen
	}
	return &RebatchSource{base: src, batch: batchEdges}
}

// NumVertices implements Source.
func (s *RebatchSource) NumVertices() int { return s.base.NumVertices() }

// Len implements Source.
func (s *RebatchSource) Len() int { return s.base.Len() }

// Reset implements Source.
func (s *RebatchSource) Reset() error {
	s.cur = nil
	s.pos = 0
	return s.base.Reset()
}

// NextBlock implements Source.
func (s *RebatchSource) NextBlock() ([]graph.Edge, error) {
	want := s.base.Len() - s.pos
	if want <= 0 {
		return nil, io.EOF
	}
	if want > s.batch {
		want = s.batch
	}
	// Zero-copy path: the base block already holds the whole batch.
	if len(s.cur) >= want {
		out := s.cur[:want]
		s.cur = s.cur[want:]
		s.pos += want
		return out, nil
	}
	if s.buf == nil {
		s.buf = make([]graph.Edge, 0, s.batch)
	}
	buf := append(s.buf[:0], s.cur...)
	for len(buf) < want {
		blk, err := s.base.NextBlock()
		if err == io.EOF {
			// The base delivered fewer edges than Len promised.
			return nil, fmt.Errorf("stream: rebatch: source ended at edge %d of %d: %w",
				s.pos+len(buf), s.base.Len(), io.ErrUnexpectedEOF)
		}
		if err != nil {
			return nil, err
		}
		take := want - len(buf)
		if take > len(blk) {
			take = len(blk)
		}
		buf = append(buf, blk[:take]...)
		s.cur = blk[take:]
	}
	s.buf = buf
	s.pos += want
	return buf, nil
}
