package engine

import "time"

// CostModel converts counted work into simulated wall-clock time. The
// defaults approximate the paper's cluster: commodity nodes on a
// gigabit-class network. Only relative behaviour matters for the
// reproduction; the knobs let experiments sweep latency as Figure 8(c)
// does with PUMBA.
type CostModel struct {
	// ComputePerEdge is the per-edge gather cost on a node (default 5ns).
	ComputePerEdge time.Duration
	// MsgBytes is the payload size of one value message (default 8: one
	// float64 rank or one 8-byte label frame).
	MsgBytes int64
	// MsgOverheadBytes is the framing overhead per message (default 16).
	MsgOverheadBytes int64
	// BandwidthBytesPerSec is the aggregate network bandwidth (default 1 GB/s).
	BandwidthBytesPerSec float64
	// RTT is the per-superstep round-trip synchronization latency. Each
	// superstep pays 2*RTT: one gather barrier, one scatter barrier.
	RTT time.Duration
}

// DefaultCostModel returns the baseline cost model used by the experiment
// harness.
func DefaultCostModel() CostModel {
	return CostModel{
		ComputePerEdge:       5 * time.Nanosecond,
		MsgBytes:             8,
		MsgOverheadBytes:     16,
		BandwidthBytesPerSec: 1e9,
		RTT:                  0,
	}
}

func (c CostModel) withDefaults() CostModel {
	d := DefaultCostModel()
	if c.ComputePerEdge == 0 {
		c.ComputePerEdge = d.ComputePerEdge
	}
	if c.MsgBytes == 0 {
		c.MsgBytes = d.MsgBytes
	}
	if c.MsgOverheadBytes == 0 {
		c.MsgOverheadBytes = d.MsgOverheadBytes
	}
	if c.BandwidthBytesPerSec == 0 {
		c.BandwidthBytesPerSec = d.BandwidthBytesPerSec
	}
	return c
}

// RunStats aggregates the accounting of a distributed run.
type RunStats struct {
	// Supersteps is the number of GAS iterations executed.
	Supersteps int
	// Messages is the total count of mirror->master and master->mirror
	// messages.
	Messages int64
	// CommBytes is the total bytes moved (payload + overhead).
	CommBytes int64
	// ComputeTime is the summed per-superstep compute makespan
	// (max over nodes of local-edge work).
	ComputeTime time.Duration
	// CommTime is the summed network transfer + latency time.
	CommTime time.Duration
	// SimTime is the modeled end-to-end makespan (ComputeTime + CommTime).
	SimTime time.Duration
	// MaxLocalEdges is the per-node compute bottleneck.
	MaxLocalEdges int64
}

// accountSuperstep folds one superstep's counters into the stats.
func (s *RunStats) accountSuperstep(cm CostModel, maxLocalEdges, messages int64) {
	s.Supersteps++
	s.Messages += messages
	bytes := messages * (cm.MsgBytes + cm.MsgOverheadBytes)
	s.CommBytes += bytes
	compute := time.Duration(maxLocalEdges) * cm.ComputePerEdge
	comm := time.Duration(float64(bytes)/cm.BandwidthBytesPerSec*1e9)*time.Nanosecond + 2*cm.RTT
	s.ComputeTime += compute
	s.CommTime += comm
	s.SimTime += compute + comm
}
