//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only in its entirety. The returned slice stays valid
// until munmapFile; the file descriptor may be closed independently of the
// mapping's lifetime, but this package keeps it open to serve the read-at
// fallback paths uniformly.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
