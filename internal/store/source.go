package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/graph"
	"repro/internal/stream"
)

// FileSource streams a CGR file as a stream.Source without ever holding the
// edge list in memory: one decode buffer of stream.BlockLen edges is the
// whole footprint. Reset seeks back to the first edge, so multi-pass
// algorithms (the three CLUGP passes, restreaming) replay the file instead
// of requiring a materialized graph.
//
// FileSource also implements stream.Segmenter: Segment(lo, hi) reopens the
// file with its own handle and seeks to edge lo, so DistributedCLUGP can
// shard one file across concurrent ingest nodes that never touch each
// other's cursors. Because the format is delta-encoded, seeking needs a
// sparse checkpoint index (byte offset + decoder state every indexStride
// edges); the index is built lazily by one sequential scan on the first
// Segment call and costs 24 bytes per indexStride edges.
//
// A FileSource is not safe for concurrent use; concurrent consumers each
// take their own Segment. Close releases the file handle (segments own
// theirs).
type FileSource struct {
	path string
	f    *os.File
	dec  decoder

	nv int
	ne int

	// Segment bounds in global edge indices; the root source spans [0, ne).
	lo, hi int
	// Decoder state at edge lo, captured once so Reset is a single seek.
	startOff  int64
	startPrev int64

	pos int // global index of the next edge to decode
	buf []graph.Edge

	// Checkpoint index, shared by all segments and guarded by idxMu.
	// idx[i] is the decoder state before edge i*indexStride.
	root    *FileSource
	idxMu   sync.Mutex
	idx     []checkpoint
	idxDone bool
}

var _ stream.Segmenter = (*FileSource)(nil)
var _ io.Closer = (*FileSource)(nil)

// indexStride is the edge spacing of seek checkpoints: fine enough that a
// segment open decodes at most a few thousand throwaway edges, coarse
// enough that the index is ~6000x smaller than the edges it indexes.
const indexStride = 4096

type checkpoint struct {
	off     int64 // byte offset of the edge's first varint
	prevSrc int64 // delta-decoder state before that edge
}

// decoder is the gap-decoding core shared by the streaming source and the
// index scanner: a buffered reader that knows the file offset of the next
// byte it will decode (bufio read-ahead is invisible to fileOff, which
// counts consumed bytes only).
type decoder struct {
	f       *os.File
	br      *bufio.Reader
	fileOff int64 // file offset of the next byte the decoder will consume
	prevSrc int64
	nv      int64
}

func (d *decoder) init(f *os.File, nv int) {
	d.f = f
	d.br = bufio.NewReaderSize(f, 1<<16)
	d.nv = int64(nv)
}

// seek positions the decoder at a byte offset with the given delta state.
func (d *decoder) seek(off, prevSrc int64) error {
	if _, err := d.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	d.br.Reset(d.f)
	d.fileOff = off
	d.prevSrc = prevSrc
	return nil
}

// offset returns the file offset of the next undecoded byte.
func (d *decoder) offset() int64 { return d.fileOff }

func (d *decoder) ReadByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err == nil {
		d.fileOff++
	}
	return b, err
}

// next decodes one edge, with the same range guards as Reader.Next.
func (d *decoder) next(edgeIndex int) (graph.Edge, error) {
	dSrc, err := binary.ReadVarint(d)
	if err != nil {
		return graph.Edge{}, fmt.Errorf("store: edge %d src: %w", edgeIndex, err)
	}
	src := d.prevSrc + dSrc
	dDst, err := binary.ReadVarint(d)
	if err != nil {
		return graph.Edge{}, fmt.Errorf("store: edge %d dst: %w", edgeIndex, err)
	}
	dst := src + dDst
	if src < 0 || dst < 0 || src >= d.nv || dst >= d.nv {
		return graph.Edge{}, fmt.Errorf("store: edge %d (%d->%d) out of range (n=%d)", edgeIndex, src, dst, d.nv)
	}
	d.prevSrc = src
	return graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)}, nil
}

// Open prepares path (a file written by Write) for streaming. The header is
// validated eagerly; edges decode on demand.
func Open(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := &FileSource{path: path, f: f}
	s.dec.init(f, 0)
	var m [4]byte
	if _, err := io.ReadFull(s.dec.br, m[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: reading magic: %w", path, err)
	}
	s.dec.fileOff += 4
	if m != magic {
		f.Close()
		return nil, fmt.Errorf("store: %s: %w", path, ErrBadMagic)
	}
	nv, err := binary.ReadUvarint(&s.dec)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: reading vertex count: %w", path, err)
	}
	ne, err := binary.ReadUvarint(&s.dec)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: reading edge count: %w", path, err)
	}
	if err := checkCounts(nv, ne); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	s.nv = int(nv)
	s.ne = int(ne)
	s.dec.nv = int64(nv)
	s.hi = s.ne
	s.startOff = s.dec.offset()
	s.idx = append(s.idx, checkpoint{off: s.startOff, prevSrc: 0})
	return s, nil
}

// NumVertices implements stream.Source.
func (s *FileSource) NumVertices() int { return s.nv }

// Len implements stream.Source: the edge count of this source's range.
func (s *FileSource) Len() int { return s.hi - s.lo }

// Path returns the file the source streams from.
func (s *FileSource) Path() string { return s.path }

// Reset implements stream.Source with a single seek: the decoder state at
// the segment's first edge was captured when the source was opened.
func (s *FileSource) Reset() error {
	if err := s.dec.seek(s.startOff, s.startPrev); err != nil {
		return fmt.Errorf("store: %s: reset: %w", s.path, err)
	}
	s.pos = s.lo
	return nil
}

// NextBlock implements stream.Source, decoding up to stream.BlockLen edges
// into an internal buffer.
func (s *FileSource) NextBlock() ([]graph.Edge, error) {
	if s.pos >= s.hi {
		return nil, io.EOF
	}
	if s.buf == nil {
		s.buf = make([]graph.Edge, stream.BlockLen)
	}
	n := s.hi - s.pos
	if n > stream.BlockLen {
		n = stream.BlockLen
	}
	for j := 0; j < n; j++ {
		e, err := s.dec.next(s.pos + j)
		if err != nil {
			return nil, err
		}
		s.buf[j] = e
	}
	s.pos += n
	return s.buf[:n], nil
}

// Segment implements stream.Segmenter: it reopens the file with its own
// handle, seeks to the nearest checkpoint at or before edge lo (building
// the checkpoint index on first use) and decodes forward to lo exactly.
// lo and hi are relative to this source, so segments nest. The returned
// source owns its file handle; Close it when done.
func (s *FileSource) Segment(lo, hi int) (stream.Source, error) {
	if lo < 0 || hi < lo || hi > s.Len() {
		return nil, fmt.Errorf("store: %s: segment [%d,%d) out of range (len %d)", s.path, lo, hi, s.Len())
	}
	glo, ghi := s.lo+lo, s.lo+hi
	root := s.rootSource()
	cp, cpEdge, err := root.checkpointFor(glo)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	seg := &FileSource{
		path: s.path, f: f,
		nv: s.nv, ne: s.ne,
		lo: glo, hi: ghi,
		root: root,
	}
	seg.dec.init(f, s.nv)
	if err := seg.dec.seek(cp.off, cp.prevSrc); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: segment seek: %w", s.path, err)
	}
	// Roll forward from the checkpoint to the segment's first edge so Reset
	// becomes a plain seek afterwards.
	for i := cpEdge; i < glo; i++ {
		if _, err := seg.dec.next(i); err != nil {
			f.Close()
			return nil, err
		}
	}
	seg.startOff = seg.dec.offset()
	seg.startPrev = seg.dec.prevSrc
	seg.pos = glo
	return seg, nil
}

func (s *FileSource) rootSource() *FileSource {
	if s.root != nil {
		return s.root
	}
	return s
}

// checkpointFor returns the densest checkpoint at or before the global edge
// index, extending the index with a sequential scan on a private handle if
// it does not reach that far yet.
func (s *FileSource) checkpointFor(edge int) (checkpoint, int, error) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	want := edge / indexStride
	if want >= len(s.idx) && !s.idxDone {
		if err := s.extendIndexLocked(want); err != nil {
			return checkpoint{}, 0, err
		}
	}
	if want >= len(s.idx) {
		want = len(s.idx) - 1
	}
	return s.idx[want], want * indexStride, nil
}

// extendIndexLocked scans forward from the last checkpoint until the index
// holds entry target (or the file ends), recording a checkpoint every
// indexStride edges. Called with idxMu held.
func (s *FileSource) extendIndexLocked(target int) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	var d decoder
	d.init(f, s.nv)
	last := s.idx[len(s.idx)-1]
	if err := d.seek(last.off, last.prevSrc); err != nil {
		return fmt.Errorf("store: %s: index scan seek: %w", s.path, err)
	}
	for i := (len(s.idx) - 1) * indexStride; len(s.idx) <= target; i++ {
		if i >= s.ne {
			s.idxDone = true
			return nil
		}
		if _, err := d.next(i); err != nil {
			return err
		}
		if (i+1)%indexStride == 0 {
			s.idx = append(s.idx, checkpoint{off: d.offset(), prevSrc: d.prevSrc})
		}
	}
	return nil
}

// Close releases the source's file handle. Segments are independent: each
// must be closed on its own.
func (s *FileSource) Close() error { return s.f.Close() }

// checkCounts rejects header counts no valid file can carry before anything
// is sized from them: vertex ids must fit the uint32 VertexID space, and a
// declared edge count beyond what varint encoding could physically fit in
// any file (or that would overflow int) means a corrupt or adversarial
// header rather than a graph.
func checkCounts(nv, ne uint64) error {
	if nv > 1<<32 {
		return fmt.Errorf("store: vertex count %d exceeds uint32 space", nv)
	}
	if ne > 1<<56 {
		return fmt.Errorf("store: edge count %d is implausible (corrupt header?)", ne)
	}
	return nil
}
