package store

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// buildResult assembles a small hand-checked result: 6 vertices, k
// partitions, an uneven size split and a few replicas per vertex.
func buildResult(t testing.TB, k int) *Result {
	t.Helper()
	n := 6
	rs := metrics.NewReplicaSets(n, k)
	rs.Add(0, 0)
	rs.Add(0, k-1)
	rs.Add(1, k/2)
	rs.Add(3, 0)
	if k > 1 {
		rs.Add(3, 1)
	}
	rs.Add(3, k-1)
	sizes := make([]int64, k)
	sizes[0] = 7
	sizes[k-1] = 3
	var ne int64
	for _, s := range sizes {
		ne += s
	}
	return &Result{
		Algorithm:   "HDRF",
		Order:       "random",
		K:           k,
		NumVertices: n,
		NumEdges:    ne,
		Sizes:       sizes,
		Replicas:    rs,
	}
}

func encodeResult(t testing.TB, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteResult(&buf, r); err != nil {
		t.Fatalf("WriteResult: %v", err)
	}
	return buf.Bytes()
}

func TestResultRoundTrip(t *testing.T) {
	for _, k := range []int{1, 2, 32, 64, 65, 128, 200} {
		r := buildResult(t, k)
		enc := encodeResult(t, r)
		got, err := ReadResult(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("k=%d ReadResult: %v", k, err)
		}
		if got.Algorithm != r.Algorithm || got.Order != r.Order ||
			got.K != r.K || got.NumVertices != r.NumVertices || got.NumEdges != r.NumEdges {
			t.Fatalf("k=%d header mismatch: %+v vs %+v", k, got, r)
		}
		for p := range r.Sizes {
			if got.Sizes[p] != r.Sizes[p] {
				t.Fatalf("k=%d size[%d] = %d, want %d", k, p, got.Sizes[p], r.Sizes[p])
			}
		}
		for v := 0; v < r.NumVertices; v++ {
			for w := 0; w < r.Replicas.Words(); w++ {
				if got.Replicas.Word(graph.VertexID(v), w) != r.Replicas.Word(graph.VertexID(v), w) {
					t.Fatalf("k=%d vertex %d word %d differs", k, v, w)
				}
			}
		}
		// The write side is canonical: re-encoding the decoded result must
		// reproduce the file bit for bit.
		if re := encodeResult(t, got); !bytes.Equal(re, enc) {
			t.Fatalf("k=%d re-encode is not bit-identical (%d vs %d bytes)", k, len(re), len(enc))
		}
	}
}

func TestResultEmptyGraph(t *testing.T) {
	r := &Result{
		Algorithm: "DBH", Order: "natural", K: 4,
		Sizes:    make([]int64, 4),
		Replicas: metrics.NewReplicaSets(0, 4),
	}
	enc := encodeResult(t, r)
	got, err := ReadResult(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("ReadResult(empty): %v", err)
	}
	if got.NumVertices != 0 || got.NumEdges != 0 || got.K != 4 {
		t.Fatalf("empty result decoded as %+v", got)
	}
}

func TestResultRejectsCorruption(t *testing.T) {
	valid := encodeResult(t, buildResult(t, 64))
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"graph magic", []byte("CGR1")},
		{"junk", []byte("not a result file at all")},
		{"truncated magic", valid[:3]},
		{"truncated header", valid[:6]},
		{"truncated body", valid[:len(valid)-2]},
		{"trailing byte", append(append([]byte(nil), valid...), 0)},
	}
	for _, tc := range cases {
		if _, err := ReadResult(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestResultRejectsForgedHeaders(t *testing.T) {
	forge := func(nv, ne, k uint64) []byte {
		var buf bytes.Buffer
		buf.Write(resultMagic[:])
		for _, x := range []uint64{nv, ne, k} {
			var tmp [10]byte
			n := putUvarintTmp(tmp[:], x)
			buf.Write(tmp[:n])
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"vertex overflow", forge(1<<33, 1, 4)},
		{"edge overflow", forge(4, 1<<57, 4)},
		{"k zero", forge(4, 1, 0)},
		{"k overflow", forge(4, 1, maxResultK+1)},
	}
	for _, tc := range cases {
		if _, err := ReadResult(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestResultRejectsInconsistentBody(t *testing.T) {
	// Sizes that do not sum to the declared edge count.
	bad := buildResult(t, 4)
	bad.NumEdges++ // desynchronize header from sizes
	var buf bytes.Buffer
	if err := WriteResult(&buf, bad); err == nil {
		t.Fatal("WriteResult accepted sizes that do not sum to NumEdges")
	}

	// A replica word carrying bits above k-1: hand-patch a valid k=4 file.
	// Geometry: rebuild the same result with a stray bit via a wider table.
	words := []uint64{1 << 5, 0, 0, 0, 0, 0} // bit 5 with k=4
	if _, err := metrics.NewReplicaSetsFromWords(6, 4, words); err == nil {
		t.Fatal("NewReplicaSetsFromWords accepted stray bits above k")
	}

	// Writer-side geometry guards.
	r := buildResult(t, 4)
	r.Sizes = r.Sizes[:3]
	if err := WriteResult(io.Discard, r); err == nil {
		t.Fatal("WriteResult accepted len(Sizes) != k")
	}
	r = buildResult(t, 4)
	r.Replicas = metrics.NewReplicaSets(5, 4)
	if err := WriteResult(io.Discard, r); err == nil {
		t.Fatal("WriteResult accepted a replica table with the wrong vertex count")
	}
	r = buildResult(t, 4)
	r.Algorithm = strings.Repeat("x", maxResultString+1)
	if err := WriteResult(io.Discard, r); err == nil {
		t.Fatal("WriteResult accepted an oversized algorithm name")
	}
}

func TestSniffResultHeader(t *testing.T) {
	valid := encodeResult(t, buildResult(t, 4))
	if !SniffResultHeader(valid) {
		t.Fatal("SniffResultHeader rejected a valid file")
	}
	for _, bad := range [][]byte{nil, []byte("CGR1xxxx"), []byte("CPR"), []byte("cpr1....")} {
		if SniffResultHeader(bad) {
			t.Fatalf("SniffResultHeader accepted %q", bad)
		}
	}
}

// putUvarintTmp mirrors binary.PutUvarint without importing it twice under a
// different name in tests.
func putUvarintTmp(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}
