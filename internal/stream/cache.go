package stream

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Cache memoizes ordered edge streams per graph. The experiment suite runs
// every algorithm x k x seed cell against the same handful of graphs, and
// without a cache each run re-materializes its stream order from scratch -
// a full BFS/DFS traversal or shuffle per run. A Cache computes each
// distinct (graph, order, seed) stream exactly once and hands the same
// slice to every subsequent caller, turning the suite's per-run O(|E|)
// ordering cost into a map lookup.
//
// The returned slices are shared: callers must treat them as read-only
// (every partitioner in this repo already does - they consume the stream,
// they never reorder it). A Cache is safe for concurrent use; concurrent
// requests for the same key block until the single computation finishes,
// while requests for different keys proceed independently.
//
// Keys hold the *graph.Graph pointer, so a Cache keeps every graph it has
// seen alive. Scope a Cache to one suite or experiment run and let it go
// out of scope with the graphs it ordered.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	builds  atomic.Int64
}

type cacheKey struct {
	g     *graph.Graph
	order Order
	seed  uint64
}

type cacheEntry struct {
	once  sync.Once
	edges []graph.Edge
}

// NewCache returns an empty stream-order cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Edges is Edges(g, order, seed) served from the cache: the first request
// for a key computes the ordering, every later request returns the same
// slice. seed is part of the key only for Random, the one order it affects.
func (c *Cache) Edges(g *graph.Graph, order Order, seed uint64) []graph.Edge {
	if order != Random {
		seed = 0
	}
	key := cacheKey{g: g, order: order, seed: seed}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.builds.Add(1)
		e.edges = Edges(g, order, seed)
	})
	return e.edges
}

// Builds reports how many distinct orderings the cache has materialized -
// the suite's "each stream order computed at most once" invariant is
// Builds() staying at the number of distinct (graph, order, seed) keys
// (seed only distinguishes Random) regardless of how many runs consumed
// them.
func (c *Cache) Builds() int64 { return c.builds.Load() }
