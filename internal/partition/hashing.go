package partition

import (
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// Hashing is PowerGraph's random edge placement: each edge goes to a
// partition chosen by hashing the edge itself. O(1) time per edge, zero
// state, lowest quality (Table I: time Low, quality Low).
type Hashing struct {
	// Seed perturbs the hash so independent runs decorrelate.
	Seed uint64
}

// Name implements Partitioner.
func (h *Hashing) Name() string { return "Hashing" }

// PreferredOrder implements Partitioner. Hashing is order-oblivious; random
// is the paper's stated setting.
func (h *Hashing) PreferredOrder() stream.Order { return stream.Random }

// Partition implements Partitioner.
func (h *Hashing) Partition(edges []graph.Edge, numVertices, k int) ([]int32, error) {
	assign := make([]int32, len(edges))
	kk := uint64(k)
	for i, e := range edges {
		key := uint64(e.Src)<<32 | uint64(e.Dst)
		assign[i] = int32(xrand.Hash64(key^h.Seed) % kk)
	}
	return assign, nil
}

// StateBytes implements StateSizer: a hash function needs no state beyond
// the k partition counters (the paper reports Hashing at 0 space cost).
func (h *Hashing) StateBytes(numVertices, numEdges, k int) int64 { return 0 }

// DBH is degree-based hashing (Xie et al., NeurIPS 2014): the edge is
// placed by hashing its lower-degree endpoint, so low-degree vertices keep
// their edges together while high-degree vertices are cut - the right
// trade for power-law graphs. Degrees are the partial (streamed-so-far)
// counts, keeping the algorithm single-pass.
type DBH struct {
	Seed uint64
}

// Name implements Partitioner.
func (d *DBH) Name() string { return "DBH" }

// PreferredOrder implements Partitioner.
func (d *DBH) PreferredOrder() stream.Order { return stream.Random }

// Partition implements Partitioner.
func (d *DBH) Partition(edges []graph.Edge, numVertices, k int) ([]int32, error) {
	assign := make([]int32, len(edges))
	deg := make([]uint32, numVertices)
	kk := uint64(k)
	for i, e := range edges {
		deg[e.Src]++
		deg[e.Dst]++
		low := e.Src
		if deg[e.Dst] < deg[e.Src] {
			low = e.Dst
		}
		assign[i] = int32(xrand.Hash64(uint64(low)^d.Seed) % kk)
	}
	return assign, nil
}

// StateBytes implements StateSizer: one degree counter per vertex.
func (d *DBH) StateBytes(numVertices, numEdges, k int) int64 {
	return int64(numVertices) * 4
}
