// Edge-cut vs vertex-cut: the Section II-C comparison. Partition the same
// power-law web graph both ways and compare the synchronization traffic a
// vertex-centric engine would pay - the reason the paper builds a
// vertex-cut partitioner.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.GenerateWeb(repro.WebConfig{N: 30000, OutDegree: 10, IntraSite: 0.85, Seed: 9})
	k := 32
	nv := float64(g.NumVertices)
	fmt.Printf("graph: %d vertices, %d edges, k=%d\n\n", g.NumVertices, g.NumEdges(), k)

	fmt.Println("edge-cut (vertices assigned; every cut edge = 2 msgs/superstep):")
	for _, p := range []repro.EdgeCutPartitioner{&repro.LDG{}, &repro.FENNEL{}, &repro.Multilevel{Seed: 9}} {
		assign, err := p.Partition(g, k)
		if err != nil {
			log.Fatal(err)
		}
		q, err := repro.EvaluateEdgeCut(g, assign, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s cut %5.1f%%  msgs/vertex %6.2f  balance %.3f\n",
			p.Name(), 100*q.CutFraction, 2*float64(q.CutEdges)/nv, q.VertexBalance)
	}

	fmt.Println("\nvertex-cut (edges assigned; every mirror = 2 msgs/superstep):")
	for _, name := range []string{"HDRF", "CLUGP"} {
		res, err := repro.Partition(g, name, k, 9)
		if err != nil {
			log.Fatal(err)
		}
		mirrors := res.Quality.Replicas - int64(res.Quality.Vertices)
		fmt.Printf("  %-11s RF %5.2f   msgs/vertex %6.2f  balance %.3f\n",
			name, res.Quality.ReplicationFactor, 2*float64(mirrors)/nv, res.Quality.RelativeBalance)
	}

	fmt.Println("\nOn power-law graphs the hubs force edge-cut partitioners to cut a")
	fmt.Println("large share of edges wherever the hub lands; vertex-cut replicates")
	fmt.Println("the hub instead, which is exactly the paper's Section II-C argument.")
}
