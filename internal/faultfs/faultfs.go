// Package faultfs injects deterministic I/O faults beneath the store.File
// interface. An Injector wraps any io.ReaderAt and fires a seeded, scripted
// plan of faults - transient errors, short reads, persistent bit flips,
// truncation - against the reads that cross each fault's byte offset, while
// store.OpenReaderAt turns the injected view back into an ordinary graph
// source. Nothing above the ReaderAt seam knows faults exist, so every
// conformance, bit-equivalence and partitioning test in the repository can
// run unchanged over a faulty "disk" and assert the robustness contract:
// transient faults are survivable (stream.Retry replays through them
// bit-identically), persistent corruption is always detected (the CGR3
// checksums reject it), and neither is ever silently absorbed into wrong
// edges.
//
// Fault plans are plain data and fully deterministic: the same plan over the
// same bytes produces the same fault sequence on every run, which is what
// lets bit-equivalence matrices run under injection.
package faultfs

import (
	"errors"
	"io"
	"os"
	"sync"

	"repro/internal/store"
	"repro/internal/xrand"
)

// ErrInjected is the error every injected transient fault carries. Retry
// policies match it with errors.Is; it wraps nothing, so real I/O errors
// never alias it.
var ErrInjected = errors.New("faultfs: injected transient I/O error")

// Kind selects what a Fault does to the reads that cross its offset.
type Kind int

const (
	// TransientError fails the covering read with ErrInjected and no data,
	// then heals: Count firings later the same read succeeds. Models EINTR,
	// NFS hiccups, device resets.
	TransientError Kind = iota
	// ShortRead delivers the bytes up to and including Off but no further,
	// returning the short count with ErrInjected (the io.ReaderAt contract
	// requires an error with a short read). Well-behaved callers loop or
	// treat it as transient; either way no byte is wrong.
	ShortRead
	// BitFlip persistently XORs bit Bit of the byte at Off in every read
	// that covers it. Models at-rest corruption; checksums must catch it.
	BitFlip
	// Truncate makes the file appear to end at Off: reads at or past Off
	// see io.EOF, reads crossing it come back short. Models torn writes.
	Truncate
)

// Fault is one scripted fault. Off anchors it to a byte offset; Skip is the
// number of covering reads to let pass unharmed before it first fires (so a
// transient can hit mid-stream rather than at open); Count is how many times
// it fires (0 means once for TransientError/ShortRead; BitFlip and Truncate
// are persistent and ignore it). Bit is the bit index for BitFlip.
type Fault struct {
	Kind  Kind
	Off   int64
	Skip  int
	Count int
	Bit   uint8
}

// Stats counts what an Injector actually did - tests assert faults fired, so
// a green run can never mean "the plan missed every read".
type Stats struct {
	Reads           int64
	TransientErrors int64
	ShortReads      int64
	FlippedReads    int64
	TruncatedReads  int64
}

// Injector is an io.ReaderAt that applies a fault plan to an underlying
// reader. It is safe for concurrent ReadAt calls (the source backends and
// integrity verification share one reader across goroutines).
type Injector struct {
	r  io.ReaderAt
	mu sync.Mutex
	// faults holds the remaining plan; fired-out transients stay with
	// Count==0 so Stats and plan order remain stable.
	faults []Fault
	stats  Stats
}

// Wrap returns an Injector applying faults to r. The plan is copied; the
// caller may reuse the slice.
func Wrap(r io.ReaderAt, faults ...Fault) *Injector {
	inj := &Injector{r: r, faults: make([]Fault, len(faults))}
	copy(inj.faults, faults)
	for i := range inj.faults {
		f := &inj.faults[i]
		if f.Count == 0 && (f.Kind == TransientError || f.Kind == ShortRead) {
			f.Count = 1
		}
	}
	return inj
}

// Stats returns a snapshot of what has fired so far.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// ReadAt implements io.ReaderAt under the fault plan. At most one transient
// or short-read fault fires per call (the first armed one in plan order);
// bit flips and truncation apply to every covering read.
func (inj *Injector) ReadAt(p []byte, off int64) (int, error) {
	inj.mu.Lock()
	inj.stats.Reads++

	// Truncation first: it redefines where the file ends.
	limit := int64(-1)
	for i := range inj.faults {
		f := &inj.faults[i]
		if f.Kind == Truncate && (limit < 0 || f.Off < limit) {
			limit = f.Off
		}
	}
	if limit >= 0 && off >= limit {
		inj.stats.TruncatedReads++
		inj.mu.Unlock()
		return 0, io.EOF
	}
	want := len(p)
	if limit >= 0 && off+int64(want) > limit {
		inj.stats.TruncatedReads++
		want = int(limit - off)
	}

	// One armed transient or short read, in plan order.
	var short int64 = -1
	for i := range inj.faults {
		f := &inj.faults[i]
		if f.Count <= 0 || f.Off < off || f.Off >= off+int64(want) {
			continue
		}
		switch f.Kind {
		case TransientError:
			if f.Skip > 0 {
				f.Skip--
				continue
			}
			f.Count--
			inj.stats.TransientErrors++
			inj.mu.Unlock()
			return 0, ErrInjected
		case ShortRead:
			if f.Skip > 0 {
				f.Skip--
				continue
			}
			f.Count--
			inj.stats.ShortReads++
			short = f.Off - off + 1
		}
		if short >= 0 {
			break
		}
	}
	if short >= 0 && short < int64(want) {
		want = int(short)
	}
	inj.mu.Unlock()

	n, err := inj.r.ReadAt(p[:want], off)

	inj.mu.Lock()
	for i := range inj.faults {
		f := &inj.faults[i]
		if f.Kind == BitFlip && f.Off >= off && f.Off < off+int64(n) {
			p[f.Off-off] ^= 1 << (f.Bit & 7)
			inj.stats.FlippedReads++
		}
	}
	inj.mu.Unlock()

	if err != nil {
		return n, err
	}
	if n < len(p) {
		// A clean underlying read that we shortened (short-read or
		// truncation fault) still owes the caller a non-nil error.
		if short >= 0 {
			return n, ErrInjected
		}
		return n, io.EOF
	}
	return n, nil
}

// TransientPlan builds a deterministic plan of n TransientError faults at
// seeded pseudorandom offsets in [0, size), with small skips so some fire on
// first touch and others partway through a pass. The same seed and size
// always produce the same plan.
func TransientPlan(seed uint64, size int64, n int) []Fault {
	rng := xrand.New(seed)
	plan := make([]Fault, n)
	for i := range plan {
		plan[i] = Fault{
			Kind: TransientError,
			Off:  int64(rng.Uint64n(uint64(size))),
			Skip: int(rng.Uint64n(3)),
		}
	}
	return plan
}

// File is a graph source streaming through a fault plan: store.OpenReaderAt
// over an Injector over the file's bytes. It satisfies store.File, so it
// drops into any test matrix in place of Open/OpenMmap.
type File struct {
	*store.ReaderAtSource
	inj *Injector
	f   *os.File
}

var _ store.File = (*File)(nil)

// Open opens path as a graph source whose every read passes through the
// fault plan - including the checkpoint index scan and the integrity
// verification reads, so checksums are checked against what the faulty
// "disk" returns, not against a pristine buffer.
func Open(path string, faults ...Fault) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	inj := Wrap(f, faults...)
	src, err := store.OpenReaderAt(inj, fi.Size(), path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &File{ReaderAtSource: src, inj: inj, f: f}, nil
}

// Injector exposes the fault state so tests can assert what fired.
func (f *File) Injector() *Injector { return f.inj }

// Close releases the source and the underlying file. Idempotent.
func (f *File) Close() error {
	f.ReaderAtSource.Close()
	return f.f.Close()
}
