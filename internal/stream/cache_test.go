package stream

import (
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func cacheTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.Web(gen.WebConfig{N: 2000, OutDegree: 6, SiteMean: 40, IntraSite: 0.8, CopyFactor: 0.5, Seed: 7})
}

func edgesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCacheMatchesEdges checks the cache returns exactly what a direct
// Edges call produces, for every order.
func TestCacheMatchesEdges(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewCache()
	for _, order := range []Order{Natural, BFS, DFS, Random} {
		want := Edges(g, order, 99)
		got := c.Edges(g, order, 99)
		if !edgesEqual(got, want) {
			t.Errorf("order %v: cached stream differs from direct Edges", order)
		}
	}
}

// TestCacheComputesOnce checks repeated lookups reuse the same slice and
// the cache materializes each distinct key exactly once.
func TestCacheComputesOnce(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewCache()
	first := c.Edges(g, BFS, 1)
	for i := 0; i < 10; i++ {
		again := c.Edges(g, BFS, uint64(i))
		if len(again) > 0 && &again[0] != &first[0] {
			t.Fatalf("lookup %d returned a different slice; want the cached one", i)
		}
	}
	if got := c.Builds(); got != 1 {
		t.Errorf("Builds() = %d after repeated BFS lookups, want 1 (seed must not fragment non-random orders)", got)
	}

	// Random keys on seed; distinct seeds are distinct streams.
	r1 := c.Edges(g, Random, 1)
	r2 := c.Edges(g, Random, 2)
	if edgesEqual(r1, r2) {
		t.Error("Random streams for different seeds are identical")
	}
	if again := c.Edges(g, Random, 1); &again[0] != &r1[0] {
		t.Error("Random lookup with same seed did not reuse the cached slice")
	}
	if got := c.Builds(); got != 3 {
		t.Errorf("Builds() = %d, want 3 (bfs + two random seeds)", got)
	}
}

// TestCacheConcurrent hammers one key from many goroutines: every caller
// must observe the same slice and the computation must run exactly once.
func TestCacheConcurrent(t *testing.T) {
	g := cacheTestGraph(t)
	c := NewCache()
	const goroutines = 16
	results := make([][]graph.Edge, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Edges(g, BFS, 0)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatalf("goroutine %d got a different slice", i)
		}
	}
	if got := c.Builds(); got != 1 {
		t.Errorf("Builds() = %d under concurrency, want 1", got)
	}
}
