package partition

import (
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// HDRF is High-Degree (are) Replicated First (Petroni et al., CIKM 2015),
// the paper's state-of-the-art one-pass baseline. For each edge it scores
// every partition with a replication term that prefers partitions already
// holding an endpoint - weighted so the LOWER-degree endpoint counts more,
// which steers cuts toward high-degree vertices - plus a balance term, and
// picks the argmax:
//
//	theta(u)   = delta(u) / (delta(u)+delta(v))          (partial degrees)
//	g(u,p)     = 1 + (1 - theta(u))  if p holds u, else 0
//	C_rep(p)   = g(u,p) + g(v,p)
//	C_bal(p)   = BalanceWeight * (maxsize - |p|) / (eps + maxsize - minsize)
//
// Like Greedy it keeps the full P(v) table and scans all k partitions per
// edge, which is exactly the O(k) cost the runtime experiments (Figure 7)
// show blowing up at large k.
type HDRF struct {
	// BalanceWeight is the lambda of the HDRF paper (its default 1.1 keeps
	// near-perfect balance; larger trades quality for balance). Zero means
	// 1.1.
	BalanceWeight float64
}

// Name implements Partitioner.
func (h *HDRF) Name() string { return "HDRF" }

// PreferredOrder implements Partitioner.
func (h *HDRF) PreferredOrder() stream.Order { return stream.Random }

// Partition implements Partitioner.
func (h *HDRF) Partition(edges []graph.Edge, numVertices, k int) ([]int32, error) {
	lam := h.BalanceWeight
	if lam == 0 {
		lam = 1.1
	}
	const eps = 1.0
	assign := make([]int32, len(edges))
	rs := metrics.NewReplicaSets(numVertices, k)
	deg := make([]uint32, numVertices)
	sizes := make([]int64, k)
	var maxSize, minSize int64

	for i, e := range edges {
		u, v := e.Src, e.Dst
		deg[u]++
		deg[v]++
		du, dv := float64(deg[u]), float64(deg[v])
		thetaU := du / (du + dv)
		thetaV := 1 - thetaU

		spread := float64(maxSize - minSize)
		best := 0
		bestScore := -1.0
		for p := 0; p < k; p++ {
			var crep float64
			if rs.Has(u, p) {
				crep += 1 + (1 - thetaU)
			}
			if rs.Has(v, p) {
				crep += 1 + (1 - thetaV)
			}
			cbal := lam * float64(maxSize-sizes[p]) / (eps + spread)
			if s := crep + cbal; s > bestScore {
				bestScore = s
				best = p
			}
		}
		assign[i] = int32(best)
		sizes[best]++
		rs.Add(u, best)
		rs.Add(v, best)
		if sizes[best] > maxSize {
			maxSize = sizes[best]
		}
		// minSize only changes when the previous minimum partition grew;
		// rescan lazily in that case.
		if sizes[best]-1 == minSize {
			minSize = sizes[0]
			for p := 1; p < k; p++ {
				if sizes[p] < minSize {
					minSize = sizes[p]
				}
			}
		}
	}
	return assign, nil
}

// StateBytes implements StateSizer: replica bitsets + degree table + sizes.
func (h *HDRF) StateBytes(numVertices, numEdges, k int) int64 {
	words := (k + 63) / 64
	return int64(numVertices)*int64(words)*8 + int64(numVertices)*4 + int64(k)*8
}
