package metrics

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// applyOps drives a flat and a sharded table through the same Add sequence
// and checks every read-side method agrees on every vertex. This is the
// differential property the sharded refactor must preserve: routing by
// vertex range is invisible to readers.
func checkShardedVsFlat(t *testing.T, n, k, shards int, ops [][2]int) {
	t.Helper()
	flat := NewReplicaSets(n, k)
	shd := NewShardedReplicaSets(n, k, shards)
	for _, op := range ops {
		v, p := graph.VertexID(op[0]), op[1]
		flat.Add(v, p)
		shd.Add(v, p)
	}
	if flat.K() != shd.K() || flat.Words() != shd.Words() {
		t.Fatalf("geometry: flat %d/%d sharded %d/%d", flat.K(), flat.Words(), shd.K(), shd.Words())
	}
	var fbuf, sbuf []int32
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		if flat.Count(id) != shd.Count(id) {
			t.Fatalf("v=%d: Count flat %d sharded %d", v, flat.Count(id), shd.Count(id))
		}
		for w := 0; w < flat.Words(); w++ {
			if flat.Word(id, w) != shd.Word(id, w) {
				t.Fatalf("v=%d word %d: flat %x sharded %x", v, w, flat.Word(id, w), shd.Word(id, w))
			}
		}
		for p := 0; p < k; p++ {
			if flat.Has(id, p) != shd.Has(id, p) {
				t.Fatalf("v=%d p=%d: Has disagrees", v, p)
			}
		}
		fbuf = flat.Partitions(id, fbuf[:0])
		sbuf = shd.Partitions(id, sbuf[:0])
		if len(fbuf) != len(sbuf) {
			t.Fatalf("v=%d: Partitions lengths %d vs %d", v, len(fbuf), len(sbuf))
		}
		for i := range fbuf {
			if fbuf[i] != sbuf[i] {
				t.Fatalf("v=%d: Partitions[%d] %d vs %d", v, i, fbuf[i], sbuf[i])
			}
		}
	}
	if flat.Bytes() != shd.Bytes() {
		t.Fatalf("Bytes: flat %d sharded %d", flat.Bytes(), shd.Bytes())
	}
}

func randOps(rng *rand.Rand, n, k, count int) [][2]int {
	ops := make([][2]int, count)
	for i := range ops {
		ops[i] = [2]int{rng.IntN(n), rng.IntN(k)}
	}
	return ops
}

// TestShardedMatchesFlat is the property test over the geometry grid,
// including k > 64 (multi-word bitsets), shard counts that do not divide n,
// and more shards than vertices.
func TestShardedMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, n := range []int{1, 7, 64, 257} {
		for _, k := range []int{1, 2, 63, 64, 65, 130} {
			for _, shards := range []int{1, 2, 3, 7, 64, 1000} {
				checkShardedVsFlat(t, n, k, shards, randOps(rng, n, k, 4*n))
			}
		}
	}
}

// TestShardedGeometry pins the range arithmetic: spans cover [0, n) exactly
// once, ShardOf agrees with ShardRange, and trailing shards shrink or clamp.
func TestShardedGeometry(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{10, 3}, {10, 10}, {10, 11}, {1, 4}, {100, 7}, {0, 3},
	} {
		s := NewShardedReplicaSets(tc.n, 4, tc.shards)
		covered := 0
		for i := 0; i < s.NumShards(); i++ {
			lo, hi := s.ShardRange(i)
			if lo != covered {
				t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", tc.n, tc.shards, i, lo, covered)
			}
			if hi < lo || hi > tc.n {
				t.Fatalf("n=%d shards=%d: shard %d range [%d,%d)", tc.n, tc.shards, i, lo, hi)
			}
			for v := lo; v < hi; v++ {
				if got := s.ShardOf(graph.VertexID(v)); got != i {
					t.Fatalf("n=%d shards=%d: ShardOf(%d)=%d, want %d", tc.n, tc.shards, v, got, i)
				}
			}
			covered = hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d shards=%d: shards cover %d vertices", tc.n, tc.shards, covered)
		}
	}
}

// TestShardedReset checks the scratch-reuse contract: a table reshaped
// across geometries starts empty each time and still matches flat.
func TestShardedReset(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	s := NewShardedReplicaSets(100, 70, 4)
	for _, op := range randOps(rng, 100, 70, 500) {
		s.Add(graph.VertexID(op[0]), op[1])
	}
	s.Reset(40, 8, 3)
	for v := 0; v < 40; v++ {
		if s.Count(graph.VertexID(v)) != 0 {
			t.Fatalf("vertex %d dirty after Reset", v)
		}
	}
	flat := NewReplicaSets(40, 8)
	for _, op := range randOps(rng, 40, 8, 200) {
		flat.Add(graph.VertexID(op[0]), op[1])
		s.Add(graph.VertexID(op[0]), op[1])
	}
	for v := 0; v < 40; v++ {
		for p := 0; p < 8; p++ {
			if flat.Has(graph.VertexID(v), p) != s.Has(graph.VertexID(v), p) {
				t.Fatalf("after Reset: v=%d p=%d disagrees", v, p)
			}
		}
	}
}

// TestShardedMerge: merge of independently accumulated tables equals the
// flat table fed the union of both op sequences; geometry mismatches error.
func TestShardedMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	const n, k, shards = 120, 96, 5
	a := NewShardedReplicaSets(n, k, shards)
	b := NewShardedReplicaSets(n, k, shards)
	flat := NewReplicaSets(n, k)
	for _, op := range randOps(rng, n, k, 400) {
		a.Add(graph.VertexID(op[0]), op[1])
		flat.Add(graph.VertexID(op[0]), op[1])
	}
	for _, op := range randOps(rng, n, k, 400) {
		b.Add(graph.VertexID(op[0]), op[1])
		flat.Add(graph.VertexID(op[0]), op[1])
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		for w := 0; w < flat.Words(); w++ {
			if flat.Word(graph.VertexID(v), w) != a.Word(graph.VertexID(v), w) {
				t.Fatalf("merged table diverges at v=%d word %d", v, w)
			}
		}
	}
	for _, bad := range []*ShardedReplicaSets{
		NewShardedReplicaSets(n+1, k, shards),
		NewShardedReplicaSets(n, k+1, shards),
		NewShardedReplicaSets(n, k, shards+1),
	} {
		if err := a.Merge(bad); err == nil {
			t.Fatal("geometry mismatch accepted")
		}
	}
}

// FuzzShardedVsFlat is the fuzz form of the differential property: arbitrary
// geometry and op bytes, sharded must agree with flat on every read.
func FuzzShardedVsFlat(f *testing.F) {
	f.Add(uint16(64), uint8(65), uint8(3), []byte{0, 1, 2, 3, 255, 254})
	f.Add(uint16(7), uint8(2), uint8(9), []byte{1, 1, 1, 1})
	f.Add(uint16(300), uint8(130), uint8(16), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, nRaw uint16, kRaw, shardsRaw uint8, opBytes []byte) {
		n := int(nRaw)%512 + 1
		k := int(kRaw)%200 + 1
		shards := int(shardsRaw)%40 + 1
		ops := make([][2]int, 0, len(opBytes)/2)
		for i := 0; i+1 < len(opBytes); i += 2 {
			ops = append(ops, [2]int{int(opBytes[i]) % n, int(opBytes[i+1]) % k})
		}
		checkShardedVsFlat(t, n, k, shards, ops)
	})
}
