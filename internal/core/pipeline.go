// Package core exposes the paper's primary contribution - the CLUGP
// three-pass restreaming pipeline - as individually inspectable stages, for
// callers who want more than the black-box partition.CLUGP: research code
// examining the clustering, the cluster graph, or the game equilibrium
// between passes.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/stream"
)

// Options mirror partition.CLUGP's knobs (see that type for semantics).
type Options struct {
	K                int
	Tau              float64
	VmaxFactor       float64
	RelWeight        float64
	Lambda           float64
	BatchSize        int
	Threads          int
	MigrateMaxDegree int
	DisableSplitting bool
	GreedyAssign     bool
	Seed             uint64
	// Order overrides the stream order (default BFS, the paper's setting).
	Order stream.Order
	// OrderSeed seeds the Random order shuffle.
	OrderSeed uint64
}

// Pipeline is the result of a full CLUGP run with every intermediate stage
// retained.
type Pipeline struct {
	// Stream is the ordered edge stream that was partitioned.
	Stream stream.View
	// Clustering is the pass-1 output.
	Clustering *cluster.Result
	// ClusterGraph is the aggregated cluster-level view feeding pass 2.
	ClusterGraph *cluster.Graph
	// Game is the pass-2 equilibrium (nil when GreedyAssign).
	Game *game.Assignment
	// ClusterPartition maps each cluster to its partition.
	ClusterPartition []int32
	// Result is the final edge partitioning with quality metrics.
	Result *partition.Result
	// Trace carries the pass diagnostics.
	Trace *partition.Trace
}

// Run executes the three passes, retaining each stage. Every component is
// deterministic for fixed options, so the retained stage outputs are
// exactly those behind Result (the final pass re-runs the pipeline through
// the partitioner to share its code path with the experiments; expect about
// twice the cost of a plain partition.Run).
func Run(g *graph.Graph, opts Options) (*Pipeline, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("core: K must be >= 1, got %d", opts.K)
	}
	order := opts.Order
	if order == stream.Natural {
		order = stream.BFS
	}
	if err := stream.CheckLen(len(g.Edges)); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := stream.NewView(g, order, opts.OrderSeed)
	src := s.Source(g.NumVertices)

	p := &partition.CLUGP{
		Tau:              opts.Tau,
		VmaxFactor:       opts.VmaxFactor,
		RelWeight:        opts.RelWeight,
		Lambda:           opts.Lambda,
		BatchSize:        opts.BatchSize,
		Threads:          opts.Threads,
		MigrateMaxDegree: opts.MigrateMaxDegree,
		DisableSplitting: opts.DisableSplitting,
		GreedyAssign:     opts.GreedyAssign,
		Seed:             opts.Seed,
	}

	// Re-run the stages explicitly so each is retained. Pass 1:
	vf := opts.VmaxFactor
	if vf == 0 {
		vf = 0.2
	}
	vmax := int64(vf * float64(s.Len()) / float64(opts.K))
	if vmax < 2 {
		vmax = 2
	}
	cres, err := cluster.Run(src, cluster.Config{
		Vmax:             vmax,
		DisableSplitting: opts.DisableSplitting,
		MigrateMaxDegree: opts.MigrateMaxDegree,
	})
	if err != nil {
		return nil, err
	}
	cres.Compact()
	cg, err := cluster.BuildGraph(src, cres)
	if err != nil {
		return nil, err
	}

	// Pass 2:
	var asg *game.Assignment
	if opts.GreedyAssign {
		asg = game.GreedyAssign(cg, opts.K)
	} else {
		batch := opts.BatchSize
		if batch == 0 {
			batch = 6400
		}
		asg, err = game.Solve(cg, game.Config{
			K:         opts.K,
			Lambda:    opts.Lambda,
			RelWeight: opts.RelWeight,
			BatchSize: batch,
			Threads:   opts.Threads,
			Seed:      opts.Seed,
		})
		if err != nil {
			return nil, err
		}
	}

	// Pass 3 runs through the partitioner so the quality metrics and trace
	// come from the same code path as every experiment.
	assign, err := p.Partition(src, opts.K)
	if err != nil {
		return nil, err
	}
	q, err := metrics.Evaluate(src, assign, opts.K)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		Stream:           s,
		Clustering:       cres,
		ClusterGraph:     cg,
		Game:             asg,
		ClusterPartition: asg.Partition,
		Result: &partition.Result{
			Algorithm:   p.Name(),
			Order:       order,
			K:           opts.K,
			NumVertices: g.NumVertices,
			Stream:      src,
			Assign:      assign,
			Quality:     q,
			StateBytes:  p.StateBytes(g.NumVertices, s.Len(), opts.K),
		},
		Trace: p.LastTrace,
	}, nil
}
