package metrics

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// TestStateCanonicalAcrossLayouts: the checkpoint encodings are defined
// over the logical, vertex-major state - a flat table and a sharded table
// with the same contents must serialize to identical bytes for any shard
// count, and each layout must load the other's bytes. This is what lets a
// run checkpointed at one worker configuration resume under another.
func TestStateCanonicalAcrossLayouts(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 21))
	for _, geo := range []struct{ n, k int }{{100, 4}, {257, 64}, {64, 65}} {
		flat := NewReplicaSets(geo.n, geo.k)
		deg := make([]uint32, geo.n)
		for i := 0; i < geo.n*4; i++ {
			v := graph.VertexID(rng.IntN(geo.n))
			flat.Add(v, rng.IntN(geo.k))
			deg[v]++
		}
		flatBytes := flat.AppendState(nil)
		degBytes := AppendDegreeState(nil, deg)

		for _, shards := range []int{1, 3, 8} {
			shd := NewShardedReplicaSets(geo.n, geo.k, shards)
			rem, err := shd.LoadState(flatBytes)
			if err != nil {
				t.Fatalf("n=%d k=%d shards=%d: %v", geo.n, geo.k, shards, err)
			}
			if len(rem) != 0 {
				t.Fatalf("sharded load left %d bytes", len(rem))
			}
			if got := shd.AppendState(nil); !bytes.Equal(got, flatBytes) {
				t.Fatalf("n=%d k=%d shards=%d: sharded bytes differ from flat", geo.n, geo.k, shards)
			}
			for v := 0; v < geo.n; v++ {
				if flat.Count(graph.VertexID(v)) != shd.Count(graph.VertexID(v)) {
					t.Fatalf("v=%d: replica count diverged after load", v)
				}
			}

			var sdeg ShardedDegrees
			sdeg.Reset(geo.n, shards)
			if rem, err := sdeg.LoadState(degBytes); err != nil || len(rem) != 0 {
				t.Fatalf("degree load: rem %d, err %v", len(rem), err)
			}
			if got := sdeg.AppendState(nil); !bytes.Equal(got, degBytes) {
				t.Fatalf("sharded degree bytes differ from flat")
			}
			for v := 0; v < geo.n; v++ {
				if sdeg.Degree(graph.VertexID(v)) != deg[v] {
					t.Fatalf("v=%d: degree %d, want %d", v, sdeg.Degree(graph.VertexID(v)), deg[v])
				}
			}
		}

		// Flat round trip through a fresh table.
		back := NewReplicaSets(geo.n, geo.k)
		if rem, err := back.LoadState(flatBytes); err != nil || len(rem) != 0 {
			t.Fatalf("flat reload: rem %d, err %v", len(rem), err)
		}
		if got := back.AppendState(nil); !bytes.Equal(got, flatBytes) {
			t.Fatal("flat reload changed the bytes")
		}
	}
}

// TestStateLoadRejectsForgery: state blobs arrive from checkpoint files, so
// loads validate against the receiver's geometry - replica bits naming
// partitions past k, degrees overflowing uint32, stray seen bits, truncated
// streams and trailing bytes all reject.
func TestStateLoadRejectsForgery(t *testing.T) {
	t.Run("replica bits above k", func(t *testing.T) {
		rs := NewReplicaSets(4, 5) // one word, bits 5..63 invalid
		bad := appendUvarint(nil, 1<<7)
		for i := 0; i < 3; i++ {
			bad = appendUvarint(bad, 0)
		}
		if _, err := rs.LoadState(bad); err == nil {
			t.Fatal("replica word with a bit above k-1 loaded")
		}
	})
	t.Run("degree overflow", func(t *testing.T) {
		bad := appendUvarint(nil, 1<<33)
		if _, err := LoadDegreeState(make([]uint32, 1), bad); err == nil {
			t.Fatal("degree past uint32 loaded")
		}
	})
	t.Run("truncated stream", func(t *testing.T) {
		rs := NewReplicaSets(8, 4)
		data := rs.AppendState(nil)
		if _, err := NewReplicaSets(8, 4).LoadState(data[:len(data)/2]); err == nil {
			t.Fatal("truncated replica state loaded")
		}
	})
	t.Run("stray seen bits", func(t *testing.T) {
		seen := make([]bool, 5) // 3 padding bits in the single bitmap byte
		if _, err := loadSeenState(seen, []byte{0xE0}); err == nil {
			t.Fatal("seen bitmap with padding bits set loaded")
		}
	})
	t.Run("evaluator trailing bytes", func(t *testing.T) {
		var ev Evaluator
		ev.Begin(10, 4)
		data := ev.AppendState(nil)
		var back Evaluator
		back.Begin(10, 4)
		if err := back.LoadState(append(data, 0)); err == nil {
			t.Fatal("evaluator state with trailing bytes loaded")
		}
	})
}

// TestEvaluatorStateInterchange: quality accounting checkpointed by the
// serial evaluator restores into the parallel one and vice versa, and a
// restored evaluator finishes with exactly the quality of one that observed
// the whole stream - the evaluator half of the bit-identical resume.
func TestEvaluatorStateInterchange(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	n, k := 500, 8
	edges, assign := randAssigned(rng, n, k, 4000)
	half := len(edges) / 2

	var full Evaluator
	full.Begin(n, k)
	if err := full.Observe(edges, assign); err != nil {
		t.Fatal(err)
	}
	want := full.Finish()

	var first Evaluator
	first.Begin(n, k)
	if err := first.Observe(edges[:half], assign[:half]); err != nil {
		t.Fatal(err)
	}
	state := first.AppendState(nil)

	// Serial -> serial.
	var ser Evaluator
	ser.Begin(n, k)
	if err := ser.LoadState(state); err != nil {
		t.Fatal(err)
	}
	if err := ser.Observe(edges[half:], assign[half:]); err != nil {
		t.Fatal(err)
	}
	if got := ser.Finish(); !qualityEqual(got, want) {
		t.Fatalf("serial restore: %+v, want %+v", got, want)
	}

	// Serial -> parallel.
	var par ParallelEvaluator
	par.Begin(n, k, 4)
	defer par.Stop()
	if err := par.LoadState(state); err != nil {
		t.Fatal(err)
	}
	if err := par.Observe(edges[half:], assign[half:]); err != nil {
		t.Fatal(err)
	}
	if got := par.Finish(); !qualityEqual(got, want) {
		t.Fatalf("parallel restore: %+v, want %+v", got, want)
	}

	// Parallel -> serial: the parallel evaluator's snapshot must be the
	// same canonical bytes.
	var parFirst ParallelEvaluator
	parFirst.Begin(n, k, 3)
	defer parFirst.Stop()
	if err := parFirst.Observe(edges[:half], assign[:half]); err != nil {
		t.Fatal(err)
	}
	pstate := parFirst.AppendState(nil)
	if !bytes.Equal(pstate, state) {
		t.Fatal("parallel evaluator state bytes differ from serial for the same prefix")
	}
}
