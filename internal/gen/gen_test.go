package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestWebShape(t *testing.T) {
	g := Web(WebConfig{N: 5000, OutDegree: 6, CopyFactor: 0.6, Seed: 1})
	if g.NumVertices != 5000 {
		t.Fatalf("NumVertices = %d", g.NumVertices)
	}
	m := g.NumEdges()
	// Expected ~ N * OutDegree edges, with wide tolerance for the uniform
	// out-degree draw.
	if m < 5000*3 || m > 5000*10 {
		t.Fatalf("edges = %d, outside plausible range", m)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWebDeterministic(t *testing.T) {
	a := Web(WebConfig{N: 1000, OutDegree: 5, CopyFactor: 0.5, Seed: 9})
	b := Web(WebConfig{N: 1000, OutDegree: 5, CopyFactor: 0.5, Seed: 9})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("same seed diverged at edge %d", i)
		}
	}
	c := Web(WebConfig{N: 1000, OutDegree: 5, CopyFactor: 0.5, Seed: 10})
	diff := false
	for i := 0; i < min(len(a.Edges), len(c.Edges)); i++ {
		if a.Edges[i] != c.Edges[i] {
			diff = true
			break
		}
	}
	if !diff && a.NumEdges() == c.NumEdges() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestWebIsSkewed(t *testing.T) {
	// The copying model must produce a heavy-tailed in-degree distribution:
	// high Gini and a max degree far above the mean.
	g := Web(WebConfig{N: 20000, OutDegree: 8, CopyFactor: 0.65, Seed: 2})
	s := graph.ComputeStats(g)
	if s.MaxDegree < 20*uint32(s.MeanDegree) {
		t.Fatalf("max degree %d vs mean %.1f: no heavy tail", s.MaxDegree, s.MeanDegree)
	}
	gini := graph.GiniCoefficient(g.Degrees())
	if gini < 0.3 {
		t.Fatalf("degree Gini %v, want skew > 0.3", gini)
	}
	// Power-law exponent in the web-graph ballpark (roughly 1.5-3.5).
	if s.Alpha < 1.2 || s.Alpha > 4.5 {
		t.Fatalf("fitted alpha %v implausible for a web graph", s.Alpha)
	}
}

func TestWebCopyFactorControlsSkew(t *testing.T) {
	lo := Web(WebConfig{N: 10000, OutDegree: 6, CopyFactor: 0.1, Seed: 3})
	hi := Web(WebConfig{N: 10000, OutDegree: 6, CopyFactor: 0.9, Seed: 3})
	gLo := graph.GiniCoefficient(lo.Degrees())
	gHi := graph.GiniCoefficient(hi.Degrees())
	if gHi <= gLo {
		t.Fatalf("higher copy factor should increase skew: %.3f vs %.3f", gHi, gLo)
	}
}

func TestWebIntraSiteLocality(t *testing.T) {
	// A high IntraSite share must make most edges short-range (within the
	// contiguous id block of a site), far more so than a low share.
	local := Web(WebConfig{N: 10000, OutDegree: 5, IntraSite: 0.85, SiteMean: 50, Seed: 4})
	global := Web(WebConfig{N: 10000, OutDegree: 5, IntraSite: 0.05, SiteMean: 50, Seed: 4})
	shortFrac := func(g *graph.Graph) float64 {
		short := 0
		for _, e := range g.Edges {
			span := int64(e.Src) - int64(e.Dst)
			if span < 0 {
				span = -span
			}
			if span <= 500 {
				short++
			}
		}
		return float64(short) / float64(g.NumEdges())
	}
	fl, fg := shortFrac(local), shortFrac(global)
	if fl < 0.7 {
		t.Fatalf("IntraSite=0.85 yields only %.2f short-range edges", fl)
	}
	if fl <= fg {
		t.Fatalf("IntraSite has no locality effect: %.2f vs %.2f", fl, fg)
	}
}

func TestWebPanicsOnBadConfig(t *testing.T) {
	mustPanic(t, func() { Web(WebConfig{N: 1}) })
	mustPanic(t, func() { Web(WebConfig{N: 100, CopyFactor: 1.5}) })
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(5000, 4, 7)
	if g.NumVertices != 5000 {
		t.Fatalf("NumVertices = %d", g.NumVertices)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m := g.NumEdges()
	if m < 4*4000 || m > 4*5001 {
		t.Fatalf("edges = %d, want ~%d", m, 4*5000)
	}
	s := graph.ComputeStats(g)
	if s.MaxDegree < 50 {
		t.Fatalf("BA max degree %d: hubs missing", s.MaxDegree)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(500, 3, 1)
	b := BarabasiAlbert(500, 3, 1)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	mustPanic(t, func() { BarabasiAlbert(1, 1, 0) })
	mustPanic(t, func() { BarabasiAlbert(10, 0, 0) })
}

func TestRMATShape(t *testing.T) {
	g := RMAT(12, 8, 0.57, 0.19, 0.19, 11)
	if g.NumVertices != 1<<12 {
		t.Fatalf("NumVertices = %d, want %d", g.NumVertices, 1<<12)
	}
	if g.NumEdges() != 8<<12 {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), 8<<12)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// RMAT with skewed quadrants produces skewed degrees.
	if gi := graph.GiniCoefficient(g.Degrees()); gi < 0.2 {
		t.Fatalf("RMAT Gini %v, want skew", gi)
	}
}

func TestRMATPanicsOnBadProbs(t *testing.T) {
	mustPanic(t, func() { RMAT(4, 2, 0.5, 0.4, 0.3, 0) })
}

func TestErdosRenyiShape(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 13)
	if g.NumVertices != 1000 || g.NumEdges() != 5000 {
		t.Fatalf("shape %d/%d", g.NumVertices, g.NumEdges())
	}
	// ER degrees are near-uniform: low Gini.
	if gi := graph.GiniCoefficient(g.Degrees()); gi > 0.35 {
		t.Fatalf("ER Gini %v, want near-uniform", gi)
	}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatal("self loop in ER output")
		}
	}
}

func TestSampleVertices(t *testing.T) {
	g := Web(WebConfig{N: 5000, OutDegree: 5, CopyFactor: 0.5, Seed: 17})
	s := SampleVertices(g, 0.5, 99)
	if s.NumVertices < 2000 || s.NumVertices > 3000 {
		t.Fatalf("sampled %d vertices from 5000 at 0.5", s.NumVertices)
	}
	if s.NumEdges() >= g.NumEdges() || s.NumEdges() == 0 {
		t.Fatalf("sampled edges %d implausible (orig %d)", s.NumEdges(), g.NumEdges())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full sample is the identity up to relabelling (here: exactly equal).
	full := SampleVertices(g, 1.0, 1)
	if full.NumEdges() != g.NumEdges() || full.NumVertices != g.NumVertices {
		t.Fatal("frac=1 sample lost structure")
	}
}

func TestSampleEdges(t *testing.T) {
	g := Web(WebConfig{N: 2000, OutDegree: 5, CopyFactor: 0.5, Seed: 19})
	s := SampleEdges(g, 0.3, 7)
	ratio := float64(s.NumEdges()) / float64(g.NumEdges())
	if ratio < 0.25 || ratio > 0.35 {
		t.Fatalf("edge sample ratio %v, want ~0.3", ratio)
	}
	if s.NumVertices != g.NumVertices {
		t.Fatal("edge sampling must not relabel vertices")
	}
}

func TestSamplePanics(t *testing.T) {
	g := Web(WebConfig{N: 100, OutDegree: 3, CopyFactor: 0.5, Seed: 1})
	mustPanic(t, func() { SampleVertices(g, 0, 1) })
	mustPanic(t, func() { SampleEdges(g, 1.5, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
