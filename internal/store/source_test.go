package store

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
)

// writeTemp writes g to a temp .cgr file and returns its path.
func writeTemp(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.cgr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func collect(t *testing.T, src stream.Source) []graph.Edge {
	t.Helper()
	out, err := stream.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFileSourceStreamsWholeFile(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 4000, OutDegree: 7, IntraSite: 0.85, Seed: 5})
	src, err := Open(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.NumVertices() != g.NumVertices || src.Len() != g.NumEdges() {
		t.Fatalf("header %d/%d, want %d/%d", src.NumVertices(), src.Len(), g.NumVertices, g.NumEdges())
	}
	got := collect(t, src)
	if len(got) != len(g.Edges) {
		t.Fatalf("decoded %d edges, want %d", len(got), len(g.Edges))
	}
	for i := range got {
		if got[i] != g.Edges[i] {
			t.Fatalf("edge %d: %v != %v (order must be preserved)", i, got[i], g.Edges[i])
		}
	}
}

func TestFileSourceReplays(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 500, OutDegree: 5, Seed: 6})
	src, err := Open(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	a := collect(t, src)
	b := collect(t, src) // Collect resets: the CLUGP multi-pass contract
	c := collect(t, src)
	for i := range a {
		if a[i] != b[i] || b[i] != c[i] {
			t.Fatalf("replay diverged at edge %d", i)
		}
	}
}

func TestFileSourceSegments(t *testing.T) {
	// Enough edges that segments straddle index checkpoints (stride 4096)
	// and block boundaries.
	g := gen.Web(gen.WebConfig{N: 6000, OutDegree: 6, Seed: 7})
	if g.NumEdges() < 3*indexStride {
		t.Fatalf("test graph too small: %d edges", g.NumEdges())
	}
	src, err := Open(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	n := g.NumEdges()
	bounds := [][2]int{
		{0, n},
		{0, 1},
		{n - 1, n},
		{indexStride - 1, indexStride + 1},    // straddles a checkpoint
		{indexStride + 37, 2*indexStride + 5}, // mid-stride start
	}
	for _, b := range bounds {
		sub, err := src.Segment(b[0], b[1])
		if err != nil {
			t.Fatalf("segment %v: %v", b, err)
		}
		got := collect(t, sub)
		if len(got) != b[1]-b[0] {
			t.Fatalf("segment %v: %d edges", b, len(got))
		}
		for i := range got {
			if got[i] != g.Edges[b[0]+i] {
				t.Fatalf("segment %v: edge %d mismatch", b, i)
			}
		}
		// Segments replay independently too.
		again := collect(t, sub)
		for i := range again {
			if again[i] != got[i] {
				t.Fatalf("segment %v: replay diverged", b)
			}
		}
		if c, ok := stream.Source(sub).(io.Closer); ok {
			c.Close()
		}
	}
}

func TestFileSourceSegmentsConcurrent(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 5000, OutDegree: 6, Seed: 8})
	src, err := Open(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	n := g.NumEdges()
	nodes := 4
	per := (n + nodes - 1) / nodes
	subs := make([]stream.Source, 0, nodes)
	for nd := 0; nd < nodes; nd++ {
		lo, hi := nd*per, (nd+1)*per
		if hi > n {
			hi = n
		}
		sub, err := src.Segment(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	out := make([][]graph.Edge, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for nd, sub := range subs {
		wg.Add(1)
		go func(nd int, sub stream.Source) {
			defer wg.Done()
			out[nd], errs[nd] = stream.Collect(sub)
		}(nd, sub)
	}
	wg.Wait()
	var all []graph.Edge
	for nd := range subs {
		if errs[nd] != nil {
			t.Fatal(errs[nd])
		}
		all = append(all, out[nd]...)
		if c, ok := subs[nd].(io.Closer); ok {
			c.Close()
		}
	}
	if len(all) != n {
		t.Fatalf("shards cover %d edges, want %d", len(all), n)
	}
	for i := range all {
		if all[i] != g.Edges[i] {
			t.Fatalf("sharded read diverges at edge %d", i)
		}
	}
}

func TestFileSourceNestedSegments(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 2000, OutDegree: 5, Seed: 9})
	src, err := Open(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	outer, err := src.Segment(100, 900)
	if err != nil {
		t.Fatal(err)
	}
	seg, ok := outer.(stream.Segmenter)
	if !ok {
		t.Fatal("segment is not a Segmenter")
	}
	inner, err := seg.Segment(50, 150) // global [150, 250)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, inner)
	if len(got) != 100 {
		t.Fatalf("nested segment has %d edges", len(got))
	}
	for i := range got {
		if got[i] != g.Edges[150+i] {
			t.Fatalf("nested segment edge %d mismatch", i)
		}
	}
}

func TestFileSourceSegmentBounds(t *testing.T) {
	g := graph.New(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	src, err := Open(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for _, b := range [][2]int{{-1, 1}, {0, 3}, {2, 1}} {
		if _, err := src.Segment(b[0], b[1]); err == nil {
			t.Fatalf("segment %v accepted", b)
		}
	}
}

func TestOpenRejectsJunk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a graph at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFileSourceEmptyGraph(t *testing.T) {
	g := graph.New(7, nil)
	src, err := Open(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.NumVertices() != 7 || src.Len() != 0 {
		t.Fatalf("shape %d/%d", src.NumVertices(), src.Len())
	}
	if got := collect(t, src); len(got) != 0 {
		t.Fatal("edges from empty graph")
	}
}

func TestFileSourceTruncatedBody(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 300, OutDegree: 4, Seed: 10})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trunc.cgr")
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := Open(path) // header is intact; the body is cut short
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := stream.Collect(src); err == nil {
		t.Fatal("truncated body decoded without error")
	}
}
