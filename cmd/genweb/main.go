// Command genweb generates deterministic synthetic graphs in edge-list
// format: the site-structured web model, Barabasi-Albert, RMAT and
// Erdos-Renyi, plus the named dataset presets of the experiment harness.
//
// Usage:
//
//	genweb -preset UK -scale 1.0 -out uk.txt
//	genweb -model web -n 100000 -outdeg 8 -intrasite 0.88 -out web.txt
//	genweb -model ba -n 50000 -m 16 -out social.txt
//	genweb -preset UK -binary -out uk.cgr               # CGR3, checksummed (default)
//	genweb -preset UK -binary -format cgr2 -out uk.cgr  # pre-integrity encoding
//
// -out is written atomically (temp file + rename), so an interrupted run
// never leaves a truncated graph at the final path.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro"
)

func main() {
	var (
		preset    = flag.String("preset", "", "dataset preset (UK, Arabic, WebBase, IT, Twitter); overrides -model")
		scale     = flag.Float64("scale", 1.0, "preset scale factor")
		model     = flag.String("model", "web", "generator: web, ba, rmat, er")
		n         = flag.Int("n", 100000, "number of vertices (web, ba, er)")
		outdeg    = flag.Int("outdeg", 8, "mean out-degree (web)")
		intrasite = flag.Float64("intrasite", 0.7, "intra-site link probability (web)")
		sitemean  = flag.Int("sitemean", 64, "mean site size (web)")
		copyf     = flag.Float64("copy", 0.5, "copying probability for cross-site links (web)")
		m         = flag.Int("m", 8, "edges per vertex (ba) / edges total (er) / edge factor (rmat)")
		scalelog  = flag.Int("rmatscale", 16, "log2 vertex count (rmat)")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output file (default stdout)")
		binary    = flag.Bool("binary", false, "write the gap-compressed binary format instead of text")
		format    = flag.String("format", "cgr3", "binary format to write: cgr1, cgr2 or cgr3 (with -binary)")
		stats     = flag.Bool("stats", false, "print graph statistics to stderr")
	)
	flag.Parse()

	// An interrupt between the temp-file create and the commit must not
	// leave a stray .tmp next to -out: sweep pending atomic writes on exit.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		if n := repro.AbortPendingWrites(); n > 0 {
			fmt.Fprintf(os.Stderr, "genweb: %v: swept %d pending write(s)\n", s, n)
		} else {
			fmt.Fprintf(os.Stderr, "genweb: %v\n", s)
		}
		os.Exit(1)
	}()

	bf, err := repro.ParseCompressedFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genweb:", err)
		os.Exit(1)
	}

	g, err := build(*preset, *scale, *model, *n, *outdeg, *intrasite, *sitemean, *copyf, *m, *scalelog, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genweb:", err)
		os.Exit(1)
	}
	if *stats {
		s := repro.ComputeStats(g)
		fmt.Fprintf(os.Stderr, "vertices=%d edges=%d maxdeg=%d meandeg=%.2f alpha=%.2f\n",
			s.NumVertices, s.NumEdges, s.MaxDegree, s.MeanDegree, s.Alpha)
	}
	var w io.Writer = os.Stdout
	var aw *repro.AtomicWriter
	if *out != "" {
		aw, err = repro.NewAtomicWriter(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genweb:", err)
			os.Exit(1)
		}
		defer aw.Abort()
		w = aw
	}
	if *binary {
		err = repro.WriteCompressedFormat(w, g, bf)
	} else {
		err = g.WriteEdgeList(w)
	}
	if err == nil && aw != nil {
		err = aw.Commit()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genweb:", err)
		os.Exit(1)
	}
}

func build(preset string, scale float64, model string, n, outdeg int, intrasite float64, sitemean int, copyf float64, m, rmatScale int, seed uint64) (*repro.Graph, error) {
	if preset != "" {
		for _, d := range repro.Datasets() {
			if d.Name == preset {
				return d.Build(scale), nil
			}
		}
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	switch model {
	case "web":
		return repro.GenerateWeb(repro.WebConfig{
			N: n, OutDegree: outdeg, IntraSite: intrasite,
			SiteMean: sitemean, CopyFactor: copyf, Seed: seed,
		}), nil
	case "ba":
		return repro.GenerateBarabasiAlbert(n, m, seed), nil
	case "rmat":
		return repro.GenerateRMAT(rmatScale, m, 0.57, 0.19, 0.19, seed), nil
	case "er":
		return repro.GenerateErdosRenyi(n, m*n, seed), nil
	}
	return nil, fmt.Errorf("unknown model %q (want web, ba, rmat or er)", model)
}
