// Package game implements the paper's second pass: assigning clusters to the
// k partitions by playing an exact potential game until Nash equilibrium
// (Section V, Algorithm 3).
//
// Each cluster is a player whose strategy is its partition choice. The
// individual cost (Equation 11) combines a load-balancing term
// (lambda/k)*|ci|*|ai| with an edge-cutting term, half the weight of ci's
// arcs leaving its partition. Theorem 4 shows the game admits the exact
// potential function of Definition 4, so sequential best-response dynamics
// terminate at a pure Nash equilibrium; Theorems 7 and 8 bound the price of
// anarchy by k+1 and the price of stability by 2.
//
// For scale, clusters are grouped by id into batches that play independent
// games in parallel (Section V-D): cluster ids are assigned in stream order,
// so id-adjacent clusters are structurally adjacent and most arcs stay
// within a batch. Each batch balances its own clusters across all k
// partitions; because every batch is individually balanced, their union is
// too.
package game

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/xrand"
)

// Config controls the cluster-partitioning game.
type Config struct {
	// K is the number of partitions.
	K int
	// Lambda is the normalization factor of Equation 10/11. Zero selects
	// the paper's default: the maximum of the valid range from Theorem 5,
	// k^2 * sum_i |e(ci,V\ci)| / (sum_i |ci|)^2, computed per batch.
	Lambda float64
	// RelWeight is the relative weight of the load-balancing term versus
	// the edge-cutting term (Figure 11b). 0.5 (the default when zero)
	// weighs them equally, reproducing Equation 11 exactly; w scales the
	// load term by 2w and the cut term by 2(1-w).
	RelWeight float64
	// BatchSize is the number of clusters per independent game. Zero plays
	// one global game. The paper recommends a constant multiple of K and
	// defaults to 6400.
	BatchSize int
	// Threads is the number of parallel batch workers (0 = GOMAXPROCS).
	Threads int
	// MaxRounds caps best-response rounds per batch as a safety valve; the
	// potential argument guarantees termination, and equilibria are
	// typically reached in well under 50 rounds. Zero means 1000.
	MaxRounds int
	// Restarts plays each batch's game from that many independent random
	// initial assignments and keeps the equilibrium with the lowest
	// potential. The theory motivates this directly: any equilibrium is
	// within PoA = k+1 of optimal (Theorem 7) but the best one is within
	// PoS = 2 (Theorem 8), so extra restarts close the anarchy gap.
	// Zero means 1.
	Restarts int
	// Seed drives the random initial assignment (Algorithm 3 line 2).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.RelWeight == 0 {
		c.RelWeight = 0.5
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 1000
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Restarts <= 0 {
		c.Restarts = 1
	}
	return c
}

// Assignment is the outcome of the game: the cluster -> partition table
// (the second mapping table of Figure 1) plus convergence diagnostics.
type Assignment struct {
	// Partition[c] is the partition chosen for cluster c.
	Partition []int32
	// Rounds is the maximum number of best-response rounds any batch took.
	Rounds int
	// Moves is the total number of strategy changes across all batches.
	Moves int64
	// Batches is the number of independent games played.
	Batches int
}

// Solve plays the cluster-partitioning game and returns a Nash-equilibrium
// assignment (per batch).
func Solve(cg *cluster.Graph, cfg Config) (*Assignment, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		return nil, fmt.Errorf("game: K must be >= 1, got %d", cfg.K)
	}
	if cfg.RelWeight <= 0 || cfg.RelWeight >= 1 {
		return nil, fmt.Errorf("game: RelWeight must lie in (0,1), got %v", cfg.RelWeight)
	}
	m := cg.NumClusters
	out := &Assignment{Partition: make([]int32, m)}
	if m == 0 {
		return out, nil
	}
	batch := cfg.BatchSize
	if batch <= 0 || batch > m {
		batch = m
	}
	nBatches := (m + batch - 1) / batch
	out.Batches = nBatches

	type batchStats struct {
		rounds int
		moves  int64
	}
	stats := make([]batchStats, nBatches)

	// Bounded worker pool: cfg.Threads workers claim batch indices from an
	// atomic counter, each owning one scratch set reused across every batch
	// (and restart) it plays. The former goroutine-per-batch launch spawned
	// thousands of goroutines at production batch counts and allocated
	// fresh load/size/weight arrays per batch; batches are independent, so
	// which worker plays a batch cannot affect the equilibrium.
	workers := cfg.Threads
	if workers > nBatches {
		workers = nBatches
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc scratch
			for {
				b := int(next.Add(1)) - 1
				if b >= nBatches {
					return
				}
				lo := b * batch
				hi := lo + batch
				if hi > m {
					hi = m
				}
				rounds, moves := playBatchBest(cg, cfg, lo, hi, out.Partition, &sc)
				stats[b] = batchStats{rounds: rounds, moves: moves}
			}
		}()
	}
	wg.Wait()
	for _, s := range stats {
		if s.rounds > out.Rounds {
			out.Rounds = s.rounds
		}
		out.Moves += s.moves
	}
	return out, nil
}

// scratch is one worker's reusable batch-game state. Buffers are sized to
// the largest batch the worker has seen and reused for every later batch
// and restart, so the steady-state game plays allocation-free.
type scratch struct {
	out     []int32   // working assignment, batch-local indices [0,hi-lo)
	best    []int32   // best equilibrium across restarts
	size    []int64   // cluster weights
	load    []int64   // per-partition load
	wTo     []float64 // arc weight toward each partition
	touched []int32   // partitions with non-zero wTo
}

func (sc *scratch) reset(n, k int) {
	if cap(sc.out) < n {
		sc.out = make([]int32, n)
		sc.best = make([]int32, n)
		sc.size = make([]int64, n)
	}
	sc.out = sc.out[:n]
	sc.best = sc.best[:n]
	sc.size = sc.size[:n]
	if cap(sc.load) < k {
		sc.load = make([]int64, k)
		sc.wTo = make([]float64, k)
		sc.touched = make([]int32, 0, k)
	}
	sc.load = sc.load[:k]
	sc.wTo = sc.wTo[:k]
	for i := range sc.wTo {
		sc.wTo[i] = 0
	}
	sc.touched = sc.touched[:0]
}

// playBatchBest plays the batch game cfg.Restarts times from independent
// random initializations and keeps the equilibrium with the lowest
// batch-local potential, writing it into assign[lo:hi]. All working state
// lives in the worker's scratch.
func playBatchBest(cg *cluster.Graph, cfg Config, lo, hi int, assign []int32, sc *scratch) (rounds int, moves int64) {
	sc.reset(hi-lo, cfg.K)
	if cfg.Restarts <= 1 {
		rounds, moves = playBatch(cg, cfg, lo, hi, sc.out, sc)
		copy(assign[lo:hi], sc.out)
		return rounds, moves
	}
	bestPot := 0.0
	for r := 0; r < cfg.Restarts; r++ {
		attempt := cfg
		attempt.Seed = cfg.Seed + uint64(r)*0x9e3779b97f4a7c15
		rr, mm := playBatch(cg, attempt, lo, hi, sc.out, sc)
		rounds += rr
		moves += mm
		pot := batchPotential(cg, sc.out, cfg, lo, hi, sc.load)
		if r == 0 || pot < bestPot {
			bestPot = pot
			copy(sc.best, sc.out)
		}
	}
	copy(assign[lo:hi], sc.best)
	return rounds, moves
}

// batchPotential evaluates the batch-local potential (Definition 4
// restricted to in-batch clusters and arcs) of the batch-local assignment
// out (out[c-lo] is cluster c's partition). loads is caller scratch of
// length k.
func batchPotential(cg *cluster.Graph, out []int32, cfg Config, lo, hi int, loads []int64) float64 {
	k := cfg.K
	lambda := cfg.Lambda
	if lambda == 0 {
		var sumW, inter int64
		for c := lo; c < hi; c++ {
			sumW += cg.WeightOf(cluster.ID(c))
			inter += cg.TotalAdjacency(cluster.ID(c))
		}
		inter /= 2
		if sumW > 0 {
			lambda = float64(k*k) * float64(inter) / (float64(sumW) * float64(sumW))
		} else {
			lambda = 1
		}
	}
	loads = loads[:k]
	for i := range loads {
		loads[i] = 0
	}
	for c := lo; c < hi; c++ {
		loads[out[c-lo]] += cg.WeightOf(cluster.ID(c))
	}
	var loadSq float64
	for _, l := range loads {
		loadSq += float64(l) * float64(l)
	}
	var cut float64
	for c := lo; c < hi; c++ {
		ac := out[c-lo]
		for _, a := range cg.Adj[c] {
			if int(a.To) < lo || int(a.To) >= hi {
				continue
			}
			if out[int(a.To)-lo] != ac {
				cut += float64(a.W)
			}
		}
	}
	cut /= 2
	return lambda/(2*float64(k))*loadSq + cut/2
}

// playBatch runs sequential best-response dynamics over clusters [lo,hi),
// writing final choices into out (batch-local: out[c-lo] is cluster c's
// partition). It only reads cg and its own range, so batches are data-race
// free; all buffers come from the worker's scratch.
func playBatch(cg *cluster.Graph, cfg Config, lo, hi int, out []int32, sc *scratch) (rounds int, moves int64) {
	k := cfg.K
	rng := xrand.New(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(lo+1)))

	// Cluster sizes for load balancing: the weight 2*intra+adjacency, which
	// predicts the partition's eventual edge load after transformation
	// (every intra edge lands with its cluster; a cut edge lands with one of
	// its two sides).
	size := sc.size[:hi-lo]
	for c := lo; c < hi; c++ {
		size[c-lo] = cg.WeightOf(cluster.ID(c))
	}

	// Random initial strategies (Algorithm 3 line 2).
	load := sc.load[:k]
	for i := range load {
		load[i] = 0
	}
	for c := lo; c < hi; c++ {
		p := int32(rng.Intn(k))
		out[c-lo] = p
		load[p] += size[c-lo]
	}

	// Batch-local lambda default (Theorem 5 upper bound, on the weight
	// scale): k^2 * (directed inter edges) / (sum of weights)^2.
	lambda := cfg.Lambda
	if lambda == 0 {
		var sumW, sumInterDirected int64
		for c := lo; c < hi; c++ {
			sumW += size[c-lo]
			// TotalAdjacency counts both directions; summing it over
			// clusters counts each directed cut edge twice, so the directed
			// total sum_i |e(ci,V\ci)| is half of it. Arcs leaving the
			// batch contribute too, keeping lambda on the paper's scale.
			sumInterDirected += cg.TotalAdjacency(cluster.ID(c))
		}
		sumInterDirected /= 2
		if sumW > 0 {
			lambda = float64(k*k) * float64(sumInterDirected) / (float64(sumW) * float64(sumW))
		} else {
			lambda = 1
		}
	}
	wLoad := 2 * cfg.RelWeight * lambda / float64(k)
	wCut := 2 * (1 - cfg.RelWeight) * 0.5

	// Scratch: weight from the current cluster to each partition. wTo is
	// kept all-zero between uses (the touched list undoes every write), so
	// reuse across batches and restarts is free.
	wTo := sc.wTo[:k]
	touched := sc.touched[:0]

	for rounds = 1; rounds <= cfg.MaxRounds; rounds++ {
		changed := false
		for c := lo; c < hi; c++ {
			ci := cluster.ID(c)
			sz := float64(size[c-lo])
			cur := out[c-lo]

			// Accumulate arc weight toward each partition currently chosen
			// by in-batch neighbours. Out-of-batch arcs are a constant cost
			// regardless of choice, so they drop out of the argmin.
			var totalW float64
			for _, a := range cg.Adj[ci] {
				if int(a.To) < lo || int(a.To) >= hi {
					continue
				}
				p := out[int(a.To)-lo]
				if wTo[p] == 0 {
					touched = append(touched, p)
				}
				wTo[p] += float64(a.W)
				totalW += float64(a.W)
			}

			best := cur
			bestCost := wLoad*sz*float64(load[cur]) + wCut*(totalW-wTo[cur])
			for p := int32(0); p < int32(k); p++ {
				if p == cur {
					continue
				}
				cost := wLoad*sz*float64(load[p]+size[c-lo]) + wCut*(totalW-wTo[p])
				if cost < bestCost-1e-9 {
					bestCost = cost
					best = p
				}
			}
			if best != cur {
				load[cur] -= size[c-lo]
				load[best] += size[c-lo]
				out[c-lo] = best
				moves++
				changed = true
			}

			for _, p := range touched {
				wTo[p] = 0
			}
			touched = touched[:0]
		}
		if !changed {
			break
		}
	}
	return rounds, moves
}

// GreedyAssign is the CLUGP-G ablation (Figure 9): sort clusters by
// descending size and place each into the currently least-loaded partition
// (longest-processing-time scheduling). It balances load but ignores
// edge-cutting entirely.
func GreedyAssign(cg *cluster.Graph, k int) *Assignment {
	m := cg.NumClusters
	out := &Assignment{Partition: make([]int32, m), Batches: 1}
	size := make([]int64, m)
	for c := range size {
		size[c] = cg.WeightOf(cluster.ID(c))
	}
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sortBySizeDesc(order, size)
	load := make([]int64, k)
	for _, c := range order {
		best := 0
		for p := 1; p < k; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		out.Partition[c] = int32(best)
		load[best] += size[c]
	}
	return out
}

func sortBySizeDesc(order []int32, size []int64) {
	// Simple bottom-up merge sort: deterministic, no stdlib sort.Slice
	// closure allocation per comparison on the hot path.
	tmp := make([]int32, len(order))
	for width := 1; width < len(order); width *= 2 {
		for lo := 0; lo < len(order); lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > len(order) {
				mid = len(order)
			}
			if hi > len(order) {
				hi = len(order)
			}
			i, j, o := lo, mid, lo
			for i < mid && j < hi {
				if size[order[i]] >= size[order[j]] {
					tmp[o] = order[i]
					i++
				} else {
					tmp[o] = order[j]
					j++
				}
				o++
			}
			for i < mid {
				tmp[o] = order[i]
				i++
				o++
			}
			for j < hi {
				tmp[o] = order[j]
				j++
				o++
			}
		}
		copy(order, tmp)
	}
}
