package partition

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
)

// TestPartitionersNeverMutateCachedStream guards the stream.Cache sharing
// contract: every run served from a cache receives the same base edge slice
// and permutation as every other run, so a single in-place shuffle or edge
// rewrite inside a partitioner would silently corrupt all later cells of a
// suite. Run every algorithm (including the distributed and extension
// partitioners) against cached views and assert the graph's edges and the
// cached permutations are bit-for-bit untouched.
func TestPartitionersNeverMutateCachedStream(t *testing.T) {
	g := webGraph(3000, 77)
	baseline := make([]graph.Edge, len(g.Edges))
	copy(baseline, g.Edges)

	cache := stream.NewCache()
	ps := allPartitioners()
	ps = append(ps,
		&DistributedCLUGP{Nodes: 3, Seed: 1},
		&HybridCut{Seed: 1},
		&Grid{Seed: 1},
	)

	// Snapshot each partitioner's cached permutation before any run.
	perms := make(map[stream.Order][]int32)
	for _, p := range ps {
		v := cache.View(g, p.PreferredOrder(), 9)
		if _, ok := perms[p.PreferredOrder()]; !ok {
			perms[p.PreferredOrder()] = append([]int32(nil), v.Perm()...)
		}
	}

	for _, p := range ps {
		if _, err := RunCached(p, g, 8, 9, cache); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		// Re-running from the same cache must also be unaffected by the
		// previous consumer.
		if _, err := RunCached(p, g, 8, 9, cache); err != nil {
			t.Fatalf("%s (second run): %v", p.Name(), err)
		}
		for i := range baseline {
			if g.Edges[i] != baseline[i] {
				t.Fatalf("%s mutated the shared base edge slice at %d", p.Name(), i)
			}
		}
		for order, want := range perms {
			got := cache.View(g, order, 9).Perm()
			if len(got) != len(want) {
				t.Fatalf("%s changed the %v permutation length", p.Name(), order)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s mutated the cached %v permutation at %d", p.Name(), order, i)
				}
			}
		}
	}
}

// TestPartitionIntoMatchesPartition pins the scratch-reuse contract: a
// partitioner's PartitionInto, run repeatedly on different graphs and ks
// with the same receiver, must produce exactly what a fresh one-shot
// Partition produces - stale replica bitsets, degree tables or load
// counters from a previous run would show up as a divergence.
func TestPartitionIntoMatchesPartition(t *testing.T) {
	gA := webGraph(2500, 21)
	gB := webGraph(1200, 22) // smaller: reused buffers are oversized
	for _, name := range Names() {
		reused, _ := New(name, 5)
		ip, ok := reused.(IntoPartitioner)
		if !ok {
			continue
		}
		for _, tc := range []struct {
			g *graph.Graph
			k int
		}{{gA, 16}, {gB, 16}, {gB, 3}, {gA, 64}} {
			s := stream.NewView(tc.g, reused.PreferredOrder(), 5).Source(tc.g.NumVertices)
			got := make([]int32, s.Len())
			if err := ip.PartitionInto(s, tc.k, got); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			fresh, _ := New(name, 5)
			want, err := fresh.Partition(s, tc.k)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: reused scratch diverges from fresh run at edge %d (k=%d)", name, i, tc.k)
				}
			}
		}
	}
}

// TestPartitionIntoRejectsBadArgs covers the shared precondition checks.
func TestPartitionIntoRejectsBadArgs(t *testing.T) {
	g := webGraph(200, 1)
	s := stream.NewView(g, stream.Random, 1).Source(g.NumVertices)
	h := &HDRF{}
	if err := h.PartitionInto(s, 0, make([]int32, s.Len())); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := h.PartitionInto(s, 4, make([]int32, s.Len()-1)); err == nil {
		t.Fatal("short assign slice accepted")
	}
}
