// Package metrics implements the partition-quality measures of Section II-B:
// the replication factor (Equation 1's objective) and the relative load
// balance (its constraint), plus the replica-set bitsets shared by the
// heuristic partitioners and the memory accounting behind Figure 6.
package metrics

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/stream"
)

// ReplicaSets tracks P(v), the set of partitions holding each vertex, as a
// dense bitset: k bits per vertex. This is exactly the "global status table"
// the paper identifies as the scalability bottleneck of heuristic-based
// streaming partitioners; its size is the dominant term of their memory
// cost.
type ReplicaSets struct {
	k     int
	words int
	bits  []uint64
}

// NewReplicaSets returns an empty table for n vertices and k partitions.
func NewReplicaSets(n, k int) *ReplicaSets {
	r := &ReplicaSets{}
	r.Reset(n, k)
	return r
}

// NewReplicaSetsFromWords adopts a raw word slice as a replica table: words
// must hold exactly n*((k+63)/64) entries laid out vertex-major, and no bit
// above partition k-1 may be set in any vertex's top word (such a bit names
// a partition that does not exist - in a decoded file it means corruption,
// never a graph). The slice is adopted, not copied; the caller must not
// touch it afterwards. This is the load path of the result-file codec
// (store.ReadResult), which streams words off disk and hands them over.
func NewReplicaSetsFromWords(n, k int, words []uint64) (*ReplicaSets, error) {
	if n < 0 || k < 1 {
		return nil, fmt.Errorf("metrics: invalid geometry %d vertices, %d partitions", n, k)
	}
	perVertex := (k + 63) / 64
	if len(words) != n*perVertex {
		return nil, fmt.Errorf("metrics: %d words for %d vertices x %d partitions (want %d)",
			len(words), n, k, n*perVertex)
	}
	if top := k % 64; top != 0 {
		stray := ^uint64(0) << uint(top)
		for v := 0; v < n; v++ {
			if w := words[v*perVertex+perVertex-1] & stray; w != 0 {
				return nil, fmt.Errorf("metrics: vertex %d has replica bits above partition %d-1", v, k)
			}
		}
	}
	return &ReplicaSets{k: k, words: perVertex, bits: words}, nil
}

// NumVertices returns the number of vertices the table covers.
func (r *ReplicaSets) NumVertices() int {
	if r.words == 0 {
		return 0
	}
	return len(r.bits) / r.words
}

// Reset clears the table and resizes it for n vertices and k partitions,
// reusing the existing bit storage when it is large enough. It is the
// scratch-reuse entry point: a partitioner that keeps one ReplicaSets
// across runs allocates its bitset once instead of once per run.
func (r *ReplicaSets) Reset(n, k int) {
	words := (k + 63) / 64
	need := n * words
	if cap(r.bits) < need {
		r.bits = make([]uint64, need)
	} else {
		r.bits = r.bits[:need]
		clear(r.bits)
	}
	r.k = k
	r.words = words
}

// K returns the number of partitions.
func (r *ReplicaSets) K() int { return r.k }

// Add records that partition p holds vertex v.
func (r *ReplicaSets) Add(v graph.VertexID, p int) {
	r.bits[int(v)*r.words+p/64] |= 1 << uint(p%64)
}

// Has reports whether partition p holds vertex v.
func (r *ReplicaSets) Has(v graph.VertexID, p int) bool {
	return r.bits[int(v)*r.words+p/64]&(1<<uint(p%64)) != 0
}

// Word returns the w-th 64-bit word of v's partition set (partitions
// 64w..64w+63). Scoring loops that scan all k partitions per edge (HDRF)
// load each word once instead of calling Has k times.
func (r *ReplicaSets) Word(v graph.VertexID, w int) uint64 {
	return r.bits[int(v)*r.words+w]
}

// Words returns the number of 64-bit words per vertex, (k+63)/64.
func (r *ReplicaSets) Words() int { return r.words }

// Count returns |P(v)|.
func (r *ReplicaSets) Count(v graph.VertexID) int {
	n := 0
	for _, w := range r.bits[int(v)*r.words : (int(v)+1)*r.words] {
		n += bits.OnesCount64(w)
	}
	return n
}

// Partitions appends the partitions holding v to dst and returns it. With
// dst capacity >= k the call is allocation-free; partitioners pass the same
// scratch slice every edge.
func (r *ReplicaSets) Partitions(v graph.VertexID, dst []int32) []int32 {
	base := int(v) * r.words
	for w := 0; w < r.words; w++ {
		word := r.bits[base+w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, int32(w*64+b))
			word &= word - 1
		}
	}
	return dst
}

// Intersect appends the partitions holding both u and v to dst.
func (r *ReplicaSets) Intersect(u, v graph.VertexID, dst []int32) []int32 {
	bu := int(u) * r.words
	bv := int(v) * r.words
	for w := 0; w < r.words; w++ {
		word := r.bits[bu+w] & r.bits[bv+w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, int32(w*64+b))
			word &= word - 1
		}
	}
	return dst
}

// Union appends the partitions holding u or v to dst.
func (r *ReplicaSets) Union(u, v graph.VertexID, dst []int32) []int32 {
	bu := int(u) * r.words
	bv := int(v) * r.words
	for w := 0; w < r.words; w++ {
		word := r.bits[bu+w] | r.bits[bv+w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, int32(w*64+b))
			word &= word - 1
		}
	}
	return dst
}

// Bytes returns the memory footprint of the table.
func (r *ReplicaSets) Bytes() int64 { return int64(len(r.bits)) * 8 }

// Quality summarises a finished vertex-cut partitioning.
type Quality struct {
	K int
	// ReplicationFactor is (1/|V'|) * sum_v |P(v)| over vertices that occur
	// in at least one edge (vertices absent from the stream cannot be
	// replicated and are excluded, matching how the literature reports RF).
	ReplicationFactor float64
	// RelativeBalance is k * max|p| / |E| (>= 1; 1.0 is perfect).
	RelativeBalance float64
	// Sizes is the number of edges per partition.
	Sizes []int64
	// MaxSize and MinSize are the extreme partition sizes.
	MaxSize, MinSize int64
	// Vertices is the number of distinct vertices seen in the stream.
	Vertices int
	// Replicas is sum_v |P(v)|.
	Replicas int64
}

// Evaluator recomputes partition quality with reusable scratch: the replica
// bitset and seen table persist across Evaluate calls, so a caller scoring
// many assignments over same-sized graphs (benchmark loops, parameter
// sweeps) allocates only each run's Sizes slice instead of a fresh
// O(|V|·k/64) bitset per evaluation. The zero value is ready to use.
//
// An Evaluator is strictly single-goroutine: the bitset, seen table and
// size counters are mutated without synchronization, so concurrent Observe
// or Evaluate calls race. Copying an Evaluator by value is just as unsafe -
// the copy shares the original's scratch storage, so two copies driven
// independently corrupt each other (the latent hazard documented by
// TestEvaluatorValueCopySharesScratch). Workers that each need one take Clone,
// which deep-copies every mutable slice; for quality accounting that should
// itself run on multiple cores, use ParallelEvaluator, whose shard workers
// own disjoint vertex ranges of a ShardedReplicaSets.
//
// Besides the one-shot Evaluate, an Evaluator accumulates incrementally
// through Begin/Observe/Finish, which is how the out-of-core path scores a
// partitioning whose assignment is never materialized: state stays
// O(|V|·k/64 + k) however many edges stream through Observe.
type Evaluator struct {
	rs   ReplicaSets
	seen []bool

	k           int
	numVertices int
	sizes       []int64
	edges       int64
}

// Begin clears the evaluator for a stream over numVertices vertices and k
// partitions. Sizes are freshly allocated per run because Finish's Quality
// takes ownership of them.
func (ev *Evaluator) Begin(numVertices, k int) {
	ev.rs.Reset(numVertices, k)
	if cap(ev.seen) < numVertices {
		ev.seen = make([]bool, numVertices)
	} else {
		ev.seen = ev.seen[:numVertices]
		clear(ev.seen)
	}
	ev.k = k
	ev.numVertices = numVertices
	ev.sizes = make([]int64, k)
	ev.edges = 0
}

// Clone returns an independent copy of the evaluator: same accumulated
// state, freshly allocated scratch, so the clone and the original can be
// driven by different goroutines from here on without sharing a single
// byte. This is the safe way to hand per-worker evaluators out of a
// template value; assigning the struct instead aliases the bitset and seen
// slices between the copies.
func (ev *Evaluator) Clone() *Evaluator {
	c := &Evaluator{
		k:           ev.k,
		numVertices: ev.numVertices,
		edges:       ev.edges,
	}
	c.rs.k = ev.rs.k
	c.rs.words = ev.rs.words
	c.rs.bits = append([]uint64(nil), ev.rs.bits...)
	c.seen = append([]bool(nil), ev.seen...)
	c.sizes = append([]int64(nil), ev.sizes...)
	return c
}

// Observe accumulates one run of streamed edges with their partition
// assignments (assign[i] is the partition of edges[i]).
func (ev *Evaluator) Observe(edges []graph.Edge, assign []int32) error {
	if len(edges) != len(assign) {
		return fmt.Errorf("metrics: observed %d edges with %d assignments", len(edges), len(assign))
	}
	rs, seen, sizes, k := &ev.rs, ev.seen, ev.sizes, ev.k
	for i, e := range edges {
		p := assign[i]
		if p < 0 || int(p) >= k {
			return fmt.Errorf("metrics: edge %d assigned to invalid partition %d (k=%d)", ev.edges+int64(i), p, k)
		}
		sizes[p]++
		rs.Add(e.Src, int(p))
		rs.Add(e.Dst, int(p))
		seen[e.Src] = true
		seen[e.Dst] = true
	}
	ev.edges += int64(len(edges))
	return nil
}

// Finish summarises everything observed since Begin.
func (ev *Evaluator) Finish() *Quality {
	q := &Quality{K: ev.k, Sizes: ev.sizes, MinSize: int64(^uint64(0) >> 1)}
	for _, sz := range ev.sizes {
		if sz > q.MaxSize {
			q.MaxSize = sz
		}
		if sz < q.MinSize {
			q.MinSize = sz
		}
	}
	rs, seen := &ev.rs, ev.seen
	for v := 0; v < ev.numVertices; v++ {
		if !seen[v] {
			continue
		}
		q.Vertices++
		q.Replicas += int64(rs.Count(graph.VertexID(v)))
	}
	if q.Vertices > 0 {
		q.ReplicationFactor = float64(q.Replicas) / float64(q.Vertices)
	}
	if ev.edges > 0 {
		q.RelativeBalance = float64(ev.k) * float64(q.MaxSize) / float64(ev.edges)
	}
	return q
}

// Evaluate recomputes partition quality from scratch given the edge stream
// and the per-edge partition assignment (ground truth, independent of any
// partitioner-internal bookkeeping), consuming the source block by block.
func (ev *Evaluator) Evaluate(src stream.Source, assign []int32, k int) (*Quality, error) {
	if src.Len() != len(assign) {
		return nil, fmt.Errorf("metrics: %d edges but %d assignments", src.Len(), len(assign))
	}
	ev.Begin(src.NumVertices(), k)
	err := stream.ForEach(src, func(off int, blk []graph.Edge) error {
		return ev.Observe(blk, assign[off:off+len(blk)])
	})
	if err != nil {
		return nil, err
	}
	return ev.Finish(), nil
}

// Evaluate is the one-shot form of Evaluator.Evaluate.
func Evaluate(src stream.Source, assign []int32, k int) (*Quality, error) {
	var ev Evaluator
	return ev.Evaluate(src, assign, k)
}
