package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 generator repeated values: %d distinct of 100", len(seen))
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nOne(t *testing.T) {
	r := New(9)
	for i := 0; i < 50; i++ {
		if v := r.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", v)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n = 16
	const trials = 160000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("ExpFloat64 mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Stable(t *testing.T) {
	// Golden values pin the hash across refactors: partition assignments of
	// the hashing algorithms must stay reproducible.
	if got := Hash64(0); got != 0xe220a8397b1dcdaf {
		t.Fatalf("Hash64(0) = %#x changed", got)
	}
	if Hash64(1) == Hash64(2) {
		t.Fatal("Hash64 collides on 1,2")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	var totalFlips, samples int
	for x := uint64(1); x < 1000; x += 7 {
		h := Hash64(x)
		for b := 0; b < 64; b += 13 {
			flips := popcount(h ^ Hash64(x^(1<<uint(b))))
			totalFlips += flips
			samples++
		}
	}
	avg := float64(totalFlips) / float64(samples)
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %v bits, want near 32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
