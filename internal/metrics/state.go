package metrics

import (
	"encoding/binary"
	"fmt"
)

// This file is the canonical state serialization used by the checkpoint
// subsystem (store's CPK1 format). Every encoding is defined over the
// *logical* state - vertex-major, independent of how the state is stored in
// memory - so a flat table and a sharded table with the same contents
// produce identical bytes, whatever the shard count. That is what lets a
// run checkpointed at one worker configuration resume under another and
// still be bit-identical (shard ranges are contiguous and ordered, so
// walking shards in order walks vertices in order).
//
// All encodings are streams of uvarints except seen-bitmaps, which are raw
// (n+7)/8-byte little-endian bitmaps. Append* appends to buf and returns
// the extended slice; Load* consumes from data and returns the remainder,
// validating every value against the receiver's current geometry (callers
// Reset first, then Load).

// appendUvarint appends x to buf in unsigned varint encoding.
func appendUvarint(buf []byte, x uint64) []byte {
	return binary.AppendUvarint(buf, x)
}

// takeUvarint decodes one uvarint off data.
func takeUvarint(data []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("metrics: truncated or overlong varint in state")
	}
	return x, data[n:], nil
}

// AppendState appends the table's replica words, vertex-major, one uvarint
// per word.
func (r *ReplicaSets) AppendState(buf []byte) []byte {
	for _, w := range r.bits {
		buf = appendUvarint(buf, w)
	}
	return buf
}

// LoadState fills the table (at its current geometry) from a canonical
// state stream and returns the remainder. Words carrying replica bits above
// partition k-1 are rejected: they name partitions that do not exist, which
// in a checkpoint means corruption or forgery, never a valid run.
func (r *ReplicaSets) LoadState(data []byte) ([]byte, error) {
	var err error
	var w uint64
	for i := range r.bits {
		w, data, err = takeUvarint(data)
		if err != nil {
			return nil, err
		}
		r.bits[i] = w
	}
	if top := r.k % 64; top != 0 && r.words > 0 {
		stray := ^uint64(0) << uint(top)
		n := len(r.bits) / r.words
		for v := 0; v < n; v++ {
			if r.bits[v*r.words+r.words-1]&stray != 0 {
				return nil, fmt.Errorf("metrics: state has replica bits above partition %d-1", r.k)
			}
		}
	}
	return data, nil
}

// AppendState appends the sharded table's replica words in canonical flat
// vertex order: identical bytes to a flat ReplicaSets with the same
// contents, whatever the shard count.
func (s *ShardedReplicaSets) AppendState(buf []byte) []byte {
	for i := range s.tabs {
		buf = s.tabs[i].AppendState(buf)
	}
	return buf
}

// LoadState fills the sharded table (at its current geometry) from a
// canonical flat state stream and returns the remainder.
func (s *ShardedReplicaSets) LoadState(data []byte) ([]byte, error) {
	var err error
	for i := range s.tabs {
		data, err = s.tabs[i].LoadState(data)
		if err != nil {
			return nil, err
		}
	}
	return data, nil
}

// AppendDegreeState appends a flat per-vertex degree table, one uvarint per
// vertex.
func AppendDegreeState(buf []byte, deg []uint32) []byte {
	for _, d := range deg {
		buf = appendUvarint(buf, uint64(d))
	}
	return buf
}

// LoadDegreeState fills deg from a canonical degree stream and returns the
// remainder.
func LoadDegreeState(deg []uint32, data []byte) ([]byte, error) {
	var err error
	var x uint64
	for i := range deg {
		x, data, err = takeUvarint(data)
		if err != nil {
			return nil, err
		}
		if x > 1<<32-1 {
			return nil, fmt.Errorf("metrics: degree %d overflows uint32", x)
		}
		deg[i] = uint32(x)
	}
	return data, nil
}

// AppendState appends the sharded degree table in canonical flat vertex
// order: identical bytes to AppendDegreeState over a flat table with the
// same contents.
func (d *ShardedDegrees) AppendState(buf []byte) []byte {
	for i := range d.tabs {
		buf = AppendDegreeState(buf, d.tabs[i])
	}
	return buf
}

// LoadState fills the sharded degree table (at its current geometry) from a
// canonical flat degree stream and returns the remainder.
func (d *ShardedDegrees) LoadState(data []byte) ([]byte, error) {
	var err error
	for i := range d.tabs {
		data, err = LoadDegreeState(d.tabs[i], data)
		if err != nil {
			return nil, err
		}
	}
	return data, nil
}

// appendSeenState appends seen as a raw little-endian bitmap, (n+7)/8 bytes.
func appendSeenState(buf []byte, seen []bool) []byte {
	nb := (len(seen) + 7) / 8
	start := len(buf)
	buf = append(buf, make([]byte, nb)...)
	for v, ok := range seen {
		if ok {
			buf[start+v/8] |= 1 << uint(v%8)
		}
	}
	return buf
}

// loadSeenState fills seen from a raw bitmap and returns the remainder.
func loadSeenState(seen []bool, data []byte) ([]byte, error) {
	nb := (len(seen) + 7) / 8
	if len(data) < nb {
		return nil, fmt.Errorf("metrics: seen bitmap truncated (%d bytes, want %d)", len(data), nb)
	}
	for v := range seen {
		seen[v] = data[v/8]&(1<<uint(v%8)) != 0
	}
	if top := len(seen) % 8; top != 0 && nb > 0 {
		if data[nb-1]>>uint(top) != 0 {
			return nil, fmt.Errorf("metrics: seen bitmap has bits past vertex %d", len(seen)-1)
		}
	}
	return data[nb:], nil
}

// appendSizesState appends k partition sizes, one uvarint each.
func appendSizesState(buf []byte, sizes []int64) []byte {
	for _, sz := range sizes {
		buf = appendUvarint(buf, uint64(sz))
	}
	return buf
}

// loadSizesState fills sizes from a canonical size stream and returns the
// remainder.
func loadSizesState(sizes []int64, data []byte) ([]byte, error) {
	var err error
	var x uint64
	for i := range sizes {
		x, data, err = takeUvarint(data)
		if err != nil {
			return nil, err
		}
		if x > 1<<62 {
			return nil, fmt.Errorf("metrics: partition size %d overflows int64", x)
		}
		sizes[i] = int64(x)
	}
	return data, nil
}

// AppendSizesState and LoadSizesState expose the canonical partition-size
// encoding to the partitioners' own checkpoint sections.
func AppendSizesState(buf []byte, sizes []int64) []byte { return appendSizesState(buf, sizes) }

// LoadSizesState fills sizes from a canonical size stream and returns the
// remainder.
func LoadSizesState(sizes []int64, data []byte) ([]byte, error) {
	return loadSizesState(sizes, data)
}

// AppendState appends the evaluator's accumulated quality state: observed
// edge count, partition sizes, the seen bitmap, and the replica words in
// canonical order. The encoding matches ParallelEvaluator.AppendState for
// the same logical state, so checkpoints interchange between serial and
// parallel quality accounting.
func (ev *Evaluator) AppendState(buf []byte) []byte {
	buf = appendUvarint(buf, uint64(ev.edges))
	buf = appendSizesState(buf, ev.sizes)
	buf = appendSeenState(buf, ev.seen)
	return ev.rs.AppendState(buf)
}

// LoadState restores the evaluator's accumulated state from a canonical
// stream. Call after Begin with the run's geometry; the whole stream must
// be consumed.
func (ev *Evaluator) LoadState(data []byte) error {
	edges, data, err := takeUvarint(data)
	if err != nil {
		return err
	}
	ev.edges = int64(edges)
	if data, err = loadSizesState(ev.sizes, data); err != nil {
		return err
	}
	if data, err = loadSeenState(ev.seen, data); err != nil {
		return err
	}
	if data, err = ev.rs.LoadState(data); err != nil {
		return err
	}
	if len(data) != 0 {
		return fmt.Errorf("metrics: %d trailing bytes after evaluator state", len(data))
	}
	return nil
}

// AppendState appends the parallel evaluator's accumulated quality state in
// the same canonical encoding as Evaluator.AppendState (shards walk in
// vertex order), so the two interchange.
func (ev *ParallelEvaluator) AppendState(buf []byte) []byte {
	buf = appendUvarint(buf, uint64(ev.edges))
	buf = appendSizesState(buf, ev.sizes)
	buf = appendSeenState(buf, ev.seen)
	return ev.rs.AppendState(buf)
}

// LoadState restores the parallel evaluator's accumulated state from a
// canonical stream. Call between Begin and the first Observe: the shard
// workers idle on their input channels until a batch arrives, and the
// channel send orders this restore before any worker read.
func (ev *ParallelEvaluator) LoadState(data []byte) error {
	edges, data, err := takeUvarint(data)
	if err != nil {
		return err
	}
	ev.edges = int64(edges)
	if data, err = loadSizesState(ev.sizes, data); err != nil {
		return err
	}
	if data, err = loadSeenState(ev.seen, data); err != nil {
		return err
	}
	if data, err = ev.rs.LoadState(data); err != nil {
		return err
	}
	if len(data) != 0 {
		return fmt.Errorf("metrics: %d trailing bytes after evaluator state", len(data))
	}
	return nil
}
