package store

import (
	"io"
	"os"
	"sync"

	"repro/internal/graph"
	"repro/internal/stream"
)

// File is a compressed graph file opened as a replayable, segmentable edge
// source. All backends satisfy it: FileSource (seek-based, one private
// file handle per segment), MmapSource (one shared mapping, free
// Reset/Segment) and ReaderAtSource (any io.ReaderAt - the seam the
// fault-injection harness plugs into). Close releases the handle's
// resources; segments are themselves Files and must be closed
// independently.
type File interface {
	stream.Segmenter
	io.Closer
	// Path returns the file the source streams from.
	Path() string
	// Format returns the on-disk encoding (CGR1, CGR2 or CGR3).
	Format() Format
	// SizeBytes returns the file size - with Len, the on-disk bytes/edge.
	SizeBytes() int64
	// Verify proves a checksummed (CGR3) file's payload against its
	// recorded block CRCs, reporting the first corrupt block as a
	// *CorruptError; pre-integrity formats return ErrNoChecksums.
	Verify() error
}

var _ File = (*FileSource)(nil)
var _ File = (*MmapSource)(nil)
var _ File = (*ReaderAtSource)(nil)

// OpenAuto opens path with the fastest available backend: the mmap-backed
// source, which itself falls back to portable read-at decoding where the
// platform cannot map. This is what the facade's OpenCompressed uses;
// callers that specifically want the seek-based backend use Open.
func OpenAuto(path string) (File, error) {
	m, err := OpenMmap(path)
	if err != nil {
		// Return an untyped nil: a nil *MmapSource boxed in the File
		// interface would compare non-nil to callers.
		return nil, err
	}
	return m, nil
}

// blockPool recycles the BlockLen decode buffers that every source handle
// needs: segments are opened per shard per run, and a fresh 64 KiB block
// per handle was measurable churn on concurrent ingest. Close returns the
// buffer, so a block handed out by the handle's last NextBlock is only
// valid until the handle is closed.
var blockPool = sync.Pool{
	New: func() any {
		b := make([]graph.Edge, stream.BlockLen)
		return &b
	},
}

// FileSource streams a CGR file as a stream.Source without ever holding the
// edge list in memory: one pooled decode buffer of stream.BlockLen edges
// plus one read window is the whole footprint. Reset seeks back to the
// first edge, so multi-pass algorithms (the three CLUGP passes,
// restreaming) replay the file instead of requiring a materialized graph.
//
// FileSource also implements stream.Segmenter: Segment(lo, hi) reopens the
// file with its own handle and seeks to edge lo, so DistributedCLUGP can
// shard one file across concurrent ingest nodes that never touch each
// other's cursors. Because both formats are delta-encoded, seeking needs a
// sparse checkpoint index (byte offset + decoder state every indexStride
// edges); the index is built lazily by one sequential scan on the first
// Segment call.
//
// A FileSource is not safe for concurrent use; concurrent consumers each
// take their own Segment. Close releases the file handle (segments own
// theirs).
type FileSource struct {
	segCore
	f    *os.File
	root *FileSource
}

// Open prepares path (a file written by Write or WriteFormat, either
// format) for streaming. The header is validated eagerly; edges decode on
// demand.
func Open(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &FileSource{f: f}
	s.path, s.size = path, fi.Size()
	if err := s.initIntegrity(f); err != nil {
		f.Close()
		return nil, err
	}
	pay := s.payLimit()
	s.dec.cur = readAtCursor(f, pay)
	// Index scans read through a private handle, so they never perturb any
	// streaming cursor and work even after the root is closed.
	s.newScanCursor = func() (cursor, func(), error) {
		sf, err := os.Open(path)
		if err != nil {
			return cursor{}, nil, err
		}
		return readAtCursor(sf, pay), func() { sf.Close() }, nil
	}
	if err := s.initHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Segment implements stream.Segmenter: it reopens the file with its own
// handle, seeks to the nearest checkpoint at or before edge lo (building
// the checkpoint index on first use) and decodes forward to lo exactly.
// lo and hi are relative to this source, so segments nest. The returned
// source owns its file handle; Close it when done.
func (s *FileSource) Segment(lo, hi int) (stream.Source, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	root := s.rootSource()
	seg := &FileSource{f: f, root: root}
	seg.raw = f
	seg.dec.cur = readAtCursor(f, s.payLimit())
	if err := s.segmentWindow(&root.segCore, &seg.segCore, lo, hi); err != nil {
		f.Close()
		return nil, err
	}
	return seg, nil
}

func (s *FileSource) rootSource() *FileSource {
	if s.root != nil {
		return s.root
	}
	return s
}

// Close releases the source's file handle and returns its decode buffer to
// the pool, invalidating the last NextBlock's slice. Segments are
// independent: each must be closed on its own. Close is idempotent.
func (s *FileSource) Close() error {
	if !s.markClosed() {
		return nil
	}
	return s.f.Close()
}
