package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Checkpoint is a snapshot of an out-of-core partitioning run at a batch
// boundary: enough to resume the run and produce bit-identical assignments
// for every edge after Offset. The fixed header carries the run geometry
// and progress marks; everything algorithm-specific (replica tables,
// degrees, cluster state, partition sizes, evaluator state) travels in
// named opaque sections so the codec needs no knowledge of any particular
// partitioner.
type Checkpoint struct {
	// Algorithm names the partitioner that wrote the snapshot; resume
	// refuses a mismatch.
	Algorithm string
	// K and NumVertices pin the run geometry; NumEdges is the full stream
	// length (not the remainder).
	K           int
	NumVertices int
	NumEdges    int64
	// Offset is the number of edges fully processed and emitted: the
	// snapshot covers exactly edges [0, Offset), and resume restarts the
	// stream there. Batch is Offset divided by the pinned batch length
	// (bookkeeping for operators; resume recomputes everything from
	// Offset).
	Offset int64
	Batch  int64
	// EmitMark is the caller-defined durable position of the assignment
	// emit stream (for cmd/clugp, the byte offset of the assignment file):
	// resume truncates the emit stream here before continuing, so a crash
	// mid-batch never leaves half-emitted assignments ahead of the
	// checkpoint.
	EmitMark int64
	// Sections hold the algorithm and evaluator state, in write order.
	Sections []CheckpointSection
}

// CheckpointSection is one named opaque state blob.
type CheckpointSection struct {
	Name string
	Data []byte
}

// AddSection appends a named section.
func (c *Checkpoint) AddSection(name string, data []byte) {
	c.Sections = append(c.Sections, CheckpointSection{Name: name, Data: data})
}

// Section returns the named section's payload.
func (c *Checkpoint) Section(name string) ([]byte, bool) {
	for i := range c.Sections {
		if c.Sections[i].Name == name {
			return c.Sections[i].Data, true
		}
	}
	return nil, false
}

// Checkpoint-file limits: a handful of sections with short names is all any
// partitioner writes; more in a header is a forgery, not a configuration.
const (
	maxCheckpointSections = 64
	maxCheckpointName     = 64
)

// CheckpointPrevSuffix names the previous-generation checkpoint kept beside
// the current one: WriteCheckpointFile rotates the old file there before
// committing, and LoadCheckpoint falls back to it when the current file is
// corrupt or torn.
const CheckpointPrevSuffix = ".prev"

// ErrBadCheckpointMagic reports that the input is not a checkpoint file.
var ErrBadCheckpointMagic = errors.New("store: bad magic (not a CPK1 checkpoint file)")

// checkpointMagic tags checkpoint files ("CPK" for Compressed Partitioning
// Checkpoint). The format is checksummed from its first version: a
// checkpoint exists to be read after a crash, exactly when torn writes are
// likeliest.
var checkpointMagic = [4]byte{'C', 'P', 'K', '1'}

// WriteCheckpoint encodes a snapshot to w:
//
//	magic "CPK1" | uvarint nv | uvarint ne | uvarint k |
//	uvarint len(algorithm) | algorithm |
//	uvarint offset | uvarint batch | uvarint emitMark |
//	uvarint nsections | per section: uvarint len(name) | name |
//	                                 uvarint len(data) | data |
//	integrity trailer + footer (CRC32C per payload block; see integrity.go)
//
// Encoding is canonical: WriteCheckpoint(ReadCheckpoint(f)) reproduces f
// bit for bit, which FuzzReadCheckpoint holds as the round-trip invariant.
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	if err := validateCheckpoint(c); err != nil {
		return err
	}
	cw := newCRCWriter(w)
	if err := writeCheckpointPayload(cw, c); err != nil {
		return err
	}
	return cw.writeTrailer()
}

// writeCheckpointPayload emits magic, header and sections - the checksummed
// span of a CPK1 file.
func writeCheckpointPayload(w io.Writer, c *Checkpoint) error {
	vw := &varintWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	if _, err := vw.bw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	for _, x := range []uint64{uint64(c.NumVertices), uint64(c.NumEdges), uint64(c.K)} {
		if err := vw.uvarint(x); err != nil {
			return err
		}
	}
	if err := vw.uvarint(uint64(len(c.Algorithm))); err != nil {
		return err
	}
	if _, err := vw.bw.WriteString(c.Algorithm); err != nil {
		return err
	}
	for _, x := range []uint64{uint64(c.Offset), uint64(c.Batch), uint64(c.EmitMark)} {
		if err := vw.uvarint(x); err != nil {
			return err
		}
	}
	if err := vw.uvarint(uint64(len(c.Sections))); err != nil {
		return err
	}
	for i := range c.Sections {
		s := &c.Sections[i]
		if err := vw.uvarint(uint64(len(s.Name))); err != nil {
			return err
		}
		if _, err := vw.bw.WriteString(s.Name); err != nil {
			return err
		}
		if err := vw.uvarint(uint64(len(s.Data))); err != nil {
			return err
		}
		if _, err := vw.bw.Write(s.Data); err != nil {
			return err
		}
	}
	return vw.bw.Flush()
}

// validateCheckpoint rejects inconsistent in-memory snapshots before they
// reach disk, mirroring what ReadCheckpoint enforces on the way back in.
func validateCheckpoint(c *Checkpoint) error {
	if c.K < 1 || c.K > maxResultK {
		return fmt.Errorf("store: checkpoint k %d out of range [1, %d]", c.K, maxResultK)
	}
	if len(c.Algorithm) > maxResultString {
		return fmt.Errorf("store: checkpoint algorithm name exceeds %d bytes", maxResultString)
	}
	if c.NumVertices < 0 || c.NumEdges < 0 {
		return fmt.Errorf("store: negative checkpoint counts (%d vertices, %d edges)", c.NumVertices, c.NumEdges)
	}
	if c.Offset < 0 || c.Offset > c.NumEdges {
		return fmt.Errorf("store: checkpoint offset %d outside [0, %d]", c.Offset, c.NumEdges)
	}
	if c.Batch < 0 || c.EmitMark < 0 {
		return fmt.Errorf("store: negative checkpoint marks (batch %d, emit %d)", c.Batch, c.EmitMark)
	}
	if len(c.Sections) > maxCheckpointSections {
		return fmt.Errorf("store: checkpoint has %d sections (limit %d)", len(c.Sections), maxCheckpointSections)
	}
	for i := range c.Sections {
		if n := len(c.Sections[i].Name); n == 0 || n > maxCheckpointName {
			return fmt.Errorf("store: checkpoint section %d name of %d bytes outside [1, %d]", i, n, maxCheckpointName)
		}
	}
	return nil
}

// ReadCheckpoint decodes a checkpoint written by WriteCheckpoint. The whole
// file is buffered and its trailer and every payload block proven before
// any field is decoded, so a torn or bit-flipped checkpoint can never be
// mistaken for a valid one; forged headers (counts, section lengths past
// the payload, trailing bytes) all reject.
func ReadCheckpoint(rd io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("store: buffering checkpoint: %w", err)
	}
	if len(data) < 4 || [4]byte(data[:4]) != checkpointMagic {
		return nil, ErrBadCheckpointMagic
	}
	payload, err := verifyAllBytes(data, "checkpoint")
	if err != nil {
		return nil, err
	}
	return readCheckpointBody(payload[4:])
}

// readCheckpointBody decodes everything after the magic from the proven
// payload. Section payloads are copied out of the buffer, so the decoded
// checkpoint owns its memory.
func readCheckpointBody(body []byte) (*Checkpoint, error) {
	d := ckDecoder{data: body}
	nv := d.uvarint("vertex count")
	ne := d.uvarint("edge count")
	if d.err == nil {
		if err := checkCounts(nv, ne); err != nil {
			return nil, err
		}
	}
	k := d.uvarint("partition count")
	if d.err == nil && (k < 1 || k > maxResultK) {
		return nil, fmt.Errorf("store: checkpoint k %d out of range [1, %d]", k, maxResultK)
	}
	alg := d.str("algorithm", maxResultString)
	offset := d.uvarint("offset")
	batch := d.uvarint("batch index")
	emit := d.uvarint("emit mark")
	if d.err == nil && offset > ne {
		return nil, fmt.Errorf("store: checkpoint offset %d past declared %d edges", offset, ne)
	}
	ns := d.uvarint("section count")
	if d.err == nil && ns > maxCheckpointSections {
		return nil, fmt.Errorf("store: checkpoint has %d sections (limit %d)", ns, maxCheckpointSections)
	}
	if d.err != nil {
		return nil, d.err
	}
	c := &Checkpoint{
		Algorithm:   alg,
		K:           int(k),
		NumVertices: int(nv),
		NumEdges:    int64(ne),
		Offset:      int64(offset),
		Batch:       int64(batch),
		EmitMark:    int64(emit),
	}
	for i := uint64(0); i < ns; i++ {
		name := d.str("section name", maxCheckpointName)
		if d.err == nil && name == "" {
			return nil, errors.New("store: checkpoint section with empty name")
		}
		data := d.bytes("section payload")
		if d.err != nil {
			return nil, d.err
		}
		c.AddSection(name, append([]byte(nil), data...))
	}
	// A checkpoint is a complete artifact, not a stream prefix: trailing
	// bytes mean corruption or concatenation, and accepting them would
	// break the bit-identical round-trip contract.
	if len(d.data) != 0 {
		return nil, errors.New("store: trailing data after checkpoint body")
	}
	return c, nil
}

// ckDecoder walks a proven in-memory payload; the first failure sticks.
// Lengths are validated against the bytes actually present before anything
// is sized from them, so a forged header cannot force a giant allocation.
type ckDecoder struct {
	data []byte
	err  error
}

func (d *ckDecoder) uvarint(field string) uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.err = fmt.Errorf("store: checkpoint %s: truncated or overlong varint", field)
		return 0
	}
	d.data = d.data[n:]
	return x
}

func (d *ckDecoder) str(field string, max uint64) string {
	n := d.uvarint(field + " length")
	if d.err != nil {
		return ""
	}
	if n > max {
		d.err = fmt.Errorf("store: checkpoint %s of %d bytes exceeds the %d limit", field, n, max)
		return ""
	}
	if uint64(len(d.data)) < n {
		d.err = fmt.Errorf("store: checkpoint %s truncated (%d bytes, want %d)", field, len(d.data), n)
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

func (d *ckDecoder) bytes(field string) []byte {
	n := d.uvarint(field + " length")
	if d.err != nil {
		return nil
	}
	if uint64(len(d.data)) < n {
		d.err = fmt.Errorf("store: checkpoint %s truncated (%d bytes, want %d)", field, len(d.data), n)
		return nil
	}
	b := d.data[:n]
	d.data = d.data[n:]
	return b
}

// countingWriter counts the bytes passing through to w.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteCheckpointFile atomically replaces path with a new checkpoint,
// rotating any existing file to path+".prev" first, and returns the bytes
// written. The write itself goes through AtomicWriter (temp + fsync +
// rename), so at every instant the pair (path, path+".prev") holds at least
// one complete previous-generation snapshot: a crash between the rotate and
// the commit leaves only ".prev", which LoadCheckpoint falls back to.
func WriteCheckpointFile(path string, c *Checkpoint) (int64, error) {
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+CheckpointPrevSuffix); err != nil {
			return 0, fmt.Errorf("store: rotating checkpoint: %w", err)
		}
	}
	aw, err := NewAtomicWriter(path)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: aw}
	if err := WriteCheckpoint(cw, c); err != nil {
		aw.Abort()
		return 0, err
	}
	if err := aw.Commit(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// ReadCheckpointFile decodes the checkpoint at path.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := ReadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return c, nil
}

// LoadCheckpoint reads the newest usable checkpoint of the path pair: the
// current file if it proves out, otherwise the rotated path+".prev". A
// corrupt, truncated or missing current file is never resumed from - the
// CRC trailer decides, not the caller. The second return is the file
// actually used.
func LoadCheckpoint(path string) (*Checkpoint, string, error) {
	c, err := ReadCheckpointFile(path)
	if err == nil {
		return c, path, nil
	}
	prev := path + CheckpointPrevSuffix
	pc, perr := ReadCheckpointFile(prev)
	if perr == nil {
		return pc, prev, nil
	}
	return nil, "", fmt.Errorf("store: no usable checkpoint: %v; fallback: %v", err, perr)
}
