package repro

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// The facade tests exercise the library exactly as a downstream user would:
// through the re-exported API only.

func TestFacadeEndToEnd(t *testing.T) {
	g := GenerateWeb(WebConfig{N: 5000, OutDegree: 8, IntraSite: 0.85, Seed: 1})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, "CLUGP", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.ReplicationFactor < 1 || res.Quality.RelativeBalance < 1 {
		t.Fatalf("implausible quality %+v", res.Quality)
	}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	ranks, stats, err := PageRank(pl, PageRankConfig{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref := ReferencePageRank(g, 0.85, 5)
	for v := range ref {
		if math.Abs(ranks[v]-ref[v]) > 1e-9 {
			t.Fatalf("rank mismatch at %d", v)
		}
	}
	if stats.Messages == 0 {
		t.Fatal("no messages counted")
	}
}

func TestFacadeEdgeListRoundTrip(t *testing.T) {
	g := GenerateErdosRenyi(100, 300, 2)
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip lost edges: %d vs %d", back.NumEdges(), g.NumEdges())
	}
}

func TestFacadePartitionerNames(t *testing.T) {
	for _, name := range PartitionerNames() {
		p, err := NewPartitioner(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("name mismatch: %s vs %s", p.Name(), name)
		}
	}
	if len(Suite(1)) != 6 {
		t.Fatal("suite size changed")
	}
}

func TestFacadePipeline(t *testing.T) {
	g := GenerateWeb(WebConfig{N: 2000, OutDegree: 6, IntraSite: 0.85, Seed: 3})
	pl, err := RunPipeline(g, PipelineOptions{K: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Clustering.NumClusters == 0 || pl.Result.Quality == nil {
		t.Fatal("pipeline stages missing")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(ExperimentNames()) != 11 {
		t.Fatalf("%d experiments", len(ExperimentNames()))
	}
	tables, err := RunExperiment("6", ExperimentConfig{Scale: 0.05, Ks: []int{4, 256}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
}

func TestFacadeDatasets(t *testing.T) {
	if len(Datasets()) != 5 {
		t.Fatal("dataset registry changed")
	}
}

func TestFacadeEngineApps(t *testing.T) {
	g := GenerateWeb(WebConfig{N: 2000, OutDegree: 6, IntraSite: 0.85, Seed: 4})
	res, err := Partition(g, "DBH", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := PageRank(pl, PageRankConfig{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := ParallelPageRank(pl, PageRankConfig{Iterations: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatal("parallel executor diverged")
		}
	}
	labels, _ := LabelPropagation(pl, 10, CostModel{})
	want := ReferenceLabelPropagation(g, 10)
	for v := range want {
		if labels[v] != want[v] {
			t.Fatal("label propagation diverged")
		}
	}
}

func TestFacadeEdgeCut(t *testing.T) {
	g := GenerateWeb(WebConfig{N: 2000, OutDegree: 6, IntraSite: 0.9, Seed: 5})
	for _, p := range []EdgeCutPartitioner{&LDG{}, &FENNEL{}, &Multilevel{Seed: 1}} {
		assign, err := p.Partition(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		q, err := EvaluateEdgeCut(g, assign, 4)
		if err != nil {
			t.Fatal(err)
		}
		if q.CutFraction < 0 || q.CutFraction > 1 {
			t.Fatalf("%s: cut fraction %v", p.Name(), q.CutFraction)
		}
	}
}

func TestFacadeCompressedStore(t *testing.T) {
	g := GenerateWeb(WebConfig{N: 1000, OutDegree: 5, Seed: 6})
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("compressed roundtrip lost edges")
	}
}

func TestFacadeDistributedCLUGP(t *testing.T) {
	g := GenerateWeb(WebConfig{N: 3000, OutDegree: 6, IntraSite: 0.85, Seed: 7})
	p := &DistributedCLUGP{Nodes: 4, Seed: 7}
	res, err := RunPartitioner(p, g, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "CLUGP-D" || len(res.Assign) != g.NumEdges() {
		t.Fatalf("distributed run malformed: %s %d", res.Algorithm, len(res.Assign))
	}
}

func TestFacadeGraphOps(t *testing.T) {
	g := NewGraph(0, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	csr := BuildCSR(g)
	if csr.OutDegree(0) != 1 {
		t.Fatal("CSR wrong")
	}
	stats := ComputeStats(g)
	if stats.NumEdges != 2 {
		t.Fatal("stats wrong")
	}
	edges := StreamEdges(g, OrderRandom, 5)
	if len(edges) != 2 {
		t.Fatal("stream wrong")
	}
	cc := ReferenceComponents(g)
	if cc[2] != 0 {
		t.Fatal("components wrong")
	}
	d := ReferenceSSSP(g, 0)
	if d[2] != 2 {
		t.Fatal("sssp wrong")
	}
}
