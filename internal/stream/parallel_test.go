package stream

import (
	"fmt"
	"io"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

// seqEdges builds n distinguishable edges so any reordering, duplication or
// loss shows up in a plain equality check.
func seqEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)}
	}
	return edges
}

func parallelOver(t *testing.T, edges []graph.Edge, cfg ParallelConfig) *ParallelSource {
	t.Helper()
	par, err := Parallel(Of(edges).Source(len(edges)+1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { par.Close() })
	return par
}

// TestParallelDeliversExactStream: whatever the worker count, batch size,
// segment size or prefetch depth, the wrapper must deliver exactly the base
// stream - same edges, same order, and batch boundaries that are a pure
// function of BatchEdges.
func TestParallelDeliversExactStream(t *testing.T) {
	edges := seqEdges(10007) // prime: nothing divides evenly
	for _, cfg := range []ParallelConfig{
		{},
		{Workers: 1},
		{Workers: 2, BatchEdges: 512},
		{Workers: 4, BatchEdges: 100, SegmentBatches: 3, Depth: 2},
		{Workers: 7, BatchEdges: 64, SegmentBatches: 1, Depth: 1},
		{Workers: 64, BatchEdges: 33, SegmentBatches: 2},
	} {
		t.Run(fmt.Sprintf("w%d_b%d_s%d_d%d", cfg.Workers, cfg.BatchEdges, cfg.SegmentBatches, cfg.Depth), func(t *testing.T) {
			par := parallelOver(t, edges, cfg)
			if par.NumVertices() != len(edges)+1 || par.Len() != len(edges) {
				t.Fatalf("shape %d/%d", par.NumVertices(), par.Len())
			}
			got := sourceEdges(t, par)
			if len(got) != len(edges) {
				t.Fatalf("streamed %d edges, want %d", len(got), len(edges))
			}
			for i := range got {
				if got[i] != edges[i] {
					t.Fatalf("edge %d: got %v want %v", i, got[i], edges[i])
				}
			}
		})
	}
}

// TestParallelBatchBoundariesFixed: batch b must cover edges
// [b*B, (b+1)*B) regardless of the worker count - the invariant the
// deterministic merge rests on.
func TestParallelBatchBoundariesFixed(t *testing.T) {
	edges := seqEdges(1000)
	for _, workers := range []int{1, 2, 3, 7} {
		par := parallelOver(t, edges, ParallelConfig{Workers: workers, BatchEdges: 96, SegmentBatches: 2})
		if err := par.Reset(); err != nil {
			t.Fatal(err)
		}
		off := 0
		for {
			blk, err := par.NextBlock()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			want := 96
			if off+want > len(edges) {
				want = len(edges) - off
			}
			if len(blk) != want {
				t.Fatalf("workers=%d: batch at %d has %d edges, want %d", workers, off, len(blk), want)
			}
			off += len(blk)
		}
	}
}

// TestParallelMultiPass: Reset must rewind to edge 0 and redeliver the
// identical stream - the multi-pass contract CLUGP's three passes need.
func TestParallelMultiPass(t *testing.T) {
	edges := seqEdges(3000)
	par := parallelOver(t, edges, ParallelConfig{Workers: 3, BatchEdges: 128, SegmentBatches: 2})
	for pass := 0; pass < 3; pass++ {
		got := sourceEdges(t, par)
		if len(got) != len(edges) || got[0] != edges[0] || got[len(got)-1] != edges[len(edges)-1] {
			t.Fatalf("pass %d: stream diverged", pass)
		}
	}
}

// TestParallelResetMidStream: abandoning a pass partway (restreaming
// restarts, error recovery) must not deadlock or corrupt the next pass.
func TestParallelResetMidStream(t *testing.T) {
	edges := seqEdges(5000)
	par := parallelOver(t, edges, ParallelConfig{Workers: 4, BatchEdges: 64, SegmentBatches: 2, Depth: 2})
	for _, consume := range []int{1, 7, 30} {
		if err := par.Reset(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < consume; i++ {
			if _, err := par.NextBlock(); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := sourceEdges(t, par)
	for i := range got {
		if got[i] != edges[i] {
			t.Fatalf("after mid-stream resets, edge %d diverged", i)
		}
	}
}

// TestParallelEmptyAndTiny covers the degenerate shapes: zero edges, fewer
// edges than one batch, fewer segments than workers.
func TestParallelEmptyAndTiny(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		par := parallelOver(t, seqEdges(n), ParallelConfig{Workers: 8, BatchEdges: 4})
		got := sourceEdges(t, par)
		if len(got) != n {
			t.Fatalf("n=%d: streamed %d edges", n, len(got))
		}
	}
}

// TestParallelSegmentDelegates: Segment on the wrapper must stream the
// sub-range exactly (itself through a nested parallel pipeline).
func TestParallelSegmentDelegates(t *testing.T) {
	edges := seqEdges(2000)
	par := parallelOver(t, edges, ParallelConfig{Workers: 3, BatchEdges: 64})
	sub, err := par.Segment(500, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := sub.(io.Closer); ok {
		defer c.Close()
	}
	got := sourceEdges(t, sub)
	if len(got) != 700 {
		t.Fatalf("segment streamed %d edges, want 700", len(got))
	}
	for i := range got {
		if got[i] != edges[500+i] {
			t.Fatalf("segment edge %d diverged", i)
		}
	}
}

// TestParallelClosedUse: a closed wrapper must refuse further use instead
// of deadlocking on a dead fleet.
func TestParallelClosedUse(t *testing.T) {
	par := parallelOver(t, seqEdges(100), ParallelConfig{Workers: 2, BatchEdges: 8})
	if _, err := par.NextBlock(); err != nil {
		t.Fatal(err)
	}
	if err := par.Close(); err != nil {
		t.Fatal(err)
	}
	if err := par.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if err := par.Reset(); err == nil {
		t.Fatal("Reset after Close accepted")
	}
	if _, err := par.NextBlock(); err == nil {
		t.Fatal("NextBlock after Close accepted")
	}
	if _, err := par.Segment(0, 10); err == nil {
		t.Fatal("Segment after Close accepted")
	}
}

// errorSegmenter fails decode at a fixed edge index, in whichever segment
// that index lands.
type errorSegmenter struct {
	*ViewSource
	failAt int // global edge index
	lo     int // this segment's global offset
}

func (e *errorSegmenter) NextBlock() ([]graph.Edge, error) {
	blk, err := e.ViewSource.NextBlock()
	if err != nil {
		return nil, err
	}
	// pos has advanced past the block; compute the block's global range.
	end := e.lo + e.pos
	start := end - len(blk)
	if start <= e.failAt && e.failAt < end {
		return nil, fmt.Errorf("synthetic decode failure at edge %d", e.failAt)
	}
	return blk, nil
}

func (e *errorSegmenter) Segment(lo, hi int) (Source, error) {
	sub, err := e.ViewSource.Segment(lo, hi)
	if err != nil {
		return nil, err
	}
	return &errorSegmenter{ViewSource: sub.(*ViewSource), failAt: e.failAt, lo: e.lo + lo}, nil
}

// TestParallelErrorPropagates: a decode error must surface to the consumer
// at (or before) the broken position, poison the stream, and leave the
// fleet joinable - no deadlock, no hang on Close.
func TestParallelErrorPropagates(t *testing.T) {
	edges := seqEdges(1000)
	base := &errorSegmenter{ViewSource: Of(edges).Source(len(edges) + 1), failAt: 700}
	par, err := Parallel(base, ParallelConfig{Workers: 3, BatchEdges: 32, SegmentBatches: 2, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	streamed, err := Drain(par)
	if err == nil {
		t.Fatal("decode error swallowed")
	}
	if streamed != 0 { // Drain reports 0 on error; the point is it returned
		t.Fatalf("Drain returned %d with error", streamed)
	}
	if _, err := par.NextBlock(); err == nil {
		t.Fatal("stream not poisoned after error")
	}
	// The wrapper must recover on Reset (the view source is stateless).
	if err := par.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := par.NextBlock(); err != nil {
		t.Fatalf("first block after reset: %v", err)
	}
}

// TestParallelStress is the synctest-free randomized stress test: many
// rounds of random worker counts, batch sizes, segment sizes and prefetch
// depths, with interleaved partial passes, all checked against the base
// stream. Run with -race, this hammers the worker handoff paths the
// deterministic tests walk gently.
func TestParallelStress(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	edges := seqEdges(4096)
	for round := 0; round < 40; round++ {
		cfg := ParallelConfig{
			Workers:        1 + rng.IntN(9),
			BatchEdges:     1 + rng.IntN(300),
			SegmentBatches: 1 + rng.IntN(5),
			Depth:          1 + rng.IntN(4),
		}
		n := rng.IntN(len(edges) + 1)
		par, err := Parallel(Of(edges[:n]).Source(len(edges)+1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Random partial pass first, then a full verified pass.
		if rng.IntN(2) == 0 {
			if err := par.Reset(); err != nil {
				t.Fatal(err)
			}
			for i := rng.IntN(8); i > 0; i-- {
				if _, err := par.NextBlock(); err == io.EOF {
					break
				} else if err != nil {
					t.Fatal(err)
				}
			}
		}
		got, err := Collect(par)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("round %d (%+v): streamed %d edges, want %d", round, cfg, len(got), n)
		}
		for i := range got {
			if got[i] != edges[i] {
				t.Fatalf("round %d (%+v): edge %d diverged", round, cfg, i)
			}
		}
		par.Close()
	}
}
