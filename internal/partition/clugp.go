package partition

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/stream"
)

// CLUGP is the paper's contribution: a three-pass restreaming vertex-cut
// partitioner (Figure 1).
//
// Pass 1 clusters vertices with the allocation-splitting-migration streaming
// algorithm (package cluster). Pass 2 maps clusters to partitions at Nash
// equilibrium of an exact potential game (package game). Pass 3 re-streams
// the edges and materializes the edge->partition assignment while enforcing
// the imbalance factor tau (Algorithm 1).
type CLUGP struct {
	// Tau is the imbalance factor: no partition may exceed tau*|E|/k edges
	// (Algorithm 1 line 2). Zero means 1.0, the paper's default.
	Tau float64
	// VmaxFactor scales the maximum cluster volume Vmax = factor*|E|/k.
	// Zero means 0.2, i.e. Vmax = |E|/(5k). The paper follows Hollocou's
	// |E|/k suggestion; our calibration (DESIGN.md) found that partitioning
	// quality needs clusters an order of magnitude finer than partitions,
	// so that the game has enough movable pieces to both balance and heal
	// inter-cluster adjacency - at factor 1.0 the transformation's balance
	// guard ends up rerouting a large share of edges.
	VmaxFactor float64
	// RelWeight is the relative weight of load balance vs edge cutting in
	// the game (Figure 11b); zero means 0.5 (equal, Equation 11).
	RelWeight float64
	// Lambda overrides the game normalization factor; zero selects the
	// Theorem 5 maximum, the paper's default.
	Lambda float64
	// BatchSize is the cluster-game batch size (default 6400, Section VI).
	BatchSize int
	// GameRestarts plays each batch game from that many random starts,
	// keeping the lowest-potential equilibrium (closing the PoA/PoS gap of
	// Theorems 7-8). Zero means 1.
	GameRestarts int
	// Threads is the number of parallel game workers (default GOMAXPROCS;
	// the paper uses 32).
	Threads int
	// MigrateMaxDegree forwards to cluster.Config.MigrateMaxDegree
	// (0 = default cap of 1; -1 = uncapped, the literal Algorithm 2).
	MigrateMaxDegree int
	// DisableSplitting yields the CLUGP-S ablation (Holl clustering).
	DisableSplitting bool
	// GreedyAssign yields the CLUGP-G ablation (size-greedy cluster
	// placement instead of the game).
	GreedyAssign bool
	// Seed drives the game's random initial strategies.
	Seed uint64
	// ScoreWorkers > 1 runs pass 3 (transformation) over the gather ->
	// score -> apply pipeline (score.go): per-shard workers pre-gather each
	// fixed batch's vertex -> partition, mirror-partition and degree lookups
	// into slot tables; the tables are read-only in pass 3, so there is no
	// apply phase. Assignments are bit-identical to the serial path for
	// every value. Usually set through OutOfCoreOptions.ScoreWorkers.
	ScoreWorkers int

	// LastTrace captures diagnostics of the most recent run (nil before).
	LastTrace *Trace

	// Sharded-scoring scratch (ScoreWorkers > 1 only).
	pipe  scorePipe
	pslot []int32  // per-slot master partition
	mslot []int32  // per-slot mirror partition, or -1
	dslot []uint32 // per-slot degree

	// live points at the running pass 3's state while it streams, so
	// SnapshotState can capture it at a commit boundary; resume holds
	// checkpoint state stashed by RestoreState until the next run.
	live   *clugpLive
	resume *clugpResume
}

// clugpScalars is the scalar diagnostics a checkpoint carries so a resumed
// run rebuilds LastTrace without re-running passes 1 and 2.
type clugpScalars struct {
	numClusters int
	splits      int64
	migrations  int64
	gameRounds  int
	gameMoves   int64
	gameBatches int
	intraFrac   float64
	healedFrac  float64
	clusterNs   int64
	buildNs     int64
	gameNs      int64
	transformNs int64 // pass-3 time accumulated before this run
}

// clugpLive is the state of the pass 3 currently streaming: the mapping
// tables are read-only during the pass, sizes and overflowed are current at
// every commit boundary (the score loop flushes before committing).
type clugpLive struct {
	cres       *cluster.Result
	cpart      []int32
	sizes      []int64
	overflowed *int64
	scalars    clugpScalars
	t3         time.Time // pass-3 start, for accumulated transform time
}

// clugpResume is the decoded checkpoint state of an interrupted run:
// everything pass 3 needs, reconstructed without touching passes 1-2.
type clugpResume struct {
	numEdges   int64
	cres       *cluster.Result
	cpart      []int32
	sizes      []int64
	overflowed int64
	scalars    clugpScalars
}

// setScoreWorkers implements scoreParallel.
func (c *CLUGP) setScoreWorkers(n int) { c.ScoreWorkers = n }

// Trace exposes per-pass diagnostics of a CLUGP run for the ablation and
// parallelization experiments.
type Trace struct {
	NumClusters int
	Splits      int64
	Migrations  int64
	// IntraFraction is the share of edges with both endpoints in the same
	// cluster after pass 1 - the direct measure of clustering quality.
	IntraFraction float64
	// HealedFraction is the share of inter-cluster edges whose two clusters
	// the game co-located, so they cut nothing.
	HealedFraction float64
	GameRounds     int
	GameMoves      int64
	GameBatches    int
	Overflowed     int64 // edges rerouted by the balance guard (Alg. 1 lines 6-14)
	// Per-pass wall times: pass 1 (clustering), the cluster-graph build,
	// pass 2 (the game - the parallelized computation of Figure 10), and
	// pass 3 (transformation). Streaming passes 1 and 3 are I/O-bound in
	// the paper's accounting; the game is the compute-bound part.
	ClusterTime   time.Duration
	BuildTime     time.Duration
	GameTime      time.Duration
	TransformTime time.Duration
}

// Name implements Partitioner.
func (c *CLUGP) Name() string {
	switch {
	case c.DisableSplitting && c.GreedyAssign:
		return "CLUGP-SG"
	case c.DisableSplitting:
		return "CLUGP-S"
	case c.GreedyAssign:
		return "CLUGP-G"
	default:
		return "CLUGP"
	}
}

// PreferredOrder implements Partitioner: BFS, the natural web-crawl order
// the paper's streaming-clustering analysis assumes.
func (c *CLUGP) PreferredOrder() stream.Order { return stream.BFS }

// Partition implements Partitioner, running the three passes.
func (c *CLUGP) Partition(src stream.Source, k int) ([]int32, error) {
	return partitionVia(c, src, k)
}

// PartitionInto implements IntoPartitioner. The sink is constructed in a
// concrete call chain so it stays on the stack (zero-allocation contract).
func (c *CLUGP) PartitionInto(src stream.Source, k int, assign []int32) error {
	if err := checkInto(src, k, assign); err != nil {
		return err
	}
	sink := assignSink{assign: assign}
	return c.run(src, k, &sink)
}

// PartitionStream implements StreamingPartitioner: passes 1 and 2 keep only
// the O(|V|) mapping tables and the cluster graph, and pass 3 commits each
// transformed block as soon as its balance bookkeeping is final, so the
// full run never holds O(|E|) state. This is the paper's actual streaming
// deployment: three sequential passes over a replayable stream.
func (c *CLUGP) PartitionStream(src stream.Source, k int, emit Emit) error {
	return streamVia(c, src, k, emit)
}

// run executes the three passes, delivering pass 3's assignment to the sink.
func (c *CLUGP) run(src stream.Source, k int, sink *assignSink) error {
	if c.resume != nil {
		return c.runResume(src, k, sink)
	}
	tau := c.Tau
	if tau == 0 {
		tau = 1.0
	}
	if tau < 1.0 {
		return fmt.Errorf("clugp: tau must be >= 1.0, got %v", tau)
	}
	vf := c.VmaxFactor
	if vf == 0 {
		vf = 0.2
	}
	numEdges := src.Len()
	if numEdges == 0 {
		return nil
	}

	// Pass 1: streaming clustering. Vmax = vf*|E|/k, at least 2 so that
	// tiny graphs still form multi-vertex clusters.
	vmax := int64(vf * float64(numEdges) / float64(k))
	if vmax < 2 {
		vmax = 2
	}
	t0 := time.Now()
	cres, err := cluster.Run(src, cluster.Config{
		Vmax:             vmax,
		DisableSplitting: c.DisableSplitting,
		MigrateMaxDegree: c.MigrateMaxDegree,
	})
	if err != nil {
		return fmt.Errorf("clugp pass 1: %w", err)
	}
	cres.Compact()
	t1 := time.Now()

	// Pass 2: build the cluster graph and play the partitioning game.
	cg, err := cluster.BuildGraph(src, cres)
	if err != nil {
		return fmt.Errorf("clugp pass 2: %w", err)
	}
	t2 := time.Now()
	var asg *game.Assignment
	if c.GreedyAssign {
		asg = game.GreedyAssign(cg, k)
	} else {
		batch := c.BatchSize
		if batch == 0 {
			batch = 6400
		}
		asg, err = game.Solve(cg, game.Config{
			K:         k,
			Lambda:    c.Lambda,
			RelWeight: c.RelWeight,
			BatchSize: batch,
			Threads:   c.Threads,
			Restarts:  c.GameRestarts,
			Seed:      c.Seed,
		})
		if err != nil {
			return fmt.Errorf("clugp pass 2: %w", err)
		}
	}
	t3 := time.Now()

	// Cluster-quality fractions come from pass-2 state alone, so they are
	// computed before pass 3: a checkpoint taken mid-transformation carries
	// them, and a resumed run never revisits the cluster graph.
	var intraFrac, healedFrac float64
	if total := cg.TotalIntra + cg.TotalInter; total > 0 {
		intraFrac = float64(cg.TotalIntra) / float64(total)
	}
	if cg.TotalInter > 0 {
		var healed int64
		for ci := 0; ci < cg.NumClusters; ci++ {
			p := asg.Partition[ci]
			for _, a := range cg.Adj[ci] {
				if asg.Partition[a.To] == p {
					healed += a.W
				}
			}
		}
		// Each co-located pair's weight got counted from both sides, and
		// arc weights already combine both edge directions.
		healedFrac = float64(healed) / float64(2*cg.TotalInter)
	}

	// Pass 3: transformation (Algorithm 1).
	sizes := make([]int64, k)
	var overflowed int64
	c.live = &clugpLive{
		cres:       cres,
		cpart:      asg.Partition,
		sizes:      sizes,
		overflowed: &overflowed,
		scalars: clugpScalars{
			numClusters: cres.NumClusters,
			splits:      cres.Splits,
			migrations:  cres.Migrations,
			gameRounds:  asg.Rounds,
			gameMoves:   asg.Moves,
			gameBatches: asg.Batches,
			intraFrac:   intraFrac,
			healedFrac:  healedFrac,
			clusterNs:   int64(t1.Sub(t0)),
			buildNs:     int64(t2.Sub(t1)),
			gameNs:      int64(t3.Sub(t2)),
		},
		t3: t3,
	}
	if c.ScoreWorkers > 1 {
		err = c.transformSharded(src, numEdges, cres, asg.Partition, k, tau, sizes, &overflowed, sink)
	} else {
		err = transform(src, numEdges, cres, asg.Partition, k, tau, sizes, &overflowed, sink)
	}
	if err != nil {
		return fmt.Errorf("clugp pass 3: %w", err)
	}
	t4 := time.Now()

	c.LastTrace = &Trace{
		NumClusters:    cres.NumClusters,
		Splits:         cres.Splits,
		Migrations:     cres.Migrations,
		IntraFraction:  intraFrac,
		HealedFraction: healedFrac,
		GameRounds:     asg.Rounds,
		GameMoves:      asg.Moves,
		GameBatches:    asg.Batches,
		Overflowed:     overflowed,
		ClusterTime:    t1.Sub(t0),
		BuildTime:      t2.Sub(t1),
		GameTime:       t3.Sub(t2),
		TransformTime:  t4.Sub(t3),
	}
	return nil
}

// runResume is run with passes 1 and 2 replaced by the checkpoint's mapping
// tables: only pass 3 streams, over the tail the runner fast-forwarded to.
func (c *CLUGP) runResume(src stream.Source, k int, sink *assignSink) error {
	r := c.resume
	c.resume = nil
	tau := c.Tau
	if tau == 0 {
		tau = 1.0
	}
	if tau < 1.0 {
		return fmt.Errorf("clugp: tau must be >= 1.0, got %v", tau)
	}
	overflowed := r.overflowed
	t3 := time.Now()
	c.live = &clugpLive{
		cres:       r.cres,
		cpart:      r.cpart,
		sizes:      r.sizes,
		overflowed: &overflowed,
		scalars:    r.scalars,
		t3:         t3,
	}
	var err error
	if c.ScoreWorkers > 1 {
		err = c.transformSharded(src, int(r.numEdges), r.cres, r.cpart, k, tau, r.sizes, &overflowed, sink)
	} else {
		err = transform(src, int(r.numEdges), r.cres, r.cpart, k, tau, r.sizes, &overflowed, sink)
	}
	if err != nil {
		return fmt.Errorf("clugp pass 3: %w", err)
	}
	s := r.scalars
	c.LastTrace = &Trace{
		NumClusters:    s.numClusters,
		Splits:         s.splits,
		Migrations:     s.migrations,
		IntraFraction:  s.intraFrac,
		HealedFraction: s.healedFrac,
		GameRounds:     s.gameRounds,
		GameMoves:      s.gameMoves,
		GameBatches:    s.gameBatches,
		Overflowed:     overflowed,
		ClusterTime:    time.Duration(s.clusterNs),
		BuildTime:      time.Duration(s.buildNs),
		GameTime:       time.Duration(s.gameNs),
		TransformTime:  time.Duration(s.transformNs) + time.Since(t3),
	}
	return nil
}

// transform implements Algorithm 1: stream the edges once more, mapping
// each through vertex->cluster->partition, with the balance guard and the
// replica-reducing rules, committing each block to the sink as soon as its
// load bookkeeping is final.
//
// The key refinement over a literal line-by-line transcription concerns
// divided vertices (lines 18-19). A vertex split in pass 1 is present in
// two partitions: that of its final cluster and that of the cluster holding
// its mirror ("e will be assigned to the partitions where u's mirror vertex
// belongs", Section III-C). The edge is therefore routed to whichever
// candidate partition creates the fewest new replicas, judging presence by
// exactly those O(1) tables - master partition and mirror partition - so
// pass 3 keeps its O(1)-per-edge budget. Ties fall back to the paper's
// cut-the-higher-degree rule (lines 21-22), then to the lighter partition.
func transform(src stream.Source, numEdges int, cres *cluster.Result, cpart []int32, k int, tau float64, sizes []int64, overflowed *int64, sink *assignSink) (err error) {
	// numEdges is the full stream's edge count, passed in because src may be
	// a resumed tail covering only the remainder; Lmax must not shrink when
	// a run resumes. Lmax = ceil(tau*|E|/k): the ceiling guarantees
	// k*Lmax >= |E| so an underflow partition always exists when the guard
	// trips. sizes and *overflowed carry the balance bookkeeping across a
	// checkpoint: zero on a fresh run, the checkpointed values on resume,
	// and *overflowed is current at every commit so SnapshotState reads a
	// consistent value.
	ovf := *overflowed
	lmax := int64((tau*float64(numEdges) + float64(k) - 1) / float64(k))
	if lmax < 1 {
		lmax = 1
	}

	deg := cres.Degree
	// mirror partition of a vertex, or -1.
	mirrorPart := func(v graph.VertexID) int32 {
		if c := cres.SplitFrom[v]; c != cluster.None {
			return cpart[c]
		}
		return -1
	}

	return forEachBlock(src, func(blk []graph.Edge) error {
		out := sink.grab(len(blk))
		for j, e := range blk {
			u, v := e.Src, e.Dst
			pu := cpart[cres.Assign[u]]
			pv := cpart[cres.Assign[v]]

			var p int32
			if sizes[pu] >= lmax || sizes[pv] >= lmax {
				// Balance guard (lines 6-14): reroute to an underflow
				// partition, preferring the endpoints' own partitions.
				ovf++
				switch {
				case sizes[pu] < lmax:
					p = pu
				case sizes[pv] < lmax:
					p = pv
				default:
					p = leastLoadedAll(sizes)
				}
			} else if pu == pv {
				// Same partition: no cut (lines 15-16).
				p = pu
			} else {
				mu, mv := mirrorPart(u), mirrorPart(v)
				// presentU(p): u exists at p already (master or mirror copy).
				presentU := func(p int32) bool { return p == pu || p == mu }
				presentV := func(p int32) bool { return p == pv || p == mv }
				// Candidates: each endpoint's master partition, plus mirror
				// partitions when they host the other endpoint too.
				bestCost := int32(3)
				pick := func(cand int32, cost int32) {
					if cand < 0 || sizes[cand] >= lmax {
						return
					}
					if cost < bestCost || (cost == bestCost && sizes[cand] < sizes[p]) {
						bestCost = cost
						p = cand
					}
				}
				p = pu
				cost := func(cand int32) int32 {
					c := int32(0)
					if !presentU(cand) {
						c++
					}
					if !presentV(cand) {
						c++
					}
					return c
				}
				// Degree rule ordering (lines 21-22): evaluating the
				// lower-degree endpoint's partition first makes it win ties,
				// cutting the higher-degree endpoint.
				if deg[v] > deg[u] {
					pick(pu, cost(pu))
					pick(pv, cost(pv))
				} else {
					pick(pv, cost(pv))
					pick(pu, cost(pu))
				}
				pick(mu, cost(mu))
				pick(mv, cost(mv))
			}
			out[j] = p
			sizes[p]++
		}
		*overflowed = ovf
		return sink.commit(blk, out)
	})
}

// transformSharded is transform with the per-edge table lookups - vertex ->
// cluster -> partition, mirror partition, degree - pre-gathered per fixed
// batch by one worker per vertex-range shard (score.go). The mapping tables
// are read-only during pass 3, so the pipeline runs gather -> score with no
// apply phase; the score loop is the serial loop verbatim reading slots.
// Bit-identical to transform for every ScoreWorkers value.
func (c *CLUGP) transformSharded(src stream.Source, numEdges int, cres *cluster.Result, cpart []int32, k int, tau float64, sizes []int64, overflowed *int64, sink *assignSink) (err error) {
	ovf := *overflowed
	lmax := int64((tau*float64(numEdges) + float64(k) - 1) / float64(k))
	if lmax < 1 {
		lmax = 1
	}
	deg := cres.Degree

	sp := &c.pipe
	sp.begin(src.NumVertices(), c.ScoreWorkers)
	defer sp.stop()
	gather := func(sh int, verts []graph.VertexID, slots []int32) {
		for i, v := range verts {
			s := slots[i]
			c.pslot[s] = cpart[cres.Assign[v]]
			if cl := cres.SplitFrom[v]; cl != cluster.None {
				c.mslot[s] = cpart[cl]
			} else {
				c.mslot[s] = -1
			}
			c.dslot[s] = deg[v]
		}
	}

	return forEachBlock(stream.Rebatch(src, 0), func(blk []graph.Edge) error {
		sp.prepare(blk)
		c.pslot = growInt32(c.pslot, sp.nslots)
		c.mslot = growInt32(c.mslot, sp.nslots)
		c.dslot = growUint32(c.dslot, sp.nslots)
		sp.do(gather)
		out := sink.grab(len(blk))
		for j := range blk {
			su, sv := sp.su[j], sp.sv[j]
			pu := c.pslot[su]
			pv := c.pslot[sv]

			var p int32
			if sizes[pu] >= lmax || sizes[pv] >= lmax {
				ovf++
				switch {
				case sizes[pu] < lmax:
					p = pu
				case sizes[pv] < lmax:
					p = pv
				default:
					p = leastLoadedAll(sizes)
				}
			} else if pu == pv {
				p = pu
			} else {
				mu, mv := c.mslot[su], c.mslot[sv]
				presentU := func(p int32) bool { return p == pu || p == mu }
				presentV := func(p int32) bool { return p == pv || p == mv }
				bestCost := int32(3)
				pick := func(cand int32, cost int32) {
					if cand < 0 || sizes[cand] >= lmax {
						return
					}
					if cost < bestCost || (cost == bestCost && sizes[cand] < sizes[p]) {
						bestCost = cost
						p = cand
					}
				}
				p = pu
				cost := func(cand int32) int32 {
					cc := int32(0)
					if !presentU(cand) {
						cc++
					}
					if !presentV(cand) {
						cc++
					}
					return cc
				}
				if c.dslot[sv] > c.dslot[su] {
					pick(pu, cost(pu))
					pick(pv, cost(pv))
				} else {
					pick(pv, cost(pv))
					pick(pu, cost(pu))
				}
				pick(mu, cost(mu))
				pick(mv, cost(mv))
			}
			out[j] = p
			sizes[p]++
		}
		*overflowed = ovf
		return sink.commit(blk, out)
	})
}

// clugpAppendIDs encodes int32 values that may be cluster.None (-1), each
// as uvarint(v+1).
func clugpAppendIDs(buf []byte, ids []int32) []byte {
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(int64(id)+1))
	}
	return buf
}

// clugpLoadIDs fills dst from a uvarint(v+1) stream, rejecting values above
// max (exclusive upper bound on the decoded id), and returns the remainder.
func clugpLoadIDs(dst []int32, data []byte, max int64, what string) ([]byte, error) {
	for i := range dst {
		x, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("clugp: truncated %s state", what)
		}
		data = data[n:]
		if int64(x) > max {
			return nil, fmt.Errorf("clugp: %s id %d out of range [-1, %d)", what, int64(x)-1, max)
		}
		dst[i] = int32(int64(x) - 1)
	}
	return data, nil
}

// SnapshotState implements Checkpointer. A CLUGP checkpoint carries the
// pass-3 inputs - the vertex->cluster and cluster->partition tables, vertex
// degrees and mirror marks, all read-only during the pass - plus the live
// balance bookkeeping (sizes, overflowed) and the pass 1-2 diagnostics, so
// a resumed run replays neither clustering nor the game.
func (c *CLUGP) SnapshotState(ck *store.Checkpoint) error {
	lv := c.live
	if lv == nil {
		return fmt.Errorf("clugp: checkpoint requested outside the transformation pass")
	}
	ck.AddSection(sectionCLUGPAssign, clugpAppendIDs(nil, lv.cres.Assign))
	ck.AddSection(sectionCLUGPSplitFrom, clugpAppendIDs(nil, lv.cres.SplitFrom))
	ck.AddSection(sectionCLUGPDegree, metrics.AppendDegreeState(nil, lv.cres.Degree))
	ck.AddSection(sectionCLUGPCPart, clugpAppendIDs(nil, lv.cpart))
	ck.AddSection(sectionCLUGPSizes, metrics.AppendSizesState(nil, lv.sizes))
	s := lv.scalars
	var buf []byte
	for _, x := range []uint64{
		uint64(s.numClusters),
		uint64(s.splits),
		uint64(s.migrations),
		uint64(s.gameRounds),
		uint64(s.gameMoves),
		uint64(s.gameBatches),
		uint64(*lv.overflowed),
		math.Float64bits(s.intraFrac),
		math.Float64bits(s.healedFrac),
		uint64(s.clusterNs),
		uint64(s.buildNs),
		uint64(s.gameNs),
		uint64(s.transformNs + int64(time.Since(lv.t3))),
	} {
		buf = binary.AppendUvarint(buf, x)
	}
	ck.AddSection(sectionCLUGPScalars, buf)
	return nil
}

// RestoreState implements Checkpointer, decoding and validating the whole
// pass-3 state eagerly so a forged or mismatched checkpoint fails here, not
// as a panic mid-stream.
func (c *CLUGP) RestoreState(ck *store.Checkpoint) error {
	nv, k := ck.NumVertices, ck.K

	data, err := loadSection(ck, sectionCLUGPScalars)
	if err != nil {
		return err
	}
	var vals [13]uint64
	for i := range vals {
		x, n := binary.Uvarint(data)
		if n <= 0 {
			return fmt.Errorf("clugp: truncated scalars state")
		}
		vals[i] = x
		data = data[n:]
	}
	if err := consumed(data, "clugp scalars"); err != nil {
		return err
	}
	numClusters := int(vals[0])
	if numClusters < 0 || numClusters > nv {
		return fmt.Errorf("clugp: checkpoint has %d clusters for %d vertices", numClusters, nv)
	}

	assign := make([]cluster.ID, nv)
	if data, err = loadSection(ck, sectionCLUGPAssign); err != nil {
		return err
	}
	if data, err = clugpLoadIDs(assign, data, int64(numClusters), "cluster assign"); err != nil {
		return err
	}
	if err := consumed(data, "clugp assign"); err != nil {
		return err
	}

	splitFrom := make([]cluster.ID, nv)
	if data, err = loadSection(ck, sectionCLUGPSplitFrom); err != nil {
		return err
	}
	if data, err = clugpLoadIDs(splitFrom, data, int64(numClusters), "split-from"); err != nil {
		return err
	}
	if err := consumed(data, "clugp split-from"); err != nil {
		return err
	}

	degree := make([]uint32, nv)
	if data, err = loadSection(ck, sectionCLUGPDegree); err != nil {
		return err
	}
	if data, err = metrics.LoadDegreeState(degree, data); err != nil {
		return err
	}
	if err := consumed(data, "clugp degree"); err != nil {
		return err
	}

	cpart := make([]int32, numClusters)
	if data, err = loadSection(ck, sectionCLUGPCPart); err != nil {
		return err
	}
	if data, err = clugpLoadIDs(cpart, data, int64(k), "cluster partition"); err != nil {
		return err
	}
	if err := consumed(data, "clugp cluster partition"); err != nil {
		return err
	}
	for ci, p := range cpart {
		if p < 0 {
			return fmt.Errorf("clugp: cluster %d has no partition in checkpoint", ci)
		}
	}

	sizes := make([]int64, k)
	if data, err = loadSection(ck, sectionCLUGPSizes); err != nil {
		return err
	}
	if data, err = metrics.LoadSizesState(sizes, data); err != nil {
		return err
	}
	if err := consumed(data, "clugp sizes"); err != nil {
		return err
	}
	var assigned int64
	for _, sz := range sizes {
		assigned += sz
	}
	if assigned != ck.Offset {
		return fmt.Errorf("clugp: checkpoint sizes cover %d edges, offset says %d", assigned, ck.Offset)
	}

	c.resume = &clugpResume{
		numEdges: ck.NumEdges,
		cres: &cluster.Result{
			NumClusters: numClusters,
			Assign:      assign,
			Degree:      degree,
			SplitFrom:   splitFrom,
			Splits:      int64(vals[1]),
			Migrations:  int64(vals[2]),
		},
		cpart:      cpart,
		sizes:      sizes,
		overflowed: int64(vals[6]),
		scalars: clugpScalars{
			numClusters: numClusters,
			splits:      int64(vals[1]),
			migrations:  int64(vals[2]),
			gameRounds:  int(vals[3]),
			gameMoves:   int64(vals[4]),
			gameBatches: int(vals[5]),
			intraFrac:   math.Float64frombits(vals[7]),
			healedFrac:  math.Float64frombits(vals[8]),
			clusterNs:   int64(vals[9]),
			buildNs:     int64(vals[10]),
			gameNs:      int64(vals[11]),
			transformNs: int64(vals[12]),
		},
	}
	return nil
}

// StateBytes implements StateSizer. CLUGP's standing state is the two
// mapping tables (vertex->cluster at 4 bytes/vertex, cluster->partition at
// <= 4 bytes/vertex) plus the degree array and divided marks - the O(2|V|)
// of Section III - plus the per-worker game scratch.
func (c *CLUGP) StateBytes(numVertices, numEdges, k int) int64 {
	perVertex := int64(numVertices) * (4 + 4 + 4 + 1) // cluster id, cluster->partition, degree, divided
	threads := c.Threads
	if threads <= 0 {
		threads = 8
	}
	// Each game worker holds k loads and a k-sized scratch.
	gameState := int64(threads) * int64(k) * 16
	return perVertex + gameState + int64(k)*8
}
