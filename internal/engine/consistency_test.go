package engine

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/stream"
)

// TestPlacementRFMatchesMetrics: the engine's replica accounting and the
// metrics package must agree on the replication factor whenever every
// vertex appears in the stream (they differ only in how absent vertices
// are counted).
func TestPlacementRFMatchesMetrics(t *testing.T) {
	g := testGraph(21) // generators touch every vertex
	res, err := partition.Run(&partition.DBH{Seed: 1}, g, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.Vertices != g.NumVertices {
		t.Skip("graph has absent vertices; accounting legitimately differs")
	}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl.ReplicationFactor()-res.Quality.ReplicationFactor) > 1e-12 {
		t.Fatalf("engine RF %v != metrics RF %v", pl.ReplicationFactor(), res.Quality.ReplicationFactor)
	}
	// And both must match a recomputation from scratch.
	q, err := metrics.Evaluate(res.Stream, res.Assign, 16)
	if err != nil {
		t.Fatal(err)
	}
	if q.ReplicationFactor != res.Quality.ReplicationFactor {
		t.Fatal("metrics recomputation diverged")
	}
}

// TestMessagesScaleWithRF: across partitioners on the same graph, PageRank
// messages must be ordered exactly as the replication factors are (the
// message count is an affine function of total mirrors).
func TestMessagesScaleWithRF(t *testing.T) {
	g := testGraph(22)
	type run struct {
		rf   float64
		msgs int64
	}
	var runs []run
	for _, p := range []partition.Partitioner{
		&partition.Hashing{Seed: 1}, &partition.DBH{Seed: 1}, &partition.CLUGP{Seed: 1},
	} {
		res, err := partition.Run(p, g, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := NewPlacement(res)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := PageRank(pl, PageRankConfig{Iterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{rf: pl.ReplicationFactor(), msgs: stats.Messages})
	}
	for i := 0; i < len(runs); i++ {
		for j := i + 1; j < len(runs); j++ {
			if (runs[i].rf < runs[j].rf) != (runs[i].msgs < runs[j].msgs) {
				t.Fatalf("message ordering disagrees with RF ordering: %+v", runs)
			}
		}
	}
}

// TestSyncPairCountFormula: messages per PageRank superstep must equal
// 2*sum_v(|P(v)|-1) + k, tying the engine to the paper's Equation 1
// objective (minimizing RF minimizes synchronizations).
func TestSyncPairCountFormula(t *testing.T) {
	g := testGraph(23)
	res, err := partition.Run(&partition.Greedy{}, g, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	rs := metrics.NewReplicaSets(g.NumVertices, 8)
	edges, err := stream.Collect(res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		rs.Add(e.Src, int(res.Assign[i]))
		rs.Add(e.Dst, int(res.Assign[i]))
	}
	var mirrors int64
	for v := 0; v < g.NumVertices; v++ {
		if c := rs.Count(graph.VertexID(v)); c > 0 {
			mirrors += int64(c - 1)
		}
	}
	_, stats, err := PageRank(pl, PageRankConfig{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*mirrors + int64(pl.K)
	if stats.Messages != want {
		t.Fatalf("superstep messages %d, want %d (2*mirrors + k)", stats.Messages, want)
	}
}
