// Package partition implements the vertex-cut streaming partitioners
// evaluated in the paper (Table I): Hashing, DBH, Greedy, HDRF, Mint and
// CLUGP, plus the CLUGP-S / CLUGP-G ablation variants of Figure 9, all
// behind one interface.
//
// A vertex-cut partitioner assigns every streamed edge to exactly one of k
// partitions; quality is measured by the replication factor and relative
// load balance of Section II-B (package metrics).
package partition

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Partitioner assigns streamed edges to k partitions.
type Partitioner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// PreferredOrder is the stream order the algorithm performs best under;
	// the paper grants each competitor its best order (random for the
	// one-pass heuristics and hashes, BFS for Mint and CLUGP).
	PreferredOrder() stream.Order
	// Partition consumes the edge stream (possibly in multiple passes) and
	// returns one partition id per edge, aligned with the input slice.
	Partition(edges []graph.Edge, numVertices, k int) ([]int32, error)
}

// StateSizer is implemented by partitioners that can report the peak size
// in bytes of their internal state for the memory-cost comparison
// (Figure 6). The estimate covers algorithm state only, not the input
// stream or the output assignment, mirroring how the paper attributes
// memory.
type StateSizer interface {
	StateBytes(numVertices, numEdges, k int) int64
}

// Result bundles a finished run: the ordered stream that was partitioned,
// its assignment, quality metrics and bookkeeping.
type Result struct {
	Algorithm   string
	Order       stream.Order
	K           int
	NumVertices int
	Edges       []graph.Edge
	Assign      []int32
	Quality     *metrics.Quality
	Runtime     time.Duration
	StateBytes  int64
}

// Run orders the graph's edges per the partitioner's preference, times the
// partitioning pass(es) and evaluates quality. seed feeds the random stream
// order only; partitioner-internal seeds are part of their construction.
func Run(p Partitioner, g *graph.Graph, k int, seed uint64) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	order := p.PreferredOrder()
	return RunStreamed(p, stream.Edges(g, order, seed), order, g.NumVertices, k)
}

// RunCached is Run with the stream order served from c, so repeated runs
// over the same graph (the experiment-suite hot path) reuse one ordered
// slice instead of re-materializing it per run. A nil cache falls back to
// Run. The cached slice is shared across runs and must not be mutated;
// see stream.Cache.
func RunCached(p Partitioner, g *graph.Graph, k int, seed uint64, c *stream.Cache) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if c == nil {
		return Run(p, g, k, seed)
	}
	order := p.PreferredOrder()
	return RunStreamed(p, c.Edges(g, order, seed), order, g.NumVertices, k)
}

// RunStreamed partitions an already-ordered edge stream, timing the
// partitioning pass(es) and evaluating quality. order records how edges was
// produced; it is bookkeeping only and does not reorder anything.
func RunStreamed(p Partitioner, edges []graph.Edge, order stream.Order, numVertices, k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	start := time.Now()
	assign, err := p.Partition(edges, numVertices, k)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("partition: %s: %w", p.Name(), err)
	}
	if len(assign) != len(edges) {
		return nil, fmt.Errorf("partition: %s returned %d assignments for %d edges", p.Name(), len(assign), len(edges))
	}
	q, err := metrics.Evaluate(edges, assign, numVertices, k)
	if err != nil {
		return nil, fmt.Errorf("partition: %s: %w", p.Name(), err)
	}
	res := &Result{
		Algorithm:   p.Name(),
		Order:       order,
		K:           k,
		NumVertices: numVertices,
		Edges:       edges,
		Assign:      assign,
		Quality:     q,
		Runtime:     elapsed,
	}
	if s, ok := p.(StateSizer); ok {
		res.StateBytes = s.StateBytes(numVertices, len(edges), k)
	}
	return res, nil
}

// leastLoaded returns the partition with the smallest size among candidates
// (ties to the earliest candidate). candidates must be non-empty.
func leastLoaded(sizes []int64, candidates []int) int {
	best := candidates[0]
	for _, p := range candidates[1:] {
		if sizes[p] < sizes[best] {
			best = p
		}
	}
	return best
}

// leastLoadedAll returns the globally least-loaded partition.
func leastLoadedAll(sizes []int64) int {
	best := 0
	for p := 1; p < len(sizes); p++ {
		if sizes[p] < sizes[best] {
			best = p
		}
	}
	return best
}
