package partition

import (
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// Mint reimplements the quasi-streaming game-theoretic partitioner of Hua
// et al. (TPDS 2019) from its published description: edges arrive in
// batches; within a batch, each edge is a player that best-responds by
// moving to the partition minimizing its local cost (new replicas it would
// create among batch-local co-located endpoints, plus a load term) until the
// batch reaches equilibrium, after which the batch commits and its working
// state is discarded.
//
// Crucially - and unlike Greedy/HDRF - Mint keeps no global replica table:
// its state is O(batch size), which is why the paper's Figure 6 shows it
// well below the heuristic methods. Cross-batch consistency comes from the
// hash-anchored initial strategy (the lower-id endpoint's hash), which
// lands a vertex's edges on the same starting partition in every batch.
// Quality is therefore between the hash methods and the heuristics
// (Table I: Medium/Medium).
type Mint struct {
	// BatchSize is the number of edges per game (default 6400).
	BatchSize int
	// MaxRounds caps best-response rounds per batch (default 4).
	MaxRounds int
	// BalanceWeight scales the load term of the edge cost (default 1.0).
	BalanceWeight float64
	Seed          uint64
}

// Name implements Partitioner.
func (m *Mint) Name() string { return "Mint" }

// PreferredOrder implements Partitioner: Mint exploits stream locality, so
// BFS order (the web-crawl order) is its best setting, as in the paper.
func (m *Mint) PreferredOrder() stream.Order { return stream.BFS }

// Partition implements Partitioner.
func (m *Mint) Partition(edges []graph.Edge, numVertices, k int) ([]int32, error) {
	batchSize := m.BatchSize
	if batchSize <= 0 {
		batchSize = 6400
	}
	maxRounds := m.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4
	}
	mu := m.BalanceWeight
	if mu == 0 {
		mu = 1.0
	}

	assign := make([]int32, len(edges))
	sizes := make([]int64, k)  // committed edges per partition
	local := make([]int64, k)  // current batch's edges per partition
	totals := make([]int64, k) // sizes + local, the cost basis
	kk := uint64(k)

	// presence[v<<16|p] counts batch edges incident to v currently at p.
	presence := make(map[uint64]int32, batchSize*2)
	key := func(v graph.VertexID, p int32) uint64 { return uint64(v)<<16 | uint64(uint16(p)) }
	// primary[v] is the partition v's plurality of batch edges sits on -
	// approximated by the most recent strategy an incident edge adopted.
	// Both tables are batch-scoped: Mint keeps no global per-vertex state.
	primary := make(map[graph.VertexID]int32, batchSize)

	for lo := 0; lo < len(edges); lo += batchSize {
		hi := lo + batchSize
		if hi > len(edges) {
			hi = len(edges)
		}
		clear(presence)
		clear(primary)
		for p := range local {
			local[p] = 0
		}

		// Initial strategies: hash of the lower-id endpoint anchors each
		// vertex's edges to a consistent home partition across batches.
		for i := lo; i < hi; i++ {
			e := edges[i]
			anchor := e.Src
			if e.Dst < anchor {
				anchor = e.Dst
			}
			p := int32(xrand.Hash64(uint64(anchor)^m.Seed) % kk)
			assign[i] = p
			presence[key(e.Src, p)]++
			presence[key(e.Dst, p)]++
			local[p]++
		}
		for p := range totals {
			totals[p] = sizes[p] + local[p]
		}

		avg := float64(len(edges))/float64(k) + 1
		for round := 0; round < maxRounds; round++ {
			changed := false
			// The least-loaded partition is the only attractive strategy
			// beyond those where an endpoint already has presence, so each
			// edge evaluates a constant-size candidate set instead of all k
			// (keeping Mint's per-edge cost k-independent, which is the
			// point of its design).
			light := int32(leastLoadedAll(totals))
			for i := lo; i < hi; i++ {
				e := edges[i]
				cur := assign[i]
				// Remove this edge's own contribution so costs are marginal.
				presence[key(e.Src, cur)]--
				presence[key(e.Dst, cur)]--
				totals[cur]--

				best := cur
				bestCost := m.edgeCost(presence, totals, key, e, cur, mu, avg)
				au := int32(xrand.Hash64(uint64(e.Src)^m.Seed) % kk)
				av := int32(xrand.Hash64(uint64(e.Dst)^m.Seed) % kk)
				cands := [5]int32{au, av, light, -1, -1}
				if p, ok := primary[e.Src]; ok {
					cands[3] = p
				}
				if p, ok := primary[e.Dst]; ok {
					cands[4] = p
				}
				for _, p := range cands {
					if p == cur || p < 0 {
						continue
					}
					if c := m.edgeCost(presence, totals, key, e, p, mu, avg); c < bestCost-1e-12 {
						bestCost = c
						best = p
					}
				}
				if best != cur {
					assign[i] = best
					changed = true
				}
				presence[key(e.Src, best)]++
				presence[key(e.Dst, best)]++
				totals[best]++
				primary[e.Src] = best
				primary[e.Dst] = best
			}
			if !changed {
				break
			}
		}

		// Commit: only partition sizes survive the batch.
		for i := lo; i < hi; i++ {
			sizes[assign[i]]++
		}
	}
	return assign, nil
}

// edgeCost is the player cost of edge e choosing partition p: one unit per
// endpoint that no co-batched edge has at p (a would-be replica), plus the
// normalized load of p including the batch edges already there.
func (m *Mint) edgeCost(presence map[uint64]int32, totals []int64, key func(graph.VertexID, int32) uint64, e graph.Edge, p int32, mu, avg float64) float64 {
	var rep float64
	if presence[key(e.Src, p)] == 0 {
		rep++
	}
	if presence[key(e.Dst, p)] == 0 {
		rep++
	}
	return rep + mu*float64(totals[p])/avg
}

// StateBytes implements StateSizer: the batch assignment and presence map;
// no global per-vertex state.
func (m *Mint) StateBytes(numVertices, numEdges, k int) int64 {
	b := m.BatchSize
	if b <= 0 {
		b = 6400
	}
	if b > numEdges {
		b = numEdges
	}
	// 4 bytes per batch assignment + ~2 presence entries per edge at ~24
	// bytes each (key+count+bucket overhead), + k sizes.
	return int64(b)*4 + int64(b)*2*24 + int64(k)*8
}
