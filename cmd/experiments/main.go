// Command experiments regenerates the paper's tables and figures on the
// synthetic stand-in datasets. Each artefact prints as an aligned text
// table whose rows/series correspond to the paper's plot.
//
// Usage:
//
//	experiments -fig 3              # Figure 3 (a-d)
//	experiments -fig table1
//	experiments -all -scale 0.5     # everything, at half dataset size
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment to run: "+strings.Join(repro.ExperimentNames(), ", "))
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.Float64("scale", 1.0, "dataset scale factor")
		seed  = flag.Uint64("seed", 42, "seed for stochastic components")
		quiet = flag.Bool("q", false, "suppress per-run progress lines")
	)
	flag.Parse()

	cfg := repro.ExperimentConfig{Scale: *scale, Seed: *seed}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	names := repro.ExperimentNames()
	if !*all {
		if *fig == "" {
			fmt.Fprintln(os.Stderr, "experiments: need -fig NAME or -all; valid names:", strings.Join(names, ", "))
			os.Exit(2)
		}
		names = []string{*fig}
	}

	start := time.Now()
	for _, name := range names {
		tables, err := repro.RunExperiment(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for i := range tables {
			if err := tables[i].Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	}
}
