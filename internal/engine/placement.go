// Package engine simulates a PowerGraph-style distributed graph-processing
// system over a vertex-cut partitioning: k logical nodes each own the edges
// of one partition, vertices cut across partitions exist as one master plus
// mirrors, and iterative vertex programs run as gather-apply-scatter (GAS)
// supersteps with explicit mirror->master gather messages and
// master->mirror sync messages.
//
// This is the substitution for the paper's 32-docker-node PowerGraph
// testbed (Figure 8): message and byte counts are exact deterministic
// functions of the partitioning, per-node computation is proportional to
// local edge counts, and the network latency knob plays the role of PUMBA's
// injected RTT. Vertex programs compute real values (PageRank ranks, CC
// labels, SSSP distances) that tests validate against single-machine
// reference implementations.
package engine

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/stream"
)

// Placement is the physical layout induced by a vertex-cut partitioning:
// per-node local vertex tables, local edges, master designation and the
// mirror synchronization topology.
type Placement struct {
	K           int
	NumVertices int
	// Master[v] is the node hosting v's master copy. Vertices absent from
	// the stream are placed round-robin with no edges (they still take part
	// in PageRank as dangling vertices).
	Master []int32
	// Nodes are the per-partition local structures.
	Nodes []Node
	// Sync lists one entry per (vertex, mirror) pair: the gather/scatter
	// message topology. len(Sync) == sum_v (|P(v)|-1).
	Sync []SyncPair
	// Replicas is sum_v |P(v)| counting unseen vertices once.
	Replicas int64
}

// Node is one logical machine.
type Node struct {
	ID int
	// Global[l] is the global id of local vertex l.
	Global []graph.VertexID
	// Edges are the node's edges in local vertex ids.
	Edges []LocalEdge
	// IsMaster[l] reports whether this node hosts the master of local
	// vertex l.
	IsMaster []bool
}

// LocalEdge is an edge in node-local vertex ids.
type LocalEdge struct {
	Src, Dst int32
}

// SyncPair connects a mirror copy of a vertex to its master copy.
type SyncPair struct {
	MirrorNode  int32
	MirrorLocal int32
	MasterNode  int32
	MasterLocal int32
}

// NewPlacement lays out a finished partitioning onto k logical nodes.
// Masters are placed on the partition holding the most of the vertex's
// edges (ties to the lowest partition id), the placement PowerGraph's
// loader approximates. The result must carry a materialized assignment
// (out-of-core runs do not); its stream is replayed block by block.
func NewPlacement(res *partition.Result) (*Placement, error) {
	k := res.K
	nv := res.NumVertices
	st := res.Stream
	if st == nil {
		// Hand-built results may carry no stream; treat it as empty.
		st = stream.Of(nil).Source(nv)
	}
	numEdges := st.Len()
	if res.Assign == nil && numEdges > 0 {
		return nil, fmt.Errorf("engine: result has no materialized assignment (out-of-core run)")
	}
	if len(res.Assign) != numEdges {
		return nil, fmt.Errorf("engine: %d assignments for %d edges", len(res.Assign), numEdges)
	}

	rs := metrics.NewReplicaSets(nv, k)
	// Incident-edge counts per (vertex, partition) using a compact hashmap
	// keyed by the replica pair; the number of entries is sum_v |P(v)|.
	counts := make(map[uint64]int32, nv)
	ckey := func(v graph.VertexID, p int32) uint64 { return uint64(v)<<16 | uint64(uint16(p)) }
	seen := make([]bool, nv)
	err := stream.ForEach(st, func(off int, blk []graph.Edge) error {
		for i, e := range blk {
			p := res.Assign[off+i]
			rs.Add(e.Src, int(p))
			rs.Add(e.Dst, int(p))
			counts[ckey(e.Src, p)]++
			counts[ckey(e.Dst, p)]++
			seen[e.Src] = true
			seen[e.Dst] = true
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}

	pl := &Placement{K: k, NumVertices: nv, Master: make([]int32, nv)}
	scratch := make([]int32, 0, k)
	for v := 0; v < nv; v++ {
		parts := rs.Partitions(graph.VertexID(v), scratch[:0])
		if len(parts) == 0 {
			pl.Master[v] = int32(v % k) // unseen vertex: round-robin master
			continue
		}
		best := parts[0]
		bestCnt := counts[ckey(graph.VertexID(v), best)]
		for _, p := range parts[1:] {
			if c := counts[ckey(graph.VertexID(v), p)]; c > bestCnt {
				best, bestCnt = p, c
			}
		}
		pl.Master[v] = best
	}

	// Build per-node local vertex tables: masters and mirrors both get
	// local slots; unseen vertices get a (edge-less) master slot.
	pl.Nodes = make([]Node, k)
	local := make([]int32, nv*1) // local id of v on the node currently being built; rebuilt per node via epoch trick
	epoch := make([]int32, nv)
	for i := range epoch {
		epoch[i] = -1
	}
	addLocal := func(n *Node, nid int, v graph.VertexID) int32 {
		if epoch[v] == int32(nid) {
			return local[v]
		}
		epoch[v] = int32(nid)
		l := int32(len(n.Global))
		local[v] = l
		n.Global = append(n.Global, v)
		n.IsMaster = append(n.IsMaster, pl.Master[v] == int32(nid))
		return l
	}

	// Group edges by partition first so each node is built contiguously.
	perNode := make([][]graph.Edge, k)
	sizes := make([]int64, k)
	for i := 0; i < numEdges; i++ {
		sizes[res.Assign[i]]++
	}
	for p := 0; p < k; p++ {
		perNode[p] = make([]graph.Edge, 0, sizes[p])
	}
	err = stream.ForEach(st, func(off int, blk []graph.Edge) error {
		for i, e := range blk {
			p := res.Assign[off+i]
			perNode[p] = append(perNode[p], e)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}

	for p := 0; p < k; p++ {
		n := &pl.Nodes[p]
		n.ID = p
		n.Edges = make([]LocalEdge, 0, len(perNode[p]))
		for _, e := range perNode[p] {
			lu := addLocal(n, p, e.Src)
			lv := addLocal(n, p, e.Dst)
			n.Edges = append(n.Edges, LocalEdge{Src: lu, Dst: lv})
		}
	}
	// Unseen vertices: master slot on their round-robin node.
	for v := 0; v < nv; v++ {
		if !seen[v] {
			nid := int(pl.Master[v])
			addLocal(&pl.Nodes[nid], nid, graph.VertexID(v))
		}
	}

	// Sync topology: for every vertex on multiple nodes, link each mirror
	// slot to the master slot. Local ids are recovered by one sweep per
	// node over its Global table.
	masterLocal := make([]int32, nv)
	for i := range masterLocal {
		masterLocal[i] = -1
	}
	for p := range pl.Nodes {
		n := &pl.Nodes[p]
		for l, v := range n.Global {
			if n.IsMaster[l] {
				masterLocal[v] = int32(l)
			}
		}
	}
	for p := range pl.Nodes {
		n := &pl.Nodes[p]
		for l, v := range n.Global {
			pl.Replicas++
			if n.IsMaster[l] {
				continue
			}
			pl.Sync = append(pl.Sync, SyncPair{
				MirrorNode:  int32(p),
				MirrorLocal: int32(l),
				MasterNode:  pl.Master[v],
				MasterLocal: masterLocal[v],
			})
		}
	}
	return pl, nil
}

// MaxLocalEdges returns the largest per-node edge count, the compute
// bottleneck of a superstep.
func (pl *Placement) MaxLocalEdges() int64 {
	var max int64
	for i := range pl.Nodes {
		if n := int64(len(pl.Nodes[i].Edges)); n > max {
			max = n
		}
	}
	return max
}

// ReplicationFactor is sum_v |P(v)| / |V| over this placement, counting
// unseen vertices as a single copy.
func (pl *Placement) ReplicationFactor() float64 {
	if pl.NumVertices == 0 {
		return 0
	}
	return float64(pl.Replicas) / float64(pl.NumVertices)
}
