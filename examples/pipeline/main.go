// Pipeline: step through CLUGP's three restreaming passes with every
// intermediate stage retained - the view a researcher wants when studying
// why the partitioning comes out the way it does.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.GenerateWeb(repro.WebConfig{N: 20000, OutDegree: 8, IntraSite: 0.85, Seed: 5})
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices, g.NumEdges())

	pl, err := repro.RunPipeline(g, repro.PipelineOptions{K: 16, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Pass 1: streaming clustering (allocation-splitting-migration).
	c := pl.Clustering
	fmt.Println("pass 1 - streaming clustering")
	fmt.Printf("  clusters:    %d\n", c.NumClusters)
	fmt.Printf("  splits:      %d\n", c.Splits)
	fmt.Printf("  migrations:  %d\n", c.Migrations)
	divided := 0
	for _, d := range c.Divided {
		if d {
			divided++
		}
	}
	fmt.Printf("  divided:     %d vertices own mirrors after pass 1\n", divided)

	// The cluster graph the game plays on.
	cg := pl.ClusterGraph
	intraFrac := float64(cg.TotalIntra) / float64(cg.TotalIntra+cg.TotalInter)
	fmt.Printf("  intra edges: %d of %d (%.1f%%)\n\n", cg.TotalIntra, g.NumEdges(), 100*intraFrac)

	// Pass 2: the cluster-partitioning potential game.
	fmt.Println("pass 2 - cluster partitioning game")
	fmt.Printf("  batches:     %d\n", pl.Game.Batches)
	fmt.Printf("  rounds:      %d (Theorem 6 bounds this by %d)\n", pl.Game.Rounds, cg.TotalInter)
	fmt.Printf("  moves:       %d strategy changes to reach Nash equilibrium\n\n", pl.Game.Moves)

	// Pass 3: transformation to the edge partitioning.
	q := pl.Result.Quality
	fmt.Println("pass 3 - partition transformation")
	fmt.Printf("  healed:      %.1f%% of inter-cluster edges landed co-partitioned\n", 100*pl.Trace.HealedFraction)
	fmt.Printf("  overflow:    %d edges rerouted by the tau balance guard\n", pl.Trace.Overflowed)
	fmt.Printf("  result:      RF %.3f, balance %.3f over %d partitions\n",
		q.ReplicationFactor, q.RelativeBalance, q.K)
}
