package engine

// LabelPropagation runs synchronous community label propagation over
// the underlying undirected graph as GAS supersteps: each vertex adopts the
// most frequent label among its neighbours (ties to the smaller label),
// until no label changes or maxIters supersteps elapse. It is the second
// iterative workload the paper's introduction motivates ("such as pagerank
// and label propagation").
//
// The gather step needs per-label counts, which do not combine as cheaply
// as sums or minima; each node counts locally and mirrors forward their
// full local histogram entry for the winning label - accounted as one
// message per (mirror, distinct winning label), a faithful approximation of
// PowerGraph's combiner behaviour.
func LabelPropagation(pl *Placement, maxIters int, cost CostModel) ([]uint32, RunStats) {
	cm := cost.withDefaults()
	n := pl.NumVertices
	if maxIters <= 0 {
		maxIters = 20
	}

	label := make([][]uint32, pl.K)
	for i := range pl.Nodes {
		node := &pl.Nodes[i]
		label[i] = make([]uint32, len(node.Global))
		for l, v := range node.Global {
			label[i][l] = uint32(v)
		}
	}

	// Per-node scratch: neighbour label histogram per local vertex, kept as
	// a slice of small maps (labels seen per superstep are few).
	hist := make([]map[int32]map[uint32]int32, pl.K)
	for i := range hist {
		hist[i] = make(map[int32]map[uint32]int32)
	}

	var stats RunStats
	stats.MaxLocalEdges = pl.MaxLocalEdges()

	for it := 0; it < maxIters; it++ {
		var messages int64
		changedAny := false

		// Gather: local histograms over undirected adjacency.
		for i := range pl.Nodes {
			node := &pl.Nodes[i]
			h := hist[i]
			for k := range h {
				delete(h, k)
			}
			lb := label[i]
			bump := func(at int32, lab uint32) {
				m := h[at]
				if m == nil {
					m = make(map[uint32]int32, 4)
					h[at] = m
				}
				m[lab]++
			}
			for _, e := range node.Edges {
				bump(e.Dst, lb[e.Src])
				bump(e.Src, lb[e.Dst])
			}
		}

		// Mirror -> master: ship each mirror's local histogram (bounded by
		// its distinct labels; accounted per entry).
		for _, sp := range pl.Sync {
			src := hist[sp.MirrorNode][sp.MirrorLocal]
			if len(src) == 0 {
				continue
			}
			dst := hist[sp.MasterNode]
			m := dst[sp.MasterLocal]
			if m == nil {
				m = make(map[uint32]int32, len(src))
				dst[sp.MasterLocal] = m
			}
			for lab, c := range src {
				m[lab] += c
				messages++
			}
		}

		// Apply at masters: plurality label, ties to the smaller label;
		// keep the current label unless strictly beaten.
		for i := range pl.Nodes {
			node := &pl.Nodes[i]
			for l := range node.Global {
				if !node.IsMaster[l] {
					continue
				}
				m := hist[i][int32(l)]
				if len(m) == 0 {
					continue
				}
				cur := label[i][l]
				best := cur
				bestCount := m[cur]
				for lab, c := range m {
					if c > bestCount || (c == bestCount && lab < best) {
						best, bestCount = lab, c
					}
				}
				if best != cur {
					label[i][l] = best
					changedAny = true
				}
			}
		}

		// Master -> mirror sync, delta-only.
		for _, sp := range pl.Sync {
			mv := label[sp.MasterNode][sp.MasterLocal]
			if label[sp.MirrorNode][sp.MirrorLocal] != mv {
				label[sp.MirrorNode][sp.MirrorLocal] = mv
				messages++
			}
		}

		stats.accountSuperstep(cm, stats.MaxLocalEdges, messages)
		if !changedAny {
			break
		}
	}

	out := make([]uint32, n)
	for i := range pl.Nodes {
		node := &pl.Nodes[i]
		for l, v := range node.Global {
			if node.IsMaster[l] {
				out[v] = label[i][l]
			}
		}
	}
	return out, stats
}
