package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// Result is the serializable core of a finished vertex-cut partitioning:
// everything a lookup service needs to answer vertex->partition,
// edge-routing and replica-set queries without re-running the partitioner.
// It deliberately omits the O(|E|) per-edge assignment - the replica table
// plus the per-partition sizes determine every query answer - so a saved
// result is O(|V|*k/64 + k) bytes however large the edge stream was.
type Result struct {
	// Algorithm and Order record how the partitioning was produced
	// (bookkeeping for operators; queries do not depend on them).
	Algorithm string
	Order     string
	// K is the partition count; NumVertices the vertex-id space.
	K           int
	NumVertices int
	// NumEdges is the number of edges partitioned; Sizes[p] counts the
	// edges placed in partition p and sums to NumEdges (every edge lands in
	// exactly one partition under the vertex-cut model).
	NumEdges int64
	Sizes    []int64
	// Replicas is P(v) for every vertex: the word-addressable bitset the
	// serving hot path reads.
	Replicas *metrics.ReplicaSets
}

// Result-file limits. Vertex and edge counts share the graph-file bounds
// (checkCounts); the partition count gets its own cap - partition ids
// travel as int32 everywhere in this repository, and a million partitions
// is already far past any deployment, so a bigger k in a header is a forgery
// rather than a configuration.
const (
	maxResultK      = 1 << 20
	maxResultString = 255
)

// ErrBadResultMagic reports that the input is not a result file.
var ErrBadResultMagic = errors.New("store: bad magic (not a CPR1 result file)")

// resultMagic tags result files; "CPR" for Compressed Partition Result.
var resultMagic = [4]byte{'C', 'P', 'R', '1'}

// SniffResultHeader reports whether head (at least 4 bytes) carries the
// result-file magic.
func SniffResultHeader(head []byte) bool {
	return len(head) >= 4 && [4]byte(head[:4]) == resultMagic
}

// WriteResult encodes a finished partitioning to w:
//
//	magic "CPR1" | uvarint nv | uvarint ne | uvarint k |
//	uvarint len(algorithm) | algorithm | uvarint len(order) | order |
//	k x uvarint size | nv*((k+63)/64) x uvarint replica word
//
// All integers are unsigned varints; replica words compress well because
// only the low bits (small partition ids) are typically set. Encoding is
// canonical - WriteResult(ReadResult(f)) reproduces f bit for bit - which
// FuzzReadResult holds as the round-trip invariant.
func WriteResult(w io.Writer, r *Result) error {
	if err := validateResult(r); err != nil {
		return err
	}
	vw := &varintWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	if _, err := vw.bw.Write(resultMagic[:]); err != nil {
		return err
	}
	for _, x := range []uint64{uint64(r.NumVertices), uint64(r.NumEdges), uint64(r.K)} {
		if err := vw.uvarint(x); err != nil {
			return err
		}
	}
	for _, s := range []string{r.Algorithm, r.Order} {
		if err := vw.uvarint(uint64(len(s))); err != nil {
			return err
		}
		if _, err := vw.bw.WriteString(s); err != nil {
			return err
		}
	}
	for _, sz := range r.Sizes {
		if err := vw.uvarint(uint64(sz)); err != nil {
			return err
		}
	}
	words := r.Replicas.Words()
	for v := 0; v < r.NumVertices; v++ {
		for wd := 0; wd < words; wd++ {
			if err := vw.uvarint(r.Replicas.Word(graph.VertexID(v), wd)); err != nil {
				return err
			}
		}
	}
	return vw.bw.Flush()
}

// validateResult rejects inconsistent in-memory results before they reach
// disk, mirroring what ReadResult enforces on the way back in.
func validateResult(r *Result) error {
	if r.K < 1 || r.K > maxResultK {
		return fmt.Errorf("store: result k %d out of range [1, %d]", r.K, maxResultK)
	}
	if len(r.Algorithm) > maxResultString || len(r.Order) > maxResultString {
		return fmt.Errorf("store: result algorithm/order names exceed %d bytes", maxResultString)
	}
	if r.NumVertices < 0 || r.NumEdges < 0 {
		return fmt.Errorf("store: negative result counts (%d vertices, %d edges)", r.NumVertices, r.NumEdges)
	}
	if len(r.Sizes) != r.K {
		return fmt.Errorf("store: result has %d sizes for k=%d", len(r.Sizes), r.K)
	}
	var sum int64
	for p, sz := range r.Sizes {
		if sz < 0 {
			return fmt.Errorf("store: partition %d has negative size %d", p, sz)
		}
		sum += sz
	}
	if sum != r.NumEdges {
		return fmt.Errorf("store: partition sizes sum to %d, result declares %d edges", sum, r.NumEdges)
	}
	if r.Replicas == nil {
		return errors.New("store: result has no replica table")
	}
	if r.Replicas.K() != r.K || r.Replicas.NumVertices() != r.NumVertices {
		return fmt.Errorf("store: replica table geometry %dv/%dk disagrees with result %dv/%dk",
			r.Replicas.NumVertices(), r.Replicas.K(), r.NumVertices, r.K)
	}
	return nil
}

// ReadResult decodes a result file written by WriteResult, validating every
// field before anything is sized from it: forged vertex/edge/partition
// counts, truncated bodies, stray replica bits above k and trailing bytes
// all reject. The allocation for the replica table grows incrementally under
// a cap, so an adversarial header cannot force a giant up-front allocation.
func ReadResult(rd io.Reader) (*Result, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("store: reading result magic: %w", err)
	}
	if m != resultMagic {
		return nil, ErrBadResultMagic
	}
	nv, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: result vertex count: %w", err)
	}
	ne, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: result edge count: %w", err)
	}
	if err := checkCounts(nv, ne); err != nil {
		return nil, err
	}
	k64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: result partition count: %w", err)
	}
	if k64 < 1 || k64 > maxResultK {
		return nil, fmt.Errorf("store: result k %d out of range [1, %d]", k64, maxResultK)
	}
	k := int(k64)
	r := &Result{K: k, NumVertices: int(nv), NumEdges: int64(ne)}
	if r.Algorithm, err = readResultString(br, "algorithm"); err != nil {
		return nil, err
	}
	if r.Order, err = readResultString(br, "order"); err != nil {
		return nil, err
	}
	r.Sizes = make([]int64, k)
	var sum int64
	for p := 0; p < k; p++ {
		sz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: partition %d size: %w", p, err)
		}
		if sz > ne {
			return nil, fmt.Errorf("store: partition %d size %d exceeds declared %d edges", p, sz, ne)
		}
		r.Sizes[p] = int64(sz)
		sum += int64(sz)
	}
	if sum != r.NumEdges {
		return nil, fmt.Errorf("store: partition sizes sum to %d, header declares %d edges", sum, r.NumEdges)
	}
	perVertex := (k + 63) / 64
	need := int(nv) * perVertex
	capHint := need
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	words := make([]uint64, 0, capHint)
	for i := 0; i < need; i++ {
		w, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: replica word %d of %d: %w", i, need, err)
		}
		words = append(words, w)
	}
	rs, err := metrics.NewReplicaSetsFromWords(int(nv), k, words)
	if err != nil {
		return nil, err
	}
	r.Replicas = rs
	// A result file is a complete artifact, not a stream prefix: trailing
	// bytes mean the file was corrupted or concatenated, and accepting them
	// would break the bit-identical round-trip contract.
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("store: after result body: %w", err)
		}
		return nil, errors.New("store: trailing data after result body")
	}
	return r, nil
}

// readResultString decodes one length-prefixed name field.
func readResultString(br *bufio.Reader, field string) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("store: result %s length: %w", field, err)
	}
	if n > maxResultString {
		return "", fmt.Errorf("store: result %s of %d bytes exceeds the %d limit", field, n, maxResultString)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("store: result %s: %w", field, err)
	}
	return string(buf), nil
}
