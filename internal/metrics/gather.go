package metrics

import (
	"math/bits"

	"repro/internal/graph"
)

// This file is the sharded half of the gather -> score -> apply scoring
// pipeline (DESIGN.md "Parallel scoring"): per-batch slot tables that shard
// workers fill and drain, so partitioner scoring loops read contiguous
// batch-local scratch instead of random-walking the flat replica bitset.

// ShardGeometry resolves the effective vertex-range shard layout for n
// vertices split into the requested number of shards: the shard count is
// clamped to n so no shard is empty, span is ceil(n/shards), and the count
// shrinks to the number of spans actually needed (n=257 requested as 64
// shards gives span=5 and 52 shards). It is the single layout rule shared
// by ShardedReplicaSets, ShardedDegrees and the partition scoring pipeline,
// so "shard of v" agrees across all of them: ShardOf(v) = v/span.
// The result is idempotent: ShardGeometry(n, eff) returns (eff, span) again.
func ShardGeometry(n, shards int) (eff, span int) {
	if shards < 1 {
		shards = 1
	}
	if shards > n && n > 0 {
		shards = n
	}
	span = (n + shards - 1) / shards
	if span < 1 {
		span = 1
	}
	if n > 0 {
		eff = (n + span - 1) / span
	} else {
		eff = 1
	}
	return eff, span
}

// GatherTable is the per-batch scratch of the scoring pipeline: a slot-major
// copy of the replica words, cached replica counts and partial degrees of
// one edge batch's distinct vertices. During the gather phase one worker per
// shard fills the slots of the vertices it owns (disjoint slots, so no
// locks); the serial score phase then reads AND writes slots exactly as the
// flat algorithms read and write the authoritative tables - which is what
// preserves intra-batch sequential semantics bit-for-bit - and the apply
// phase stores the mutated slots back to their owning shards.
//
// The table is scratch in the same sense as ReplicaSets: Reset reuses
// storage, and nothing is cleared because the gather phase overwrites every
// word of every live slot (each slot belongs to exactly one shard list).
type GatherTable struct {
	words int
	slots int
	bits  []uint64 // slots x words, slot-major
	cnt   []int32  // |P(v)| per slot, maintained by Load and Set
	deg   []uint32 // partial degree per slot (when tracked)
}

// Reset sizes the table for the given slot count and k partitions,
// reusing storage. withDegrees additionally sizes the degree lane.
// Contents are undefined until gathered - see the type comment.
func (t *GatherTable) Reset(slots, k int, withDegrees bool) {
	t.words = (k + 63) / 64
	t.slots = slots
	if need := slots * t.words; cap(t.bits) < need {
		t.bits = make([]uint64, need)
	} else {
		t.bits = t.bits[:need]
	}
	if cap(t.cnt) < slots {
		t.cnt = make([]int32, slots)
	} else {
		t.cnt = t.cnt[:slots]
	}
	if withDegrees {
		if cap(t.deg) < slots {
			t.deg = make([]uint32, slots)
		} else {
			t.deg = t.deg[:slots]
		}
	}
}

// Words returns the number of 64-bit words per slot, (k+63)/64.
func (t *GatherTable) Words() int { return t.words }

// Slots returns the number of live slots.
func (t *GatherTable) Slots() int { return t.slots }

// Load copies src (one vertex's replica words) into the slot and caches its
// popcount. Called by shard workers on disjoint slots.
func (t *GatherTable) Load(slot int32, src []uint64) {
	dst := t.bits[int(slot)*t.words : (int(slot)+1)*t.words]
	n := 0
	for w, x := range src {
		dst[w] = x
		n += bits.OnesCount64(x)
	}
	t.cnt[slot] = int32(n)
}

// Store copies the slot's replica words into dst (one vertex's words in its
// owning shard). Called by shard workers on disjoint slots.
func (t *GatherTable) Store(slot int32, dst []uint64) {
	copy(dst, t.bits[int(slot)*t.words:(int(slot)+1)*t.words])
}

// Word returns the w-th 64-bit word of the slot's partition set.
func (t *GatherTable) Word(slot int32, w int) uint64 {
	return t.bits[int(slot)*t.words+w]
}

// Has reports whether partition p holds the slot's vertex.
func (t *GatherTable) Has(slot int32, p int) bool {
	return t.bits[int(slot)*t.words+p/64]&(1<<uint(p%64)) != 0
}

// Count returns |P(v)| for the slot's vertex (cached, O(1)).
func (t *GatherTable) Count(slot int32) int { return int(t.cnt[slot]) }

// Set records that partition p holds the slot's vertex, keeping the cached
// count in step. Score-phase only (single goroutine).
func (t *GatherTable) Set(slot int32, p int) {
	i := int(slot)*t.words + p/64
	bit := uint64(1) << uint(p%64)
	if t.bits[i]&bit == 0 {
		t.bits[i] |= bit
		t.cnt[slot]++
	}
}

// Degree returns the slot's partial degree.
func (t *GatherTable) Degree(slot int32) uint32 { return t.deg[slot] }

// SetDegree overwrites the slot's partial degree (gather phase).
func (t *GatherTable) SetDegree(slot int32, d uint32) { t.deg[slot] = d }

// Bump increments the slot's partial degree (score phase).
func (t *GatherTable) Bump(slot int32) { t.deg[slot]++ }

// Partitions appends the partitions holding the slot's vertex to dst.
func (t *GatherTable) Partitions(slot int32, dst []int32) []int32 {
	base := int(slot) * t.words
	for w := 0; w < t.words; w++ {
		word := t.bits[base+w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, int32(w*64+b))
			word &= word - 1
		}
	}
	return dst
}

// Intersect appends the partitions holding both slots' vertices to dst.
func (t *GatherTable) Intersect(su, sv int32, dst []int32) []int32 {
	bu, bv := int(su)*t.words, int(sv)*t.words
	for w := 0; w < t.words; w++ {
		word := t.bits[bu+w] & t.bits[bv+w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, int32(w*64+b))
			word &= word - 1
		}
	}
	return dst
}

// Union appends the partitions holding either slot's vertex to dst.
func (t *GatherTable) Union(su, sv int32, dst []int32) []int32 {
	bu, bv := int(su)*t.words, int(sv)*t.words
	for w := 0; w < t.words; w++ {
		word := t.bits[bu+w] | t.bits[bv+w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, int32(w*64+b))
			word &= word - 1
		}
	}
	return dst
}

// GatherSlots copies each listed vertex's replica words (and cached
// popcount) into its slot of t. All vertices must belong to shard sh;
// workers that own disjoint shards fill disjoint slots, so a one-worker-
// per-shard gather needs no synchronization beyond the phase barrier.
func (s *ShardedReplicaSets) GatherSlots(sh int, verts []graph.VertexID, slots []int32, t *GatherTable) {
	tab := &s.tabs[sh]
	lo := graph.VertexID(sh * s.span)
	w := tab.words
	for i, v := range verts {
		base := int(v-lo) * w
		t.Load(slots[i], tab.bits[base:base+w])
	}
}

// ApplySlots stores each listed slot's (possibly score-mutated) replica
// words back to the vertices shard sh owns - the inverse of GatherSlots.
func (s *ShardedReplicaSets) ApplySlots(sh int, verts []graph.VertexID, slots []int32, t *GatherTable) {
	tab := &s.tabs[sh]
	lo := graph.VertexID(sh * s.span)
	w := tab.words
	for i, v := range verts {
		base := int(v-lo) * w
		t.Store(slots[i], tab.bits[base:base+w])
	}
}

// ShardStat describes one vertex-range shard of a sharded replica table:
// its range, how many of its vertices hold at least one replica bit,
// the total bits set, and the bytes the shard's bitset owns. The skew
// view behind clugp -trace.
type ShardStat struct {
	// Lo and Hi bound the vertex range [Lo, Hi) the shard owns.
	Lo, Hi int
	// Occupied is the number of vertices in the range with |P(v)| > 0.
	Occupied int
	// Replicas is sum |P(v)| over the shard's vertices.
	Replicas int64
	// Bytes is the shard's bitset footprint.
	Bytes int64
}

// ShardStats walks every shard's bitset and returns per-shard occupancy -
// an O(|V|·k/64) scan, for diagnostics, not hot paths.
func (s *ShardedReplicaSets) ShardStats() []ShardStat {
	out := make([]ShardStat, s.shards)
	for i := range s.tabs {
		tab := &s.tabs[i]
		st := &out[i]
		st.Lo, st.Hi = s.ShardRange(i)
		st.Bytes = tab.Bytes()
		for v := 0; v < st.Hi-st.Lo; v++ {
			n := 0
			for _, w := range tab.bits[v*tab.words : (v+1)*tab.words] {
				n += bits.OnesCount64(w)
			}
			if n > 0 {
				st.Occupied++
				st.Replicas += int64(n)
			}
		}
	}
	return out
}

// ShardedDegrees is a per-vertex degree table split by vertex range with
// the same layout rule as ShardedReplicaSets (ShardGeometry), so one
// worker fleet owns matching shards of both. It backs HDRF's partial
// degrees in the scoring pipeline.
type ShardedDegrees struct {
	n, shards, span int
	tabs            [][]uint32
}

// Reset clears and resizes the table for n vertices in the given number of
// vertex-range shards, reusing per-shard storage when large enough.
func (d *ShardedDegrees) Reset(n, shards int) {
	d.shards, d.span = ShardGeometry(n, shards)
	d.n = n
	if cap(d.tabs) < d.shards {
		tabs := make([][]uint32, d.shards)
		copy(tabs, d.tabs)
		d.tabs = tabs
	}
	d.tabs = d.tabs[:d.shards]
	for i := 0; i < d.shards; i++ {
		lo, hi := d.ShardRange(i)
		need := hi - lo
		if cap(d.tabs[i]) < need {
			d.tabs[i] = make([]uint32, need)
		} else {
			d.tabs[i] = d.tabs[i][:need]
			clear(d.tabs[i])
		}
	}
}

// NumShards returns the shard count.
func (d *ShardedDegrees) NumShards() int { return d.shards }

// ShardRange returns the vertex range [lo, hi) shard i owns.
func (d *ShardedDegrees) ShardRange(i int) (lo, hi int) {
	lo = i * d.span
	hi = lo + d.span
	if hi > d.n {
		hi = d.n
	}
	return lo, hi
}

// Degree returns vertex v's accumulated degree.
func (d *ShardedDegrees) Degree(v graph.VertexID) uint32 {
	sh := int(v) / d.span
	return d.tabs[sh][int(v)-sh*d.span]
}

// GatherSlots copies each listed vertex's degree into its slot's degree
// lane. All vertices must belong to shard sh.
func (d *ShardedDegrees) GatherSlots(sh int, verts []graph.VertexID, slots []int32, t *GatherTable) {
	tab := d.tabs[sh]
	lo := graph.VertexID(sh * d.span)
	for i, v := range verts {
		t.SetDegree(slots[i], tab[v-lo])
	}
}

// ApplySlots stores each listed slot's degree back to shard sh.
func (d *ShardedDegrees) ApplySlots(sh int, verts []graph.VertexID, slots []int32, t *GatherTable) {
	tab := d.tabs[sh]
	lo := graph.VertexID(sh * d.span)
	for i, v := range verts {
		tab[v-lo] = t.Degree(slots[i])
	}
}

// Bytes returns the memory footprint of the table (all shards).
func (d *ShardedDegrees) Bytes() int64 {
	var b int64
	for i := range d.tabs {
		b += int64(len(d.tabs[i])) * 4
	}
	return b
}
