package store

import (
	"bufio"
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
)

// Format identifies an on-disk graph encoding. The four magic bytes at the
// start of every file carry it, so readers are self-describing: Open,
// OpenMmap, Read and NewReader accept either format transparently and
// report which one they found.
type Format uint8

const (
	// FormatCGR1 is the original encoding: per edge, a zig-zag varint
	// source gap and a zig-zag varint target offset from the source.
	FormatCGR1 Format = iota + 1
	// FormatCGR2 is the compressed v2 encoding: edges are grouped into
	// maximal same-source runs with a packed run header (zig-zag source gap
	// and run length in one varint), and targets are coded as interval
	// tokens (runs of consecutive ids collapse to two varints) and residual
	// gap tokens relative to the previous target. On crawl-ordered web
	// graphs it cuts bytes/edge by 30-50% versus CGR1. See DESIGN.md for
	// the exact bit layout.
	FormatCGR2
	// FormatCGR3 is CGR2 plus integrity: the body encoding is bit-for-bit
	// CGR2, followed by a CRC32C block-checksum trailer and footer (see
	// integrity.go) that let every backend detect bit flips, torn writes
	// and truncation instead of decoding garbage. Sources over CGR3 files
	// verify lazily on the decode path and support Verify().
	FormatCGR3
)

// String returns the format's magic name.
func (f Format) String() string {
	switch f {
	case FormatCGR1:
		return "CGR1"
	case FormatCGR2:
		return "CGR2"
	case FormatCGR3:
		return "CGR3"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// ParseFormat maps a format name ("cgr1"/"CGR1", "cgr2"/"CGR2",
// "cgr3"/"CGR3") to its Format - the one parser every CLI flag goes through.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "cgr1", "CGR1":
		return FormatCGR1, nil
	case "cgr2", "CGR2":
		return FormatCGR2, nil
	case "cgr3", "CGR3":
		return FormatCGR3, nil
	}
	return 0, fmt.Errorf("store: unknown format %q (want cgr1, cgr2 or cgr3)", s)
}

var (
	magic  = [4]byte{'C', 'G', 'R', '1'}
	magic2 = [4]byte{'C', 'G', 'R', '2'}
	magic3 = [4]byte{'C', 'G', 'R', '3'}
)

// formatOfMagic maps a graph-file magic to its Format.
func formatOfMagic(m [4]byte) (Format, bool) {
	switch m {
	case magic:
		return FormatCGR1, true
	case magic2:
		return FormatCGR2, true
	case magic3:
		return FormatCGR3, true
	}
	return 0, false
}

// magicOf returns the graph-file magic of a format.
func magicOf(f Format) [4]byte {
	switch f {
	case FormatCGR2:
		return magic2
	case FormatCGR3:
		return magic3
	}
	return magic
}

// SniffHeader reports whether head starts with any graph format's magic.
func SniffHeader(head []byte) bool {
	if len(head) < 4 {
		return false
	}
	_, ok := formatOfMagic([4]byte(head[:4]))
	return ok
}

// readHeader consumes the magic and declared counts from the cursor,
// validating them before anything is sized from them.
func readHeader(c *cursor) (Format, int, int, error) {
	var m [4]byte
	if err := c.readFull(m[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("store: reading magic: %w", err)
	}
	format, ok := formatOfMagic(m)
	if !ok {
		return 0, 0, 0, ErrBadMagic
	}
	nv, err := c.uvarint()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("store: reading vertex count: %w", err)
	}
	ne, err := c.uvarint()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("store: reading edge count: %w", err)
	}
	if err := checkCounts(nv, ne); err != nil {
		return 0, 0, 0, err
	}
	return format, int(nv), int(ne), nil
}

// checkCounts rejects header counts no valid file can carry before anything
// is sized from them: vertex ids must fit the uint32 VertexID space, and a
// declared edge count beyond what varint encoding could physically fit in
// any file (or that would overflow int) means a corrupt or adversarial
// header rather than a graph.
func checkCounts(nv, ne uint64) error {
	if nv > 1<<32 {
		return fmt.Errorf("store: vertex count %d exceeds uint32 space", nv)
	}
	if ne > 1<<56 {
		return fmt.Errorf("store: edge count %d is implausible (corrupt header?)", ne)
	}
	return nil
}

// decState is the delta-decoder state between two edges - everything beyond
// the byte offset that a seek must restore. CGR1 uses prevSrc only; CGR2
// additionally tracks the position inside the current source run and any
// in-flight interval token. Token boundaries never split across edges, so
// (offset, decState) at any edge boundary is a complete resume point.
type decState struct {
	// prevSrc is the previous edge's source (CGR1) or the current run's
	// source (CGR2; run headers encode gaps between run sources).
	prevSrc int64
	// prevDst is the previous target within the current run (CGR2).
	prevDst int64
	// runLeft counts targets remaining in the current run (CGR2).
	runLeft int
	// ivLeft counts targets remaining in the current interval token (CGR2).
	ivLeft int
}

// decoder decodes edges of either format from a cursor. It is the single
// decode core shared by every backend: FileSource wraps it around a
// read-at cursor, MmapSource around the mapped bytes, Reader around a
// sequential window.
type decoder struct {
	cur    cursor
	st     decState
	format Format
	nv     int64
	ne     int64
}

// seek positions the decoder at a byte offset with the given state.
func (d *decoder) seek(off int64, st decState) {
	d.cur.seek(off)
	d.st = st
}

// next decodes the edge at stream index i. CGR3 shares the CGR2 body
// encoding; only the trailer differs, and the cursor is bounded to the
// payload so the decoder never sees it.
func (d *decoder) next(i int) (graph.Edge, error) {
	if d.format == FormatCGR1 {
		return d.nextCGR1(i)
	}
	return d.nextCGR2(i)
}

func (d *decoder) nextCGR1(i int) (graph.Edge, error) {
	dSrc, err := d.cur.varint()
	if err != nil {
		return graph.Edge{}, fmt.Errorf("store: edge %d src: %w", i, err)
	}
	src := d.st.prevSrc + dSrc
	dDst, err := d.cur.varint()
	if err != nil {
		return graph.Edge{}, fmt.Errorf("store: edge %d dst: %w", i, err)
	}
	dst := src + dDst
	if src < 0 || dst < 0 || src >= d.nv || dst >= d.nv {
		return graph.Edge{}, fmt.Errorf("store: edge %d (%d->%d) out of range (n=%d)", i, src, dst, d.nv)
	}
	d.st.prevSrc = src
	return graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)}, nil
}

// cgr2RunInline is the largest run length the packed header carries inline;
// longer runs spill the remainder into a follow-up varint.
const cgr2RunInline = 15

func (d *decoder) nextCGR2(i int) (graph.Edge, error) {
	st := &d.st
	// Mid-interval: the token was consumed whole, the state replays it.
	if st.ivLeft > 0 {
		return d.stepInterval(i)
	}
	// Run boundary: decode the packed header (source gap + run length).
	if st.runLeft == 0 {
		h, err := d.cur.uvarint()
		if err != nil {
			return graph.Edge{}, fmt.Errorf("store: edge %d run header: %w", i, err)
		}
		src := st.prevSrc + unzigzag(h>>4) + 1
		if src < 0 || src >= d.nv {
			return graph.Edge{}, fmt.Errorf("store: edge %d run source %d out of range (n=%d)", i, src, d.nv)
		}
		runLen := int64(h&cgr2RunInline) + 1
		if h&cgr2RunInline == cgr2RunInline {
			extra, err := d.cur.uvarint()
			if err != nil {
				return graph.Edge{}, fmt.Errorf("store: edge %d run length: %w", i, err)
			}
			if extra > uint64(d.ne) {
				return graph.Edge{}, fmt.Errorf("store: edge %d run length %d past declared edge count %d", i, extra, d.ne)
			}
			runLen = cgr2RunInline + 1 + int64(extra)
		}
		if runLen > d.ne-int64(i) {
			return graph.Edge{}, fmt.Errorf("store: edge %d run of %d exceeds declared edge count %d", i, runLen, d.ne)
		}
		st.prevSrc = src
		st.prevDst = src // targets are relative to the source initially
		st.runLeft = int(runLen)
	}
	// Target token: 0 starts an interval (consecutive ids), anything else
	// is a single target at gap unzigzag(T-1) from the previous one.
	t, err := d.cur.uvarint()
	if err != nil {
		return graph.Edge{}, fmt.Errorf("store: edge %d target: %w", i, err)
	}
	if t == 0 {
		c, err := d.cur.uvarint()
		if err != nil {
			return graph.Edge{}, fmt.Errorf("store: edge %d interval: %w", i, err)
		}
		if c < 1 || c > uint64(st.runLeft) {
			return graph.Edge{}, fmt.Errorf("store: edge %d interval of %d exceeds run remainder %d", i, c, st.runLeft)
		}
		st.ivLeft = int(c)
		return d.stepInterval(i)
	}
	dst := st.prevDst + unzigzag(t-1)
	if dst < 0 || dst >= d.nv {
		return graph.Edge{}, fmt.Errorf("store: edge %d (%d->%d) out of range (n=%d)", i, st.prevSrc, dst, d.nv)
	}
	st.prevDst = dst
	st.runLeft--
	return graph.Edge{Src: graph.VertexID(st.prevSrc), Dst: graph.VertexID(dst)}, nil
}

// stepInterval emits the next target of an in-flight interval token.
func (d *decoder) stepInterval(i int) (graph.Edge, error) {
	st := &d.st
	dst := st.prevDst + 1
	if dst >= d.nv {
		return graph.Edge{}, fmt.Errorf("store: edge %d interval target %d out of range (n=%d)", i, dst, d.nv)
	}
	st.prevDst = dst
	st.ivLeft--
	st.runLeft--
	return graph.Edge{Src: graph.VertexID(st.prevSrc), Dst: graph.VertexID(dst)}, nil
}

// varintWriter wraps a buffered writer with varint emission.
type varintWriter struct {
	bw  *bufio.Writer
	tmp [binary.MaxVarintLen64]byte
}

func (w *varintWriter) uvarint(x uint64) error {
	n := binary.PutUvarint(w.tmp[:], x)
	_, err := w.bw.Write(w.tmp[:n])
	return err
}

func (w *varintWriter) varint(x int64) error {
	return w.uvarint(zigzag(x))
}

// writeHeader emits the magic and counts for g in the given format.
func (w *varintWriter) writeHeader(f Format, g *graph.Graph) error {
	m := magicOf(f)
	if _, err := w.bw.Write(m[:]); err != nil {
		return err
	}
	if err := w.uvarint(uint64(g.NumVertices)); err != nil {
		return err
	}
	return w.uvarint(uint64(g.NumEdges()))
}

// encodeCGR1 writes the per-edge gap encoding (the original format).
func encodeCGR1(w *varintWriter, edges []graph.Edge) error {
	prevSrc := int64(0)
	for _, e := range edges {
		src := int64(e.Src)
		if err := w.varint(src - prevSrc); err != nil {
			return err
		}
		if err := w.varint(int64(e.Dst) - src); err != nil {
			return err
		}
		prevSrc = src
	}
	return nil
}

// encodeCGR2 writes the run/interval/residual encoding. Edge order is
// preserved exactly - order is semantic for streaming partitioners - so
// interval tokens only fire on targets that are already consecutive in the
// stream; nothing is sorted.
func encodeCGR2(w *varintWriter, edges []graph.Edge) error {
	prevSrc := int64(0)
	for i := 0; i < len(edges); {
		// Maximal same-source run.
		j := i + 1
		for j < len(edges) && edges[j].Src == edges[i].Src {
			j++
		}
		src := int64(edges[i].Src)
		runLen := j - i
		// Packed header: zig-zag source gap (biased by the common +1 step
		// between consecutive vertices) in the high bits, run length in the
		// low 4, overflowing into a follow-up varint.
		gapz := zigzag(src - prevSrc - 1)
		if runLen-1 >= cgr2RunInline {
			if err := w.uvarint(gapz<<4 | cgr2RunInline); err != nil {
				return err
			}
			if err := w.uvarint(uint64(runLen - 1 - cgr2RunInline)); err != nil {
				return err
			}
		} else {
			if err := w.uvarint(gapz<<4 | uint64(runLen-1)); err != nil {
				return err
			}
		}
		prevSrc = src
		// Targets: intervals of consecutive ids collapse to (0, count);
		// residuals cost their gap from the previous target, zig-zagged and
		// shifted up by one to keep 0 free as the interval marker.
		prevDst := src
		for p := i; p < j; {
			dst := int64(edges[p].Dst)
			if dst == prevDst+1 {
				c := 1
				for p+c < j && int64(edges[p+c].Dst) == dst+int64(c) {
					c++
				}
				if c >= 2 {
					if err := w.uvarint(0); err != nil {
						return err
					}
					if err := w.uvarint(uint64(c)); err != nil {
						return err
					}
					prevDst = dst + int64(c-1)
					p += c
					continue
				}
			}
			if err := w.uvarint(zigzag(dst-prevDst) + 1); err != nil {
				return err
			}
			prevDst = dst
			p++
		}
		i = j
	}
	return nil
}
