package stream

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func lineGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
	}
	return graph.New(n, edges)
}

// multiset collects edge counts so reorderings can be compared.
func multiset(edges []graph.Edge) map[graph.Edge]int {
	m := make(map[graph.Edge]int, len(edges))
	for _, e := range edges {
		m[e]++
	}
	return m
}

func sameMultiset(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	ma := multiset(a)
	for _, e := range b {
		ma[e]--
	}
	for _, c := range ma {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestOrderString(t *testing.T) {
	for _, o := range []Order{Natural, BFS, DFS, Random} {
		back, err := ParseOrder(o.String())
		if err != nil {
			t.Fatal(err)
		}
		if back != o {
			t.Fatalf("roundtrip %v -> %v", o, back)
		}
	}
	if _, err := ParseOrder("bogus"); err == nil {
		t.Fatal("bogus order accepted")
	}
}

func TestNaturalAliases(t *testing.T) {
	g := lineGraph(5)
	edges := Edges(g, Natural, 0)
	if &edges[0] != &g.Edges[0] {
		t.Fatal("Natural should alias graph storage")
	}
}

func TestAllOrdersPreserveMultiset(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 500, OutDegree: 4, CopyFactor: 0.5, Seed: 3})
	for _, o := range []Order{Natural, BFS, DFS, Random} {
		edges := Edges(g, o, 42)
		if !sameMultiset(g.Edges, edges) {
			t.Fatalf("%v order changed the edge multiset", o)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 200, OutDegree: 4, CopyFactor: 0.5, Seed: 3})
	a := Edges(g, Random, 7)
	b := Edges(g, Random, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different shuffles")
		}
	}
	c := Edges(g, Random, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical shuffles")
	}
}

func TestBFSOrderOnLine(t *testing.T) {
	// On a path graph starting at vertex 0, BFS must emit edges in path
	// order.
	g := lineGraph(10)
	edges := Edges(g, BFS, 0)
	for i, e := range edges {
		if int(e.Src) != i || int(e.Dst) != i+1 {
			t.Fatalf("BFS edge %d = %v, want (%d,%d)", i, e, i, i+1)
		}
	}
}

// TestBFSPrefixConnectivity checks the defining property of a crawl order:
// every prefix of the stream touches a connected region per component seed.
func TestBFSPrefixConnectivity(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 2000, OutDegree: 5, CopyFactor: 0.6, Seed: 1})
	edges := Edges(g, BFS, 0)
	// Union-find over the prefix: each new edge must touch a vertex already
	// seen, or start a new component (new crawl seed).
	seen := make(map[graph.VertexID]bool)
	components := 0
	for _, e := range edges {
		su, sv := seen[e.Src], seen[e.Dst]
		if !su && !sv {
			components++
		}
		seen[e.Src] = true
		seen[e.Dst] = true
	}
	// The copying-model graph is generated connected-ish; allow a few
	// seeds, but a shuffled stream would have thousands.
	if components > 20 {
		t.Fatalf("BFS stream opened %d fresh components; not a crawl order", components)
	}
}

func TestDFSDiffersFromBFS(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 1000, OutDegree: 5, CopyFactor: 0.6, Seed: 5})
	b := Edges(g, BFS, 0)
	d := Edges(g, DFS, 0)
	same := true
	for i := range b {
		if b[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("DFS and BFS orders identical on a branching graph")
	}
}

func TestOrdersCoverDisconnectedGraphs(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 5, Dst: 6}, {Src: 3, Dst: 3}}
	g := graph.New(8, edges)
	for _, o := range []Order{BFS, DFS} {
		out := Edges(g, o, 0)
		if !sameMultiset(edges, out) {
			t.Fatalf("%v dropped edges on disconnected graph: %v", o, out)
		}
	}
}

func TestEdgesEmptyGraph(t *testing.T) {
	g := graph.New(3, nil)
	for _, o := range []Order{Natural, BFS, DFS, Random} {
		if out := Edges(g, o, 0); len(out) != 0 {
			t.Fatalf("%v produced %d edges from empty graph", o, len(out))
		}
	}
}

// TestViewMatchesEdges: for every order, indexed iteration over the view
// must yield exactly the slice Edges materializes.
func TestViewMatchesEdges(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 800, OutDegree: 5, CopyFactor: 0.5, Seed: 11})
	for _, o := range []Order{Natural, BFS, DFS, Random} {
		v := NewView(g, o, 17)
		edges := Edges(g, o, 17)
		if v.Len() != len(edges) {
			t.Fatalf("%v: view length %d != %d", o, v.Len(), len(edges))
		}
		for i := range edges {
			if v.At(i) != edges[i] {
				t.Fatalf("%v: view[%d] = %v, want %v", o, i, v.At(i), edges[i])
			}
		}
		if o == Natural && v.Perm() != nil {
			t.Fatal("natural view carries a permutation")
		}
		if o != Natural && v.Perm() == nil {
			t.Fatalf("%v view is not permutation-backed", o)
		}
	}
}

// TestViewSlice: slicing a view must agree with slicing the materialized
// stream, for natural and permuted views alike.
func TestViewSlice(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 500, OutDegree: 4, CopyFactor: 0.5, Seed: 12})
	for _, o := range []Order{Natural, Random} {
		v := NewView(g, o, 3)
		edges := v.Materialize()
		lo, hi := 7, len(edges)-9
		sub := v.Slice(lo, hi)
		if sub.Len() != hi-lo {
			t.Fatalf("%v: sub length %d, want %d", o, sub.Len(), hi-lo)
		}
		for i := 0; i < sub.Len(); i++ {
			if sub.At(i) != edges[lo+i] {
				t.Fatalf("%v: sub[%d] = %v, want %v", o, i, sub.At(i), edges[lo+i])
			}
		}
	}
}

// TestViewOrderBytes: a permuted view owns 4 bytes per edge of ordering
// state, a natural view none.
func TestViewOrderBytes(t *testing.T) {
	g := gen.Web(gen.WebConfig{N: 300, OutDegree: 4, Seed: 13})
	if got := NewView(g, Natural, 0).OrderBytes(); got != 0 {
		t.Fatalf("natural OrderBytes = %d, want 0", got)
	}
	if got, want := NewView(g, BFS, 0).OrderBytes(), int64(g.NumEdges())*4; got != want {
		t.Fatalf("BFS OrderBytes = %d, want %d", got, want)
	}
}

func TestPermutedExplicit(t *testing.T) {
	base := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}
	v := Permuted(base, []int32{2, 0})
	if v.Len() != 2 || v.At(0) != base[2] || v.At(1) != base[0] {
		t.Fatalf("permuted view wrong: len=%d", v.Len())
	}
	m := v.Materialize()
	if len(m) != 2 || m[0] != base[2] {
		t.Fatal("materialize mismatch")
	}
}
