package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/stream"
)

// Config controls experiment scale and scope.
type Config struct {
	// Scale multiplies dataset sizes (1.0 = default experiment size).
	Scale float64
	// Ks is the partition-count sweep (default 4..256 in powers of two,
	// the paper's x-axis).
	Ks []int
	// Seed drives every stochastic component.
	Seed uint64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer

	// cache memoizes stream orders across the many runs an experiment
	// makes over the same graph; withDefaults installs one per experiment.
	cache *stream.Cache
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{4, 8, 16, 32, 64, 128, 256}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.cache == nil {
		c.cache = stream.NewCache()
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// run partitions g with the named algorithm, returning the full result.
func (c Config) run(name string, g *graph.Graph, k int) (*partition.Result, error) {
	p, err := partition.New(name, c.Seed)
	if err != nil {
		return nil, err
	}
	res, err := partition.RunCached(p, g, k, c.Seed, c.cache)
	if err != nil {
		return nil, err
	}
	c.logf("  %-8s k=%-4d RF=%.3f bal=%.3f t=%v", name, k, res.Quality.ReplicationFactor, res.Quality.RelativeBalance, res.Runtime.Round(time.Millisecond))
	return res, nil
}

// algos is the plotting order of the paper's figures.
var algos = []string{"HDRF", "Greedy", "Hashing", "DBH", "Mint", "CLUGP"}

// Fig3 regenerates Figure 3 (a-d): replication factor vs number of
// partitions on the four web graphs, for all six algorithms.
func Fig3(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	var tables []Table
	for i, ds := range WebDatasets() {
		g := ds.Build(cfg.Scale)
		cfg.logf("fig3: %s (%d vertices, %d edges)", ds.Name, g.NumVertices, g.NumEdges())
		t := Table{
			ID:     fmt.Sprintf("fig3%c", 'a'+i),
			Title:  fmt.Sprintf("Replication factor vs #partitions (%s)", ds.Name),
			Header: append([]string{"k"}, algos...),
			Note:   fmt.Sprintf("synthetic stand-in for %s at scale %.2f", ds.Paper, cfg.Scale),
		}
		for _, k := range cfg.Ks {
			row := []string{fmt.Sprintf("%d", k)}
			for _, a := range algos {
				res, err := cfg.run(a, g, k)
				if err != nil {
					return nil, fmt.Errorf("fig3 %s %s k=%d: %w", ds.Name, a, k, err)
				}
				row = append(row, f3(res.Quality.ReplicationFactor))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig4 regenerates Figure 4: (a) replication factor vs #partitions on the
// Twitter social graph for HDRF and CLUGP; (b) total task runtime
// (partitioning wall time + simulated PageRank makespan) at 32 partitions.
func Fig4(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	ds, err := DatasetByName("Twitter")
	if err != nil {
		return nil, err
	}
	g := ds.Build(cfg.Scale)
	cfg.logf("fig4: Twitter (%d vertices, %d edges)", g.NumVertices, g.NumEdges())

	a := Table{
		ID:     "fig4a",
		Title:  "Replication factor vs #partitions (Twitter)",
		Header: []string{"k", "HDRF", "CLUGP"},
		Note:   "social graph: the paper reports CLUGP slightly behind HDRF here",
	}
	for _, k := range cfg.Ks {
		row := []string{fmt.Sprintf("%d", k)}
		for _, alg := range []string{"HDRF", "CLUGP"} {
			res, err := cfg.run(alg, g, k)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(res.Quality.ReplicationFactor))
		}
		a.AddRow(row...)
	}

	b := Table{
		ID:     "fig4b",
		Title:  "Total task runtime, 32 partitions on Twitter (s)",
		Header: []string{"algorithm", "partition(s)", "pagerank(s)", "total(s)"},
		Note: "pagerank time is the simulated distributed makespan (10 iterations); " +
			"the paper's CLUGP-wins-total claim needs billion-edge scale, where HDRF's " +
			"partitioning dominates - at this scale both partitioners are sub-second (see fig7/fig10a for the k-scaling that drives it)",
	}
	for _, alg := range []string{"CLUGP", "HDRF"} {
		res, err := cfg.run(alg, g, 32)
		if err != nil {
			return nil, err
		}
		pl, err := engine.NewPlacement(res)
		if err != nil {
			return nil, err
		}
		_, stats, err := engine.PageRank(pl, engine.PageRankConfig{Iterations: 10})
		if err != nil {
			return nil, err
		}
		b.AddRow(alg,
			f3(res.Runtime.Seconds()),
			f3(stats.SimTime.Seconds()),
			f3(res.Runtime.Seconds()+stats.SimTime.Seconds()))
	}
	return []Table{a, b}, nil
}

// Fig5 regenerates Figure 5: replication factor across sampled graph sizes
// (random vertex samples of the UK graph), all algorithms, 32 partitions.
func Fig5(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	ds, err := DatasetByName("UK")
	if err != nil {
		return nil, err
	}
	base := ds.Build(cfg.Scale)
	fractions := []float64{0.05, 0.15, 0.4, 1.0}
	t := Table{
		ID:     "fig5",
		Title:  "Replication factor vs sampled graph size (UK, k=32)",
		Header: append([]string{"sample(|V|,|E|)"}, algos...),
		Note:   "random vertex-induced samples, mirroring the paper's 10K..60M sweep",
	}
	for _, f := range fractions {
		g := base
		if f < 1.0 {
			g = gen.SampleVertices(base, f, cfg.Seed)
		}
		cfg.logf("fig5: sample %.2f -> %d vertices, %d edges", f, g.NumVertices, g.NumEdges())
		row := []string{fmt.Sprintf("%d,%d", g.NumVertices, g.NumEdges())}
		for _, a := range algos {
			res, err := cfg.run(a, g, 32)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(res.Quality.ReplicationFactor))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// Fig6 regenerates Figure 6: partitioner memory cost vs #partitions on IT,
// using each algorithm's state-size model (StateBytes) - the same
// accounting the paper applies (algorithm state, not input).
func Fig6(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	ds, err := DatasetByName("IT")
	if err != nil {
		return nil, err
	}
	g := ds.Build(cfg.Scale)
	t := Table{
		ID:     "fig6",
		Title:  "Partitioner state memory vs #partitions (IT, MB)",
		Header: append([]string{"k"}, algos...),
		Note:   "heuristic methods carry the per-vertex replica table (grows with k); CLUGP carries the two O(|V|) mapping tables",
	}
	for _, k := range cfg.Ks {
		row := []string{fmt.Sprintf("%d", k)}
		for _, a := range algos {
			p, err := partition.New(a, cfg.Seed)
			if err != nil {
				return nil, err
			}
			var bytes int64
			if s, ok := p.(partition.StateSizer); ok {
				bytes = s.StateBytes(g.NumVertices, g.NumEdges(), k)
			}
			row = append(row, mb(bytes))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// Fig7 regenerates Figure 7 (a-b): partitioning wall-clock runtime vs
// #partitions on UK and IT. Absolute values are hardware-specific; the
// reproduction target is the shape: HDRF/Greedy grow with k, the hashing
// methods and CLUGP stay nearly flat.
func Fig7(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	var tables []Table
	for i, name := range []string{"UK", "IT"} {
		ds, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := ds.Build(cfg.Scale)
		cfg.logf("fig7: %s (%d vertices, %d edges)", ds.Name, g.NumVertices, g.NumEdges())
		t := Table{
			ID:     fmt.Sprintf("fig7%c", 'a'+i),
			Title:  fmt.Sprintf("Partitioning runtime vs #partitions (%s, ms)", name),
			Header: append([]string{"k"}, algos...),
		}
		for _, k := range cfg.Ks {
			row := []string{fmt.Sprintf("%d", k)}
			for _, a := range algos {
				res, err := cfg.run(a, g, k)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.1f", float64(res.Runtime.Microseconds())/1000))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
