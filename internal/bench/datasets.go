// Package bench is the experiment harness: it holds the dataset registry
// standing in for the paper's crawls and one runner per table/figure of the
// evaluation section (Section VI). cmd/experiments is its CLI; the root
// bench_test.go exposes the same runs as testing.B benchmarks.
package bench

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Dataset is a synthetic stand-in for one of the paper's graphs. Build is
// deterministic for a given scale; scale 1.0 is the default experiment
// size (laptop-scale, roughly 1/700 of the real crawl), and smaller scales
// shrink the vertex count proportionally for quick runs.
type Dataset struct {
	// Name matches the paper's alias (UK, Arabic, WebBase, IT, Twitter).
	Name string
	// Paper describes the original: source, |V|, |E|.
	Paper string
	// Kind is "web" or "social".
	Kind string
	// Build generates the graph at the given scale.
	Build func(scale float64) *graph.Graph
}

// Datasets returns the five evaluation graphs (Table III). The shapes
// mirror the originals' mean degrees: UK is moderate-degree and highly
// clusterable; Arabic denser; WebBase large and sparse; IT the densest and
// largest by edges; Twitter is the social graph with hubs but no site
// locality.
func Datasets() []Dataset {
	web := func(n, out, site int, intra, copyf float64, seed uint64) func(float64) *graph.Graph {
		return func(scale float64) *graph.Graph {
			nv := int(float64(n) * scale)
			if nv < 100 {
				nv = 100
			}
			return gen.Web(gen.WebConfig{
				N: nv, OutDegree: out, SiteMean: site,
				IntraSite: intra, CopyFactor: copyf, Seed: seed,
			})
		}
	}
	return []Dataset{
		{
			Name:  "UK",
			Paper: "uk-2002: 19M vertices, 0.3B edges (mean degree 16)",
			Kind:  "web",
			Build: web(30000, 8, 150, 0.88, 0.6, 1001),
		},
		{
			Name:  "Arabic",
			Paper: "arabic-2005: 22M vertices, 0.6B edges (mean degree 29)",
			Kind:  "web",
			Build: web(25000, 15, 120, 0.90, 0.6, 1002),
		},
		{
			Name:  "WebBase",
			Paper: "webbase-2001: 118M vertices, 1.0B edges (mean degree 9)",
			Kind:  "web",
			Build: web(80000, 5, 200, 0.85, 0.55, 1003),
		},
		{
			Name:  "IT",
			Paper: "it-2004: 41M vertices, 1.5B edges (mean degree 36)",
			Kind:  "web",
			Build: web(35000, 18, 150, 0.88, 0.65, 1004),
		},
		{
			Name:  "Twitter",
			Paper: "twitter: 41M vertices, 1.4B edges, social graph",
			Kind:  "social",
			// Social graphs have extreme hubs and only weak community
			// structure (follower communities are large and diffuse); the
			// web model with a low intra-community share and heavy copying
			// reproduces exactly the regime where the paper reports CLUGP
			// falling slightly behind HDRF.
			Build: web(30000, 18, 400, 0.40, 0.85, 1005),
		},
	}
}

// DatasetByName returns the named dataset or an error listing valid names.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("bench: unknown dataset %q (want UK, Arabic, WebBase, IT or Twitter)", name)
}

// WebDatasets returns only the four web graphs (the Figure 3/7/8 set).
func WebDatasets() []Dataset {
	all := Datasets()
	web := all[:0:0]
	for _, d := range all {
		if d.Kind == "web" {
			web = append(web, d)
		}
	}
	return web
}
