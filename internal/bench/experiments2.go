package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Fig8 regenerates Figure 8 (a-c): PageRank on the simulated PowerGraph
// engine over 32 nodes. (a) communication volume per dataset, (b) runtime
// per dataset, (c) runtime vs injected network RTT on IT.
func Fig8(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	const k = 32
	const iters = 10

	a := Table{
		ID:     "fig8a",
		Title:  "PageRank communication volume, 32 nodes (MB)",
		Header: append([]string{"dataset"}, algos...),
		Note:   "mirror<->master traffic of 10 PageRank iterations; the paper reports TB on the full crawls",
	}
	b := Table{
		ID:     "fig8b",
		Title:  "PageRank runtime, 32 nodes (simulated, ms)",
		Header: append([]string{"dataset"}, algos...),
		Note:   "makespan = per-superstep max node compute + network transfer",
	}
	for _, ds := range WebDatasets() {
		g := ds.Build(cfg.Scale)
		cfg.logf("fig8: %s (%d vertices, %d edges)", ds.Name, g.NumVertices, g.NumEdges())
		rowA := []string{ds.Name}
		rowB := []string{ds.Name}
		for _, alg := range algos {
			res, err := cfg.run(alg, g, k)
			if err != nil {
				return nil, err
			}
			pl, err := engine.NewPlacement(res)
			if err != nil {
				return nil, err
			}
			_, stats, err := engine.PageRank(pl, engine.PageRankConfig{Iterations: iters})
			if err != nil {
				return nil, err
			}
			rowA = append(rowA, mb(stats.CommBytes))
			rowB = append(rowB, fmt.Sprintf("%.1f", float64(stats.SimTime.Microseconds())/1000))
		}
		a.AddRow(rowA...)
		b.AddRow(rowB...)
	}

	c := Table{
		ID:     "fig8c",
		Title:  "PageRank runtime vs network RTT (IT, 32 nodes, ms)",
		Header: append([]string{"rtt"}, algos...),
		Note:   "RTT injection plays the role of the paper's PUMBA latency experiments",
	}
	ds, err := DatasetByName("IT")
	if err != nil {
		return nil, err
	}
	g := ds.Build(cfg.Scale)
	placements := map[string]*engine.Placement{}
	for _, alg := range algos {
		res, err := cfg.run(alg, g, k)
		if err != nil {
			return nil, err
		}
		if placements[alg], err = engine.NewPlacement(res); err != nil {
			return nil, err
		}
	}
	for _, rtt := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		row := []string{rtt.String()}
		for _, alg := range algos {
			pcfg := engine.PageRankConfig{Iterations: iters}
			pcfg.Cost.RTT = rtt
			_, stats, err := engine.PageRank(placements[alg], pcfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", float64(stats.SimTime.Microseconds())/1000))
		}
		c.AddRow(row...)
	}
	return []Table{a, b, c}, nil
}

// Fig9 regenerates Figure 9: the ablation study on IT. CLUGP against
// CLUGP-S (pass 1 downgraded to literal Hollocou clustering) and CLUGP-G
// (game replaced by size-greedy placement).
func Fig9(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	ds, err := DatasetByName("IT")
	if err != nil {
		return nil, err
	}
	g := ds.Build(cfg.Scale)
	t := Table{
		ID:     "fig9",
		Title:  "Ablation study: replication factor vs #partitions (IT)",
		Header: []string{"k", "CLUGP", "CLUGP-S", "CLUGP-G"},
		Note:   "CLUGP-S: Hollocou clustering (no splitting, undisciplined migration); CLUGP-G: greedy cluster placement instead of the game",
	}
	for _, k := range cfg.Ks {
		row := []string{fmt.Sprintf("%d", k)}
		for _, alg := range []string{"CLUGP", "CLUGP-S", "CLUGP-G"} {
			res, err := cfg.run(alg, g, k)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(res.Quality.ReplicationFactor))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// Fig10 regenerates Figure 10: (a) runtime of the one-pass heuristics
// against CLUGP at 8/16/32 game threads; (b) the effect of the game batch
// size on quality and runtime.
func Fig10(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	ds, err := DatasetByName("IT")
	if err != nil {
		return nil, err
	}
	g := ds.Build(cfg.Scale)
	const k = 256 // the regime where the one-pass heuristics struggle

	a := Table{
		ID:     "fig10a",
		Title:  fmt.Sprintf("Partitioning runtime vs algorithm/threads (IT, k=%d, ms)", k),
		Header: []string{"algorithm", "threads", "total(ms)", "compute(ms)", "stream(ms)"},
		Note:   "compute = the parallelized cluster-partitioning game; stream = the three streaming passes (the paper's I/O cost); batch 1280 so the batch count exceeds the thread count at this scale",
	}
	for _, alg := range []string{"HDRF", "Greedy", "Mint"} {
		res, err := cfg.run(alg, g, k)
		if err != nil {
			return nil, err
		}
		ms := float64(res.Runtime.Microseconds()) / 1000
		a.AddRow(alg, "1", fmt.Sprintf("%.1f", ms), "-", "-")
	}
	for _, threads := range []int{1, 8, 16, 32} {
		p := &partition.CLUGP{Seed: cfg.Seed, Threads: threads, BatchSize: 1280}
		res, err := partition.RunCached(p, g, k, cfg.Seed, cfg.cache)
		if err != nil {
			return nil, err
		}
		tr := p.LastTrace
		stream := tr.ClusterTime + tr.BuildTime + tr.TransformTime
		cfg.logf("  CLUGP/%d  k=%d RF=%.3f t=%v game=%v", threads, k, res.Quality.ReplicationFactor, res.Runtime.Round(time.Millisecond), tr.GameTime.Round(time.Millisecond))
		a.AddRow(fmt.Sprintf("CLU%d", threads), fmt.Sprintf("%d", threads),
			fmt.Sprintf("%.1f", float64(res.Runtime.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(tr.GameTime.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(stream.Microseconds())/1000))
	}

	b := Table{
		ID:     "fig10b",
		Title:  fmt.Sprintf("Effect of game batch size (IT, k=%d)", k),
		Header: []string{"batch", "RF", "runtime(ms)"},
		Note:   "the paper finds runtime insensitive to batch size with a slight upward trend",
	}
	for _, batch := range []int{640, 1280, 2560, 6400, 12800, 25600} {
		p := &partition.CLUGP{Seed: cfg.Seed, BatchSize: batch}
		res, err := partition.RunCached(p, g, k, cfg.Seed, cfg.cache)
		if err != nil {
			return nil, err
		}
		cfg.logf("  CLUGP b=%-6d RF=%.3f t=%v", batch, res.Quality.ReplicationFactor, res.Runtime.Round(time.Millisecond))
		b.AddRow(fmt.Sprintf("%d", batch), f3(res.Quality.ReplicationFactor), fmt.Sprintf("%.1f", float64(res.Runtime.Microseconds())/1000))
	}
	return []Table{a, b}, nil
}

// Fig11 regenerates Figure 11: (a) replication factor vs the imbalance
// factor tau, and (b) vs the relative weight of load balancing in the game
// cost, on all four web graphs at 32 partitions.
func Fig11(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	const k = 32
	order := []string{"Arabic", "IT", "UK", "WebBase"}
	graphs := make(map[string]*graph.Graph, len(order))
	for _, name := range order {
		ds, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		graphs[name] = ds.Build(cfg.Scale)
	}
	runCLUGP := func(p *partition.CLUGP, name string) (float64, error) {
		res, err := partition.RunCached(p, graphs[name], k, cfg.Seed, cfg.cache)
		if err != nil {
			return 0, err
		}
		return res.Quality.ReplicationFactor, nil
	}

	a := Table{
		ID:     "fig11a",
		Title:  "CLUGP replication factor vs imbalance factor tau (k=32)",
		Header: append([]string{"tau"}, order...),
	}
	for _, tau := range []float64{1.0, 1.02, 1.04, 1.06, 1.08, 1.10} {
		row := []string{fmt.Sprintf("%.2f", tau)}
		for _, name := range order {
			rf, err := runCLUGP(&partition.CLUGP{Seed: cfg.Seed, Tau: tau}, name)
			if err != nil {
				return nil, err
			}
			cfg.logf("  CLUGP tau=%.2f %s RF=%.3f", tau, name, rf)
			row = append(row, f3(rf))
		}
		a.AddRow(row...)
	}

	b := Table{
		ID:     "fig11b",
		Title:  "CLUGP replication factor vs relative weight (k=32)",
		Header: append([]string{"weight"}, order...),
		Note:   "weight scales the load-balance term of the game cost; 0.5 is the default equal weighting",
	}
	for _, w := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		row := []string{fmt.Sprintf("%.1f", w)}
		for _, name := range order {
			rf, err := runCLUGP(&partition.CLUGP{Seed: cfg.Seed, RelWeight: w}, name)
			if err != nil {
				return nil, err
			}
			cfg.logf("  CLUGP w=%.1f %s RF=%.3f", w, name, rf)
			row = append(row, f3(rf))
		}
		b.AddRow(row...)
	}
	return []Table{a, b}, nil
}

// Table1 regenerates Table I: the qualitative time/quality classification,
// derived from measured data (runtime and RF at k=64 on UK) so the claimed
// classes are backed by numbers.
func Table1(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	ds, err := DatasetByName("UK")
	if err != nil {
		return nil, err
	}
	g := ds.Build(cfg.Scale)
	const k = 64
	type row struct {
		name    string
		rf      float64
		runtime time.Duration
	}
	var rows []row
	for _, alg := range algos {
		res, err := cfg.run(alg, g, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{alg, res.Quality.ReplicationFactor, res.Runtime})
	}
	// Classify into thirds by rank.
	classOf := func(rank, n int) string {
		switch {
		case rank*3 < n:
			return "Low"
		case rank*3 < 2*n:
			return "Medium"
		default:
			return "High"
		}
	}
	byTime := make([]row, len(rows))
	copy(byTime, rows)
	sort.Slice(byTime, func(i, j int) bool { return byTime[i].runtime < byTime[j].runtime })
	timeClass := map[string]string{}
	for i, r := range byTime {
		timeClass[r.name] = classOf(i, len(byTime))
	}
	byRF := make([]row, len(rows))
	copy(byRF, rows)
	// Lower RF = higher quality.
	sort.Slice(byRF, func(i, j int) bool { return byRF[i].rf > byRF[j].rf })
	qualClass := map[string]string{}
	for i, r := range byRF {
		qualClass[r.name] = classOf(i, len(byRF))
	}
	t := Table{
		ID:     "table1",
		Title:  "Vertex-cut streaming partitioning algorithms (measured, UK k=64)",
		Header: []string{"algorithm", "time cost", "quality", "runtime(ms)", "RF"},
		Note:   "classes derived from measured ranks; the paper's Table I claims Hashing/DBH Low/Low, Mint Medium/Medium, Greedy/HDRF High/High, CLUGP Low/High",
	}
	for _, r := range rows {
		t.AddRow(r.name, timeClass[r.name], qualClass[r.name],
			fmt.Sprintf("%.1f", float64(r.runtime.Microseconds())/1000), f3(r.rf))
	}
	return []Table{t}, nil
}
